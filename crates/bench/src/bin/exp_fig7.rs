//! Figure 7: model-projected breakdown for each SORD hot spot on Xeon —
//! compared with Figure 6 the memory share rises, as the paper observes.

fn main() {
    let opts = xflow_bench::opts();
    xflow_bench::breakdown_figure("Figure 7", "sord", &xflow::xeon(), &opts);
}
