//! Figure 5: SORD hot spot selection on Xeon — the mirror of Figure 4 with
//! the cross-machine curve Prof.X(q) (BG/Q-suggested spots under Xeon's
//! measured profile).

use xflow_bench::{eval_run, maybe_write_json, names_of, opts, render_series, workload, FigureData, TOP_K};
use xflow_hotspot::coverage_curve;

fn main() {
    let opts = opts();
    let w = workload("sord");
    let here = eval_run(&w, &xflow::xeon(), opts.scale);
    let there = eval_run(&w, &xflow::bgq(), opts.scale);
    let cross = coverage_curve(&there.cmp.measured_ranking, &here.measured.oracle, TOP_K);

    println!("=== Figure 5: SORD hot spot selections on Xeon ===\n");
    println!(
        "{}",
        render_series(
            "cumulative Xeon runtime coverage of the top-k selection",
            &[
                ("Prof.X", &here.cmp.prof_curve),
                ("Modl(p)", &here.cmp.modl_p_curve),
                ("Modl(m)", &here.cmp.modl_m_curve),
                ("Prof.X(q)", &cross),
                ("Q(k)", &here.cmp.quality),
            ],
        )
    );
    let data = FigureData {
        experiment: "fig5".into(),
        workload: "SORD".into(),
        machine: "Xeon".into(),
        series: [
            ("prof".to_string(), here.cmp.prof_curve.clone()),
            ("modl_p".to_string(), here.cmp.modl_p_curve.clone()),
            ("modl_m".to_string(), here.cmp.modl_m_curve.clone()),
            ("prof_cross".to_string(), cross),
            ("quality".to_string(), here.cmp.quality.clone()),
        ]
        .into_iter()
        .collect(),
        labels: names_of(&here, &here.cmp.measured_ranking, TOP_K),
    };
    maybe_write_json(&opts, "fig5", &data);
}
