//! Session warm-start benchmark: cold modeling vs warm `Session` loads
//! (in-memory and disk) across the five-workload suite.
//!
//! Three arms per workload:
//!
//! * **cold** — `ModeledApp::from_program`: parse + profiled run +
//!   translation + BET build + plan build, no caching anywhere;
//! * **warm (memory)** — `Session::model` with primed in-memory caches:
//!   five key derivations, five LRU hits, artifact clones;
//! * **warm (disk)** — a *fresh* `Session::with_cache_dir` per repetition,
//!   so every stage deserializes its persisted artifact (the CLI
//!   warm-start shape).
//!
//! Writes `results/BENCH_session.json` and asserts the suite-level
//! in-memory warm-start win is ≥ 5×.

use std::time::Instant;
use xflow::{ModeledApp, Session};
use xflow_bench::opts;

fn time_n<F: FnMut()>(reps: usize, mut f: F) -> f64 {
    let t0 = Instant::now();
    for _ in 0..reps {
        f();
    }
    t0.elapsed().as_secs_f64() / reps as f64
}

fn main() {
    let o = opts();
    let (cold_reps, warm_reps) = if matches!(o.scale, xflow::Scale::Test) { (5, 50) } else { (2, 20) };
    let cache_dir = std::env::temp_dir().join(format!("xflow-exp-session-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&cache_dir);

    let workloads = xflow_workloads::all();
    let mut names = Vec::new();
    let mut cold_s = Vec::new();
    let mut warm_mem_s = Vec::new();
    let mut warm_disk_s = Vec::new();

    println!("=== session warm-start vs cold modeling ({:?} scale) ===\n", o.scale);
    println!(
        "{:<10} {:>13} {:>13} {:>13} {:>9} {:>9}",
        "workload", "cold (s)", "mem (s)", "disk (s)", "mem ×", "disk ×"
    );

    let mem_session = Session::new();
    let disk_seed = Session::with_cache_dir(&cache_dir);
    for w in &workloads {
        let inputs = w.inputs(o.scale);
        // prime both cache tiers outside the timed regions
        mem_session.model(w.source, &inputs).expect("prime memory session");
        disk_seed.model(w.source, &inputs).expect("prime disk cache");

        let cold = time_n(cold_reps, || {
            let prog = xflow_minilang::parse(w.source).expect("parse");
            std::hint::black_box(ModeledApp::from_program(prog, &inputs).expect("cold model").bet.len());
        });
        let warm_mem = time_n(warm_reps, || {
            std::hint::black_box(mem_session.model(w.source, &inputs).expect("warm model").bet.len());
        });
        let warm_disk = time_n(warm_reps.min(10), || {
            let s = Session::with_cache_dir(&cache_dir);
            std::hint::black_box(s.model(w.source, &inputs).expect("disk model").bet.len());
        });

        println!(
            "{:<10} {:>13.3e} {:>13.3e} {:>13.3e} {:>8.1}x {:>8.1}x",
            w.name,
            cold,
            warm_mem,
            warm_disk,
            cold / warm_mem,
            cold / warm_disk
        );
        names.push(w.name.to_string());
        cold_s.push(cold);
        warm_mem_s.push(warm_mem);
        warm_disk_s.push(warm_disk);
    }

    let suite_cold: f64 = cold_s.iter().sum();
    let suite_mem: f64 = warm_mem_s.iter().sum();
    let suite_disk: f64 = warm_disk_s.iter().sum();
    let speedup_memory = suite_cold / suite_mem;
    let speedup_disk = suite_cold / suite_disk;
    println!("\nsuite: cold {suite_cold:.3e} s, warm-memory {suite_mem:.3e} s ({speedup_memory:.1}x), warm-disk {suite_disk:.3e} s ({speedup_disk:.1}x)");

    let stats = mem_session.stats();
    println!("memory session counters: {stats}");

    #[derive(serde::Serialize)]
    struct SessionBench {
        scale: String,
        workloads: Vec<String>,
        cold_seconds: Vec<f64>,
        warm_memory_seconds: Vec<f64>,
        warm_disk_seconds: Vec<f64>,
        suite_cold_seconds: f64,
        suite_warm_memory_seconds: f64,
        suite_warm_disk_seconds: f64,
        suite_speedup_memory: f64,
        suite_speedup_disk: f64,
    }
    let data = SessionBench {
        scale: format!("{:?}", o.scale),
        workloads: names,
        cold_seconds: cold_s,
        warm_memory_seconds: warm_mem_s,
        warm_disk_seconds: warm_disk_s,
        suite_cold_seconds: suite_cold,
        suite_warm_memory_seconds: suite_mem,
        suite_warm_disk_seconds: suite_disk,
        suite_speedup_memory: speedup_memory,
        suite_speedup_disk: speedup_disk,
    };
    std::fs::create_dir_all("results").expect("create results dir");
    let path = "results/BENCH_session.json";
    std::fs::write(path, serde_json::to_string_pretty(&data).expect("serialize")).expect("write json");
    println!("[json written to {path}]");

    let _ = std::fs::remove_dir_all(&cache_dir);

    assert!(
        speedup_memory >= 5.0,
        "warm session load must be >=5x faster than cold modeling on the suite (got {speedup_memory:.1}x)"
    );
}
