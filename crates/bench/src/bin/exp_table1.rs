//! Table I: top-10 hot spots of every benchmark on BG/Q and Xeon —
//! measured (Prof) vs model-projected (Modl) rankings side by side, plus
//! the cross-machine overlap the paper highlights (only ~4 of SORD's top
//! 10 spots are shared between machines).

use xflow_bench::{eval_run, machines, maybe_write_json, opts, render_series, FigureData, TOP_K};
use xflow_hotspot::top_k_overlap;

fn main() {
    let opts = opts();
    println!("=== Table I: hot spot rankings, Prof vs Modl, both machines ===\n");

    for w in xflow_workloads::all() {
        let mut measured_rankings = Vec::new();
        for m in machines() {
            let run = eval_run(&w, &m, opts.scale);
            println!("--- {} on {} ---", w.name, m.name);
            println!("{}", run.cmp.format_table(&run.app.units, TOP_K));
            println!(
                "model/measured top-10 overlap: {}/10   Q(5) = {:.1}%\n",
                run.cmp.top_k_overlap(TOP_K),
                run.cmp.quality_at(5) * 100.0
            );
            measured_rankings.push((m.name.clone(), run.cmp.measured_ranking.clone(), run));
        }
        let (qa, qb) = (&measured_rankings[0], &measured_rankings[1]);
        let shared = top_k_overlap(&qa.1, &qb.1, TOP_K);
        let same_pos = qa.1.iter().zip(qb.1.iter()).take(TOP_K).filter(|(a, b)| a == b).count();
        println!(
            ">>> {}: measured top-10 set overlap {}↔{}: {shared}/10; same rank position: {same_pos}/10\n             >>> (paper: hot spot selections are not portable across machines)\n",
            w.name, qa.0, qb.0
        );
        let data = FigureData {
            experiment: "table1".into(),
            workload: w.name.into(),
            machine: "both".into(),
            series: [("cross_machine_overlap".to_string(), vec![shared as f64])].into_iter().collect(),
            labels: qa.1.iter().take(TOP_K).map(|&u| qa.2.app.units.name(u)).collect(),
        };
        maybe_write_json(&opts, &format!("table1_{}", w.name.to_lowercase()), &data);
    }

    let _ = render_series; // (see figure binaries)
}
