//! Telemetry overhead benchmark: the observed evaluator with the noop
//! recorder against a replica of the pre-telemetry evaluation loop.
//!
//! The replica below is the projection loop exactly as it existed before
//! the recorder was threaded through (no `enabled()` gate, no provenance
//! emission); bit-equality against `ProjectionPlan::evaluate` is asserted
//! before anything is timed, so the two arms provably do the same
//! arithmetic. Min-of-K sampling over a design grid then bounds the cost
//! of the disabled telemetry path, which must stay under 2%.
//!
//! Writes `results/BENCH_obs.json`.

use std::collections::HashMap;
use std::time::Instant;
use xflow::{generic, Axis, CollectingRecorder, DesignSpace, ModeledApp, NoopRecorder, Roofline};
use xflow_bench::opts;
use xflow_hotspot::{NodeCost, Projection, ProjectionPlan, StmtCosts};
use xflow_hw::{MachineModel, PerfModel};

/// The evaluation loop as shipped before the telemetry layer: identical
/// arithmetic and allocation pattern, no recorder anywhere.
fn evaluate_baseline(plan: &ProjectionPlan, machine: &MachineModel, model: &dyn PerfModel) -> Projection {
    let enr = plan.enr();
    let mut node_costs = vec![NodeCost { per_invocation: Default::default(), enr: 0.0, total: 0.0 }; enr.len()];
    for (i, nc) in node_costs.iter_mut().enumerate() {
        nc.enr = enr[i];
    }
    let mut per_stmt = StmtCosts::with_stmt_capacity(plan.stmt_bound());
    let mut total_time = 0.0;
    for block in plan.blocks() {
        let e = block.summary.enr;
        let time = model.project_block(machine, &block.summary);
        let total = time.total * e;
        total_time += total;
        node_costs[block.node as usize] = NodeCost { per_invocation: time, enr: e, total };
        if let Some(stmt) = block.stmt {
            if time.total > 0.0 {
                let s = per_stmt.entry_mut(stmt);
                s.total += total;
                s.tc += time.tc * e;
                s.tm += time.tm * e;
                s.overlap += time.overlap * e;
                s.metrics.add_scaled(&block.stmt_metrics, e);
            }
        }
    }
    Projection { node_costs, per_stmt, total_time, unknown_libs: plan.unknown_libs().to_vec() }
}

/// Minimum seconds per grid pass over `samples` samples of `passes` passes.
fn min_of_k<F: FnMut()>(samples: usize, passes: usize, mut f: F) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..samples {
        let t0 = Instant::now();
        for _ in 0..passes {
            f();
        }
        best = best.min(t0.elapsed().as_secs_f64() / passes as f64);
    }
    best
}

fn main() {
    let o = opts();
    let w = xflow_workloads::cfd();
    let app = ModeledApp::from_workload(&w, o.scale).expect("pipeline");
    let plan = app.plan();
    let machines = DesignSpace::grid(
        generic(),
        vec![Axis::dram_bw(&[0.5, 1.0, 2.0, 4.0, 8.0]), Axis::mlp(&[2.0, 4.0, 8.0, 16.0, 32.0])],
    )
    .machines()
    .to_vec();
    println!("=== telemetry overhead: {}-point grid on {} ===\n", machines.len(), w.name);

    // the replica and the product path must agree to the bit before any
    // timing is meaningful
    for m in &machines {
        let base = evaluate_baseline(plan, m, &Roofline);
        let noop = plan.evaluate(m, &Roofline);
        assert_eq!(base.total_time.to_bits(), noop.total_time.to_bits(), "replica must match evaluate on {}", m.name);
    }

    let (samples, passes) = if matches!(o.scale, xflow::Scale::Test) { (5, 40) } else { (9, 400) };
    let baseline_s = min_of_k(samples, passes, || {
        for m in &machines {
            std::hint::black_box(evaluate_baseline(plan, m, &Roofline).total_time);
        }
    });
    let noop_s = min_of_k(samples, passes, || {
        for m in &machines {
            std::hint::black_box(plan.evaluate_observed(m, &Roofline, &NoopRecorder).total_time);
        }
    });
    let collecting_s = min_of_k(samples, passes.min(40), || {
        let rec = CollectingRecorder::new();
        for m in &machines {
            std::hint::black_box(plan.evaluate_observed(m, &Roofline, &rec).total_time);
        }
    });

    let noop_overhead = noop_s / baseline_s - 1.0;
    let collecting_overhead = collecting_s / baseline_s - 1.0;
    println!("pre-telemetry replica, per grid pass:   {baseline_s:>12.3e} s");
    println!("noop recorder, per grid pass:           {noop_s:>12.3e} s  ({:+.2}%)", noop_overhead * 100.0);
    println!("collecting recorder, per grid pass:     {collecting_s:>12.3e} s  ({:+.2}%)", collecting_overhead * 100.0);

    // sweep-level sanity: the public sweep path (noop) vs a traced sweep
    let sweep_noop_s = min_of_k(samples, passes.min(40) / 4 + 1, || {
        let space = DesignSpace::from_machines(machines.iter().cloned());
        std::hint::black_box(space.sweep(&app, 1).points.len());
    });
    let sweep_traced_s = min_of_k(samples, passes.min(40) / 4 + 1, || {
        let space = DesignSpace::from_machines(machines.iter().cloned());
        let rec = CollectingRecorder::new();
        std::hint::black_box(space.sweep_observed(&app, &Roofline, 1, &rec).points.len());
    });
    println!("\nsweep, noop recorder:                   {sweep_noop_s:>12.3e} s");
    println!("sweep, collecting recorder:             {sweep_traced_s:>12.3e} s");

    #[derive(serde::Serialize)]
    struct ObsBench {
        workload: String,
        grid_points: usize,
        baseline_grid_seconds: f64,
        noop_grid_seconds: f64,
        collecting_grid_seconds: f64,
        noop_overhead: f64,
        collecting_overhead: f64,
        sweep_noop_seconds: f64,
        sweep_traced_seconds: f64,
        extra: HashMap<String, f64>,
    }
    let data = ObsBench {
        workload: w.name.to_string(),
        grid_points: machines.len(),
        baseline_grid_seconds: baseline_s,
        noop_grid_seconds: noop_s,
        collecting_grid_seconds: collecting_s,
        noop_overhead,
        collecting_overhead,
        sweep_noop_seconds: sweep_noop_s,
        sweep_traced_seconds: sweep_traced_s,
        extra: HashMap::new(),
    };
    std::fs::create_dir_all("results").expect("create results dir");
    let path = "results/BENCH_obs.json";
    std::fs::write(path, serde_json::to_string_pretty(&data).expect("serialize")).expect("write json");
    println!("\n[json written to {path}]");

    assert!(
        noop_overhead < 0.02,
        "disabled telemetry must cost under 2% of the pre-telemetry evaluator (got {:+.2}%)",
        noop_overhead * 100.0
    );
}
