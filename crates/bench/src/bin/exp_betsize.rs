//! Section IV-B statistic: BET size relative to the source statement count
//! for every benchmark — the paper reports an average of 88% and never more
//! than 2×, independent of the input size.

use std::collections::HashMap;
use xflow::{ModeledApp, Scale};
use xflow_bench::{maybe_write_json, opts, FigureData};

fn main() {
    let opts = opts();
    println!("=== BET size vs source statements (paper: avg ≈ 88%, max < 2×) ===\n");
    println!("{:<10} {:>10} {:>10} {:>8} {:>22}", "workload", "skeleton", "BET", "ratio", "input-size invariant?");
    let mut ratios = Vec::new();
    let mut labels = Vec::new();
    for w in xflow_workloads::all() {
        let small = ModeledApp::from_workload(&w, Scale::Test).expect("pipeline");
        let large = ModeledApp::from_workload(&w, Scale::Eval).expect("pipeline");
        let stmts = small.translation.skeleton.source_statement_count();
        let ratio = small.bet_size_ratio();
        let invariant = small.bet.len() == large.bet.len();
        println!(
            "{:<10} {:>10} {:>10} {:>7.2}x {:>22}",
            w.name,
            stmts,
            small.bet.len(),
            ratio,
            if invariant { "yes" } else { "NO" }
        );
        ratios.push(ratio);
        labels.push(w.name.to_string());
    }
    let avg = ratios.iter().sum::<f64>() / ratios.len() as f64;
    let max = ratios.iter().cloned().fold(0.0f64, f64::max);
    println!("\naverage ratio: {avg:.2} (paper: 0.88)   maximum: {max:.2} (paper: < 2)");
    let mut series: HashMap<String, Vec<f64>> = HashMap::new();
    series.insert("ratio".into(), ratios);
    series.insert("summary_avg_max".into(), vec![avg, max]);
    let data = FigureData { experiment: "betsize".into(), workload: "all".into(), machine: "-".into(), series, labels };
    maybe_write_json(&opts, "betsize", &data);
}
