//! Figure 8: *measured* issue rate and instructions-per-L1-miss for each
//! SORD hot spot on BG/Q — the hardware-counter view that corroborates the
//! model's bottleneck classification (stalled pipelines and dense misses
//! where the model projects memory-bound blocks).

use std::collections::HashMap;
use xflow_bench::{eval_run, maybe_write_json, opts, workload, FigureData, TOP_K};

fn main() {
    let opts = opts();
    let w = workload("sord");
    let m = xflow::bgq();
    let run = eval_run(&w, &m, opts.scale);

    println!("=== Figure 8: measured issue rate and L1 behaviour per SORD hot spot ({}) ===\n", m.name);
    println!(
        "{:<4} {:<26} {:>12} {:>16} {:>14}",
        "#", "hot spot (measured order)", "issue (IPC)", "instr / L1 miss", "model bound"
    );
    let mut series: HashMap<String, Vec<f64>> = HashMap::new();
    let mut labels = Vec::new();
    for (i, &unit) in run.cmp.measured_ranking.iter().take(TOP_K).enumerate() {
        let ipc = run.measured.issue_rate(unit);
        let ipm = run.measured.instr_per_l1_miss(unit);
        let bound =
            run.mp.unit_breakdown.get(&unit).map(|b| if b.tm > b.tc { "memory" } else { "compute" }).unwrap_or("-");
        println!("{:<4} {:<26} {:>12.3} {:>16.1} {:>14}", i + 1, run.app.units.name(unit), ipc, ipm, bound);
        series.entry("issue_rate".into()).or_default().push(ipc);
        series.entry("instr_per_l1_miss".into()).or_default().push(ipm);
        labels.push(run.app.units.name(unit));
    }
    println!(
        "\nlow IPC together with few instructions per L1 miss marks the memory-\n\
         stalled spots — matching the blocks Figure 6 projects as memory-bound."
    );
    let data =
        FigureData { experiment: "fig8".into(), workload: "SORD".into(), machine: m.name.clone(), series, labels };
    maybe_write_json(&opts, "fig8", &data);
}
