//! Two-phase projection engine benchmark: plan build vs per-point
//! evaluation, legacy-vs-plan speedup on a 5×5 design grid, and sweep
//! throughput (points/sec) at 1/2/4/8 worker threads.
//!
//! Writes `results/BENCH_sweep.json` (always) so the speedup and scaling
//! claims are recorded alongside the other experiment outputs.

use std::collections::HashMap;
use std::time::Instant;
use xflow::{generic, Axis, DesignSpace, ModeledApp, Roofline};
use xflow_bench::opts;
use xflow_hotspot::{project_single_pass, ProjectionPlan};

fn time_n<F: FnMut()>(reps: usize, mut f: F) -> f64 {
    let t0 = Instant::now();
    for _ in 0..reps {
        f();
    }
    t0.elapsed().as_secs_f64() / reps as f64
}

fn main() {
    let o = opts();
    let w = xflow_workloads::cfd();
    let app = ModeledApp::from_workload(&w, o.scale).expect("pipeline");
    let libs = xflow::default_library().clone();
    let reps = if matches!(o.scale, xflow::Scale::Test) { 10 } else { 30 };

    let space = DesignSpace::grid(
        generic(),
        vec![Axis::dram_bw(&[0.5, 1.0, 2.0, 4.0, 8.0]), Axis::mlp(&[2.0, 4.0, 8.0, 16.0, 32.0])],
    );
    let machines = space.machines().to_vec();
    println!("=== two-phase projection: {}-point grid on {} ===\n", machines.len(), w.name);

    // phase 1: plan build (once per application)
    let plan_build_s = time_n(reps, || {
        std::hint::black_box(ProjectionPlan::new(&app.bet, &libs));
    });
    let plan = ProjectionPlan::new(&app.bet, &libs);

    // phase 2: one roofline-only evaluation per machine
    let eval_point_s = time_n(reps, || {
        for m in &machines {
            std::hint::black_box(plan.evaluate(m, &Roofline).total_time);
        }
    }) / machines.len() as f64;

    // the legacy public path: per-point library calibration + fused walk
    let legacy_grid_s = time_n(reps.min(10), || {
        for m in &machines {
            let libs = xflow_sim::calibrate_library(512);
            std::hint::black_box(project_single_pass(&app.bet, m, &Roofline, &libs).total_time);
        }
    });
    // fused walk with calibration hoisted — the walk-only baseline
    let single_pass_grid_s = time_n(reps, || {
        for m in &machines {
            std::hint::black_box(project_single_pass(&app.bet, m, &Roofline, &libs).total_time);
        }
    });

    let plan_grid_s = eval_point_s * machines.len() as f64;
    let speedup_vs_legacy = legacy_grid_s / plan_grid_s;
    let speedup_vs_single_pass = single_pass_grid_s / plan_grid_s;

    println!("plan build (phase 1, once):        {:>12.3e} s", plan_build_s);
    println!("plan evaluate (phase 2, per point): {:>12.3e} s", eval_point_s);
    println!("25-point grid, plan reuse:          {:>12.3e} s", plan_grid_s);
    println!("25-point grid, legacy project_on:   {:>12.3e} s  ({speedup_vs_legacy:.1}x slower)", legacy_grid_s);
    println!(
        "25-point grid, single-pass walks:   {:>12.3e} s  ({speedup_vs_single_pass:.1}x slower)",
        single_pass_grid_s
    );

    // sweep throughput at 1/2/4/8 worker threads. Points are cheap
    // (microseconds), so the grid is made large enough that per-worker
    // work dominates thread startup and the pool can scale.
    let freqs: Vec<f64> = (1..=16).map(|i| 0.5 + 0.25 * i as f64).collect();
    let core_counts: Vec<f64> = (0..10).map(|i| (1u32 << i) as f64).collect();
    let big = DesignSpace::grid(
        generic(),
        vec![
            Axis::dram_bw(&[0.5, 1.0, 2.0, 4.0, 8.0]),
            Axis::mlp(&[2.0, 4.0, 8.0, 16.0, 32.0]),
            Axis::freq_ghz(&freqs),
            Axis::cores(&core_counts),
        ],
    );
    app.plan(); // build the cached plan outside the timed region
    let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    println!("\nsweep throughput, {}-point grid ({cores} CPU core(s) available):", big.len());
    println!("{:>8} {:>14} {:>14} {:>9}", "threads", "sweep (s)", "points/sec", "scaling");
    // oversubscribing a core-starved host only measures scheduler noise, so
    // the requested ladder is clamped to the hardware; the clamp itself is
    // recorded in the JSON so downstream readers see which points ran.
    let requested = [1usize, 2, 4, 8];
    let mut thread_counts = Vec::new();
    let mut points_per_sec = Vec::new();
    let mut base_pps = 0.0;
    for &want in &requested {
        let threads = want.min(cores);
        if thread_counts.contains(&(threads as f64)) {
            println!("{:>8} {:>41}", want, format!("(clamped to {threads}, already measured)"));
            continue;
        }
        let dt = time_n(reps.min(10), || {
            std::hint::black_box(big.sweep(&app, threads).points.len());
        });
        let pps = big.len() as f64 / dt;
        if base_pps == 0.0 {
            base_pps = pps;
        }
        println!("{:>8} {:>14.3e} {:>14.0} {:>8.2}x", threads, dt, pps, pps / base_pps);
        thread_counts.push(threads as f64);
        points_per_sec.push(pps);
    }
    if cores == 1 {
        println!("(single-core host: thread ladder clamped to 1 worker)");
    }

    #[derive(serde::Serialize)]
    struct SweepBench {
        workload: String,
        grid_points: usize,
        plan_build_seconds: f64,
        eval_point_seconds: f64,
        grid_plan_reuse_seconds: f64,
        grid_legacy_seconds: f64,
        grid_single_pass_seconds: f64,
        speedup_vs_legacy: f64,
        speedup_vs_single_pass: f64,
        throughput_grid_points: usize,
        available_cores: usize,
        threads_requested: Vec<f64>,
        threads: Vec<f64>,
        points_per_sec: Vec<f64>,
        extra: HashMap<String, f64>,
    }
    let data = SweepBench {
        workload: w.name.to_string(),
        grid_points: machines.len(),
        plan_build_seconds: plan_build_s,
        eval_point_seconds: eval_point_s,
        grid_plan_reuse_seconds: plan_grid_s,
        grid_legacy_seconds: legacy_grid_s,
        grid_single_pass_seconds: single_pass_grid_s,
        speedup_vs_legacy,
        speedup_vs_single_pass,
        throughput_grid_points: big.len(),
        available_cores: cores,
        threads_requested: requested.iter().map(|&t| t as f64).collect(),
        threads: thread_counts,
        points_per_sec,
        extra: HashMap::new(),
    };
    std::fs::create_dir_all("results").expect("create results dir");
    let path = "results/BENCH_sweep.json";
    std::fs::write(path, serde_json::to_string_pretty(&data).expect("serialize")).expect("write json");
    println!("\n[json written to {path}]");

    assert!(
        speedup_vs_legacy >= 5.0,
        "two-phase plan reuse must be >=5x the legacy per-point path (got {speedup_vs_legacy:.1}x)"
    );
}
