//! Run every experiment in sequence — the one-command regeneration of the
//! paper's full evaluation. Equivalent to invoking each `exp_*` binary;
//! shares the `--scale`/`--json` options.

use std::process::Command;

const EXPERIMENTS: &[&str] = &[
    "exp_table1",
    "exp_table2",
    "exp_fig4",
    "exp_fig5",
    "exp_fig6",
    "exp_fig7",
    "exp_fig8",
    "exp_fig9",
    "exp_fig10",
    "exp_fig11",
    "exp_fig12",
    "exp_fig13",
    "exp_betsize",
    "exp_quality",
    "exp_scaling",
    "exp_ablation",
    "exp_reuse",
];

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let me = std::env::current_exe().expect("current exe");
    let dir = me.parent().expect("bin dir");
    let mut failed = Vec::new();
    for exp in EXPERIMENTS {
        println!("\n════════════════════════ {exp} ════════════════════════");
        let status = Command::new(dir.join(exp)).args(&args).status();
        match status {
            Ok(s) if s.success() => {}
            other => {
                eprintln!("{exp} failed: {other:?} (build all bins first: cargo build --release -p xflow-bench)");
                failed.push(*exp);
            }
        }
    }
    if failed.is_empty() {
        println!("\nall {} experiments completed", EXPERIMENTS.len());
    } else {
        eprintln!("\nFAILED: {failed:?}");
        std::process::exit(1);
    }
}
