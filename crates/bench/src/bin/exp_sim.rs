//! Simulator-throughput benchmark: the dense-accumulator `SimTracer`
//! against the pre-dense HashMap path, plus the two corpus-scale drivers
//! built on top of it.
//!
//! Three questions, one report:
//!
//! 1. What did densifying the tracer buy? `RefTracer` below is a private
//!    verbatim copy of the old HashMap-per-event accounting path (the
//!    crate keeps its twin as a `#[cfg(test)]` oracle, invisible to
//!    benches). Dense and reference reports are asserted bit-equal on
//!    CFD on both evaluation machines *before* timing — a speedup over
//!    an inequivalent tracer would be meaningless — then the A/B arms
//!    time `simulate_with_seed` against the reference run on BG/Q.
//! 2. How fast does the oracle driver mint training corpora? Fresh
//!    in-memory sessions build the full built-in corpus (5 workloads ×
//!    2 machines at test scale) with `--jobs 1` vs all cores; the two
//!    corpora must be byte-identical (the determinism contract) and the
//!    ratio is the pool's scaling on real simulation work.
//! 3. What does `validate --all --jobs` save over the sequential loop
//!    CI used to run? Same combos, same pool, timed both ways — the
//!    recorded `validate_all_sequential_seconds` is the baseline the
//!    validate-workloads CI job must beat.
//!
//! The oracle and validate sections always run at test scale regardless
//! of `--scale`: they measure pool scheduling against the CI
//! configuration, and the per-combo work only inflates with `--scale
//! eval` without changing what is being measured.
//!
//! Writes `results/BENCH_sim.json`.

use std::collections::HashMap;
use std::time::Instant;
use xflow::{bgq, build_corpus, builtin_programs, run_chunked, xeon, OracleOptions, Session};
use xflow_bench::opts;
use xflow_hw::MachineModel;
use xflow_minilang::{compile, run_vm_with_limits_seeded, InputSpec, Limits, MStmtId, Program, Tracer, DEFAULT_SEED};
use xflow_sim::{hardware_lib_mix, simulate_with_seed, AccessLevel, SimConfig, SimReport};

/// The cache hierarchy exactly as it stood before this PR: modulo set
/// indexing (no power-of-two mask fast path) and no in-cache toucher
/// store. The baseline arm must run on this frozen copy — pointing it at
/// the live `xflow_sim` cache would silently hand the "old" path the new
/// cache's optimizations and shrink the measured speedup to just the
/// tracer's share.
mod frozen {
    use xflow_hw::CacheLevel;
    use xflow_sim::AccessLevel;

    pub struct CacheArray {
        tags: Vec<u64>,
        stamps: Vec<u64>,
        sets: u64,
        assoc: usize,
        line_shift: u32,
        clock: u64,
        hits: u64,
        misses: u64,
    }

    impl CacheArray {
        pub fn new(level: &CacheLevel) -> Self {
            let sets = level.sets();
            let assoc = level.assoc.max(1) as usize;
            let slots = (sets as usize) * assoc;
            CacheArray {
                tags: vec![u64::MAX; slots],
                stamps: vec![0; slots],
                sets,
                assoc,
                line_shift: level.line_bytes.trailing_zeros(),
                clock: 0,
                hits: 0,
                misses: 0,
            }
        }

        fn victim_way(&self, base: usize) -> usize {
            let mut victim = 0;
            let mut oldest = u64::MAX;
            for w in 0..self.assoc {
                if self.tags[base + w] == u64::MAX {
                    return w;
                }
                if self.stamps[base + w] < oldest {
                    oldest = self.stamps[base + w];
                    victim = w;
                }
            }
            victim
        }

        fn insert_line(&mut self, base: usize, line: u64) {
            let victim = base + self.victim_way(base);
            self.tags[victim] = line;
            self.stamps[victim] = self.clock;
        }

        pub fn fill(&mut self, addr: u64) {
            self.clock += 1;
            let line = addr >> self.line_shift;
            let set = (line % self.sets) as usize;
            let base = set * self.assoc;
            if self.tags[base..base + self.assoc].contains(&line) {
                return;
            }
            self.insert_line(base, line);
        }

        pub fn access(&mut self, addr: u64) -> bool {
            self.clock += 1;
            let line = addr >> self.line_shift;
            let set = (line % self.sets) as usize;
            let base = set * self.assoc;
            if let Some(w) = self.tags[base..base + self.assoc].iter().position(|&t| t == line) {
                self.stamps[base + w] = self.clock;
                self.hits += 1;
                return true;
            }
            self.misses += 1;
            self.insert_line(base, line);
            false
        }

        pub fn hit_rate(&self) -> f64 {
            let n = self.hits + self.misses;
            if n == 0 {
                1.0
            } else {
                self.hits as f64 / n as f64
            }
        }
    }

    pub struct Hierarchy {
        pub l1: CacheArray,
        pub llc: CacheArray,
        dram_accesses: u64,
        dram_bytes: u64,
        line_bytes: u64,
    }

    impl Hierarchy {
        pub fn new(l1: &CacheLevel, llc: &CacheLevel) -> Self {
            Hierarchy {
                l1: CacheArray::new(l1),
                llc: CacheArray::new(llc),
                dram_accesses: 0,
                dram_bytes: 0,
                line_bytes: llc.line_bytes as u64,
            }
        }

        pub fn access(&mut self, addr: u64) -> AccessLevel {
            if self.l1.access(addr) {
                return AccessLevel::L1;
            }
            let level = if self.llc.access(addr) {
                AccessLevel::Llc
            } else {
                self.dram_accesses += 1;
                self.dram_bytes += self.line_bytes;
                AccessLevel::Dram
            };
            let next = addr.wrapping_add(self.line_bytes);
            self.l1.fill(next);
            self.llc.fill(next);
            level
        }

        pub fn dram_bytes(&self) -> u64 {
            self.dram_bytes
        }
    }
}

/// Minimum seconds per run for each arm, sampled *interleaved*: every
/// round times all arms back-to-back, so a slow stretch of the machine
/// hits all arms alike instead of biasing one (see `exp_profile`).
fn min_of_k_interleaved(samples: usize, passes: usize, arms: &mut [&mut dyn FnMut()]) -> Vec<f64> {
    let mut best = vec![f64::INFINITY; arms.len()];
    for _ in 0..samples {
        for (i, arm) in arms.iter_mut().enumerate() {
            let t0 = Instant::now();
            for _ in 0..passes {
                arm();
            }
            best[i] = best[i].min(t0.elapsed().as_secs_f64() / passes as f64);
        }
    }
    best
}

/// The pre-PR HashMap cost tracer, copied verbatim from the sim crate's
/// test-only `ReferenceTracer`: one `entry` upsert per dynamic operation,
/// a `String` allocation per library call, and cross-block reuse tracked
/// through a side `last_toucher` map keyed by cache line — all riding on
/// the [`frozen`] pre-PR cache hierarchy.
struct RefTracer {
    machine: MachineModel,
    caches: frozen::Hierarchy,
    cfg: SimConfig,
    stmt_cycles: HashMap<MStmtId, f64>,
    stmt_instrs: HashMap<MStmtId, u64>,
    stmt_l1_misses: HashMap<MStmtId, u64>,
    stmt_cross_hits: HashMap<MStmtId, u64>,
    stmt_self_hits: HashMap<MStmtId, u64>,
    last_toucher: HashMap<u64, MStmtId>,
    lib_cycles: HashMap<String, f64>,
    lib_instrs: HashMap<String, u64>,
    total_cycles: f64,
}

impl RefTracer {
    fn new(machine: &MachineModel, cfg: SimConfig) -> Self {
        RefTracer {
            caches: frozen::Hierarchy::new(&machine.l1, &machine.llc),
            machine: machine.clone(),
            cfg,
            stmt_cycles: HashMap::new(),
            stmt_instrs: HashMap::new(),
            stmt_l1_misses: HashMap::new(),
            stmt_cross_hits: HashMap::new(),
            stmt_self_hits: HashMap::new(),
            last_toucher: HashMap::new(),
            lib_cycles: HashMap::new(),
            lib_instrs: HashMap::new(),
            total_cycles: 0.0,
        }
    }

    fn charge(&mut self, stmt: MStmtId, cycles: f64, instrs: u64) {
        *self.stmt_cycles.entry(stmt).or_insert(0.0) += cycles;
        *self.stmt_instrs.entry(stmt).or_insert(0) += instrs;
        self.total_cycles += cycles;
    }

    fn vec_factor(&self, stmt: MStmtId) -> f64 {
        let veff = self.cfg.vector_overrides.get(&stmt).copied().unwrap_or(self.machine.vector_efficiency);
        1.0 + (self.machine.vector_lanes - 1.0) * veff.clamp(0.0, 1.0)
    }

    fn flat_op_cycles(&self, stmt: MStmtId, flops: f64, iops: f64, divs: f64, loads: f64) -> f64 {
        let plain = (flops - divs).max(0.0);
        let fp = plain / (self.machine.scalar_flops_per_cycle * self.vec_factor(stmt));
        let dv = divs * self.machine.fdiv_latency_cycles;
        let int = iops / self.machine.issue_width;
        let mem = loads / self.machine.load_store_per_cycle;
        fp + dv + int + mem
    }

    fn mem_access(&mut self, stmt: MStmtId, addr: u64) {
        let vf = self.vec_factor(stmt);
        let m = &self.machine;
        let level = self.caches.access(addr);
        let cycles = match level {
            AccessLevel::L1 => 1.0 / (m.load_store_per_cycle * vf),
            AccessLevel::Llc => {
                *self.stmt_l1_misses.entry(stmt).or_insert(0) += 1;
                m.llc.latency_cycles / m.mlp
            }
            AccessLevel::Dram => {
                *self.stmt_l1_misses.entry(stmt).or_insert(0) += 1;
                m.dram_latency_cycles / m.mlp
            }
        };
        let line = addr >> 6;
        if level == AccessLevel::L1 {
            match self.last_toucher.get(&line) {
                Some(&prev) if prev != stmt => {
                    *self.stmt_cross_hits.entry(stmt).or_insert(0) += 1;
                }
                Some(_) => {
                    *self.stmt_self_hits.entry(stmt).or_insert(0) += 1;
                }
                None => {}
            }
        }
        self.last_toucher.insert(line, stmt);
        self.charge(stmt, cycles, 1);
    }
}

impl Tracer for RefTracer {
    fn ops(&mut self, stmt: MStmtId, flops: u32, iops: u32, divs: u32) {
        let cycles = self.flat_op_cycles(stmt, flops as f64, iops as f64, divs as f64, 0.0);
        self.charge(stmt, cycles, (flops + iops) as u64);
    }

    fn load(&mut self, stmt: MStmtId, addr: u64) {
        self.mem_access(stmt, addr);
    }

    fn store(&mut self, stmt: MStmtId, addr: u64) {
        self.mem_access(stmt, addr);
    }

    fn lib_call(&mut self, stmt: MStmtId, name: &'static str, arg: f64) {
        let mix = hardware_lib_mix(name, arg);
        let cycles = self.flat_op_cycles(stmt, mix.flops as f64, mix.iops as f64, mix.divs as f64, mix.loads as f64);
        *self.lib_cycles.entry(name.to_string()).or_insert(0.0) += cycles;
        *self.lib_instrs.entry(name.to_string()).or_insert(0) += (mix.flops + mix.iops + mix.loads + mix.stores) as u64;
        self.total_cycles += cycles;
    }
}

/// Run a program with the reference tracer and package the result exactly
/// like the dense path's `finish_report`.
fn reference_report(
    prog: &Program,
    inputs: &InputSpec,
    machine: &MachineModel,
    cfg: SimConfig,
    seed: u64,
) -> SimReport {
    let tracer = RefTracer::new(machine, cfg);
    let vm = compile(prog).expect("compile");
    let (profile, tracer, _ret) =
        run_vm_with_limits_seeded(&vm, inputs, tracer, Limits::default(), seed).expect("reference run");
    SimReport {
        l1_hit_rate: tracer.caches.l1.hit_rate(),
        llc_hit_rate: tracer.caches.llc.hit_rate(),
        dram_bytes: tracer.caches.dram_bytes(),
        stmt_cycles: tracer.stmt_cycles,
        stmt_instrs: tracer.stmt_instrs,
        stmt_l1_misses: tracer.stmt_l1_misses,
        stmt_cross_hits: tracer.stmt_cross_hits,
        stmt_self_hits: tracer.stmt_self_hits,
        lib_cycles: tracer.lib_cycles,
        lib_instrs: tracer.lib_instrs,
        total_cycles: tracer.total_cycles,
        profile,
        freq_ghz: machine.freq_ghz,
    }
}

/// Bit-equal cycles, exactly equal counts — sorted so a mismatch names
/// the statement it happened on.
fn assert_reports_bit_equal(dense: &SimReport, reference: &SimReport, ctx: &str) {
    fn sorted_f64(m: &HashMap<MStmtId, f64>) -> Vec<(MStmtId, u64)> {
        let mut v: Vec<(MStmtId, u64)> = m.iter().map(|(&k, &x)| (k, x.to_bits())).collect();
        v.sort();
        v
    }
    fn sorted_u64(m: &HashMap<MStmtId, u64>) -> Vec<(MStmtId, u64)> {
        let mut v: Vec<(MStmtId, u64)> = m.iter().map(|(&k, &x)| (k, x)).collect();
        v.sort();
        v
    }
    assert_eq!(dense.total_cycles.to_bits(), reference.total_cycles.to_bits(), "{ctx}: total_cycles");
    assert_eq!(sorted_f64(&dense.stmt_cycles), sorted_f64(&reference.stmt_cycles), "{ctx}: stmt_cycles");
    assert_eq!(sorted_u64(&dense.stmt_instrs), sorted_u64(&reference.stmt_instrs), "{ctx}: stmt_instrs");
    assert_eq!(sorted_u64(&dense.stmt_l1_misses), sorted_u64(&reference.stmt_l1_misses), "{ctx}: stmt_l1_misses");
    assert_eq!(sorted_u64(&dense.stmt_cross_hits), sorted_u64(&reference.stmt_cross_hits), "{ctx}: stmt_cross_hits");
    assert_eq!(sorted_u64(&dense.stmt_self_hits), sorted_u64(&reference.stmt_self_hits), "{ctx}: stmt_self_hits");
    assert_eq!(dense.lib_instrs, reference.lib_instrs, "{ctx}: lib_instrs");
    assert_eq!(dense.l1_hit_rate.to_bits(), reference.l1_hit_rate.to_bits(), "{ctx}: l1_hit_rate");
    assert_eq!(dense.llc_hit_rate.to_bits(), reference.llc_hit_rate.to_bits(), "{ctx}: llc_hit_rate");
    assert_eq!(dense.dram_bytes, reference.dram_bytes, "{ctx}: dram_bytes");
}

fn main() {
    let o = opts();
    let w = xflow_workloads::cfd();
    let prog = w.program();
    let inputs = w.inputs(o.scale);
    let machine = bgq();
    println!("=== simulator throughput on {} ({:?} scale) ===\n", w.name, o.scale);

    // both engines must agree to the bit before timing means anything
    for m in [bgq(), xeon()] {
        let cfg = w.sim_config(&prog, &m);
        let dense = simulate_with_seed(&prog, &inputs, &m, cfg.clone(), DEFAULT_SEED).expect("dense sim");
        let reference = reference_report(&prog, &inputs, &m, cfg, DEFAULT_SEED);
        assert_reports_bit_equal(&dense, &reference, &format!("{} on {}", w.name, m.name));
    }
    let cfg = w.sim_config(&prog, &machine);
    let dense = simulate_with_seed(&prog, &inputs, &machine, cfg.clone(), DEFAULT_SEED).expect("dense sim");
    let sim_instructions: u64 = dense.stmt_instrs.values().sum::<u64>() + dense.lib_instrs.values().sum::<u64>();
    assert!(sim_instructions > 0);

    let (samples, passes) = if matches!(o.scale, xflow::Scale::Test) { (8, 2) } else { (5, 1) };
    let mut arm_dense = || {
        std::hint::black_box(
            simulate_with_seed(&prog, &inputs, &machine, cfg.clone(), DEFAULT_SEED).expect("run").total_cycles,
        );
    };
    let mut arm_reference = || {
        std::hint::black_box(reference_report(&prog, &inputs, &machine, cfg.clone(), DEFAULT_SEED).total_cycles);
    };
    let times = min_of_k_interleaved(samples, passes, &mut [&mut arm_dense, &mut arm_reference]);
    let (dense_s, reference_s) = (times[0], times[1]);
    let speedup_dense_vs_ref = reference_s / dense_s;
    let sim_minstr_per_sec = sim_instructions as f64 / 1e6 / dense_s;
    println!("simulated instructions:      {sim_instructions}");
    println!("dense tracer:                {dense_s:>12.3e} s");
    println!("reference tracer:            {reference_s:>12.3e} s  ({speedup_dense_vs_ref:.3}x)");
    println!("dense sim throughput:        {sim_minstr_per_sec:>12.2} Minstr/s");

    // Oracle driver: full built-in corpus on fresh in-memory sessions,
    // sequential vs all cores. Byte-identical output is the contract.
    let threads = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let programs = builtin_programs(&[xflow::Scale::Test]);
    let machines = [bgq(), xeon()];
    let corpus_with_jobs = |jobs: usize| {
        let session = Session::new();
        let opts = OracleOptions { jobs, ..Default::default() };
        build_corpus(&session, &programs, &machines, &opts).expect("corpus")
    };
    let seq_corpus = corpus_with_jobs(1);
    let par_corpus = corpus_with_jobs(0);
    assert_eq!(seq_corpus.to_json(), par_corpus.to_json(), "oracle corpus must not depend on --jobs");
    let oracle_records = par_corpus.records.len();
    let (oracle_samples, oracle_passes) = if matches!(o.scale, xflow::Scale::Test) { (3, 1) } else { (4, 1) };
    let mut arm_seq = || {
        std::hint::black_box(corpus_with_jobs(1).records.len());
    };
    let mut arm_par = || {
        std::hint::black_box(corpus_with_jobs(0).records.len());
    };
    let t = min_of_k_interleaved(oracle_samples, oracle_passes, &mut [&mut arm_seq, &mut arm_par]);
    let (oracle_seq_s, oracle_par_s) = (t[0], t[1]);
    let oracle_points_per_sec = oracle_records as f64 / oracle_par_s;
    let oracle_parallel_speedup = oracle_seq_s / oracle_par_s;
    println!("\noracle corpus ({} combos, {oracle_records} records, {threads} threads):", par_corpus.combos);
    println!("  --jobs 1:                  {oracle_seq_s:>12.3e} s");
    println!("  --jobs {threads}:                  {oracle_par_s:>12.3e} s  ({oracle_parallel_speedup:.3}x)");
    println!("  corpus throughput:         {oracle_points_per_sec:>12.2} records/s");

    // validate --all: the same pool over workload × machine differential
    // validation, vs the sequential loop CI used to run combo-by-combo.
    let libs = xflow_validate::default_library();
    let vcfg = xflow_validate::ValidationConfig::default();
    let mut combos = Vec::new();
    for w in xflow_workloads::all() {
        for m in &machines {
            combos.push((w.clone(), m.clone()));
        }
    }
    let validate_with_jobs = |jobs: usize| {
        let reports = run_chunked(&combos, jobs, |_, (w, m)| {
            xflow_validate::validate_workload(w, xflow::Scale::Test, m, libs, &vcfg).expect("validate")
        });
        assert!(reports.iter().all(|r| r.passed), "every validation combo must pass");
        reports.len()
    };
    let mut arm_vseq = || {
        std::hint::black_box(validate_with_jobs(1));
    };
    let mut arm_vpar = || {
        std::hint::black_box(validate_with_jobs(0));
    };
    let t = min_of_k_interleaved(oracle_samples, oracle_passes, &mut [&mut arm_vseq, &mut arm_vpar]);
    let (validate_seq_s, validate_par_s) = (t[0], t[1]);
    let validate_all_parallel_speedup = validate_seq_s / validate_par_s;
    println!("\nvalidate --all ({} combos):", combos.len());
    println!("  --jobs 1:                  {validate_seq_s:>12.3e} s");
    println!("  --jobs {threads}:                  {validate_par_s:>12.3e} s  ({validate_all_parallel_speedup:.3}x)");

    #[derive(serde::Serialize)]
    struct SimBench {
        workload: String,
        machine: String,
        threads: u64,
        sim_instructions: u64,
        dense_seconds: f64,
        reference_seconds: f64,
        speedup_dense_vs_ref: f64,
        sim_minstr_per_sec: f64,
        oracle_records: u64,
        oracle_sequential_seconds: f64,
        oracle_parallel_seconds: f64,
        oracle_points_per_sec: f64,
        oracle_parallel_speedup: f64,
        validate_all_sequential_seconds: f64,
        validate_all_parallel_seconds: f64,
        validate_all_parallel_speedup: f64,
        extra: HashMap<String, f64>,
    }
    let data = SimBench {
        workload: w.name.to_string(),
        machine: machine.name.clone(),
        threads: threads as u64,
        sim_instructions,
        dense_seconds: dense_s,
        reference_seconds: reference_s,
        speedup_dense_vs_ref,
        sim_minstr_per_sec,
        oracle_records: oracle_records as u64,
        oracle_sequential_seconds: oracle_seq_s,
        oracle_parallel_seconds: oracle_par_s,
        oracle_points_per_sec,
        oracle_parallel_speedup,
        validate_all_sequential_seconds: validate_seq_s,
        validate_all_parallel_seconds: validate_par_s,
        validate_all_parallel_speedup,
        extra: HashMap::new(),
    };
    std::fs::create_dir_all("results").expect("create results dir");
    let path = "results/BENCH_sim.json";
    std::fs::write(path, serde_json::to_string_pretty(&data).expect("serialize")).expect("write json");
    println!("\n[json written to {path}]");

    // the dense tracer only earns its place if it moves the needle; the
    // eval bar is the PR's design target, the test bar leaves headroom
    // for small-input noise on shared CI cores
    let bar = if matches!(o.scale, xflow::Scale::Test) { 2.0 } else { 3.0 };
    assert!(
        speedup_dense_vs_ref >= bar,
        "dense tracer must be at least {bar}x the reference path (got {speedup_dense_vs_ref:.3}x)"
    );
    assert!(oracle_records >= 100, "built-in corpus must carry ≥100 training points (got {oracle_records})");
    if threads >= 2 {
        assert!(
            oracle_parallel_speedup > 1.0,
            "oracle driver must scale with --jobs on {threads} threads (got {oracle_parallel_speedup:.3}x)"
        );
        assert!(
            validate_all_parallel_speedup > 1.0,
            "validate --all must scale with --jobs on {threads} threads (got {validate_all_parallel_speedup:.3}x)"
        );
    }
}
