//! Table II: the CFD top-10 hot spot list in detail (names, projected and
//! measured coverage, per-block bottleneck classification), including the
//! divide-heavy velocity block whose runtime the model under-projects
//! (paper Section VII-B).

use xflow_bench::{eval_run, maybe_write_json, opts, workload, FigureData, TOP_K};

fn main() {
    let opts = opts();
    let w = workload("cfd");
    let m = xflow::bgq();
    let run = eval_run(&w, &m, opts.scale);

    println!("=== Table II: CFD hot spots on {} ===\n", m.name);
    println!(
        "{:<4} {:<26} {:>11} {:>11} {:>9} {:>9}  bound",
        "#", "block (measured order)", "meas (s)", "proj (s)", "meas %", "proj %"
    );
    let total_m = run.measured.total();
    for (i, &unit) in run.cmp.measured_ranking.iter().take(TOP_K).enumerate() {
        let tm = run.measured.unit_times.get(&unit).copied().unwrap_or(0.0);
        let tp = run.mp.unit_times.get(&unit).copied().unwrap_or(0.0);
        let bound =
            run.mp.unit_breakdown.get(&unit).map(|b| if b.tm > b.tc { "memory" } else { "compute" }).unwrap_or("-");
        println!(
            "{:<4} {:<26} {:>11.3e} {:>11.3e} {:>8.2}% {:>8.2}%  {}",
            i + 1,
            run.app.units.name(unit),
            tm,
            tp,
            tm / total_m * 100.0,
            tp / run.mp.total * 100.0,
            bound
        );
    }

    // spotlight the velocity block (the paper's "offending" hot spot)
    if let Some((&unit, _)) =
        run.measured.unit_times.iter().find(|(u, _)| run.app.units.name(**u).starts_with("velocity"))
    {
        let meas = run.measured.unit_times[&unit] / total_m;
        let proj = run.mp.unit_times.get(&unit).copied().unwrap_or(0.0) / run.mp.total;
        println!(
            "\nvelocity block: measured {:.1}% vs projected {:.1}% of runtime — the\n\
             under-projection the paper traces to BG/Q expanding each divide into a\n\
             reciprocal-estimate + Newton-iteration sequence (all fp ops modeled equal).",
            meas * 100.0,
            proj * 100.0
        );
        let data = FigureData {
            experiment: "table2".into(),
            workload: "CFD".into(),
            machine: m.name.clone(),
            series: [
                ("velocity_measured_share".to_string(), vec![meas]),
                ("velocity_projected_share".to_string(), vec![proj]),
            ]
            .into_iter()
            .collect(),
            labels: run.cmp.measured_ranking.iter().take(TOP_K).map(|&u| run.app.units.name(u)).collect(),
        };
        maybe_write_json(&opts, "table2_cfd", &data);
    }
}
