//! Invariant fuzzing of the analytic pipeline, runnable from CI.
//!
//! Generates seeded random minilang programs and pushes each through
//! parse → translate → BET → projection (plus differential validation
//! for the escape-free dialect), checking structural invariants and
//! panic-freedom. Failures are shrunk to a minimal reproducer and
//! written to `--repro-dir` so CI can upload them as artifacts.
//!
//! ```text
//! fuzz_bet [--programs 200] [--seed 0xF055EED] [--repro-dir DIR]
//! ```
//!
//! Exits 1 when any program fails, 0 otherwise (rejections — programs
//! the translator legitimately refuses — are not failures).

use xflow_validate::{run_fuzz, FuzzConfig};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let mut cfg = FuzzConfig::default();
    let mut i = 1;
    while i < args.len() {
        let need = |i: usize| {
            args.get(i + 1).cloned().unwrap_or_else(|| {
                eprintln!("{} needs a value", args[i]);
                std::process::exit(2);
            })
        };
        match args[i].as_str() {
            "--programs" => {
                cfg.programs = need(i).parse().expect("--programs needs a count");
                i += 1;
            }
            "--seed" => {
                let v = need(i);
                cfg.seed = match v.strip_prefix("0x").or_else(|| v.strip_prefix("0X")) {
                    Some(hex) => u64::from_str_radix(hex, 16).expect("--seed needs a number"),
                    None => v.parse().expect("--seed needs a number"),
                };
                i += 1;
            }
            "--repro-dir" => {
                let dir = need(i);
                std::fs::create_dir_all(&dir).expect("create repro dir");
                cfg.repro_dir = Some(dir.into());
                i += 1;
            }
            other => {
                eprintln!("unknown option `{other}`");
                eprintln!("usage: fuzz_bet [--programs N] [--seed S] [--repro-dir DIR]");
                std::process::exit(2);
            }
        }
        i += 1;
    }

    let summary = run_fuzz(&cfg);
    print!("{}", summary.render());
    if !summary.ok() {
        std::process::exit(1);
    }
}
