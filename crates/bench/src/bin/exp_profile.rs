//! VM instruction-profiler overhead and superinstruction-fusion benchmark.
//!
//! Two questions, one report:
//!
//! 1. What do the profiler hooks cost when disabled? `run_vm_observed`
//!    with a noop recorder monomorphizes to the same dispatch loop
//!    `run_vm` uses — no counter array, no digram state — so its cost
//!    over `run_vm` bounds what shipping the hooks costs every
//!    un-profiled run. Must stay under 2%, like the telemetry layer's
//!    (`exp_obs`).
//! 2. What does profile-guided superinstruction fusion buy? The fused
//!    program replaces the hottest opcode digrams with single-dispatch
//!    superinstructions, so the same work takes fewer dispatches. The
//!    A/B arms time the unfused and fused programs on identical inputs,
//!    and the cold-path sweep sums the *profiled* run over all five
//!    paper workloads — the `xflow profile` cold path — unfused vs
//!    fused (`cold_seconds_unfused` vs `cold_seconds`).
//!
//! Bit-equality of results and semantic profiles is asserted across all
//! arms before anything is timed — the fused VM must be observationally
//! identical, or its speedup is meaningless — then min-of-K sampling
//! keeps scheduler noise out of the ratios.
//!
//! Writes `results/BENCH_profile.json`.

use std::collections::HashMap;
use std::time::Instant;
use xflow::NoopRecorder;
use xflow_bench::opts;
use xflow_minilang::{
    compile, fuse_program, run_vm, run_vm_observed, run_vm_profiled, Limits, NullTracer, DEFAULT_SEED,
};

/// Minimum seconds per run for each arm, sampled *interleaved*: every
/// round times all arms back-to-back, so a slow stretch of the machine
/// (frequency drop, a neighbor burning the core) hits all arms alike
/// instead of biasing whichever arm happened to run during it.
/// Sequential per-arm sampling on a single shared core was measured to
/// swing the noop/baseline ratio by ±20%; interleaving bounds it.
fn min_of_k_interleaved(samples: usize, passes: usize, arms: &mut [&mut dyn FnMut()]) -> Vec<f64> {
    let mut best = vec![f64::INFINITY; arms.len()];
    for _ in 0..samples {
        for (i, arm) in arms.iter_mut().enumerate() {
            let t0 = Instant::now();
            for _ in 0..passes {
                arm();
            }
            best[i] = best[i].min(t0.elapsed().as_secs_f64() / passes as f64);
        }
    }
    best
}

fn main() {
    let o = opts();
    let w = xflow_workloads::cfd();
    let prog = w.program();
    let inputs = w.inputs(o.scale);
    let vm = compile(&prog).expect("compile");
    let fused = fuse_program(&vm);
    println!("=== VM profiler overhead + fusion on {} ({:?} scale) ===\n", w.name, o.scale);

    // all arms must agree to the bit before timing means anything
    let (p_plain, _, r_plain) = run_vm(&vm, &inputs, NullTracer).expect("plain run");
    let (p_noop, _, r_noop) =
        run_vm_observed(&vm, &inputs, NullTracer, Limits::default(), DEFAULT_SEED, &NoopRecorder).expect("noop run");
    let (p_prof, _, r_prof, iprof) =
        run_vm_profiled(&vm, &inputs, NullTracer, Limits::default(), DEFAULT_SEED).expect("profiled run");
    let (p_fz, _, r_fz) = run_vm(&fused, &inputs, NullTracer).expect("fused run");
    let (p_fzp, _, r_fzp, i_fz) =
        run_vm_profiled(&fused, &inputs, NullTracer, Limits::default(), DEFAULT_SEED).expect("fused profiled run");
    assert_eq!(r_plain.to_bits(), r_noop.to_bits(), "noop-observed result must match plain");
    assert_eq!(r_plain.to_bits(), r_prof.to_bits(), "profiled result must match plain");
    assert_eq!(r_plain.to_bits(), r_fz.to_bits(), "fused result must match plain");
    assert_eq!(r_plain.to_bits(), r_fzp.to_bits(), "fused profiled result must match plain");
    assert_eq!(p_plain.stmt_exec, p_noop.stmt_exec);
    assert_eq!(p_plain.stmt_exec, p_prof.stmt_exec);
    assert_eq!(p_plain.stmt_exec, p_fz.stmt_exec);
    assert_eq!(p_plain.stmt_exec, p_fzp.stmt_exec);
    // constituent accounting: the fused profiler sees the same opcode
    // and digram streams, so instruction totals are fusion-invariant
    assert!(iprof.stream_eq(&i_fz), "fused instruction streams must match unfused");
    assert!(i_fz.fused_dispatches() > 0, "fused program must actually dispatch superinstructions");
    let instructions = iprof.total();
    assert!(instructions > 0);

    let (samples, passes) = if matches!(o.scale, xflow::Scale::Test) { (12, 3) } else { (9, 10) };
    let mut arm_plain = || {
        std::hint::black_box(run_vm(&vm, &inputs, NullTracer).expect("run").2);
    };
    let mut arm_noop = || {
        std::hint::black_box(
            run_vm_observed(&vm, &inputs, NullTracer, Limits::default(), DEFAULT_SEED, &NoopRecorder).expect("run").2,
        );
    };
    let mut arm_profiled = || {
        std::hint::black_box(
            run_vm_profiled(&vm, &inputs, NullTracer, Limits::default(), DEFAULT_SEED).expect("run").3.total(),
        );
    };
    let mut arm_fused = || {
        std::hint::black_box(run_vm(&fused, &inputs, NullTracer).expect("run").2);
    };
    let times =
        min_of_k_interleaved(samples, passes, &mut [&mut arm_plain, &mut arm_noop, &mut arm_profiled, &mut arm_fused]);
    let (baseline_s, noop_s, profiled_s, fused_s) = (times[0], times[1], times[2], times[3]);

    let noop_overhead = noop_s / baseline_s - 1.0;
    let profiled_overhead = profiled_s / baseline_s - 1.0;
    let profiled_minstr_per_sec = instructions as f64 / 1e6 / profiled_s;
    let speedup_fused_vs_vm = baseline_s / fused_s;
    // work is measured in *unfused* instructions either way (constituent
    // accounting makes the streams identical), so the fused throughput is
    // directly comparable: same numerator, fewer dispatches under it
    let fused_minstr_per_sec = instructions as f64 / 1e6 / fused_s;
    println!("instructions per run:        {instructions}");
    println!("plain VM:                    {baseline_s:>12.3e} s");
    println!("noop-observed VM:            {noop_s:>12.3e} s  ({:+.2}%)", noop_overhead * 100.0);
    println!("profiled VM:                 {profiled_s:>12.3e} s  ({:+.2}%)", profiled_overhead * 100.0);
    println!("fused VM:                    {fused_s:>12.3e} s  ({speedup_fused_vs_vm:.3}x)");
    println!("profiled throughput:         {profiled_minstr_per_sec:>12.2} Minstr/s");
    println!("fused throughput:            {fused_minstr_per_sec:>12.2} Minstr/s");
    println!("\ntop opcodes:");
    for (name, count) in iprof.ranked_ops().into_iter().take(5) {
        println!("  {name:<16} {count}");
    }
    println!("\ntop superinstructions:");
    for (name, count) in i_fz.ranked_fused().into_iter().take(5) {
        println!("  {name:<24} {count}");
    }

    // Cold-path sweep: `xflow profile <workload>` compiles, fuses, and
    // runs the profiling interpreter once — a cold-cache, single-shot
    // path. Sum the profiled run over every paper workload, unfused vs
    // fused, to measure what fusion saves the whole profiling pipeline.
    println!("\ncold path (profiled run, all workloads):");
    let (cold_samples, cold_passes) = if matches!(o.scale, xflow::Scale::Test) { (8, 2) } else { (6, 4) };
    let mut extra = HashMap::new();
    let mut cold_unfused = 0.0;
    let mut cold_fused = 0.0;
    for w in xflow_workloads::all() {
        let prog = w.program();
        let inputs = w.inputs(o.scale);
        let vm = compile(&prog).expect("compile");
        let fz = fuse_program(&vm);
        let (_, _, ru, iu) =
            run_vm_profiled(&vm, &inputs, NullTracer, Limits::default(), DEFAULT_SEED).expect("profiled run");
        let (_, _, rf, ifz) =
            run_vm_profiled(&fz, &inputs, NullTracer, Limits::default(), DEFAULT_SEED).expect("fused profiled run");
        assert_eq!(ru.to_bits(), rf.to_bits(), "{}: fused result must match", w.name);
        assert!(iu.stream_eq(&ifz), "{}: fused instruction streams must match", w.name);
        let mut arm_u = || {
            std::hint::black_box(
                run_vm_profiled(&vm, &inputs, NullTracer, Limits::default(), DEFAULT_SEED).expect("run").3.total(),
            );
        };
        let mut arm_f = || {
            std::hint::black_box(
                run_vm_profiled(&fz, &inputs, NullTracer, Limits::default(), DEFAULT_SEED).expect("run").3.total(),
            );
        };
        let t = min_of_k_interleaved(cold_samples, cold_passes, &mut [&mut arm_u, &mut arm_f]);
        println!("  {:<10} {:>10.3e} s -> {:>10.3e} s  ({:.3}x)", w.name, t[0], t[1], t[0] / t[1]);
        cold_unfused += t[0];
        cold_fused += t[1];
        // per-workload gain; the workload-name key segment classifies as
        // informational in the bench gate, so noisy small workloads don't
        // flap CI — the summed cold_seconds is the gated metric
        extra.insert(format!("fused_gain.{}", w.name), t[0] / t[1]);
    }
    println!("  {:<10} {cold_unfused:>10.3e} s -> {cold_fused:>10.3e} s  ({:.3}x)", "total", cold_unfused / cold_fused);

    #[derive(serde::Serialize)]
    struct ProfileBench {
        workload: String,
        instructions: u64,
        vm_baseline_seconds: f64,
        vm_noop_seconds: f64,
        noop_overhead: f64,
        profiled_seconds: f64,
        profiled_overhead: f64,
        profiled_minstr_per_sec: f64,
        fused_seconds: f64,
        fused_minstr_per_sec: f64,
        speedup_fused_vs_vm: f64,
        cold_seconds: f64,
        cold_seconds_unfused: f64,
        extra: HashMap<String, f64>,
    }
    let data = ProfileBench {
        workload: w.name.to_string(),
        instructions,
        vm_baseline_seconds: baseline_s,
        vm_noop_seconds: noop_s,
        noop_overhead,
        profiled_seconds: profiled_s,
        profiled_overhead,
        profiled_minstr_per_sec,
        fused_seconds: fused_s,
        fused_minstr_per_sec,
        speedup_fused_vs_vm,
        cold_seconds: cold_fused,
        cold_seconds_unfused: cold_unfused,
        extra,
    };
    std::fs::create_dir_all("results").expect("create results dir");
    let path = "results/BENCH_profile.json";
    std::fs::write(path, serde_json::to_string_pretty(&data).expect("serialize")).expect("write json");
    println!("\n[json written to {path}]");

    assert!(
        noop_overhead < 0.02,
        "unprofiled VM runs must cost under 2% of the pre-profiler loop (got {:+.2}%)",
        noop_overhead * 100.0
    );
    // the fusion table only earns its place if it moves the needle; the
    // eval bar matches the design target, the test bar leaves headroom
    // for small-input noise on shared CI cores
    let bar = if matches!(o.scale, xflow::Scale::Test) { 1.05 } else { 1.15 };
    assert!(
        speedup_fused_vs_vm >= bar,
        "fused VM must be at least {bar}x the unfused VM (got {speedup_fused_vs_vm:.3}x)"
    );
    assert!(
        cold_fused < cold_unfused,
        "fusion must shorten the profiling cold path ({cold_fused:.3e} !< {cold_unfused:.3e})"
    );
}
