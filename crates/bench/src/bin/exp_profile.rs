//! VM instruction-profiler overhead benchmark: the observed VM with the
//! noop recorder against the plain (statically unprofiled) VM loop.
//!
//! `run_vm_observed` with a disabled recorder monomorphizes to the same
//! dispatch loop `run_vm` uses — no counter array, no digram state — so
//! its cost over `run_vm` bounds what shipping the profiler hooks costs
//! every un-profiled run. Bit-equality of results and semantic profiles
//! is asserted across all three arms before anything is timed, then
//! min-of-K sampling keeps scheduler noise out of the ratios. The noop
//! overhead must stay under 2%, like the telemetry layer's (`exp_obs`).
//!
//! Writes `results/BENCH_profile.json`.

use std::collections::HashMap;
use std::time::Instant;
use xflow::NoopRecorder;
use xflow_bench::opts;
use xflow_minilang::{compile, run_vm, run_vm_observed, run_vm_profiled, Limits, NullTracer, DEFAULT_SEED};

/// Minimum seconds per run for each of three arms, sampled *interleaved*:
/// every round times all arms back-to-back, so a slow stretch of the
/// machine (frequency drop, a neighbor burning the core) hits all arms
/// alike instead of biasing whichever arm happened to run during it.
/// Sequential per-arm sampling on a single shared core was measured to
/// swing the noop/baseline ratio by ±20%; interleaving bounds it.
fn min_of_k_interleaved(samples: usize, passes: usize, arms: &mut [&mut dyn FnMut()]) -> Vec<f64> {
    let mut best = vec![f64::INFINITY; arms.len()];
    for _ in 0..samples {
        for (i, arm) in arms.iter_mut().enumerate() {
            let t0 = Instant::now();
            for _ in 0..passes {
                arm();
            }
            best[i] = best[i].min(t0.elapsed().as_secs_f64() / passes as f64);
        }
    }
    best
}

fn main() {
    let o = opts();
    let w = xflow_workloads::cfd();
    let prog = w.program();
    let inputs = w.inputs(o.scale);
    let vm = compile(&prog).expect("compile");
    println!("=== VM profiler overhead on {} ({:?} scale) ===\n", w.name, o.scale);

    // all three arms must agree to the bit before timing means anything
    let (p_plain, _, r_plain) = run_vm(&vm, &inputs, NullTracer).expect("plain run");
    let (p_noop, _, r_noop) =
        run_vm_observed(&vm, &inputs, NullTracer, Limits::default(), DEFAULT_SEED, &NoopRecorder).expect("noop run");
    let (p_prof, _, r_prof, iprof) =
        run_vm_profiled(&vm, &inputs, NullTracer, Limits::default(), DEFAULT_SEED).expect("profiled run");
    assert_eq!(r_plain.to_bits(), r_noop.to_bits(), "noop-observed result must match plain");
    assert_eq!(r_plain.to_bits(), r_prof.to_bits(), "profiled result must match plain");
    assert_eq!(p_plain.stmt_exec, p_noop.stmt_exec);
    assert_eq!(p_plain.stmt_exec, p_prof.stmt_exec);
    let instructions = iprof.total();
    assert!(instructions > 0);

    let (samples, passes) = if matches!(o.scale, xflow::Scale::Test) { (12, 3) } else { (9, 10) };
    let mut arm_plain = || {
        std::hint::black_box(run_vm(&vm, &inputs, NullTracer).expect("run").2);
    };
    let mut arm_noop = || {
        std::hint::black_box(
            run_vm_observed(&vm, &inputs, NullTracer, Limits::default(), DEFAULT_SEED, &NoopRecorder).expect("run").2,
        );
    };
    let mut arm_profiled = || {
        std::hint::black_box(
            run_vm_profiled(&vm, &inputs, NullTracer, Limits::default(), DEFAULT_SEED).expect("run").3.total(),
        );
    };
    let times = min_of_k_interleaved(samples, passes, &mut [&mut arm_plain, &mut arm_noop, &mut arm_profiled]);
    let (baseline_s, noop_s, profiled_s) = (times[0], times[1], times[2]);

    let noop_overhead = noop_s / baseline_s - 1.0;
    let profiled_overhead = profiled_s / baseline_s - 1.0;
    let profiled_minstr_per_sec = instructions as f64 / 1e6 / profiled_s;
    println!("instructions per run:        {instructions}");
    println!("plain VM:                    {baseline_s:>12.3e} s");
    println!("noop-observed VM:            {noop_s:>12.3e} s  ({:+.2}%)", noop_overhead * 100.0);
    println!("profiled VM:                 {profiled_s:>12.3e} s  ({:+.2}%)", profiled_overhead * 100.0);
    println!("profiled throughput:         {profiled_minstr_per_sec:>12.2} Minstr/s");
    println!("\ntop opcodes:");
    for (name, count) in iprof.ranked_ops().into_iter().take(5) {
        println!("  {name:<16} {count}");
    }

    #[derive(serde::Serialize)]
    struct ProfileBench {
        workload: String,
        instructions: u64,
        vm_baseline_seconds: f64,
        vm_noop_seconds: f64,
        noop_overhead: f64,
        profiled_seconds: f64,
        profiled_overhead: f64,
        profiled_minstr_per_sec: f64,
        extra: HashMap<String, f64>,
    }
    let data = ProfileBench {
        workload: w.name.to_string(),
        instructions,
        vm_baseline_seconds: baseline_s,
        vm_noop_seconds: noop_s,
        noop_overhead,
        profiled_seconds: profiled_s,
        profiled_overhead,
        profiled_minstr_per_sec,
        extra: HashMap::new(),
    };
    std::fs::create_dir_all("results").expect("create results dir");
    let path = "results/BENCH_profile.json";
    std::fs::write(path, serde_json::to_string_pretty(&data).expect("serialize")).expect("write json");
    println!("\n[json written to {path}]");

    assert!(
        noop_overhead < 0.02,
        "unprofiled VM runs must cost under 2% of the pre-profiler loop (got {:+.2}%)",
        noop_overhead * 100.0
    );
}
