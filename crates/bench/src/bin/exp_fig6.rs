//! Figure 6: model-projected performance breakdown (computation, memory
//! access, overlap) for each SORD hot spot on BG/Q.

fn main() {
    let opts = xflow_bench::opts();
    xflow_bench::breakdown_figure("Figure 6", "sord", &xflow::bgq(), &opts);
}
