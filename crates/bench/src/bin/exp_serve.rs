//! Projection-service benchmark: warm request throughput and latency,
//! plus the single-flight cold amortization win.
//!
//! Three measurements against an in-process server on a loopback port:
//!
//! * **cold single** — one `/v1/project` request against a fresh store:
//!   the full 6-stage pipeline build plus HTTP overhead;
//! * **warm traffic** — N sequential `/v1/project` requests against the
//!   primed store: pure cache-hit serving. Reports requests/s and
//!   p50/p99 latency;
//! * **herd** — H concurrent clients hitting a *fresh* store at once:
//!   the store's single-flight latch means the pipeline builds once and
//!   every other client waits, so the herd's wall time is amortized
//!   toward one cold build instead of H. The speedup is measured against
//!   the naive rebuild-per-client cost (H × cold single).
//!
//! Writes `results/BENCH_serve.json` and asserts the single-flight
//! invariant (exactly 6 stage builds under the herd).

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Instant;
use xflow::serve::{ServeConfig, Server};
use xflow_bench::opts;

const PROJECT_BODY: &str = r#"{"workload":"cfd","machine":"bgq","top":5}"#;

/// One blocking HTTP request; returns the response body.
fn post(addr: SocketAddr, path: &str, body: &str) -> String {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.set_nodelay(true).expect("nodelay");
    let req = format!(
        "POST {path} HTTP/1.1\r\nhost: bench\r\ncontent-length: {}\r\nconnection: close\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(req.as_bytes()).expect("write");
    let mut reader = BufReader::new(stream);
    let mut status = String::new();
    reader.read_line(&mut status).expect("status");
    assert!(status.contains("200"), "request failed: {status}");
    let mut content_length = 0usize;
    loop {
        let mut line = String::new();
        reader.read_line(&mut line).expect("header");
        if line.trim_end().is_empty() {
            break;
        }
        if let Some(v) = line.to_ascii_lowercase().strip_prefix("content-length:") {
            content_length = v.trim().parse().expect("length");
        }
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body).expect("body");
    String::from_utf8(body).expect("utf-8")
}

fn start_server() -> xflow::serve::RunningServer {
    let config = ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        threads: 4,
        machines_dir: Some("/nonexistent-machines-dir".to_string()),
        ..ServeConfig::default()
    };
    Server::bind(config).expect("bind").start().expect("start")
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() - 1) as f64 * p).round() as usize;
    sorted[idx]
}

fn main() {
    let o = opts();
    let (warm_requests, herd_clients) = if matches!(o.scale, xflow::Scale::Test) { (200, 8) } else { (2000, 16) };

    // -- cold single: fresh store, one request carries the whole build
    let server = start_server();
    let t0 = Instant::now();
    let cold_body = post(server.addr(), "/v1/project", PROJECT_BODY);
    let cold_single = t0.elapsed().as_secs_f64();
    assert_eq!(server.store().stats().misses(), 6, "cold request builds every stage");

    // -- warm traffic on the now-primed store
    let mut latencies = Vec::with_capacity(warm_requests);
    let warm_t0 = Instant::now();
    for _ in 0..warm_requests {
        let t = Instant::now();
        let body = post(server.addr(), "/v1/project", PROJECT_BODY);
        latencies.push(t.elapsed().as_secs_f64());
        assert_eq!(body, cold_body, "warm responses must match the cold one");
    }
    let warm_wall = warm_t0.elapsed().as_secs_f64();
    let warm_per_sec = warm_requests as f64 / warm_wall;
    latencies.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let p50 = percentile(&latencies, 0.50);
    let p99 = percentile(&latencies, 0.99);
    assert_eq!(server.store().stats().misses(), 6, "warm traffic must not rebuild");
    server.stop();

    // -- thundering herd against a fresh store
    let server = start_server();
    let addr = server.addr();
    let herd_t0 = Instant::now();
    let bodies: Vec<String> = crossbeam::thread::scope(|scope| {
        let handles: Vec<_> =
            (0..herd_clients).map(|_| scope.spawn(move |_| post(addr, "/v1/project", PROJECT_BODY))).collect();
        handles.into_iter().map(|h| h.join().expect("client")).collect()
    })
    .expect("scope");
    let herd_wall = herd_t0.elapsed().as_secs_f64();
    for b in &bodies {
        assert_eq!(b, &cold_body, "herd responses must be identical");
    }
    let herd_stats = server.store().stats();
    assert_eq!(herd_stats.misses(), 6, "single-flight: the herd builds each stage once, got {herd_stats:?}");
    let herd_waits = herd_stats.singleflight_waits();
    server.stop();

    let naive_rebuild = cold_single * herd_clients as f64;
    let speedup_singleflight = naive_rebuild / herd_wall;

    println!("=== projection service ({:?} scale) ===\n", o.scale);
    println!("cold single request      : {cold_single:>10.3e} s");
    println!("warm requests            : {warm_requests} in {warm_wall:.3} s  ({warm_per_sec:.0} req/s)");
    println!("warm latency             : p50 {p50:.3e} s   p99 {p99:.3e} s");
    println!("herd ({herd_clients} cold clients)    : wall {herd_wall:.3e} s, {herd_waits} single-flight waits");
    println!("single-flight amortization: {speedup_singleflight:.1}x vs rebuild-per-client");

    #[derive(serde::Serialize)]
    struct ServeBench {
        scale: String,
        server_threads: u64,
        cold_single_seconds: f64,
        warm_requests: u64,
        warm_requests_per_sec: f64,
        warm_p50_latency_seconds: f64,
        warm_p99_latency_seconds: f64,
        herd_clients: u64,
        herd_wall_seconds: f64,
        herd_stage_builds: u64,
        herd_singleflight_waits: u64,
        speedup_singleflight_vs_rebuild: f64,
    }
    let data = ServeBench {
        scale: format!("{:?}", o.scale),
        server_threads: 4,
        cold_single_seconds: cold_single,
        warm_requests: warm_requests as u64,
        warm_requests_per_sec: warm_per_sec,
        warm_p50_latency_seconds: p50,
        warm_p99_latency_seconds: p99,
        herd_clients: herd_clients as u64,
        herd_wall_seconds: herd_wall,
        herd_stage_builds: 6,
        herd_singleflight_waits: herd_waits,
        speedup_singleflight_vs_rebuild: speedup_singleflight,
    };
    std::fs::create_dir_all("results").expect("create results dir");
    let path = "results/BENCH_serve.json";
    std::fs::write(path, serde_json::to_string_pretty(&data).expect("serialize")).expect("write json");
    println!("[json written to {path}]");
}
