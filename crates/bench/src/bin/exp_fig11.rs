//! Figure 11: srad hot spot coverage curves (Prof, Modl(p), Modl(m)) on BG/Q.

fn main() {
    let opts = xflow_bench::opts();
    xflow_bench::coverage_figure("Figure 11", "srad", &xflow::bgq(), &opts);
}
