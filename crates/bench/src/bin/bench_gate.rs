//! Benchmark-regression gate for CI.
//!
//! Compares freshly regenerated `BENCH_*.json` reports against the
//! committed baselines and exits nonzero when any gated metric moved in
//! the bad direction by more than the tolerance (see
//! [`xflow_bench::gate`] for direction inference).
//!
//! ```text
//! bench_gate --baseline results-baseline --current results \
//!            [--tolerance 0.2] [--floor 1e-6] [--files a.json,b.json]
//! ```

use xflow_bench::gate::{compare_files, render_deltas, GateConfig};

const DEFAULT_FILES: &str =
    "BENCH_sweep.json,BENCH_session.json,BENCH_obs.json,BENCH_kernel.json,BENCH_serve.json,BENCH_profile.json";

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let mut baseline = String::new();
    let mut current = String::new();
    let mut files = DEFAULT_FILES.to_string();
    let mut cfg = GateConfig { tolerance: 0.2, floor: 1e-6 };
    let mut i = 1;
    while i < args.len() {
        let need = |i: usize| {
            args.get(i + 1).cloned().unwrap_or_else(|| {
                eprintln!("{} needs a value", args[i]);
                std::process::exit(2);
            })
        };
        match args[i].as_str() {
            "--baseline" => {
                baseline = need(i);
                i += 1;
            }
            "--current" => {
                current = need(i);
                i += 1;
            }
            "--files" => {
                files = need(i);
                i += 1;
            }
            "--tolerance" => {
                cfg.tolerance = need(i).parse().expect("--tolerance needs a number");
                i += 1;
            }
            "--floor" => {
                cfg.floor = need(i).parse().expect("--floor needs a number");
                i += 1;
            }
            other => {
                eprintln!("unknown option `{other}`");
                std::process::exit(2);
            }
        }
        i += 1;
    }
    if baseline.is_empty() || current.is_empty() {
        eprintln!("usage: bench_gate --baseline DIR --current DIR [--tolerance T] [--floor F] [--files a,b]");
        std::process::exit(2);
    }

    let mut regressions = 0usize;
    for file in files.split(',').filter(|f| !f.is_empty()) {
        let b = std::path::Path::new(&baseline).join(file);
        let c = std::path::Path::new(&current).join(file);
        match compare_files(&b, &c, &cfg) {
            Ok(deltas) => {
                print!("{}", render_deltas(file, &deltas));
                regressions += deltas.iter().filter(|d| d.regression).count();
            }
            Err(e) => {
                eprintln!("bench_gate: {e}");
                std::process::exit(2);
            }
        }
    }
    if regressions > 0 {
        eprintln!("bench_gate: {regressions} metric(s) regressed beyond {:.0}%", cfg.tolerance * 100.0);
        std::process::exit(1);
    }
    println!("bench_gate: no regressions beyond {:.0}%", cfg.tolerance * 100.0);
}
