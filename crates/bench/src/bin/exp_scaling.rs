//! Abstract/Section I claim: the analysis time does not increase with the
//! input data size, while any execution-based approach (the simulator here,
//! cycle-accurate simulation in general) scales at least linearly.

use std::collections::HashMap;
use std::time::Instant;
use xflow::{bgq, initial_env, InputSpec};
use xflow_bench::{maybe_write_json, opts, FigureData};

fn main() {
    let opts = opts();
    let w = xflow_bench::workload("srad");
    let prog = w.program();
    let m = bgq();

    println!("=== analysis cost vs input size (SRAD, image n × n) ===\n");
    println!("{:>8} {:>16} {:>16} {:>16} {:>12}", "n", "model time", "BET nodes", "sim time", "sim events~");

    let mut model_times = Vec::new();
    let mut sim_times = Vec::new();
    let mut labels = Vec::new();
    let sizes: &[f64] =
        if matches!(opts.scale, xflow::Scale::Test) { &[16.0, 32.0, 64.0] } else { &[16.0, 32.0, 64.0, 128.0, 256.0] };
    for &n in sizes {
        let inputs = InputSpec::from_pairs([("ROWS", n), ("COLS", n), ("SAMPLE", 8.0), ("ITERS", 2.0)]);

        // model path: profile once (input-dependent but cheap at any size —
        // the paper profiles once on a small local run), then translate,
        // build the BET, and project. We time the *analysis* (post-profile).
        let prof = xflow_minilang::profile(&prog, &inputs).expect("profile");
        let t0 = Instant::now();
        let tr = xflow_minilang::translate(&prog, &prof).expect("translate");
        let env = initial_env(&tr, &inputs);
        let bet = xflow_bet::build(&tr.skeleton, &env).expect("bet");
        let libs = xflow_sim::calibrate_library(128);
        let proj = xflow_hotspot::project(&bet, &m, &xflow_hw::Roofline, &libs);
        let model_dt = t0.elapsed();

        // execution path: the simulator must run every operation
        let t1 = Instant::now();
        let rep = xflow_sim::simulate(&prog, &inputs, &m, Default::default()).expect("simulate");
        let sim_dt = t1.elapsed();

        println!("{:>8} {:>16.3?} {:>16} {:>16.3?} {:>12.2e}", n, model_dt, bet.len(), sim_dt, rep.total_cycles);
        let _ = proj;
        model_times.push(model_dt.as_secs_f64());
        sim_times.push(sim_dt.as_secs_f64());
        labels.push(format!("n={n}"));
    }

    let model_growth = model_times.last().unwrap() / model_times.first().unwrap();
    let sim_growth = sim_times.last().unwrap() / sim_times.first().unwrap();
    let size_growth = (sizes.last().unwrap() / sizes.first().unwrap()).powi(2);
    println!(
        "\ninput grew {size_growth:.0}×: model time grew {model_growth:.1}×, simulation time grew {sim_growth:.1}×"
    );
    println!("(the BET node count is identical at every size — the analysis is structural)");
    let mut series: HashMap<String, Vec<f64>> = HashMap::new();
    series.insert("model_seconds".into(), model_times);
    series.insert("sim_seconds".into(), sim_times);
    let data =
        FigureData { experiment: "scaling".into(), workload: "SRAD".into(), machine: m.name.clone(), series, labels };
    maybe_write_json(&opts, "scaling", &data);
}
