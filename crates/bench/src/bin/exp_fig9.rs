//! Figure 9: the SORD hot path on BG/Q — all control flow reaching the hot
//! spots from main, with expected repetitions and branch probabilities.

use xflow::EVAL_CRITERIA;
use xflow_bench::{eval_run, opts, workload};

fn main() {
    let opts = opts();
    let w = workload("sord");
    let m = xflow::bgq();
    let run = eval_run(&w, &m, opts.scale);
    let sel = run.mp.select(&run.app.units, EVAL_CRITERIA);

    println!("=== Figure 9: SORD hot path on {} ===\n", m.name);
    println!(
        "selection: coverage {:.1}% of projected runtime in {:.1}% of the source\n",
        sel.coverage() * 100.0,
        sel.leanness() * 100.0
    );
    print!("{}", xflow::hot_path_report(&run.app, &sel));
    println!("\n(×N = expected trips; p = probability of reaching the node; ENR =");
    println!(" expected number of repetitions; [...] = context values at the spot)");
}
