//! Section VII summary: selection quality for every workload × machine at
//! the selection size chosen by the criteria — the paper reports an average
//! of 95.8% and no case below 80%.

use std::collections::HashMap;
use xflow::EVAL_CRITERIA;
use xflow_bench::{eval_run, machines, maybe_write_json, opts, FigureData};

fn main() {
    let opts = opts();
    println!("=== selection quality summary (paper: mean 95.8%, min ≥ 80%) ===\n");
    println!(
        "{:<10} {:<8} {:>9} {:>12} {:>11} {:>9}",
        "workload", "machine", "Q(sel)", "sel size", "coverage", "overlap@10"
    );
    let mut all_q = Vec::new();
    let mut labels = Vec::new();
    for w in xflow_workloads::all() {
        for m in machines() {
            let run = eval_run(&w, &m, opts.scale);
            let sel = run.mp.select(&run.app.units, EVAL_CRITERIA);
            let k = sel.spots.len().max(1);
            let q = run.cmp.quality_at(k);
            println!(
                "{:<10} {:<8} {:>8.1}% {:>12} {:>10.1}% {:>9}/10",
                w.name,
                m.name,
                q * 100.0,
                k,
                sel.coverage() * 100.0,
                run.cmp.top_k_overlap(10)
            );
            all_q.push(q);
            labels.push(format!("{} on {}", w.name, m.name));
        }
    }
    let mean = all_q.iter().sum::<f64>() / all_q.len() as f64;
    let min = all_q.iter().cloned().fold(1.0f64, f64::min);
    println!("\nmean quality: {:.1}% (paper 95.8%)   minimum: {:.1}% (paper ≥ 80%)", mean * 100.0, min * 100.0);
    let mut series: HashMap<String, Vec<f64>> = HashMap::new();
    series.insert("quality".into(), all_q);
    series.insert("summary_mean_min".into(), vec![mean, min]);
    let data =
        FigureData { experiment: "quality".into(), workload: "all".into(), machine: "both".into(), series, labels };
    maybe_write_json(&opts, "quality", &data);
}
