//! Batched SoA evaluation kernel benchmark: scalar plan evaluation vs the
//! machine-specialized kernel (pre-resolved [`xflow_hw::MachineSpec`]
//! constants + reusable [`xflow_hotspot::Scratch`] buffers) vs the batch
//! entry point vs the columnar lane-vectorized batch
//! ([`xflow_hotspot::PlanKernel::evaluate_columns`]), plus work-stealing
//! sweep throughput on the same grid.
//!
//! The batch arm is split into kernel compute ([`evaluate_spec_into`] into
//! a warm scratch) and Projection materialization
//! (`batch_materialize_overhead_seconds`) — the overhead the columnar SoA
//! output removes. Every timed path is first checked `to_bits`-identical
//! to the scalar evaluator — the kernel is a performance refactoring,
//! never a numeric one. Writes `results/BENCH_kernel.json` for the CI
//! regression gate.
//!
//! [`evaluate_spec_into`]: xflow_hotspot::PlanKernel::evaluate_spec_into

use std::collections::HashMap;
use std::time::Instant;
use xflow::{generic, Axis, DesignSpace, ModeledApp, Roofline, SweepOptions};
use xflow_bench::opts;
use xflow_hotspot::ProjectionPlan;
use xflow_hw::MachineSpec;

/// Best-of-5 average: each trial averages `reps` calls, and the minimum
/// trial is reported — the least-interrupted run is the closest estimate
/// of the true cost on a shared host.
fn time_n<F: FnMut()>(reps: usize, mut f: F) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..5 {
        let t0 = Instant::now();
        for _ in 0..reps {
            f();
        }
        best = best.min(t0.elapsed().as_secs_f64() / reps as f64);
    }
    best
}

fn main() {
    let o = opts();
    let w = xflow_workloads::cfd();
    let app = ModeledApp::from_workload(&w, o.scale).expect("pipeline");
    let libs = xflow::default_library().clone();
    let test_scale = matches!(o.scale, xflow::Scale::Test);
    let reps = if test_scale { 20 } else { 60 };

    let space = DesignSpace::grid(
        generic(),
        vec![Axis::dram_bw(&[0.5, 1.0, 2.0, 4.0, 8.0]), Axis::mlp(&[2.0, 4.0, 8.0, 16.0, 32.0])],
    );
    let machines = space.machines().to_vec();
    let n = machines.len();
    let lane_width = xflow_hotspot::lane_width();
    println!("=== SoA kernel: {n}-point grid on {} (lane width {lane_width}) ===\n", w.name);

    let plan = ProjectionPlan::new(&app.bet, &libs);
    let kernel = plan.kernel();
    let specs: Vec<MachineSpec> = machines.iter().map(MachineSpec::resolve).collect();

    // correctness first: every kernel path must be bit-identical to the
    // scalar evaluator before any of its timings mean anything
    let batch = kernel.evaluate_batch(&specs);
    let columns = kernel.evaluate_columns(&specs);
    let mut scratch = kernel.make_scratch();
    for (i, ((machine, spec), from_batch)) in machines.iter().zip(&specs).zip(&batch).enumerate() {
        let scalar = plan.evaluate(machine, &Roofline);
        kernel.evaluate_spec_into(spec, &mut scratch);
        let from_scratch = scratch.projection(&kernel);
        for (label, candidate) in [("batch", from_batch), ("scratch", &from_scratch)] {
            assert_eq!(
                candidate.total_time.to_bits(),
                scalar.total_time.to_bits(),
                "{label} path diverged on {}",
                machine.name
            );
            for (node, (a, b)) in candidate.node_costs.iter().zip(&scalar.node_costs).enumerate() {
                assert_eq!(a.total.to_bits(), b.total.to_bits(), "{label} node {node} on {}", machine.name);
            }
        }
        assert_eq!(
            columns.total(i).to_bits(),
            scalar.total_time.to_bits(),
            "columnar path diverged on {}",
            machine.name
        );
        for sc in columns.stmt_row(i) {
            assert_eq!(
                sc.total.to_bits(),
                scalar.per_stmt[&sc.stmt].total.to_bits(),
                "columnar stmt row diverged on {}",
                machine.name
            );
        }
    }
    println!("bit-identity: batch + scratch + columnar paths match scalar evaluate on all {n} points");

    // scalar baseline: the per-machine plan evaluation the kernel replaces
    let eval_point_s = time_n(reps, || {
        for m in &machines {
            std::hint::black_box(plan.evaluate(m, &Roofline).total_time);
        }
    }) / n as f64;

    // kernel compute alone: pre-resolved specs + one warm scratch, zero
    // allocations, no Projection materialized
    let mut scratch = kernel.make_scratch();
    let kernel_point_s = time_n(reps, || {
        for spec in &specs {
            kernel.evaluate_spec_into(spec, &mut scratch);
            std::hint::black_box(scratch.total_time());
        }
    }) / n as f64;

    // batch entry point: includes materializing a Projection per machine —
    // the per-point overhead vs the kernel arm is pure materialization
    let batch_point_s = time_n(reps, || {
        std::hint::black_box(kernel.evaluate_batch(&specs).len());
    }) / n as f64;
    let batch_materialize_overhead_s = (batch_point_s - kernel_point_s).max(0.0);

    // columnar SoA batch: lane-vectorized across machines, dense column
    // output, no per-point Projection
    let batch_soa_point_s = time_n(reps, || {
        std::hint::black_box(kernel.evaluate_columns(&specs).totals().len());
    }) / n as f64;

    let speedup_kernel_vs_evaluate = eval_point_s / kernel_point_s;
    let speedup_batch_vs_evaluate = eval_point_s / batch_point_s;
    let speedup_batch_soa_vs_evaluate = eval_point_s / batch_soa_point_s;

    println!("scalar evaluate (per point):        {eval_point_s:>12.3e} s");
    println!("kernel + warm scratch (per point):  {kernel_point_s:>12.3e} s  ({speedup_kernel_vs_evaluate:.1}x)");
    println!("evaluate_batch (per point):         {batch_point_s:>12.3e} s  ({speedup_batch_vs_evaluate:.1}x)");
    println!("  of which materialization:         {batch_materialize_overhead_s:>12.3e} s");
    println!("columnar SoA batch (per point):     {batch_soa_point_s:>12.3e} s  ({speedup_batch_soa_vs_evaluate:.1}x)");

    // work-stealing sweep throughput over the same grid (columnar arena
    // output), auto threads clamped to the host (a core-starved runner
    // measures 1-worker reality, not oversubscription noise)
    let cores = std::thread::available_parallelism().map(|c| c.get()).unwrap_or(1);
    let sweep_threads = cores.min(8);
    app.plan();
    app.kernel();
    let sweep_s = time_n(reps.min(10), || {
        std::hint::black_box(space.sweep_opts(&app, SweepOptions::with_threads(sweep_threads)).points.len());
    });
    let sweep_points_per_sec = n as f64 / sweep_s;
    println!("\nwork-stealing sweep ({sweep_threads} worker(s), {cores} core(s) available):");
    println!("{n}-point sweep:                      {sweep_s:>12.3e} s  ({sweep_points_per_sec:.0} points/sec)");

    #[derive(serde::Serialize)]
    struct KernelBench {
        workload: String,
        grid_points: usize,
        lane_width: f64,
        eval_point_seconds: f64,
        kernel_point_seconds: f64,
        batch_point_seconds: f64,
        batch_soa_point_seconds: f64,
        batch_materialize_overhead_seconds: f64,
        speedup_kernel_vs_evaluate: f64,
        speedup_batch_vs_evaluate: f64,
        speedup_batch_soa_vs_evaluate: f64,
        available_cores: usize,
        sweep_threads: usize,
        sweep_points_per_sec: f64,
        extra: HashMap<String, f64>,
    }
    let data = KernelBench {
        workload: w.name.to_string(),
        grid_points: n,
        lane_width: lane_width as f64,
        eval_point_seconds: eval_point_s,
        kernel_point_seconds: kernel_point_s,
        batch_point_seconds: batch_point_s,
        batch_soa_point_seconds: batch_soa_point_s,
        batch_materialize_overhead_seconds: batch_materialize_overhead_s,
        speedup_kernel_vs_evaluate,
        speedup_batch_vs_evaluate,
        speedup_batch_soa_vs_evaluate,
        available_cores: cores,
        sweep_threads,
        sweep_points_per_sec,
        extra: HashMap::new(),
    };
    std::fs::create_dir_all("results").expect("create results dir");
    let path = "results/BENCH_kernel.json";
    std::fs::write(path, serde_json::to_string_pretty(&data).expect("serialize")).expect("write json");
    println!("\n[json written to {path}]");

    // hard contract at eval scale; test scale (20 reps on a shared CI
    // runner) keeps a noise-tolerant floor, with the committed-baseline
    // gate (bench_gate, 20% tolerance) catching real regressions
    let min_speedup = if test_scale { 2.0 } else { 3.0 };
    assert!(
        speedup_kernel_vs_evaluate >= min_speedup,
        "specialized kernel must be >={min_speedup}x the scalar evaluator per point (got {speedup_kernel_vs_evaluate:.1}x)"
    );
    assert!(
        speedup_batch_soa_vs_evaluate >= min_speedup,
        "columnar SoA batch must be >={min_speedup}x the scalar evaluator per point (got {speedup_batch_soa_vs_evaluate:.1}x)"
    );
    if !test_scale {
        assert!(
            sweep_points_per_sec >= 1.0e6,
            "columnar sweep must clear 1M points/s on the 25-pt grid (got {sweep_points_per_sec:.0})"
        );
    }
}
