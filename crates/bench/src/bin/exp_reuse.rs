//! Section VII-C: cross-block cache interactions. The paper traces part of
//! its projection error to hot spots reusing data other hot spots brought
//! into the cache (SORD's velocity kernel vs its stress kernels). The
//! simulator tracks, per block, how many L1 hits land on lines whose
//! previous toucher was a different block — the quantity the constant
//! hit-rate projection model cannot represent.

use std::collections::HashMap;
use xflow_bench::{eval_run, maybe_write_json, opts, workload, FigureData, TOP_K};

fn main() {
    let opts = opts();
    let w = workload("sord");
    let m = xflow::bgq();
    let run = eval_run(&w, &m, opts.scale);

    println!("=== §VII-C: cross-block cache reuse per SORD hot spot ({}) ===\n", m.name);
    println!("{:<4} {:<26} {:>14} {:>14} {:>12}", "#", "hot spot (measured)", "cross hits", "self hits", "cross share");

    // aggregate per unit from the per-minilang-statement counters
    let mut cross: HashMap<xflow_skeleton::StmtId, u64> = HashMap::new();
    let mut own: HashMap<xflow_skeleton::StmtId, u64> = HashMap::new();
    for (mstmt, &c) in &run.measured.report.stmt_cross_hits {
        if let Some(&skel) = run.app.translation.map.get(mstmt) {
            *cross.entry(run.app.units.unit_of(skel)).or_insert(0) += c;
        }
    }
    for (mstmt, &c) in &run.measured.report.stmt_self_hits {
        if let Some(&skel) = run.app.translation.map.get(mstmt) {
            *own.entry(run.app.units.unit_of(skel)).or_insert(0) += c;
        }
    }

    let mut series: HashMap<String, Vec<f64>> = HashMap::new();
    let mut labels = Vec::new();
    for (i, &unit) in run.cmp.measured_ranking.iter().take(TOP_K).enumerate() {
        let c = cross.get(&unit).copied().unwrap_or(0);
        let o = own.get(&unit).copied().unwrap_or(0);
        let share = if c + o > 0 { c as f64 / (c + o) as f64 } else { 0.0 };
        println!("{:<4} {:<26} {:>14} {:>14} {:>11.1}%", i + 1, run.app.units.name(unit), c, o, share * 100.0);
        series.entry("cross_share".into()).or_default().push(share);
        labels.push(run.app.units.name(unit));
    }
    println!(
        "\nblocks that consume data another kernel just produced (stress_xx reads\n\
         the velocities vel_update wrote; attenuate reads the fresh stress\n\
         tensors) show the highest cross-block shares; first-touch init loops\n\
         show zero — the interaction the constant-hit-rate projection cannot\n\
         see, and a named source of its error in the paper (§VII-C)."
    );
    let data =
        FigureData { experiment: "reuse".into(), workload: "SORD".into(), machine: m.name.clone(), series, labels };
    maybe_write_json(&opts, "reuse", &data);
}
