//! Ablation: how much do the paper's deliberate simplifications cost?
//! Compares the default extended roofline against the classic roofline
//! (perfect overlap), a divide-aware variant, and a full-vectorization
//! variant, reporting selection quality per workload on BG/Q.

use std::collections::HashMap;
use xflow::{bgq, compare, ModeledApp};
use xflow_bench::{maybe_write_json, opts, FigureData, TOP_K};
use xflow_hw::{ClassicRoofline, DivAwareRoofline, PerfModel, RefinedModel, Roofline, VectorAwareRoofline};

fn main() {
    let opts = opts();
    let m = bgq();
    let refined = RefinedModel::default();
    let models: [&dyn PerfModel; 5] = [&Roofline, &ClassicRoofline, &DivAwareRoofline, &VectorAwareRoofline, &refined];
    let libs = xflow_sim::calibrate_library(512);

    println!("=== model ablation on {} ===", m.name);
    println!("\nmean selection quality Q(1..10) — ranking fidelity:\n");
    print!("{:<10}", "workload");
    for model in models {
        print!("{:>18}", model.name());
    }
    println!();

    let mut series: HashMap<String, Vec<f64>> = HashMap::new();
    let mut labels = Vec::new();
    let mut share_rows: Vec<(String, Vec<f64>)> = Vec::new();
    for w in xflow_workloads::all() {
        let app = ModeledApp::from_workload(&w, opts.scale).expect("pipeline");
        let measured = app.measure_on(Some(&w), &m).expect("simulate");
        print!("{:<10}", w.name);
        let mut errs = Vec::new();
        for model in models {
            let mp = app.project_with(&m, model, &libs);
            let cmp = compare(&mp, &measured, TOP_K);
            let mean_q = cmp.quality.iter().sum::<f64>() / cmp.quality.len() as f64;
            print!("{:>17.1}%", mean_q * 100.0);
            series.entry(model.name().to_string()).or_default().push(mean_q);
            // mean absolute coverage-share error over the measured top-10:
            // how well each model predicts *how much* time each spot takes
            let mt = measured.total().max(1e-300);
            let err: f64 = cmp
                .measured_ranking
                .iter()
                .take(TOP_K)
                .map(|u| {
                    let ms = measured.unit_times.get(u).copied().unwrap_or(0.0) / mt;
                    let ps = mp.unit_times.get(u).copied().unwrap_or(0.0) / mp.total.max(1e-300);
                    (ms - ps).abs()
                })
                .sum::<f64>()
                / TOP_K as f64;
            errs.push(err);
        }
        println!();
        share_rows.push((w.name.to_string(), errs));
        labels.push(w.name.to_string());
    }

    println!("\nmean |measured − projected| coverage share over the top 10 — magnitude fidelity:\n");
    print!("{:<10}", "workload");
    for model in models {
        print!("{:>18}", model.name());
    }
    println!();
    for (name, errs) in &share_rows {
        print!("{name:<10}");
        for e in errs {
            print!("{:>17.2}%", e * 100.0);
        }
        println!();
        series.entry(format!("share_error_{name}")).or_default().extend(errs.iter().copied());
    }
    println!(
        "\nroofline+div recovers the CFD divide error; roofline+simd mainly\n\
         changes machines whose compilers vectorize beyond the model's default."
    );
    let data =
        FigureData { experiment: "ablation".into(), workload: "all".into(), machine: m.name.clone(), series, labels };
    maybe_write_json(&opts, "ablation", &data);
}
