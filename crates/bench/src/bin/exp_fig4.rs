//! Figure 4: SORD hot spot selection on BG/Q — Prof, Modl(p), Modl(m), and
//! the cross-machine curve Prof.Q(x) (Xeon-suggested hot spots evaluated
//! under BG/Q's measured profile), showing that hot spot selections are not
//! portable across machines while the model tracks each machine correctly.

use xflow_bench::{eval_run, maybe_write_json, names_of, opts, render_series, workload, FigureData, TOP_K};
use xflow_hotspot::coverage_curve;

fn main() {
    let opts = opts();
    let w = workload("sord");
    let here = eval_run(&w, &xflow::bgq(), opts.scale);
    let there = eval_run(&w, &xflow::xeon(), opts.scale);

    // Prof.Q(x): the Xeon-measured ranking scored under the BG/Q oracle
    let cross = coverage_curve(&there.cmp.measured_ranking, &here.measured.oracle, TOP_K);

    println!("=== Figure 4: SORD hot spot selections on BG/Q ===\n");
    println!(
        "{}",
        render_series(
            "cumulative BG/Q runtime coverage of the top-k selection",
            &[
                ("Prof.Q", &here.cmp.prof_curve),
                ("Modl(p)", &here.cmp.modl_p_curve),
                ("Modl(m)", &here.cmp.modl_m_curve),
                ("Prof.Q(x)", &cross),
                ("Q(k)", &here.cmp.quality),
            ],
        )
    );
    println!("BG/Q measured order: {:?}", names_of(&here, &here.cmp.measured_ranking, 6));
    println!("Xeon measured order: {:?}", names_of(&there, &there.cmp.measured_ranking, 6));
    println!(
        "\nProf.Q(x) trails Prof.Q wherever the Xeon ordering disagrees with BG/Q;\n\
         Modl(m) stays close to Prof.Q — the model is the portable selector."
    );
    let data = FigureData {
        experiment: "fig4".into(),
        workload: "SORD".into(),
        machine: "BG/Q".into(),
        series: [
            ("prof".to_string(), here.cmp.prof_curve.clone()),
            ("modl_p".to_string(), here.cmp.modl_p_curve.clone()),
            ("modl_m".to_string(), here.cmp.modl_m_curve.clone()),
            ("prof_cross".to_string(), cross),
            ("quality".to_string(), here.cmp.quality.clone()),
        ]
        .into_iter()
        .collect(),
        labels: names_of(&here, &here.cmp.measured_ranking, TOP_K),
    };
    maybe_write_json(&opts, "fig4", &data);
}
