//! Benchmark-regression gate: compare a freshly produced `BENCH_*.json`
//! report against a committed baseline and flag metrics that moved in
//! the *bad* direction by more than a tolerance.
//!
//! The comparison is schema-free — reports are parsed into the generic
//! [`Content`] tree and flattened to `path → number` — so adding a field
//! to a report never breaks the gate. Direction is inferred from the
//! metric name: throughput-like names (`speedup`, `per_sec`,
//! `throughput`) must not drop, cost-like names (`seconds`, `overhead`)
//! must not rise, and anything else (counts, labels, configuration
//! echoes) is informational only.

use serde::Content;
use std::fmt::Write as _;

/// Which way a metric is allowed to move.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Times and overheads: a rise beyond tolerance is a regression.
    LowerIsBetter,
    /// Speedups and throughputs: a drop beyond tolerance is a regression.
    HigherIsBetter,
    /// Structural values (counts, presets): never gate.
    Informational,
}

/// Classify a flattened metric path by its final key segment.
pub fn direction_of(path: &str) -> Direction {
    let key = path.rsplit('.').next().unwrap_or(path);
    // strip a `[i]` index so vector elements classify like their field
    let key = key.split('[').next().unwrap_or(key);
    if key.contains("speedup") || key.contains("per_sec") || key.contains("throughput") {
        Direction::HigherIsBetter
    } else if key.contains("seconds") || key.contains("overhead") {
        Direction::LowerIsBetter
    } else {
        Direction::Informational
    }
}

/// One metric present in both reports.
#[derive(Debug, Clone)]
pub struct MetricDelta {
    pub path: String,
    pub baseline: f64,
    pub current: f64,
    /// `(current − baseline) / |baseline|`; `0` when both are zero.
    pub rel_change: f64,
    pub direction: Direction,
    pub regression: bool,
}

/// Gate configuration.
#[derive(Debug, Clone)]
pub struct GateConfig {
    /// Allowed relative movement in the bad direction (`0.2` = 20%).
    pub tolerance: f64,
    /// Metrics whose baseline and current are both below this magnitude
    /// are skipped: sub-floor timings are scheduler noise, not signal.
    pub floor: f64,
}

impl Default for GateConfig {
    fn default() -> Self {
        Self { tolerance: 0.2, floor: 0.0 }
    }
}

/// Flatten a JSON tree into `path → number` rows. Non-numeric leaves
/// (strings, bools, nulls) are ignored.
pub fn flatten(c: &Content, prefix: &str, out: &mut Vec<(String, f64)>) {
    match c {
        Content::U64(v) => out.push((prefix.to_string(), *v as f64)),
        Content::I64(v) => out.push((prefix.to_string(), *v as f64)),
        Content::F64(v) => out.push((prefix.to_string(), *v)),
        Content::Seq(items) => {
            for (i, item) in items.iter().enumerate() {
                flatten(item, &format!("{prefix}[{i}]"), out);
            }
        }
        Content::Map(entries) => {
            for (k, v) in entries {
                let key = match k {
                    Content::Str(s) => s.clone(),
                    other => format!("{other:?}"),
                };
                let path = if prefix.is_empty() { key } else { format!("{prefix}.{key}") };
                flatten(v, &path, out);
            }
        }
        _ => {}
    }
}

/// Compare two parsed reports. Metrics present in only one side are
/// skipped (reports may legitimately gain fields between commits).
pub fn compare_reports(baseline: &Content, current: &Content, cfg: &GateConfig) -> Vec<MetricDelta> {
    let mut base = Vec::new();
    flatten(baseline, "", &mut base);
    let mut cur = Vec::new();
    flatten(current, "", &mut cur);
    let cur: std::collections::HashMap<String, f64> = cur.into_iter().collect();

    let mut out = Vec::new();
    for (path, b) in base {
        let Some(&c) = cur.get(&path) else { continue };
        if b.abs() < cfg.floor && c.abs() < cfg.floor {
            continue;
        }
        let rel_change = if b == c {
            0.0
        } else if b == 0.0 {
            f64::INFINITY * (c - b).signum()
        } else {
            (c - b) / b.abs()
        };
        let direction = direction_of(&path);
        let regression = match direction {
            Direction::LowerIsBetter => rel_change > cfg.tolerance,
            Direction::HigherIsBetter => rel_change < -cfg.tolerance,
            Direction::Informational => false,
        };
        out.push(MetricDelta { path, baseline: b, current: c, rel_change, direction, regression });
    }
    out
}

/// Compare two report files. Errors on unreadable or unparseable input —
/// a missing baseline must fail the gate loudly, not pass silently.
pub fn compare_files(
    baseline: &std::path::Path,
    current: &std::path::Path,
    cfg: &GateConfig,
) -> Result<Vec<MetricDelta>, String> {
    let read = |p: &std::path::Path| -> Result<Content, String> {
        let text = std::fs::read_to_string(p).map_err(|e| format!("cannot read {}: {e}", p.display()))?;
        serde_json::from_str(&text).map_err(|e| format!("bad JSON in {}: {e}", p.display()))
    };
    Ok(compare_reports(&read(baseline)?, &read(current)?, cfg))
}

/// Render a human summary: all regressions, plus a one-line tally.
pub fn render_deltas(label: &str, deltas: &[MetricDelta]) -> String {
    let mut out = String::new();
    let gated = deltas.iter().filter(|d| d.direction != Direction::Informational).count();
    let bad: Vec<&MetricDelta> = deltas.iter().filter(|d| d.regression).collect();
    let _ = writeln!(out, "{label}: {} metrics compared, {} gated, {} regressed", deltas.len(), gated, bad.len());
    for d in &bad {
        let _ = writeln!(
            out,
            "  REGRESSION {:<46} {:>12.4e} -> {:>12.4e} ({:+.1}%)",
            d.path,
            d.baseline,
            d.current,
            d.rel_change * 100.0
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn content(json: &str) -> Content {
        serde_json::from_str(json).unwrap()
    }

    #[test]
    fn directions_classify_by_key() {
        assert_eq!(direction_of("speedup_vs_legacy"), Direction::HigherIsBetter);
        assert_eq!(direction_of("points_per_sec[2]"), Direction::HigherIsBetter);
        assert_eq!(direction_of("suite_cold_seconds"), Direction::LowerIsBetter);
        assert_eq!(direction_of("collecting_overhead"), Direction::LowerIsBetter);
        assert_eq!(direction_of("grid_points"), Direction::Informational);
        assert_eq!(direction_of("nested.warm_disk_seconds"), Direction::LowerIsBetter);
    }

    #[test]
    fn kernel_bench_keys_classify_correctly() {
        // pins the direction of every gated BENCH_kernel.json metric so a
        // key rename can't silently demote a gate to informational
        for key in [
            "eval_point_seconds",
            "kernel_point_seconds",
            "batch_point_seconds",
            "batch_soa_point_seconds",
            "batch_materialize_overhead_seconds",
        ] {
            assert_eq!(direction_of(key), Direction::LowerIsBetter, "{key}");
        }
        for key in [
            "speedup_kernel_vs_evaluate",
            "speedup_batch_vs_evaluate",
            "speedup_batch_soa_vs_evaluate",
            "sweep_points_per_sec",
        ] {
            assert_eq!(direction_of(key), Direction::HigherIsBetter, "{key}");
        }
        for key in ["grid_points", "available_cores", "sweep_threads", "threads_requested[0]", "lane_width"] {
            assert_eq!(direction_of(key), Direction::Informational, "{key}");
        }
    }

    #[test]
    fn serve_bench_keys_classify_correctly() {
        // pins the direction of every gated BENCH_serve.json metric so a
        // key rename can't silently demote a gate to informational
        for key in ["cold_single_seconds", "warm_p50_latency_seconds", "warm_p99_latency_seconds", "herd_wall_seconds"]
        {
            assert_eq!(direction_of(key), Direction::LowerIsBetter, "{key}");
        }
        for key in ["warm_requests_per_sec", "speedup_singleflight_vs_rebuild"] {
            assert_eq!(direction_of(key), Direction::HigherIsBetter, "{key}");
        }
        for key in ["server_threads", "warm_requests", "herd_clients", "herd_stage_builds", "herd_singleflight_waits"] {
            assert_eq!(direction_of(key), Direction::Informational, "{key}");
        }
    }

    #[test]
    fn profile_bench_keys_classify_correctly() {
        // pins the direction of every gated BENCH_profile.json metric so a
        // key rename can't silently demote a gate to informational
        for key in [
            "vm_baseline_seconds",
            "vm_noop_seconds",
            "noop_overhead",
            "profiled_seconds",
            "profiled_overhead",
            "fused_seconds",
            "cold_seconds",
            "cold_seconds_unfused",
        ] {
            assert_eq!(direction_of(key), Direction::LowerIsBetter, "{key}");
        }
        for key in ["profiled_minstr_per_sec", "fused_minstr_per_sec", "speedup_fused_vs_vm"] {
            assert_eq!(direction_of(key), Direction::HigherIsBetter, "{key}");
        }
        // per-workload gains are keyed by workload name so a noisy small
        // workload can't flap the gate; only the summed cold path gates
        for key in ["instructions", "extra.fused_gain.CFD", "extra.fused_gain.SORD"] {
            assert_eq!(direction_of(key), Direction::Informational, "{key}");
        }
    }

    #[test]
    fn sim_bench_keys_classify_correctly() {
        // pins the direction of every gated BENCH_sim.json metric so a
        // key rename can't silently demote a gate to informational
        for key in [
            "dense_seconds",
            "reference_seconds",
            "oracle_sequential_seconds",
            "oracle_parallel_seconds",
            "validate_all_sequential_seconds",
            "validate_all_parallel_seconds",
        ] {
            assert_eq!(direction_of(key), Direction::LowerIsBetter, "{key}");
        }
        for key in [
            "sim_minstr_per_sec",
            "speedup_dense_vs_ref",
            "oracle_points_per_sec",
            "oracle_parallel_speedup",
            "validate_all_parallel_speedup",
        ] {
            assert_eq!(direction_of(key), Direction::HigherIsBetter, "{key}");
        }
        for key in ["threads", "sim_instructions", "oracle_records"] {
            assert_eq!(direction_of(key), Direction::Informational, "{key}");
        }
    }

    #[test]
    fn slower_time_and_lower_speedup_regress() {
        let base = content(r#"{"run_seconds": 1.0, "speedup": 10.0, "grid_points": 25}"#);
        let cfg = GateConfig::default();

        let worse = content(r#"{"run_seconds": 1.5, "speedup": 7.0, "grid_points": 50}"#);
        let deltas = compare_reports(&base, &worse, &cfg);
        let regressed: Vec<&str> = deltas.iter().filter(|d| d.regression).map(|d| d.path.as_str()).collect();
        assert_eq!(regressed, ["run_seconds", "speedup"]);

        // movement in the good direction never gates, no matter how large
        let better = content(r#"{"run_seconds": 0.1, "speedup": 99.0, "grid_points": 50}"#);
        assert!(compare_reports(&base, &better, &cfg).iter().all(|d| !d.regression));
    }

    #[test]
    fn tolerance_and_floor_are_honored() {
        let base = content(r#"{"a_seconds": 1.0, "b_seconds": 1e-9}"#);
        let cur = content(r#"{"a_seconds": 1.19, "b_seconds": 9e-9}"#);
        let cfg = GateConfig { tolerance: 0.2, floor: 1e-6 };
        let deltas = compare_reports(&base, &cur, &cfg);
        // a: +19% < 20% tolerance; b: below floor, skipped entirely
        assert_eq!(deltas.len(), 1);
        assert!(!deltas[0].regression);
    }

    #[test]
    fn vectors_and_missing_fields() {
        let base = content(r#"{"points_per_sec": [100.0, 200.0], "old_seconds": 2.0}"#);
        let cur = content(r#"{"points_per_sec": [100.0, 50.0], "new_seconds": 2.0}"#);
        let deltas = compare_reports(&base, &cur, &GateConfig::default());
        // old_seconds vanished → skipped; element 1 dropped 4× → regression
        assert_eq!(deltas.len(), 2);
        let bad: Vec<&str> = deltas.iter().filter(|d| d.regression).map(|d| d.path.as_str()).collect();
        assert_eq!(bad, ["points_per_sec[1]"]);
    }

    #[test]
    fn render_lists_regressions() {
        let base = content(r#"{"x_seconds": 1.0}"#);
        let cur = content(r#"{"x_seconds": 3.0}"#);
        let text = render_deltas("sweep", &compare_reports(&base, &cur, &GateConfig::default()));
        assert!(text.contains("REGRESSION x_seconds"), "{text}");
        assert!(text.contains("1 regressed"), "{text}");
    }
}
