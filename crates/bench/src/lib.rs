//! # xflow-bench — the experiment harness
//!
//! One binary per table/figure of the paper's evaluation (Section VII),
//! regenerating the same rows and series from this reproduction's substrate
//! (the ground-truth simulator in place of the physical BG/Q and Xeon).
//! See DESIGN.md for the experiment index and EXPERIMENTS.md for recorded
//! paper-vs-measured outcomes.
//!
//! Every binary accepts `--scale test|eval` (default `eval`) and prints to
//! stdout; pass `--json DIR` to also write machine-readable results.

pub mod gate;

use serde::Serialize;
use std::collections::HashMap;
use xflow::{bgq, compare, xeon, Comparison, MachineModel, Measured, ModeledApp, Scale, Workload};
use xflow_skeleton::StmtId;

/// Parsed common CLI options.
pub struct Opts {
    pub scale: Scale,
    pub json_dir: Option<String>,
}

/// Parse `--scale` / `--json` from `std::env::args`.
pub fn opts() -> Opts {
    let args: Vec<String> = std::env::args().collect();
    let mut scale = Scale::Eval;
    let mut json_dir = None;
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--scale" => {
                if let Some(v) = args.get(i + 1) {
                    scale = if v == "test" { Scale::Test } else { Scale::Eval };
                    i += 1;
                }
            }
            "--json" => {
                if let Some(v) = args.get(i + 1) {
                    json_dir = Some(v.clone());
                    i += 1;
                }
            }
            _ => {}
        }
        i += 1;
    }
    Opts { scale, json_dir }
}

/// A complete evaluation of one workload on one machine.
pub struct EvalRun {
    pub workload: Workload,
    pub machine: MachineModel,
    pub app: ModeledApp,
    pub mp: xflow::MachineProjection,
    pub measured: Measured,
    pub cmp: Comparison,
}

/// Number of ranks every figure/table reports.
pub const TOP_K: usize = 10;

/// Run the full pipeline + simulation for one workload/machine pair.
pub fn eval_run(w: &Workload, machine: &MachineModel, scale: Scale) -> EvalRun {
    let app = ModeledApp::from_workload(w, scale).expect("pipeline");
    let mp = app.project_on(machine);
    let measured = app.measure_on(Some(w), machine).expect("simulate");
    let cmp = compare(&mp, &measured, TOP_K);
    EvalRun { workload: w.clone(), machine: machine.clone(), app, mp, measured, cmp }
}

/// Both evaluation machines in the paper's order.
pub fn machines() -> [MachineModel; 2] {
    [bgq(), xeon()]
}

/// Find a workload by (case-insensitive) name.
pub fn workload(name: &str) -> Workload {
    xflow_workloads::all()
        .into_iter()
        .find(|w| w.name.eq_ignore_ascii_case(name))
        .unwrap_or_else(|| panic!("unknown workload {name}"))
}

/// Render aligned data series over k = 1..=n (the paper's figure format,
/// as text): one column per k, one row per series.
pub fn render_series(title: &str, series: &[(&str, &[f64])]) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    let n = series.iter().map(|(_, v)| v.len()).max().unwrap_or(0);
    let _ = writeln!(out, "{title}");
    let _ = write!(out, "{:<12}", "k");
    for k in 1..=n {
        let _ = write!(out, "{k:>8}");
    }
    let _ = writeln!(out);
    for (name, vals) in series {
        let _ = write!(out, "{name:<12}");
        for k in 0..n {
            match vals.get(k) {
                Some(v) => {
                    let _ = write!(out, "{:>7.1}%", v * 100.0);
                }
                None => {
                    let _ = write!(out, "{:>8}", "-");
                }
            }
        }
        let _ = writeln!(out);
    }
    out
}

/// JSON-serializable figure payload.
#[derive(Serialize)]
pub struct FigureData {
    pub experiment: String,
    pub workload: String,
    pub machine: String,
    pub series: HashMap<String, Vec<f64>>,
    pub labels: Vec<String>,
}

/// Write a JSON result file when `--json` was given.
pub fn maybe_write_json(opts: &Opts, name: &str, data: &impl Serialize) {
    if let Some(dir) = &opts.json_dir {
        std::fs::create_dir_all(dir).expect("create json dir");
        let path = format!("{dir}/{name}.json");
        std::fs::write(&path, serde_json::to_string_pretty(data).expect("serialize")).expect("write json");
        println!("[json written to {path}]");
    }
}

/// Unit names of a ranking prefix.
pub fn names_of(run: &EvalRun, ranking: &[StmtId], k: usize) -> Vec<String> {
    ranking.iter().take(k).map(|&u| run.app.units.name(u)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eval_run_smoke() {
        let w = workload("stassuij");
        let run = eval_run(&w, &bgq(), Scale::Test);
        assert!(run.mp.total > 0.0);
        assert!(run.measured.total() > 0.0);
        assert_eq!(run.cmp.quality.len(), TOP_K);
    }

    #[test]
    fn render_series_formats() {
        let s = render_series("demo", &[("a", &[0.5, 0.75]), ("b", &[1.0])]);
        assert!(s.contains("demo"));
        assert!(s.contains("50.0%"));
        assert!(s.contains("75.0%"));
        assert!(s.contains("100.0%"));
        assert!(s.contains('-'));
    }

    #[test]
    fn workload_lookup_case_insensitive() {
        assert_eq!(workload("SORD").name, "SORD");
        assert_eq!(workload("srad").name, "SRAD");
    }
}

/// Shared implementation of the coverage-curve figures (Figures 4–5 and
/// 10–13): cumulative measured coverage of the measured ranking (`Prof`),
/// projected coverage of the projected ranking (`Modl(p)`), measured
/// coverage of the projected ranking (`Modl(m)`), and the quality curve.
pub fn coverage_figure(fig: &str, workload_name: &str, machine: &MachineModel, opts: &Opts) {
    let w = workload(workload_name);
    let run = eval_run(&w, machine, opts.scale);
    println!("=== {fig}: {} hot spot coverage on {} ===\n", w.name, machine.name);
    println!(
        "{}",
        render_series(
            "cumulative runtime coverage of the top-k selection",
            &[
                ("Prof", &run.cmp.prof_curve),
                ("Modl(p)", &run.cmp.modl_p_curve),
                ("Modl(m)", &run.cmp.modl_m_curve),
                ("Q(k)", &run.cmp.quality),
            ],
        )
    );
    println!("top spots (measured): {:?}", names_of(&run, &run.cmp.measured_ranking, 5));
    println!("top spots (modeled) : {:?}", names_of(&run, &run.cmp.projected_ranking, 5));
    let data = FigureData {
        experiment: fig.to_lowercase().replace(' ', "_").replace('.', ""),
        workload: w.name.into(),
        machine: machine.name.clone(),
        series: [
            ("prof".to_string(), run.cmp.prof_curve.clone()),
            ("modl_p".to_string(), run.cmp.modl_p_curve.clone()),
            ("modl_m".to_string(), run.cmp.modl_m_curve.clone()),
            ("quality".to_string(), run.cmp.quality.clone()),
        ]
        .into_iter()
        .collect(),
        labels: names_of(&run, &run.cmp.measured_ranking, TOP_K),
    };
    maybe_write_json(opts, &data.experiment.clone(), &data);
}

/// Shared implementation of the per-hot-spot breakdown figures (Figures
/// 6–7): projected computation / memory / overlap time per top spot.
pub fn breakdown_figure(fig: &str, workload_name: &str, machine: &MachineModel, opts: &Opts) {
    let w = workload(workload_name);
    let run = eval_run(&w, machine, opts.scale);
    println!("=== {fig}: projected time breakdown per {} hot spot on {} ===\n", w.name, machine.name);
    println!("{:<4} {:<26} {:>11} {:>11} {:>11} {:>9}", "#", "hot spot", "Tc (s)", "Tm (s)", "overlap (s)", "bound");
    let mut series: HashMap<String, Vec<f64>> = HashMap::new();
    let mut labels = Vec::new();
    for (i, &unit) in run.cmp.projected_ranking.iter().take(TOP_K).enumerate() {
        let b = match run.mp.unit_breakdown.get(&unit) {
            Some(b) => *b,
            None => continue,
        };
        println!(
            "{:<4} {:<26} {:>11.3e} {:>11.3e} {:>11.3e} {:>9}",
            i + 1,
            run.app.units.name(unit),
            b.tc,
            b.tm,
            b.overlap,
            if b.tm > b.tc { "memory" } else { "compute" }
        );
        series.entry("tc".into()).or_default().push(b.tc);
        series.entry("tm".into()).or_default().push(b.tm);
        series.entry("overlap".into()).or_default().push(b.overlap);
        labels.push(run.app.units.name(unit));
    }
    let mem_share: f64 = {
        let (tm, tot) = run.mp.unit_breakdown.values().fold((0.0, 0.0), |acc, c| (acc.0 + c.tm, acc.1 + c.tc + c.tm));
        tm / tot
    };
    println!("\nmemory share of total projected Tc+Tm: {:.1}%", mem_share * 100.0);
    let data = FigureData {
        experiment: fig.to_lowercase().replace(' ', "_").replace('.', ""),
        workload: w.name.into(),
        machine: machine.name.clone(),
        series,
        labels,
    };
    maybe_write_json(opts, &data.experiment.clone(), &data);
}

#[cfg(test)]
mod figure_tests {
    use super::*;

    #[test]
    fn coverage_figure_runs_at_test_scale() {
        let opts = Opts { scale: Scale::Test, json_dir: None };
        coverage_figure("Smoke", "stassuij", &bgq(), &opts);
    }

    #[test]
    fn breakdown_figure_runs_at_test_scale() {
        let opts = Opts { scale: Scale::Test, json_dir: None };
        breakdown_figure("Smoke", "stassuij", &xeon(), &opts);
    }

    #[test]
    fn json_output_written_when_requested() {
        let dir = std::env::temp_dir().join(format!("xflow-bench-test-{}", std::process::id()));
        let opts = Opts { scale: Scale::Test, json_dir: Some(dir.to_string_lossy().into_owned()) };
        coverage_figure("Smoke JSON", "stassuij", &bgq(), &opts);
        let written = std::fs::read_dir(&dir).unwrap().count();
        assert!(written >= 1);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
