//! Criterion benchmarks backing the paper's efficiency claims:
//!
//! * `bet_build/*` — BET construction time is flat across input sizes
//!   (the Abstract's "analysis time does not increase with the input data
//!   size");
//! * `pipeline/*` — cost of each analysis stage (translate, build, project,
//!   select) on the SORD skeleton;
//! * `simulate/*` — execution-driven simulation cost for comparison: unlike
//!   the analysis, it scales with the input;
//! * `cache/*` — raw cache-model throughput.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use xflow::{bgq, initial_env, InputSpec, ModeledApp, Scale, EVAL_CRITERIA};

fn bench_bet_build(c: &mut Criterion) {
    let w = xflow_workloads::srad();
    let prog = w.program();
    let prof = xflow_minilang::profile(&prog, &w.inputs(Scale::Test)).unwrap();
    let tr = xflow_minilang::translate(&prog, &prof).unwrap();

    let mut g = c.benchmark_group("bet_build");
    for n in [32.0, 1024.0, 32768.0, 1_048_576.0] {
        let inputs = InputSpec::from_pairs([("ROWS", n), ("COLS", n), ("SAMPLE", 16.0), ("ITERS", 4.0)]);
        let env = initial_env(&tr, &inputs);
        g.bench_with_input(BenchmarkId::from_parameter(n as u64), &env, |b, env| {
            b.iter(|| xflow_bet::build(black_box(&tr.skeleton), black_box(env)).unwrap())
        });
    }
    g.finish();
}

fn bench_pipeline_stages(c: &mut Criterion) {
    let w = xflow_workloads::sord();
    let prog = w.program();
    let inputs = w.inputs(Scale::Test);
    let prof = xflow_minilang::profile(&prog, &inputs).unwrap();
    let tr = xflow_minilang::translate(&prog, &prof).unwrap();
    let env = initial_env(&tr, &inputs);
    let bet = xflow_bet::build(&tr.skeleton, &env).unwrap();
    let libs = xflow_sim::calibrate_library(512);
    let machine = bgq();

    let mut g = c.benchmark_group("pipeline");
    g.bench_function("translate", |b| {
        b.iter(|| xflow_minilang::translate(black_box(&prog), black_box(&prof)).unwrap())
    });
    g.bench_function("bet_build", |b| b.iter(|| xflow_bet::build(black_box(&tr.skeleton), black_box(&env)).unwrap()));
    g.bench_function("project", |b| {
        b.iter(|| xflow_hotspot::project(black_box(&bet), &machine, &xflow_hw::Roofline, &libs))
    });
    let app = ModeledApp::from_workload(&w, Scale::Test).unwrap();
    let mp = app.project_on(&machine);
    g.bench_function("select", |b| b.iter(|| mp.select(black_box(&app.units), EVAL_CRITERIA)));
    g.finish();
}

fn bench_simulation_scaling(c: &mut Criterion) {
    let w = xflow_workloads::srad();
    let prog = w.program();
    let machine = bgq();

    let mut g = c.benchmark_group("simulate");
    g.sample_size(10);
    for n in [16.0, 32.0, 64.0] {
        let inputs = InputSpec::from_pairs([("ROWS", n), ("COLS", n), ("SAMPLE", 8.0), ("ITERS", 2.0)]);
        g.bench_with_input(BenchmarkId::from_parameter(n as u64), &inputs, |b, inputs| {
            b.iter(|| xflow_sim::simulate(black_box(&prog), inputs, &machine, Default::default()).unwrap())
        });
    }
    g.finish();
}

fn bench_engines(c: &mut Criterion) {
    // tree-walking reference vs bytecode VM on the same workload
    let w = xflow_workloads::stassuij();
    let prog = w.program();
    let inputs = w.inputs(Scale::Test);
    let vm = xflow_minilang::compile(&prog).unwrap();

    let mut g = c.benchmark_group("engine");
    g.sample_size(10);
    g.bench_function("tree_walker", |b| {
        b.iter(|| xflow_minilang::run(black_box(&prog), &inputs, xflow_minilang::NullTracer).unwrap())
    });
    g.bench_function("bytecode_vm", |b| {
        b.iter(|| xflow_minilang::run_vm(black_box(&vm), &inputs, xflow_minilang::NullTracer).unwrap())
    });
    g.finish();
}

fn bench_cache(c: &mut Criterion) {
    let machine = bgq();
    let mut g = c.benchmark_group("cache");
    g.bench_function("sequential_64k", |b| {
        b.iter(|| {
            let mut h = xflow_sim::Hierarchy::new(&machine.l1, &machine.llc);
            let mut levels = 0u64;
            for i in 0..65536u64 {
                if h.access(i * 8) == xflow_sim::AccessLevel::L1 {
                    levels += 1;
                }
            }
            black_box(levels)
        })
    });
    g.bench_function("random_64k", |b| {
        b.iter(|| {
            let mut h = xflow_sim::Hierarchy::new(&machine.l1, &machine.llc);
            let mut x = 0x9E3779B97F4A7C15u64;
            let mut hits = 0u64;
            for _ in 0..65536u64 {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                if h.access(x % (1 << 24)) == xflow_sim::AccessLevel::L1 {
                    hits += 1;
                }
            }
            black_box(hits)
        })
    });
    g.finish();
}

criterion_group!(benches, bench_bet_build, bench_pipeline_stages, bench_simulation_scaling, bench_engines, bench_cache);
criterion_main!(benches);
