//! Criterion benchmark for the incremental `Session` layer: cold modeling
//! (every stage from scratch, the `ModeledApp::from_program` path) vs a
//! warm `Session` load (every stage served from the in-memory
//! content-addressed cache) for all five benchmark workloads.
//!
//! The warm arm still pays for cloning the cached artifacts out of their
//! `Arc`s and rebuilding the unit table, so it is not free — but it skips
//! the profiled interpretation, translation, and BET build, which dominate
//! cold modeling. The `exp_session` binary records the measured ratio in
//! `results/BENCH_session.json` and asserts the ≥5× suite-level win.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use xflow::{ModeledApp, Scale, Session};

fn bench_session_warm_start(c: &mut Criterion) {
    let scale = Scale::Test;
    let mut g = c.benchmark_group("session_warm_start");
    for w in xflow_workloads::all() {
        let inputs = w.inputs(scale);

        g.bench_with_input(BenchmarkId::new("cold", w.name), &w, |b, w| {
            b.iter(|| {
                let prog = xflow_minilang::parse(black_box(w.source)).unwrap();
                ModeledApp::from_program(prog, &inputs).unwrap().bet.len()
            })
        });

        let session = Session::new();
        session.model(w.source, &inputs).unwrap(); // prime the caches
        g.bench_with_input(BenchmarkId::new("warm", w.name), &w, |b, w| {
            b.iter(|| session.model(black_box(w.source), &inputs).unwrap().bet.len())
        });
    }
    g.finish();
}

criterion_group!(benches, bench_session_warm_start);
criterion_main!(benches);
