//! Criterion benchmark for the batched SoA evaluation kernel.
//!
//! Compares, on the 25-point CFD grid the paper's sweep experiments use:
//!
//! * `plan_evaluate` — the scalar path: one [`xflow_hotspot::ProjectionPlan::evaluate`]
//!   per machine, allocating a fresh `Projection` each point,
//! * `kernel_scratch` — the fast path: pre-resolved [`xflow_hw::MachineSpec`]
//!   constants driven through [`xflow_hotspot::PlanKernel::evaluate_spec_into`]
//!   with one warm [`xflow_hotspot::Scratch`] (zero allocations per point),
//! * `kernel_batch` — [`xflow_hotspot::PlanKernel::evaluate_batch`], which
//!   still materializes an owned `Projection` per point, and
//! * `spec_resolve` — the once-per-machine constant folding, to show it is
//!   negligible against even a single evaluation.
//!
//! The `exp_kernel` binary records the measured scratch-path speedup in
//! `results/BENCH_kernel.json` and asserts the ≥3× acceptance bound; this
//! benchmark exists for interactive profiling of the same arms.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use xflow::{generic, Axis, DesignSpace, ModeledApp, Roofline, Scale};
use xflow_hotspot::ProjectionPlan;
use xflow_hw::MachineSpec;

fn grid_machines() -> Vec<xflow::MachineModel> {
    DesignSpace::grid(
        generic(),
        vec![Axis::dram_bw(&[0.5, 1.0, 2.0, 4.0, 8.0]), Axis::mlp(&[2.0, 4.0, 8.0, 16.0, 32.0])],
    )
    .machines()
    .to_vec()
}

fn bench_evaluate_kernel(c: &mut Criterion) {
    let app = ModeledApp::from_workload(&xflow_workloads::cfd(), Scale::Test).unwrap();
    let libs = xflow::default_library().clone();
    let machines = grid_machines();
    let plan = ProjectionPlan::new(&app.bet, &libs);
    let kernel = plan.kernel();
    let specs: Vec<MachineSpec> = machines.iter().map(MachineSpec::resolve).collect();

    let mut g = c.benchmark_group("evaluate_kernel_25pt");

    g.bench_function("plan_evaluate", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for m in &machines {
                acc += plan.evaluate(black_box(m), &Roofline).total_time;
            }
            acc
        })
    });

    let mut scratch = kernel.make_scratch();
    g.bench_function("kernel_scratch", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for spec in &specs {
                kernel.evaluate_spec_into(black_box(spec), &mut scratch);
                acc += scratch.total_time();
            }
            acc
        })
    });

    g.bench_function("kernel_batch", |b| b.iter(|| kernel.evaluate_batch(black_box(&specs)).len()));

    g.bench_function("spec_resolve", |b| {
        b.iter(|| {
            let mut lanes = 0.0;
            for m in &machines {
                lanes += MachineSpec::resolve(black_box(m)).cores;
            }
            lanes
        })
    });

    g.finish();
}

criterion_group!(benches, bench_evaluate_kernel);
criterion_main!(benches);
