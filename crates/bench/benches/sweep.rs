//! Criterion benchmark for the two-phase projection engine and the
//! parallel design-space sweep.
//!
//! The headline comparison: a 5×5 bandwidth × MLP grid over the CFD
//! workload, evaluated
//!
//! * the legacy way — one full `project_on`-equivalent per point
//!   (library calibration + fused single-pass BET walk), and
//! * the two-phase way — one [`xflow_hotspot::ProjectionPlan`] shared by
//!   all 25 points, each point a roofline-only evaluation.
//!
//! The plan-reuse arm must be ≥5× faster than the legacy arm
//! single-threaded (the `exp_sweep` binary records the measured ratio in
//! `results/BENCH_sweep.json`). A `single_pass_prebuilt_libs` arm is
//! included for transparency: it isolates the walk-vs-plan speedup from
//! the per-call library-calibration overhead the old public path paid.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use xflow::{generic, Axis, DesignSpace, ModeledApp, Roofline, Scale};
use xflow_hotspot::{project_single_pass, ProjectionPlan};

fn grid_machines() -> Vec<xflow::MachineModel> {
    DesignSpace::grid(
        generic(),
        vec![Axis::dram_bw(&[0.5, 1.0, 2.0, 4.0, 8.0]), Axis::mlp(&[2.0, 4.0, 8.0, 16.0, 32.0])],
    )
    .machines()
    .to_vec()
}

fn bench_two_phase(c: &mut Criterion) {
    let app = ModeledApp::from_workload(&xflow_workloads::cfd(), Scale::Test).unwrap();
    let machines = grid_machines();
    let libs = xflow::default_library().clone();

    let mut g = c.benchmark_group("sweep_25pt");

    // the old public path: every point re-calibrates the library registry
    // and re-walks the BET
    g.bench_function("legacy_project_per_point", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for m in &machines {
                let libs = xflow_sim::calibrate_library(512);
                acc += project_single_pass(black_box(&app.bet), m, &Roofline, &libs).total_time;
            }
            acc
        })
    });

    // fused walk with the calibration hoisted out — isolates walk cost
    g.bench_function("single_pass_prebuilt_libs", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for m in &machines {
                acc += project_single_pass(black_box(&app.bet), m, &Roofline, &libs).total_time;
            }
            acc
        })
    });

    // phase 1 alone
    g.bench_function("plan_build", |b| b.iter(|| ProjectionPlan::new(black_box(&app.bet), black_box(&libs))));

    // phase 2 alone, 25 points from one plan
    let plan = ProjectionPlan::new(&app.bet, &libs);
    g.bench_function("plan_reuse_serial", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for m in &machines {
                acc += plan.evaluate(m, &Roofline).total_time;
            }
            acc
        })
    });

    g.finish();
}

fn bench_sweep_threads(c: &mut Criterion) {
    let app = ModeledApp::from_workload(&xflow_workloads::cfd(), Scale::Test).unwrap();
    app.plan(); // hoist plan construction out of the timed region
    let space = DesignSpace::grid(
        generic(),
        vec![
            Axis::dram_bw(&[0.5, 1.0, 2.0, 4.0, 8.0]),
            Axis::mlp(&[2.0, 4.0, 8.0, 16.0, 32.0]),
            Axis::freq_ghz(&[1.0, 1.6, 2.4, 3.2]),
        ],
    );

    let mut g = c.benchmark_group("sweep_threads_100pt");
    for threads in [1usize, 2, 4, 8] {
        g.bench_with_input(BenchmarkId::from_parameter(threads), &threads, |b, &t| {
            b.iter(|| space.sweep(black_box(&app), t).points.len())
        });
    }
    g.finish();
}

criterion_group!(benches, bench_two_phase, bench_sweep_threads);
criterion_main!(benches);
