//! STASSUIJ — two-body correlation kernel from Green's Function Monte
//! Carlo (nuclear physics).
//!
//! The paper's kernel has two phases: (1) multiply a 132×132 *sparse* real
//! matrix with a 132×2048 *dense complex* matrix — each sparse element
//! scales a complex row — and (2) exchange groups of four elements in each
//! row of the result in a butterfly pattern driven by an index array.
//!
//! The measured top spot (phase 1) takes 68% and phase 2 takes 23%; the
//! IBM XL compiler vectorizes phase 1 on BG/Q, making the scalar model
//! **over-project** its time (Section VII-B). The row-scaling loop is
//! labeled `@scale_row` so the simulator can apply that compiler decision
//! (see `Workload::sim_config`).

/// Minilang source of the STASSUIJ port.
pub const SOURCE: &str = r#"
// STASSUIJ: sparse × dense-complex multiply + butterfly exchange.
fn main() {
    let nrow = input("NROW", 132);
    let ncol = input("NCOL", 512);
    let nnzpr = input("NNZPR", 8);

    let nnz = nrow * nnzpr;
    let sval = zeros(nnz);
    let scol = zeros(nnz);
    let dre = zeros(nrow * ncol);
    let dim = zeros(nrow * ncol);
    let rre = zeros(nrow * ncol);
    let rim = zeros(nrow * ncol);
    let bfly = zeros(ncol);

    // sparse matrix: nnzpr entries per row with random column indices
    @init_sparse: for e in 0 .. nnz {
        sval[e] = 2.0 * rnd() - 1.0;
        scol[e] = floor(rnd() * nrow);
    }
    @init_dense: for i in 0 .. nrow * ncol {
        dre[i] = rnd();
        dim[i] = rnd();
    }
    // butterfly permutation: group-of-four swaps within each row
    @init_bfly: for j in 0 .. ncol step 4 {
        bfly[j] = j + 2; bfly[j + 1] = j + 3; bfly[j + 2] = j; bfly[j + 3] = j + 1;
    }

    // phase 1: each sparse element scales a complex row of the dense
    // matrix into the result row (68% of measured runtime; vectorized by
    // the XL compiler on BG/Q)
    for r in 0 .. nrow {
        for e in 0 .. nnzpr {
            let s = sval[r * nnzpr + e];
            let src = scol[r * nnzpr + e] * ncol;
            let dst = r * ncol;
            @scale_row: for j in 0 .. ncol {
                rre[dst + j] = rre[dst + j] + s * dre[src + j];
                rim[dst + j] = rim[dst + j] + s * dim[src + j];
            }
        }
    }

    // phase 2: butterfly exchange of groups of four per row (23%)
    for r in 0 .. nrow {
        @butterfly: for j in 0 .. ncol {
            let src = r * ncol + bfly[j];
            let dst = r * ncol + j;
            let tre = rre[dst];
            let tim = rim[dst];
            rre[dst] = rre[src];
            rim[dst] = rim[src];
            rre[src] = tre;
            rim[src] = tim;
        }
    }

    let check = 0;
    @checksum: for i in 0 .. nrow * ncol step 13 {
        check = check + rre[i] - rim[i];
    }
    print(check);
}
"#;

#[cfg(test)]
mod tests {
    use super::SOURCE;
    use xflow_minilang::{parse, profile, InputSpec};

    #[test]
    fn stassuij_parses_and_runs() {
        let prog = parse(SOURCE).unwrap();
        let prof = profile(&prog, &InputSpec::new()).unwrap();
        assert!(prof.printed[0].is_finite());
    }

    #[test]
    fn phase1_dominates_operations() {
        let prog = parse(SOURCE).unwrap();
        let prof = profile(&prog, &InputSpec::new()).unwrap();
        // phase 1 flops: nrow × nnzpr × ncol × 4 (2 muls + 2 adds)
        let total_flops: u64 = prof.stmt_ops.values().map(|c| c.flops).sum();
        let phase1_flops = 132 * 8 * 512 * 4;
        assert!(total_flops >= phase1_flops, "{total_flops} vs {phase1_flops}");
        assert!((phase1_flops as f64) / (total_flops as f64) > 0.55);
    }
}
