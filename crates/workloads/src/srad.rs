//! SRAD — Speckle Reducing Anisotropic Diffusion (medical imaging).
//!
//! Removes speckle noise from ultrasonic/radar images without destroying
//! features (paper test case: 2048×2048 image, 128×128 speckle sample).
//! The structure mirrors the Rodinia-style kernel the paper uses: build a
//! noisy image (`rand`), compute the speckle signature over a sample
//! window, then diffuse — per-pixel gradients, an `exp` diffusion
//! coefficient, and the update sweep. The paper's measured top hot spots
//! include the `exp` and `rand` library functions (Section VII-B),
//! reproduced here by construction.

/// Minilang source of the SRAD port.
pub const SOURCE: &str = r#"
// SRAD: speckle reducing anisotropic diffusion.
fn main() {
    let rows = input("ROWS", 48);
    let cols = input("COLS", 48);
    let sample = input("SAMPLE", 12);
    let iters = input("ITERS", 2);
    let n = rows * cols;

    let img = zeros(n);
    let dn = zeros(n); let ds = zeros(n); let de = zeros(n); let dw = zeros(n);
    let c = zeros(n);

    // noisy input image: exponential speckle over a smooth ramp
    @gen_image: for i in 0 .. n {
        img[i] = exp(0.05 * rnd()) * (1.0 + 0.001 * i);
    }

    for t in 0 .. iters {
        // speckle signature over the sample window
        let mean = 0;
        let var = 0;
        @sample_mean: for i in 0 .. sample {
            for j in 0 .. sample {
                mean = mean + img[i * cols + j];
            }
        }
        mean = mean / (sample * sample);
        @sample_var: for i in 0 .. sample {
            for j in 0 .. sample {
                let d = img[i * cols + j] - mean;
                var = var + d * d;
            }
        }
        var = var / (sample * sample);
        let q0 = var / (mean * mean);
        let iq0 = 1.0 / (q0 + 0.0001);

        // gradients and diffusion coefficient
        for i in 1 .. rows - 1 {
            @gradients: for j in 1 .. cols - 1 {
                let p = i * cols + j;
                let ic = img[p];
                let inv = 1.0 / ic;
                dn[p] = img[p - cols] - ic;
                ds[p] = img[p + cols] - ic;
                dw[p] = img[p - 1] - ic;
                de[p] = img[p + 1] - ic;
                let g2 = (dn[p]*dn[p] + ds[p]*ds[p] + dw[p]*dw[p] + de[p]*de[p]) * inv * inv;
                let l = (dn[p] + ds[p] + dw[p] + de[p]) * inv;
                let num = 0.5 * g2 - 0.0625 * l * l;
                let den = 1.0 + 0.25 * l;
                let q = num / (den * den);
                @coeff: c[p] = exp(0.0 - abs(q - q0) * iq0);
            }
        }

        // diffusion update sweep
        for i in 1 .. rows - 1 {
            @update: for j in 1 .. cols - 1 {
                let p = i * cols + j;
                let cn = c[p];
                let cs = c[min(p + cols, n - 1)];
                let ce = c[min(p + 1, n - 1)];
                let d = cn * (dn[p] + dw[p]) + cs * ds[p] + ce * de[p];
                img[p] = img[p] + 0.125 * d;
            }
        }
    }

    let checksum = 0;
    @checksum: for i in 0 .. n step 7 {
        checksum = checksum + img[i];
    }
    print(checksum);
}
"#;

#[cfg(test)]
mod tests {
    use super::SOURCE;
    use xflow_minilang::{parse, profile, InputSpec};

    #[test]
    fn srad_parses_and_runs() {
        let prog = parse(SOURCE).unwrap();
        let prof = profile(&prog, &InputSpec::new()).unwrap();
        let sum = *prof.printed.last().unwrap();
        assert!(sum.is_finite() && sum > 0.0);
    }

    #[test]
    fn srad_is_library_heavy() {
        let prog = parse(SOURCE).unwrap();
        let prof = profile(&prog, &InputSpec::new()).unwrap();
        // exp is called once per interior pixel per iteration + image gen
        assert!(prof.lib_calls["exp"] > 2_000, "{:?}", prof.lib_calls);
        assert!(prof.lib_calls["rand"] >= 48 * 48, "{:?}", prof.lib_calls);
    }
}
