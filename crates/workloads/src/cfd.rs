//! CFD — unstructured-grid finite-volume Euler solver.
//!
//! The paper's mini-application: a 3-D Euler solver for compressible flow
//! on an unstructured grid (~97,000 cells), with a main time-stepping loop
//! performing pressure, momentum, and density updates. Its 6th measured
//! hot spot computes velocity from density and momentum through a series
//! of **divisions**, which the paper's model (treating every fp op as one
//! flop) under-projects by ~5× on BG/Q — the `@velocity` block below
//! reproduces that workload shape exactly.

/// Minilang source of the CFD port.
pub const SOURCE: &str = r#"
// CFD: unstructured finite-volume Euler solver.
fn main() {
    let ncell = input("NCELL", 3000);
    let steps = input("STEPS", 3);
    let nface = ncell * 4;

    let density = zeros(ncell);
    let momx = zeros(ncell); let momy = zeros(ncell); let momz = zeros(ncell);
    let energy = zeros(ncell);
    let velx = zeros(ncell); let vely = zeros(ncell); let velz = zeros(ncell);
    let press = zeros(ncell);
    let flux = zeros(ncell);
    let nbr = zeros(nface);
    let area = zeros(nface);

    // unstructured connectivity: random neighbor per face
    @build_mesh: for f in 0 .. nface {
        nbr[f] = floor(rnd() * ncell);
        area[f] = 0.5 + rnd();
    }

    @init_state: for i in 0 .. ncell {
        density[i] = 1.0 + 0.1 * rnd();
        momx[i] = 0.1 * rnd();
        momy[i] = 0.05 * rnd();
        momz[i] = 0.02 * rnd();
        energy[i] = 2.5 + 0.1 * rnd();
    }

    for t in 0 .. steps {
        // hot spot: velocity from density and momentum — the reciprocal
        // makes this block divide-bound, which the projection model's
        // all-flops-equal assumption under-costs (paper Section VII-B)
        @velocity: for i in 0 .. ncell {
            let inv = 1.0 / density[i];
            velx[i] = momx[i] * inv;
            vely[i] = momy[i] * inv;
            velz[i] = momz[i] * inv;
        }

        // equation of state: pressure per cell
        @pressure: for i in 0 .. ncell {
            let ke = 0.5 * (momx[i]*velx[i] + momy[i]*vely[i] + momz[i]*velz[i]);
            press[i] = 0.4 * (energy[i] - ke);
        }

        // face flux gather over the irregular mesh (memory hot spot)
        @compute_flux: for i in 0 .. ncell {
            let acc = 0;
            for f in 0 .. 4 {
                let j = nbr[i * 4 + f];
                let a = area[i * 4 + f];
                acc = acc + a * (press[j] - press[i] + velx[j] - velx[i]);
            }
            flux[i] = acc;
        }

        // conservative updates
        @update_density: for i in 0 .. ncell {
            density[i] = density[i] + 0.0005 * flux[i];
        }
        @update_momentum: for i in 0 .. ncell {
            momx[i] = momx[i] + 0.0005 * flux[i] * velx[i];
            momy[i] = momy[i] + 0.0005 * flux[i] * vely[i];
            momz[i] = momz[i] + 0.0005 * flux[i] * velz[i];
        }
        @update_energy: for i in 0 .. ncell {
            energy[i] = energy[i] + 0.0005 * flux[i] * (press[i] + energy[i]) * (2.0 - density[i]);
        }

        // time-step control: sound speed via sqrt
        let dtmin = 1.0;
        @timestep: for i in 0 .. ncell step 16 {
            let cs = sqrt(1.4 * press[i] / density[i]);
            let dt = 1.0 / (abs(velx[i]) + cs + 0.001);
            dtmin = min(dtmin, dt);
        }

        // residual diagnostic
        let res = 0;
        @residual: for i in 0 .. ncell step 4 {
            res = res + flux[i] * flux[i];
        }
        print(res);
    }
}
"#;

#[cfg(test)]
mod tests {
    use super::SOURCE;
    use xflow_minilang::{parse, profile, InputSpec};

    #[test]
    fn cfd_parses_and_runs() {
        let prog = parse(SOURCE).unwrap();
        let prof = profile(&prog, &InputSpec::new()).unwrap();
        // one residual per step
        assert_eq!(prof.printed.len(), 3);
        assert!(prof.printed.iter().all(|r| r.is_finite()));
    }

    #[test]
    fn cfd_velocity_block_is_division_heavy() {
        let prog = parse(SOURCE).unwrap();
        let prof = profile(&prog, &InputSpec::new()).unwrap();
        // find the velocity statement ops: 3 divides per cell per step
        let mut vel_id = None;
        prog.visit_stmts(|_, s| {
            if s.label.as_deref() == Some("velocity") {
                vel_id = Some(s.id);
            }
        });
        let divs: u64 = prof
            .stmt_ops
            .iter()
            .filter(|(id, _)| {
                // body statements of the velocity loop follow its id closely
                id.0 > vel_id.unwrap().0 && id.0 <= vel_id.unwrap().0 + 4
            })
            .map(|(_, c)| c.divs)
            .sum();
        // one reciprocal per cell per step
        assert_eq!(divs, 3000 * 3);
    }
}
