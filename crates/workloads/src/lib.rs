//! # xflow-workloads — the paper's benchmarks as minilang programs
//!
//! Ports of the five workloads of the paper's evaluation (Section VI):
//!
//! | Workload | Domain | What the paper used |
//! |---|---|---|
//! | [`mod@sord`] | earth science | full Fortran/MPI earthquake simulator |
//! | [`mod@chargei`] | magnetic fusion | GTC's particle-in-cell charge deposition |
//! | [`mod@srad`] | medical imaging | speckle-reducing anisotropic diffusion |
//! | [`mod@cfd`] | fluid dynamics | unstructured finite-volume Euler solver |
//! | [`mod@stassuij`] | nuclear physics | GFMC two-body correlation kernel |
//!
//! Each port is a faithful *structural* reproduction: the control-flow
//! shape, operation mixes, data-dependence patterns, and the specific
//! hardware-interaction quirks the paper reports (CFD's divide-heavy
//! velocity block, STASSUIJ's compiler-vectorized multiply, SRAD's
//! library-dominated profile, SORD's cross-kernel cache reuse).

pub mod cfd;
pub mod chargei;
pub mod sord;
pub mod srad;
pub mod stassuij;

use xflow_hw::MachineModel;
use xflow_minilang::{parse, InputSpec, Program};
use xflow_sim::SimConfig;

/// Input-size preset.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Small inputs for unit/integration tests (sub-second in debug builds).
    Test,
    /// Evaluation inputs for the experiment harness (seconds in release).
    Eval,
}

/// One benchmark: source, input presets, and machine-specific compiler
/// behavior the ground-truth simulator should reproduce.
#[derive(Debug, Clone)]
pub struct Workload {
    pub name: &'static str,
    pub description: &'static str,
    pub source: &'static str,
    test_scale: &'static [(&'static str, f64)],
    eval_scale: &'static [(&'static str, f64)],
    /// `(machine name, label, actual vectorization)` — subtrees the real
    /// toolchain vectorizes on that machine even though the projection
    /// model does not know it.
    vectorized: &'static [(&'static str, &'static str, f64)],
}

impl Workload {
    /// Parse the workload's source (always valid; panics otherwise).
    pub fn program(&self) -> Program {
        parse(self.source).unwrap_or_else(|e| panic!("workload {} failed to parse: {e}", self.name))
    }

    /// Inputs for a scale preset.
    pub fn inputs(&self, scale: Scale) -> InputSpec {
        let pairs = match scale {
            Scale::Test => self.test_scale,
            Scale::Eval => self.eval_scale,
        };
        InputSpec::from_pairs(pairs.iter().copied())
    }

    /// Simulator configuration for a machine, applying the workload's
    /// known compiler-vectorization decisions (e.g. XL vectorizing
    /// STASSUIJ's row-scaling on BG/Q).
    pub fn sim_config(&self, prog: &Program, machine: &MachineModel) -> SimConfig {
        let mut cfg = SimConfig::default();
        for &(mach, label, veff) in self.vectorized {
            if machine.name == mach {
                cfg = cfg.override_label(prog, label, veff);
            }
        }
        cfg
    }
}

/// SORD: the full earthquake-simulation application.
pub fn sord() -> Workload {
    Workload {
        name: "SORD",
        description: "3-D viscoelastic wave propagation with fault rupture (earthquake simulation)",
        source: sord::SOURCE,
        test_scale: &[("NX", 10.0), ("NY", 10.0), ("NZ", 10.0), ("STEPS", 3.0)],
        eval_scale: &[("NX", 16.0), ("NY", 20.0), ("NZ", 20.0), ("STEPS", 8.0)],
        // per-loop compiler decisions (the reality behind the paper's
        // Table I divergence): GFortran on Xeon vectorizes the clean
        // stride-1 kernels but not the divide-carrying velocity update or
        // the random gather; XL on BG/Q only catches the simplest sweep.
        vectorized: &[
            ("Xeon", "stress_xx", 1.0),
            ("Xeon", "stress_shear", 1.0),
            ("Xeon", "attenuate", 1.0),
            ("Xeon", "strain_energy", 1.0),
            ("Xeon", "vel_update", 0.1),
            ("Xeon", "material_update", 0.2),
            ("Xeon", "seismogram", 0.0),
            ("BG/Q", "attenuate", 0.8),
            ("BG/Q", "strain_energy", 0.5),
        ],
    }
}

/// CHARGEI: GTC ion charge deposition.
pub fn chargei() -> Workload {
    Workload {
        name: "CHARGEI",
        description: "particle-in-cell ion charge deposition (gyrokinetic fusion)",
        source: chargei::SOURCE,
        test_scale: &[("MI", 2000.0), ("MGRID", 300.0)],
        eval_scale: &[("MI", 40000.0), ("MGRID", 3000.0)],
        vectorized: &[],
    }
}

/// SRAD: speckle-reducing anisotropic diffusion.
pub fn srad() -> Workload {
    Workload {
        name: "SRAD",
        description: "speckle reducing anisotropic diffusion (medical imaging)",
        source: srad::SOURCE,
        test_scale: &[("ROWS", 32.0), ("COLS", 32.0), ("SAMPLE", 8.0), ("ITERS", 2.0)],
        eval_scale: &[("ROWS", 128.0), ("COLS", 128.0), ("SAMPLE", 16.0), ("ITERS", 4.0)],
        vectorized: &[],
    }
}

/// CFD: unstructured finite-volume Euler solver.
pub fn cfd() -> Workload {
    Workload {
        name: "CFD",
        description: "unstructured-grid finite-volume Euler solver (compressible flow)",
        source: cfd::SOURCE,
        test_scale: &[("NCELL", 2000.0), ("STEPS", 2.0)],
        eval_scale: &[("NCELL", 24000.0), ("STEPS", 5.0)],
        vectorized: &[],
    }
}

/// STASSUIJ: GFMC two-body correlation kernel.
pub fn stassuij() -> Workload {
    Workload {
        name: "STASSUIJ",
        description: "sparse × dense-complex multiply + butterfly exchange (nuclear GFMC)",
        source: stassuij::SOURCE,
        test_scale: &[("NROW", 64.0), ("NCOL", 128.0), ("NNZPR", 6.0)],
        eval_scale: &[("NROW", 132.0), ("NCOL", 2048.0), ("NNZPR", 8.0)],
        // the XL compiler vectorizes the row-scaling loop on BG/Q; the
        // projection model (vector_efficiency = 0 there) does not know
        vectorized: &[("BG/Q", "scale_row", 1.0)],
    }
}

/// All five benchmarks in the paper's presentation order.
pub fn all() -> Vec<Workload> {
    vec![sord(), chargei(), srad(), cfd(), stassuij()]
}

#[cfg(test)]
mod tests {
    use super::*;
    use xflow_minilang::{profile, translate};

    #[test]
    fn every_workload_parses_profiles_translates_and_validates() {
        for w in all() {
            let prog = w.program();
            let prof =
                profile(&prog, &w.inputs(Scale::Test)).unwrap_or_else(|e| panic!("{} failed to run: {e}", w.name));
            let t = translate(&prog, &prof).unwrap_or_else(|e| panic!("{}: {e}", w.name));
            let errs = xflow_skeleton::validate(&t.skeleton);
            assert!(errs.is_empty(), "{}: {errs:?}", w.name);
        }
    }

    #[test]
    fn every_workload_builds_a_bet() {
        for w in all() {
            let prog = w.program();
            let prof = profile(&prog, &w.inputs(Scale::Test)).unwrap();
            let t = translate(&prog, &prof).unwrap();
            let mut env = xflow_skeleton::Env::new();
            for (k, v) in t.inputs.iter() {
                env.insert(k.clone(), xflow_skeleton::Value::Scalar(*v));
            }
            for (k, v) in w.inputs(Scale::Test).iter() {
                env.insert(k.to_string(), xflow_skeleton::Value::Scalar(v));
            }
            let bet = xflow_bet::build(&t.skeleton, &env).unwrap_or_else(|e| panic!("{}: {e}", w.name));
            assert!(bet.len() > 10, "{}: BET too small ({})", w.name, bet.len());
            // paper: BET size never exceeds 2× the source statements
            let ratio = bet.size_ratio(t.skeleton.source_statement_count());
            assert!(ratio < 2.0, "{}: BET/BST size ratio {ratio}", w.name);
        }
    }

    #[test]
    fn every_workload_simulates_on_both_machines() {
        for w in all() {
            let prog = w.program();
            for m in [xflow_hw::bgq(), xflow_hw::xeon()] {
                let cfg = w.sim_config(&prog, &m);
                let r = xflow_sim::simulate(&prog, &w.inputs(Scale::Test), &m, cfg)
                    .unwrap_or_else(|e| panic!("{} on {}: {e}", w.name, m.name));
                assert!(r.total_cycles > 0.0, "{} on {}", w.name, m.name);
            }
        }
    }

    #[test]
    fn stassuij_vectorization_applies_only_on_bgq() {
        let w = stassuij();
        let prog = w.program();
        let q = w.sim_config(&prog, &xflow_hw::bgq());
        let x = w.sim_config(&prog, &xflow_hw::xeon());
        assert!(!q.vector_overrides.is_empty());
        assert!(x.vector_overrides.is_empty());
    }

    #[test]
    fn eval_scale_is_larger_than_test_scale() {
        for w in all() {
            let t = w.inputs(Scale::Test);
            let e = w.inputs(Scale::Eval);
            let t_prod: f64 = t.iter().map(|(_, v)| v).product();
            let e_prod: f64 = e.iter().map(|(_, v)| v).product();
            assert!(e_prod > t_prod, "{}", w.name);
        }
    }

    #[test]
    fn workload_names_unique() {
        let names: Vec<&str> = all().iter().map(|w| w.name).collect();
        let mut dedup = names.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(names.len(), dedup.len());
    }
}
