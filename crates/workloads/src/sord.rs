//! SORD — Support Operator Rupture Dynamics (earthquake simulation).
//!
//! The paper's full application: a 3-D viscoelastic wave propagation solver
//! on a structured grid (Fortran/MPI, 5139 lines, 370 functions; test case
//! 50×400×400 cells per rank). This port preserves the structure that
//! matters to the framework: a multi-function time-stepping solver with
//! stress/velocity update kernels over 3-D fields, absorbing boundary
//! surface loops, a data-dependent fault-rupture branch, halo pack/unpack
//! copies standing in for MPI exchange, norm diagnostics, and a rare
//! checkpoint path.
//!
//! The stress kernel (`@stress_xx`) touches the velocity fields that the
//! velocity kernel (`@vel_update`) then re-reads — the cross-block cache
//! reuse the paper names as a source of projection error (Section VII-C).

/// Minilang source of the SORD port.
pub const SOURCE: &str = r#"
// SORD: 3-D viscoelastic wave propagation with fault rupture.
fn main() {
    let nx = input("NX", 12);
    let ny = input("NY", 12);
    let nz = input("NZ", 12);
    let steps = input("STEPS", 4);
    let n = nx * ny * nz;

    // velocity (3 components), stress (6 components), material, memory vars
    let vx = zeros(n); let vy = zeros(n); let vz = zeros(n);
    let sxx = zeros(n); let syy = zeros(n); let szz = zeros(n);
    let sxy = zeros(n); let syz = zeros(n); let szx = zeros(n);
    let lam = zeros(n); let mu = zeros(n); let rho = zeros(n);
    let attn = zeros(n);
    let halo = zeros(ny * nz * 6);
    let fault = zeros(ny * nz);

    init_material(lam, mu, rho, attn, n);
    init_fault(fault, ny * nz);
    source_inject(vx, vy, vz, n);

    let seismo = zeros(256);
    for t in 0 .. steps {
        material_update(lam, mu, attn, n);
        step_stress(sxx, syy, szz, sxy, syz, szx, vx, vy, vz, lam, mu, nx, ny, nz);
        attenuate(sxx, syy, szz, attn, n);
        rupture(fault, sxy, syz, ny, nz, nx);
        step_velocity(vx, vy, vz, sxx, syy, szz, sxy, syz, szx, rho, nx, ny, nz);
        absorb_boundary(vx, vy, vz, nx, ny, nz);
        halo_exchange(vx, vy, vz, halo, ny, nz, nx);
        let se = strain_energy(sxx, syy, szz, sxy, syz, szx, n);
        record_seismogram(seismo, vx, fault, ny * nz, n);
        if se > 1.0e12 {
            print(se);
        }
        if t % 16 == 15 {
            checkpoint(vx, vy, vz, n);
        }
    }
    @final_norm: let e = energy_norm(vx, vy, vz, n);
    print(e);
}

// Kelvin-Voigt material relaxation: integer-ish index work and clamps —
// issue-width bound, relatively cheap on wide cores.
fn material_update(lam, mu, attn, n) {
    @material_update: for i in 0 .. n step 4 {
        let j = (i * 2654435761) % n;
        lam[j] = min(max(lam[j], 25.0), 40.0);
        mu[j] = min(max(mu[j], 15.0), 28.0);
        attn[i] = min(attn[i] * 1.0001, 0.01);
    }
}

// dense flop reduction over the six stress components — SIMD candy where
// the compiler vectorizes, scalar-bound where it does not.
fn strain_energy(sxx, syy, szz, sxy, syz, szx, n) {
    let e = 0;
    @strain_energy: for i in 0 .. n {
        e = e + 0.5 * (sxx[i]*sxx[i] + syy[i]*syy[i] + szz[i]*szz[i])
              + sxy[i]*sxy[i] + syz[i]*syz[i] + szx[i]*szx[i];
    }
    return e;
}

// station sampling: data-dependent random gather — latency-bound on every
// machine, invisible to prefetchers and vector units.
fn record_seismogram(seismo, vx, fault, m, n) {
    @seismogram: for st in 0 .. 256 {
        let cell = floor(fault[(st * 37) % m] * (n - 1.0));
        seismo[st] = seismo[st] + vx[cell];
    }
}

fn init_material(lam, mu, rho, attn, n) {
    @init_mat: for i in 0 .. n {
        lam[i] = 30.0 + 5.0 * rnd();
        mu[i] = 20.0 + 3.0 * rnd();
        rho[i] = 2.6 + 0.2 * rnd();
        attn[i] = 0.001 * rnd();
    }
}

fn init_fault(fault, m) {
    @init_fault: for i in 0 .. m {
        fault[i] = rnd();
    }
}

fn source_inject(vx, vy, vz, n) {
    // point-ish source: a small kernel of cells set near the center
    let c = floor(n / 2);
    @source: for k in 0 .. 32 {
        vx[c - 16 + k] = 0.5;
        vy[c - 16 + k] = 0.25;
        vz[c - 16 + k] = 0.125;
    }
}

fn step_stress(sxx, syy, szz, sxy, syz, szx, vx, vy, vz, lam, mu, nx, ny, nz) {
    let nyz = ny * nz;
    for i in 1 .. nx - 1 {
        for j in 1 .. ny - 1 {
            @stress_xx: for k in 1 .. nz - 1 {
                let p = i * nyz + j * nz + k;
                let dvx = vx[p + nyz] - vx[p - nyz];
                let dvy = vy[p + nz] - vy[p - nz];
                let dvz = vz[p + 1] - vz[p - 1];
                let tr = dvx + dvy + dvz;
                sxx[p] = sxx[p] + 0.004 * (lam[p] * tr + 2.0 * mu[p] * dvx);
                syy[p] = syy[p] + 0.004 * (lam[p] * tr + 2.0 * mu[p] * dvy);
                szz[p] = szz[p] + 0.004 * (lam[p] * tr + 2.0 * mu[p] * dvz);
            }
            @stress_shear: for k in 1 .. nz - 1 {
                let p = i * nyz + j * nz + k;
                let gxy = vx[p + nz] - vx[p - nz] + vy[p + nyz] - vy[p - nyz];
                let gyz = vy[p + 1] - vy[p - 1] + vz[p + nz] - vz[p - nz];
                let gzx = vz[p + nyz] - vz[p - nyz] + vx[p + 1] - vx[p - 1];
                sxy[p] = sxy[p] + 0.002 * mu[p] * gxy;
                syz[p] = syz[p] + 0.002 * mu[p] * gyz;
                szx[p] = szx[p] + 0.002 * mu[p] * gzx;
            }
        }
    }
}

fn attenuate(sxx, syy, szz, attn, n) {
    @attenuate: for i in 0 .. n {
        sxx[i] = sxx[i] * (1.0 - attn[i]);
        syy[i] = syy[i] * (1.0 - attn[i]);
        szz[i] = szz[i] * (1.0 - attn[i]);
    }
}

fn rupture(fault, sxy, syz, ny, nz, nx) {
    // data-dependent slip: only cells whose fault strength is exceeded
    let m = ny * nz;
    let mid = floor(nx / 2) * m;
    @rupture_scan: for i in 0 .. m {
        if fault[i] < 0.15 {
            @rupture_slip: sxy[mid + i] = sxy[mid + i] * 0.2;
            syz[mid + i] = syz[mid + i] * 0.2;
            fault[i] = fault[i] + 0.001;
        }
    }
}

fn step_velocity(vx, vy, vz, sxx, syy, szz, sxy, syz, szx, rho, nx, ny, nz) {
    let nyz = ny * nz;
    for i in 1 .. nx - 1 {
        for j in 1 .. ny - 1 {
            @vel_update: for k in 1 .. nz - 1 {
                let p = i * nyz + j * nz + k;
                let fx = sxx[p + nyz] - sxx[p - nyz] + sxy[p + nz] - sxy[p - nz] + szx[p + 1] - szx[p - 1];
                let fy = sxy[p + nyz] - sxy[p - nyz] + syy[p + nz] - syy[p - nz] + syz[p + 1] - syz[p - 1];
                let fz = szx[p + nyz] - szx[p - nyz] + syz[p + nz] - syz[p - nz] + szz[p + 1] - szz[p - 1];
                let inv = 0.004 / rho[p];
                vx[p] = vx[p] + inv * fx;
                vy[p] = vy[p] + inv * fy;
                vz[p] = vz[p] + inv * fz;
            }
        }
    }
}

fn absorb_boundary(vx, vy, vz, nx, ny, nz) {
    let nyz = ny * nz;
    // damp the two x-faces of the domain (surface work, O(n^2))
    @absorb_lo: for q in 0 .. nyz {
        vx[q] = vx[q] * 0.92;
        vy[q] = vy[q] * 0.92;
        vz[q] = vz[q] * 0.92;
    }
    let hi = (nx - 1) * nyz;
    @absorb_hi: for q in 0 .. nyz {
        vx[hi + q] = vx[hi + q] * 0.92;
        vy[hi + q] = vy[hi + q] * 0.92;
        vz[hi + q] = vz[hi + q] * 0.92;
    }
}

fn halo_exchange(vx, vy, vz, halo, ny, nz, nx) {
    let m = ny * nz;
    let hi = (nx - 1) * m;
    // pack both x-faces of all three components (MPI stand-in)
    @halo_pack: for q in 0 .. m {
        halo[q] = vx[q];
        halo[m + q] = vy[q];
        halo[2 * m + q] = vz[q];
        halo[3 * m + q] = vx[hi + q];
        halo[4 * m + q] = vy[hi + q];
        halo[5 * m + q] = vz[hi + q];
    }
    // unpack with a relaxation toward the neighbor values
    @halo_unpack: for q in 0 .. m {
        vx[q] = 0.5 * (vx[q] + halo[3 * m + q]);
        vx[hi + q] = 0.5 * (vx[hi + q] + halo[q]);
    }
}

fn checkpoint(vx, vy, vz, n) {
    let acc = 0;
    @checkpoint: for i in 0 .. n step 8 {
        acc = acc + vx[i] + vy[i] + vz[i];
    }
    print(acc);
}

fn energy_norm(vx, vy, vz, n) {
    let e = 0;
    @norm: for i in 0 .. n {
        e = e + vx[i] * vx[i] + vy[i] * vy[i] + vz[i] * vz[i];
    }
    return sqrt(e);
}
"#;

#[cfg(test)]
mod tests {
    use super::SOURCE;
    use xflow_minilang::{parse, profile, InputSpec};

    #[test]
    fn sord_parses_and_runs() {
        let prog = parse(SOURCE).unwrap();
        let prof = profile(&prog, &InputSpec::new()).unwrap();
        // energy norm printed and finite-positive after wave propagation
        let e = *prof.printed.last().unwrap();
        assert!(e.is_finite() && e > 0.0, "energy {e}");
    }

    #[test]
    fn sord_rupture_branch_is_data_dependent() {
        let prog = parse(SOURCE).unwrap();
        let prof = profile(&prog, &InputSpec::new()).unwrap();
        // the fault branch fires on roughly 15% of scans
        let b = prof.branches.values().find(|b| b.evals() > 100 && b.arm_prob(0) > 0.05 && b.arm_prob(0) < 0.3);
        assert!(b.is_some(), "{:?}", prof.branches);
    }
}
