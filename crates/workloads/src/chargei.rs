//! CHARGEI — ion charge deposition from the Gyrokinetic Toroidal Code.
//!
//! GTC's `chargei` computes the total ion density for a given ion
//! distribution. The paper notes eight loop structures, with arrays
//! produced by some loops consumed by others, and measures two dominant
//! hot spots (44% and 38% of runtime) with spots 4 and 5 nearly tied
//! (~3% each, whose order the model inverts).
//!
//! The port keeps the eight-loop pipeline: particle initialization,
//! gyro-phase computation (trig-heavy), cell location, four-point
//! gyro-averaged scatter (irregular writes), two grid-smoothing sweeps,
//! a field solve sweep, and the normalization/diagnostics reductions.

/// Minilang source of the CHARGEI port.
pub const SOURCE: &str = r#"
// CHARGEI: particle-to-grid charge deposition (gyrokinetic PIC).
fn main() {
    let mi = input("MI", 4000);
    let mgrid = input("MGRID", 600);

    let px = zeros(mi); let pw = zeros(mi); let pmu = zeros(mi);
    let gyro1 = zeros(mi); let gyro2 = zeros(mi);
    let cell = zeros(mi);
    let dens = zeros(mgrid);
    let smooth = zeros(mgrid);
    let phi = zeros(mgrid);

    // loop 1: load the ion distribution
    @load_particles: for p in 0 .. mi {
        px[p] = rnd();
        pw[p] = 2.0 * rnd() - 1.0;
        pmu[p] = rnd();
    }

    // loop 2: gyro-phase angles (dominant hot spot A: trig per particle)
    @gyro_phase: for p in 0 .. mi {
        let theta = 6.2831853 * px[p];
        gyro1[p] = sqrt(2.0 * pmu[p]) * cos(theta);
        gyro2[p] = sqrt(2.0 * pmu[p]) * sin(theta);
    }

    // loop 3: locate the field cell of each particle
    @locate: for p in 0 .. mi {
        cell[p] = floor(px[p] * (mgrid - 4.0)) + 2.0;
    }

    // loop 4: four-point gyro-averaged scatter (dominant hot spot B)
    @deposit: for p in 0 .. mi {
        let c = cell[p];
        let w = pw[p] * 0.25;
        dens[c - 2] += w * (1.0 + gyro1[p]);
        dens[c - 1] += w * (1.0 - gyro2[p]);
        dens[c + 1] += w * (1.0 + gyro2[p]);
        dens[c + 2] += w * (1.0 - gyro1[p]);
    }

    // loop 5: first smoothing sweep over the field grid
    @smooth1: for g in 1 .. mgrid - 1 {
        smooth[g] = 0.25 * dens[g - 1] + 0.5 * dens[g] + 0.25 * dens[g + 1];
    }

    // loop 6: second smoothing sweep back into dens
    @smooth2: for g in 1 .. mgrid - 1 {
        dens[g] = 0.25 * smooth[g - 1] + 0.5 * smooth[g] + 0.25 * smooth[g + 1];
    }

    // loop 7: simplified field solve
    @solve: for g in 1 .. mgrid - 1 {
        phi[g] = phi[g] + 0.1 * (dens[g] - 0.5 * (phi[g - 1] + phi[g + 1]));
    }

    // loop 8: normalization + diagnostics
    let total = 0;
    @normalize: for g in 0 .. mgrid {
        total = total + dens[g];
    }
    let scale = 1.0 / (abs(total) + 1.0);
    @rescale: for g in 0 .. mgrid {
        dens[g] = dens[g] * scale;
    }
    print(total);
}
"#;

#[cfg(test)]
mod tests {
    use super::SOURCE;
    use xflow_minilang::{parse, profile, InputSpec};

    #[test]
    fn chargei_parses_and_runs() {
        let prog = parse(SOURCE).unwrap();
        let prof = profile(&prog, &InputSpec::new()).unwrap();
        assert_eq!(prof.printed.len(), 1);
        assert!(prof.printed[0].is_finite());
    }

    #[test]
    fn chargei_has_eight_loops() {
        let prog = parse(SOURCE).unwrap();
        let mut loops = 0;
        prog.visit_stmts(|_, s| {
            if matches!(s.kind, xflow_minilang::StmtKind::For { .. }) {
                loops += 1;
            }
        });
        // eight pipeline loops + the rescale loop
        assert!(loops >= 8, "{loops}");
    }

    #[test]
    fn chargei_trig_dominates_lib_calls() {
        let prog = parse(SOURCE).unwrap();
        let prof = profile(&prog, &InputSpec::new()).unwrap();
        assert_eq!(prof.lib_calls["sin"], 4000);
        assert_eq!(prof.lib_calls["cos"], 4000);
        assert_eq!(prof.lib_calls["sqrt"], 8000);
    }
}
