//! Property tests for BET construction over randomly generated skeletons:
//! probabilities stay in [0, 1], expected trip counts are bounded by the
//! nominal range, ENR values are finite and non-negative, and the tree size
//! never grows with the numeric inputs.

use proptest::prelude::*;
use xflow_bet::{build, build_with_config, BetKind, BuildConfig};
use xflow_skeleton::ast::*;
use xflow_skeleton::expr::{env_from, Expr};

fn prob_lit() -> impl Strategy<Value = f64> {
    (0u32..=100).prop_map(|p| p as f64 / 100.0)
}

fn bound_expr() -> impl Strategy<Value = Expr> {
    prop_oneof![
        (0i64..2000).prop_map(|v| Expr::Num(v as f64)),
        Just(Expr::var("n")),
        (1i64..8).prop_map(|d| Expr::var("n").div(Expr::Num(d as f64))),
        (0i64..50).prop_map(|c| Expr::var("n").add(Expr::Num(c as f64))),
    ]
}

#[derive(Debug, Clone)]
enum G {
    Comp(f64, f64),
    Lib(&'static str, f64),
    Let(String, Expr),
    Loop(String, Expr, Vec<G>),
    While(Expr, Vec<G>),
    Branch(Vec<(f64, Vec<G>)>, Option<Vec<G>>),
    Return(f64),
    Break(f64),
    Continue(f64),
}

fn gen_stmt(in_loop: bool) -> impl Strategy<Value = G> {
    let base = prop_oneof![
        ((0u32..200), (0u32..100)).prop_map(|(f, l)| G::Comp(f as f64, l as f64)),
        (prop_oneof![Just("exp"), Just("rand"), Just("sqrt")], 1u32..10).prop_map(|(n, c)| G::Lib(n, c as f64)),
        ("[a-d]", (0u32..100)).prop_map(|(v, k)| G::Let(v, Expr::Num(k as f64))),
        prob_lit().prop_map(G::Return),
    ];
    let leaf = if in_loop {
        prop_oneof![base, prob_lit().prop_map(G::Break), prob_lit().prop_map(G::Continue)].boxed()
    } else {
        base.boxed()
    };
    leaf.prop_recursive(3, 24, 4, move |inner| {
        let block = prop::collection::vec(inner.clone(), 0..4);
        prop_oneof![
            ("[i-k]", bound_expr(), block.clone()).prop_map(|(v, hi, b)| G::Loop(v, hi, b)),
            (bound_expr(), block.clone()).prop_map(|(t, b)| G::While(t, b)),
            (prop::collection::vec((prob_lit(), block.clone()), 1..3), prop::option::of(block))
                .prop_map(|(arms, e)| G::Branch(arms, e)),
        ]
    })
}

fn assemble(stmts: &[G], prog: &mut Program) -> Block {
    let mut out = Vec::new();
    for g in stmts {
        let id = prog.fresh_stmt_id();
        let kind = match g {
            G::Comp(f, l) => {
                StmtKind::Comp(OpStats { flops: Expr::Num(*f), loads: Expr::Num(*l), ..Default::default() })
            }
            G::Lib(n, c) => StmtKind::LibCall { func: n.to_string(), calls: Expr::Num(*c), work: Expr::Num(1.0) },
            G::Let(v, e) => StmtKind::Let { var: v.clone(), value: e.clone() },
            G::Loop(v, hi, b) => StmtKind::Loop {
                var: v.clone(),
                lo: Expr::Num(0.0),
                hi: hi.clone(),
                step: Expr::Num(1.0),
                parallel: false,
                body: assemble(b, prog),
            },
            G::While(t, b) => StmtKind::While { trips: t.clone(), body: assemble(b, prog) },
            G::Branch(arms, e) => StmtKind::Branch {
                arms: arms
                    .iter()
                    .map(|(p, b)| BranchArm { cond: Cond::Prob(Expr::Num(*p)), body: assemble(b, prog) })
                    .collect(),
                else_body: e.as_ref().map(|b| assemble(b, prog)),
            },
            G::Return(p) => StmtKind::Return { prob: Expr::Num(*p) },
            G::Break(p) => StmtKind::Break { prob: Expr::Num(*p) },
            G::Continue(p) => StmtKind::Continue { prob: Expr::Num(*p) },
        };
        out.push(Stmt { id, label: None, kind });
    }
    Block { stmts: out }
}

fn gen_program() -> impl Strategy<Value = Program> {
    prop::collection::vec(gen_stmt(false), 1..6).prop_map(|body| {
        let mut prog = Program::new();
        let body = assemble(&body, &mut prog);
        prog.add_function(Function { id: FuncId(0), name: "main".into(), params: vec![], body }).unwrap();
        prog
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn probabilities_and_trips_are_sane(prog in gen_program(), n in 1u32..1000) {
        let bet = build(&prog, &env_from([("n", n as f64)])).unwrap();
        let enr = bet.enr();
        for node in bet.iter() {
            prop_assert!((0.0..=1.0 + 1e-9).contains(&node.prob), "prob {}", node.prob);
            prop_assert!(node.iters >= 0.0 && node.iters.is_finite(), "iters {}", node.iters);
            let e = enr[node.id.0 as usize];
            prop_assert!(e.is_finite() && e >= 0.0, "enr {e}");
        }
    }

    #[test]
    fn loop_iters_bounded_by_nominal_range(prog in gen_program(), n in 1u32..1000) {
        let bet = build(&prog, &env_from([("n", n as f64)])).unwrap();
        for node in bet.iter() {
            if matches!(node.kind, BetKind::Loop) {
                // effective trips never exceed what the bounds allow plus
                // rounding (break/return only shorten loops)
                prop_assert!(node.iters <= 2.0 * (n as f64) + 2100.0, "{}", node.iters);
            }
        }
    }

    #[test]
    fn size_never_grows_with_input(prog in gen_program()) {
        let small = build(&prog, &env_from([("n", 4.0)])).unwrap();
        let large = build(&prog, &env_from([("n", 4_000_000.0)])).unwrap();
        // Escape truncation is exact (1 − (1−p)^trips), so the surviving
        // continuation mass after a returning loop decays with the trip
        // count: bigger inputs can only push more mass below the pruning
        // floor and drop the dead continuation, never add nodes.
        prop_assert!(
            large.len() <= small.len(),
            "large input grew the tree: {} > {}", large.len(), small.len()
        );
    }

    #[test]
    fn branch_children_mass_bounded_by_parent(prog in gen_program(), n in 1u32..1000) {
        let bet = build(&prog, &env_from([("n", n as f64)])).unwrap();
        // For every branch statement: the total probability of its arm
        // nodes under one parent never exceeds the contexts' mass (≤ 1 per
        // sibling group plus fp tolerance).
        use std::collections::HashMap;
        let mut arm_mass: HashMap<(u32, u32), f64> = HashMap::new(); // (parent, stmt)
        for node in bet.iter() {
            if let (BetKind::Arm { .. }, Some(stmt), Some(parent)) = (&node.kind, node.stmt, node.parent) {
                *arm_mass.entry((parent.0, stmt.0)).or_insert(0.0) += node.prob;
            }
        }
        for ((_, _), mass) in arm_mass {
            prop_assert!(mass <= 1.0 + 1e-6, "arm mass {mass}");
        }
    }

    #[test]
    fn construction_is_deterministic(prog in gen_program(), n in 1u32..1000) {
        let a = build(&prog, &env_from([("n", n as f64)])).unwrap();
        let b = build(&prog, &env_from([("n", n as f64)])).unwrap();
        prop_assert_eq!(a.len(), b.len());
        let ea = a.enr();
        let eb = b.enr();
        prop_assert_eq!(ea, eb);
    }

    #[test]
    fn node_budget_is_respected(prog in gen_program(), n in 1u32..1000) {
        let cfg = BuildConfig { max_nodes: 64, ..Default::default() };
        match build_with_config(&prog, &env_from([("n", n as f64)]), cfg) {
            Ok(bet) => prop_assert!(bet.len() <= 64),
            Err(xflow_bet::BuildError::TooManyNodes(64)) => {}
            Err(other) => prop_assert!(false, "unexpected error {other:?}"),
        }
    }
}
