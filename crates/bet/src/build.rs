//! BET construction from a Block Skeleton Tree and an input binding
//! (paper Section IV-B).
//!
//! The builder conceptually traverses the BST starting at `main`, mounting
//! callee BSTs at call sites with arguments bound from the current context.
//! Loops become single nodes carrying expected trip counts — bodies are
//! modeled **once**, with the induction variable held as a symbolic range —
//! so construction time is independent of the input data size. Branches
//! split probability-weighted contexts; `return`/`break`/`continue` move
//! probability mass out of the fall-through path and promote it to the
//! enclosing function/loop, where it shortens expected trip counts via the
//! truncated-geometric formula.

use crate::context::{cond_prob, expected_trips_with_break, merge_contexts, Ctx};
use crate::node::{Bet, BetKind, BetNode, BetNodeId, ConcreteOps};
use xflow_obs::{AttrValue, Recorder};
use xflow_skeleton as sk;
use xflow_skeleton::expr::{Env, Value};

/// Construction limits.
#[derive(Debug, Clone, Copy)]
pub struct BuildConfig {
    /// Maximum simultaneously tracked contexts per block.
    pub max_contexts: usize,
    /// Maximum function-mount depth (recursion guard).
    pub max_depth: u32,
    /// Maximum BET nodes (runaway guard).
    pub max_nodes: usize,
}

impl Default for BuildConfig {
    fn default() -> Self {
        Self { max_contexts: 16, max_depth: 64, max_nodes: 4_000_000 }
    }
}

/// Construction failure.
#[derive(Debug, Clone, PartialEq)]
pub enum BuildError {
    /// The skeleton has no `main` function.
    NoMain,
    /// A `call` references an unknown function.
    UnknownFunction(String),
    /// The node budget was exhausted (pathological context explosion).
    TooManyNodes(usize),
}

impl std::fmt::Display for BuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BuildError::NoMain => write!(f, "skeleton has no `main` function"),
            BuildError::UnknownFunction(n) => write!(f, "call to unknown function `{n}`"),
            BuildError::TooManyNodes(n) => write!(f, "BET exceeded the node budget of {n}"),
        }
    }
}

impl std::error::Error for BuildError {}

/// Build the BET of a skeleton program for one input binding.
///
/// `inputs` seeds the initial context (the paper's "initial context with the
/// values of input variables of array dimensions").
pub fn build(prog: &sk::Program, inputs: &Env) -> Result<Bet, BuildError> {
    build_with_config(prog, inputs, BuildConfig::default())
}

/// [`build_with_config`] under a telemetry recorder.
///
/// Wraps construction in a `bet.build` span and, when the recorder is
/// enabled, reports the tree's composition as counters (`bet.nodes`,
/// `bet.mounts`, `bet.loops`, `bet.arms`, `bet.comps`, `bet.libs`,
/// `bet.promotions`, `bet.warnings`) plus one `bet.promote` instant event
/// per `return`/`break`/`continue` node that moved probability mass. With
/// [`xflow_obs::NoopRecorder`] the per-node accounting is skipped entirely.
pub fn build_observed<R: Recorder + ?Sized>(
    prog: &sk::Program,
    inputs: &Env,
    cfg: BuildConfig,
    rec: &R,
) -> Result<Bet, BuildError> {
    let span = rec.span_start("bet.build", &[]);
    let result = build_with_config(prog, inputs, cfg);
    match &result {
        Ok(bet) if rec.enabled() => {
            let (mut mounts, mut loops, mut arms, mut comps, mut libs, mut promotions) =
                (0u64, 0u64, 0u64, 0u64, 0u64, 0u64);
            for node in bet.iter() {
                match &node.kind {
                    BetKind::Call { .. } => mounts += 1,
                    BetKind::Loop => loops += 1,
                    BetKind::Arm { .. } => arms += 1,
                    BetKind::Comp { .. } => comps += 1,
                    BetKind::Lib { .. } => libs += 1,
                    BetKind::Return | BetKind::Break | BetKind::Continue => {
                        promotions += 1;
                        rec.event(
                            "bet.promote",
                            &[
                                ("kind", AttrValue::Str(node.kind.tag())),
                                ("node", AttrValue::U64(u64::from(node.id.0))),
                                ("mass", AttrValue::F64(node.prob)),
                            ],
                        );
                    }
                    BetKind::Root => {}
                }
            }
            rec.add("bet.nodes", bet.len() as u64);
            rec.add("bet.mounts", mounts);
            rec.add("bet.loops", loops);
            rec.add("bet.arms", arms);
            rec.add("bet.comps", comps);
            rec.add("bet.libs", libs);
            rec.add("bet.promotions", promotions);
            rec.add("bet.warnings", bet.warnings.len() as u64);
            rec.span_end(
                span,
                &[
                    ("outcome", AttrValue::Str("ok")),
                    ("nodes", AttrValue::U64(bet.len() as u64)),
                    ("mounts", AttrValue::U64(mounts)),
                    ("loops", AttrValue::U64(loops)),
                    ("arms", AttrValue::U64(arms)),
                    ("promotions", AttrValue::U64(promotions)),
                    ("warnings", AttrValue::U64(bet.warnings.len() as u64)),
                ],
            );
        }
        Ok(_) => rec.span_end(span, &[]),
        Err(e) if rec.enabled() => {
            let msg = e.to_string();
            rec.span_end(span, &[("outcome", AttrValue::Str("error")), ("error", AttrValue::Str(&msg))]);
        }
        Err(_) => rec.span_end(span, &[]),
    }
    result
}

/// [`build`] with explicit limits.
pub fn build_with_config(prog: &sk::Program, inputs: &Env, cfg: BuildConfig) -> Result<Bet, BuildError> {
    let main = prog.main().ok_or(BuildError::NoMain)?;
    let mut b = Builder { prog, cfg, bet: Bet::new() };
    let root = b.bet.push(BetNode {
        id: BetNodeId(0),
        parent: None,
        stmt: None,
        kind: BetKind::Root,
        prob: 1.0,
        iters: 1.0,
        parallel: false,
        children: Vec::new(),
        context: Vec::new(),
    });
    let entry = Ctx::new(inputs.clone());
    b.build_block(&main.body, root, vec![entry], 0)?;
    Ok(b.bet)
}

/// Probability mass leaving a block through non-fall-through edges, relative
/// to one entry of the block.
#[derive(Debug, Clone, Copy, Default)]
struct EscapeMass {
    brk: f64,
    cont: f64,
    ret: f64,
}

struct Builder<'p> {
    prog: &'p sk::Program,
    cfg: BuildConfig,
    bet: Bet,
}

impl<'p> Builder<'p> {
    fn push(&mut self, node: BetNode) -> Result<BetNodeId, BuildError> {
        if self.bet.len() >= self.cfg.max_nodes {
            return Err(BuildError::TooManyNodes(self.cfg.max_nodes));
        }
        Ok(self.bet.push(node))
    }

    fn make(
        &self,
        parent: BetNodeId,
        stmt: Option<sk::StmtId>,
        kind: BetKind,
        prob: f64,
        iters: f64,
        ctx: &Ctx,
    ) -> BetNode {
        BetNode {
            id: BetNodeId(0),
            parent: Some(parent),
            stmt,
            kind,
            prob,
            iters,
            parallel: false,
            children: Vec::new(),
            context: ctx.snapshot(),
        }
    }

    /// Evaluate an expression in a context; unknown values become `default`
    /// with a warning.
    fn eval_or(&mut self, e: &sk::Expr, env: &Env, default: f64, what: &str) -> f64 {
        match e.eval(env) {
            Ok(v) => v,
            Err(err) => {
                self.bet.warnings.push(format!("{what}: {err}; assumed {default}"));
                default
            }
        }
    }

    /// Model a block for a set of entry contexts under `parent`. Returns the
    /// fall-through contexts and the escaped probability mass.
    fn build_block(
        &mut self,
        block: &sk::Block,
        parent: BetNodeId,
        entry: Vec<Ctx>,
        depth: u32,
    ) -> Result<(Vec<Ctx>, EscapeMass), BuildError> {
        let mut ctxs = entry;
        let mut escape = EscapeMass::default();

        for stmt in &block.stmts {
            if ctxs.is_empty() {
                break; // no live probability mass remains
            }
            match &stmt.kind {
                sk::StmtKind::Let { var, value } => {
                    for ctx in &mut ctxs {
                        match value.eval(&ctx.env) {
                            Ok(v) => {
                                ctx.env.insert(var.clone(), Value::Scalar(v));
                            }
                            Err(_) => {
                                // value is unknowable in this context
                                ctx.env.remove(var);
                            }
                        }
                    }
                }
                sk::StmtKind::Comp(ops) => {
                    // one node per distinct evaluated cost
                    for ctx in &ctxs {
                        let concrete = ConcreteOps {
                            flops: ops.flops.eval_or_default(&ctx.env, 1.0).max(0.0),
                            iops: ops.iops.eval_or_default(&ctx.env, 1.0).max(0.0),
                            loads: ops.loads.eval_or_default(&ctx.env, 1.0).max(0.0),
                            stores: ops.stores.eval_or_default(&ctx.env, 1.0).max(0.0),
                            divs: ops.divs.eval_or_default(&ctx.env, 1.0).max(0.0),
                            elem_bytes: ops.dtype_bytes.eval_or_default(&ctx.env, 8.0).max(1.0),
                        };
                        let node =
                            self.make(parent, Some(stmt.id), BetKind::Comp { ops: concrete }, ctx.prob, 1.0, ctx);
                        self.push(node)?;
                    }
                }
                sk::StmtKind::LibCall { func, calls, work } => {
                    for ctx in &ctxs {
                        let calls = self.eval_or(calls, &ctx.env, 1.0, "lib call count").max(0.0);
                        let work = self.eval_or(work, &ctx.env, 1.0, "lib work").max(0.0);
                        let node = self.make(
                            parent,
                            Some(stmt.id),
                            BetKind::Lib { func: func.clone(), calls, work },
                            ctx.prob,
                            1.0,
                            ctx,
                        );
                        self.push(node)?;
                    }
                }
                sk::StmtKind::Call { func, args } => {
                    let callee = self.prog.function(func).ok_or_else(|| BuildError::UnknownFunction(func.clone()))?;
                    for ctx in ctxs.clone() {
                        if depth >= self.cfg.max_depth {
                            self.bet.warnings.push(format!(
                                "mount depth limit ({}) reached at call to `{func}`; subtree truncated",
                                self.cfg.max_depth
                            ));
                            continue;
                        }
                        // bind arguments into a fresh callee environment
                        let mut callee_env = Env::new();
                        for (param, arg) in callee.params.iter().zip(args) {
                            if let Ok(v) = arg.eval(&ctx.env) {
                                callee_env.insert(param.clone(), Value::Scalar(v));
                            }
                        }
                        let node = self.make(
                            parent,
                            Some(stmt.id),
                            BetKind::Call { func: func.clone() },
                            ctx.prob,
                            1.0,
                            &Ctx { env: callee_env.clone(), prob: ctx.prob },
                        );
                        let call_node = self.push(node)?;
                        // the callee's return mass terminates inside the mount
                        let _ = self.build_block(&callee.body, call_node, vec![Ctx::new(callee_env)], depth + 1)?;
                    }
                }
                sk::StmtKind::Loop { var, lo, hi, step, parallel, body } => {
                    for ctx in ctxs.clone().into_iter() {
                        let lo_v = self.eval_or(lo, &ctx.env, 0.0, "loop lower bound");
                        let hi_v = self.eval_or(hi, &ctx.env, 0.0, "loop upper bound");
                        let st_v = self.eval_or(step, &ctx.env, 1.0, "loop step").max(f64::MIN_POSITIVE);
                        let trips = Value::Range { lo: lo_v, hi: hi_v, step: st_v }.trip_count();
                        self.model_loop(
                            stmt,
                            parent,
                            &ctx,
                            trips,
                            Some((var.as_str(), lo_v, hi_v, st_v)),
                            *parallel,
                            body,
                            depth,
                            &mut ctxs,
                            &mut escape,
                        )?;
                    }
                }
                sk::StmtKind::While { trips, body } => {
                    for ctx in ctxs.clone().into_iter() {
                        let trips = self.eval_or(trips, &ctx.env, 0.0, "while trip count").max(0.0);
                        self.model_loop(stmt, parent, &ctx, trips, None, false, body, depth, &mut ctxs, &mut escape)?;
                    }
                }
                sk::StmtKind::Branch { arms, else_body } => {
                    let mut survivors: Vec<Ctx> = Vec::new();
                    for ctx in ctxs.clone().into_iter() {
                        let mut remaining = 1.0f64; // mass not yet claimed by an arm
                        for (i, arm) in arms.iter().enumerate() {
                            if remaining <= 1e-12 {
                                break;
                            }
                            let p = match cond_prob(&arm.cond, &ctx.env) {
                                Some(p) => p,
                                None => {
                                    self.bet.warnings.push(format!(
                                        "branch condition at stmt #{} is not statically analyzable; assuming 0.5",
                                        stmt.id.0
                                    ));
                                    0.5
                                }
                            };
                            let arm_mass = ctx.prob * remaining * p;
                            remaining *= 1.0 - p;
                            if arm_mass <= 1e-12 {
                                continue;
                            }
                            let node =
                                self.make(parent, Some(stmt.id), BetKind::Arm { index: Some(i) }, arm_mass, 1.0, &ctx);
                            let arm_node = self.push(node)?;
                            let (outs, esc) = self.build_block(
                                &arm.body,
                                arm_node,
                                vec![Ctx { env: ctx.env.clone(), prob: 1.0 }],
                                depth,
                            )?;
                            escape.brk += arm_mass * esc.brk;
                            escape.cont += arm_mass * esc.cont;
                            escape.ret += arm_mass * esc.ret;
                            for out in outs {
                                survivors.push(Ctx { env: out.env, prob: arm_mass * out.prob });
                            }
                        }
                        // else / fall-through path
                        let else_mass = ctx.prob * remaining;
                        if else_mass > 1e-12 {
                            match else_body {
                                Some(e) => {
                                    let node = self.make(
                                        parent,
                                        Some(stmt.id),
                                        BetKind::Arm { index: None },
                                        else_mass,
                                        1.0,
                                        &ctx,
                                    );
                                    let arm_node = self.push(node)?;
                                    let (outs, esc) = self.build_block(
                                        e,
                                        arm_node,
                                        vec![Ctx { env: ctx.env.clone(), prob: 1.0 }],
                                        depth,
                                    )?;
                                    escape.brk += else_mass * esc.brk;
                                    escape.cont += else_mass * esc.cont;
                                    escape.ret += else_mass * esc.ret;
                                    for out in outs {
                                        survivors.push(Ctx { env: out.env, prob: else_mass * out.prob });
                                    }
                                }
                                None => survivors.push(Ctx { env: ctx.env.clone(), prob: else_mass }),
                            }
                        }
                    }
                    ctxs = merge_contexts(survivors, self.cfg.max_contexts, &mut self.bet.warnings);
                }
                sk::StmtKind::Return { prob } => {
                    for ctx in &mut ctxs {
                        let p = self.eval_or(prob, &ctx.env, 1.0, "return probability").clamp(0.0, 1.0);
                        if p <= 0.0 {
                            continue;
                        }
                        let mass = ctx.prob * p;
                        let node = self.make(parent, Some(stmt.id), BetKind::Return, mass, 1.0, ctx);
                        self.push(node)?;
                        escape.ret += mass;
                        ctx.prob *= 1.0 - p;
                    }
                    ctxs.retain(|c| c.prob > 1e-12);
                }
                sk::StmtKind::Break { prob } => {
                    for ctx in &mut ctxs {
                        let p = self.eval_or(prob, &ctx.env, 1.0, "break probability").clamp(0.0, 1.0);
                        if p <= 0.0 {
                            continue;
                        }
                        let mass = ctx.prob * p;
                        let node = self.make(parent, Some(stmt.id), BetKind::Break, mass, 1.0, ctx);
                        self.push(node)?;
                        escape.brk += mass;
                        ctx.prob *= 1.0 - p;
                    }
                    ctxs.retain(|c| c.prob > 1e-12);
                }
                sk::StmtKind::Continue { prob } => {
                    for ctx in &mut ctxs {
                        let p = self.eval_or(prob, &ctx.env, 1.0, "continue probability").clamp(0.0, 1.0);
                        if p <= 0.0 {
                            continue;
                        }
                        let mass = ctx.prob * p;
                        let node = self.make(parent, Some(stmt.id), BetKind::Continue, mass, 1.0, ctx);
                        self.push(node)?;
                        escape.cont += mass;
                        ctx.prob *= 1.0 - p;
                    }
                    ctxs.retain(|c| c.prob > 1e-12);
                }
            }
        }
        Ok((ctxs, escape))
    }

    /// Shared modeling of `loop` and `while` statements.
    #[allow(clippy::too_many_arguments)]
    fn model_loop(
        &mut self,
        stmt: &sk::Stmt,
        parent: BetNodeId,
        ctx: &Ctx,
        nominal_trips: f64,
        range: Option<(&str, f64, f64, f64)>,
        parallel: bool,
        body: &sk::Block,
        depth: u32,
        out_ctxs: &mut Vec<Ctx>,
        escape: &mut EscapeMass,
    ) -> Result<(), BuildError> {
        // replace this context's entry in the outgoing set
        if let Some(pos) = out_ctxs.iter().position(|c| c.same_env(ctx) && c.prob == ctx.prob) {
            out_ctxs.remove(pos);
        }
        let mut node = self.make(parent, Some(stmt.id), BetKind::Loop, ctx.prob, nominal_trips.max(0.0), ctx);
        node.parallel = parallel;
        let loop_node = self.push(node)?;

        // body environment: induction variable becomes a symbolic range
        let mut body_env = ctx.env.clone();
        if let Some((var, lo, hi, step)) = range {
            body_env.insert(var.to_string(), Value::Range { lo, hi, step });
        }
        let (body_out, body_esc) = self.build_block(body, loop_node, vec![Ctx { env: body_env, prob: 1.0 }], depth)?;

        // breaks and returns shorten the expected trip count
        let exit_p = (body_esc.brk + body_esc.ret).clamp(0.0, 1.0);
        let eff_trips = expected_trips_with_break(nominal_trips.max(0.0), exit_p);
        self.bet.node_mut(loop_node).iters = eff_trips;

        // probability the loop is escaped via return (terminates the
        // function, not just the loop): promoted to the enclosing block.
        // Per-iteration mass × expected iterations — for a pure-return
        // loop this is p·(1−(1−p)ⁿ)/p = 1−(1−p)ⁿ, the exact truncated-
        // geometric escape probability, and with breaks present eff_trips
        // already accounts for their preemption. Raising (1−p) to the
        // *truncated expectation* instead would underestimate the escape
        // (Jensen), under-truncate enclosing loops, and let the promoted
        // return mass exceed one event per function call.
        let ret_escape = (body_esc.ret.max(0.0) * eff_trips).min(1.0);
        escape.ret += ctx.prob * ret_escape;

        // fall-through: variables assigned in one modeled pass persist; the
        // induction variable takes its final value
        let survive = ctx.prob * (1.0 - ret_escape);
        if survive > 1e-12 {
            // merge body-out envs (weighted by their fall-through probability)
            let mut env_after = match body_out
                .into_iter()
                .max_by(|a, b| a.prob.partial_cmp(&b.prob).unwrap_or(std::cmp::Ordering::Equal))
            {
                Some(c) => c.env,
                None => ctx.env.clone(),
            };
            if let Some((var, _, hi, _)) = range {
                env_after.insert(var.to_string(), Value::Scalar(hi));
            }
            out_ctxs.push(Ctx { env: env_after, prob: survive });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::BetKind;
    use xflow_skeleton::expr::env_from;
    use xflow_skeleton::parse;

    fn build_src(src: &str, inputs: &[(&str, f64)]) -> Bet {
        let prog = parse(src).unwrap();
        build(&prog, &env_from(inputs.iter().copied())).unwrap()
    }

    fn find<'a>(bet: &'a Bet, tag: &str) -> Vec<&'a BetNode> {
        bet.iter().filter(|n| n.kind.tag() == tag).collect()
    }

    #[test]
    fn single_comp_program() {
        let bet = build_src("func main() { comp { flops: 4, loads: 2 } }", &[]);
        assert_eq!(bet.len(), 2); // root + comp
        let comps = find(&bet, "comp");
        assert_eq!(comps.len(), 1);
        match &comps[0].kind {
            BetKind::Comp { ops } => {
                assert_eq!(ops.flops, 4.0);
                assert_eq!(ops.loads, 2.0);
            }
            _ => unreachable!(),
        }
    }

    #[test]
    fn loop_is_single_node_with_input_dependent_trips() {
        let src = "func main() { loop i = 0 .. n { comp { flops: 1 } } }";
        let small = build_src(src, &[("n", 10.0)]);
        let large = build_src(src, &[("n", 1_000_000.0)]);
        // identical structure regardless of input size
        assert_eq!(small.len(), large.len());
        assert_eq!(find(&small, "loop")[0].iters, 10.0);
        assert_eq!(find(&large, "loop")[0].iters, 1_000_000.0);
        // ENR of the body reflects the trip count
        let enr = large.enr();
        let comp = find(&large, "comp")[0];
        assert_eq!(enr[comp.id.0 as usize], 1_000_000.0);
    }

    #[test]
    fn call_mounts_callee_with_bound_arguments() {
        let src = r#"
func main() {
  let n = N
  call work(n * 2)
}
func work(m) {
  loop j = 0 .. m { comp { flops: 1 } }
}
"#;
        let bet = build_src(src, &[("N", 8.0)]);
        let calls = find(&bet, "call");
        assert_eq!(calls.len(), 1);
        // the mounted loop sees m = 16
        let loops = find(&bet, "loop");
        assert_eq!(loops[0].iters, 16.0);
        // argument value is recorded in the mount context
        assert!(calls[0].context.iter().any(|(k, v)| k == "m" && *v == 16.0));
    }

    #[test]
    fn multiple_call_sites_mount_separately_with_different_contexts() {
        let src = r#"
func main() {
  call work(10)
  call work(50)
}
func work(m) {
  loop j = 0 .. m { comp { flops: 1 } }
}
"#;
        let bet = build_src(src, &[]);
        let loops = find(&bet, "loop");
        assert_eq!(loops.len(), 2);
        let mut trips: Vec<f64> = loops.iter().map(|l| l.iters).collect();
        trips.sort_by(f64::total_cmp);
        assert_eq!(trips, vec![10.0, 50.0]);
    }

    #[test]
    fn probabilistic_branch_splits_mass() {
        let src = r#"
func main() {
  if prob(0.3) { comp { flops: 1 } }
  else { comp { flops: 2 } }
}
"#;
        let bet = build_src(src, &[]);
        let arms = find(&bet, "arm");
        assert_eq!(arms.len(), 2);
        let probs: Vec<f64> = arms.iter().map(|a| a.prob).collect();
        assert!(probs.contains(&0.3));
        assert!(probs.contains(&0.7));
    }

    #[test]
    fn deterministic_branch_on_context_value() {
        let src = r#"
func main() {
  let n = N
  if (n < 100) { comp { flops: 1 } }
  else { comp { flops: 2 } }
}
"#;
        let bet = build_src(src, &[("N", 5.0)]);
        let arms = find(&bet, "arm");
        // only the taken arm materializes (probability 1), else arm has 0 mass
        assert_eq!(arms.len(), 1);
        assert_eq!(arms[0].prob, 1.0);
        assert_eq!(arms[0].kind, BetKind::Arm { index: Some(0) });
    }

    #[test]
    fn range_condition_yields_fractional_arm() {
        let src = r#"
func main() {
  loop i = 0 .. 100 {
    if (i < 25) { comp { flops: 1 } }
  }
}
"#;
        let bet = build_src(src, &[]);
        let arm = find(&bet, "arm")[0];
        assert!((arm.prob - 0.25).abs() < 0.02, "{}", arm.prob);
        // ENR of the guarded comp ≈ 25
        let enr = bet.enr();
        let comp = find(&bet, "comp")[0];
        assert!((enr[comp.id.0 as usize] - 25.0).abs() < 2.0);
    }

    #[test]
    fn branch_context_forking_like_figure_2() {
        // the paper's pedagogical example: a branch assigns `knob`
        // differently, and a later call is modeled once per context
        let src = r#"
func main() {
  if prob(0.6) { let knob = 1 }
  else { let knob = 2 }
  call foo(knob)
}
func foo(k) {
  loop i = 0 .. k * 10 { comp { flops: 1 } }
}
"#;
        let bet = build_src(src, &[]);
        let calls = find(&bet, "call");
        assert_eq!(calls.len(), 2, "two contexts must mount foo twice");
        let mut probs: Vec<f64> = calls.iter().map(|c| c.prob).collect();
        probs.sort_by(f64::total_cmp);
        assert!((probs[0] - 0.4).abs() < 1e-9);
        assert!((probs[1] - 0.6).abs() < 1e-9);
        let mut trips: Vec<f64> = find(&bet, "loop").iter().map(|l| l.iters).collect();
        trips.sort_by(f64::total_cmp);
        assert_eq!(trips, vec![10.0, 20.0]);
    }

    #[test]
    fn return_kills_following_statements() {
        let src = r#"
func main() {
  comp { flops: 1 }
  return
  comp { flops: 99 }
}
"#;
        let bet = build_src(src, &[]);
        let comps = find(&bet, "comp");
        assert_eq!(comps.len(), 1, "statements after an unconditional return must not be modeled");
    }

    #[test]
    fn probabilistic_return_scales_following_mass() {
        let src = r#"
func main() {
  return prob(0.25)
  comp { flops: 1 }
}
"#;
        let bet = build_src(src, &[]);
        let comp = find(&bet, "comp")[0];
        assert!((comp.prob - 0.75).abs() < 1e-9);
    }

    #[test]
    fn break_shortens_expected_trips() {
        let src = r#"
func main() {
  loop i = 0 .. 1000 {
    comp { flops: 1 }
    break prob(0.01)
  }
}
"#;
        let bet = build_src(src, &[]);
        let l = find(&bet, "loop")[0];
        // E = (1 - 0.99^1000)/0.01 ≈ 99.996
        assert!((l.iters - 100.0).abs() < 2.0, "{}", l.iters);
    }

    #[test]
    fn break_inside_branch_promotes_through_arm() {
        let src = r#"
func main() {
  loop i = 0 .. 1000 {
    if prob(0.02) { break }
    comp { flops: 1 }
  }
}
"#;
        let bet = build_src(src, &[]);
        let l = find(&bet, "loop")[0];
        // per-iteration exit prob 0.02 → ≈ 50 expected trips
        assert!((l.iters - 50.0).abs() < 2.0, "{}", l.iters);
        // the comp after the branch runs with prob 0.98 per iteration
        let comp = find(&bet, "comp")[0];
        assert!((comp.prob - 0.98).abs() < 1e-9);
    }

    #[test]
    fn return_inside_loop_escapes_function() {
        let src = r#"
func main() {
  loop i = 0 .. 10 {
    return prob(0.5)
  }
  comp { flops: 1 }
}
"#;
        let bet = build_src(src, &[]);
        // survival after the loop ≈ (1-0.5)^E with E ≈ 2 trips ⇒ tiny
        let comp = find(&bet, "comp")[0];
        assert!(comp.prob < 0.3, "{}", comp.prob);
        let l = find(&bet, "loop")[0];
        assert!(l.iters < 3.0, "{}", l.iters);
    }

    #[test]
    fn while_uses_profiled_trip_expression() {
        let src = "func main() { while trips(n / 2) { comp { flops: 1 } } }";
        let bet = build_src(src, &[("n", 64.0)]);
        assert_eq!(find(&bet, "loop")[0].iters, 32.0);
    }

    #[test]
    fn empty_loop_runs_zero_times() {
        let bet = build_src("func main() { loop i = 5 .. 5 { comp { flops: 1 } } }", &[]);
        assert_eq!(find(&bet, "loop")[0].iters, 0.0);
        let enr = bet.enr();
        let comp = find(&bet, "comp")[0];
        assert_eq!(enr[comp.id.0 as usize], 0.0);
    }

    #[test]
    fn bet_size_independent_of_input() {
        let src = r#"
func main() {
  let n = N
  loop i = 0 .. n {
    loop j = 0 .. n {
      comp { flops: 8, loads: 4, stores: 2 }
      if prob(0.1) { lib exp(1) }
    }
  }
}
"#;
        let sizes: Vec<usize> =
            [10.0, 1e3, 1e6, 1e9].iter().map(|&n| build_src(src, &[("n", 0.0), ("N", n)]).len()).collect();
        assert!(sizes.windows(2).all(|w| w[0] == w[1]), "{sizes:?}");
    }

    #[test]
    fn unknown_branch_condition_warns_and_halves() {
        let src = r#"
func main() {
  if (mystery < 3) { comp { flops: 1 } }
}
"#;
        let bet = build_src(src, &[]);
        assert!(bet.warnings.iter().any(|w| w.contains("not statically analyzable")));
        let arm = find(&bet, "arm")[0];
        assert_eq!(arm.prob, 0.5);
    }

    #[test]
    fn unknown_function_is_error() {
        let prog = parse("func main() { call ghost() }").unwrap();
        assert_eq!(build(&prog, &Env::new()).unwrap_err(), BuildError::UnknownFunction("ghost".into()));
    }

    #[test]
    fn recursion_depth_limited() {
        let prog = parse("func main() { call f() } func f() { call f() }").unwrap();
        let bet = build_with_config(&prog, &Env::new(), BuildConfig { max_depth: 8, ..Default::default() }).unwrap();
        assert!(bet.warnings.iter().any(|w| w.contains("depth limit")));
        assert!(bet.len() <= 16);
    }

    #[test]
    fn node_budget_enforced() {
        // wide context forking via chained branches with distinct lets
        let src = r#"
func main() {
  if prob(0.5) { let a = 1 } else { let a = 2 }
  if prob(0.5) { let b = 1 } else { let b = 2 }
  call f(a, b)
}
func f(x, y) { comp { flops: x + y } }
"#;
        let prog = parse(src).unwrap();
        let err =
            build_with_config(&prog, &Env::new(), BuildConfig { max_nodes: 3, ..Default::default() }).unwrap_err();
        assert!(matches!(err, BuildError::TooManyNodes(3)));
    }

    #[test]
    fn switch_arm_probabilities_are_conditional() {
        let src = r#"
func main() {
  switch {
    case prob(0.5) { comp { flops: 1 } }
    case prob(0.5) { comp { flops: 2 } }
    default { comp { flops: 3 } }
  }
}
"#;
        let bet = build_src(src, &[]);
        let arms = find(&bet, "arm");
        // arm0 0.5, arm1 0.5*0.5 = 0.25, else 0.25
        let mut probs: Vec<f64> = arms.iter().map(|a| a.prob).collect();
        probs.sort_by(f64::total_cmp);
        assert_eq!(probs, vec![0.25, 0.25, 0.5]);
        let total: f64 = probs.iter().sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn observed_build_counts_node_kinds_and_promotions() {
        use xflow_obs::{CollectingRecorder, NoopRecorder};
        let src = r#"
func main() {
  call work(4)
  loop i = 0 .. 10 {
    if prob(0.5) { comp { flops: 1 } }
    break prob(0.1)
  }
  lib exp(1)
}
func work(m) { comp { flops: m } }
"#;
        let prog = parse(src).unwrap();
        let rec = CollectingRecorder::new();
        let bet = build_observed(&prog, &Env::new(), BuildConfig::default(), &rec).unwrap();
        assert_eq!(rec.counter_value("bet.nodes"), bet.len() as u64);
        assert_eq!(rec.counter_value("bet.mounts"), 1);
        assert_eq!(rec.counter_value("bet.loops"), 1);
        assert_eq!(rec.counter_value("bet.comps"), 2);
        assert_eq!(rec.counter_value("bet.libs"), 1);
        assert_eq!(rec.counter_value("bet.promotions"), 1);
        let snap = rec.snapshot();
        assert_eq!(snap.spans.iter().filter(|s| s.name == "bet.build").count(), 1);
        assert_eq!(snap.events.iter().filter(|e| e.name == "bet.promote").count(), 1);
        // and the observed path returns the identical tree as the plain one
        let plain = build(&prog, &Env::new()).unwrap();
        assert_eq!(plain.len(), bet.len());
        let noop = build_observed(&prog, &Env::new(), BuildConfig::default(), &NoopRecorder).unwrap();
        assert_eq!(noop.len(), bet.len());
    }

    #[test]
    fn observed_build_reports_errors() {
        use xflow_obs::CollectingRecorder;
        let prog = parse("func main() { call ghost() }").unwrap();
        let rec = CollectingRecorder::new();
        assert!(build_observed(&prog, &Env::new(), BuildConfig::default(), &rec).is_err());
        let snap = rec.snapshot();
        let span = snap.spans.iter().find(|s| s.name == "bet.build").unwrap();
        assert!(span.attrs.iter().any(|(k, v)| k == "outcome" && *v == xflow_obs::OwnedAttr::Str("error".into())));
    }

    #[test]
    fn loop_variable_final_value_after_loop() {
        let src = r#"
func main() {
  let n = 10
  loop i = 0 .. n { comp { flops: 1 } }
  if (i >= n) { comp { flops: 7 } }
}
"#;
        let bet = build_src(src, &[]);
        // i == n after the loop, so the guard holds deterministically
        let comps = find(&bet, "comp");
        assert_eq!(comps.len(), 2);
        assert!(comps.iter().any(|c| matches!(&c.kind, BetKind::Comp { ops } if ops.flops == 7.0 && c.prob == 1.0)));
    }
}
