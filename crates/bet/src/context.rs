//! Execution contexts and statistical condition evaluation.
//!
//! A context is the set of variable values that affect branch outcomes, loop
//! boundaries, and data accesses (paper Section IV-A), together with the
//! probability of executing under those values. Loop induction variables are
//! held symbolically as ranges; deterministic comparisons over a range
//! evaluate to the *fraction of iterations* satisfying the comparison, which
//! is how e.g. `if (i >= 50)` inside `loop i = 0 .. 100` yields 0.5 without
//! iterating.

use xflow_skeleton::expr::{Env, Expr, Value};
use xflow_skeleton::{CmpOp, Cond};

/// One execution context: variable values plus the probability of reaching
/// the current program point with them (relative to the enclosing block's
/// entry).
#[derive(Debug, Clone)]
pub struct Ctx {
    pub env: Env,
    pub prob: f64,
}

impl Ctx {
    /// Fresh full-probability context over an environment.
    pub fn new(env: Env) -> Self {
        Self { env, prob: 1.0 }
    }

    /// Snapshot of scalar values, sorted by name, for node reporting.
    pub fn snapshot(&self) -> Vec<(String, f64)> {
        let mut v: Vec<(String, f64)> = self.env.iter().map(|(k, val)| (k.clone(), val.expected())).collect();
        v.sort_by(|a, b| a.0.cmp(&b.0));
        v
    }

    /// Two contexts are mergeable when their environments agree.
    pub fn same_env(&self, other: &Ctx) -> bool {
        if self.env.len() != other.env.len() {
            return false;
        }
        self.env.iter().all(|(k, v)| other.env.get(k) == Some(v))
    }
}

/// Merge contexts with identical environments (summing probabilities) and
/// bound the context population. When over `cap`, the lowest-probability
/// contexts are folded into the most probable one — a controlled loss of
/// context detail that keeps the BET size independent of branch counts.
pub fn merge_contexts(mut ctxs: Vec<Ctx>, cap: usize, warnings: &mut Vec<String>) -> Vec<Ctx> {
    let mut merged: Vec<Ctx> = Vec::with_capacity(ctxs.len().min(cap));
    for c in ctxs.drain(..) {
        if c.prob <= 1e-12 {
            continue;
        }
        match merged.iter_mut().find(|m| m.same_env(&c)) {
            Some(m) => m.prob += c.prob,
            None => merged.push(c),
        }
    }
    if merged.len() > cap {
        merged.sort_by(|a, b| b.prob.partial_cmp(&a.prob).unwrap_or(std::cmp::Ordering::Equal));
        let overflow: f64 = merged[cap..].iter().map(|c| c.prob).sum();
        warnings.push(format!(
            "context population exceeded {cap}; folded {} low-probability contexts ({overflow:.4} mass) into the dominant one",
            merged.len() - cap
        ));
        merged.truncate(cap);
        merged[0].prob += overflow;
    }
    merged
}

/// Affine summary of an expression with respect to one range variable:
/// `value(i) = at_lo + slope·(i − lo)` when linear in `i`.
enum RangeEval {
    /// No range variables involved; a plain scalar.
    Scalar(f64),
    /// Linear in exactly one range variable.
    Affine { lo_val: f64, hi_val: f64, trips: f64 },
    /// Not analyzable.
    Unknown,
}

/// Evaluate an expression, tracking linearity in range-valued variables.
fn range_eval(e: &Expr, env: &Env) -> RangeEval {
    match e {
        Expr::Num(n) => RangeEval::Scalar(*n),
        Expr::Var(v) => match env.get(v) {
            Some(Value::Scalar(s)) => RangeEval::Scalar(*s),
            Some(Value::Range { lo, hi, step }) => {
                let trips = Value::Range { lo: *lo, hi: *hi, step: *step }.trip_count();
                if trips <= 0.0 {
                    RangeEval::Scalar(*lo)
                } else {
                    // value at first and last iteration
                    RangeEval::Affine { lo_val: *lo, hi_val: lo + step * (trips - 1.0), trips }
                }
            }
            None => RangeEval::Unknown,
        },
        Expr::Neg(inner) => match range_eval(inner, env) {
            RangeEval::Scalar(s) => RangeEval::Scalar(-s),
            RangeEval::Affine { lo_val, hi_val, trips } => {
                RangeEval::Affine { lo_val: -lo_val, hi_val: -hi_val, trips }
            }
            RangeEval::Unknown => RangeEval::Unknown,
        },
        Expr::Binary(l, op, r) => {
            use xflow_skeleton::BinOp::*;
            let lv = range_eval(l, env);
            let rv = range_eval(r, env);
            match (lv, rv, op) {
                (RangeEval::Scalar(a), RangeEval::Scalar(b), _) => match op {
                    Add => RangeEval::Scalar(a + b),
                    Sub => RangeEval::Scalar(a - b),
                    Mul => RangeEval::Scalar(a * b),
                    Div => {
                        if b == 0.0 {
                            RangeEval::Unknown
                        } else {
                            RangeEval::Scalar(a / b)
                        }
                    }
                    Mod => {
                        if b == 0.0 {
                            RangeEval::Unknown
                        } else {
                            RangeEval::Scalar(a % b)
                        }
                    }
                },
                // affine ∘ scalar stays affine for +, -, ·, ÷
                (RangeEval::Affine { lo_val, hi_val, trips }, RangeEval::Scalar(s), Add) => {
                    RangeEval::Affine { lo_val: lo_val + s, hi_val: hi_val + s, trips }
                }
                (RangeEval::Affine { lo_val, hi_val, trips }, RangeEval::Scalar(s), Sub) => {
                    RangeEval::Affine { lo_val: lo_val - s, hi_val: hi_val - s, trips }
                }
                (RangeEval::Affine { lo_val, hi_val, trips }, RangeEval::Scalar(s), Mul) => {
                    RangeEval::Affine { lo_val: lo_val * s, hi_val: hi_val * s, trips }
                }
                (RangeEval::Affine { lo_val, hi_val, trips }, RangeEval::Scalar(s), Div) if s != 0.0 => {
                    RangeEval::Affine { lo_val: lo_val / s, hi_val: hi_val / s, trips }
                }
                (RangeEval::Scalar(s), RangeEval::Affine { lo_val, hi_val, trips }, Add) => {
                    RangeEval::Affine { lo_val: s + lo_val, hi_val: s + hi_val, trips }
                }
                (RangeEval::Scalar(s), RangeEval::Affine { lo_val, hi_val, trips }, Sub) => {
                    RangeEval::Affine { lo_val: s - lo_val, hi_val: s - hi_val, trips }
                }
                (RangeEval::Scalar(s), RangeEval::Affine { lo_val, hi_val, trips }, Mul) => {
                    RangeEval::Affine { lo_val: s * lo_val, hi_val: s * hi_val, trips }
                }
                _ => RangeEval::Unknown,
            }
        }
        Expr::Call(..) => match e.eval(env) {
            Ok(v) => RangeEval::Scalar(v),
            Err(_) => RangeEval::Unknown,
        },
    }
}

/// Probability that `lhs op rhs` holds in the context, handling three cases:
/// both sides scalar (0 or 1), one side affine in a loop range (fraction of
/// iterations), otherwise unknown (`None`).
pub fn cmp_prob(lhs: &Expr, op: CmpOp, rhs: &Expr, env: &Env) -> Option<f64> {
    let l = range_eval(lhs, env);
    let r = range_eval(rhs, env);
    match (l, r) {
        (RangeEval::Scalar(a), RangeEval::Scalar(b)) => Some(if op.apply(a, b) { 1.0 } else { 0.0 }),
        (RangeEval::Affine { lo_val, hi_val, trips }, RangeEval::Scalar(s)) => {
            Some(affine_fraction(lo_val, hi_val, trips, op, s))
        }
        (RangeEval::Scalar(s), RangeEval::Affine { lo_val, hi_val, trips }) => {
            // mirror the comparison: s op x  ⇔  x op' s
            let mirrored = match op {
                CmpOp::Lt => CmpOp::Gt,
                CmpOp::Le => CmpOp::Ge,
                CmpOp::Gt => CmpOp::Lt,
                CmpOp::Ge => CmpOp::Le,
                CmpOp::Eq => CmpOp::Eq,
                CmpOp::Ne => CmpOp::Ne,
            };
            Some(affine_fraction(lo_val, hi_val, trips, mirrored, s))
        }
        _ => None,
    }
}

/// Fraction of a linear sweep `lo_val → hi_val` over `trips` uniformly
/// spaced points satisfying `x op threshold`.
fn affine_fraction(lo_val: f64, hi_val: f64, trips: f64, op: CmpOp, threshold: f64) -> f64 {
    if trips <= 1.0 {
        return if op.apply(lo_val, threshold) { 1.0 } else { 0.0 };
    }
    match op {
        CmpOp::Eq => {
            let (a, b) = (lo_val.min(hi_val), lo_val.max(hi_val));
            if (a..=b).contains(&threshold) {
                1.0 / trips
            } else {
                0.0
            }
        }
        CmpOp::Ne => 1.0 - affine_fraction(lo_val, hi_val, trips, CmpOp::Eq, threshold),
        _ => {
            // count endpoints satisfying, interpolate linearly between
            let lo_ok = op.apply(lo_val, threshold);
            let hi_ok = op.apply(hi_val, threshold);
            match (lo_ok, hi_ok) {
                (true, true) => 1.0,
                (false, false) => 0.0,
                _ => {
                    // crossing point as a fraction of the sweep
                    let span = hi_val - lo_val;
                    if span == 0.0 {
                        return if lo_ok { 1.0 } else { 0.0 };
                    }
                    let t = ((threshold - lo_val) / span).clamp(0.0, 1.0);
                    if lo_ok {
                        t
                    } else {
                        1.0 - t
                    }
                }
            }
        }
    }
}

/// Probability that a branch condition holds in a context. `None` marks a
/// genuinely unknown outcome (the caller falls back to 0.5 with a warning).
pub fn cond_prob(cond: &Cond, env: &Env) -> Option<f64> {
    match cond {
        Cond::Prob(p) => p.eval(env).ok().map(|v| v.clamp(0.0, 1.0)),
        Cond::Cmp { lhs, op, rhs } => cmp_prob(lhs, *op, rhs, env),
    }
}

/// Expected iterations of a loop whose per-iteration exit probability is
/// `p`, truncated at `n` iterations: `E = (1 − (1−p)^n) / p`, which is `n`
/// as `p → 0` and `1/p` for large `n` (paper Section IV-B break modeling).
pub fn expected_trips_with_break(n: f64, p: f64) -> f64 {
    if n <= 0.0 {
        return 0.0;
    }
    if p <= 0.0 {
        return n;
    }
    if p >= 1.0 {
        return 1.0;
    }
    let e = (1.0 - (1.0 - p).powf(n)) / p;
    e.min(n)
}

#[cfg(test)]
mod tests {
    use super::*;
    use xflow_skeleton::expr::env_from;
    use xflow_skeleton::Expr;

    fn range_env(var: &str, lo: f64, hi: f64) -> Env {
        let mut env = Env::new();
        env.insert(var.to_string(), Value::Range { lo, hi, step: 1.0 });
        env
    }

    #[test]
    fn scalar_comparison_is_deterministic() {
        let env = env_from([("n", 10.0)]);
        let p = cmp_prob(&Expr::var("n"), CmpOp::Lt, &Expr::num(100.0), &env);
        assert_eq!(p, Some(1.0));
        let p = cmp_prob(&Expr::var("n"), CmpOp::Gt, &Expr::num(100.0), &env);
        assert_eq!(p, Some(0.0));
    }

    #[test]
    fn range_comparison_yields_fraction() {
        // i in 0..100, i >= 50 → half the iterations
        let env = range_env("i", 0.0, 100.0);
        let p = cmp_prob(&Expr::var("i"), CmpOp::Ge, &Expr::num(50.0), &env).unwrap();
        assert!((p - 0.5).abs() < 0.02, "{p}");
        let p = cmp_prob(&Expr::var("i"), CmpOp::Lt, &Expr::num(25.0), &env).unwrap();
        assert!((p - 0.25).abs() < 0.02, "{p}");
    }

    #[test]
    fn affine_transformed_range() {
        // i in 0..10; i*10 + 5 < 50 → i < 4.5 → i in {0..4} ≈ 0.5
        let env = range_env("i", 0.0, 10.0);
        let lhs = Expr::var("i").mul(Expr::num(10.0)).add(Expr::num(5.0));
        let p = cmp_prob(&lhs, CmpOp::Lt, &Expr::num(50.0), &env).unwrap();
        assert!((p - 0.5).abs() < 0.1, "{p}");
    }

    #[test]
    fn equality_on_range_is_one_over_n() {
        let env = range_env("i", 0.0, 100.0);
        let p = cmp_prob(&Expr::var("i"), CmpOp::Eq, &Expr::num(42.0), &env).unwrap();
        assert!((p - 0.01).abs() < 1e-9);
        let p = cmp_prob(&Expr::var("i"), CmpOp::Eq, &Expr::num(500.0), &env).unwrap();
        assert_eq!(p, 0.0);
    }

    #[test]
    fn mirrored_comparison() {
        // 50 <= i over i in 0..100 is the same as i >= 50
        let env = range_env("i", 0.0, 100.0);
        let p = cmp_prob(&Expr::num(50.0), CmpOp::Le, &Expr::var("i"), &env).unwrap();
        assert!((p - 0.5).abs() < 0.02, "{p}");
    }

    #[test]
    fn unknown_variables_are_none() {
        let env = Env::new();
        assert_eq!(cmp_prob(&Expr::var("x"), CmpOp::Lt, &Expr::num(1.0), &env), None);
    }

    #[test]
    fn cond_prob_probabilistic() {
        let env = Env::new();
        assert_eq!(cond_prob(&Cond::Prob(Expr::num(0.3)), &env), Some(0.3));
        assert_eq!(cond_prob(&Cond::Prob(Expr::num(1.5)), &env), Some(1.0)); // clamped
        assert_eq!(cond_prob(&Cond::Prob(Expr::var("missing")), &env), None);
    }

    #[test]
    fn expected_trips_limits() {
        assert_eq!(expected_trips_with_break(100.0, 0.0), 100.0);
        assert_eq!(expected_trips_with_break(0.0, 0.5), 0.0);
        assert_eq!(expected_trips_with_break(100.0, 1.0), 1.0);
        // small p·n ⇒ ≈ n
        let e = expected_trips_with_break(10.0, 0.001);
        assert!((e - 10.0).abs() < 0.1, "{e}");
        // large n ⇒ ≈ 1/p
        let e = expected_trips_with_break(1e6, 0.01);
        assert!((e - 100.0).abs() < 1.0, "{e}");
        // always ≤ n
        assert!(expected_trips_with_break(5.0, 0.01) <= 5.0);
    }

    #[test]
    fn merge_contexts_sums_identical_envs() {
        let env = env_from([("x", 1.0)]);
        let mut warnings = Vec::new();
        let merged = merge_contexts(
            vec![Ctx { env: env.clone(), prob: 0.25 }, Ctx { env: env.clone(), prob: 0.5 }],
            8,
            &mut warnings,
        );
        assert_eq!(merged.len(), 1);
        assert!((merged[0].prob - 0.75).abs() < 1e-12);
        assert!(warnings.is_empty());
    }

    #[test]
    fn merge_contexts_caps_population() {
        let mut ctxs = Vec::new();
        for k in 0..20 {
            ctxs.push(Ctx { env: env_from([("x", k as f64)]), prob: 0.05 });
        }
        let mut warnings = Vec::new();
        let merged = merge_contexts(ctxs, 4, &mut warnings);
        assert_eq!(merged.len(), 4);
        let total: f64 = merged.iter().map(|c| c.prob).sum();
        assert!((total - 1.0).abs() < 1e-9, "mass preserved, got {total}");
        assert_eq!(warnings.len(), 1);
    }

    #[test]
    fn zero_probability_contexts_dropped() {
        let mut warnings = Vec::new();
        let merged = merge_contexts(vec![Ctx { env: Env::new(), prob: 0.0 }], 8, &mut warnings);
        assert!(merged.is_empty());
    }

    #[test]
    fn snapshot_sorted() {
        let ctx = Ctx::new(env_from([("b", 2.0), ("a", 1.0)]));
        let snap = ctx.snapshot();
        assert_eq!(snap, vec![("a".to_string(), 1.0), ("b".to_string(), 2.0)]);
    }
}
