//! BET node arena and derived quantities (ENR, size statistics).

use serde::{Deserialize, Serialize};
use std::sync::OnceLock;
use xflow_skeleton::StmtId;

/// Identifier of a node inside one [`Bet`] arena.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct BetNodeId(pub u32);

/// Concrete per-invocation operation counts of a BET node (the evaluated
/// counterpart of a skeleton `comp` block in one context).
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct ConcreteOps {
    pub flops: f64,
    pub iops: f64,
    pub loads: f64,
    pub stores: f64,
    pub divs: f64,
    pub elem_bytes: f64,
}

impl ConcreteOps {
    /// Sum of all operation counts (used for merge keys and sanity checks).
    pub fn total(&self) -> f64 {
        self.flops + self.iops + self.loads + self.stores
    }
}

/// What a BET node models.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum BetKind {
    /// The root: the mount of `main`.
    Root,
    /// A mounted function invocation (`call` site).
    Call {
        func: String,
    },
    /// A loop with an expected trip count (stored in [`BetNode::iters`]).
    Loop,
    /// One branch arm (index within the branch, `None` = else).
    Arm {
        index: Option<usize>,
    },
    /// A computation block with evaluated operation counts.
    Comp {
        ops: ConcreteOps,
    },
    /// A library call with evaluated invocation count and per-call work.
    Lib {
        func: String,
        calls: f64,
        work: f64,
    },
    /// Early exit points, kept for hot-path context.
    Return,
    Break,
    Continue,
}

impl BetKind {
    /// Short display tag.
    pub fn tag(&self) -> &'static str {
        match self {
            BetKind::Root => "root",
            BetKind::Call { .. } => "call",
            BetKind::Loop => "loop",
            BetKind::Arm { .. } => "arm",
            BetKind::Comp { .. } => "comp",
            BetKind::Lib { .. } => "lib",
            BetKind::Return => "return",
            BetKind::Break => "break",
            BetKind::Continue => "continue",
        }
    }
}

/// A node of the Bayesian Execution Tree.
///
/// `prob` is the conditional probability that the node executes once, given
/// one execution of its parent block (one *iteration*, when the parent is a
/// loop). `iters` is the expected trip count for loop nodes and 1 otherwise.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BetNode {
    pub id: BetNodeId,
    pub parent: Option<BetNodeId>,
    /// The skeleton statement this node instantiates (None for the root).
    pub stmt: Option<StmtId>,
    pub kind: BetKind,
    /// Conditional probability of execution given the parent.
    pub prob: f64,
    /// Expected iterations (loops only; 1 otherwise).
    pub iters: f64,
    /// Whether this is a parallel (`parloop`) node whose iterations may
    /// execute concurrently.
    pub parallel: bool,
    pub children: Vec<BetNodeId>,
    /// Snapshot of scalar context values at instantiation (sorted by name).
    pub context: Vec<(String, f64)>,
}

/// The Bayesian Execution Tree: an arena of nodes rooted at `main`.
#[derive(Debug, Clone, Default)]
pub struct Bet {
    nodes: Vec<BetNode>,
    /// Modeling notes accumulated during construction (unknown branch
    /// probabilities, context merges, depth limits hit).
    pub warnings: Vec<String>,
    /// Lazily computed ENR per node; reset by any structural mutation so
    /// no caller can observe a stale derivation.
    enr_cache: OnceLock<Vec<f64>>,
    /// Lazily computed available parallelism per node.
    par_cache: OnceLock<Vec<f64>>,
}

impl Bet {
    /// Create an empty tree (builder use).
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a node, wiring it under its parent. Returns its id.
    pub fn push(&mut self, mut node: BetNode) -> BetNodeId {
        self.invalidate_caches();
        let id = BetNodeId(self.nodes.len() as u32);
        node.id = id;
        if let Some(p) = node.parent {
            self.nodes[p.0 as usize].children.push(id);
        }
        self.nodes.push(node);
        id
    }

    /// The root node id (always 0 for a built tree).
    pub fn root(&self) -> BetNodeId {
        BetNodeId(0)
    }

    /// Borrow a node.
    pub fn node(&self, id: BetNodeId) -> &BetNode {
        &self.nodes[id.0 as usize]
    }

    /// Mutably borrow a node. Conservatively drops the derived-quantity
    /// caches: the caller may change probabilities or trip counts.
    pub fn node_mut(&mut self, id: BetNodeId) -> &mut BetNode {
        self.invalidate_caches();
        &mut self.nodes[id.0 as usize]
    }

    fn invalidate_caches(&mut self) {
        self.enr_cache = OnceLock::new();
        self.par_cache = OnceLock::new();
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the tree is empty (never true for built trees).
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Iterate over all nodes in creation (pre-order) order.
    pub fn iter(&self) -> impl Iterator<Item = &BetNode> {
        self.nodes.iter()
    }

    /// Expected number of repetitions of every node:
    /// `ENR(n) = prob(n) × mult(parent) × ENR(parent)` with `mult` being the
    /// expected trip count for loop parents and 1 otherwise; `ENR(root) = 1`
    /// (paper Section V-A).
    ///
    /// Computed once per tree and cached; repeated projections reuse it.
    pub fn enr(&self) -> &[f64] {
        self.enr_cache.get_or_init(|| {
            let mut enr = vec![0.0; self.nodes.len()];
            for (i, n) in self.nodes.iter().enumerate() {
                match n.parent {
                    None => enr[i] = 1.0,
                    Some(p) => {
                        let parent = &self.nodes[p.0 as usize];
                        let mult = if matches!(parent.kind, BetKind::Loop) { parent.iters } else { 1.0 };
                        enr[i] = n.prob * mult * enr[p.0 as usize];
                    }
                }
            }
            enr
        })
    }

    /// Available parallelism per node: the product of expected trip counts
    /// of enclosing *parallel* loops (1.0 when the node is purely
    /// sequential). The projection clamps this with the machine's core
    /// count to obtain the effective thread count of each block.
    ///
    /// Computed once per tree and cached; repeated projections reuse it.
    pub fn available_parallelism(&self) -> &[f64] {
        self.par_cache.get_or_init(|| {
            let mut par = vec![1.0; self.nodes.len()];
            for (i, n) in self.nodes.iter().enumerate() {
                let inherited = match n.parent {
                    None => 1.0,
                    Some(p) => {
                        let parent = &self.nodes[p.0 as usize];
                        let own = par[p.0 as usize];
                        if matches!(parent.kind, BetKind::Loop) && parent.parallel {
                            own * parent.iters.max(1.0)
                        } else {
                            own
                        }
                    }
                };
                par[i] = inherited;
            }
            par
        })
    }

    /// Path from a node to the root (inclusive), leaf first.
    pub fn ancestry(&self, id: BetNodeId) -> Vec<BetNodeId> {
        let mut path = vec![id];
        let mut cur = id;
        while let Some(p) = self.nodes[cur.0 as usize].parent {
            path.push(p);
            cur = p;
        }
        path
    }

    /// Size ratio of the BET relative to the skeleton's statement count —
    /// the paper reports an average of 88% and a maximum below 2×.
    pub fn size_ratio(&self, skeleton_stmts: usize) -> f64 {
        if skeleton_stmts == 0 {
            0.0
        } else {
            self.nodes.len() as f64 / skeleton_stmts as f64
        }
    }
}

// Hand-written so the derived-quantity caches stay out of the wire format
// (and are rebuilt lazily on first use after deserialization).
impl Serialize for Bet {
    fn serialize(&self) -> serde::Content {
        serde::Content::Map(vec![
            (serde::Content::Str("nodes".to_string()), self.nodes.serialize()),
            (serde::Content::Str("warnings".to_string()), self.warnings.serialize()),
        ])
    }
}

impl Deserialize for Bet {
    fn deserialize(c: &serde::Content) -> Result<Self, serde::Error> {
        match c {
            serde::Content::Map(entries) => Ok(Bet {
                nodes: serde::field(entries, "nodes")?,
                warnings: serde::field(entries, "warnings")?,
                enr_cache: OnceLock::new(),
                par_cache: OnceLock::new(),
            }),
            _ => Err(serde::Error("expected map for struct Bet".to_string())),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn leaf(parent: Option<BetNodeId>, kind: BetKind, prob: f64, iters: f64) -> BetNode {
        BetNode {
            id: BetNodeId(0),
            parent,
            stmt: None,
            kind,
            prob,
            iters,
            parallel: false,
            children: vec![],
            context: vec![],
        }
    }

    #[test]
    fn push_wires_children() {
        let mut bet = Bet::new();
        let root = bet.push(leaf(None, BetKind::Root, 1.0, 1.0));
        let c1 = bet.push(leaf(Some(root), BetKind::Comp { ops: ConcreteOps::default() }, 1.0, 1.0));
        assert_eq!(bet.node(root).children, vec![c1]);
        assert_eq!(bet.node(c1).parent, Some(root));
        assert_eq!(bet.len(), 2);
    }

    #[test]
    fn enr_multiplies_through_loops_and_probs() {
        let mut bet = Bet::new();
        let root = bet.push(leaf(None, BetKind::Root, 1.0, 1.0));
        let l = bet.push(leaf(Some(root), BetKind::Loop, 1.0, 100.0));
        let arm = bet.push(leaf(Some(l), BetKind::Arm { index: Some(0) }, 0.25, 1.0));
        let comp = bet.push(leaf(Some(arm), BetKind::Comp { ops: ConcreteOps::default() }, 1.0, 1.0));
        let enr = bet.enr();
        assert_eq!(enr[root.0 as usize], 1.0);
        assert_eq!(enr[l.0 as usize], 1.0);
        // loop body arm runs 100 × 0.25 = 25 times
        assert_eq!(enr[arm.0 as usize], 25.0);
        assert_eq!(enr[comp.0 as usize], 25.0);
    }

    #[test]
    fn nested_loops_compound() {
        let mut bet = Bet::new();
        let root = bet.push(leaf(None, BetKind::Root, 1.0, 1.0));
        let outer = bet.push(leaf(Some(root), BetKind::Loop, 1.0, 10.0));
        let inner = bet.push(leaf(Some(outer), BetKind::Loop, 1.0, 20.0));
        let body = bet.push(leaf(Some(inner), BetKind::Comp { ops: ConcreteOps::default() }, 1.0, 1.0));
        let enr = bet.enr();
        assert_eq!(enr[inner.0 as usize], 10.0);
        assert_eq!(enr[body.0 as usize], 200.0);
    }

    #[test]
    fn ancestry_runs_to_root() {
        let mut bet = Bet::new();
        let root = bet.push(leaf(None, BetKind::Root, 1.0, 1.0));
        let a = bet.push(leaf(Some(root), BetKind::Loop, 1.0, 5.0));
        let b = bet.push(leaf(Some(a), BetKind::Comp { ops: ConcreteOps::default() }, 1.0, 1.0));
        assert_eq!(bet.ancestry(b), vec![b, a, root]);
        assert_eq!(bet.ancestry(root), vec![root]);
    }

    #[test]
    fn available_parallelism_multiplies_through_parallel_loops() {
        let mut bet = Bet::new();
        let root = bet.push(leaf(None, BetKind::Root, 1.0, 1.0));
        let mut par_loop = leaf(Some(root), BetKind::Loop, 1.0, 64.0);
        par_loop.parallel = true;
        let pl = bet.push(par_loop);
        let seq_loop = bet.push(leaf(Some(pl), BetKind::Loop, 1.0, 8.0));
        let comp = bet.push(leaf(Some(seq_loop), BetKind::Comp { ops: ConcreteOps::default() }, 1.0, 1.0));
        let par = bet.available_parallelism();
        assert_eq!(par[root.0 as usize], 1.0);
        assert_eq!(par[pl.0 as usize], 1.0); // the loop node itself is entered once
        assert_eq!(par[seq_loop.0 as usize], 64.0);
        assert_eq!(par[comp.0 as usize], 64.0); // sequential loop adds nothing
    }

    #[test]
    fn size_ratio() {
        let mut bet = Bet::new();
        bet.push(leaf(None, BetKind::Root, 1.0, 1.0));
        bet.push(leaf(Some(BetNodeId(0)), BetKind::Loop, 1.0, 5.0));
        assert_eq!(bet.size_ratio(4), 0.5);
        assert_eq!(bet.size_ratio(0), 0.0);
    }
}
