//! # xflow-bet — the Bayesian Execution Tree
//!
//! The paper's central data structure (Section IV): a *statically built*
//! model of a program's dynamic execution flow. Construction conceptually
//! traverses the Block Skeleton Tree from `main`, mounting callee trees at
//! call sites with per-invocation contexts, collapsing loops into single
//! nodes carrying expected trip counts, and splitting probability-weighted
//! contexts at branches. `return`/`break`/`continue` move probability mass
//! out of the fall-through path and shorten expected trip counts via a
//! truncated-geometric expectation.
//!
//! Two properties the paper relies on hold by construction and are enforced
//! by this crate's tests:
//!
//! * **input-size independence** — the tree's node count does not grow with
//!   loop trip counts, only with code structure and context forks;
//! * **probability conservation** — the mass of all paths leaving a branch
//!   equals the mass entering it.
//!
//! ```
//! use xflow_skeleton::{parse, env_from};
//!
//! let prog = parse(r#"
//! func main() {
//!     let n = N
//!     loop i = 0 .. n {
//!         comp { flops: 6, loads: 3, stores: 1 }
//!         if prob(0.125) { lib exp(1) }
//!     }
//! }
//! "#).unwrap();
//! let bet = xflow_bet::build(&prog, &env_from([("N", 1_000_000.0)])).unwrap();
//! let enr = bet.enr();
//! // the comp block repeats a million times, yet the tree has 5 nodes
//! assert_eq!(bet.len(), 5);
//! assert!(enr.iter().cloned().fold(0.0, f64::max) >= 1_000_000.0);
//! ```

pub mod build;
pub mod context;
pub mod node;

pub use build::{build, build_observed, build_with_config, BuildConfig, BuildError};
pub use context::{cond_prob, expected_trips_with_break, merge_contexts, Ctx};
pub use node::{Bet, BetKind, BetNode, BetNodeId, ConcreteOps};

/// Wire-format version of this crate's serializable artifacts ([`Bet`] and
/// its nodes).
///
/// Bump whenever a serialized layout changes shape; content-addressed caches
/// fold this into their keys so stale artifacts are never deserialized.
pub fn schema_version() -> u32 {
    1
}
