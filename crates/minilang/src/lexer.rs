//! Tokenizer for minilang source. `//` starts a line comment.

use xflow_skeleton::error::{ParseError, Span};

/// Minilang tokens.
#[derive(Debug, Clone, PartialEq)]
pub enum Tok {
    Ident(String),
    Num(f64),
    Str(String),
    LParen,
    RParen,
    LBrace,
    RBrace,
    LBracket,
    RBracket,
    Comma,
    Semi,
    Colon,
    At,
    DotDot,
    Plus,
    Minus,
    Star,
    Slash,
    Percent,
    Assign,
    PlusAssign,
    MinusAssign,
    StarAssign,
    SlashAssign,
    Lt,
    Le,
    Gt,
    Ge,
    EqEq,
    Ne,
    AndAnd,
    OrOr,
    Bang,
    Eof,
}

impl Tok {
    /// Printable description for errors.
    pub fn describe(&self) -> String {
        match self {
            Tok::Ident(s) => format!("identifier `{s}`"),
            Tok::Num(n) => format!("number `{n}`"),
            Tok::Str(s) => format!("string \"{s}\""),
            Tok::Eof => "end of input".into(),
            other => format!("`{}`", other.symbol()),
        }
    }

    fn symbol(&self) -> &'static str {
        match self {
            Tok::LParen => "(",
            Tok::RParen => ")",
            Tok::LBrace => "{",
            Tok::RBrace => "}",
            Tok::LBracket => "[",
            Tok::RBracket => "]",
            Tok::Comma => ",",
            Tok::Semi => ";",
            Tok::Colon => ":",
            Tok::At => "@",
            Tok::DotDot => "..",
            Tok::Plus => "+",
            Tok::Minus => "-",
            Tok::Star => "*",
            Tok::Slash => "/",
            Tok::Percent => "%",
            Tok::Assign => "=",
            Tok::PlusAssign => "+=",
            Tok::MinusAssign => "-=",
            Tok::StarAssign => "*=",
            Tok::SlashAssign => "/=",
            Tok::Lt => "<",
            Tok::Le => "<=",
            Tok::Gt => ">",
            Tok::Ge => ">=",
            Tok::EqEq => "==",
            Tok::Ne => "!=",
            Tok::AndAnd => "&&",
            Tok::OrOr => "||",
            Tok::Bang => "!",
            _ => "?",
        }
    }
}

/// Token with position.
#[derive(Debug, Clone, PartialEq)]
pub struct SpannedTok {
    pub tok: Tok,
    pub span: Span,
}

/// Tokenize minilang source text.
pub fn lex(src: &str) -> Result<Vec<SpannedTok>, ParseError> {
    let mut out = Vec::new();
    let bytes = src.as_bytes();
    let mut i = 0usize;
    let mut line = 1u32;
    let mut col = 1u32;

    while i < bytes.len() {
        let c = bytes[i] as char;
        let sp = Span { line, col };
        match c {
            '\n' => {
                i += 1;
                line += 1;
                col = 1;
            }
            ' ' | '\t' | '\r' => {
                i += 1;
                col += 1;
            }
            '/' if i + 1 < bytes.len() && bytes[i + 1] == b'/' => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            '"' => {
                let start = i + 1;
                let mut j = start;
                while j < bytes.len() && bytes[j] != b'"' && bytes[j] != b'\n' {
                    j += 1;
                }
                if j >= bytes.len() || bytes[j] != b'"' {
                    return Err(ParseError::new(sp, "unterminated string literal"));
                }
                out.push(SpannedTok { tok: Tok::Str(src[start..j].to_string()), span: sp });
                col += (j + 1 - i) as u32;
                i = j + 1;
            }
            '0'..='9' => {
                let start = i;
                while i < bytes.len() && (bytes[i].is_ascii_digit() || bytes[i] == b'_') {
                    i += 1;
                }
                if i + 1 < bytes.len() && bytes[i] == b'.' && bytes[i + 1].is_ascii_digit() {
                    i += 1;
                    while i < bytes.len() && bytes[i].is_ascii_digit() {
                        i += 1;
                    }
                }
                if i < bytes.len() && (bytes[i] == b'e' || bytes[i] == b'E') {
                    let mut j = i + 1;
                    if j < bytes.len() && (bytes[j] == b'+' || bytes[j] == b'-') {
                        j += 1;
                    }
                    if j < bytes.len() && bytes[j].is_ascii_digit() {
                        i = j;
                        while i < bytes.len() && bytes[i].is_ascii_digit() {
                            i += 1;
                        }
                    }
                }
                let text: String = src[start..i].chars().filter(|&c| c != '_').collect();
                let n: f64 = text.parse().map_err(|_| ParseError::new(sp, format!("invalid number `{text}`")))?;
                col += (i - start) as u32;
                out.push(SpannedTok { tok: Tok::Num(n), span: sp });
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                while i < bytes.len() && ((bytes[i] as char).is_ascii_alphanumeric() || bytes[i] == b'_') {
                    i += 1;
                }
                col += (i - start) as u32;
                out.push(SpannedTok { tok: Tok::Ident(src[start..i].to_string()), span: sp });
            }
            _ => {
                // two-byte lookahead on raw bytes: indexing the &str here
                // would panic mid-way through a multi-byte UTF-8 character
                let two: &[u8] = if i + 1 < bytes.len() { &bytes[i..i + 2] } else { b"" };
                let (tok, len) = match two {
                    b".." => (Tok::DotDot, 2),
                    b"<=" => (Tok::Le, 2),
                    b">=" => (Tok::Ge, 2),
                    b"==" => (Tok::EqEq, 2),
                    b"!=" => (Tok::Ne, 2),
                    b"&&" => (Tok::AndAnd, 2),
                    b"||" => (Tok::OrOr, 2),
                    b"+=" => (Tok::PlusAssign, 2),
                    b"-=" => (Tok::MinusAssign, 2),
                    b"*=" => (Tok::StarAssign, 2),
                    b"/=" => (Tok::SlashAssign, 2),
                    _ => {
                        let t = match c {
                            '(' => Tok::LParen,
                            ')' => Tok::RParen,
                            '{' => Tok::LBrace,
                            '}' => Tok::RBrace,
                            '[' => Tok::LBracket,
                            ']' => Tok::RBracket,
                            ',' => Tok::Comma,
                            ';' => Tok::Semi,
                            ':' => Tok::Colon,
                            '@' => Tok::At,
                            '+' => Tok::Plus,
                            '-' => Tok::Minus,
                            '*' => Tok::Star,
                            '/' => Tok::Slash,
                            '%' => Tok::Percent,
                            '=' => Tok::Assign,
                            '<' => Tok::Lt,
                            '>' => Tok::Gt,
                            '!' => Tok::Bang,
                            other => return Err(ParseError::new(sp, format!("unexpected character `{other}`"))),
                        };
                        (t, 1)
                    }
                };
                i += len;
                col += len as u32;
                out.push(SpannedTok { tok, span: sp });
            }
        }
    }
    out.push(SpannedTok { tok: Tok::Eof, span: Span { line, col } });
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(src: &str) -> Vec<Tok> {
        lex(src).unwrap().into_iter().map(|t| t.tok).collect()
    }

    #[test]
    fn compound_assignment_operators() {
        assert_eq!(
            toks("+= -= *= /="),
            vec![Tok::PlusAssign, Tok::MinusAssign, Tok::StarAssign, Tok::SlashAssign, Tok::Eof]
        );
    }

    #[test]
    fn logical_operators() {
        assert_eq!(toks("&& || !"), vec![Tok::AndAnd, Tok::OrOr, Tok::Bang, Tok::Eof]);
    }

    #[test]
    fn strings() {
        assert_eq!(toks(r#""hello" x"#), vec![Tok::Str("hello".into()), Tok::Ident("x".into()), Tok::Eof]);
        assert!(lex("\"unterminated").is_err());
    }

    #[test]
    fn line_comments() {
        assert_eq!(toks("a // b c d\n e"), vec![Tok::Ident("a".into()), Tok::Ident("e".into()), Tok::Eof]);
    }

    #[test]
    fn slash_still_divides() {
        assert_eq!(toks("a / b"), vec![Tok::Ident("a".into()), Tok::Slash, Tok::Ident("b".into()), Tok::Eof]);
    }

    #[test]
    fn brackets_and_range() {
        assert_eq!(
            toks("a[0..n]"),
            vec![
                Tok::Ident("a".into()),
                Tok::LBracket,
                Tok::Num(0.0),
                Tok::DotDot,
                Tok::Ident("n".into()),
                Tok::RBracket,
                Tok::Eof
            ]
        );
    }
}
