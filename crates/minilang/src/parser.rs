//! Recursive-descent parser for minilang.
//!
//! ```text
//! program  := fndef*
//! fndef    := "fn" IDENT "(" [IDENT ("," IDENT)*] ")" block
//! block    := "{" stmt* "}"
//! stmt     := ["@" IDENT ":"] core
//! core     := "let" IDENT "=" ("zeros" "(" expr ")" | expr) ";"
//!           | IDENT "=" expr ";"
//!           | IDENT "[" expr "]" ("=" | "+=" | "-=" | "*=" | "/=") expr ";"
//!           | IDENT "(" args ")" ";"
//!           | "for" IDENT "in" expr ".." expr ["step" expr] block
//!           | "while" expr block
//!           | "if" expr block ("else" "if" expr block)* ["else" block]
//!           | "return" [expr] ";" | "break" ";" | "continue" ";"
//!           | "print" "(" expr ")" ";"
//! expr     := or; or := and ("||" and)*; and := cmp ("&&" cmp)*
//! cmp      := sum [cmpop sum]; sum := term (("+"|"-") term)*
//! term     := unary (("*"|"/"|"%") unary)*
//! unary    := "-" unary | "!" unary | primary
//! primary  := NUM | "(" expr ")" | "input" "(" STR "," NUM ")"
//!           | "len" "(" IDENT ")" | IDENT ["(" args ")" | "[" expr "]"]
//! ```

use crate::ast::*;
use crate::lexer::{lex, SpannedTok, Tok};
use xflow_skeleton::error::{ParseError, Span};

/// Parse minilang source text.
pub fn parse(src: &str) -> Result<Program, ParseError> {
    let toks = lex(src)?;
    let mut p = Parser { toks, pos: 0, prog: Program::new() };
    while !p.at_eof() {
        let f = p.fndef()?;
        let span = p.peek_span();
        p.prog.add_function(f).map_err(|m| ParseError::new(span, m))?;
    }
    if p.prog.main().is_none() {
        return Err(ParseError::new(Span::default(), "program has no `main` function"));
    }
    Ok(p.prog)
}

const KEYWORDS: &[&str] = &[
    "fn", "let", "for", "parfor", "in", "step", "while", "if", "else", "return", "break", "continue", "print", "zeros",
    "input", "len",
];

struct Parser {
    toks: Vec<SpannedTok>,
    pos: usize,
    prog: Program,
}

impl Parser {
    fn peek(&self) -> &Tok {
        &self.toks[self.pos].tok
    }

    fn peek_span(&self) -> Span {
        self.toks[self.pos].span
    }

    fn at_eof(&self) -> bool {
        matches!(self.peek(), Tok::Eof)
    }

    fn bump(&mut self) -> Tok {
        let t = self.toks[self.pos].tok.clone();
        if self.pos + 1 < self.toks.len() {
            self.pos += 1;
        }
        t
    }

    fn err(&self, msg: impl Into<String>) -> ParseError {
        ParseError::new(self.peek_span(), msg)
    }

    fn expect(&mut self, want: &Tok) -> Result<(), ParseError> {
        if self.peek() == want {
            self.bump();
            Ok(())
        } else {
            Err(self.err(format!("expected {}, found {}", want.describe(), self.peek().describe())))
        }
    }

    fn ident(&mut self) -> Result<String, ParseError> {
        match self.peek().clone() {
            Tok::Ident(s) => {
                if KEYWORDS.contains(&s.as_str()) {
                    return Err(self.err(format!("`{s}` is a keyword and cannot be used as a name")));
                }
                self.bump();
                Ok(s)
            }
            other => Err(self.err(format!("expected identifier, found {}", other.describe()))),
        }
    }

    fn at_kw(&self, kw: &str) -> bool {
        matches!(self.peek(), Tok::Ident(s) if s == kw)
    }

    fn eat_kw(&mut self, kw: &str) -> bool {
        if self.at_kw(kw) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect_kw(&mut self, kw: &str) -> Result<(), ParseError> {
        if self.eat_kw(kw) {
            Ok(())
        } else {
            Err(self.err(format!("expected `{kw}`, found {}", self.peek().describe())))
        }
    }

    fn fndef(&mut self) -> Result<Function, ParseError> {
        self.expect_kw("fn")?;
        let name = self.ident()?;
        self.expect(&Tok::LParen)?;
        let mut params = Vec::new();
        if !matches!(self.peek(), Tok::RParen) {
            loop {
                params.push(self.ident()?);
                if !matches!(self.peek(), Tok::Comma) {
                    break;
                }
                self.bump();
            }
        }
        self.expect(&Tok::RParen)?;
        let body = self.block()?;
        Ok(Function { name, params, body })
    }

    fn block(&mut self) -> Result<Block, ParseError> {
        self.expect(&Tok::LBrace)?;
        let mut stmts = Vec::new();
        while !matches!(self.peek(), Tok::RBrace) {
            if self.at_eof() {
                return Err(self.err("unterminated block: expected `}`"));
            }
            stmts.push(self.stmt()?);
        }
        self.bump();
        Ok(Block { stmts })
    }

    fn stmt(&mut self) -> Result<Stmt, ParseError> {
        let label = if matches!(self.peek(), Tok::At) {
            self.bump();
            let l = self.ident()?;
            self.expect(&Tok::Colon)?;
            Some(l)
        } else {
            None
        };
        let id = self.prog.fresh_stmt_id();
        let kind = self.stmt_kind()?;
        Ok(Stmt { id, label, kind })
    }

    fn stmt_kind(&mut self) -> Result<StmtKind, ParseError> {
        if self.eat_kw("let") {
            let name = self.ident()?;
            self.expect(&Tok::Assign)?;
            let kind = if self.at_kw("zeros") {
                self.bump();
                self.expect(&Tok::LParen)?;
                let len = self.expr()?;
                self.expect(&Tok::RParen)?;
                StmtKind::LetArray { name, len }
            } else {
                StmtKind::LetScalar { name, init: self.expr()? }
            };
            self.expect(&Tok::Semi)?;
            return Ok(kind);
        }
        let parallel_for = self.at_kw("parfor");
        if parallel_for || self.at_kw("for") {
            self.bump();
            let var = self.ident()?;
            self.expect_kw("in")?;
            let lo = self.expr()?;
            self.expect(&Tok::DotDot)?;
            let hi = self.expr()?;
            let step = if self.eat_kw("step") { self.expr()? } else { Expr::Num(1.0) };
            let body = self.block()?;
            return Ok(StmtKind::For { var, lo, hi, step, parallel: parallel_for, body });
        }
        if self.eat_kw("while") {
            let cond = self.expr()?;
            let body = self.block()?;
            return Ok(StmtKind::While { cond, body });
        }
        if self.eat_kw("if") {
            let mut arms = Vec::new();
            let cond = self.expr()?;
            let body = self.block()?;
            arms.push((cond, body));
            let mut else_body = None;
            while self.eat_kw("else") {
                if self.eat_kw("if") {
                    let c = self.expr()?;
                    let b = self.block()?;
                    arms.push((c, b));
                } else {
                    else_body = Some(self.block()?);
                    break;
                }
            }
            return Ok(StmtKind::If { arms, else_body });
        }
        if self.eat_kw("return") {
            let value = if matches!(self.peek(), Tok::Semi) { None } else { Some(self.expr()?) };
            self.expect(&Tok::Semi)?;
            return Ok(StmtKind::Return { value });
        }
        if self.eat_kw("break") {
            self.expect(&Tok::Semi)?;
            return Ok(StmtKind::Break);
        }
        if self.eat_kw("continue") {
            self.expect(&Tok::Semi)?;
            return Ok(StmtKind::Continue);
        }
        if self.eat_kw("print") {
            self.expect(&Tok::LParen)?;
            let expr = self.expr()?;
            self.expect(&Tok::RParen)?;
            self.expect(&Tok::Semi)?;
            return Ok(StmtKind::Print { expr });
        }

        // ident-led statements: assignment, element update, or call
        let name = self.ident()?;
        match self.peek().clone() {
            Tok::Assign => {
                self.bump();
                let value = self.expr()?;
                self.expect(&Tok::Semi)?;
                Ok(StmtKind::AssignScalar { name, value })
            }
            Tok::LBracket => {
                self.bump();
                let index = self.expr()?;
                self.expect(&Tok::RBracket)?;
                let op = match self.bump() {
                    Tok::Assign => None,
                    Tok::PlusAssign => Some(BinOp::Add),
                    Tok::MinusAssign => Some(BinOp::Sub),
                    Tok::StarAssign => Some(BinOp::Mul),
                    Tok::SlashAssign => Some(BinOp::Div),
                    other => {
                        return Err(
                            self.err(format!("expected assignment operator after index, found {}", other.describe()))
                        )
                    }
                };
                let value = self.expr()?;
                self.expect(&Tok::Semi)?;
                Ok(match op {
                    None => StmtKind::AssignIndex { name, index, value },
                    Some(op) => StmtKind::UpdateIndex { name, index, op, value },
                })
            }
            Tok::LParen => {
                self.bump();
                let mut args = Vec::new();
                if !matches!(self.peek(), Tok::RParen) {
                    loop {
                        args.push(self.expr()?);
                        if !matches!(self.peek(), Tok::Comma) {
                            break;
                        }
                        self.bump();
                    }
                }
                self.expect(&Tok::RParen)?;
                self.expect(&Tok::Semi)?;
                Ok(StmtKind::CallProc { name, args })
            }
            other => Err(self.err(format!("expected `=`, `[`, or `(` after `{name}`, found {}", other.describe()))),
        }
    }

    // --- expressions ------------------------------------------------------

    fn expr(&mut self) -> Result<Expr, ParseError> {
        self.or_expr()
    }

    fn or_expr(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.and_expr()?;
        while matches!(self.peek(), Tok::OrOr) {
            self.bump();
            let rhs = self.and_expr()?;
            lhs = Expr::Or(Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn and_expr(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.cmp_expr()?;
        while matches!(self.peek(), Tok::AndAnd) {
            self.bump();
            let rhs = self.cmp_expr()?;
            lhs = Expr::And(Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn cmp_expr(&mut self) -> Result<Expr, ParseError> {
        let lhs = self.sum()?;
        let op = match self.peek() {
            Tok::Lt => CmpOp::Lt,
            Tok::Le => CmpOp::Le,
            Tok::Gt => CmpOp::Gt,
            Tok::Ge => CmpOp::Ge,
            Tok::EqEq => CmpOp::Eq,
            Tok::Ne => CmpOp::Ne,
            _ => return Ok(lhs),
        };
        self.bump();
        let rhs = self.sum()?;
        Ok(Expr::Cmp(Box::new(lhs), op, Box::new(rhs)))
    }

    fn sum(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.term()?;
        loop {
            let op = match self.peek() {
                Tok::Plus => BinOp::Add,
                Tok::Minus => BinOp::Sub,
                _ => break,
            };
            self.bump();
            let rhs = self.term()?;
            lhs = Expr::Bin(Box::new(lhs), op, Box::new(rhs));
        }
        Ok(lhs)
    }

    fn term(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.unary()?;
        loop {
            let op = match self.peek() {
                Tok::Star => BinOp::Mul,
                Tok::Slash => BinOp::Div,
                Tok::Percent => BinOp::Mod,
                _ => break,
            };
            self.bump();
            let rhs = self.unary()?;
            lhs = Expr::Bin(Box::new(lhs), op, Box::new(rhs));
        }
        Ok(lhs)
    }

    fn unary(&mut self) -> Result<Expr, ParseError> {
        match self.peek() {
            Tok::Minus => {
                self.bump();
                match self.unary()? {
                    Expr::Num(n) => Ok(Expr::Num(-n)),
                    e => Ok(Expr::Neg(Box::new(e))),
                }
            }
            Tok::Bang => {
                self.bump();
                Ok(Expr::Not(Box::new(self.unary()?)))
            }
            _ => self.primary(),
        }
    }

    fn primary(&mut self) -> Result<Expr, ParseError> {
        match self.peek().clone() {
            Tok::Num(n) => {
                self.bump();
                Ok(Expr::Num(n))
            }
            Tok::LParen => {
                self.bump();
                let e = self.expr()?;
                self.expect(&Tok::RParen)?;
                Ok(e)
            }
            Tok::Ident(name) if name == "input" => {
                self.bump();
                self.expect(&Tok::LParen)?;
                let key = match self.bump() {
                    Tok::Str(s) => s,
                    other => return Err(self.err(format!("input() needs a string name, found {}", other.describe()))),
                };
                self.expect(&Tok::Comma)?;
                let default = match self.bump() {
                    Tok::Num(n) => n,
                    other => {
                        return Err(self.err(format!("input() needs a numeric default, found {}", other.describe())))
                    }
                };
                self.expect(&Tok::RParen)?;
                Ok(Expr::Input(key, default))
            }
            Tok::Ident(name) if name == "len" => {
                self.bump();
                self.expect(&Tok::LParen)?;
                let arr = self.ident()?;
                self.expect(&Tok::RParen)?;
                Ok(Expr::Len(arr))
            }
            Tok::Ident(name) => {
                if KEYWORDS.contains(&name.as_str()) {
                    return Err(self.err(format!("`{name}` is a keyword and cannot appear in an expression")));
                }
                self.bump();
                match self.peek() {
                    Tok::LParen => {
                        self.bump();
                        let mut args = Vec::new();
                        if !matches!(self.peek(), Tok::RParen) {
                            loop {
                                args.push(self.expr()?);
                                if !matches!(self.peek(), Tok::Comma) {
                                    break;
                                }
                                self.bump();
                            }
                        }
                        self.expect(&Tok::RParen)?;
                        if let Some(b) = Builtin::from_name(&name) {
                            if args.len() != b.arity() {
                                return Err(self.err(format!(
                                    "builtin `{name}` expects {} argument(s), got {}",
                                    b.arity(),
                                    args.len()
                                )));
                            }
                            Ok(Expr::Call(b, args))
                        } else {
                            Ok(Expr::CallFn(name, args))
                        }
                    }
                    Tok::LBracket => {
                        self.bump();
                        let idx = self.expr()?;
                        self.expect(&Tok::RBracket)?;
                        Ok(Expr::Index(name, Box::new(idx)))
                    }
                    _ => Ok(Expr::Var(name)),
                }
            }
            other => Err(self.err(format!("expected expression, found {}", other.describe()))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_minimal() {
        let p = parse("fn main() { let x = 1; }").unwrap();
        assert_eq!(p.functions.len(), 1);
    }

    #[test]
    fn parse_full_program() {
        let src = r#"
// stencil-ish example
fn main() {
    let n = input("N", 16);
    let a = zeros(n * n);
    let s = 0;
    @fill: for i in 0 .. n * n {
        a[i] = rnd();
    }
    @smooth: for i in 1 .. n - 1 {
        for j in 1 .. n - 1 {
            a[i * n + j] = 0.25 * (a[(i-1)*n+j] + a[(i+1)*n+j] + a[i*n+j-1] + a[i*n+j+1]);
        }
    }
    accumulate(a, n);
    while s < 0.5 && s >= 0 {
        s = s + rnd();
    }
    if s > 1 {
        print(s);
    } else if s == 0 {
        s = 0.1;
    } else {
        s = exp(s);
    }
    return;
}

fn accumulate(buf, n) {
    let t = 0;
    for i in 0 .. n {
        t += 0;
        buf[i] += t;
    }
    return t;
}
"#;
        // note: `t += 0;` is scalar compound — not supported; fixed below.
        let src = src.replace("t += 0;", "t = t + 1;");
        let p = parse(&src).unwrap();
        assert_eq!(p.functions.len(), 2);
        assert!(p.main().is_some());
    }

    #[test]
    fn compound_index_update() {
        let p = parse("fn main() { let a = zeros(4); a[0] += 2; a[1] *= 3; }").unwrap();
        let main = p.main().unwrap();
        assert!(matches!(&main.body.stmts[1].kind, StmtKind::UpdateIndex { op: BinOp::Add, .. }));
        assert!(matches!(&main.body.stmts[2].kind, StmtKind::UpdateIndex { op: BinOp::Mul, .. }));
    }

    #[test]
    fn builtin_arity_checked() {
        assert!(parse("fn main() { let x = pow(2); }").is_err());
        assert!(parse("fn main() { let x = pow(2, 3); }").is_ok());
        assert!(parse("fn main() { let x = rnd(); }").is_ok());
    }

    #[test]
    fn input_and_len() {
        let p = parse(r#"fn main() { let n = input("N", 8); let a = zeros(n); let m = len(a); }"#).unwrap();
        match &p.main().unwrap().body.stmts[0].kind {
            StmtKind::LetScalar { init: Expr::Input(k, d), .. } => {
                assert_eq!(k, "N");
                assert_eq!(*d, 8.0);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn keywords_rejected_as_names() {
        assert!(parse("fn main() { let for = 1; }").is_err());
        assert!(parse("fn for() { }").is_err());
    }

    #[test]
    fn missing_main_rejected() {
        assert!(parse("fn other() { }").is_err());
    }

    #[test]
    fn missing_semicolon_is_error() {
        assert!(parse("fn main() { let x = 1 }").is_err());
    }

    #[test]
    fn logical_precedence() {
        // a < 1 && b > 2 || c == 3  parses as  Or(And(cmp,cmp), cmp)
        let p = parse("fn main() { if a < 1 && b > 2 || c == 3 { print(1); } }").unwrap();
        match &p.main().unwrap().body.stmts[0].kind {
            StmtKind::If { arms, .. } => assert!(matches!(&arms[0].0, Expr::Or(_, _))),
            _ => panic!(),
        }
    }

    #[test]
    fn labels_parse() {
        let p = parse("fn main() { @kern: for i in 0 .. 4 { print(i); } }").unwrap();
        assert_eq!(p.main().unwrap().body.stmts[0].label.as_deref(), Some("kern"));
    }

    #[test]
    fn user_call_in_expression() {
        let p = parse("fn main() { let x = f(1) + 2; } fn f(a) { return a; }").unwrap();
        match &p.main().unwrap().body.stmts[0].kind {
            StmtKind::LetScalar { init, .. } => assert!(matches!(init, Expr::Bin(_, BinOp::Add, _))),
            _ => panic!(),
        }
    }
}
