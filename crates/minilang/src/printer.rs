//! Pretty-printer emitting canonical minilang source text.
//!
//! `parse(print(p))` reproduces `p` up to statement ids (which are assigned
//! in the same pre-order by the parser, so they round-trip too). Used by
//! tooling that rewrites programs and by the parser property tests.

use crate::ast::*;
use std::fmt::Write as _;

/// Render a program as canonical minilang source.
pub fn print(prog: &Program) -> String {
    let mut out = String::new();
    for (i, f) in prog.functions.iter().enumerate() {
        if i > 0 {
            out.push('\n');
        }
        let _ = write!(out, "fn {}(", f.name);
        for (i, p) in f.params.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(p);
        }
        out.push_str(") {\n");
        print_block(&f.body, 1, &mut out);
        out.push_str("}\n");
    }
    out
}

fn indent(depth: usize, out: &mut String) {
    for _ in 0..depth {
        out.push_str("    ");
    }
}

fn print_block(b: &Block, depth: usize, out: &mut String) {
    for s in &b.stmts {
        print_stmt(s, depth, out);
    }
}

fn print_stmt(s: &Stmt, depth: usize, out: &mut String) {
    indent(depth, out);
    if let Some(l) = &s.label {
        let _ = write!(out, "@{l}: ");
    }
    match &s.kind {
        StmtKind::LetScalar { name, init } => {
            let _ = writeln!(out, "let {name} = {};", expr(init));
        }
        StmtKind::LetArray { name, len } => {
            let _ = writeln!(out, "let {name} = zeros({});", expr(len));
        }
        StmtKind::AssignScalar { name, value } => {
            let _ = writeln!(out, "{name} = {};", expr(value));
        }
        StmtKind::AssignIndex { name, index, value } => {
            let _ = writeln!(out, "{name}[{}] = {};", expr(index), expr(value));
        }
        StmtKind::UpdateIndex { name, index, op, value } => {
            let sym = match op {
                BinOp::Add => "+=",
                BinOp::Sub => "-=",
                BinOp::Mul => "*=",
                BinOp::Div => "/=",
                BinOp::Mod => unreachable!("no %= in the language"),
            };
            let _ = writeln!(out, "{name}[{}] {sym} {};", expr(index), expr(value));
        }
        StmtKind::For { var, lo, hi, step, parallel, body } => {
            let kw = if *parallel { "parfor" } else { "for" };
            let _ = write!(out, "{kw} {var} in {} .. {}", expr(lo), expr(hi));
            if !matches!(step, Expr::Num(n) if *n == 1.0) {
                let _ = write!(out, " step {}", expr(step));
            }
            out.push_str(" {\n");
            print_block(body, depth + 1, out);
            indent(depth, out);
            out.push_str("}\n");
        }
        StmtKind::While { cond, body } => {
            let _ = write!(out, "while {}", expr(cond));
            out.push_str(" {\n");
            print_block(body, depth + 1, out);
            indent(depth, out);
            out.push_str("}\n");
        }
        StmtKind::If { arms, else_body } => {
            for (i, (cond, body)) in arms.iter().enumerate() {
                if i > 0 {
                    indent(depth, out);
                    out.push_str("else ");
                }
                let _ = write!(out, "if {}", expr(cond));
                out.push_str(" {\n");
                print_block(body, depth + 1, out);
                indent(depth, out);
                out.push_str("}\n");
            }
            if let Some(e) = else_body {
                indent(depth, out);
                out.push_str("else {\n");
                print_block(e, depth + 1, out);
                indent(depth, out);
                out.push_str("}\n");
            }
        }
        StmtKind::CallProc { name, args } => {
            let _ = write!(out, "{name}(");
            for (i, a) in args.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                out.push_str(&expr(a));
            }
            out.push_str(");\n");
        }
        StmtKind::Return { value } => match value {
            Some(v) => {
                let _ = writeln!(out, "return {};", expr(v));
            }
            None => out.push_str("return;\n"),
        },
        StmtKind::Break => out.push_str("break;\n"),
        StmtKind::Continue => out.push_str("continue;\n"),
        StmtKind::Print { expr: e } => {
            let _ = writeln!(out, "print({});", expr(e));
        }
    }
}

/// Operator precedence levels used for minimal parenthesization.
fn prec(e: &Expr) -> u8 {
    match e {
        Expr::Or(..) => 1,
        Expr::And(..) => 2,
        Expr::Cmp(..) => 3,
        Expr::Bin(_, BinOp::Add | BinOp::Sub, _) => 4,
        Expr::Bin(_, BinOp::Mul | BinOp::Div | BinOp::Mod, _) => 5,
        Expr::Neg(..) | Expr::Not(..) => 6,
        _ => 7,
    }
}

/// Render an expression with minimal parentheses.
pub fn expr(e: &Expr) -> String {
    let mut s = String::new();
    go(e, 0, &mut s);
    s
}

fn go(e: &Expr, parent: u8, out: &mut String) {
    let my = prec(e);
    let paren = my < parent;
    if paren {
        out.push('(');
    }
    match e {
        Expr::Num(n) => {
            if n.fract() == 0.0 && n.abs() < 1e15 {
                let _ = write!(out, "{}", *n as i64);
            } else {
                let _ = write!(out, "{n}");
            }
        }
        Expr::Var(v) => out.push_str(v),
        Expr::Index(a, i) => {
            let _ = write!(out, "{a}[");
            go(i, 0, out);
            out.push(']');
        }
        Expr::Len(a) => {
            let _ = write!(out, "len({a})");
        }
        Expr::Input(name, default) => {
            if default.fract() == 0.0 {
                let _ = write!(out, "input(\"{name}\", {})", *default as i64);
            } else {
                let _ = write!(out, "input(\"{name}\", {default})");
            }
        }
        Expr::Bin(l, op, r) => {
            go(l, my, out);
            let sym = match op {
                BinOp::Add => " + ",
                BinOp::Sub => " - ",
                BinOp::Mul => " * ",
                BinOp::Div => " / ",
                BinOp::Mod => " % ",
            };
            out.push_str(sym);
            go(r, my + 1, out); // left-associative
        }
        Expr::Neg(i) => {
            out.push('-');
            go(i, my + 1, out);
        }
        Expr::Cmp(l, op, r) => {
            go(l, my + 1, out);
            let sym = match op {
                CmpOp::Lt => " < ",
                CmpOp::Le => " <= ",
                CmpOp::Gt => " > ",
                CmpOp::Ge => " >= ",
                CmpOp::Eq => " == ",
                CmpOp::Ne => " != ",
            };
            out.push_str(sym);
            go(r, my + 1, out); // comparisons are non-associative
        }
        Expr::And(l, r) => {
            go(l, my, out);
            out.push_str(" && ");
            go(r, my + 1, out);
        }
        Expr::Or(l, r) => {
            go(l, my, out);
            out.push_str(" || ");
            go(r, my + 1, out);
        }
        Expr::Not(i) => {
            out.push('!');
            go(i, my + 1, out);
        }
        Expr::Call(b, args) => {
            let name = match b {
                Builtin::Exp => "exp",
                Builtin::Log => "log",
                Builtin::Sqrt => "sqrt",
                Builtin::Sin => "sin",
                Builtin::Cos => "cos",
                Builtin::Pow => "pow",
                Builtin::Abs => "abs",
                Builtin::Min => "min",
                Builtin::Max => "max",
                Builtin::Floor => "floor",
                Builtin::Rnd => "rnd",
            };
            let _ = write!(out, "{name}(");
            for (i, a) in args.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                go(a, 0, out);
            }
            out.push(')');
        }
        Expr::CallFn(name, args) => {
            let _ = write!(out, "{name}(");
            for (i, a) in args.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                go(a, 0, out);
            }
            out.push(')');
        }
    }
    if paren {
        out.push(')');
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    const SRC: &str = r#"
fn main() {
    let n = input("N", 16);
    let a = zeros(n * n);
    @fill: for i in 0 .. n step 2 {
        a[i] = rnd();
        a[i] += 1.5;
    }
    let s = 0;
    while s < 10 && n > 2 || s == 0 {
        s = s + helper(a, n) - 1;
        if s > 5 { break; } else if !(s < 0) { continue; }
    }
    print(s);
    return;
}

fn helper(buf, n) {
    let t = 0;
    for i in 0 .. n { t = t + buf[i * n % len(buf)]; }
    return max(t, 0 - t);
}
"#;

    #[test]
    fn round_trip_identical() {
        let p1 = parse(SRC).unwrap();
        let text = print(&p1);
        let p2 = parse(&text).unwrap_or_else(|e| panic!("{e}\n{text}"));
        assert_eq!(p1, p2, "{text}");
    }

    #[test]
    fn print_is_fixed_point() {
        let p1 = parse(SRC).unwrap();
        let t1 = print(&p1);
        let t2 = print(&parse(&t1).unwrap());
        assert_eq!(t1, t2);
    }

    #[test]
    fn workload_sources_round_trip() {
        let p1 = parse(SRC).unwrap();
        let p2 = parse(&print(&p1)).unwrap();
        assert_eq!(p1, p2);
    }

    #[test]
    fn precedence_parenthesization() {
        let p = parse("fn main() { let x = (1 + 2) * 3; let y = 1 + 2 * 3; }").unwrap();
        let text = print(&p);
        assert!(text.contains("(1 + 2) * 3"), "{text}");
        assert!(text.contains("1 + 2 * 3"), "{text}");
    }

    #[test]
    fn logical_and_cmp_mix() {
        let p = parse("fn main() { if (a < 1 || b > 2) && c == 3 { print(1); } }").unwrap();
        let text = print(&p);
        let p2 = parse(&text).unwrap();
        assert_eq!(p, p2, "{text}");
        assert!(text.contains("(a < 1 || b > 2) && c == 3"), "{text}");
    }
}
