//! Profile-guided superinstruction fusion for the bytecode VM.
//!
//! A peephole pass over compiled bytecode that rewrites the hottest
//! opcode digrams into *superinstructions* — single `Op` variants that
//! execute both constituents in one dispatch. The digram set is **static
//! and committed** ([`FUSED_KIND_NAMES`]): it was chosen offline from the
//! measured digram distribution (`xflow profile` / `InstrProfile::
//! ranked_pairs`) across the five paper workloads, so the pass needs no
//! profile at fuse time and every build fuses identically. DESIGN.md §14
//! records the measurement that picked the table.
//!
//! Fusion is behavior-preserving by construction:
//!
//! * every fused arm in the dispatch loop executes its constituents'
//!   exact code in order — same semantic [`Profile`](crate::Profile)
//!   accounting, same tracer event stream, same error precedence, same
//!   RNG draws — so results are bit-identical to the unfused VM;
//! * a pair is **never** fused when its second constituent is a jump
//!   target (the *fusion barrier*): a branch landing mid-pair must keep
//!   observing an instruction boundary there. Jumping *to* the first
//!   constituent is fine — the fused op executes both, exactly like
//!   falling through the unfused pair;
//! * after rewriting, every jump target is remapped through the old→new
//!   pc map (shrunk code moves every downstream instruction);
//! * when instruction profiling is enabled, fused ops account their
//!   constituent opcodes to the ordinary per-opcode and digram counters
//!   (see `vm.rs`), so `InstrProfile` — and therefore every `xflow
//!   profile` report and `vm.op.*` / `vm.pair.*` counter — is
//!   byte-identical between fused and unfused runs. Fused dispatches are
//!   additionally counted per superinstruction kind, off to the side.
//!
//! The pass is greedy leftmost and idempotent: fused variants never match
//! the (base-op, base-op) patterns, so `fuse(fuse(p)) == fuse(p)`.

use crate::ast::*;
use crate::vm::{Op, VmFunc, VmProgram};

/// Number of superinstruction kinds in the committed fusion table.
pub const NUM_FUSED_KINDS: usize = 16;

/// The committed fusion table: `"A.B"` names of the fused digrams, in
/// descending order of their aggregate measured dynamic count across the
/// five paper workloads (sord, chargei, srad, cfd, stassuij) at test
/// scale. Indexed by the dense fused-kind index used by
/// [`InstrProfile::ranked_fused`](crate::InstrProfile::ranked_fused).
pub const FUSED_KIND_NAMES: [&str; NUM_FUSED_KINDS] = [
    "LoadScalar.LoadElem",
    "StmtEnter.LoadScalar",
    "LoadScalar.LoadScalar",
    "LoadScalar.Bin",
    "LoadElem.Bin",
    "Bin.LoadScalar",
    "Bin.Bin",
    "StoreSlot.StmtEnter",
    "Bin.StoreSlot",
    "Bin.StoreElem",
    "Bin.LoadElem",
    "Num.Bin",
    "LoadScalar.Num",
    "StoreElem.StmtEnter",
    "AdvanceRaw.Jump",
    "IterTick.LoadScalar",
];

/// Static fusion summary of one [`fuse_with_report`] pass.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FuseReport {
    /// Rewrite sites per fused kind, indexed like [`FUSED_KIND_NAMES`].
    pub sites: [u64; NUM_FUSED_KINDS],
    /// Instruction count before fusion (all functions).
    pub code_before: usize,
    /// Instruction count after fusion.
    pub code_after: usize,
}

impl FuseReport {
    /// Total static rewrite sites.
    pub fn total_sites(&self) -> u64 {
        self.sites.iter().sum()
    }

    /// Per-kind static site counts with names, nonzero entries only,
    /// in table (frequency) order.
    pub fn named_sites(&self) -> Vec<(&'static str, u64)> {
        FUSED_KIND_NAMES.iter().zip(self.sites.iter()).filter(|(_, n)| **n > 0).map(|(k, n)| (*k, *n)).collect()
    }

    /// Flush the static site counts into a recorder as
    /// `vm.fuse.sites.<A>.<B>` counters plus a `vm.fuse.sites` total.
    pub fn flush_to<R: xflow_obs::Recorder + ?Sized>(&self, rec: &R) {
        rec.add("vm.fuse.sites", self.total_sites());
        for (name, n) in self.named_sites() {
            rec.add(&format!("vm.fuse.sites.{name}"), n);
        }
    }
}

/// Fuse a compiled program. See the module docs for the guarantees.
pub fn fuse(vm: &VmProgram) -> VmProgram {
    fuse_with_report(vm).0
}

/// [`fuse`], also returning the static rewrite summary.
pub fn fuse_with_report(vm: &VmProgram) -> (VmProgram, FuseReport) {
    let mut report = FuseReport::default();
    let funcs = vm.funcs.iter().map(|f| fuse_fn(f, &mut report)).collect();
    (VmProgram { funcs, entry: vm.entry, n_stmts: vm.n_stmts }, report)
}

/// Compile a program and fuse it in one step.
pub fn compile_fused(prog: &Program) -> Result<VmProgram, crate::RuntimeError> {
    Ok(fuse(&crate::vm::compile(prog)?))
}

fn fuse_fn(f: &VmFunc, report: &mut FuseReport) -> VmFunc {
    let code = &f.code;
    report.code_before += code.len();

    // Fusion barriers: no pair may absorb an instruction some jump lands
    // on. (Function entry is pc 0, which can never be a pair's second.)
    let mut is_target = vec![false; code.len() + 1];
    for op in code {
        match op {
            Op::Jump(t) | Op::JumpIfZero(t) => is_target[*t] = true,
            Op::JumpIfGeRaw { target, .. } | Op::AdvanceJump { target, .. } => is_target[*target] = true,
            _ => {}
        }
    }

    // Greedy leftmost rewrite, recording where every old pc landed.
    let mut new_code: Vec<Op> = Vec::with_capacity(code.len());
    let mut new_pc = vec![usize::MAX; code.len() + 1];
    let mut i = 0;
    while i < code.len() {
        new_pc[i] = new_code.len();
        if i + 1 < code.len() && !is_target[i + 1] {
            if let Some((fused, kind)) = try_fuse(&code[i], &code[i + 1]) {
                report.sites[kind] += 1;
                // the second constituent is absorbed; nothing jumps there
                new_pc[i + 1] = new_code.len();
                new_code.push(fused);
                i += 2;
                continue;
            }
        }
        new_code.push(code[i].clone());
        i += 1;
    }
    new_pc[code.len()] = new_code.len();

    // Remap every jump target through the move map. Targets always name
    // an instruction start that survived (the barrier guarantees it), or
    // the first constituent of a pair — whose fused op is the right
    // landing site.
    for op in &mut new_code {
        match op {
            Op::Jump(t) | Op::JumpIfZero(t) => *t = new_pc[*t],
            Op::JumpIfGeRaw { target, .. } | Op::AdvanceJump { target, .. } => *target = new_pc[*target],
            _ => {}
        }
    }

    report.code_after += new_code.len();
    VmFunc {
        name: f.name.clone(),
        n_params: f.n_params,
        n_slots: f.n_slots,
        slot_names: f.slot_names.clone(),
        input_table: f.input_table.clone(),
        code: new_code,
    }
}

/// Match one adjacent pair against the committed digram table. Returns
/// the superinstruction and its dense fused-kind index.
fn try_fuse(a: &Op, b: &Op) -> Option<(Op, usize)> {
    Some(match (a, b) {
        (Op::LoadScalar(i), Op::LoadElem(s)) => (Op::LoadScalarElem { idx: *i, arr: *s }, 0),
        (Op::StmtEnter(id), Op::LoadScalar(s)) => (Op::StmtEnterLoad { id: *id, slot: *s }, 1),
        (Op::LoadScalar(x), Op::LoadScalar(y)) => (Op::LoadScalar2 { a: *x, b: *y }, 2),
        (Op::LoadScalar(s), Op::Bin { op, idx_ctx }) => (Op::LoadScalarBin { slot: *s, op: *op, idx_ctx: *idx_ctx }, 3),
        (Op::LoadElem(s), Op::Bin { op, idx_ctx }) => (Op::LoadElemBin { arr: *s, op: *op, idx_ctx: *idx_ctx }, 4),
        (Op::Bin { op, idx_ctx }, Op::LoadScalar(s)) => (Op::BinLoadScalar { op: *op, idx_ctx: *idx_ctx, slot: *s }, 5),
        (Op::Bin { op: op1, idx_ctx: c1 }, Op::Bin { op: op2, idx_ctx: c2 }) => {
            (Op::Bin2 { op1: *op1, ctx1: *c1, op2: *op2, ctx2: *c2 }, 6)
        }
        (Op::StoreSlot(s), Op::StmtEnter(id)) => (Op::StoreSlotEnter { slot: *s, id: *id }, 7),
        (Op::Bin { op, idx_ctx }, Op::StoreSlot(s)) => (Op::BinStoreSlot { op: *op, idx_ctx: *idx_ctx, slot: *s }, 8),
        (Op::Bin { op, idx_ctx }, Op::StoreElem(s)) => (Op::BinStoreElem { op: *op, idx_ctx: *idx_ctx, arr: *s }, 9),
        (Op::Bin { op, idx_ctx }, Op::LoadElem(s)) => (Op::BinLoadElem { op: *op, idx_ctx: *idx_ctx, arr: *s }, 10),
        (Op::Num(n), Op::Bin { op, idx_ctx }) => (Op::NumBin { n: *n, op: *op, idx_ctx: *idx_ctx }, 11),
        (Op::LoadScalar(s), Op::Num(n)) => (Op::LoadScalarNum { slot: *s, n: *n }, 12),
        (Op::StoreElem(s), Op::StmtEnter(id)) => (Op::StoreElemEnter { arr: *s, id: *id }, 13),
        (Op::AdvanceRaw { cur, step }, Op::Jump(t)) => (Op::AdvanceJump { cur: *cur, step: *step, target: *t }, 14),
        (Op::IterTick(id), Op::LoadScalar(s)) => (Op::IterTickLoad { id: *id, slot: *s }, 15),
        _ => return None,
    })
}

/// Constituent decomposition of a superinstruction: `(fused_kind,
/// first_op_kind, second_op_kind)` in [`FUSED_KIND_NAMES`] /
/// `OP_KIND_NAMES` index space. `None` for base ops. The dispatch loop
/// uses this to account fused executions to the constituent counters.
pub(crate) fn fused_parts(op: &Op) -> Option<(usize, usize, usize)> {
    use crate::vm::kind;
    Some(match op {
        Op::LoadScalarElem { .. } => (0, kind::LOAD_SCALAR, kind::LOAD_ELEM),
        Op::StmtEnterLoad { .. } => (1, kind::STMT_ENTER, kind::LOAD_SCALAR),
        Op::LoadScalar2 { .. } => (2, kind::LOAD_SCALAR, kind::LOAD_SCALAR),
        Op::LoadScalarBin { .. } => (3, kind::LOAD_SCALAR, kind::BIN),
        Op::LoadElemBin { .. } => (4, kind::LOAD_ELEM, kind::BIN),
        Op::BinLoadScalar { .. } => (5, kind::BIN, kind::LOAD_SCALAR),
        Op::Bin2 { .. } => (6, kind::BIN, kind::BIN),
        Op::StoreSlotEnter { .. } => (7, kind::STORE_SLOT, kind::STMT_ENTER),
        Op::BinStoreSlot { .. } => (8, kind::BIN, kind::STORE_SLOT),
        Op::BinStoreElem { .. } => (9, kind::BIN, kind::STORE_ELEM),
        Op::BinLoadElem { .. } => (10, kind::BIN, kind::LOAD_ELEM),
        Op::NumBin { .. } => (11, kind::NUM, kind::BIN),
        Op::LoadScalarNum { .. } => (12, kind::LOAD_SCALAR, kind::NUM),
        Op::StoreElemEnter { .. } => (13, kind::STORE_ELEM, kind::STMT_ENTER),
        Op::AdvanceJump { .. } => (14, kind::ADVANCE_RAW, kind::JUMP),
        Op::IterTickLoad { .. } => (15, kind::ITER_TICK, kind::LOAD_SCALAR),
        _ => return None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interp::NullTracer;
    use crate::parser::parse;
    use crate::vm::{compile, run_vm};
    use crate::InputSpec;

    fn fused_of(src: &str) -> (VmProgram, VmProgram, FuseReport) {
        let prog = parse(src).unwrap();
        let vm = compile(&prog).unwrap();
        let (fused, report) = fuse_with_report(&vm);
        (vm, fused, report)
    }

    #[test]
    fn fusion_shrinks_code_and_counts_sites() {
        let (vm, fused, report) = fused_of(
            "fn main() { let n = 64; let a = zeros(n); let s = 0;
               for i in 0 .. n { a[i] = i * 2.0; }
               for i in 0 .. n { s = s + a[i]; }
               print(s); }",
        );
        assert!(fused.code_len() < vm.code_len(), "{} !< {}", fused.code_len(), vm.code_len());
        assert_eq!(report.code_before, vm.code_len());
        assert_eq!(report.code_after, fused.code_len());
        assert_eq!(report.total_sites() as usize, vm.code_len() - fused.code_len());
        // the for-loop back edge always fuses
        assert!(report.sites[14] > 0, "AdvanceRaw.Jump must fuse: {report:?}");
    }

    #[test]
    fn fusion_is_idempotent() {
        let (_, fused, _) = fused_of("fn main() { let s = 0; for i in 0 .. 9 { s = s + i * i; } print(s); }");
        let (refused, report) = fuse_with_report(&fused);
        assert_eq!(report.total_sites(), 0, "{report:?}");
        assert_eq!(refused.disasm(), fused.disasm());
    }

    #[test]
    fn fused_table_and_names_stay_aligned() {
        assert_eq!(FUSED_KIND_NAMES.len(), NUM_FUSED_KINDS);
        let mut seen = std::collections::HashSet::new();
        for n in FUSED_KIND_NAMES {
            assert!(seen.insert(n), "duplicate fused name {n}");
            let (a, b) = n.split_once('.').expect("A.B name");
            assert!(crate::vm::OP_KIND_NAMES.contains(&a), "{a}");
            assert!(crate::vm::OP_KIND_NAMES.contains(&b), "{b}");
        }
    }

    #[test]
    fn fused_programs_run_bit_identical() {
        let src = "fn main() {
            let n = input(\"N\", 40);
            let a = zeros(n);
            for i in 0 .. n { a[i] = rnd() * 3.0 + sqrt(i + 1); }
            let s = 0;
            let j = 0;
            while j < n {
                if a[j] > 2.0 { s = s + a[j] * 0.5; } else { s = s - 1; }
                j = j + 1;
            }
            print(s);
        }";
        let (vm, fused, report) = fused_of(src);
        assert!(report.total_sites() > 0);
        let spec = InputSpec::new();
        let (p1, _, r1) = run_vm(&vm, &spec, NullTracer).unwrap();
        let (p2, _, r2) = run_vm(&fused, &spec, NullTracer).unwrap();
        assert_eq!(r1.to_bits(), r2.to_bits());
        assert_eq!(p1.printed, p2.printed);
        assert_eq!(p1.stmt_ops, p2.stmt_ops);
        assert_eq!(p1.stmt_exec, p2.stmt_exec);
        assert_eq!(p1.loops, p2.loops);
        assert_eq!(p1.branches, p2.branches);
        assert_eq!(p1.lib_calls, p2.lib_calls);
    }

    #[test]
    fn errors_survive_fusion_identically() {
        // out-of-bounds store inside a fused Bin.StoreElem region
        let src = "fn main() { let a = zeros(4); let i = 9; a[i] = 1.0 + 2.0; }";
        let (vm, fused, _) = fused_of(src);
        let e1 = run_vm(&vm, &InputSpec::new(), NullTracer).unwrap_err();
        let e2 = run_vm(&fused, &InputSpec::new(), NullTracer).unwrap_err();
        assert_eq!(e1.to_string(), e2.to_string());
        // unbound variable read through a fused LoadScalar pair
        let src = "fn main() { let x = ghost + 1; print(x); }";
        let (vm, fused, _) = fused_of(src);
        let e1 = run_vm(&vm, &InputSpec::new(), NullTracer).unwrap_err();
        let e2 = run_vm(&fused, &InputSpec::new(), NullTracer).unwrap_err();
        assert_eq!(e1.to_string(), e2.to_string());
    }
}
