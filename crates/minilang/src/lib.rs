//! # xflow-minilang — the mini source language and analysis engine
//!
//! Minilang is this reproduction's stand-in for the Fortran/C production
//! codes the paper analyzes. The crate provides the full front half of the
//! paper's workflow (Figure 1):
//!
//! * a parser for the small C-like language ([`parse`]),
//! * a profiling interpreter ([`interp::profile`], [`interp::run`]) that
//!   plays the role of one local gcov-instrumented run — collecting branch
//!   outcome frequencies, loop trip counts, and dynamic instruction mixes —
//!   and that streams operation/memory events to a [`Tracer`] for the
//!   ground-truth simulator,
//! * the source-to-skeleton translator ([`translate()`]), the ROSE-engine
//!   substitute that statically characterizes instruction mixes, array
//!   accesses, and control structure, and folds the profile into the
//!   generated SKOPE-style skeleton.
//!
//! ```
//! use xflow_minilang::{parse, InputSpec, profile, translate};
//!
//! let src = r#"
//! fn main() {
//!     let n = input("N", 32);
//!     let a = zeros(n);
//!     @kernel: for i in 0 .. n { a[i] = a[i] * 0.5 + 1.0; }
//! }
//! "#;
//! let prog = parse(src).unwrap();
//! let prof = profile(&prog, &InputSpec::new()).unwrap();
//! let t = translate(&prog, &prof).unwrap();
//! assert!(xflow_skeleton::validate(&t.skeleton).is_empty());
//! ```

pub mod ast;
pub mod fuse;
pub mod interp;
pub mod lexer;
pub mod parser;
pub mod printer;
pub mod translate;
pub mod vm;

pub use ast::{Block, Builtin, Function, MStmtId, Program, Stmt, StmtKind};
pub use fuse::{
    compile_fused, fuse as fuse_program, fuse_with_report as fuse_program_with_report, FuseReport, FUSED_KIND_NAMES,
    NUM_FUSED_KINDS,
};
pub use interp::{
    profile, profile_seeded, run, run_with_limits, run_with_limits_seeded, BranchStats, InputSpec, Limits, LoopStats,
    NullTracer, OpCounts, Profile, RuntimeError, Tracer, DEFAULT_SEED,
};
pub use parser::parse;
pub use printer::print;
pub use translate::{translate, TranslateError, Translation};
pub use vm::{
    compile, run_vm, run_vm_observed, run_vm_profiled, run_vm_with_limits, run_vm_with_limits_seeded, InstrProfile,
    VmProgram, NUM_OP_KINDS, OP_KIND_NAMES,
};

/// Wire-format version of this crate's serializable artifacts
/// ([`Program`], [`Profile`], [`Translation`], [`InputSpec`]).
///
/// Bump whenever a serialized layout changes shape; content-addressed caches
/// fold this into their keys so stale artifacts are never deserialized.
pub fn schema_version() -> u32 {
    1
}
