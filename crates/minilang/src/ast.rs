//! Abstract syntax of *minilang*, the small C-like source language.
//!
//! Minilang stands in for the Fortran/C production codes of the paper: it is
//! the language the analysis engine consumes (translation to skeletons), the
//! branch profiler executes (the gcov substitute), and the ground-truth
//! simulator drives. It has f64 scalars, flat f64 arrays, functions with
//! scalar/array parameters and scalar returns, `for`/`while`/`if`/`switch`-
//! free structured control flow, and a small math library.

use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Stable identifier of a minilang statement (dense, pre-order).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct MStmtId(pub u32);

/// Binary arithmetic operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum BinOp {
    Add,
    Sub,
    Mul,
    Div,
    Mod,
}

/// Comparison operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CmpOp {
    Lt,
    Le,
    Gt,
    Ge,
    Eq,
    Ne,
}

impl CmpOp {
    /// Apply to concrete values.
    pub fn apply(self, l: f64, r: f64) -> bool {
        match self {
            CmpOp::Lt => l < r,
            CmpOp::Le => l <= r,
            CmpOp::Gt => l > r,
            CmpOp::Ge => l >= r,
            CmpOp::Eq => l == r,
            CmpOp::Ne => l != r,
        }
    }
}

/// Pure math built-ins. `Rnd` is the C `rand()` stand-in (uniform [0,1));
/// all are modeled as opaque library functions by the framework.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Builtin {
    Exp,
    Log,
    Sqrt,
    Sin,
    Cos,
    Pow,
    Abs,
    Min,
    Max,
    Floor,
    Rnd,
}

impl Builtin {
    /// Library-registry name of the builtin (`None` for the free ones that
    /// compile to one or two instructions rather than a library call).
    pub fn lib_name(self) -> Option<&'static str> {
        match self {
            Builtin::Exp => Some("exp"),
            Builtin::Log => Some("log"),
            Builtin::Sqrt => Some("sqrt"),
            Builtin::Sin => Some("sin"),
            Builtin::Cos => Some("cos"),
            Builtin::Pow => Some("pow"),
            Builtin::Rnd => Some("rand"),
            Builtin::Abs | Builtin::Min | Builtin::Max | Builtin::Floor => None,
        }
    }

    /// Parse from source name.
    pub fn from_name(s: &str) -> Option<Builtin> {
        Some(match s {
            "exp" => Builtin::Exp,
            "log" => Builtin::Log,
            "sqrt" => Builtin::Sqrt,
            "sin" => Builtin::Sin,
            "cos" => Builtin::Cos,
            "pow" => Builtin::Pow,
            "abs" => Builtin::Abs,
            "min" => Builtin::Min,
            "max" => Builtin::Max,
            "floor" => Builtin::Floor,
            "rnd" => Builtin::Rnd,
            _ => return None,
        })
    }

    /// Number of arguments.
    pub fn arity(self) -> usize {
        match self {
            Builtin::Pow | Builtin::Min | Builtin::Max => 2,
            Builtin::Rnd => 0,
            _ => 1,
        }
    }
}

/// Minilang expressions.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Expr {
    /// Numeric literal.
    Num(f64),
    /// Scalar variable read.
    Var(String),
    /// Array element read: `a[idx]`.
    Index(String, Box<Expr>),
    /// Array length: `len(a)`.
    Len(String),
    /// Named scalar input with default: `input("N", 64)`.
    Input(String, f64),
    /// Binary arithmetic.
    Bin(Box<Expr>, BinOp, Box<Expr>),
    /// Unary negation.
    Neg(Box<Expr>),
    /// Comparison, yields 0.0/1.0.
    Cmp(Box<Expr>, CmpOp, Box<Expr>),
    /// Logical and (short-circuit).
    And(Box<Expr>, Box<Expr>),
    /// Logical or (short-circuit).
    Or(Box<Expr>, Box<Expr>),
    /// Logical not.
    Not(Box<Expr>),
    /// Math builtin call.
    Call(Builtin, Vec<Expr>),
    /// User-function call (returns the function's return value, 0.0 if the
    /// function returns without a value).
    CallFn(String, Vec<Expr>),
}

impl Expr {
    /// Convenience literal.
    pub fn num(v: f64) -> Expr {
        Expr::Num(v)
    }

    /// Convenience variable.
    pub fn var(s: &str) -> Expr {
        Expr::Var(s.to_string())
    }
}

/// A block of statements.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Block {
    pub stmts: Vec<Stmt>,
}

/// A minilang statement with id and optional `@label:`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Stmt {
    pub id: MStmtId,
    pub label: Option<String>,
    pub kind: StmtKind,
}

/// Statement kinds.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum StmtKind {
    /// `let x = expr;` — scalar binding.
    LetScalar { name: String, init: Expr },
    /// `let a = zeros(len);` — array allocation (zero-filled).
    LetArray { name: String, len: Expr },
    /// `x = expr;` — scalar assignment.
    AssignScalar { name: String, value: Expr },
    /// `a[idx] = expr;` — element assignment.
    AssignIndex { name: String, index: Expr, value: Expr },
    /// `a[idx] += expr;`-style compound assignment, kept explicit because it
    /// reads *and* writes the element (two accesses).
    UpdateIndex { name: String, index: Expr, op: BinOp, value: Expr },
    /// `for v in lo .. hi [step s] { … }`; `parallel` marks `parfor`
    /// loops whose iterations are independent and may run concurrently.
    For { var: String, lo: Expr, hi: Expr, step: Expr, parallel: bool, body: Block },
    /// `while cond { … }`.
    While { cond: Expr, body: Block },
    /// `if c { } else if c2 { } else { }`.
    If { arms: Vec<(Expr, Block)>, else_body: Option<Block> },
    /// `foo(a, n);` — call for effect, result discarded.
    CallProc { name: String, args: Vec<Expr> },
    /// `return;` / `return expr;`
    Return { value: Option<Expr> },
    /// `break;`
    Break,
    /// `continue;`
    Continue,
    /// `print(expr);` — debugging aid, free in all models.
    Print { expr: Expr },
}

impl StmtKind {
    /// Keyword naming the statement kind.
    pub fn keyword(&self) -> &'static str {
        match self {
            StmtKind::LetScalar { .. } | StmtKind::LetArray { .. } => "let",
            StmtKind::AssignScalar { .. } | StmtKind::AssignIndex { .. } | StmtKind::UpdateIndex { .. } => "assign",
            StmtKind::For { .. } => "for",
            StmtKind::While { .. } => "while",
            StmtKind::If { .. } => "if",
            StmtKind::CallProc { .. } => "call",
            StmtKind::Return { .. } => "return",
            StmtKind::Break => "break",
            StmtKind::Continue => "continue",
            StmtKind::Print { .. } => "print",
        }
    }
}

/// A function definition. Parameters are dynamically typed: they bind to
/// whatever value class (scalar or array) the caller passes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Function {
    pub name: String,
    pub params: Vec<String>,
    pub body: Block,
}

/// A complete minilang program.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Program {
    pub functions: Vec<Function>,
    by_name: HashMap<String, usize>,
    next_stmt_id: u32,
}

impl Program {
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a function; errors on duplicates.
    pub fn add_function(&mut self, f: Function) -> Result<(), String> {
        if self.by_name.contains_key(&f.name) {
            return Err(format!("duplicate function `{}`", f.name));
        }
        self.by_name.insert(f.name.clone(), self.functions.len());
        self.functions.push(f);
        Ok(())
    }

    /// Look up a function.
    pub fn function(&self, name: &str) -> Option<&Function> {
        self.by_name.get(name).map(|&i| &self.functions[i])
    }

    /// The `main` entry point.
    pub fn main(&self) -> Option<&Function> {
        self.function("main")
    }

    /// Allocate the next statement id (parser use).
    pub fn fresh_stmt_id(&mut self) -> MStmtId {
        let id = MStmtId(self.next_stmt_id);
        self.next_stmt_id += 1;
        id
    }

    /// Number of statement ids allocated.
    pub fn stmt_count(&self) -> u32 {
        self.next_stmt_id
    }

    /// Visit all statements in pre-order.
    pub fn visit_stmts<'a>(&'a self, mut f: impl FnMut(&'a Function, &'a Stmt)) {
        fn walk<'a>(func: &'a Function, b: &'a Block, f: &mut impl FnMut(&'a Function, &'a Stmt)) {
            for s in &b.stmts {
                f(func, s);
                match &s.kind {
                    StmtKind::For { body, .. } | StmtKind::While { body, .. } => walk(func, body, f),
                    StmtKind::If { arms, else_body } => {
                        for (_, b) in arms {
                            walk(func, b, f);
                        }
                        if let Some(e) = else_body {
                            walk(func, e, f);
                        }
                    }
                    _ => {}
                }
            }
        }
        for func in &self.functions {
            walk(func, &func.body, &mut f);
        }
    }

    /// Map statement id → human-readable name (label if present).
    pub fn stmt_names(&self) -> HashMap<MStmtId, String> {
        let mut m = HashMap::new();
        self.visit_stmts(|f, s| {
            let n = match &s.label {
                Some(l) => l.clone(),
                None => format!("{}:{}#{}", f.name, s.kind.keyword(), s.id.0),
            };
            m.insert(s.id, n);
        });
        m
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builtin_names_round_trip() {
        for b in [
            Builtin::Exp,
            Builtin::Log,
            Builtin::Sqrt,
            Builtin::Sin,
            Builtin::Cos,
            Builtin::Pow,
            Builtin::Abs,
            Builtin::Min,
            Builtin::Max,
            Builtin::Floor,
            Builtin::Rnd,
        ] {
            if let Some(n) = b.lib_name() {
                // lib-modeled builtins must parse back from their names
                // except rand whose source spelling is `rnd`.
                let source_name = if b == Builtin::Rnd { "rnd" } else { n };
                assert_eq!(Builtin::from_name(source_name), Some(b));
            }
        }
        assert_eq!(Builtin::from_name("nope"), None);
    }

    #[test]
    fn builtin_arities() {
        assert_eq!(Builtin::Rnd.arity(), 0);
        assert_eq!(Builtin::Exp.arity(), 1);
        assert_eq!(Builtin::Pow.arity(), 2);
        assert_eq!(Builtin::Min.arity(), 2);
    }

    #[test]
    fn program_function_registry() {
        let mut p = Program::new();
        p.add_function(Function { name: "main".into(), params: vec![], body: Block::default() }).unwrap();
        assert!(p.main().is_some());
        assert!(p.add_function(Function { name: "main".into(), params: vec![], body: Block::default() }).is_err());
    }

    #[test]
    fn cmp_apply() {
        assert!(CmpOp::Lt.apply(1.0, 2.0));
        assert!(!CmpOp::Ge.apply(1.0, 2.0));
        assert!(CmpOp::Ne.apply(1.0, 2.0));
    }
}
