//! Tree-walking interpreter for minilang with built-in profiling.
//!
//! The interpreter serves two roles from the paper:
//!
//! 1. **Branch profiler (gcov substitute, Section III-B):** every run
//!    collects a [`Profile`] — per-branch arm frequencies, per-loop trip and
//!    break/continue statistics, dynamic operation counts, and library call
//!    counts. The translator folds these into the generated skeleton.
//! 2. **Execution driver for the ground-truth simulator:** a [`Tracer`]
//!    receives every operation and memory access (with flat addresses) as it
//!    happens, attributed to the source statement, which `xflow-sim` turns
//!    into per-block "measured" cycles.
//!
//! Operation accounting rules (the translator's static counts mirror these):
//! arithmetic in *value* position counts as flops (divides also count as
//! divs), arithmetic in *index/bound* position counts as iops, array element
//! reads/writes count as loads/stores (scalars live in registers — the paper
//! explicitly does not model stack traffic), comparisons count as one flop,
//! logical connectives as one iop, and `abs`/`min`/`max`/`floor` as one flop.
//! `exp`/`log`/`sqrt`/`sin`/`cos`/`pow`/`rnd` are opaque library calls.

use crate::ast::*;
use serde::{Deserialize, Serialize};
use std::cell::RefCell;
use std::collections::{BTreeMap, HashMap};
use std::fmt;
use std::rc::Rc;

/// Named scalar inputs for a run (consumed by `input("name", default)`).
///
/// Backed by a `BTreeMap` so iteration — and everything derived from it:
/// cache keys, environment seeding, serialized form — is deterministic
/// (sorted by input name) regardless of insertion order.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct InputSpec(BTreeMap<String, f64>);

impl InputSpec {
    pub fn new() -> Self {
        Self::default()
    }

    /// Build from `(name, value)` pairs.
    pub fn from_pairs<I, S>(pairs: I) -> Self
    where
        I: IntoIterator<Item = (S, f64)>,
        S: Into<String>,
    {
        Self(pairs.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    /// Set one input.
    pub fn set(&mut self, name: &str, value: f64) -> &mut Self {
        self.0.insert(name.to_string(), value);
        self
    }

    /// Fetch an input value, falling back to the program's default.
    pub fn get_or(&self, name: &str, default: f64) -> f64 {
        self.0.get(name).copied().unwrap_or(default)
    }

    /// Iterate over explicitly set inputs, in sorted name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, f64)> {
        self.0.iter().map(|(k, &v)| (k.as_str(), v))
    }

    /// Number of explicitly set inputs.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether no inputs are explicitly set.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Canonical `name=bits` rendering used for content-addressed cache
    /// keys: sorted by name, values spelled as exact `f64::to_bits` so two
    /// specs collide exactly when every binding is bit-identical.
    pub fn canonical_string(&self) -> String {
        let mut out = String::new();
        for (k, v) in self.iter() {
            out.push_str(k);
            out.push('=');
            out.push_str(&v.to_bits().to_string());
            out.push(';');
        }
        out
    }
}

/// Receives fine-grained execution events. All methods have no-op defaults
/// so profiling-only runs pay nothing for unused hooks.
pub trait Tracer {
    /// Arithmetic retired by `stmt`: flops/iops/divs (divs ⊂ flops).
    fn ops(&mut self, _stmt: MStmtId, _flops: u32, _iops: u32, _divs: u32) {}
    /// 8-byte load from `addr`.
    fn load(&mut self, _stmt: MStmtId, _addr: u64) {}
    /// 8-byte store to `addr`.
    fn store(&mut self, _stmt: MStmtId, _addr: u64) {}
    /// Opaque library call with its (first) scalar argument — the argument
    /// lets cost models reproduce input-dependent instruction counts
    /// (range-reduction iterations etc., paper Section IV-C).
    fn lib_call(&mut self, _stmt: MStmtId, _name: &'static str, _arg: f64) {}
}

/// A tracer that ignores everything (profiling-only runs).
#[derive(Debug, Default, Clone, Copy)]
pub struct NullTracer;

impl Tracer for NullTracer {}

/// Dynamic operation counts attributed to one statement.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct OpCounts {
    pub flops: u64,
    pub iops: u64,
    pub divs: u64,
    pub loads: u64,
    pub stores: u64,
}

impl OpCounts {
    /// Total dynamic operations.
    pub fn total(&self) -> u64 {
        self.flops + self.iops + self.loads + self.stores
    }
}

/// Outcome statistics of one `if` statement.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct BranchStats {
    /// Times each arm's condition was the first to hold.
    pub arm_hits: Vec<u64>,
    /// Times all conditions failed (else taken or fall-through).
    pub else_hits: u64,
}

impl BranchStats {
    /// Total evaluations of the branch.
    pub fn evals(&self) -> u64 {
        self.arm_hits.iter().sum::<u64>() + self.else_hits
    }

    /// Empirical probability that arm `i` is taken.
    pub fn arm_prob(&self, i: usize) -> f64 {
        let n = self.evals();
        if n == 0 {
            0.0
        } else {
            self.arm_hits.get(i).copied().unwrap_or(0) as f64 / n as f64
        }
    }
}

/// Trip statistics of one loop statement.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct LoopStats {
    /// Times the loop statement was entered.
    pub entries: u64,
    /// Total body iterations across all entries.
    pub iterations: u64,
    /// Iterations ended by `break`.
    pub breaks: u64,
    /// Iterations ended by `continue`.
    pub continues: u64,
}

impl LoopStats {
    /// Mean iterations per entry.
    pub fn avg_trips(&self) -> f64 {
        if self.entries == 0 {
            0.0
        } else {
            self.iterations as f64 / self.entries as f64
        }
    }

    /// Per-iteration break probability.
    pub fn break_prob(&self) -> f64 {
        if self.iterations == 0 {
            0.0
        } else {
            self.breaks as f64 / self.iterations as f64
        }
    }

    /// Per-iteration continue probability.
    pub fn continue_prob(&self) -> f64 {
        if self.iterations == 0 {
            0.0
        } else {
            self.continues as f64 / self.iterations as f64
        }
    }
}

/// Everything one profiled run learns about the program's dynamic behavior.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Profile {
    /// Branch outcome statistics per `if` statement.
    pub branches: HashMap<MStmtId, BranchStats>,
    /// Trip statistics per `for`/`while` statement.
    pub loops: HashMap<MStmtId, LoopStats>,
    /// Dynamic op counts per statement.
    pub stmt_ops: HashMap<MStmtId, OpCounts>,
    /// Execution counts per statement.
    pub stmt_exec: HashMap<MStmtId, u64>,
    /// Library call counts by function name.
    pub lib_calls: HashMap<String, u64>,
    /// Values printed by `print(...)`, for functional assertions in tests.
    pub printed: Vec<f64>,
}

impl Profile {
    /// Total dynamic operations across all statements.
    pub fn total_ops(&self) -> u64 {
        self.stmt_ops.values().map(OpCounts::total).sum()
    }
}

/// Runtime failure during interpretation.
#[derive(Debug, Clone, PartialEq)]
pub enum RuntimeError {
    UnboundVariable(String),
    NotAnArray(String),
    NotAScalar(String),
    IndexOutOfBounds { array: String, index: f64, len: usize },
    UnknownFunction(String),
    ArityMismatch { func: String, expected: usize, got: usize },
    NegativeArrayLength { array: String, len: f64 },
    StepLimitExceeded(u64),
    RecursionLimitExceeded(u32),
}

impl fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RuntimeError::UnboundVariable(v) => write!(f, "unbound variable `{v}`"),
            RuntimeError::NotAnArray(v) => write!(f, "`{v}` is not an array"),
            RuntimeError::NotAScalar(v) => write!(f, "`{v}` is an array, expected a scalar"),
            RuntimeError::IndexOutOfBounds { array, index, len } => {
                write!(f, "index {index} out of bounds for `{array}` (len {len})")
            }
            RuntimeError::UnknownFunction(n) => write!(f, "unknown function `{n}`"),
            RuntimeError::ArityMismatch { func, expected, got } => {
                write!(f, "`{func}` takes {expected} argument(s), got {got}")
            }
            RuntimeError::NegativeArrayLength { array, len } => {
                write!(f, "array `{array}` created with negative length {len}")
            }
            RuntimeError::StepLimitExceeded(n) => write!(f, "execution exceeded the step limit of {n}"),
            RuntimeError::RecursionLimitExceeded(n) => write!(f, "recursion deeper than {n} frames"),
        }
    }
}

impl std::error::Error for RuntimeError {}

/// A runtime value: scalar or shared array (shared with the bytecode VM).
#[derive(Debug, Clone)]
pub(crate) enum Val {
    Num(f64),
    Arr(ArrRef),
}

/// Shared array with a flat base address for the memory trace.
#[derive(Debug, Clone)]
pub(crate) struct ArrRef {
    pub(crate) data: Rc<RefCell<Vec<f64>>>,
    pub(crate) base: u64,
}

/// Deterministic splitmix64 generator backing `rnd()` (shared with the VM
/// so both engines draw identical sequences).
#[derive(Debug, Clone)]
pub(crate) struct Lcg(pub(crate) u64);

impl Lcg {
    pub(crate) fn next_f64(&mut self) -> f64 {
        // splitmix64 step — deterministic across platforms.
        self.0 = self.0.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^= z >> 31;
        (z >> 11) as f64 / (1u64 << 53) as f64
    }
}

enum Flow {
    Normal,
    Break,
    Continue,
    Return(f64),
}

/// Configuration limits for a run.
#[derive(Debug, Clone, Copy)]
pub struct Limits {
    /// Maximum dynamic statements executed (runaway guard).
    pub max_steps: u64,
    /// Maximum call depth.
    pub max_depth: u32,
}

impl Default for Limits {
    fn default() -> Self {
        Self { max_steps: 2_000_000_000, max_depth: 256 }
    }
}

/// The interpreter. Generic over the tracer so profiling-only runs are
/// monomorphized without the event hooks.
pub struct Interp<'p, T: Tracer> {
    prog: &'p Program,
    inputs: &'p InputSpec,
    tracer: T,
    profile: Profile,
    rng: Lcg,
    next_base: u64,
    steps: u64,
    depth: u32,
    limits: Limits,
    cur_stmt: MStmtId,
}

/// Seed used by [`run`]/[`crate::run_vm`] when no explicit seed is given.
///
/// Both execution engines draw `rnd()` values from the same splitmix64
/// stream, so a profiled run, a VM run, and a simulated run with equal
/// seeds observe identical branch outcomes and visit counts — the property
/// the differential validator (`xflow-validate`) relies on.
pub const DEFAULT_SEED: u64 = 0x5EED_1234_ABCD_0001;

/// Profile a program without tracing (the "local profiled run").
pub fn profile(prog: &Program, inputs: &InputSpec) -> Result<Profile, RuntimeError> {
    let (p, _, _) = run(prog, inputs, NullTracer)?;
    Ok(p)
}

/// [`profile`] with an explicit `rnd()` seed.
pub fn profile_seeded(prog: &Program, inputs: &InputSpec, seed: u64) -> Result<Profile, RuntimeError> {
    let (p, _, _) = run_with_limits_seeded(prog, inputs, NullTracer, Limits::default(), seed)?;
    Ok(p)
}

/// Run a program with a tracer; returns the profile, the tracer, and main's
/// return value.
pub fn run<T: Tracer>(prog: &Program, inputs: &InputSpec, tracer: T) -> Result<(Profile, T, f64), RuntimeError> {
    run_with_limits(prog, inputs, tracer, Limits::default())
}

/// [`run`] with explicit execution limits.
pub fn run_with_limits<T: Tracer>(
    prog: &Program,
    inputs: &InputSpec,
    tracer: T,
    limits: Limits,
) -> Result<(Profile, T, f64), RuntimeError> {
    run_with_limits_seeded(prog, inputs, tracer, limits, DEFAULT_SEED)
}

/// [`run_with_limits`] with an explicit `rnd()` seed.
pub fn run_with_limits_seeded<T: Tracer>(
    prog: &Program,
    inputs: &InputSpec,
    tracer: T,
    limits: Limits,
    seed: u64,
) -> Result<(Profile, T, f64), RuntimeError> {
    let mut interp = Interp {
        prog,
        inputs,
        tracer,
        profile: Profile::default(),
        rng: Lcg(seed),
        next_base: 0x1000, // leave page zero unused
        steps: 0,
        depth: 0,
        limits,
        cur_stmt: MStmtId(0),
    };
    let ret = interp.call("main", Vec::new())?;
    Ok((interp.profile, interp.tracer, ret))
}

impl<'p, T: Tracer> Interp<'p, T> {
    fn call(&mut self, name: &str, args: Vec<Val>) -> Result<f64, RuntimeError> {
        let f = self.prog.function(name).ok_or_else(|| RuntimeError::UnknownFunction(name.to_string()))?;
        if f.params.len() != args.len() {
            return Err(RuntimeError::ArityMismatch {
                func: name.to_string(),
                expected: f.params.len(),
                got: args.len(),
            });
        }
        if self.depth >= self.limits.max_depth {
            return Err(RuntimeError::RecursionLimitExceeded(self.limits.max_depth));
        }
        self.depth += 1;
        let mut scope: HashMap<String, Val> = f.params.iter().cloned().zip(args).collect();
        let flow = self.exec_block(&f.body, &mut scope)?;
        self.depth -= 1;
        Ok(match flow {
            Flow::Return(v) => v,
            _ => 0.0,
        })
    }

    fn tick(&mut self) -> Result<(), RuntimeError> {
        self.steps += 1;
        if self.steps > self.limits.max_steps {
            return Err(RuntimeError::StepLimitExceeded(self.limits.max_steps));
        }
        Ok(())
    }

    fn exec_block(&mut self, b: &Block, scope: &mut HashMap<String, Val>) -> Result<Flow, RuntimeError> {
        for s in &b.stmts {
            match self.exec_stmt(s, scope)? {
                Flow::Normal => {}
                other => return Ok(other),
            }
        }
        Ok(Flow::Normal)
    }

    fn exec_stmt(&mut self, s: &Stmt, scope: &mut HashMap<String, Val>) -> Result<Flow, RuntimeError> {
        self.tick()?;
        self.cur_stmt = s.id;
        *self.profile.stmt_exec.entry(s.id).or_insert(0) += 1;
        match &s.kind {
            StmtKind::LetScalar { name, init } => {
                let v = self.eval(init, scope, false)?;
                scope.insert(name.clone(), Val::Num(v));
                Ok(Flow::Normal)
            }
            StmtKind::LetArray { name, len } => {
                let l = self.eval(len, scope, true)?;
                if l < 0.0 {
                    return Err(RuntimeError::NegativeArrayLength { array: name.clone(), len: l });
                }
                let n = l as usize;
                let base = self.next_base;
                self.next_base += (n as u64) * 8 + 64; // pad so arrays don't share lines
                scope.insert(name.clone(), Val::Arr(ArrRef { data: Rc::new(RefCell::new(vec![0.0; n])), base }));
                Ok(Flow::Normal)
            }
            StmtKind::AssignScalar { name, value } => {
                let v = self.eval(value, scope, false)?;
                match scope.get_mut(name) {
                    Some(Val::Num(slot)) => {
                        *slot = v;
                        Ok(Flow::Normal)
                    }
                    Some(Val::Arr(_)) => Err(RuntimeError::NotAScalar(name.clone())),
                    None => {
                        // implicit declaration on first assignment
                        scope.insert(name.clone(), Val::Num(v));
                        Ok(Flow::Normal)
                    }
                }
            }
            StmtKind::AssignIndex { name, index, value } => {
                let idx = self.eval(index, scope, true)?;
                let v = self.eval(value, scope, false)?;
                self.store_elem(name, idx, v, scope)?;
                Ok(Flow::Normal)
            }
            StmtKind::UpdateIndex { name, index, op, value } => {
                let idx = self.eval(index, scope, true)?;
                let v = self.eval(value, scope, false)?;
                let old = self.load_elem(name, idx, scope)?;
                let new = self.apply_bin(*op, old, v, false);
                self.store_elem(name, idx, new, scope)?;
                Ok(Flow::Normal)
            }
            // `parfor` executes sequentially here: the interpreter is the
            // functional/profiling reference; parallelism only affects the
            // *projected* wall time, not the work performed.
            StmtKind::For { var, lo, hi, step, parallel: _, body } => {
                let lo = self.eval(lo, scope, true)?;
                let hi = self.eval(hi, scope, true)?;
                let st = self.eval(step, scope, true)?.max(f64::MIN_POSITIVE);
                let loop_id = s.id;
                self.profile.loops.entry(loop_id).or_default().entries += 1;
                let mut i = lo;
                let mut flow = Flow::Normal;
                while i < hi {
                    self.tick()?;
                    {
                        let l = self.profile.loops.entry(loop_id).or_default();
                        l.iterations += 1;
                    }
                    // loop bookkeeping: compare + increment
                    self.count_ops(loop_id, 0, 2, 0);
                    scope.insert(var.clone(), Val::Num(i));
                    match self.exec_block(body, scope)? {
                        Flow::Normal => {}
                        Flow::Continue => {
                            self.profile.loops.entry(loop_id).or_default().continues += 1;
                        }
                        Flow::Break => {
                            self.profile.loops.entry(loop_id).or_default().breaks += 1;
                            break;
                        }
                        Flow::Return(v) => {
                            flow = Flow::Return(v);
                            break;
                        }
                    }
                    i += st;
                }
                Ok(flow)
            }
            StmtKind::While { cond, body } => {
                let loop_id = s.id;
                self.profile.loops.entry(loop_id).or_default().entries += 1;
                let mut flow = Flow::Normal;
                loop {
                    self.cur_stmt = loop_id;
                    let c = self.eval(cond, scope, false)?;
                    if c == 0.0 {
                        break;
                    }
                    self.tick()?;
                    self.profile.loops.entry(loop_id).or_default().iterations += 1;
                    match self.exec_block(body, scope)? {
                        Flow::Normal => {}
                        Flow::Continue => {
                            self.profile.loops.entry(loop_id).or_default().continues += 1;
                        }
                        Flow::Break => {
                            self.profile.loops.entry(loop_id).or_default().breaks += 1;
                            break;
                        }
                        Flow::Return(v) => {
                            flow = Flow::Return(v);
                            break;
                        }
                    }
                }
                Ok(flow)
            }
            StmtKind::If { arms, else_body } => {
                let branch_id = s.id;
                {
                    let b = self.profile.branches.entry(branch_id).or_default();
                    if b.arm_hits.len() < arms.len() {
                        b.arm_hits.resize(arms.len(), 0);
                    }
                }
                for (i, (cond, body)) in arms.iter().enumerate() {
                    self.cur_stmt = branch_id;
                    let c = self.eval(cond, scope, false)?;
                    if c != 0.0 {
                        self.profile.branches.get_mut(&branch_id).unwrap().arm_hits[i] += 1;
                        return self.exec_block(body, scope);
                    }
                }
                self.profile.branches.get_mut(&branch_id).unwrap().else_hits += 1;
                if let Some(e) = else_body {
                    return self.exec_block(e, scope);
                }
                Ok(Flow::Normal)
            }
            StmtKind::CallProc { name, args } => {
                let vals = self.eval_args(name, args, scope)?;
                self.call(name, vals)?;
                Ok(Flow::Normal)
            }
            StmtKind::Return { value } => {
                let v = match value {
                    Some(e) => self.eval(e, scope, false)?,
                    None => 0.0,
                };
                Ok(Flow::Return(v))
            }
            StmtKind::Break => Ok(Flow::Break),
            StmtKind::Continue => Ok(Flow::Continue),
            StmtKind::Print { expr } => {
                let v = self.eval(expr, scope, false)?;
                self.profile.printed.push(v);
                Ok(Flow::Normal)
            }
        }
    }

    fn eval_args(
        &mut self,
        _func: &str,
        args: &[Expr],
        scope: &mut HashMap<String, Val>,
    ) -> Result<Vec<Val>, RuntimeError> {
        args.iter()
            .map(|a| match a {
                // bare array names pass the array by reference
                Expr::Var(v) => match scope.get(v) {
                    Some(val) => Ok(val.clone()),
                    None => Err(RuntimeError::UnboundVariable(v.clone())),
                },
                other => Ok(Val::Num(self.eval(other, scope, false)?)),
            })
            .collect()
    }

    fn count_ops(&mut self, stmt: MStmtId, flops: u32, iops: u32, divs: u32) {
        let c = self.profile.stmt_ops.entry(stmt).or_default();
        c.flops += flops as u64;
        c.iops += iops as u64;
        c.divs += divs as u64;
        self.tracer.ops(stmt, flops, iops, divs);
    }

    fn arr<'a>(scope: &'a HashMap<String, Val>, name: &str) -> Result<&'a ArrRef, RuntimeError> {
        match scope.get(name) {
            Some(Val::Arr(a)) => Ok(a),
            Some(Val::Num(_)) => Err(RuntimeError::NotAnArray(name.to_string())),
            None => Err(RuntimeError::UnboundVariable(name.to_string())),
        }
    }

    fn load_elem(&mut self, name: &str, idx: f64, scope: &HashMap<String, Val>) -> Result<f64, RuntimeError> {
        let a = Self::arr(scope, name)?;
        let data = a.data.borrow();
        let i = idx as usize;
        if idx < 0.0 || i >= data.len() {
            return Err(RuntimeError::IndexOutOfBounds { array: name.to_string(), index: idx, len: data.len() });
        }
        let v = data[i];
        let addr = a.base + (i as u64) * 8;
        drop(data);
        let c = self.profile.stmt_ops.entry(self.cur_stmt).or_default();
        c.loads += 1;
        self.tracer.load(self.cur_stmt, addr);
        Ok(v)
    }

    fn store_elem(
        &mut self,
        name: &str,
        idx: f64,
        value: f64,
        scope: &HashMap<String, Val>,
    ) -> Result<(), RuntimeError> {
        let a = Self::arr(scope, name)?;
        let mut data = a.data.borrow_mut();
        let i = idx as usize;
        if idx < 0.0 || i >= data.len() {
            return Err(RuntimeError::IndexOutOfBounds { array: name.to_string(), index: idx, len: data.len() });
        }
        data[i] = value;
        let addr = a.base + (i as u64) * 8;
        drop(data);
        let c = self.profile.stmt_ops.entry(self.cur_stmt).or_default();
        c.stores += 1;
        self.tracer.store(self.cur_stmt, addr);
        Ok(())
    }

    fn apply_bin(&mut self, op: BinOp, l: f64, r: f64, idx_ctx: bool) -> f64 {
        let (flops, iops, divs) = if idx_ctx {
            (0, 1, 0)
        } else if op == BinOp::Div {
            (1, 0, 1)
        } else {
            (1, 0, 0)
        };
        self.count_ops(self.cur_stmt, flops, iops, divs);
        match op {
            BinOp::Add => l + r,
            BinOp::Sub => l - r,
            BinOp::Mul => l * r,
            BinOp::Div => l / r,
            BinOp::Mod => l % r,
        }
    }

    /// Evaluate an expression. `idx_ctx` marks index/bound position where
    /// arithmetic is integer (address) work.
    fn eval(&mut self, e: &Expr, scope: &mut HashMap<String, Val>, idx_ctx: bool) -> Result<f64, RuntimeError> {
        Ok(match e {
            Expr::Num(n) => *n,
            Expr::Var(v) => match scope.get(v) {
                Some(Val::Num(x)) => *x,
                Some(Val::Arr(_)) => return Err(RuntimeError::NotAScalar(v.clone())),
                None => return Err(RuntimeError::UnboundVariable(v.clone())),
            },
            Expr::Index(name, idx) => {
                let i = self.eval(idx, scope, true)?;
                self.load_elem(name, i, scope)?
            }
            Expr::Len(name) => {
                let a = Self::arr(scope, name)?;
                let n = a.data.borrow().len();
                n as f64
            }
            Expr::Input(name, default) => self.inputs.get_or(name, *default),
            Expr::Bin(l, op, r) => {
                let lv = self.eval(l, scope, idx_ctx)?;
                let rv = self.eval(r, scope, idx_ctx)?;
                self.apply_bin(*op, lv, rv, idx_ctx)
            }
            Expr::Neg(inner) => {
                let v = self.eval(inner, scope, idx_ctx)?;
                self.count_ops(self.cur_stmt, if idx_ctx { 0 } else { 1 }, if idx_ctx { 1 } else { 0 }, 0);
                -v
            }
            Expr::Cmp(l, op, r) => {
                let lv = self.eval(l, scope, idx_ctx)?;
                let rv = self.eval(r, scope, idx_ctx)?;
                self.count_ops(self.cur_stmt, 1, 0, 0);
                if op.apply(lv, rv) {
                    1.0
                } else {
                    0.0
                }
            }
            Expr::And(l, r) => {
                let lv = self.eval(l, scope, idx_ctx)?;
                self.count_ops(self.cur_stmt, 0, 1, 0);
                if lv == 0.0 {
                    0.0
                } else {
                    let rv = self.eval(r, scope, idx_ctx)?;
                    if rv != 0.0 {
                        1.0
                    } else {
                        0.0
                    }
                }
            }
            Expr::Or(l, r) => {
                let lv = self.eval(l, scope, idx_ctx)?;
                self.count_ops(self.cur_stmt, 0, 1, 0);
                if lv != 0.0 {
                    1.0
                } else {
                    let rv = self.eval(r, scope, idx_ctx)?;
                    if rv != 0.0 {
                        1.0
                    } else {
                        0.0
                    }
                }
            }
            Expr::Not(inner) => {
                let v = self.eval(inner, scope, idx_ctx)?;
                self.count_ops(self.cur_stmt, 0, 1, 0);
                if v == 0.0 {
                    1.0
                } else {
                    0.0
                }
            }
            Expr::Call(b, args) => {
                let mut vals = [0.0f64; 2];
                for (i, a) in args.iter().enumerate().take(2) {
                    vals[i] = self.eval(a, scope, idx_ctx)?;
                }
                match b {
                    Builtin::Abs => {
                        self.count_ops(self.cur_stmt, 1, 0, 0);
                        vals[0].abs()
                    }
                    Builtin::Min => {
                        self.count_ops(self.cur_stmt, 1, 0, 0);
                        vals[0].min(vals[1])
                    }
                    Builtin::Max => {
                        self.count_ops(self.cur_stmt, 1, 0, 0);
                        vals[0].max(vals[1])
                    }
                    Builtin::Floor => {
                        self.count_ops(self.cur_stmt, 1, 0, 0);
                        vals[0].floor()
                    }
                    Builtin::Rnd => {
                        self.lib(b, "rand", 0.0);
                        self.rng.next_f64()
                    }
                    Builtin::Exp => {
                        self.lib(b, "exp", vals[0]);
                        vals[0].exp()
                    }
                    Builtin::Log => {
                        self.lib(b, "log", vals[0]);
                        vals[0].max(f64::MIN_POSITIVE).ln()
                    }
                    Builtin::Sqrt => {
                        self.lib(b, "sqrt", vals[0]);
                        vals[0].abs().sqrt()
                    }
                    Builtin::Sin => {
                        self.lib(b, "sin", vals[0]);
                        vals[0].sin()
                    }
                    Builtin::Cos => {
                        self.lib(b, "cos", vals[0]);
                        vals[0].cos()
                    }
                    Builtin::Pow => {
                        self.lib(b, "pow", vals[0]);
                        vals[0].powf(vals[1])
                    }
                }
            }
            Expr::CallFn(name, args) => {
                let vals = self.eval_args(name, args, scope)?;
                let saved = self.cur_stmt;
                let r = self.call(name, vals)?;
                self.cur_stmt = saved;
                r
            }
        })
    }

    fn lib(&mut self, b: &Builtin, name: &'static str, arg: f64) {
        debug_assert_eq!(b.lib_name(), Some(name));
        *self.profile.lib_calls.entry(name.to_string()).or_insert(0) += 1;
        self.tracer.lib_call(self.cur_stmt, name, arg);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn run_src(src: &str) -> Profile {
        let p = parse(src).unwrap();
        profile(&p, &InputSpec::new()).unwrap()
    }

    fn run_src_with(src: &str, inputs: &[(&str, f64)]) -> Profile {
        let p = parse(src).unwrap();
        profile(&p, &InputSpec::from_pairs(inputs.iter().copied())).unwrap()
    }

    #[test]
    fn arithmetic_and_print() {
        let prof = run_src("fn main() { let x = 2 + 3 * 4; print(x); }");
        assert_eq!(prof.printed, vec![14.0]);
    }

    #[test]
    fn arrays_round_trip_values() {
        let prof = run_src(
            "fn main() { let a = zeros(4); a[0] = 7; a[1] = a[0] * 2; a[1] += 1; print(a[1]); print(len(a)); }",
        );
        assert_eq!(prof.printed, vec![15.0, 4.0]);
    }

    #[test]
    fn for_loop_iterates_and_profiles() {
        let src = "fn main() { let s = 0; for i in 0 .. 10 { s = s + i; } print(s); }";
        let p = parse(src).unwrap();
        let prof = profile(&p, &InputSpec::new()).unwrap();
        assert_eq!(prof.printed, vec![45.0]);
        let loop_stats: Vec<_> = prof.loops.values().collect();
        assert_eq!(loop_stats.len(), 1);
        assert_eq!(loop_stats[0].entries, 1);
        assert_eq!(loop_stats[0].iterations, 10);
        assert_eq!(loop_stats[0].avg_trips(), 10.0);
    }

    #[test]
    fn for_loop_with_step() {
        let prof = run_src("fn main() { let s = 0; for i in 0 .. 10 step 3 { s = s + 1; } print(s); }");
        assert_eq!(prof.printed, vec![4.0]); // 0,3,6,9
    }

    #[test]
    fn while_loop_and_trip_profile() {
        let src = "fn main() { let x = 16; while x > 1 { x = x / 2; } print(x); }";
        let prof = run_src(src);
        assert_eq!(prof.printed, vec![1.0]);
        let stats: Vec<_> = prof.loops.values().collect();
        assert_eq!(stats[0].iterations, 4);
    }

    #[test]
    fn branch_profile_counts_arms() {
        let src = r#"
fn main() {
    for i in 0 .. 100 {
        if i % 4 == 0 { print(0); }
        else if i % 4 == 1 { print(1); }
        else { print(2); }
    }
}
"#;
        let prof = run_src(src);
        let b = prof.branches.values().next().unwrap();
        assert_eq!(b.arm_hits, vec![25, 25]);
        assert_eq!(b.else_hits, 50);
        assert!((b.arm_prob(0) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn break_and_continue_profiled() {
        let src = r#"
fn main() {
    for i in 0 .. 100 {
        if i == 10 { break; }
        if i % 2 == 0 { continue; }
        print(i);
    }
}
"#;
        let prof = run_src(src);
        let l = prof.loops.values().next().unwrap();
        assert_eq!(l.iterations, 11); // 0..=10
        assert_eq!(l.breaks, 1);
        assert_eq!(l.continues, 5); // i = 0,2,4,6,8 (i == 10 breaks first)
        assert_eq!(prof.printed, vec![1.0, 3.0, 5.0, 7.0, 9.0]);
    }

    #[test]
    fn function_calls_with_arrays_by_reference() {
        let src = r#"
fn main() {
    let a = zeros(3);
    fill(a, 3);
    print(a[0] + a[1] + a[2]);
}
fn fill(buf, n) {
    for i in 0 .. n { buf[i] = i + 1; }
}
"#;
        let prof = run_src(src);
        assert_eq!(prof.printed, vec![6.0]);
    }

    #[test]
    fn function_return_values() {
        let src = r#"
fn main() { print(square(7)); }
fn square(x) { return x * x; }
"#;
        assert_eq!(run_src(src).printed, vec![49.0]);
    }

    #[test]
    fn inputs_override_defaults() {
        let src = r#"fn main() { print(input("N", 4)); }"#;
        assert_eq!(run_src(src).printed, vec![4.0]);
        assert_eq!(run_src_with(src, &[("N", 9.0)]).printed, vec![9.0]);
    }

    #[test]
    fn rnd_is_deterministic_and_in_unit_interval() {
        let src = "fn main() { for i in 0 .. 100 { print(rnd()); } }";
        let a = run_src(src).printed;
        let b = run_src(src).printed;
        assert_eq!(a, b);
        assert!(a.iter().all(|&v| (0.0..1.0).contains(&v)));
        // crude uniformity check
        let mean: f64 = a.iter().sum::<f64>() / a.len() as f64;
        assert!((mean - 0.5).abs() < 0.12, "mean {mean}");
    }

    #[test]
    fn lib_calls_counted() {
        let prof = run_src("fn main() { for i in 0 .. 5 { let x = exp(i); let y = rnd(); } }");
        assert_eq!(prof.lib_calls["exp"], 5);
        assert_eq!(prof.lib_calls["rand"], 5);
    }

    #[test]
    fn op_counting_flops_vs_iops() {
        // a[i*2] = x + y: index mul = iop, add = flop, store = 1
        let src = "fn main() { let a = zeros(8); let x = 1; let y = 2; a[1 * 2] = x + y; }";
        let prof = run_src(src);
        let total: OpCounts = prof.stmt_ops.values().fold(OpCounts::default(), |mut acc, c| {
            acc.flops += c.flops;
            acc.iops += c.iops;
            acc.loads += c.loads;
            acc.stores += c.stores;
            acc.divs += c.divs;
            acc
        });
        assert_eq!(total.stores, 1);
        assert_eq!(total.loads, 0);
        assert!(total.iops >= 1);
        assert!(total.flops >= 1);
    }

    #[test]
    fn divide_counts_div() {
        let prof = run_src("fn main() { let x = 10; let y = x / 3; }");
        let divs: u64 = prof.stmt_ops.values().map(|c| c.divs).sum();
        assert_eq!(divs, 1);
    }

    #[test]
    fn out_of_bounds_is_error() {
        let p = parse("fn main() { let a = zeros(2); a[5] = 1; }").unwrap();
        let err = profile(&p, &InputSpec::new()).unwrap_err();
        assert!(matches!(err, RuntimeError::IndexOutOfBounds { .. }));
    }

    #[test]
    fn unknown_function_is_error() {
        let p = parse("fn main() { ghost(); }").unwrap();
        assert!(matches!(profile(&p, &InputSpec::new()).unwrap_err(), RuntimeError::UnknownFunction(_)));
    }

    #[test]
    fn arity_mismatch_is_error() {
        let p = parse("fn main() { f(1, 2); } fn f(x) { }").unwrap();
        assert!(matches!(profile(&p, &InputSpec::new()).unwrap_err(), RuntimeError::ArityMismatch { .. }));
    }

    #[test]
    fn step_limit_halts_infinite_loop() {
        let p = parse("fn main() { while 1 > 0 { let x = 1; } }").unwrap();
        let err = run_with_limits(&p, &InputSpec::new(), NullTracer, Limits { max_steps: 10_000, max_depth: 16 })
            .unwrap_err();
        assert!(matches!(err, RuntimeError::StepLimitExceeded(_)));
    }

    #[test]
    fn recursion_limit_halts() {
        let p = parse("fn main() { f(); } fn f() { f(); }").unwrap();
        let err = run_with_limits(&p, &InputSpec::new(), NullTracer, Limits { max_steps: 1_000_000, max_depth: 32 })
            .unwrap_err();
        assert!(matches!(err, RuntimeError::RecursionLimitExceeded(_)));
    }

    #[test]
    fn tracer_receives_addresses() {
        #[derive(Default)]
        struct Collect {
            loads: Vec<u64>,
            stores: Vec<u64>,
        }
        impl Tracer for Collect {
            fn load(&mut self, _s: MStmtId, addr: u64) {
                self.loads.push(addr);
            }
            fn store(&mut self, _s: MStmtId, addr: u64) {
                self.stores.push(addr);
            }
        }
        let p = parse("fn main() { let a = zeros(4); a[0] = 1; a[2] = a[0]; }").unwrap();
        let (_, t, _) = run(&p, &InputSpec::new(), Collect::default()).unwrap();
        assert_eq!(t.stores.len(), 2);
        assert_eq!(t.loads.len(), 1);
        // sequential elements are 8 bytes apart
        assert_eq!(t.stores[1] - t.stores[0], 16);
        assert_eq!(t.loads[0], t.stores[0]);
    }

    #[test]
    fn negative_array_length_is_error() {
        let p = parse("fn main() { let a = zeros(0 - 5); }").unwrap();
        assert!(matches!(profile(&p, &InputSpec::new()).unwrap_err(), RuntimeError::NegativeArrayLength { .. }));
    }

    #[test]
    fn scalar_passed_by_value() {
        let src = r#"
fn main() { let x = 1; bump(x); print(x); }
fn bump(v) { v = v + 10; }
"#;
        assert_eq!(run_src(src).printed, vec![1.0]);
    }

    #[test]
    fn short_circuit_and_or() {
        // `i > 0 && a[i-1] > 0` must not evaluate a[-1] when i == 0.
        let src = r#"
fn main() {
    let a = zeros(3);
    for i in 0 .. 3 {
        if i > 0 && a[i - 1] >= 0 { a[i] = 1; }
    }
    print(a[0] + a[1] + a[2]);
}
"#;
        assert_eq!(run_src(src).printed, vec![2.0]);
    }
}
