//! Bytecode VM for minilang — the fast execution engine.
//!
//! The tree-walking interpreter ([`crate::interp`]) is the *reference*
//! semantics; this module compiles a program once into a flat instruction
//! stream with resolved variable slots and runs it on a value stack. Both
//! engines produce **bit-identical** results, profiles, and tracer event
//! streams: every op-accounting rule, evaluation order, RNG draw, and array
//! base address matches the reference (enforced by the equivalence tests in
//! `tests/vm_equivalence.rs`). The VM exists because the ground-truth
//! simulator interprets every dynamic operation of a workload — at
//! evaluation scale that is tens of millions of events, where the
//! tree-walker's per-node dispatch and name lookups dominate.

use crate::ast::*;
use crate::interp::{
    ArrRef, BranchStats, InputSpec, Lcg, Limits, LoopStats, OpCounts, Profile, RuntimeError, Tracer, Val,
};
use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;
use xflow_obs::Recorder;

/// A compiled program.
#[derive(Debug, Clone)]
pub struct VmProgram {
    pub(crate) funcs: Vec<VmFunc>,
    pub(crate) entry: usize,
    /// Statement-id bound of the compiled program — sizes the dense
    /// profile accumulators once per run instead of growing them.
    pub(crate) n_stmts: usize,
}

#[derive(Debug, Clone)]
pub(crate) struct VmFunc {
    #[allow(dead_code)]
    pub(crate) name: String,
    pub(crate) n_params: usize,
    pub(crate) n_slots: usize,
    pub(crate) slot_names: Vec<String>,
    /// `input("NAME", default)` sites referenced by `Op::Input`.
    pub(crate) input_table: Vec<(String, f64)>,
    pub(crate) code: Vec<Op>,
}

/// VM instructions. The stack holds [`Val`]s; arithmetic ops pop their
/// operands right-then-left.
///
/// The variants after [`Op::Pop`] are *superinstructions*: fused digrams
/// the peephole pass in [`crate::fuse`] rewrites from the base stream.
/// The compiler never emits them directly; each executes its constituents'
/// exact semantics in one dispatch.
#[derive(Debug, Clone)]
pub(crate) enum Op {
    /// Push a constant number.
    Num(f64),
    /// Push the slot's value (scalar or array) — used for call arguments.
    PushSlot(u16),
    /// Push the slot's scalar value; errors on arrays / unset slots.
    LoadScalar(u16),
    /// Pop a value into a slot.
    StoreSlot(u16),
    /// Pop a length, allocate a zero-filled array into the slot.
    NewArray(u16),
    /// Push `len(slot)`.
    Len(u16),
    /// Push `input(name, default)` — index into the function's input table.
    Input(u16),
    /// Pop v, push 0/1 — *uncounted* boolean normalization for `&&`/`||`
    /// results (the reference returns 0/1 from its own checks without
    /// charging ops).
    NormBoolRaw,
    /// Pop index, push element; one load event.
    LoadElem(u16),
    /// Pop value then index; one store event.
    StoreElem(u16),
    /// Pop r, l; push `l op r`, counting flops/iops per context.
    Bin {
        op: BinOp,
        idx_ctx: bool,
    },
    /// Pop v; push `-v` (1 flop / 1 iop).
    Neg {
        idx_ctx: bool,
    },
    /// Pop v; push `!v` (1 iop).
    Not,
    /// Pop r, l; push 0/1 (1 flop).
    Cmp(CmpOp),
    /// Count one integer op (the `&&`/`||` connective).
    CountIop,
    /// One-flop builtins.
    Abs,
    Floor,
    Min,
    Max,
    /// Library builtins (lib event with the argument).
    Lib(Builtin),
    /// Pop condition; jump if zero.
    JumpIfZero(usize),
    /// Unconditional jump.
    Jump(usize),
    /// Statement prologue: tick, stmt_exec += 1, cur_stmt = id.
    StmtEnter(MStmtId),
    /// Set attribution without a tick (loop-head condition re-evaluation).
    SetCur(MStmtId),
    /// Loop entry profile.
    LoopEntry(MStmtId),
    /// Per-iteration (`for`): tick, iterations += 1, 2 iops to the loop.
    IterTick(MStmtId),
    /// Per-iteration (`while`): tick + iterations only — the reference
    /// charges loop bookkeeping iops for counted loops, not for `while`.
    IterTickWhile(MStmtId),
    /// Raw (uncounted) loop machinery: pop hi/cur, jump if cur >= hi.
    JumpIfGeRaw {
        cur: u16,
        hi: u16,
        target: usize,
    },
    /// Raw cursor advance: slot += step-slot.
    AdvanceRaw {
        cur: u16,
        step: u16,
    },
    /// Clamp the step slot to be strictly positive (mirrors the reference).
    ClampStepRaw(u16),
    /// Branch entry: size the arm-hit table.
    BranchEnter {
        stmt: MStmtId,
        arms: usize,
    },
    ArmHit {
        stmt: MStmtId,
        arm: usize,
    },
    ElseHit(MStmtId),
    BreakProfile(MStmtId),
    ContinueProfile(MStmtId),
    /// Pop argc values (reversed) into a fresh frame, push return address.
    Call {
        func: usize,
        argc: usize,
    },
    /// Return: pop the optional return value (always present — compile
    /// pushes 0.0 for value-less returns), restore the caller frame.
    Ret,
    /// Pop and record a printed value.
    Print,
    /// Pop and discard.
    Pop,

    // --- superinstructions (see `crate::fuse`) ---
    /// `LoadScalar(idx); LoadElem(arr)` — indexed read through a scalar.
    LoadScalarElem {
        idx: u16,
        arr: u16,
    },
    /// `StmtEnter(id); LoadScalar(slot)` — statement prologue + first read.
    StmtEnterLoad {
        id: MStmtId,
        slot: u16,
    },
    /// `LoadScalar(a); LoadScalar(b)` — two scalar reads.
    LoadScalar2 {
        a: u16,
        b: u16,
    },
    /// `LoadScalar(slot); Bin{op}` — load the right operand, apply.
    LoadScalarBin {
        slot: u16,
        op: BinOp,
        idx_ctx: bool,
    },
    /// `LoadElem(arr); Bin{op}` — element read feeding an operator.
    LoadElemBin {
        arr: u16,
        op: BinOp,
        idx_ctx: bool,
    },
    /// `Bin{op}; LoadScalar(slot)` — apply, then load the next operand.
    BinLoadScalar {
        op: BinOp,
        idx_ctx: bool,
        slot: u16,
    },
    /// `Bin{op1}; Bin{op2}` — two chained operators.
    Bin2 {
        op1: BinOp,
        ctx1: bool,
        op2: BinOp,
        ctx2: bool,
    },
    /// `StoreSlot(slot); StmtEnter(id)` — store + next statement prologue.
    StoreSlotEnter {
        slot: u16,
        id: MStmtId,
    },
    /// `Bin{op}; StoreSlot(slot)` — apply and store the result.
    BinStoreSlot {
        op: BinOp,
        idx_ctx: bool,
        slot: u16,
    },
    /// `Bin{op}; StoreElem(arr)` — apply and store into an element.
    BinStoreElem {
        op: BinOp,
        idx_ctx: bool,
        arr: u16,
    },
    /// `Bin{op}; LoadElem(arr)` — computed index feeding an element read.
    BinLoadElem {
        op: BinOp,
        idx_ctx: bool,
        arr: u16,
    },
    /// `Num(n); Bin{op}` — constant right operand, apply.
    NumBin {
        n: f64,
        op: BinOp,
        idx_ctx: bool,
    },
    /// `LoadScalar(slot); Num(n)` — scalar read + constant push.
    LoadScalarNum {
        slot: u16,
        n: f64,
    },
    /// `StoreElem(arr); StmtEnter(id)` — element store + next prologue.
    StoreElemEnter {
        arr: u16,
        id: MStmtId,
    },
    /// `AdvanceRaw{cur,step}; Jump(target)` — the counted-loop back edge.
    AdvanceJump {
        cur: u16,
        step: u16,
        target: usize,
    },
    /// `IterTick(id); LoadScalar(slot)` — iteration tick + cursor read.
    IterTickLoad {
        id: MStmtId,
        slot: u16,
    },
}

/// Dense kind indices of the base opcodes the fusion layer composes —
/// tied to [`op_kind`] by `kind_constants_match_op_kind`.
pub(crate) mod kind {
    pub const NUM: usize = 0;
    pub const LOAD_SCALAR: usize = 2;
    pub const STORE_SLOT: usize = 3;
    pub const LOAD_ELEM: usize = 8;
    pub const STORE_ELEM: usize = 9;
    pub const BIN: usize = 10;
    pub const JUMP: usize = 21;
    pub const STMT_ENTER: usize = 22;
    pub const ITER_TICK: usize = 25;
    pub const ADVANCE_RAW: usize = 28;
}

// ---------------------------------------------------------------------------
// Instruction profiling
// ---------------------------------------------------------------------------

/// Number of distinct opcode kinds (one per `Op` variant).
pub const NUM_OP_KINDS: usize = 39;

/// Opcode kind names, indexed by the dense kind index `op_kind` yields
/// (declaration order of `Op`). These are the names `xflow profile`
/// reports and the `vm.op.*` / `vm.pair.*` counters use.
pub const OP_KIND_NAMES: [&str; NUM_OP_KINDS] = [
    "Num",
    "PushSlot",
    "LoadScalar",
    "StoreSlot",
    "NewArray",
    "Len",
    "Input",
    "NormBoolRaw",
    "LoadElem",
    "StoreElem",
    "Bin",
    "Neg",
    "Not",
    "Cmp",
    "CountIop",
    "Abs",
    "Floor",
    "Min",
    "Max",
    "Lib",
    "JumpIfZero",
    "Jump",
    "StmtEnter",
    "SetCur",
    "LoopEntry",
    "IterTick",
    "IterTickWhile",
    "JumpIfGeRaw",
    "AdvanceRaw",
    "ClampStepRaw",
    "BranchEnter",
    "ArmHit",
    "ElseHit",
    "BreakProfile",
    "ContinueProfile",
    "Call",
    "Ret",
    "Print",
    "Pop",
];

/// Dense kind index of a *base* instruction (its [`Op`] variant).
/// Superinstructions have no kind of their own — they account to their
/// constituents' kinds via [`crate::fuse::fused_parts`].
fn op_kind(op: &Op) -> usize {
    match op {
        Op::Num(_) => 0,
        Op::PushSlot(_) => 1,
        Op::LoadScalar(_) => 2,
        Op::StoreSlot(_) => 3,
        Op::NewArray(_) => 4,
        Op::Len(_) => 5,
        Op::Input(_) => 6,
        Op::NormBoolRaw => 7,
        Op::LoadElem(_) => 8,
        Op::StoreElem(_) => 9,
        Op::Bin { .. } => 10,
        Op::Neg { .. } => 11,
        Op::Not => 12,
        Op::Cmp(_) => 13,
        Op::CountIop => 14,
        Op::Abs => 15,
        Op::Floor => 16,
        Op::Min => 17,
        Op::Max => 18,
        Op::Lib(_) => 19,
        Op::JumpIfZero(_) => 20,
        Op::Jump(_) => 21,
        Op::StmtEnter(_) => 22,
        Op::SetCur(_) => 23,
        Op::LoopEntry(_) => 24,
        Op::IterTick(_) => 25,
        Op::IterTickWhile(_) => 26,
        Op::JumpIfGeRaw { .. } => 27,
        Op::AdvanceRaw { .. } => 28,
        Op::ClampStepRaw(_) => 29,
        Op::BranchEnter { .. } => 30,
        Op::ArmHit { .. } => 31,
        Op::ElseHit(_) => 32,
        Op::BreakProfile(_) => 33,
        Op::ContinueProfile(_) => 34,
        Op::Call { .. } => 35,
        Op::Ret => 36,
        Op::Print => 37,
        Op::Pop => 38,
        fused => unreachable!("op_kind on superinstruction {fused:?} — use fuse::fused_parts"),
    }
}

/// Dynamic instruction-frequency profile of one VM run: per-opcode
/// execution counts and instruction-pair (digram) counts over the
/// executed stream — the measurement half of profile-guided dispatch
/// reordering and superinstruction fusion.
///
/// Recording is branch-free and allocation-free: one dense counter bump
/// per opcode plus one per digram (the "no previous instruction" state is
/// an extra phantom row, not a branch). Produced by [`run_vm_profiled`];
/// [`run_vm_observed`] additionally flushes it through a [`Recorder`].
#[derive(Debug, Clone, PartialEq)]
pub struct InstrProfile {
    /// Execution count per opcode kind, indexed like [`OP_KIND_NAMES`].
    ops: Vec<u64>,
    /// Digram counts, `(NUM_OP_KINDS + 1) × NUM_OP_KINDS`: row `prev`,
    /// column `next`. The phantom row `NUM_OP_KINDS` absorbs the first
    /// instruction (no predecessor) and is excluded from reports.
    pairs: Vec<u64>,
    /// Superinstruction dispatches, indexed like
    /// [`crate::fuse::FUSED_KIND_NAMES`]. A fused dispatch *also* bumps
    /// both constituent `ops`/`pairs` entries, so this is side-band data:
    /// the opcode stream above is always the unfused one.
    fused: Vec<u64>,
    prev: usize,
}

impl Default for InstrProfile {
    fn default() -> Self {
        Self::new()
    }
}

impl InstrProfile {
    /// Empty profile.
    pub fn new() -> Self {
        InstrProfile {
            ops: vec![0; NUM_OP_KINDS],
            pairs: vec![0; (NUM_OP_KINDS + 1) * NUM_OP_KINDS],
            fused: vec![0; crate::fuse::NUM_FUSED_KINDS],
            prev: NUM_OP_KINDS,
        }
    }

    #[inline(always)]
    fn note(&mut self, kind: usize) {
        self.ops[kind] += 1;
        self.pairs[self.prev * NUM_OP_KINDS + kind] += 1;
        self.prev = kind;
    }

    /// Total dynamic instructions executed, in *base-opcode* terms: a
    /// fused dispatch contributes both constituents, so this is invariant
    /// under fusion.
    pub fn total(&self) -> u64 {
        self.ops.iter().sum()
    }

    /// Total superinstruction dispatches (0 on an unfused program).
    pub fn fused_dispatches(&self) -> u64 {
        self.fused.iter().sum()
    }

    /// Superinstruction kinds ranked by dispatch count (descending, ties
    /// by name). Zero-count kinds are omitted; always empty unfused.
    pub fn ranked_fused(&self) -> Vec<(&'static str, u64)> {
        let mut v: Vec<(&'static str, u64)> = crate::fuse::FUSED_KIND_NAMES
            .iter()
            .zip(self.fused.iter())
            .filter(|(_, n)| **n > 0)
            .map(|(k, n)| (*k, *n))
            .collect();
        v.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(b.0)));
        v
    }

    /// True when the two profiles observed the same *base opcode stream*
    /// (identical per-opcode and digram counts), regardless of how many
    /// dispatches were fused. This is the fusion bit-identity contract:
    /// a fused and an unfused run of the same program must satisfy it
    /// even though their `fused` side-band (and thus `==`) differs.
    pub fn stream_eq(&self, other: &InstrProfile) -> bool {
        self.ops == other.ops && self.pairs == other.pairs
    }

    /// Execution count of one opcode kind by name (0 for unknown names).
    pub fn count_of(&self, name: &str) -> u64 {
        OP_KIND_NAMES.iter().position(|n| *n == name).map_or(0, |i| self.ops[i])
    }

    /// Executed opcode kinds ranked by count (descending, ties broken by
    /// name so the report is deterministic). Zero-count kinds are omitted.
    pub fn ranked_ops(&self) -> Vec<(&'static str, u64)> {
        let mut v: Vec<(&'static str, u64)> =
            OP_KIND_NAMES.iter().zip(self.ops.iter()).filter(|(_, n)| **n > 0).map(|(k, n)| (*k, *n)).collect();
        v.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(b.0)));
        v
    }

    /// Executed instruction pairs ranked by count (descending, ties by
    /// names) — the candidate list for superinstruction fusion. The
    /// phantom "start of stream" row is excluded.
    pub fn ranked_pairs(&self) -> Vec<((&'static str, &'static str), u64)> {
        let mut v: Vec<((&'static str, &'static str), u64)> = Vec::new();
        for (a, &name_a) in OP_KIND_NAMES.iter().enumerate() {
            for (b, &name_b) in OP_KIND_NAMES.iter().enumerate() {
                let n = self.pairs[a * NUM_OP_KINDS + b];
                if n > 0 {
                    v.push(((name_a, name_b), n));
                }
            }
        }
        v.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        v
    }

    /// Flush the profile into a recorder as monotonic counters:
    /// `vm.instructions`, `vm.op.<Kind>`, and `vm.pair.<A>.<B>` (nonzero
    /// entries only) — these are fusion-invariant. Superinstruction
    /// dispatches additionally flush as `vm.fused.<A>.<B>` side-band
    /// counters (absent entirely on unfused runs). Called once at end of
    /// run, so the per-name formatting here never touches the dispatch
    /// loop.
    pub fn flush_to<R: Recorder + ?Sized>(&self, rec: &R) {
        rec.add("vm.instructions", self.total());
        for (name, n) in self.ranked_ops() {
            rec.add(&format!("vm.op.{name}"), n);
        }
        for ((a, b), n) in self.ranked_pairs() {
            rec.add(&format!("vm.pair.{a}.{b}"), n);
        }
        for (name, n) in self.ranked_fused() {
            rec.add(&format!("vm.fused.{name}"), n);
        }
    }
}

/// Compile-time switch threading instruction profiling through the
/// dispatch loop. The `()` sink is the production default: `ENABLED` is
/// false, so the `op_kind` computation and counter bumps are statically
/// absent from the monomorphized loop — the same machine code the VM had
/// before profiling existed.
trait InstrSink {
    const ENABLED: bool;
    fn note_op(&mut self, kind: usize);
    fn note_fused(&mut self, fused_kind: usize);
}

impl InstrSink for () {
    const ENABLED: bool = false;
    #[inline(always)]
    fn note_op(&mut self, _kind: usize) {}
    #[inline(always)]
    fn note_fused(&mut self, _fused_kind: usize) {}
}

impl InstrSink for InstrProfile {
    const ENABLED: bool = true;
    #[inline(always)]
    fn note_op(&mut self, kind: usize) {
        self.note(kind);
    }
    #[inline(always)]
    fn note_fused(&mut self, fused_kind: usize) {
        self.fused[fused_kind] += 1;
    }
}

/// Compile a program to bytecode.
///
/// Call-graph errors the reference reports at call time (unknown functions,
/// arity mismatches) surface here at compile time instead.
pub fn compile(prog: &Program) -> Result<VmProgram, RuntimeError> {
    let fn_ids: HashMap<&str, usize> = prog.functions.iter().enumerate().map(|(i, f)| (f.name.as_str(), i)).collect();
    let entry = *fn_ids.get("main").ok_or_else(|| RuntimeError::UnknownFunction("main".into()))?;
    let mut funcs = Vec::with_capacity(prog.functions.len());
    for f in &prog.functions {
        funcs.push(compile_fn(prog, f, &fn_ids)?);
    }
    Ok(VmProgram { funcs, entry, n_stmts: prog.stmt_count() as usize })
}

struct FnCompiler<'p> {
    prog: &'p Program,
    fn_ids: &'p HashMap<&'p str, usize>,
    slots: HashMap<String, u16>,
    slot_names: Vec<String>,
    input_table: Vec<(String, f64)>,
    code: Vec<Op>,
    loops: Vec<LoopCtx>,
}

struct LoopCtx {
    stmt: MStmtId,
    /// Jump targets to patch with the loop-exit pc.
    break_patches: Vec<usize>,
    /// Jump targets to patch with the continue pc.
    continue_patches: Vec<usize>,
}

fn compile_fn(prog: &Program, f: &Function, fn_ids: &HashMap<&str, usize>) -> Result<VmFunc, RuntimeError> {
    let mut c = FnCompiler {
        prog,
        fn_ids,
        slots: HashMap::new(),
        slot_names: Vec::new(),
        input_table: Vec::new(),
        code: Vec::new(),
        loops: Vec::new(),
    };
    for p in &f.params {
        c.slot(p);
    }
    c.block(&f.body)?;
    // implicit `return 0.0`
    c.code.push(Op::Num(0.0));
    c.code.push(Op::Ret);
    Ok(VmFunc {
        name: f.name.clone(),
        n_params: f.params.len(),
        n_slots: c.slot_names.len(),
        slot_names: c.slot_names,
        input_table: c.input_table,
        code: c.code,
    })
}

impl<'p> FnCompiler<'p> {
    fn slot(&mut self, name: &str) -> u16 {
        if let Some(&s) = self.slots.get(name) {
            return s;
        }
        let s = self.slot_names.len() as u16;
        self.slots.insert(name.to_string(), s);
        self.slot_names.push(name.to_string());
        s
    }

    fn hidden_slot(&mut self, tag: &str) -> u16 {
        let s = self.slot_names.len() as u16;
        self.slot_names.push(format!("<{tag}{}>", s));
        s
    }

    fn block(&mut self, b: &Block) -> Result<(), RuntimeError> {
        for s in &b.stmts {
            self.stmt(s)?;
        }
        Ok(())
    }

    fn stmt(&mut self, s: &Stmt) -> Result<(), RuntimeError> {
        self.code.push(Op::StmtEnter(s.id));
        match &s.kind {
            StmtKind::LetScalar { name, init } | StmtKind::AssignScalar { name, value: init } => {
                self.expr(init, false)?;
                let slot = self.slot(name);
                self.code.push(Op::StoreSlot(slot));
            }
            StmtKind::LetArray { name, len } => {
                self.expr(len, true)?;
                let slot = self.slot(name);
                self.code.push(Op::NewArray(slot));
            }
            StmtKind::AssignIndex { name, index, value } => {
                // reference order: index, then value, then store
                self.expr(index, true)?;
                self.expr(value, false)?;
                let slot = self.slot(name);
                self.code.push(Op::StoreElem(slot));
            }
            StmtKind::UpdateIndex { name, index, op, value } => {
                // reference order: index, value, load old, apply, store.
                // Compile as: idx; value; idx2 = re-materialize? The
                // reference evaluates the index expression ONCE — mirror by
                // stashing it in a hidden slot.
                let idx_slot = self.hidden_slot("idx");
                let val_slot = self.hidden_slot("val");
                self.expr(index, true)?;
                self.code.push(Op::StoreSlot(idx_slot));
                self.expr(value, false)?;
                self.code.push(Op::StoreSlot(val_slot));
                let arr = self.slot(name);
                // old = a[idx]
                self.code.push(Op::LoadScalar(idx_slot));
                self.code.push(Op::LoadElem(arr));
                self.code.push(Op::LoadScalar(val_slot));
                self.code.push(Op::Bin { op: *op, idx_ctx: false });
                // store back: stack needs [idx, value]
                let res_slot = self.hidden_slot("res");
                self.code.push(Op::StoreSlot(res_slot));
                self.code.push(Op::LoadScalar(idx_slot));
                self.code.push(Op::LoadScalar(res_slot));
                self.code.push(Op::StoreElem(arr));
            }
            StmtKind::For { var, lo, hi, step, parallel: _, body } => {
                let cur = self.hidden_slot("cur");
                let hi_s = self.hidden_slot("hi");
                let step_s = self.hidden_slot("step");
                self.expr(lo, true)?;
                self.code.push(Op::StoreSlot(cur));
                self.expr(hi, true)?;
                self.code.push(Op::StoreSlot(hi_s));
                self.expr(step, true)?;
                self.code.push(Op::StoreSlot(step_s));
                self.code.push(Op::ClampStepRaw(step_s));
                self.code.push(Op::LoopEntry(s.id));
                let head = self.code.len();
                let exit_patch = self.code.len();
                self.code.push(Op::JumpIfGeRaw { cur, hi: hi_s, target: usize::MAX });
                self.code.push(Op::IterTick(s.id));
                let var_slot = self.slot(var);
                self.code.push(Op::LoadScalar(cur));
                self.code.push(Op::StoreSlot(var_slot));
                self.loops.push(LoopCtx { stmt: s.id, break_patches: vec![], continue_patches: vec![] });
                self.block(body)?;
                let ctx = self.loops.pop().expect("loop ctx");
                let continue_pc = self.code.len();
                self.code.push(Op::AdvanceRaw { cur, step: step_s });
                self.code.push(Op::Jump(head));
                let exit_pc = self.code.len();
                if let Op::JumpIfGeRaw { target, .. } = &mut self.code[exit_patch] {
                    *target = exit_pc;
                }
                for p in ctx.break_patches {
                    self.patch_jump(p, exit_pc);
                }
                for p in ctx.continue_patches {
                    self.patch_jump(p, continue_pc);
                }
            }
            StmtKind::While { cond, body } => {
                self.code.push(Op::LoopEntry(s.id));
                let head = self.code.len();
                // the reference re-attributes the condition to the while
                // statement on every check
                self.code.push(Op::SetCur(s.id));
                self.expr(cond, false)?;
                let exit_patch = self.code.len();
                self.code.push(Op::JumpIfZero(usize::MAX));
                self.code.push(Op::IterTickWhile(s.id));
                self.loops.push(LoopCtx { stmt: s.id, break_patches: vec![], continue_patches: vec![] });
                self.block(body)?;
                let ctx = self.loops.pop().expect("loop ctx");
                self.code.push(Op::Jump(head));
                let exit_pc = self.code.len();
                self.patch_jump(exit_patch, exit_pc);
                for p in ctx.break_patches {
                    self.patch_jump(p, exit_pc);
                }
                for p in ctx.continue_patches {
                    self.patch_jump(p, head);
                }
            }
            StmtKind::If { arms, else_body } => {
                self.code.push(Op::BranchEnter { stmt: s.id, arms: arms.len() });
                let mut end_patches = Vec::new();
                for (i, (cond, body)) in arms.iter().enumerate() {
                    self.code.push(Op::SetCur(s.id));
                    self.expr(cond, false)?;
                    let next_patch = self.code.len();
                    self.code.push(Op::JumpIfZero(usize::MAX));
                    self.code.push(Op::ArmHit { stmt: s.id, arm: i });
                    self.block(body)?;
                    end_patches.push(self.code.len());
                    self.code.push(Op::Jump(usize::MAX));
                    let next_pc = self.code.len();
                    self.patch_jump(next_patch, next_pc);
                }
                self.code.push(Op::ElseHit(s.id));
                if let Some(e) = else_body {
                    self.block(e)?;
                }
                let end = self.code.len();
                for p in end_patches {
                    self.patch_jump(p, end);
                }
            }
            StmtKind::CallProc { name, args } => {
                self.call(name, args)?;
                self.code.push(Op::Pop);
            }
            StmtKind::Return { value } => {
                match value {
                    Some(v) => self.expr(v, false)?,
                    None => self.code.push(Op::Num(0.0)),
                }
                self.code.push(Op::Ret);
            }
            StmtKind::Break => {
                let Some(ctx) = self.loops.last_mut() else {
                    // outside a loop: the reference treats it as a no-op
                    // flow that unwinds to the function end; approximate
                    // with a return of 0.0 — validated programs never hit
                    // this.
                    self.code.push(Op::Num(0.0));
                    self.code.push(Op::Ret);
                    return Ok(());
                };
                let loop_id = ctx.stmt;
                self.code.push(Op::BreakProfile(loop_id));
                let p = self.code.len();
                self.code.push(Op::Jump(usize::MAX));
                self.loops.last_mut().unwrap().break_patches.push(p);
            }
            StmtKind::Continue => {
                let Some(ctx) = self.loops.last_mut() else {
                    self.code.push(Op::Num(0.0));
                    self.code.push(Op::Ret);
                    return Ok(());
                };
                let loop_id = ctx.stmt;
                self.code.push(Op::ContinueProfile(loop_id));
                let p = self.code.len();
                self.code.push(Op::Jump(usize::MAX));
                self.loops.last_mut().unwrap().continue_patches.push(p);
            }
            StmtKind::Print { expr } => {
                self.expr(expr, false)?;
                self.code.push(Op::Print);
            }
        }
        Ok(())
    }

    fn patch_jump(&mut self, at: usize, target: usize) {
        match &mut self.code[at] {
            Op::Jump(t) | Op::JumpIfZero(t) => *t = target,
            Op::JumpIfGeRaw { target: t, .. } => *t = target,
            other => unreachable!("patching non-jump {other:?}"),
        }
    }

    fn call(&mut self, name: &str, args: &[Expr]) -> Result<(), RuntimeError> {
        let &func = self.fn_ids.get(name).ok_or_else(|| RuntimeError::UnknownFunction(name.to_string()))?;
        let expected = self.prog.functions[func].params.len();
        if expected != args.len() {
            return Err(RuntimeError::ArityMismatch { func: name.to_string(), expected, got: args.len() });
        }
        for a in args {
            match a {
                // bare names pass the value (array by reference)
                Expr::Var(v) => {
                    let slot = self.slot(v);
                    self.code.push(Op::PushSlot(slot));
                }
                other => self.expr(other, false)?,
            }
        }
        self.code.push(Op::Call { func, argc: args.len() });
        Ok(())
    }

    fn expr(&mut self, e: &Expr, idx_ctx: bool) -> Result<(), RuntimeError> {
        match e {
            Expr::Num(n) => self.code.push(Op::Num(*n)),
            Expr::Var(v) => {
                let slot = self.slot(v);
                self.code.push(Op::LoadScalar(slot));
            }
            Expr::Index(a, idx) => {
                self.expr(idx, true)?;
                let slot = self.slot(a);
                self.code.push(Op::LoadElem(slot));
            }
            Expr::Len(a) => {
                let slot = self.slot(a);
                self.code.push(Op::Len(slot));
            }
            Expr::Input(name, default) => {
                let idx = self.input_table.len() as u16;
                self.input_table.push((name.clone(), *default));
                self.code.push(Op::Input(idx));
            }
            Expr::Bin(l, op, r) => {
                self.expr(l, idx_ctx)?;
                self.expr(r, idx_ctx)?;
                self.code.push(Op::Bin { op: *op, idx_ctx });
            }
            Expr::Neg(i) => {
                self.expr(i, idx_ctx)?;
                self.code.push(Op::Neg { idx_ctx });
            }
            Expr::Cmp(l, op, r) => {
                self.expr(l, idx_ctx)?;
                self.expr(r, idx_ctx)?;
                self.code.push(Op::Cmp(*op));
            }
            Expr::And(l, r) => {
                // reference: eval lhs, count 1 iop, short-circuit
                self.expr(l, idx_ctx)?;
                self.code.push(Op::CountIop);
                let short = self.code.len();
                self.code.push(Op::JumpIfZero(usize::MAX));
                self.expr(r, idx_ctx)?;
                self.code.push(Op::NormBoolRaw);
                let end = self.code.len();
                self.code.push(Op::Jump(usize::MAX));
                let short_pc = self.code.len();
                self.code.push(Op::Num(0.0));
                let end_pc = self.code.len();
                self.patch_jump(short, short_pc);
                self.patch_jump(end, end_pc);
            }
            Expr::Or(l, r) => {
                self.expr(l, idx_ctx)?;
                self.code.push(Op::CountIop);
                // jump to "true" if lhs non-zero: invert via JumpIfZero to rhs
                let to_rhs = self.code.len();
                self.code.push(Op::JumpIfZero(usize::MAX));
                self.code.push(Op::Num(1.0));
                let end = self.code.len();
                self.code.push(Op::Jump(usize::MAX));
                let rhs_pc = self.code.len();
                self.patch_jump(to_rhs, rhs_pc);
                self.expr(r, idx_ctx)?;
                self.code.push(Op::NormBoolRaw);
                let end_pc = self.code.len();
                self.patch_jump(end, end_pc);
            }
            Expr::Not(i) => {
                self.expr(i, idx_ctx)?;
                self.code.push(Op::Not);
            }
            Expr::Call(b, args) => {
                for a in args.iter().take(2) {
                    self.expr(a, idx_ctx)?;
                }
                match b {
                    Builtin::Abs => self.code.push(Op::Abs),
                    Builtin::Floor => self.code.push(Op::Floor),
                    Builtin::Min => self.code.push(Op::Min),
                    Builtin::Max => self.code.push(Op::Max),
                    lib => {
                        if lib == &Builtin::Rnd {
                            // rnd() takes no arguments; nothing on the stack
                        }
                        self.code.push(Op::Lib(*lib));
                    }
                }
            }
            Expr::CallFn(name, args) => self.call(name, args)?,
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Execution
// ---------------------------------------------------------------------------

/// Library-counter names, indexed by the dense slot [`Op::Lib`] charges.
const LIB_COUNTER_NAMES: [&str; 7] = ["rand", "exp", "log", "sqrt", "sin", "cos", "pow"];

/// Dense profile accumulators — the same [`Profile`] the tree-walker
/// builds, accumulated as statement-id-indexed vectors on the dispatch
/// hot path and converted to the public `HashMap` shape once at end of
/// run. At evaluation scale the interpreter fires tens of millions of
/// profile events; one hash upsert per event used to dominate the
/// dispatch loop. Entry presence is preserved exactly: every upsert in
/// the old code incremented at least one counter, so "accumulator is
/// non-default" is precisely "the old code created this entry".
struct DenseProfile {
    exec: Vec<u64>,
    ops: Vec<OpCounts>,
    loops: Vec<LoopStats>,
    branches: Vec<BranchStats>,
    lib_calls: [u64; LIB_COUNTER_NAMES.len()],
    printed: Vec<f64>,
}

impl DenseProfile {
    fn new(n_stmts: usize) -> Self {
        let mut dp = DenseProfile {
            exec: Vec::new(),
            ops: Vec::new(),
            loops: Vec::new(),
            branches: Vec::new(),
            lib_calls: [0; LIB_COUNTER_NAMES.len()],
            printed: Vec::new(),
        };
        dp.grow(n_stmts);
        dp
    }

    fn grow(&mut self, n: usize) {
        self.exec.resize(n, 0);
        self.ops.resize(n, OpCounts::default());
        self.loops.resize(n, LoopStats::default());
        self.branches.resize(n, BranchStats::default());
    }

    /// Index of `stmt`, growing the accumulators if a statement id beyond
    /// the compiled program's sized range shows up.
    #[inline]
    fn at(&mut self, stmt: MStmtId) -> usize {
        let i = stmt.0 as usize;
        if i >= self.exec.len() {
            self.grow(i + 1);
        }
        i
    }

    /// One pass into the public `HashMap` shape, off the hot path.
    fn into_profile(self) -> Profile {
        let mut p = Profile { printed: self.printed, ..Profile::default() };
        for (i, &n) in self.exec.iter().enumerate() {
            if n > 0 {
                p.stmt_exec.insert(MStmtId(i as u32), n);
            }
        }
        for (i, &c) in self.ops.iter().enumerate() {
            if c != OpCounts::default() {
                p.stmt_ops.insert(MStmtId(i as u32), c);
            }
        }
        for (i, &l) in self.loops.iter().enumerate() {
            if l != LoopStats::default() {
                p.loops.insert(MStmtId(i as u32), l);
            }
        }
        for (i, b) in self.branches.into_iter().enumerate() {
            if b != BranchStats::default() {
                p.branches.insert(MStmtId(i as u32), b);
            }
        }
        for (i, &n) in self.lib_calls.iter().enumerate() {
            if n > 0 {
                p.lib_calls.insert(LIB_COUNTER_NAMES[i].to_string(), n);
            }
        }
        p
    }
}

struct Frame {
    func: usize,
    pc: usize,
    slots: Vec<Val>,
    saved_cur: MStmtId,
}

/// Run a compiled program (see [`crate::run`] for the reference engine).
pub fn run_vm<T: Tracer>(vm: &VmProgram, inputs: &InputSpec, tracer: T) -> Result<(Profile, T, f64), RuntimeError> {
    run_vm_with_limits(vm, inputs, tracer, Limits::default())
}

/// [`run_vm`] with explicit execution limits.
pub fn run_vm_with_limits<T: Tracer>(
    vm: &VmProgram,
    inputs: &InputSpec,
    tracer: T,
    limits: Limits,
) -> Result<(Profile, T, f64), RuntimeError> {
    run_vm_with_limits_seeded(vm, inputs, tracer, limits, crate::DEFAULT_SEED)
}

/// [`run_vm_with_limits`] with an explicit `rnd()` seed (see
/// [`crate::DEFAULT_SEED`] for the cross-engine determinism contract).
pub fn run_vm_with_limits_seeded<T: Tracer>(
    vm: &VmProgram,
    inputs: &InputSpec,
    tracer: T,
    limits: Limits,
    seed: u64,
) -> Result<(Profile, T, f64), RuntimeError> {
    run_vm_inner(vm, inputs, tracer, limits, seed, &mut ())
}

/// [`run_vm_with_limits_seeded`] with instruction profiling compiled in:
/// returns the per-opcode / per-digram [`InstrProfile`] alongside the
/// ordinary results. The run itself is bit-identical to the unprofiled
/// one (profiling only counts, it never changes semantics).
pub fn run_vm_profiled<T: Tracer>(
    vm: &VmProgram,
    inputs: &InputSpec,
    tracer: T,
    limits: Limits,
    seed: u64,
) -> Result<(Profile, T, f64, InstrProfile), RuntimeError> {
    let mut iprof = InstrProfile::new();
    let (profile, tracer, ret) = run_vm_inner(vm, inputs, tracer, limits, seed, &mut iprof)?;
    Ok((profile, tracer, ret, iprof))
}

/// [`run_vm_with_limits_seeded`] routed through a [`Recorder`]: when the
/// recorder is enabled the run is instruction-profiled and the profile is
/// flushed into it as `vm.op.*` / `vm.pair.*` counters; when it is
/// disabled (the [`xflow_obs::NoopRecorder`] default) this monomorphizes
/// to the statically unprofiled loop — same machine code, zero overhead.
pub fn run_vm_observed<T: Tracer, R: Recorder + ?Sized>(
    vm: &VmProgram,
    inputs: &InputSpec,
    tracer: T,
    limits: Limits,
    seed: u64,
    rec: &R,
) -> Result<(Profile, T, f64), RuntimeError> {
    if rec.enabled() {
        let (profile, tracer, ret, iprof) = run_vm_profiled(vm, inputs, tracer, limits, seed)?;
        iprof.flush_to(rec);
        Ok((profile, tracer, ret))
    } else {
        run_vm_with_limits_seeded(vm, inputs, tracer, limits, seed)
    }
}

fn run_vm_inner<T: Tracer, S: InstrSink>(
    vm: &VmProgram,
    inputs: &InputSpec,
    mut tracer: T,
    limits: Limits,
    seed: u64,
    sink: &mut S,
) -> Result<(Profile, T, f64), RuntimeError> {
    let mut profile = DenseProfile::new(vm.n_stmts);
    let mut rng = Lcg(seed);
    let mut next_base: u64 = 0x1000;
    let mut steps: u64 = 0;
    let mut cur_stmt = MStmtId(0);
    let mut stack: Vec<Val> = Vec::with_capacity(64);
    let entry = &vm.funcs[vm.entry];
    let mut frames = vec![Frame { func: vm.entry, pc: 0, slots: vec![Val::Num(f64::NAN); 0], saved_cur: cur_stmt }];
    frames[0].slots = unset_slots(entry.n_slots);

    macro_rules! pop_num {
        () => {
            match stack.pop().expect("stack underflow") {
                Val::Num(v) => v,
                Val::Arr(_) => return Err(RuntimeError::NotAScalar("<array on stack>".into())),
            }
        };
    }

    // Shared opcode bodies. Base arms and the superinstruction arms that
    // fuse them (`crate::fuse`) expand the same macros, so a fused
    // dispatch produces bit-identical profile entries, tracer events,
    // errors, and RNG draws to its unfused constituent sequence.
    // `frame`/`func` rebind every iteration and so are passed explicitly;
    // the other captured locals (`stack`, `profile`, `tracer`,
    // `cur_stmt`, `steps`, `limits`) are stable bindings from above.

    /// `LoadScalar` body: the slot's scalar value, with the exact
    /// unbound/not-a-scalar error precedence.
    macro_rules! scalar_of {
        ($frame:expr, $func:expr, $s:expr) => {{
            let s = $s as usize;
            match &$frame.slots[s] {
                Val::Num(v) if !is_unset_num(*v) => *v,
                Val::Num(_) => return Err(RuntimeError::UnboundVariable($func.slot_names[s].clone())),
                Val::Arr(_) => return Err(RuntimeError::NotAScalar($func.slot_names[s].clone())),
            }
        }};
    }

    /// `LoadElem` body after the index is popped: bounds-checked element
    /// read, one load event to the profile and tracer.
    macro_rules! elem_load {
        ($frame:expr, $func:expr, $s:expr, $idx:expr) => {{
            let s = $s as usize;
            let idx: f64 = $idx;
            let (v, addr) = {
                let a = match &$frame.slots[s] {
                    Val::Arr(a) => a,
                    Val::Num(x) if is_unset_num(*x) => {
                        return Err(RuntimeError::UnboundVariable($func.slot_names[s].clone()))
                    }
                    Val::Num(_) => return Err(RuntimeError::NotAnArray($func.slot_names[s].clone())),
                };
                let data = a.data.borrow();
                let i = idx as usize;
                if idx < 0.0 || i >= data.len() {
                    return Err(RuntimeError::IndexOutOfBounds {
                        array: $func.slot_names[s].clone(),
                        index: idx,
                        len: data.len(),
                    });
                }
                (data[i], a.base + (i as u64) * 8)
            };
            let i = profile.at(cur_stmt);
            profile.ops[i].loads += 1;
            tracer.load(cur_stmt, addr);
            v
        }};
    }

    /// `StoreElem` body after value and index are popped: bounds-checked
    /// element write, one store event to the profile and tracer.
    macro_rules! elem_store {
        ($frame:expr, $func:expr, $s:expr, $idx:expr, $value:expr) => {{
            let s = $s as usize;
            let idx: f64 = $idx;
            let value: f64 = $value;
            let addr = {
                let a = match &$frame.slots[s] {
                    Val::Arr(a) => a,
                    Val::Num(x) if is_unset_num(*x) => {
                        return Err(RuntimeError::UnboundVariable($func.slot_names[s].clone()))
                    }
                    Val::Num(_) => return Err(RuntimeError::NotAnArray($func.slot_names[s].clone())),
                };
                let mut data = a.data.borrow_mut();
                let i = idx as usize;
                if idx < 0.0 || i >= data.len() {
                    return Err(RuntimeError::IndexOutOfBounds {
                        array: $func.slot_names[s].clone(),
                        index: idx,
                        len: data.len(),
                    });
                }
                data[i] = value;
                a.base + (i as u64) * 8
            };
            let i = profile.at(cur_stmt);
            profile.ops[i].stores += 1;
            tracer.store(cur_stmt, addr);
        }};
    }

    /// `Bin` body after both operands are popped: count per context,
    /// apply, yield the result.
    macro_rules! bin_apply {
        ($op:expr, $idx_ctx:expr, $l:expr, $r:expr) => {{
            let l: f64 = $l;
            let r: f64 = $r;
            let op: BinOp = $op;
            let (flops, iops, divs) = if $idx_ctx {
                (0, 1, 0)
            } else if op == BinOp::Div {
                (1, 0, 1)
            } else {
                (1, 0, 0)
            };
            count(&mut profile, &mut tracer, cur_stmt, flops, iops, divs);
            match op {
                BinOp::Add => l + r,
                BinOp::Sub => l - r,
                BinOp::Mul => l * r,
                BinOp::Div => l / r,
                BinOp::Mod => l % r,
            }
        }};
    }

    /// `StmtEnter` body: step-limit tick, attribution, execution count.
    macro_rules! stmt_enter {
        ($id:expr) => {{
            let id: MStmtId = $id;
            steps += 1;
            if steps > limits.max_steps {
                return Err(RuntimeError::StepLimitExceeded(limits.max_steps));
            }
            cur_stmt = id;
            let i = profile.at(id);
            profile.exec[i] += 1;
        }};
    }

    /// `IterTick` body (counted loops): step-limit tick, iteration count,
    /// two bookkeeping iops charged to the loop statement.
    macro_rules! iter_tick {
        ($id:expr) => {{
            let id: MStmtId = $id;
            steps += 1;
            if steps > limits.max_steps {
                return Err(RuntimeError::StepLimitExceeded(limits.max_steps));
            }
            let i = profile.at(id);
            profile.loops[i].iterations += 1;
            count(&mut profile, &mut tracer, id, 0, 2, 0);
        }};
    }

    loop {
        let frame = frames.last_mut().expect("frame");
        let func = &vm.funcs[frame.func];
        debug_assert!(frame.pc < func.code.len());
        let op = &func.code[frame.pc];
        frame.pc += 1;
        if S::ENABLED {
            // Superinstructions account to their constituent opcodes (in
            // order), so the observed opcode/digram stream — and every
            // `vm.op.*` / `vm.pair.*` counter — is identical to the
            // unfused VM's. Fused dispatches are counted side-band.
            match crate::fuse::fused_parts(op) {
                Some((f, a, b)) => {
                    sink.note_fused(f);
                    sink.note_op(a);
                    sink.note_op(b);
                }
                None => sink.note_op(op_kind(op)),
            }
        }
        match op {
            // Superinstruction arms lead the dispatch: after fusion they
            // are the hottest opcodes (arms are listed in the committed
            // table's frequency order, `fuse::FUSED_KIND_NAMES`). Each
            // expands its constituents' shared-body macros in sequence.
            Op::LoadScalarElem { idx, arr } => {
                let i = scalar_of!(frame, func, *idx);
                let v = elem_load!(frame, func, *arr, i);
                stack.push(Val::Num(v));
            }
            Op::StmtEnterLoad { id, slot } => {
                stmt_enter!(*id);
                let v = scalar_of!(frame, func, *slot);
                stack.push(Val::Num(v));
            }
            Op::LoadScalar2 { a, b } => {
                let va = scalar_of!(frame, func, *a);
                stack.push(Val::Num(va));
                let vb = scalar_of!(frame, func, *b);
                stack.push(Val::Num(vb));
            }
            Op::LoadScalarBin { slot, op, idx_ctx } => {
                let r = scalar_of!(frame, func, *slot);
                let l = pop_num!();
                let v = bin_apply!(*op, *idx_ctx, l, r);
                stack.push(Val::Num(v));
            }
            Op::LoadElemBin { arr, op, idx_ctx } => {
                let idx = pop_num!();
                let r = elem_load!(frame, func, *arr, idx);
                let l = pop_num!();
                let v = bin_apply!(*op, *idx_ctx, l, r);
                stack.push(Val::Num(v));
            }
            Op::BinLoadScalar { op, idx_ctx, slot } => {
                let r = pop_num!();
                let l = pop_num!();
                let v = bin_apply!(*op, *idx_ctx, l, r);
                stack.push(Val::Num(v));
                let s2 = scalar_of!(frame, func, *slot);
                stack.push(Val::Num(s2));
            }
            Op::Bin2 { op1, ctx1, op2, ctx2 } => {
                let r = pop_num!();
                let l = pop_num!();
                let v1 = bin_apply!(*op1, *ctx1, l, r);
                let l2 = pop_num!();
                let v2 = bin_apply!(*op2, *ctx2, l2, v1);
                stack.push(Val::Num(v2));
            }
            Op::StoreSlotEnter { slot, id } => {
                let v = stack.pop().expect("stack underflow");
                frame.slots[*slot as usize] = v;
                stmt_enter!(*id);
            }
            Op::BinStoreSlot { op, idx_ctx, slot } => {
                let r = pop_num!();
                let l = pop_num!();
                let v = bin_apply!(*op, *idx_ctx, l, r);
                frame.slots[*slot as usize] = Val::Num(v);
            }
            Op::BinStoreElem { op, idx_ctx, arr } => {
                let r = pop_num!();
                let l = pop_num!();
                let v = bin_apply!(*op, *idx_ctx, l, r);
                let idx = pop_num!();
                elem_store!(frame, func, *arr, idx, v);
            }
            Op::BinLoadElem { op, idx_ctx, arr } => {
                let r = pop_num!();
                let l = pop_num!();
                let idx = bin_apply!(*op, *idx_ctx, l, r);
                let v = elem_load!(frame, func, *arr, idx);
                stack.push(Val::Num(v));
            }
            Op::NumBin { n, op, idx_ctx } => {
                let l = pop_num!();
                let v = bin_apply!(*op, *idx_ctx, l, *n);
                stack.push(Val::Num(v));
            }
            Op::LoadScalarNum { slot, n } => {
                let v = scalar_of!(frame, func, *slot);
                stack.push(Val::Num(v));
                stack.push(Val::Num(*n));
            }
            Op::StoreElemEnter { arr, id } => {
                let value = pop_num!();
                let idx = pop_num!();
                elem_store!(frame, func, *arr, idx, value);
                stmt_enter!(*id);
            }
            Op::AdvanceJump { cur, step, target } => {
                let c = raw_num(&frame.slots[*cur as usize]);
                let st = raw_num(&frame.slots[*step as usize]);
                frame.slots[*cur as usize] = Val::Num(c + st);
                frame.pc = *target;
            }
            Op::IterTickLoad { id, slot } => {
                iter_tick!(*id);
                let v = scalar_of!(frame, func, *slot);
                stack.push(Val::Num(v));
            }

            Op::Num(n) => stack.push(Val::Num(*n)),
            Op::PushSlot(s) => {
                if is_unset(&frame.slots[*s as usize]) {
                    return Err(RuntimeError::UnboundVariable(func.slot_names[*s as usize].clone()));
                }
                stack.push(frame.slots[*s as usize].clone());
            }
            Op::LoadScalar(s) => {
                let v = scalar_of!(frame, func, *s);
                stack.push(Val::Num(v));
            }
            Op::StoreSlot(s) => {
                let v = stack.pop().expect("stack underflow");
                frame.slots[*s as usize] = v;
            }
            Op::NewArray(s) => {
                let l = pop_num!();
                if l < 0.0 {
                    return Err(RuntimeError::NegativeArrayLength {
                        array: func.slot_names[*s as usize].clone(),
                        len: l,
                    });
                }
                let n = l as usize;
                let base = next_base;
                next_base += (n as u64) * 8 + 64;
                frame.slots[*s as usize] = Val::Arr(ArrRef { data: Rc::new(RefCell::new(vec![0.0; n])), base });
            }
            Op::Len(s) => match &frame.slots[*s as usize] {
                Val::Arr(a) => {
                    let n = a.data.borrow().len();
                    stack.push(Val::Num(n as f64));
                }
                Val::Num(v) if is_unset_num(*v) => {
                    return Err(RuntimeError::UnboundVariable(func.slot_names[*s as usize].clone()))
                }
                Val::Num(_) => return Err(RuntimeError::NotAnArray(func.slot_names[*s as usize].clone())),
            },
            Op::Input(idx) => {
                let (name, default) = &func.input_table[*idx as usize];
                stack.push(Val::Num(inputs.get_or(name, *default)));
            }
            Op::LoadElem(s) => {
                let idx = pop_num!();
                let v = elem_load!(frame, func, *s, idx);
                stack.push(Val::Num(v));
            }
            Op::StoreElem(s) => {
                let value = pop_num!();
                let idx = pop_num!();
                elem_store!(frame, func, *s, idx, value);
            }
            Op::Bin { op, idx_ctx } => {
                let r = pop_num!();
                let l = pop_num!();
                let v = bin_apply!(*op, *idx_ctx, l, r);
                stack.push(Val::Num(v));
            }
            Op::Neg { idx_ctx } => {
                let v = pop_num!();
                if *idx_ctx {
                    count(&mut profile, &mut tracer, cur_stmt, 0, 1, 0);
                } else {
                    count(&mut profile, &mut tracer, cur_stmt, 1, 0, 0);
                }
                stack.push(Val::Num(-v));
            }
            Op::Not => {
                let v = pop_num!();
                count(&mut profile, &mut tracer, cur_stmt, 0, 1, 0);
                stack.push(Val::Num(if v == 0.0 { 1.0 } else { 0.0 }));
            }
            Op::NormBoolRaw => {
                let v = pop_num!();
                stack.push(Val::Num(if v != 0.0 { 1.0 } else { 0.0 }));
            }
            Op::Cmp(op) => {
                let r = pop_num!();
                let l = pop_num!();
                count(&mut profile, &mut tracer, cur_stmt, 1, 0, 0);
                stack.push(Val::Num(if op.apply(l, r) { 1.0 } else { 0.0 }));
            }
            Op::CountIop => {
                count(&mut profile, &mut tracer, cur_stmt, 0, 1, 0);
            }
            Op::Abs => {
                let v = pop_num!();
                count(&mut profile, &mut tracer, cur_stmt, 1, 0, 0);
                stack.push(Val::Num(v.abs()));
            }
            Op::Floor => {
                let v = pop_num!();
                count(&mut profile, &mut tracer, cur_stmt, 1, 0, 0);
                stack.push(Val::Num(v.floor()));
            }
            Op::Min => {
                let b = pop_num!();
                let a = pop_num!();
                count(&mut profile, &mut tracer, cur_stmt, 1, 0, 0);
                stack.push(Val::Num(a.min(b)));
            }
            Op::Max => {
                let b = pop_num!();
                let a = pop_num!();
                count(&mut profile, &mut tracer, cur_stmt, 1, 0, 0);
                stack.push(Val::Num(a.max(b)));
            }
            Op::Lib(b) => {
                // slot indices match LIB_COUNTER_NAMES — one dense counter
                // bump instead of a String-keyed upsert per call
                let (v, slot, arg) = match b {
                    Builtin::Rnd => (rng.next_f64(), 0, 0.0),
                    Builtin::Exp => {
                        let a = pop_num!();
                        (a.exp(), 1, a)
                    }
                    Builtin::Log => {
                        let a = pop_num!();
                        (a.max(f64::MIN_POSITIVE).ln(), 2, a)
                    }
                    Builtin::Sqrt => {
                        let a = pop_num!();
                        (a.abs().sqrt(), 3, a)
                    }
                    Builtin::Sin => {
                        let a = pop_num!();
                        (a.sin(), 4, a)
                    }
                    Builtin::Cos => {
                        let a = pop_num!();
                        (a.cos(), 5, a)
                    }
                    Builtin::Pow => {
                        let b2 = pop_num!();
                        let a = pop_num!();
                        (a.powf(b2), 6, a)
                    }
                    other => unreachable!("{other:?} is not a lib builtin"),
                };
                profile.lib_calls[slot] += 1;
                tracer.lib_call(cur_stmt, LIB_COUNTER_NAMES[slot], arg);
                stack.push(Val::Num(v));
            }
            Op::JumpIfZero(t) => {
                let v = pop_num!();
                if v == 0.0 {
                    frame.pc = *t;
                }
            }
            Op::Jump(t) => frame.pc = *t,
            Op::StmtEnter(id) => stmt_enter!(*id),
            Op::SetCur(id) => cur_stmt = *id,
            Op::LoopEntry(id) => {
                let i = profile.at(*id);
                profile.loops[i].entries += 1;
            }
            Op::IterTick(id) => iter_tick!(*id),
            Op::IterTickWhile(id) => {
                steps += 1;
                if steps > limits.max_steps {
                    return Err(RuntimeError::StepLimitExceeded(limits.max_steps));
                }
                let i = profile.at(*id);
                profile.loops[i].iterations += 1;
            }
            Op::JumpIfGeRaw { cur, hi, target } => {
                let c = raw_num(&frame.slots[*cur as usize]);
                let h = raw_num(&frame.slots[*hi as usize]);
                // exits on NaN too — a poisoned counter must not spin the loop
                if c.partial_cmp(&h) != Some(std::cmp::Ordering::Less) {
                    frame.pc = *target;
                }
            }
            Op::AdvanceRaw { cur, step } => {
                let c = raw_num(&frame.slots[*cur as usize]);
                let st = raw_num(&frame.slots[*step as usize]);
                frame.slots[*cur as usize] = Val::Num(c + st);
            }
            Op::ClampStepRaw(s) => {
                let v = raw_num(&frame.slots[*s as usize]);
                frame.slots[*s as usize] = Val::Num(v.max(f64::MIN_POSITIVE));
            }
            Op::BranchEnter { stmt, arms } => {
                let i = profile.at(*stmt);
                let b = &mut profile.branches[i];
                if b.arm_hits.len() < *arms {
                    b.arm_hits.resize(*arms, 0);
                }
            }
            Op::ArmHit { stmt, arm } => {
                let i = profile.at(*stmt);
                profile.branches[i].arm_hits[*arm] += 1;
            }
            Op::ElseHit(stmt) => {
                let i = profile.at(*stmt);
                profile.branches[i].else_hits += 1;
            }
            Op::BreakProfile(id) => {
                let i = profile.at(*id);
                profile.loops[i].breaks += 1;
            }
            Op::ContinueProfile(id) => {
                let i = profile.at(*id);
                profile.loops[i].continues += 1;
            }
            Op::Call { func: callee, argc } => {
                if frames.len() as u32 >= limits.max_depth {
                    return Err(RuntimeError::RecursionLimitExceeded(limits.max_depth));
                }
                let target = &vm.funcs[*callee];
                let mut slots = unset_slots(target.n_slots);
                for i in (0..*argc).rev() {
                    slots[i] = stack.pop().expect("stack underflow");
                }
                debug_assert_eq!(*argc, target.n_params);
                frames.push(Frame { func: *callee, pc: 0, slots, saved_cur: cur_stmt });
            }
            Op::Ret => {
                let f = frames.pop().expect("frame");
                cur_stmt = f.saved_cur;
                if frames.is_empty() {
                    let ret = pop_num!();
                    return Ok((profile.into_profile(), tracer, ret));
                }
                // return value stays on the stack for the caller
            }
            Op::Print => {
                let v = pop_num!();
                profile.printed.push(v);
            }
            Op::Pop => {
                stack.pop();
            }
        }
    }
}

/// Saved/restored attribution: the reference restores `cur_stmt` after a
/// user call *in expression position*; statement calls re-enter on the next
/// statement anyway, so restoring unconditionally matches both.
fn count<T: Tracer>(profile: &mut DenseProfile, tracer: &mut T, stmt: MStmtId, flops: u32, iops: u32, divs: u32) {
    let i = profile.at(stmt);
    let c = &mut profile.ops[i];
    c.flops += flops as u64;
    c.iops += iops as u64;
    c.divs += divs as u64;
    tracer.ops(stmt, flops, iops, divs);
}

fn raw_num(v: &Val) -> f64 {
    match v {
        Val::Num(n) => *n,
        Val::Arr(_) => f64::NAN,
    }
}

fn unset_slots(n: usize) -> Vec<Val> {
    vec![Val::Num(UNSET); n]
}

/// Sentinel NaN marking an unset slot (distinct from computed NaNs only in
/// bit pattern; computed NaNs in user data are astronomically unlikely to
/// collide and the reference would have produced them identically anyway).
const UNSET: f64 = f64::from_bits(0x7FF8_DEAD_BEEF_0001);

fn is_unset_num(v: f64) -> bool {
    v.to_bits() == UNSET.to_bits()
}

fn is_unset(v: &Val) -> bool {
    matches!(v, Val::Num(n) if is_unset_num(*n))
}

impl VmProgram {
    /// Human-readable disassembly (debugging aid; stable enough for tests).
    pub fn disasm(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for f in &self.funcs {
            let _ = writeln!(out, "fn {} (params {}, slots {}):", f.name, f.n_params, f.n_slots);
            for (pc, op) in f.code.iter().enumerate() {
                let _ = writeln!(out, "  {pc:>4}: {op:?}");
            }
        }
        out
    }

    /// Total instruction count across all functions.
    pub fn code_len(&self) -> usize {
        self.funcs.iter().map(|f| f.code.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interp::NullTracer;
    use crate::parser::parse;

    #[test]
    fn compile_resolves_slots_and_entry() {
        let p = parse("fn main() { let x = 1; let y = x + 2; print(y); }").unwrap();
        let vm = compile(&p).unwrap();
        let d = vm.disasm();
        assert!(d.contains("fn main"), "{d}");
        assert!(d.contains("StoreSlot"), "{d}");
        assert!(vm.code_len() > 5);
    }

    #[test]
    fn compile_rejects_unknown_function() {
        let p = parse("fn main() { ghost(); }").unwrap();
        assert!(matches!(compile(&p), Err(RuntimeError::UnknownFunction(_))));
    }

    #[test]
    fn compile_rejects_arity_mismatch() {
        let p = parse("fn main() { f(1, 2); } fn f(x) { }").unwrap();
        assert!(matches!(compile(&p), Err(RuntimeError::ArityMismatch { .. })));
    }

    #[test]
    fn step_limit_enforced() {
        let p = parse("fn main() { while 1 > 0 { let x = 1; } }").unwrap();
        let vm = compile(&p).unwrap();
        let err = run_vm_with_limits(&vm, &InputSpec::new(), NullTracer, Limits { max_steps: 5_000, max_depth: 8 })
            .unwrap_err();
        assert!(matches!(err, RuntimeError::StepLimitExceeded(_)));
    }

    #[test]
    fn recursion_limit_enforced() {
        let p = parse("fn main() { f(); } fn f() { f(); }").unwrap();
        let vm = compile(&p).unwrap();
        let err =
            run_vm_with_limits(&vm, &InputSpec::new(), NullTracer, Limits { max_steps: 1_000_000, max_depth: 16 })
                .unwrap_err();
        assert!(matches!(err, RuntimeError::RecursionLimitExceeded(16)));
    }

    #[test]
    fn unset_slot_reads_error_with_the_variable_name() {
        let p = parse("fn main() { print(mystery); }").unwrap();
        let vm = compile(&p).unwrap();
        match run_vm(&vm, &InputSpec::new(), NullTracer) {
            Err(RuntimeError::UnboundVariable(n)) => assert_eq!(n, "mystery"),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn return_value_propagates() {
        let p = parse("fn main() { return 6 * 7; }").unwrap();
        let vm = compile(&p).unwrap();
        let (_, _, r) = run_vm(&vm, &InputSpec::new(), NullTracer).unwrap();
        assert_eq!(r, 42.0);
    }

    #[test]
    fn profiled_run_is_bit_identical_and_counts_consistently() {
        let p = parse(
            r#"
fn main() {
    let n = input("N", 32);
    let a = zeros(n);
    for i in 0 .. n { a[i] = rnd() * 2.0; }
    let s = 0;
    for i in 0 .. n {
        if a[i] > 1.0 { s = s + a[i]; } else { s = s - 1; }
    }
    print(s);
}
"#,
        )
        .unwrap();
        let vm = compile(&p).unwrap();
        let spec = InputSpec::new();
        let (prof_a, _, ret_a) = run_vm(&vm, &spec, NullTracer).unwrap();
        let (prof_b, _, ret_b, iprof) =
            run_vm_profiled(&vm, &spec, NullTracer, Limits::default(), crate::DEFAULT_SEED).unwrap();
        assert_eq!(ret_a.to_bits(), ret_b.to_bits());
        assert_eq!(prof_a.printed, prof_b.printed);
        assert_eq!(prof_a.stmt_ops, prof_b.stmt_ops);
        // opcode totals tie out against the semantic profile
        let total = iprof.total();
        assert!(total > 0);
        assert_eq!(iprof.ranked_ops().iter().map(|(_, n)| n).sum::<u64>(), total);
        // every instruction except the first has a predecessor
        assert_eq!(iprof.ranked_pairs().iter().map(|(_, n)| n).sum::<u64>(), total - 1);
        let stmt_execs: u64 = prof_b.stmt_exec.values().sum();
        assert_eq!(iprof.count_of("StmtEnter"), stmt_execs);
        let loads: u64 = prof_b.stmt_ops.values().map(|c| c.loads).sum();
        let stores: u64 = prof_b.stmt_ops.values().map(|c| c.stores).sum();
        assert_eq!(iprof.count_of("LoadElem"), loads);
        assert_eq!(iprof.count_of("StoreElem"), stores);
        let lib_calls: u64 = prof_b.lib_calls.values().sum();
        assert_eq!(iprof.count_of("Lib"), lib_calls);
    }

    #[test]
    fn ranked_reports_are_sorted_and_deterministic() {
        let p = parse("fn main() { let s = 0; for i in 0 .. 100 { s = s + i; } print(s); }").unwrap();
        let vm = compile(&p).unwrap();
        let run = || {
            let (_, _, _, i) = run_vm_profiled(&vm, &InputSpec::new(), NullTracer, Limits::default(), 42).unwrap();
            i
        };
        let a = run();
        let b = run();
        assert_eq!(a, b, "profiles must be run-to-run identical");
        let ops = a.ranked_ops();
        assert!(ops.windows(2).all(|w| w[0].1 > w[1].1 || (w[0].1 == w[1].1 && w[0].0 < w[1].0)), "{ops:?}");
        let pairs = a.ranked_pairs();
        assert!(pairs.windows(2).all(|w| w[0].1 >= w[1].1), "{pairs:?}");
        // the hot loop body dominates: IterTick appears 100 times
        assert_eq!(a.count_of("IterTick"), 100);
    }

    #[test]
    fn observed_run_routes_counters_through_the_recorder() {
        let p = parse("fn main() { let s = 0; for i in 0 .. 10 { s = s + i; } print(s); }").unwrap();
        let vm = compile(&p).unwrap();
        let rec = xflow_obs::CollectingRecorder::new();
        let (_, _, r1) =
            run_vm_observed(&vm, &InputSpec::new(), NullTracer, Limits::default(), crate::DEFAULT_SEED, &rec).unwrap();
        assert!(rec.counter_value("vm.instructions") > 0);
        assert_eq!(rec.counter_value("vm.op.IterTick"), 10);
        assert!(rec.counter_value("vm.pair.StmtEnter.LoadScalar") > 0 || rec.counter_value("vm.instructions") > 0);
        // noop recorder path still runs correctly (and skips profiling)
        let (_, _, r2) = run_vm_observed(
            &vm,
            &InputSpec::new(),
            NullTracer,
            Limits::default(),
            crate::DEFAULT_SEED,
            &xflow_obs::NoopRecorder,
        )
        .unwrap();
        assert_eq!(r1.to_bits(), r2.to_bits());
    }

    #[test]
    fn op_kind_names_cover_every_variant() {
        // spot-check the dense index table stays aligned with the enum
        assert_eq!(OP_KIND_NAMES.len(), NUM_OP_KINDS);
        assert_eq!(op_kind(&Op::Num(0.0)), 0);
        assert_eq!(OP_KIND_NAMES[op_kind(&Op::Ret)], "Ret");
        assert_eq!(OP_KIND_NAMES[op_kind(&Op::Pop)], "Pop");
        assert_eq!(OP_KIND_NAMES[op_kind(&Op::JumpIfGeRaw { cur: 0, hi: 0, target: 0 })], "JumpIfGeRaw");
        let mut seen = std::collections::HashSet::new();
        for n in OP_KIND_NAMES {
            assert!(seen.insert(n), "duplicate kind name {n}");
        }
    }

    #[test]
    fn kind_constants_match_op_kind() {
        assert_eq!(kind::NUM, op_kind(&Op::Num(0.0)));
        assert_eq!(kind::LOAD_SCALAR, op_kind(&Op::LoadScalar(0)));
        assert_eq!(kind::STORE_SLOT, op_kind(&Op::StoreSlot(0)));
        assert_eq!(kind::LOAD_ELEM, op_kind(&Op::LoadElem(0)));
        assert_eq!(kind::STORE_ELEM, op_kind(&Op::StoreElem(0)));
        assert_eq!(kind::BIN, op_kind(&Op::Bin { op: BinOp::Add, idx_ctx: false }));
        assert_eq!(kind::JUMP, op_kind(&Op::Jump(0)));
        assert_eq!(kind::STMT_ENTER, op_kind(&Op::StmtEnter(MStmtId(0))));
        assert_eq!(kind::ITER_TICK, op_kind(&Op::IterTick(MStmtId(0))));
        assert_eq!(kind::ADVANCE_RAW, op_kind(&Op::AdvanceRaw { cur: 0, step: 0 }));
    }

    #[test]
    fn fused_dispatch_accounts_constituents_identically() {
        let p = parse("fn main() { let s = 0; for i in 0 .. 50 { s = s + i * 2.0; } print(s); }").unwrap();
        let vm = compile(&p).unwrap();
        let fused = crate::fuse::fuse(&vm);
        assert!(fused.code_len() < vm.code_len());
        let (prof_a, _, ret_a, ia) =
            run_vm_profiled(&vm, &InputSpec::new(), NullTracer, Limits::default(), crate::DEFAULT_SEED).unwrap();
        let (prof_b, _, ret_b, ib) =
            run_vm_profiled(&fused, &InputSpec::new(), NullTracer, Limits::default(), crate::DEFAULT_SEED).unwrap();
        assert_eq!(ret_a.to_bits(), ret_b.to_bits());
        assert_eq!(prof_a.printed, prof_b.printed);
        assert_eq!(prof_a.stmt_ops, prof_b.stmt_ops);
        assert_eq!(prof_a.stmt_exec, prof_b.stmt_exec);
        assert_eq!(prof_a.loops, prof_b.loops);
        // the observed base-opcode stream is fusion-invariant...
        assert!(ia.stream_eq(&ib));
        assert_eq!(ia.ranked_ops(), ib.ranked_ops());
        assert_eq!(ia.ranked_pairs(), ib.ranked_pairs());
        assert_eq!(ia.total(), ib.total());
        // ...while the side-band fused counters differ: none unfused,
        // one per dispatched superinstruction on the fused program
        assert_eq!(ia.fused_dispatches(), 0);
        assert!(ib.fused_dispatches() > 0);
        assert!(!ia.stream_eq(&InstrProfile::new()));
        // side-band counters flush under their own prefix
        let rec = xflow_obs::CollectingRecorder::new();
        ib.flush_to(&rec);
        let fused_total: u64 = ib.ranked_fused().iter().map(|(_, n)| n).sum();
        assert_eq!(fused_total, ib.fused_dispatches());
        assert_eq!(rec.counter_value("vm.instructions"), ib.total());
        let side_band = rec.counters_with_prefix("vm.fused.");
        assert_eq!(side_band.iter().map(|(_, n)| n).sum::<u64>(), ib.fused_dispatches());
        assert!(side_band.iter().all(|(k, _)| k.strip_prefix("vm.fused.").is_some()));
    }

    #[test]
    fn inputs_resolve_at_runtime_not_compile_time() {
        let p = parse(r#"fn main() { return input("N", 5); }"#).unwrap();
        let vm = compile(&p).unwrap();
        let (_, _, a) = run_vm(&vm, &InputSpec::new(), NullTracer).unwrap();
        let (_, _, b) = run_vm(&vm, &InputSpec::from_pairs([("N", 9.0)]), NullTracer).unwrap();
        assert_eq!(a, 5.0);
        assert_eq!(b, 9.0);
    }
}
