//! Source-to-skeleton translation — the application analysis engine.
//!
//! This is the reproduction of the paper's ROSE-based engine (Section III-B):
//! a static pass over minilang source that emits a code skeleton, combined
//! with the branch [`Profile`] of one local run to annotate data-dependent
//! control flow.
//!
//! ## Translation rules
//!
//! * Runs of simple statements become one `comp` block whose operation
//!   counts are derived statically using the same accounting rules as the
//!   interpreter (flops/divs in value position, iops in index position,
//!   loads/stores for element accesses).
//! * `for` loops with *modelable* bounds (arithmetic over tracked scalars)
//!   become skeleton `loop`s with symbolic bounds; loops with data-dependent
//!   bounds and all `while` loops become `while trips(...)` with the
//!   profiled mean trip count.
//! * `if` arms with modelable comparisons become deterministic conditions;
//!   data-dependent arms get the profiled conditional probability (the
//!   probability the arm is taken given earlier arms were not).
//! * Math builtins (`exp`, `rnd`, …) become `lib` statements; user calls in
//!   expressions are hoisted to skeleton `call` statements.
//! * Scalars whose values the skeleton can compute (arithmetic over inputs,
//!   parameters, and other tracked scalars) are kept live via skeleton
//!   `let`s; arrays are represented by their lengths (`a` → `a__len`, and
//!   array arguments pass lengths).
//!
//! The returned [`Translation`] carries the statement mapping used to join
//! model-projected hot spots with simulator-measured ones.

use crate::ast as ml;
use crate::interp::Profile;
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, HashSet};
use std::fmt;
use xflow_skeleton as sk;
use xflow_skeleton::expr::Expr as SkExpr;

/// Result of translating a minilang program to a skeleton.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Translation {
    /// The generated skeleton (BST).
    pub skeleton: sk::Program,
    /// Minilang statement → skeleton statement carrying its cost.
    pub map: HashMap<ml::MStmtId, sk::StmtId>,
    /// Input names referenced by the program with their defaults.
    pub inputs: HashMap<String, f64>,
    /// Non-fatal modeling notes (unmodelable expressions, fallbacks used).
    pub warnings: Vec<String>,
}

/// A structural failure while translating minilang into a skeleton.
///
/// Warnings (unmodelable expressions, profile fallbacks) never error; they
/// land in [`Translation::warnings`]. Errors are reserved for programs the
/// skeleton representation cannot express at all.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TranslateError {
    /// Two minilang functions share a name; the skeleton's function table
    /// is keyed by name and cannot hold both.
    DuplicateFunction { function: String },
    /// The skeleton builder rejected a generated function for another reason.
    Skeleton { function: String, message: String },
}

impl fmt::Display for TranslateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TranslateError::DuplicateFunction { function } => {
                write!(f, "duplicate function `{function}` in translated program")
            }
            TranslateError::Skeleton { function, message } => {
                write!(f, "skeleton construction failed for `{function}`: {message}")
            }
        }
    }
}

impl std::error::Error for TranslateError {}

/// Translate a minilang program into a skeleton, folding in profiled branch
/// and loop statistics.
pub fn translate(prog: &ml::Program, profile: &Profile) -> Result<Translation, TranslateError> {
    let mut tr = Translator {
        profile,
        out: sk::Program::new(),
        map: HashMap::new(),
        inputs: HashMap::new(),
        warnings: Vec::new(),
    };
    // Determine which parameters of each function are arrays (receive
    // lengths in the skeleton) by propagating from call sites.
    let array_params = infer_array_params(prog);
    for f in &prog.functions {
        let mut ctx = FnCtx {
            tracked: f.params.iter().cloned().collect(),
            arrays: array_params.get(&f.name).cloned().unwrap_or_default(),
        };
        let body = tr.block(&f.body, &mut ctx);
        tr.out
            .add_function(sk::Function { id: sk::FuncId(0), name: f.name.clone(), params: f.params.clone(), body })
            .map_err(|e| {
            let message = e.to_string();
            if message.contains("duplicate") {
                TranslateError::DuplicateFunction { function: f.name.clone() }
            } else {
                TranslateError::Skeleton { function: f.name.clone(), message }
            }
        })?;
    }
    Ok(Translation { skeleton: tr.out, map: tr.map, inputs: tr.inputs, warnings: tr.warnings })
}

/// Which parameters of each function are bound to arrays at some call site.
fn infer_array_params(prog: &ml::Program) -> HashMap<String, HashSet<String>> {
    // Seed: locally declared arrays per function.
    let mut local_arrays: HashMap<&str, HashSet<String>> = HashMap::new();
    for f in &prog.functions {
        let mut set = HashSet::new();
        collect_local_arrays(&f.body, &mut set);
        local_arrays.insert(f.name.as_str(), set);
    }
    // Fixed point: a param is an array if any caller passes an array name.
    let mut result: HashMap<String, HashSet<String>> = HashMap::new();
    loop {
        let mut changed = false;
        for f in &prog.functions {
            let known: HashSet<String> = local_arrays[f.name.as_str()]
                .iter()
                .cloned()
                .chain(result.get(&f.name).cloned().unwrap_or_default())
                .collect();
            let mut sites = Vec::new();
            collect_calls(&f.body, &mut sites);
            for (callee, args) in sites {
                let Some(cf) = prog.function(&callee) else { continue };
                for (i, a) in args.iter().enumerate() {
                    if let ml::Expr::Var(v) = a {
                        if known.contains(v) {
                            if let Some(p) = cf.params.get(i) {
                                if result.entry(callee.clone()).or_default().insert(p.clone()) {
                                    changed = true;
                                }
                            }
                        }
                    }
                }
            }
        }
        if !changed {
            break;
        }
    }
    result
}

fn collect_local_arrays(b: &ml::Block, out: &mut HashSet<String>) {
    for s in &b.stmts {
        match &s.kind {
            ml::StmtKind::LetArray { name, .. } => {
                out.insert(name.clone());
            }
            ml::StmtKind::For { body, .. } | ml::StmtKind::While { body, .. } => collect_local_arrays(body, out),
            ml::StmtKind::If { arms, else_body } => {
                for (_, b) in arms {
                    collect_local_arrays(b, out);
                }
                if let Some(e) = else_body {
                    collect_local_arrays(e, out);
                }
            }
            _ => {}
        }
    }
}

fn collect_calls(b: &ml::Block, out: &mut Vec<(String, Vec<ml::Expr>)>) {
    fn scan_expr(e: &ml::Expr, out: &mut Vec<(String, Vec<ml::Expr>)>) {
        match e {
            ml::Expr::CallFn(n, args) => {
                out.push((n.clone(), args.clone()));
                for a in args {
                    scan_expr(a, out);
                }
            }
            ml::Expr::Bin(l, _, r) | ml::Expr::Cmp(l, _, r) | ml::Expr::And(l, r) | ml::Expr::Or(l, r) => {
                scan_expr(l, out);
                scan_expr(r, out);
            }
            ml::Expr::Neg(i) | ml::Expr::Not(i) | ml::Expr::Index(_, i) => scan_expr(i, out),
            ml::Expr::Call(_, args) => {
                for a in args {
                    scan_expr(a, out);
                }
            }
            _ => {}
        }
    }
    for s in &b.stmts {
        match &s.kind {
            ml::StmtKind::CallProc { name, args } => {
                out.push((name.clone(), args.clone()));
                for a in args {
                    scan_expr(a, out);
                }
            }
            ml::StmtKind::LetScalar { init: e, .. }
            | ml::StmtKind::AssignScalar { value: e, .. }
            | ml::StmtKind::Print { expr: e } => scan_expr(e, out),
            ml::StmtKind::AssignIndex { index, value, .. } | ml::StmtKind::UpdateIndex { index, value, .. } => {
                scan_expr(index, out);
                scan_expr(value, out);
            }
            ml::StmtKind::LetArray { len, .. } => scan_expr(len, out),
            ml::StmtKind::Return { value: Some(e) } => scan_expr(e, out),
            ml::StmtKind::For { lo, hi, step, body, .. } => {
                scan_expr(lo, out);
                scan_expr(hi, out);
                scan_expr(step, out);
                collect_calls(body, out);
            }
            ml::StmtKind::While { cond, body } => {
                scan_expr(cond, out);
                collect_calls(body, out);
            }
            ml::StmtKind::If { arms, else_body } => {
                for (c, b) in arms {
                    scan_expr(c, out);
                    collect_calls(b, out);
                }
                if let Some(e) = else_body {
                    collect_calls(e, out);
                }
            }
            _ => {}
        }
    }
}

/// Scalars assigned anywhere in a block, through nested control flow.
/// A loop body re-executes: a scalar it assigns holds a different value on
/// every iteration after the first, so the entry-time tracked value must
/// not model conditions or bounds inside (or after) the loop.
fn assigned_scalars(b: &ml::Block, out: &mut HashSet<String>) {
    for s in &b.stmts {
        match &s.kind {
            ml::StmtKind::AssignScalar { name, .. } => {
                out.insert(name.clone());
            }
            ml::StmtKind::For { body, .. } | ml::StmtKind::While { body, .. } => assigned_scalars(body, out),
            ml::StmtKind::If { arms, else_body } => {
                for (_, b) in arms {
                    assigned_scalars(b, out);
                }
                if let Some(e) = else_body {
                    assigned_scalars(e, out);
                }
            }
            _ => {}
        }
    }
}

/// Per-function translation context.
/// Whether the expression contains a `%` anywhere (only `Bin`/`Neg` can
/// nest other modelable expressions; everything else is unmodelable and
/// makes the caller bail regardless).
fn contains_mod(e: &ml::Expr) -> bool {
    match e {
        ml::Expr::Bin(l, op, r) => *op == ml::BinOp::Mod || contains_mod(l) || contains_mod(r),
        ml::Expr::Neg(i) => contains_mod(i),
        _ => false,
    }
}

struct FnCtx {
    /// Scalars whose values are modelable in the skeleton.
    tracked: HashSet<String>,
    /// Names known to be arrays (locals and array-bound params).
    arrays: HashSet<String>,
}

/// Statically counted cost of a straight-line region, per single execution.
#[derive(Debug, Clone, Default)]
struct StaticOps {
    flops: f64,
    iops: f64,
    divs: f64,
    loads: f64,
    stores: f64,
    /// Library calls by name.
    libs: HashMap<&'static str, f64>,
    /// User calls hoisted out of expressions.
    calls: Vec<(String, Vec<ml::Expr>)>,
}

impl StaticOps {
    fn is_empty_ops(&self) -> bool {
        self.flops == 0.0 && self.iops == 0.0 && self.loads == 0.0 && self.stores == 0.0
    }
}

struct Translator<'p> {
    profile: &'p Profile,
    out: sk::Program,
    map: HashMap<ml::MStmtId, sk::StmtId>,
    inputs: HashMap<String, f64>,
    warnings: Vec<String>,
}

impl<'p> Translator<'p> {
    fn block(&mut self, b: &ml::Block, ctx: &mut FnCtx) -> sk::Block {
        let mut out = Vec::new();
        let mut run: StaticOps = StaticOps::default();
        let mut run_stmts: Vec<ml::MStmtId> = Vec::new();
        let mut run_label: Option<String> = None;
        let mut pending_lets: Vec<(String, SkExpr)> = Vec::new();

        macro_rules! flush_run {
            () => {
                self.flush_run(&mut run, &mut run_stmts, &mut run_label, &mut pending_lets, &mut out)
            };
        }

        for s in &b.stmts {
            match &s.kind {
                // --- simple statements accumulate into the current run ----
                ml::StmtKind::LetScalar { name, init } | ml::StmtKind::AssignScalar { name, value: init } => {
                    self.count_expr(init, false, &mut run, ctx);
                    if run_label.is_none() {
                        run_label = s.label.clone();
                    }
                    run_stmts.push(s.id);
                    self.collect_inputs(init);
                    match self.model_expr(init, ctx) {
                        Some(e) => {
                            pending_lets.push((name.clone(), e));
                            ctx.tracked.insert(name.clone());
                        }
                        None => {
                            ctx.tracked.remove(name);
                        }
                    }
                }
                ml::StmtKind::LetArray { name, len } => {
                    self.count_expr(len, true, &mut run, ctx);
                    if run_label.is_none() {
                        run_label = s.label.clone();
                    }
                    run_stmts.push(s.id);
                    self.collect_inputs(len);
                    ctx.arrays.insert(name.clone());
                    let len_var = format!("{name}__len");
                    match self.model_expr(len, ctx) {
                        Some(e) => {
                            pending_lets.push((len_var.clone(), e));
                            ctx.tracked.insert(len_var);
                        }
                        None => {
                            self.warnings.push(format!("array `{name}` has unmodelable length"));
                        }
                    }
                }
                ml::StmtKind::AssignIndex { name: _, index, value } => {
                    self.count_expr(index, true, &mut run, ctx);
                    self.count_expr(value, false, &mut run, ctx);
                    run.stores += 1.0;
                    if run_label.is_none() {
                        run_label = s.label.clone();
                    }
                    run_stmts.push(s.id);
                }
                ml::StmtKind::UpdateIndex { name: _, index, value, .. } => {
                    self.count_expr(index, true, &mut run, ctx);
                    self.count_expr(value, false, &mut run, ctx);
                    run.loads += 1.0;
                    run.stores += 1.0;
                    run.flops += 1.0;
                    if run_label.is_none() {
                        run_label = s.label.clone();
                    }
                    run_stmts.push(s.id);
                }
                ml::StmtKind::Print { expr } => {
                    self.count_expr(expr, false, &mut run, ctx);
                    run_stmts.push(s.id);
                }
                ml::StmtKind::CallProc { name, args } => {
                    // argument expressions are evaluated by the caller
                    for a in args {
                        self.count_expr(a, false, &mut run, ctx);
                    }
                    flush_run!();
                    let sk_args = self.call_args(args, ctx);
                    let id = self.out.fresh_stmt_id();
                    self.map.insert(s.id, id);
                    out.push(sk::Stmt {
                        id,
                        label: s.label.clone(),
                        kind: sk::StmtKind::Call { func: name.clone(), args: sk_args },
                    });
                }
                // --- control flow -----------------------------------------
                ml::StmtKind::For { var, lo, hi, step, parallel, body } => {
                    self.count_expr(lo, true, &mut run, ctx);
                    self.count_expr(hi, true, &mut run, ctx);
                    self.count_expr(step, true, &mut run, ctx);
                    flush_run!();
                    self.collect_inputs(lo);
                    self.collect_inputs(hi);
                    let id = self.out.fresh_stmt_id();
                    self.map.insert(s.id, id);
                    let bounds = (self.model_expr(lo, ctx), self.model_expr(hi, ctx), self.model_expr(step, ctx));
                    // scalars the body assigns are loop-carried: their
                    // entry value must not model anything inside the body
                    let mut carried = HashSet::new();
                    assigned_scalars(body, &mut carried);
                    let kind = if let (Some(lo), Some(hi), Some(st)) = bounds {
                        // loop var becomes modelable inside the body
                        ctx.tracked.insert(var.clone());
                        for v in &carried {
                            if v != var {
                                ctx.tracked.remove(v);
                            }
                        }
                        let mut body = self.block(body, ctx);
                        self.fold_loop_bookkeeping(s.id, &mut body);
                        sk::StmtKind::Loop { var: var.clone(), lo, hi, step: st, parallel: *parallel, body }
                    } else {
                        let trips = self.profiled_trips(s.id);
                        ctx.tracked.remove(var);
                        for v in &carried {
                            ctx.tracked.remove(v);
                        }
                        let mut body = self.block(body, ctx);
                        self.fold_loop_bookkeeping(s.id, &mut body);
                        sk::StmtKind::While { trips: SkExpr::Num(trips), body }
                    };
                    out.push(sk::Stmt { id, label: s.label.clone(), kind });
                }
                ml::StmtKind::While { cond, body } => {
                    flush_run!();
                    let id = self.out.fresh_stmt_id();
                    self.map.insert(s.id, id);
                    let trips = self.profiled_trips(s.id);
                    // scalars the body assigns are loop-carried (see `For`)
                    let mut carried = HashSet::new();
                    assigned_scalars(body, &mut carried);
                    for v in &carried {
                        ctx.tracked.remove(v);
                    }
                    // condition cost is paid every iteration: prepend it
                    let mut cond_ops = StaticOps::default();
                    self.count_expr(cond, false, &mut cond_ops, ctx);
                    let mut sk_body_stmts = Vec::new();
                    if !cond_ops.is_empty_ops() || !cond_ops.libs.is_empty() {
                        self.emit_ops(&cond_ops, &[s.id], None, &mut sk_body_stmts);
                    }
                    let inner = self.block(body, ctx);
                    sk_body_stmts.extend(inner.stmts);
                    out.push(sk::Stmt {
                        id,
                        label: s.label.clone(),
                        kind: sk::StmtKind::While {
                            trips: SkExpr::Num(trips),
                            body: sk::Block { stmts: sk_body_stmts },
                        },
                    });
                }
                ml::StmtKind::If { arms, else_body } => {
                    // condition evaluation cost precedes the branch
                    let mut cond_ops = StaticOps::default();
                    for (c, _) in arms {
                        self.count_expr(c, false, &mut cond_ops, ctx);
                    }
                    if !cond_ops.is_empty_ops() || !cond_ops.libs.is_empty() || !cond_ops.calls.is_empty() {
                        run.flops += cond_ops.flops;
                        run.iops += cond_ops.iops;
                        run.divs += cond_ops.divs;
                        run.loads += cond_ops.loads;
                        run.stores += cond_ops.stores;
                        for (k, v) in cond_ops.libs {
                            *run.libs.entry(k).or_insert(0.0) += v;
                        }
                        run.calls.extend(cond_ops.calls);
                        run_stmts.push(s.id);
                    }
                    flush_run!();
                    let id = self.out.fresh_stmt_id();
                    self.map.entry(s.id).or_insert(id);
                    let stats = self.profile.branches.get(&s.id);
                    let mut remaining = 1.0f64;
                    let mut sk_arms = Vec::new();
                    for (i, (c, arm_body)) in arms.iter().enumerate() {
                        let cond = match self.model_cond(c, ctx) {
                            Some(cond) => cond,
                            None => {
                                // conditional probability given earlier arms not taken
                                let p = match stats {
                                    Some(st) if st.evals() > 0 => {
                                        let taken = st.arm_hits.get(i).copied().unwrap_or(0) as f64;
                                        let total = st.evals() as f64;
                                        let marginal = taken / total;
                                        if remaining > 1e-12 {
                                            (marginal / remaining).min(1.0)
                                        } else {
                                            0.0
                                        }
                                    }
                                    _ => 0.5, // unprofiled data-dependent branch
                                };
                                remaining *= 1.0 - p;
                                sk::Cond::Prob(SkExpr::Num(p))
                            }
                        };
                        // branch arms fork the tracked-variable context; keep
                        // translation per-arm on a clone so one arm's
                        // untracking does not poison the other.
                        let mut arm_ctx = FnCtx { tracked: ctx.tracked.clone(), arrays: ctx.arrays.clone() };
                        let body = self.block(arm_body, &mut arm_ctx);
                        // variables untracked in the arm stay untracked after
                        for lost in ctx.tracked.clone() {
                            if !arm_ctx.tracked.contains(&lost) {
                                ctx.tracked.remove(&lost);
                            }
                        }
                        sk_arms.push(sk::BranchArm { cond, body });
                    }
                    let else_blk = match else_body {
                        Some(e) => {
                            let mut arm_ctx = FnCtx { tracked: ctx.tracked.clone(), arrays: ctx.arrays.clone() };
                            let blk = self.block(e, &mut arm_ctx);
                            for lost in ctx.tracked.clone() {
                                if !arm_ctx.tracked.contains(&lost) {
                                    ctx.tracked.remove(&lost);
                                }
                            }
                            Some(blk)
                        }
                        None => None,
                    };
                    out.push(sk::Stmt {
                        id,
                        label: s.label.clone(),
                        kind: sk::StmtKind::Branch { arms: sk_arms, else_body: else_blk },
                    });
                }
                ml::StmtKind::Return { value } => {
                    if let Some(v) = value {
                        self.count_expr(v, false, &mut run, ctx);
                        run_stmts.push(s.id);
                    }
                    flush_run!();
                    let id = self.out.fresh_stmt_id();
                    self.map.insert(s.id, id);
                    out.push(sk::Stmt {
                        id,
                        label: s.label.clone(),
                        kind: sk::StmtKind::Return { prob: SkExpr::Num(1.0) },
                    });
                }
                ml::StmtKind::Break => {
                    flush_run!();
                    let id = self.out.fresh_stmt_id();
                    self.map.insert(s.id, id);
                    out.push(sk::Stmt {
                        id,
                        label: s.label.clone(),
                        kind: sk::StmtKind::Break { prob: SkExpr::Num(1.0) },
                    });
                }
                ml::StmtKind::Continue => {
                    flush_run!();
                    let id = self.out.fresh_stmt_id();
                    self.map.insert(s.id, id);
                    out.push(sk::Stmt {
                        id,
                        label: s.label.clone(),
                        kind: sk::StmtKind::Continue { prob: SkExpr::Num(1.0) },
                    });
                }
            }
        }
        self.flush_run(&mut run, &mut run_stmts, &mut run_label, &mut pending_lets, &mut out);
        sk::Block { stmts: out }
    }

    /// Emit the accumulated straight-line region: hoisted calls, lib calls,
    /// `let`s, and one `comp` block; map all contributing statements to the
    /// comp (or to the first emitted statement when there are no ops).
    fn flush_run(
        &mut self,
        run: &mut StaticOps,
        run_stmts: &mut Vec<ml::MStmtId>,
        run_label: &mut Option<String>,
        pending_lets: &mut Vec<(String, SkExpr)>,
        out: &mut Vec<sk::Stmt>,
    ) {
        let ops = std::mem::take(run);
        let stmts = std::mem::take(run_stmts);
        let label = run_label.take();
        let lets = std::mem::take(pending_lets);
        if ops.is_empty_ops() && ops.libs.is_empty() && ops.calls.is_empty() && lets.is_empty() {
            return;
        }
        self.emit_ops_with_lets(&ops, &stmts, label, lets, out);
    }

    fn emit_ops(&mut self, ops: &StaticOps, stmts: &[ml::MStmtId], label: Option<String>, out: &mut Vec<sk::Stmt>) {
        self.emit_ops_with_lets(ops, stmts, label, Vec::new(), out);
    }

    fn emit_ops_with_lets(
        &mut self,
        ops: &StaticOps,
        stmts: &[ml::MStmtId],
        label: Option<String>,
        lets: Vec<(String, SkExpr)>,
        out: &mut Vec<sk::Stmt>,
    ) {
        for (var, value) in lets {
            let id = self.out.fresh_stmt_id();
            out.push(sk::Stmt { id, label: None, kind: sk::StmtKind::Let { var, value } });
        }
        // hoisted user calls (cost lives in the callee)
        for (func, args) in &ops.calls {
            let id = self.out.fresh_stmt_id();
            let ctx_dummy = FnCtx { tracked: HashSet::new(), arrays: HashSet::new() };
            let _ = ctx_dummy; // call args resolved best-effort below
            let sk_args: Vec<SkExpr> = args.iter().map(|a| self.best_effort_expr(a)).collect();
            out.push(sk::Stmt { id, label: None, kind: sk::StmtKind::Call { func: func.clone(), args: sk_args } });
        }
        let mut lib_names: Vec<&&str> = ops.libs.keys().collect();
        lib_names.sort_unstable();
        for name in lib_names {
            let count = ops.libs[*name];
            let id = self.out.fresh_stmt_id();
            out.push(sk::Stmt {
                id,
                label: None,
                kind: sk::StmtKind::LibCall {
                    func: name.to_string(),
                    calls: SkExpr::Num(count),
                    work: SkExpr::Num(1.0),
                },
            });
        }
        if !ops.is_empty_ops() {
            let id = self.out.fresh_stmt_id();
            for &m in stmts {
                self.map.entry(m).or_insert(id);
            }
            out.push(sk::Stmt {
                id,
                label,
                kind: sk::StmtKind::Comp(sk::OpStats {
                    flops: SkExpr::Num(ops.flops),
                    iops: SkExpr::Num(ops.iops),
                    loads: SkExpr::Num(ops.loads),
                    stores: SkExpr::Num(ops.stores),
                    divs: SkExpr::Num(ops.divs),
                    dtype_bytes: SkExpr::Num(8.0),
                }),
            });
        } else if let Some(first) = out.last() {
            let id = first.id;
            for &m in stmts {
                self.map.entry(m).or_insert(id);
            }
        }
    }

    /// Per-iteration loop control (compare + increment) is attributed to
    /// the loop's first `comp` block, matching how compiled code folds the
    /// bookkeeping into the body basic block. The measured-profile mapping
    /// for the loop statement follows the same convention.
    fn fold_loop_bookkeeping(&mut self, loop_mini_id: ml::MStmtId, body: &mut sk::Block) {
        for st in &mut body.stmts {
            if let sk::StmtKind::Comp(ops) = &mut st.kind {
                ops.iops =
                    SkExpr::Binary(Box::new(ops.iops.clone()), sk::BinOp::Add, Box::new(SkExpr::Num(2.0))).simplify();
                self.map.insert(loop_mini_id, st.id);
                return;
            }
        }
        // no comp in the body: the loop keeps its own mapping
    }

    /// Mean trips of a loop from the profile (0 when never executed).
    fn profiled_trips(&mut self, id: ml::MStmtId) -> f64 {
        match self.profile.loops.get(&id) {
            Some(l) => l.avg_trips(),
            None => {
                self.warnings.push(format!("loop {id:?} was never executed during profiling; assuming 0 trips"));
                0.0
            }
        }
    }

    /// Record `input(...)` references so callers know the program's knobs.
    fn collect_inputs(&mut self, e: &ml::Expr) {
        match e {
            ml::Expr::Input(name, default) => {
                self.inputs.entry(name.clone()).or_insert(*default);
            }
            ml::Expr::Bin(l, _, r) | ml::Expr::Cmp(l, _, r) | ml::Expr::And(l, r) | ml::Expr::Or(l, r) => {
                self.collect_inputs(l);
                self.collect_inputs(r);
            }
            ml::Expr::Neg(i) | ml::Expr::Not(i) | ml::Expr::Index(_, i) => self.collect_inputs(i),
            ml::Expr::Call(_, args) | ml::Expr::CallFn(_, args) => {
                for a in args {
                    self.collect_inputs(a);
                }
            }
            _ => {}
        }
    }

    /// Count the static cost of evaluating `e` once, mirroring the
    /// interpreter's accounting.
    #[allow(clippy::only_used_in_recursion)] // ctx is threaded for future per-fn cost rules
    fn count_expr(&mut self, e: &ml::Expr, idx_ctx: bool, ops: &mut StaticOps, ctx: &FnCtx) {
        match e {
            ml::Expr::Num(_) | ml::Expr::Var(_) | ml::Expr::Len(_) | ml::Expr::Input(..) => {}
            ml::Expr::Index(_, idx) => {
                ops.loads += 1.0;
                self.count_expr(idx, true, ops, ctx);
            }
            ml::Expr::Bin(l, op, r) => {
                if idx_ctx {
                    ops.iops += 1.0;
                } else {
                    ops.flops += 1.0;
                    if *op == ml::BinOp::Div {
                        ops.divs += 1.0;
                    }
                }
                self.count_expr(l, idx_ctx, ops, ctx);
                self.count_expr(r, idx_ctx, ops, ctx);
            }
            ml::Expr::Neg(i) => {
                if idx_ctx {
                    ops.iops += 1.0;
                } else {
                    ops.flops += 1.0;
                }
                self.count_expr(i, idx_ctx, ops, ctx);
            }
            ml::Expr::Cmp(l, _, r) => {
                ops.flops += 1.0;
                self.count_expr(l, idx_ctx, ops, ctx);
                self.count_expr(r, idx_ctx, ops, ctx);
            }
            ml::Expr::And(l, r) | ml::Expr::Or(l, r) => {
                ops.iops += 1.0;
                self.count_expr(l, idx_ctx, ops, ctx);
                // short-circuit: statically assume the right side runs
                self.count_expr(r, idx_ctx, ops, ctx);
            }
            ml::Expr::Not(i) => {
                ops.iops += 1.0;
                self.count_expr(i, idx_ctx, ops, ctx);
            }
            ml::Expr::Call(b, args) => {
                for a in args {
                    self.count_expr(a, idx_ctx, ops, ctx);
                }
                match b.lib_name() {
                    Some(name) => *ops.libs.entry(name).or_insert(0.0) += 1.0,
                    None => ops.flops += 1.0, // abs/min/max/floor
                }
            }
            ml::Expr::CallFn(name, args) => {
                for a in args {
                    self.count_expr(a, idx_ctx, ops, ctx);
                }
                ops.calls.push((name.clone(), args.clone()));
            }
        }
    }

    /// Translate an expression into the skeleton language if every leaf is
    /// modelable; `None` marks a data-dependent value.
    fn model_expr(&self, e: &ml::Expr, ctx: &FnCtx) -> Option<SkExpr> {
        match e {
            ml::Expr::Num(n) => Some(SkExpr::Num(*n)),
            ml::Expr::Var(v) => {
                if ctx.tracked.contains(v) {
                    Some(SkExpr::Var(v.clone()))
                } else {
                    None
                }
            }
            ml::Expr::Input(name, _) => Some(SkExpr::Var(name.clone())),
            ml::Expr::Len(a) => {
                if ctx.arrays.contains(a) {
                    let len_var = format!("{a}__len");
                    if ctx.tracked.contains(&len_var) {
                        Some(SkExpr::Var(len_var))
                    } else if ctx.tracked.contains(a) {
                        // array param: the skeleton argument carries the length
                        Some(SkExpr::Var(a.clone()))
                    } else {
                        None
                    }
                } else if ctx.tracked.contains(a) {
                    Some(SkExpr::Var(a.clone()))
                } else {
                    None
                }
            }
            ml::Expr::Bin(l, op, r) => {
                let l = self.model_expr(l, ctx)?;
                let r = self.model_expr(r, ctx)?;
                let op = match op {
                    ml::BinOp::Add => sk::BinOp::Add,
                    ml::BinOp::Sub => sk::BinOp::Sub,
                    ml::BinOp::Mul => sk::BinOp::Mul,
                    ml::BinOp::Div => sk::BinOp::Div,
                    ml::BinOp::Mod => sk::BinOp::Mod,
                };
                Some(SkExpr::Binary(Box::new(l), op, Box::new(r)))
            }
            ml::Expr::Neg(i) => Some(SkExpr::Neg(Box::new(self.model_expr(i, ctx)?))),
            ml::Expr::Call(b, args) => {
                let name = match b {
                    ml::Builtin::Min => "min",
                    ml::Builtin::Max => "max",
                    ml::Builtin::Abs => "abs",
                    ml::Builtin::Floor => "floor",
                    ml::Builtin::Sqrt => "sqrt",
                    ml::Builtin::Pow => "pow",
                    _ => return None, // exp/log/sin/cos/rnd values are opaque
                };
                let args: Option<Vec<SkExpr>> = args.iter().map(|a| self.model_expr(a, ctx)).collect();
                Some(SkExpr::Call(name.to_string(), args?))
            }
            ml::Expr::Index(..)
            | ml::Expr::Cmp(..)
            | ml::Expr::And(..)
            | ml::Expr::Or(..)
            | ml::Expr::Not(..)
            | ml::Expr::CallFn(..) => None,
        }
    }

    /// Translate a branch condition; deterministic when modelable.
    fn model_cond(&self, e: &ml::Expr, ctx: &FnCtx) -> Option<sk::Cond> {
        if let ml::Expr::Cmp(l, op, r) = e {
            // `%` survives expression translation but is opaque to the
            // BET's affine range analysis (its cond_prob falls back to
            // 0.5); the profiled marginal is strictly more faithful, so
            // refuse to model comparisons containing it.
            if contains_mod(l) || contains_mod(r) {
                return None;
            }
            let lhs = self.model_expr(l, ctx)?;
            let rhs = self.model_expr(r, ctx)?;
            let op = match op {
                ml::CmpOp::Lt => sk::CmpOp::Lt,
                ml::CmpOp::Le => sk::CmpOp::Le,
                ml::CmpOp::Gt => sk::CmpOp::Gt,
                ml::CmpOp::Ge => sk::CmpOp::Ge,
                ml::CmpOp::Eq => sk::CmpOp::Eq,
                ml::CmpOp::Ne => sk::CmpOp::Ne,
            };
            return Some(sk::Cond::Cmp { lhs, op, rhs });
        }
        None
    }

    /// Call-site argument translation: arrays pass their lengths, modelable
    /// scalars pass symbolically, anything else degrades to 0.
    fn call_args(&mut self, args: &[ml::Expr], ctx: &FnCtx) -> Vec<SkExpr> {
        args.iter()
            .map(|a| {
                if let ml::Expr::Var(v) = a {
                    if ctx.arrays.contains(v) {
                        let len_var = format!("{v}__len");
                        return if ctx.tracked.contains(&len_var) {
                            SkExpr::Var(len_var)
                        } else if ctx.tracked.contains(v) {
                            SkExpr::Var(v.clone())
                        } else {
                            SkExpr::Num(0.0)
                        };
                    }
                }
                match self.model_expr(a, ctx) {
                    Some(e) => e,
                    None => {
                        self.warnings.push(format!("call argument `{a:?}` is data-dependent; passed as 0"));
                        SkExpr::Num(0.0)
                    }
                }
            })
            .collect()
    }

    /// Expression translation that never fails (for hoisted in-expression
    /// calls where the context set is not threaded through).
    fn best_effort_expr(&mut self, e: &ml::Expr) -> SkExpr {
        match e {
            ml::Expr::Num(n) => SkExpr::Num(*n),
            ml::Expr::Var(v) => SkExpr::Var(v.clone()),
            ml::Expr::Input(name, _) => SkExpr::Var(name.clone()),
            ml::Expr::Bin(l, op, r) => {
                let op = match op {
                    ml::BinOp::Add => sk::BinOp::Add,
                    ml::BinOp::Sub => sk::BinOp::Sub,
                    ml::BinOp::Mul => sk::BinOp::Mul,
                    ml::BinOp::Div => sk::BinOp::Div,
                    ml::BinOp::Mod => sk::BinOp::Mod,
                };
                SkExpr::Binary(Box::new(self.best_effort_expr(l)), op, Box::new(self.best_effort_expr(r)))
            }
            ml::Expr::Neg(i) => SkExpr::Neg(Box::new(self.best_effort_expr(i))),
            _ => SkExpr::Num(0.0),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interp::{profile, InputSpec};
    use crate::parser::parse;

    fn xlate(src: &str) -> Translation {
        xlate_with(src, &[])
    }

    fn xlate_with(src: &str, inputs: &[(&str, f64)]) -> Translation {
        let p = parse(src).unwrap();
        let prof = profile(&p, &InputSpec::from_pairs(inputs.iter().copied())).unwrap();
        translate(&p, &prof).unwrap()
    }

    #[test]
    fn straight_line_becomes_single_comp() {
        let t = xlate("fn main() { let a = zeros(8); a[0] = 1 + 2; a[1] = a[0] * 3; }");
        let text = sk::print(&t.skeleton);
        // one comp carrying 2 flops, 1 load, 2 stores
        assert!(text.contains("flops: 2"), "{text}");
        assert!(text.contains("loads: 1"), "{text}");
        assert!(text.contains("stores: 2"), "{text}");
    }

    #[test]
    fn modelable_for_becomes_loop_with_symbolic_bounds() {
        let t = xlate(r#"fn main() { let n = input("N", 8); let a = zeros(n); for i in 0 .. n { a[i] = 1; } }"#);
        let text = sk::print(&t.skeleton);
        assert!(text.contains("loop i = 0 .. n"), "{text}");
        assert_eq!(t.inputs["N"], 8.0);
    }

    #[test]
    fn data_dependent_loop_becomes_profiled_while() {
        let t = xlate("fn main() { let x = 16; while x > 1 { x = x / 2; } }");
        let text = sk::print(&t.skeleton);
        // 16 → 8 → 4 → 2 → 1: four iterations
        assert!(text.contains("while trips(4)"), "{text}");
    }

    #[test]
    fn data_dependent_branch_gets_profiled_probability() {
        let src = r#"
fn main() {
    let a = zeros(100);
    for i in 0 .. 100 { a[i] = i; }
    for i in 0 .. 100 {
        if a[i] < 25 { a[i] = 0; }
    }
}
"#;
        let t = xlate(src);
        let text = sk::print(&t.skeleton);
        assert!(text.contains("if prob(0.25)"), "{text}");
    }

    #[test]
    fn modelable_branch_stays_deterministic() {
        let t = xlate(r#"fn main() { let n = input("N", 10); if n < 100 { let x = 1; } }"#);
        let text = sk::print(&t.skeleton);
        assert!(text.contains("if (n < 100)"), "{text}");
    }

    #[test]
    fn lib_calls_emitted() {
        let t = xlate("fn main() { for i in 0 .. 4 { let x = exp(i) + rnd(); } }");
        let text = sk::print(&t.skeleton);
        assert!(text.contains("lib exp(1)"), "{text}");
        assert!(text.contains("lib rand(1)"), "{text}");
    }

    #[test]
    fn user_call_in_expression_is_hoisted() {
        let t = xlate("fn main() { let x = f(3) + 1; } fn f(v) { return v * 2; }");
        let text = sk::print(&t.skeleton);
        assert!(text.contains("call f(3)"), "{text}");
    }

    #[test]
    fn array_arguments_pass_lengths() {
        let src = r#"
fn main() { let n = input("N", 6); let a = zeros(n * 2); fill(a, n); }
fn fill(buf, n) { for i in 0 .. len(buf) { buf[i] = n; } }
"#;
        let t = xlate(src);
        let text = sk::print(&t.skeleton);
        assert!(text.contains("call fill(a__len, n)"), "{text}");
        // callee loops over its parameter as the length
        assert!(text.contains("loop i = 0 .. buf"), "{text}");
    }

    #[test]
    fn labels_carry_over() {
        let t = xlate("fn main() { let a = zeros(4); @hot: for i in 0 .. 4 { a[i] = i * 2.0; } }");
        assert!(t.skeleton.stmt_by_label("hot").is_some());
    }

    #[test]
    fn break_and_continue_translate_structurally() {
        let src = r#"
fn main() {
    let a = zeros(100);
    for i in 0 .. 100 {
        if i >= 50 { break; }
        a[i] = 1;
    }
}
"#;
        let t = xlate(src);
        let text = sk::print(&t.skeleton);
        assert!(text.contains("break"), "{text}");
        // deterministic condition on the tracked loop variable
        assert!(text.contains("if (i >= 50)"), "{text}");
    }

    #[test]
    fn translation_maps_all_costly_statements() {
        let src = r#"
fn main() {
    let n = input("N", 4);
    let a = zeros(n);
    @k: for i in 0 .. n { a[i] = a[i] + 1; }
}
"#;
        let t = xlate(src);
        let p = parse(src).unwrap();
        // the element update statement must map somewhere
        let mut update_id = None;
        p.visit_stmts(|_, s| {
            if matches!(s.kind, ml::StmtKind::AssignIndex { .. }) {
                update_id = Some(s.id);
            }
        });
        assert!(t.map.contains_key(&update_id.unwrap()));
    }

    #[test]
    fn skeleton_validates_cleanly() {
        let src = r#"
fn main() {
    let n = input("N", 8);
    let a = zeros(n);
    init(a, n);
    for i in 1 .. n - 1 {
        a[i] = 0.5 * (a[i - 1] + a[i + 1]);
        if a[i] > 0.9 { a[i] = exp(a[i]); }
    }
}
fn init(buf, n) {
    for i in 0 .. n { buf[i] = rnd(); }
}
"#;
        let t = xlate(src);
        let errs = sk::validate(&t.skeleton);
        assert!(errs.is_empty(), "{errs:?}\n{}", sk::print(&t.skeleton));
    }

    #[test]
    fn unexecuted_loop_warns_and_gets_zero_trips() {
        let t = xlate("fn main() { let a = zeros(2); if 1 < 0 { while a[0] > 0 { a[0] = 0; } } }");
        assert!(t.warnings.iter().any(|w| w.contains("never executed")));
    }

    #[test]
    fn else_if_chain_conditional_probabilities() {
        // 25% arm0, 25% arm1, 50% else → conditional arm1 prob = 0.25/0.75
        let src = r#"
fn main() {
    let a = zeros(100);
    for i in 0 .. 100 { a[i] = i; }
    for i in 0 .. 100 {
        if a[i] < 25 { a[i] = 0; }
        else if a[i] < 50 { a[i] = 1; }
        else { a[i] = 2; }
    }
}
"#;
        let t = xlate(src);
        let mut probs = Vec::new();
        t.skeleton.visit_stmts(|_, s| {
            if let sk::StmtKind::Branch { arms, .. } = &s.kind {
                for arm in arms {
                    if let sk::Cond::Prob(SkExpr::Num(p)) = &arm.cond {
                        probs.push(*p);
                    }
                }
            }
        });
        assert_eq!(probs.len(), 2);
        assert!((probs[0] - 0.25).abs() < 1e-9, "{probs:?}");
        assert!((probs[1] - 0.25 / 0.75).abs() < 1e-9, "{probs:?}");
    }
}
