//! The bytecode VM must be observationally identical to the tree-walking
//! reference: same results, same profiles (op counts, branch/loop stats,
//! library calls, execution counts), and the same tracer event stream
//! (operation bundles, load/store addresses, library calls in order).

use xflow_minilang::{compile, parse, run, run_vm, InputSpec, MStmtId, Profile, Tracer};

/// Records every tracer event in order.
#[derive(Debug, Default, PartialEq)]
struct EventLog {
    events: Vec<(u32, &'static str, u64, u64)>,
}

impl Tracer for EventLog {
    fn ops(&mut self, stmt: MStmtId, flops: u32, iops: u32, divs: u32) {
        self.events.push((stmt.0, "ops", ((flops as u64) << 32) | iops as u64, divs as u64));
    }
    fn load(&mut self, stmt: MStmtId, addr: u64) {
        self.events.push((stmt.0, "load", addr, 0));
    }
    fn store(&mut self, stmt: MStmtId, addr: u64) {
        self.events.push((stmt.0, "store", addr, 0));
    }
    fn lib_call(&mut self, stmt: MStmtId, name: &'static str, arg: f64) {
        self.events.push((stmt.0, name, arg.to_bits(), 1));
    }
}

fn assert_profiles_equal(a: &Profile, b: &Profile, what: &str) {
    assert_eq!(a.printed, b.printed, "{what}: printed");
    assert_eq!(a.stmt_ops, b.stmt_ops, "{what}: stmt_ops");
    assert_eq!(a.stmt_exec, b.stmt_exec, "{what}: stmt_exec");
    assert_eq!(a.branches, b.branches, "{what}: branches");
    assert_eq!(a.loops, b.loops, "{what}: loops");
    assert_eq!(a.lib_calls, b.lib_calls, "{what}: lib_calls");
}

fn check(src: &str, inputs: &[(&str, f64)]) {
    let prog = parse(src).unwrap();
    let spec = InputSpec::from_pairs(inputs.iter().copied());
    let (p_ref, t_ref, r_ref) = run(&prog, &spec, EventLog::default()).unwrap();
    let vm = compile(&prog).unwrap();
    let (p_vm, t_vm, r_vm) = run_vm(&vm, &spec, EventLog::default()).unwrap();
    assert_eq!(r_ref.to_bits(), r_vm.to_bits(), "return value");
    assert_profiles_equal(&p_ref, &p_vm, "profile");
    assert_eq!(t_ref.events.len(), t_vm.events.len(), "event count");
    for (i, (a, b)) in t_ref.events.iter().zip(t_vm.events.iter()).enumerate() {
        assert_eq!(a, b, "event #{i}");
    }
}

#[test]
fn arithmetic_and_builtins() {
    check(
        r#"
fn main() {
    let x = 2 + 3 * 4 - 6 / 2 % 4;
    let y = abs(0 - x) + min(x, 3) * max(1, 2) + floor(2.9);
    let z = exp(0.5) + log(2.0) + sqrt(9.0) + sin(1.0) + cos(1.0) + pow(2.0, 3.0);
    print(x + y + z);
    print(rnd());
    print(rnd());
}
"#,
        &[],
    );
}

#[test]
fn arrays_and_updates() {
    check(
        r#"
fn main() {
    let n = input("N", 64);
    let a = zeros(n);
    let b = zeros(n * 2);
    for i in 0 .. n {
        a[i] = rnd() * 10.0;
        b[i * 2] = a[i];
        b[i * 2 + 1] += a[i] / 2.0;
    }
    print(a[0] + b[1] + b[n]);
    print(len(a) + len(b));
}
"#,
        &[("N", 37.0)],
    );
}

#[test]
fn control_flow_branches() {
    check(
        r#"
fn main() {
    let s = 0;
    for i in 0 .. 200 {
        if i % 3 == 0 { s = s + 1; }
        else if i % 3 == 1 { s = s + 2; }
        else { s = s - 1; }
        if i > 50 && i < 100 || i == 7 { s = s + 10; }
        if !(i == 0) { s = s + 0.5; }
    }
    print(s);
}
"#,
        &[],
    );
}

#[test]
fn while_break_continue() {
    check(
        r#"
fn main() {
    let x = 1000;
    let n = 0;
    while x > 1 {
        x = x / 2;
        n = n + 1;
        if n > 50 { break; }
    }
    print(x + n);
    let acc = 0;
    for i in 0 .. 100 {
        if i % 2 == 0 { continue; }
        if i == 31 { break; }
        acc = acc + i;
    }
    print(acc);
}
"#,
        &[],
    );
}

#[test]
fn functions_and_recursion() {
    check(
        r#"
fn main() {
    let a = zeros(16);
    fill(a, 16);
    print(total(a, 16));
    print(fib(12));
}
fn fill(buf, n) {
    for i in 0 .. n { buf[i] = i * i; }
}
fn total(buf, n) {
    let t = 0;
    for i in 0 .. n { t = t + buf[i]; }
    return t;
}
fn fib(k) {
    if k < 2 { return k; }
    return fib(k - 1) + fib(k - 2);
}
"#,
        &[],
    );
}

#[test]
fn early_returns_and_nested_calls() {
    check(
        r#"
fn main() {
    for i in 0 .. 20 {
        print(classify(i));
    }
}
fn classify(v) {
    if v < 5 { return 0 - v; }
    if v < 10 {
        for j in 0 .. v {
            if j == 7 { return 99; }
        }
        return 1;
    }
    return v * helper(v);
}
fn helper(v) {
    if v % 2 == 0 { return 2; }
    return 3;
}
"#,
        &[],
    );
}

#[test]
fn parfor_and_steps() {
    check(
        r#"
fn main() {
    let a = zeros(50);
    parfor i in 0 .. 50 { a[i] = i; }
    let s = 0;
    for i in 0 .. 50 step 7 { s = s + a[i]; }
    print(s);
}
"#,
        &[],
    );
}

#[test]
fn all_workloads_match_at_test_scale() {
    for w in xflow_workloads::all() {
        let prog = w.program();
        let spec = w.inputs(xflow_workloads::Scale::Test);
        let (p_ref, t_ref, r_ref) = run(&prog, &spec, EventLog::default()).unwrap();
        let vm = compile(&prog).unwrap();
        let (p_vm, t_vm, r_vm) = run_vm(&vm, &spec, EventLog::default()).unwrap();
        assert_eq!(r_ref.to_bits(), r_vm.to_bits(), "{}", w.name);
        assert_profiles_equal(&p_ref, &p_vm, w.name);
        assert_eq!(t_ref.events.len(), t_vm.events.len(), "{}: event count", w.name);
        assert_eq!(t_ref, t_vm, "{}: event stream", w.name);
    }
}

#[test]
fn runtime_errors_match() {
    for (src, what) in [
        ("fn main() { let a = zeros(2); a[9] = 1; }", "oob"),
        ("fn main() { let a = zeros(0 - 4); }", "negative len"),
        ("fn main() { print(nope); }", "unbound"),
        ("fn main() { let x = 1; print(x[0]); }", "not an array"),
        ("fn main() { let a = zeros(2); print(a + 1); }", "array as scalar"),
    ] {
        let prog = parse(src).unwrap();
        let spec = InputSpec::new();
        let r = run(&prog, &spec, xflow_minilang::NullTracer).map(|_| ());
        let v = compile(&prog).and_then(|vm| run_vm(&vm, &spec, xflow_minilang::NullTracer).map(|_| ()));
        assert_eq!(std::mem::discriminant(&r.unwrap_err()), std::mem::discriminant(&v.unwrap_err()), "{what}");
    }
}

#[test]
fn vm_is_faster_on_heavy_workloads() {
    // not a strict benchmark — just a sanity check that the VM beats the
    // tree-walker on a compute-heavy run (both in debug or both in release)
    let w = xflow_workloads::stassuij();
    let prog = w.program();
    let spec = w.inputs(xflow_workloads::Scale::Test);
    let t0 = std::time::Instant::now();
    let _ = run(&prog, &spec, xflow_minilang::NullTracer).unwrap();
    let tree = t0.elapsed();
    let vm = compile(&prog).unwrap();
    let t1 = std::time::Instant::now();
    let _ = run_vm(&vm, &spec, xflow_minilang::NullTracer).unwrap();
    let fast = t1.elapsed();
    assert!(fast < tree, "vm ({fast:?}) should not be slower than the tree walker ({tree:?})");
}
