//! Differential tests for the superinstruction fusion pass: for every
//! digram in the committed fusion table, a program that exercises it must
//! run bit-identically on the unfused and fused VM — same result bits,
//! same semantic profile, same observed opcode/digram stream — and
//! fusion-blocked boundaries (jump targets landing on the second half of
//! a would-be pair) must stay unfused.

use xflow_minilang::fuse::{fuse, fuse_with_report, FUSED_KIND_NAMES, NUM_FUSED_KINDS};
use xflow_minilang::{
    compile, parse, run, run_vm_profiled, InputSpec, InstrProfile, Limits, NullTracer, Profile, DEFAULT_SEED,
};

/// Run one source three ways (interp, VM, fused VM) and assert the full
/// bit-identity contract. Returns the fused run's instruction profile and
/// the fusion report for digram-coverage assertions.
fn check_three_way(src: &str) -> (InstrProfile, xflow_minilang::FuseReport) {
    let prog = parse(src).expect("parse");
    let spec = InputSpec::new();
    let (p_ref, _, r_ref) = run(&prog, &spec, NullTracer).expect("interp");

    let vm = compile(&prog).expect("compile");
    let (fused, report) = fuse_with_report(&vm);
    let (p_vm, _, r_vm, i_vm) = run_vm_profiled(&vm, &spec, NullTracer, Limits::default(), DEFAULT_SEED).expect("vm");
    let (p_fz, _, r_fz, i_fz) =
        run_vm_profiled(&fused, &spec, NullTracer, Limits::default(), DEFAULT_SEED).expect("fused vm");

    assert_eq!(r_ref.to_bits(), r_vm.to_bits(), "interp vs vm");
    assert_eq!(r_vm.to_bits(), r_fz.to_bits(), "vm vs fused");
    assert_profiles_eq(&p_ref, &p_vm);
    assert_profiles_eq(&p_vm, &p_fz);
    assert!(i_vm.stream_eq(&i_fz), "fused opcode stream must match unfused");
    assert_eq!(i_vm.ranked_pairs(), i_fz.ranked_pairs());
    assert_eq!(i_vm.fused_dispatches(), 0);
    (i_fz, report)
}

fn assert_profiles_eq(a: &Profile, b: &Profile) {
    assert_eq!(a.printed, b.printed);
    assert_eq!(a.stmt_ops, b.stmt_ops);
    assert_eq!(a.stmt_exec, b.stmt_exec);
    assert_eq!(a.loops, b.loops);
    assert_eq!(a.branches, b.branches);
    assert_eq!(a.lib_calls, b.lib_calls);
}

/// One source program per fused digram, indexed like `FUSED_KIND_NAMES`.
/// Each is built so compilation emits the digram adjacently (verified by
/// the site assertion in `every_fused_digram_is_exercised`).
fn digram_programs() -> [&'static str; NUM_FUSED_KINDS] {
    [
        // 0 LoadScalar.LoadElem — a[i] with scalar index
        "fn main() { let a = zeros(8); let i = 3; a[i] = 5.0; print(a[i]); }",
        // 1 StmtEnter.LoadScalar — statement starting with a variable
        // read, preceded by Print so the greedy scan can't consume the
        // StmtEnter into a StoreSlot.StmtEnter pair first
        "fn main() { let x = 2; print(x); let y = x; print(y); }",
        // 2 LoadScalar.LoadScalar — x + y reads two scalars back-to-back? no:
        // x pushes, then y pushes — adjacent LoadScalars come from a[i + j]
        // style nesting; simplest: f(x, y) call arguments are PushSlot, so
        // use y = x * x ... x * y emits LoadScalar x; LoadScalar y; Bin
        "fn main() { let x = 3; let y = 4; let z = x * y; print(z); }",
        // 3 LoadScalar.Bin — (... x) op where rhs is a scalar
        "fn main() { let x = 5; let z = 2.0 + x; print(z); }",
        // 4 LoadElem.Bin — a[0] feeding an operator as rhs
        "fn main() { let a = zeros(4); a[0] = 7.0; let z = 1.0 + a[0]; print(z); }",
        // 5 Bin.LoadScalar — (a+b) then load c for the next operator
        "fn main() { let a = 1; let b = 2; let c = 3; print(a + b + c); }",
        // 6 Bin.Bin — abs(x) + b * c: the mul's operand loads fuse as
        // LoadScalar2, leaving Bin(mul) adjacent to Bin(add)
        "fn main() { let x = 1; let b = 2; let c = 3; print(abs(x) + b * c); }",
        // 7 StoreSlot.StmtEnter — let followed by the next statement
        "fn main() { let x = 1; let y = 2; print(x + y); }",
        // 8 Bin.StoreSlot — let z = a + b stores the operator result
        "fn main() { let a = 2; let b = 3; let z = a + b; print(z); }",
        // 9 Bin.StoreElem — a[i] = x + y stores an operator result
        "fn main() { let a = zeros(4); let x = 1; a[2] = x + 1.5; print(a[2]); }",
        // 10 Bin.LoadElem — a[i + 1] computes the index then loads
        "fn main() { let a = zeros(4); let i = 1; a[2] = 9.0; print(a[i + 1]); }",
        // 11 Num.Bin — a[0] * 2.0: the constant follows LoadElem (not a
        // fusable left partner), so Num.Bin survives the greedy scan
        "fn main() { let a = zeros(2); a[0] = 3.0; print(a[0] * 2.0); }",
        // 12 LoadScalar.Num — x * 2.0 also emits LoadScalar x; Num 2.0
        "fn main() { let x = 6; print(x * 2.0 + 1.0); }",
        // 13 StoreElem.StmtEnter — element store followed by a statement
        "fn main() { let a = zeros(4); a[1] = 3.0; print(a[1]); }",
        // 14 AdvanceRaw.Jump — every counted loop back edge
        "fn main() { let s = 0; for i in 0 .. 5 { s = s + i; } print(s); }",
        // 15 IterTick.LoadScalar — loop iteration start reads the cursor
        "fn main() { let s = 0; for i in 0 .. 5 { s = s + i; } print(s); }",
    ]
}

#[test]
fn every_fused_digram_is_exercised() {
    let mut total_sites = [0u64; NUM_FUSED_KINDS];
    for (k, src) in digram_programs().iter().enumerate() {
        let (iprof, report) = check_three_way(src);
        assert!(
            report.sites[k] > 0,
            "program {k} must statically fuse {} — sites {:?}",
            FUSED_KIND_NAMES[k],
            report.named_sites()
        );
        assert!(iprof.fused_dispatches() > 0, "program {k} must dispatch fused ops");
        for (i, n) in report.sites.iter().enumerate() {
            total_sites[i] += n;
        }
    }
    // collectively the 16 probe programs light up the whole table
    for (k, n) in total_sites.iter().enumerate() {
        assert!(*n > 0, "digram {} never fused across the probe programs", FUSED_KIND_NAMES[k]);
    }
}

#[test]
fn jump_targets_block_fusion_mid_pair() {
    // An if/else joins control flow right before a trailing statement:
    // the join point is a jump target, so the pair straddling it must not
    // fuse. The loop back edge similarly protects its head. These
    // programs exercise branches into what would otherwise be pair tails.
    let sources = [
        // else-join lands on the statement after the if
        "fn main() { let x = 1; let y = 0;
           if x > 0 { y = 2; } else { y = 3; }
           let z = y; print(z); }",
        // loop head is a jump target hit by the back edge every iteration
        "fn main() { let s = 0; let i = 0;
           while i < 6 { s = s + i; i = i + 1; }
           print(s); }",
        // break jumps to the loop exit; continue to the advance site
        "fn main() { let s = 0;
           for i in 0 .. 10 {
             if i > 6 { break; }
             if i > 3 { continue; }
             s = s + i;
           }
           print(s); }",
        // short-circuit && / || compile to forward jumps into pair tails
        "fn main() { let a = 1; let b = 0;
           if a > 0 && b < 1 { print(1); } else { print(2); }
           if a > 2 || b < 1 { print(3); } }",
        // nested calls: Ret lands the caller mid-expression
        "fn main() { let x = twice(3) + twice(4); print(x); }
         fn twice(v) { return v * 2.0; }",
    ];
    for src in sources {
        check_three_way(src);
    }
}

#[test]
fn jumping_to_the_first_of_a_fused_pair_is_safe() {
    // A while-loop body whose first statement starts with StmtEnter +
    // LoadScalar: the back edge targets the condition head (SetCur), and
    // the body entry lands exactly on a fusable StmtEnter.LoadScalar pair
    // start — which may fuse, since landing on the first constituent
    // executes both, same as falling through.
    let (iprof, report) = check_three_way(
        "fn main() { let s = 0; let i = 0;
           while i < 8 { s = s + i; i = i + 1; }
           print(s); }",
    );
    assert!(report.total_sites() > 0);
    assert!(iprof.fused_dispatches() > 0);
}

#[test]
fn fusion_preserves_step_limit_errors() {
    // StmtEnter fused into StoreSlotEnter / StmtEnterLoad must still tick
    // the step limit: an infinite loop dies identically on both VMs.
    let prog = parse("fn main() { let x = 0; while 1 > 0 { x = x + 1; } }").unwrap();
    let vm = compile(&prog).unwrap();
    let fused = fuse(&vm);
    let limits = Limits { max_steps: 10_000, max_depth: 8 };
    let e1 = xflow_minilang::vm::run_vm_with_limits(&vm, &InputSpec::new(), NullTracer, limits).unwrap_err();
    let e2 = xflow_minilang::vm::run_vm_with_limits(&fused, &InputSpec::new(), NullTracer, limits).unwrap_err();
    assert_eq!(e1.to_string(), e2.to_string());
}

#[test]
fn workload_programs_fuse_and_stay_bit_identical() {
    // the five paper workloads are the fusion table's source material —
    // each must shrink statically and agree dynamically
    for w in xflow_workloads::all() {
        let prog = w.program();
        let inputs = w.inputs(xflow_workloads::Scale::Test);
        let vm = compile(&prog).expect("compile");
        let (fused, report) = fuse_with_report(&vm);
        assert!(
            (report.code_after as f64) < 0.9 * report.code_before as f64,
            "{}: fusion should shrink code >10% (got {} -> {})",
            w.name,
            report.code_before,
            report.code_after
        );
        let (p_vm, _, r_vm, i_vm) =
            run_vm_profiled(&vm, &inputs, NullTracer, Limits::default(), DEFAULT_SEED).expect("vm");
        let (p_fz, _, r_fz, i_fz) =
            run_vm_profiled(&fused, &inputs, NullTracer, Limits::default(), DEFAULT_SEED).expect("fused");
        assert_eq!(r_vm.to_bits(), r_fz.to_bits(), "{}", w.name);
        assert_profiles_eq(&p_vm, &p_fz);
        assert!(i_vm.stream_eq(&i_fz), "{}: opcode stream must be fusion-invariant", w.name);
        assert!(i_fz.fused_dispatches() > 0, "{}: fused VM must actually dispatch superinstructions", w.name);
    }
}
