//! Property tests for the VM instruction profiler: on a generated family
//! of runnable programs, the tree-walking interpreter and the profiled VM
//! must produce identical semantic op totals, and the VM's per-opcode
//! counters must tie out exactly against that shared profile (each load
//! event is one `LoadElem`, each statement execution one `StmtEnter`, …).

use proptest::prelude::*;
use xflow_minilang::{compile, parse, run, run_vm_profiled, InputSpec, Limits, NullTracer};

/// A runnable program family with random constants and structure knobs:
/// an array fill (rnd + arithmetic), a filter loop with a branch, an
/// optional while-halving loop, and a helper function call per element.
fn runnable_src(n: u32, thresh: f64, with_while: bool, with_call: bool) -> String {
    let while_part = if with_while { "let w = 1000; while w > 1 { w = w / 2; }" } else { "" };
    let call_part = if with_call { "acc = acc + boost(a[i]);" } else { "acc = acc + a[i];" };
    format!(
        r#"
fn main() {{
    let n = {n};
    let a = zeros(n);
    for i in 0 .. n {{ a[i] = rnd() * 2.0 + sqrt(i); }}
    {while_part}
    let acc = 0;
    for i in 0 .. n {{
        if a[i] > {thresh} {{ {call_part} }}
        else {{ acc = acc - 0.25 * a[i]; }}
    }}
    print(acc);
}}
fn boost(v) {{
    return v * 2.0 + 1.0;
}}
"#
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Interp and VM agree on every semantic op total, and the VM's
    /// opcode counters are consistent with that profile.
    #[test]
    fn interp_and_vm_produce_identical_opcode_totals(
        n in 1u32..48,
        thresh in 0.0f64..3.0,
        variant in 0u32..4,
    ) {
        let (with_while, with_call) = (variant & 1 == 1, variant & 2 == 2);
        let src = runnable_src(n, thresh, with_while, with_call);
        let prog = parse(&src).unwrap();
        let spec = InputSpec::new();

        let (p_ref, _, r_ref) = run(&prog, &spec, NullTracer).unwrap();
        let vm = compile(&prog).unwrap();
        let (p_vm, _, r_vm, iprof) =
            run_vm_profiled(&vm, &spec, NullTracer, Limits::default(), xflow_minilang::DEFAULT_SEED).unwrap();

        // both engines agree bit-for-bit on results and profiles
        prop_assert_eq!(r_ref.to_bits(), r_vm.to_bits());
        prop_assert_eq!(&p_ref.printed, &p_vm.printed);
        prop_assert_eq!(&p_ref.stmt_ops, &p_vm.stmt_ops);
        prop_assert_eq!(&p_ref.stmt_exec, &p_vm.stmt_exec);
        prop_assert_eq!(&p_ref.loops, &p_vm.loops);
        prop_assert_eq!(&p_ref.branches, &p_vm.branches);
        prop_assert_eq!(&p_ref.lib_calls, &p_vm.lib_calls);

        // the instruction profile ties out against the (shared) profile:
        // every memory event, statement tick, loop iteration, and library
        // call corresponds to exactly one executed opcode of its kind.
        let loads: u64 = p_ref.stmt_ops.values().map(|c| c.loads).sum();
        let stores: u64 = p_ref.stmt_ops.values().map(|c| c.stores).sum();
        prop_assert_eq!(iprof.count_of("LoadElem"), loads);
        prop_assert_eq!(iprof.count_of("StoreElem"), stores);
        prop_assert_eq!(iprof.count_of("StmtEnter"), p_ref.stmt_exec.values().sum::<u64>());
        let iters: u64 = p_ref.loops.values().map(|l| l.iterations).sum();
        prop_assert_eq!(iprof.count_of("IterTick") + iprof.count_of("IterTickWhile"), iters);
        prop_assert_eq!(iprof.count_of("Lib"), p_ref.lib_calls.values().sum::<u64>());
        prop_assert_eq!(iprof.count_of("Print"), p_ref.printed.len() as u64);

        // stream accounting: ops sum to the total, digrams to total - 1
        let total = iprof.total();
        prop_assert!(total > 0);
        prop_assert_eq!(iprof.ranked_ops().iter().map(|(_, c)| c).sum::<u64>(), total);
        prop_assert_eq!(iprof.ranked_pairs().iter().map(|(_, c)| c).sum::<u64>(), total - 1);
    }

    /// Profiling never perturbs execution: profiled and unprofiled VM
    /// runs are bit-identical, and two profiled runs yield equal profiles.
    #[test]
    fn profiling_is_invisible_and_deterministic(
        n in 1u32..48,
        thresh in 0.0f64..3.0,
        variant in 0u32..4,
    ) {
        let (with_while, with_call) = (variant & 1 == 1, variant & 2 == 2);
        let src = runnable_src(n, thresh, with_while, with_call);
        let prog = parse(&src).unwrap();
        let vm = compile(&prog).unwrap();
        let spec = InputSpec::new();
        let (p_plain, _, r_plain) = xflow_minilang::run_vm(&vm, &spec, NullTracer).unwrap();
        let (p1, _, r1, i1) =
            run_vm_profiled(&vm, &spec, NullTracer, Limits::default(), xflow_minilang::DEFAULT_SEED).unwrap();
        let (_, _, _, i2) =
            run_vm_profiled(&vm, &spec, NullTracer, Limits::default(), xflow_minilang::DEFAULT_SEED).unwrap();
        prop_assert_eq!(r_plain.to_bits(), r1.to_bits());
        prop_assert_eq!(&p_plain.stmt_ops, &p1.stmt_ops);
        prop_assert_eq!(&i1, &i2);
    }
}
