//! Property tests for the VM instruction profiler: on a generated family
//! of runnable programs, the tree-walking interpreter, the profiled VM,
//! and the superinstruction-fused VM must produce identical semantic op
//! totals, and the VM's per-opcode counters must tie out exactly against
//! that shared profile (each load event is one `LoadElem`, each statement
//! execution one `StmtEnter`, …). Fusion must be invisible to all of it:
//! same results, same `Profile`, same observed opcode/digram stream.

use proptest::prelude::*;
use xflow_minilang::{compile, fuse_program, parse, run, run_vm_profiled, InputSpec, Limits, NullTracer};

/// A runnable program family with random constants and structure knobs:
/// an array fill (rnd + arithmetic), a filter loop with a branch, an
/// optional while-halving loop, and a helper function call per element.
fn runnable_src(n: u32, thresh: f64, with_while: bool, with_call: bool) -> String {
    let while_part = if with_while { "let w = 1000; while w > 1 { w = w / 2; }" } else { "" };
    let call_part = if with_call { "acc = acc + boost(a[i]);" } else { "acc = acc + a[i];" };
    format!(
        r#"
fn main() {{
    let n = {n};
    let a = zeros(n);
    for i in 0 .. n {{ a[i] = rnd() * 2.0 + sqrt(i); }}
    {while_part}
    let acc = 0;
    for i in 0 .. n {{
        if a[i] > {thresh} {{ {call_part} }}
        else {{ acc = acc - 0.25 * a[i]; }}
    }}
    print(acc);
}}
fn boost(v) {{
    return v * 2.0 + 1.0;
}}
"#
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Interp, VM, and fused VM agree on every semantic op total, and the
    /// VM's opcode counters are consistent with that shared profile.
    #[test]
    fn interp_and_vm_produce_identical_opcode_totals(
        n in 1u32..48,
        thresh in 0.0f64..3.0,
        variant in 0u32..4,
    ) {
        let (with_while, with_call) = (variant & 1 == 1, variant & 2 == 2);
        let src = runnable_src(n, thresh, with_while, with_call);
        let prog = parse(&src).unwrap();
        let spec = InputSpec::new();

        let (p_ref, _, r_ref) = run(&prog, &spec, NullTracer).unwrap();
        let vm = compile(&prog).unwrap();
        let (p_vm, _, r_vm, iprof) =
            run_vm_profiled(&vm, &spec, NullTracer, Limits::default(), xflow_minilang::DEFAULT_SEED).unwrap();
        let fused = fuse_program(&vm);
        let (p_fz, _, r_fz, i_fz) =
            run_vm_profiled(&fused, &spec, NullTracer, Limits::default(), xflow_minilang::DEFAULT_SEED).unwrap();

        // all three engines agree bit-for-bit on results and profiles
        prop_assert_eq!(r_ref.to_bits(), r_vm.to_bits());
        prop_assert_eq!(r_vm.to_bits(), r_fz.to_bits());
        prop_assert_eq!(&p_ref.printed, &p_vm.printed);
        prop_assert_eq!(&p_ref.stmt_ops, &p_vm.stmt_ops);
        prop_assert_eq!(&p_ref.stmt_exec, &p_vm.stmt_exec);
        prop_assert_eq!(&p_ref.loops, &p_vm.loops);
        prop_assert_eq!(&p_ref.branches, &p_vm.branches);
        prop_assert_eq!(&p_ref.lib_calls, &p_vm.lib_calls);
        prop_assert_eq!(&p_vm.printed, &p_fz.printed);
        prop_assert_eq!(&p_vm.stmt_ops, &p_fz.stmt_ops);
        prop_assert_eq!(&p_vm.stmt_exec, &p_fz.stmt_exec);
        prop_assert_eq!(&p_vm.loops, &p_fz.loops);
        prop_assert_eq!(&p_vm.branches, &p_fz.branches);
        prop_assert_eq!(&p_vm.lib_calls, &p_fz.lib_calls);

        // the fused VM observes the same base opcode stream (fused
        // dispatches account to their constituents), while actually
        // dispatching superinstructions whenever any pair fused
        prop_assert!(iprof.stream_eq(&i_fz));
        prop_assert_eq!(iprof.ranked_ops(), i_fz.ranked_ops());
        prop_assert_eq!(iprof.ranked_pairs(), i_fz.ranked_pairs());
        prop_assert_eq!(iprof.fused_dispatches(), 0);
        prop_assert!(fused.code_len() < vm.code_len());
        prop_assert!(i_fz.fused_dispatches() > 0);

        // the instruction profile ties out against the (shared) profile:
        // every memory event, statement tick, loop iteration, and library
        // call corresponds to exactly one executed opcode of its kind.
        let loads: u64 = p_ref.stmt_ops.values().map(|c| c.loads).sum();
        let stores: u64 = p_ref.stmt_ops.values().map(|c| c.stores).sum();
        prop_assert_eq!(iprof.count_of("LoadElem"), loads);
        prop_assert_eq!(iprof.count_of("StoreElem"), stores);
        prop_assert_eq!(iprof.count_of("StmtEnter"), p_ref.stmt_exec.values().sum::<u64>());
        let iters: u64 = p_ref.loops.values().map(|l| l.iterations).sum();
        prop_assert_eq!(iprof.count_of("IterTick") + iprof.count_of("IterTickWhile"), iters);
        prop_assert_eq!(iprof.count_of("Lib"), p_ref.lib_calls.values().sum::<u64>());
        prop_assert_eq!(iprof.count_of("Print"), p_ref.printed.len() as u64);

        // stream accounting: ops sum to the total, digrams to total - 1
        let total = iprof.total();
        prop_assert!(total > 0);
        prop_assert_eq!(iprof.ranked_ops().iter().map(|(_, c)| c).sum::<u64>(), total);
        prop_assert_eq!(iprof.ranked_pairs().iter().map(|(_, c)| c).sum::<u64>(), total - 1);
    }

    /// Profiling never perturbs execution: profiled and unprofiled VM
    /// runs are bit-identical (fused or not), and two profiled runs of
    /// either VM yield equal profiles.
    #[test]
    fn profiling_is_invisible_and_deterministic(
        n in 1u32..48,
        thresh in 0.0f64..3.0,
        variant in 0u32..4,
    ) {
        let (with_while, with_call) = (variant & 1 == 1, variant & 2 == 2);
        let src = runnable_src(n, thresh, with_while, with_call);
        let prog = parse(&src).unwrap();
        let vm = compile(&prog).unwrap();
        let fused = fuse_program(&vm);
        let spec = InputSpec::new();
        let (p_plain, _, r_plain) = xflow_minilang::run_vm(&vm, &spec, NullTracer).unwrap();
        let (p1, _, r1, i1) =
            run_vm_profiled(&vm, &spec, NullTracer, Limits::default(), xflow_minilang::DEFAULT_SEED).unwrap();
        let (_, _, _, i2) =
            run_vm_profiled(&vm, &spec, NullTracer, Limits::default(), xflow_minilang::DEFAULT_SEED).unwrap();
        prop_assert_eq!(r_plain.to_bits(), r1.to_bits());
        prop_assert_eq!(&p_plain.stmt_ops, &p1.stmt_ops);
        prop_assert_eq!(&i1, &i2);

        // the fused VM is equally invisible and deterministic
        let (p_fplain, _, r_fplain) = xflow_minilang::run_vm(&fused, &spec, NullTracer).unwrap();
        let (pf, _, rf, if1) =
            run_vm_profiled(&fused, &spec, NullTracer, Limits::default(), xflow_minilang::DEFAULT_SEED).unwrap();
        let (_, _, _, if2) =
            run_vm_profiled(&fused, &spec, NullTracer, Limits::default(), xflow_minilang::DEFAULT_SEED).unwrap();
        prop_assert_eq!(r_fplain.to_bits(), rf.to_bits());
        prop_assert_eq!(r_plain.to_bits(), r_fplain.to_bits());
        prop_assert_eq!(&p_fplain.stmt_ops, &pf.stmt_ops);
        prop_assert_eq!(&p_plain.printed, &p_fplain.printed);
        prop_assert_eq!(&if1, &if2);
        prop_assert!(i1.stream_eq(&if1));
    }
}
