//! Property tests for the minilang front-end: print∘parse identity on
//! generated programs, and determinism/op-accounting invariants of the
//! interpreter on a constrained runnable program family.

use proptest::prelude::*;
use xflow_minilang::ast::*;
use xflow_minilang::{parse, InputSpec};

const KEYWORDS: &[&str] = &[
    "fn", "let", "for", "parfor", "in", "step", "while", "if", "else", "return", "break", "continue", "print", "zeros",
    "input", "len", "exp", "log", "sqrt", "sin", "cos", "pow", "abs", "min", "max", "floor", "rnd",
];

fn ident() -> impl Strategy<Value = String> {
    "[a-z][a-z0-9_]{0,5}".prop_filter("not a keyword", |s| !KEYWORDS.contains(&s.as_str()))
}

fn literal() -> impl Strategy<Value = f64> {
    prop_oneof![(0i64..10_000).prop_map(|v| v as f64), (0i64..64).prop_map(|v| v as f64 / 4.0)]
}

fn expr() -> impl Strategy<Value = Expr> {
    let leaf = prop_oneof![
        literal().prop_map(Expr::Num),
        ident().prop_map(Expr::Var),
        (ident(), literal()).prop_map(|(a, _)| Expr::Len(a)),
        ("[A-Z]{1,4}", literal()).prop_map(|(n, d)| Expr::Input(n, d)),
    ];
    leaf.prop_recursive(3, 20, 3, |inner| {
        prop_oneof![
            (
                inner.clone(),
                inner.clone(),
                prop_oneof![Just(BinOp::Add), Just(BinOp::Sub), Just(BinOp::Mul), Just(BinOp::Div), Just(BinOp::Mod)]
            )
                .prop_map(|(l, r, op)| Expr::Bin(Box::new(l), op, Box::new(r))),
            (
                inner.clone(),
                inner.clone(),
                prop_oneof![
                    Just(CmpOp::Lt),
                    Just(CmpOp::Le),
                    Just(CmpOp::Gt),
                    Just(CmpOp::Ge),
                    Just(CmpOp::Eq),
                    Just(CmpOp::Ne)
                ]
            )
                .prop_map(|(l, r, op)| Expr::Cmp(Box::new(l), op, Box::new(r))),
            (inner.clone(), inner.clone()).prop_map(|(l, r)| Expr::And(Box::new(l), Box::new(r))),
            (inner.clone(), inner.clone()).prop_map(|(l, r)| Expr::Or(Box::new(l), Box::new(r))),
            inner.clone().prop_map(|i| Expr::Not(Box::new(i))),
            inner.clone().prop_map(|i| match i {
                Expr::Num(n) => Expr::Num(-n),
                other => Expr::Neg(Box::new(other)),
            }),
            (ident(), inner.clone()).prop_map(|(a, i)| Expr::Index(a, Box::new(i))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::Call(Builtin::Min, vec![a, b])),
            inner.clone().prop_map(|a| Expr::Call(Builtin::Sqrt, vec![a])),
            (ident(), prop::collection::vec(inner, 0..3)).prop_map(|(f, args)| Expr::CallFn(format!("fx_{f}"), args)),
        ]
    })
}

#[derive(Debug, Clone)]
enum GenStmt {
    LetScalar(String, Expr),
    LetArray(String, Expr),
    AssignScalar(String, Expr),
    AssignIndex(String, Expr, Expr),
    UpdateIndex(String, Expr, BinOp, Expr),
    For(String, Expr, Expr, Vec<GenStmt>),
    While(Expr, Vec<GenStmt>),
    If(Vec<(Expr, Vec<GenStmt>)>, Option<Vec<GenStmt>>),
    Call(String, Vec<Expr>),
    Return(Option<Expr>),
    Break,
    Continue,
    Print(Expr),
}

fn gen_stmt() -> impl Strategy<Value = GenStmt> {
    let leaf = prop_oneof![
        (ident(), expr()).prop_map(|(n, e)| GenStmt::LetScalar(n, e)),
        (ident(), expr()).prop_map(|(n, e)| GenStmt::LetArray(n, e)),
        (ident(), expr()).prop_map(|(n, e)| GenStmt::AssignScalar(n, e)),
        (ident(), expr(), expr()).prop_map(|(n, i, e)| GenStmt::AssignIndex(n, i, e)),
        (ident(), expr(), prop_oneof![Just(BinOp::Add), Just(BinOp::Sub), Just(BinOp::Mul), Just(BinOp::Div)], expr())
            .prop_map(|(n, i, op, e)| GenStmt::UpdateIndex(n, i, op, e)),
        (ident(), prop::collection::vec(expr(), 0..3)).prop_map(|(n, a)| GenStmt::Call(format!("fx_{n}"), a)),
        prop::option::of(expr()).prop_map(GenStmt::Return),
        Just(GenStmt::Break),
        Just(GenStmt::Continue),
        expr().prop_map(GenStmt::Print),
    ];
    leaf.prop_recursive(3, 20, 4, |inner| {
        let block = prop::collection::vec(inner.clone(), 0..4);
        prop_oneof![
            (ident(), expr(), expr(), block.clone()).prop_map(|(v, lo, hi, b)| GenStmt::For(v, lo, hi, b)),
            (expr(), block.clone()).prop_map(|(c, b)| GenStmt::While(c, b)),
            (prop::collection::vec((expr(), block.clone()), 1..3), prop::option::of(block))
                .prop_map(|(arms, e)| GenStmt::If(arms, e)),
        ]
    })
}

fn assemble(stmts: &[GenStmt], prog: &mut Program) -> Block {
    let mut out = Vec::new();
    for g in stmts {
        let id = prog.fresh_stmt_id();
        let kind = match g {
            GenStmt::LetScalar(n, e) => StmtKind::LetScalar { name: n.clone(), init: e.clone() },
            GenStmt::LetArray(n, e) => StmtKind::LetArray { name: n.clone(), len: e.clone() },
            GenStmt::AssignScalar(n, e) => StmtKind::AssignScalar { name: n.clone(), value: e.clone() },
            GenStmt::AssignIndex(n, i, e) => {
                StmtKind::AssignIndex { name: n.clone(), index: i.clone(), value: e.clone() }
            }
            GenStmt::UpdateIndex(n, i, op, e) => {
                StmtKind::UpdateIndex { name: n.clone(), index: i.clone(), op: *op, value: e.clone() }
            }
            GenStmt::For(v, lo, hi, b) => StmtKind::For {
                var: v.clone(),
                lo: lo.clone(),
                hi: hi.clone(),
                step: Expr::Num(1.0),
                parallel: false,
                body: assemble(b, prog),
            },
            GenStmt::While(c, b) => StmtKind::While { cond: c.clone(), body: assemble(b, prog) },
            GenStmt::If(arms, e) => StmtKind::If {
                arms: arms.iter().map(|(c, b)| (c.clone(), assemble(b, prog))).collect(),
                else_body: e.as_ref().map(|b| assemble(b, prog)),
            },
            GenStmt::Call(n, a) => StmtKind::CallProc { name: n.clone(), args: a.clone() },
            GenStmt::Return(v) => StmtKind::Return { value: v.clone() },
            GenStmt::Break => StmtKind::Break,
            GenStmt::Continue => StmtKind::Continue,
            GenStmt::Print(e) => StmtKind::Print { expr: e.clone() },
        };
        out.push(Stmt { id, label: None, kind });
    }
    Block { stmts: out }
}

fn gen_program() -> impl Strategy<Value = Program> {
    prop::collection::vec(prop::collection::vec(gen_stmt(), 0..6), 1..3).prop_map(|funcs| {
        let mut prog = Program::new();
        for (i, body) in funcs.iter().enumerate() {
            let name = if i == 0 { "main".to_string() } else { format!("aux_{i}") };
            let body = assemble(body, &mut prog);
            prog.add_function(Function { name, params: vec![], body }).unwrap();
        }
        prog
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn print_parse_round_trip(prog in gen_program()) {
        let text = xflow_minilang::print(&prog);
        let reparsed = parse(&text).unwrap_or_else(|e| panic!("re-parse failed: {e}\n{text}"));
        prop_assert_eq!(&prog, &reparsed, "text:\n{}", text);
    }

    #[test]
    fn print_is_fixed_point(prog in gen_program()) {
        let t1 = xflow_minilang::print(&prog);
        let t2 = xflow_minilang::print(&parse(&t1).unwrap());
        prop_assert_eq!(t1, t2);
    }
}

// ---------------------------------------------------------------------------
// Runnable-program family: fixed valid shape, random constants. Checks the
// interpreter's determinism and op-accounting invariants without generating
// unbound-variable programs.
// ---------------------------------------------------------------------------

fn runnable_src(n: u32, thresh: f64, scale: f64) -> String {
    format!(
        r#"
fn main() {{
    let n = {n};
    let a = zeros(n);
    for i in 0 .. n {{ a[i] = rnd() * {scale}; }}
    let acc = 0;
    for i in 0 .. n {{
        if a[i] > {thresh} {{ acc = acc + a[i]; }}
        else {{ acc = acc - 0.5 * a[i]; }}
    }}
    print(acc);
}}
"#
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn interpreter_is_deterministic(n in 1u32..64, thresh in 0.0f64..2.0, scale in 0.5f64..2.0) {
        let src = runnable_src(n, thresh, scale);
        let prog = parse(&src).unwrap();
        let a = xflow_minilang::profile(&prog, &InputSpec::new()).unwrap();
        let b = xflow_minilang::profile(&prog, &InputSpec::new()).unwrap();
        prop_assert_eq!(&a.printed, &b.printed);
        prop_assert_eq!(a.total_ops(), b.total_ops());
        prop_assert_eq!(&a.branches, &b.branches);
    }

    #[test]
    fn branch_mass_is_conserved(n in 1u32..64, thresh in 0.0f64..2.0, scale in 0.5f64..2.0) {
        let src = runnable_src(n, thresh, scale);
        let prog = parse(&src).unwrap();
        let prof = xflow_minilang::profile(&prog, &InputSpec::new()).unwrap();
        for b in prof.branches.values() {
            // arm hits + else hits account for every evaluation
            prop_assert_eq!(b.evals(), n as u64);
            let total_p: f64 = (0..b.arm_hits.len()).map(|i| b.arm_prob(i)).sum::<f64>()
                + b.else_hits as f64 / b.evals().max(1) as f64;
            prop_assert!((total_p - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn loads_stores_match_structure(n in 1u32..64, thresh in 0.0f64..2.0, scale in 0.5f64..2.0) {
        let src = runnable_src(n, thresh, scale);
        let prog = parse(&src).unwrap();
        let prof = xflow_minilang::profile(&prog, &InputSpec::new()).unwrap();
        let stores: u64 = prof.stmt_ops.values().map(|c| c.stores).sum();
        let loads: u64 = prof.stmt_ops.values().map(|c| c.loads).sum();
        // exactly one store per fill iteration, one load per filter iteration
        prop_assert_eq!(stores, n as u64);
        // the filter loads a[i] once in the condition and once in the
        // taken arm (either arm reads it again)
        prop_assert_eq!(loads, 2 * n as u64);
    }

    #[test]
    fn translation_never_panics_on_runnable_family(n in 1u32..64, thresh in 0.0f64..2.0, scale in 0.5f64..2.0) {
        let src = runnable_src(n, thresh, scale);
        let prog = parse(&src).unwrap();
        let prof = xflow_minilang::profile(&prog, &InputSpec::new()).unwrap();
        let t = xflow_minilang::translate(&prog, &prof).unwrap();
        prop_assert!(xflow_skeleton::validate(&t.skeleton).is_empty());
    }
}
