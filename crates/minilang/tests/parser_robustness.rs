//! Robustness: both front-ends must reject arbitrary garbage with an error,
//! never a panic, and must produce positioned messages on a corpus of
//! near-miss programs.

use proptest::prelude::*;

#[test]
fn near_miss_corpus_errors_cleanly() {
    let corpus = [
        // truncations
        "fn main() {",
        "fn main() { let x = ",
        "fn main() { for i in 0 .. ",
        "fn main() { if a < ",
        "fn",
        "",
        // wrong tokens in statement position
        "fn main() { 42; }",
        "fn main() { let = 3; }",
        "fn main() { x += 1; }", // scalar compound assignment not supported
        "fn main() { a[0]; }",
        "fn main() { return return; }",
        // malformed calls and builtins
        "fn main() { let x = exp(); }",
        "fn main() { let x = pow(1); }",
        "fn main() { let x = input(N, 3); }",
        "fn main() { let x = input(\"N\"); }",
        "fn main() { let x = len(3); }",
        // structure errors
        "fn main() { } fn main() { }",
        "fn dup(a, a) { }",
        "fn main() { } }",
        "fn main(() { }",
        // keyword misuse
        "fn for() { }",
        "fn main() { let while = 2; }",
        "fn main() { parfor in 0..3 { } }",
        // strings
        "fn main() { let x = input(\"unterminated, 3); }",
    ];
    for src in corpus {
        match std::panic::catch_unwind(|| xflow_minilang::parse(src)) {
            Ok(Err(e)) => {
                assert!(!e.message.is_empty(), "{src:?} produced an empty error");
            }
            Ok(Ok(_)) => {
                // a couple of entries may legitimately parse (e.g. fn dup(a, a))
                // — parsing is syntax-only; interpretation will catch them.
            }
            Err(_) => panic!("parser panicked on {src:?}"),
        }
    }
}

#[test]
fn skeleton_near_miss_corpus_errors_cleanly() {
    let corpus = [
        "func main() {",
        "func main() { comp }",
        "func main() { comp { flops } }",
        "func main() { comp { flops: } }",
        "func main() { loop i = 0 . 3 { } }",
        "func main() { loop i 0 .. 3 { } }",
        "func main() { if prob() { } }",
        "func main() { if (a <) { } }",
        "func main() { switch { } }",
        "func main() { lib () }",
        "func main() { call }",
        "func x() { } func x() { }",
        "notakeyword main() { }",
        "",
    ];
    for src in corpus {
        match std::panic::catch_unwind(|| xflow_skeleton::parse(src)) {
            Ok(Err(e)) => assert!(!e.message.is_empty(), "{src:?}"),
            Ok(Ok(_)) => panic!("{src:?} should not parse"),
            Err(_) => panic!("skeleton parser panicked on {src:?}"),
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn minilang_parser_never_panics(src in "\\PC{0,200}") {
        let _ = xflow_minilang::parse(&src);
    }

    #[test]
    fn skeleton_parser_never_panics(src in "\\PC{0,200}") {
        let _ = xflow_skeleton::parse(&src);
    }

    #[test]
    fn token_soup_never_panics(tokens in prop::collection::vec(
        prop_oneof![
            Just("fn"), Just("main"), Just("("), Just(")"), Just("{"), Just("}"),
            Just("let"), Just("="), Just(";"), Just("for"), Just("in"), Just(".."),
            Just("if"), Just("else"), Just("+"), Just("*"), Just("["), Just("]"),
            Just("x"), Just("3"), Just("0.5"), Just("rnd"), Just("zeros"), Just("@"),
            Just(":"), Just(","), Just("&&"), Just("!"), Just("print"), Just("while"),
        ], 0..60))
    {
        let src = tokens.join(" ");
        let _ = xflow_minilang::parse(&src);
        let _ = xflow_skeleton::parse(&src);
    }
}
