//! Structural invariants of the analytic model.
//!
//! These checks are oracle-free: they hold for *every* well-formed BET and
//! projection regardless of what program produced it, so both the
//! differential validator and the fuzzer enforce them.
//!
//! The invariant list (ISSUE / paper Section V):
//! 1. probabilities — every node's conditional probability is finite and
//!    in `[0, 1]`; sibling branch-arm probabilities for one branch
//!    statement sum to at most 1 (the else mass flows on implicitly, and
//!    arms below the `1e-12` mass floor are pruned, so the sum may fall
//!    short of 1 but must never exceed it);
//! 2. ENR conservation across promotion — a loop entry produces at most
//!    one break event and a function invocation at most one return event,
//!    so the summed ENR of `Break` nodes under a loop is bounded by the
//!    loop's ENR, the summed ENR of `Return` nodes under a call by the
//!    call's ENR, and `Continue` events by the loop's total iterations;
//! 3. size — the BET has at most `max_size_ratio` (2× per the paper)
//!    nodes per source statement;
//! 4. cost sanity — Tc, Tm, To of every projected block are finite and
//!    non-negative, the overlap never exceeds either component, and the
//!    block total is `Tc + Tm − To`.

use serde::Serialize;
use xflow_bet::{Bet, BetKind, BetNodeId};
use xflow_hotspot::{Projection, ProjectionColumns};

/// Tolerance for probability-range checks (pure products of clamped
/// values; only accumulation round-off can push them past the bound).
const PROB_EPS: f64 = 1e-9;
/// Tolerance for conservation sums across promotion: these compound
/// context merging and truncated-geometric trip modeling, so a little
/// more slack is warranted.
const CONS_EPS: f64 = 1e-6;

/// One violated invariant with a human-readable description.
#[derive(Debug, Clone, Serialize)]
pub struct Violation {
    /// Short stable name of the invariant (e.g. `arm-prob-sum`).
    pub invariant: String,
    /// What exactly went wrong, with node ids and values.
    pub detail: String,
}

impl Violation {
    fn new(invariant: &str, detail: String) -> Self {
        Self { invariant: invariant.to_string(), detail }
    }
}

/// Check all structural BET invariants. Returns every violation found.
pub fn check_bet(bet: &Bet, skeleton_stmts: usize, max_size_ratio: f64) -> Vec<Violation> {
    let mut v = Vec::new();
    let enr = bet.enr();

    for node in bet.iter() {
        let id = node.id.0;
        if !node.prob.is_finite() || node.prob < 0.0 || node.prob > 1.0 + PROB_EPS {
            v.push(Violation::new("node-prob-range", format!("node {id}: prob = {}", node.prob)));
        }
        if !node.iters.is_finite() || node.iters < 0.0 {
            v.push(Violation::new("node-iters-range", format!("node {id}: iters = {}", node.iters)));
        }
        let e = enr[id as usize];
        if !e.is_finite() || e < 0.0 {
            v.push(Violation::new("enr-range", format!("node {id}: ENR = {e}")));
        }
    }
    if enr.first() != Some(&1.0) {
        v.push(Violation::new("enr-root", format!("ENR(root) = {:?}, expected 1", enr.first())));
    }

    // 1b. sibling arm probabilities: group Arm children of one parent by
    // the branch statement they instantiate; masses must sum to ≤ 1.
    for node in bet.iter() {
        let mut sums: Vec<(Option<xflow_skeleton::StmtId>, f64)> = Vec::new();
        for &c in &node.children {
            let child = bet.node(c);
            if matches!(child.kind, BetKind::Arm { .. }) {
                match sums.iter_mut().find(|(s, _)| *s == child.stmt) {
                    Some((_, sum)) => *sum += child.prob,
                    None => sums.push((child.stmt, child.prob)),
                }
            }
        }
        for (stmt, sum) in sums {
            if sum > 1.0 + PROB_EPS {
                v.push(Violation::new(
                    "arm-prob-sum",
                    format!("node {}: arms of {stmt:?} sum to {sum} > 1", node.id.0),
                ));
            }
        }
    }

    // 2. ENR conservation across promotion. Attribute every escape node to
    // its nearest enclosing Loop (breaks/continues) or Call/Root (returns).
    let n = bet.len();
    let mut brk_sum = vec![0.0f64; n];
    let mut cont_sum = vec![0.0f64; n];
    let mut ret_sum = vec![0.0f64; n];
    for node in bet.iter() {
        let (target_loop, target_call) = match node.kind {
            BetKind::Break | BetKind::Continue => (true, false),
            BetKind::Return => (false, true),
            _ => continue,
        };
        let mut cur = node.parent;
        while let Some(p) = cur {
            let pk = &bet.node(p).kind;
            if target_loop && matches!(pk, BetKind::Loop) {
                break;
            }
            if target_call && matches!(pk, BetKind::Call { .. } | BetKind::Root) {
                break;
            }
            cur = bet.node(p).parent;
        }
        let Some(owner) = cur else { continue };
        let e = enr[node.id.0 as usize];
        match node.kind {
            BetKind::Break => brk_sum[owner.0 as usize] += e,
            BetKind::Continue => cont_sum[owner.0 as usize] += e,
            BetKind::Return => ret_sum[owner.0 as usize] += e,
            _ => unreachable!(),
        }
    }
    for node in bet.iter() {
        let i = node.id.0 as usize;
        let e = enr[i];
        if matches!(node.kind, BetKind::Loop) {
            if brk_sum[i] > e * (1.0 + CONS_EPS) + CONS_EPS {
                v.push(Violation::new(
                    "break-conservation",
                    format!("loop node {i}: break ENR {} exceeds loop ENR {e}", brk_sum[i]),
                ));
            }
            let iterations = e * node.iters;
            if cont_sum[i] > iterations * (1.0 + CONS_EPS) + CONS_EPS {
                v.push(Violation::new(
                    "continue-conservation",
                    format!("loop node {i}: continue ENR {} exceeds iterations {iterations}", cont_sum[i]),
                ));
            }
        }
        if matches!(node.kind, BetKind::Call { .. } | BetKind::Root) && ret_sum[i] > e * (1.0 + CONS_EPS) + CONS_EPS {
            v.push(Violation::new(
                "return-conservation",
                format!("call node {i}: return ENR {} exceeds call ENR {e}", ret_sum[i]),
            ));
        }
    }

    // 3. size bound (paper: node count stays below 2× source statements).
    let ratio = bet.size_ratio(skeleton_stmts);
    if ratio > max_size_ratio {
        v.push(Violation::new(
            "size-ratio",
            format!("{} nodes for {skeleton_stmts} statements: ratio {ratio:.3} > {max_size_ratio}", bet.len()),
        ));
    }

    // tree shape: children point back at their parent.
    for node in bet.iter() {
        for &c in &node.children {
            if bet.node(c).parent != Some(BetNodeId(node.id.0)) {
                v.push(Violation::new(
                    "tree-shape",
                    format!("node {} lists child {} whose parent differs", node.id.0, c.0),
                ));
            }
        }
    }

    v
}

/// Check the cost-sanity invariants of one evaluated projection.
pub fn check_projection(projection: &Projection) -> Vec<Violation> {
    let mut v = Vec::new();
    let mut sum = 0.0f64;
    for (i, nc) in projection.node_costs.iter().enumerate() {
        let t = &nc.per_invocation;
        for (what, val) in [("tc", t.tc), ("tm", t.tm), ("overlap", t.overlap), ("total", t.total)] {
            if !val.is_finite() || val < 0.0 {
                v.push(Violation::new("cost-nonneg", format!("node {i}: {what} = {val}")));
            }
        }
        if t.overlap > t.tc.min(t.tm) * (1.0 + PROB_EPS) + f64::MIN_POSITIVE {
            v.push(Violation::new(
                "overlap-bound",
                format!("node {i}: overlap {} exceeds min(tc {}, tm {})", t.overlap, t.tc, t.tm),
            ));
        }
        let recomposed = t.tc + t.tm - t.overlap;
        if (t.total - recomposed).abs() > recomposed.abs().max(1e-300) * 1e-9 {
            v.push(Violation::new(
                "total-decomposition",
                format!("node {i}: total {} != tc + tm - overlap = {recomposed}", t.total),
            ));
        }
        if !nc.enr.is_finite() || nc.enr < 0.0 {
            v.push(Violation::new("cost-enr-range", format!("node {i}: ENR = {}", nc.enr)));
        }
        if !nc.total.is_finite() || nc.total < 0.0 {
            v.push(Violation::new("cost-nonneg", format!("node {i}: weighted total = {}", nc.total)));
        }
        sum += nc.total;
    }
    let tt = projection.total_time;
    if !tt.is_finite() || tt < 0.0 {
        v.push(Violation::new("total-time-range", format!("total_time = {tt}")));
    }
    if (tt - sum).abs() > sum.abs().max(1e-300) * 1e-6 {
        v.push(Violation::new("total-time-sum", format!("total_time {tt} differs from summed node costs {sum}")));
    }
    for (stmt, c) in projection.per_stmt.iter() {
        for (what, val) in [("total", c.total), ("tc", c.tc), ("tm", c.tm), ("overlap", c.overlap)] {
            if !val.is_finite() || val < 0.0 {
                v.push(Violation::new("stmt-cost-nonneg", format!("{stmt:?}: {what} = {val}")));
            }
        }
    }
    v
}

/// Check the cost-sanity invariants of a columnar sweep arena
/// ([`ProjectionColumns`]): every point's block aggregates are finite,
/// non-negative, and decompose as `total = Tc + Tm − To`; the achieved
/// overlap fraction δ lies in `[0, 1]` and is consistent with the stored
/// To; the memory-bound verdict matches `Tm > Tc`; and the per-statement
/// row mass never exceeds the point total (statement costs are a
/// partition of a subset of the block costs).
///
/// Oracle-free, like [`check_projection`] — these hold for *every* arena
/// regardless of plan or machine, so both the fuzzer and the equivalence
/// tests can enforce them without hydrating a single projection.
pub fn check_columns(cols: &ProjectionColumns) -> Vec<Violation> {
    let mut v = Vec::new();
    for i in 0..cols.points() {
        let total = cols.total(i);
        let (tc, tm, ov) = cols.block_totals(i);
        for (what, val) in [("tc", tc), ("tm", tm), ("overlap", ov), ("total", total)] {
            if !val.is_finite() || val < 0.0 {
                v.push(Violation::new("cols-cost-nonneg", format!("point {i}: {what} = {val}")));
            }
        }
        if ov > tc.min(tm) * (1.0 + PROB_EPS) + f64::MIN_POSITIVE {
            v.push(Violation::new(
                "cols-overlap-bound",
                format!("point {i}: overlap {ov} exceeds min(tc {tc}, tm {tm})"),
            ));
        }
        let recomposed = tc + tm - ov;
        if (total - recomposed).abs() > recomposed.abs().max(1e-300) * 1e-9 {
            v.push(Violation::new(
                "cols-total-decomposition",
                format!("point {i}: total {total} != tc + tm - overlap = {recomposed}"),
            ));
        }
        let delta = cols.delta(i);
        if !delta.is_finite() || !(0.0..=1.0 + PROB_EPS).contains(&delta) {
            v.push(Violation::new("cols-delta-range", format!("point {i}: delta = {delta}")));
        }
        let bound = tc.min(tm) * delta;
        if (ov - bound).abs() > bound.abs().max(1e-300) * 1e-9 {
            v.push(Violation::new(
                "cols-delta-consistency",
                format!("point {i}: overlap {ov} != delta {delta} * min(tc, tm)"),
            ));
        }
        if cols.memory_bound(i) != (tm > tc) {
            v.push(Violation::new(
                "cols-verdict",
                format!("point {i}: memory_bound {} but tc = {tc}, tm = {tm}", cols.memory_bound(i)),
            ));
        }
        let mut stmt_mass = 0.0f64;
        for c in cols.stmt_row(i) {
            for (what, val) in [("total", c.total), ("tc", c.tc), ("tm", c.tm), ("overlap", c.overlap)] {
                if !val.is_finite() || val < 0.0 {
                    v.push(Violation::new(
                        "cols-stmt-cost-nonneg",
                        format!("point {i} slot {} ({:?}): {what} = {val}", c.slot, c.stmt),
                    ));
                }
            }
            stmt_mass += c.total;
        }
        if stmt_mass > total * (1.0 + CONS_EPS) + CONS_EPS {
            v.push(Violation::new(
                "cols-stmt-mass",
                format!("point {i}: statement mass {stmt_mass} exceeds point total {total}"),
            ));
        }
    }
    v
}
