//! Differential validation of the analytic model against executed oracles.
//!
//! The paper's central claim is that the statically-built Bayesian
//! Execution Tree predicts dynamic execution without running the target.
//! This crate continuously *checks* that claim against the two independent
//! oracles that already exist in-tree:
//!
//! 1. the minilang interpreter/VM (`xflow-minilang`), which yields the
//!    *true* per-statement visit counts and branch outcomes for a given
//!    input and RNG seed, and
//! 2. the execution-driven cost simulator (`xflow-sim`), which replays
//!    every dynamic operation through a cache hierarchy and issue model
//!    for a ground-truth time.
//!
//! [`validate_program`] runs both oracles with the same seed the profiled
//! run used, so the BET's analytic ENR must match the executed visit
//! counts *exactly* (up to f64 round-off; see [`ValidationConfig`]), and
//! the projected per-block times are compared against the simulated times
//! with a documented tolerance — the Kerncraft discipline (analytic
//! predictions validated against measured runs) applied to this model.
//!
//! On top of the validator, [`gen`] provides a deterministic (seeded, no
//! wall-clock) random minilang program generator and [`fuzz`] a driver
//! that pushes generated programs through parse → translate → BET →
//! projection hunting for panics and invariant violations, shrinking any
//! failure to a minimal reproducer.

pub mod fuzz;
pub mod gen;
pub mod invariants;
pub mod jsonfmt;
pub mod report;

pub use fuzz::{run_fuzz, FuzzConfig, FuzzFailure, FuzzSummary};
pub use gen::{generate, render, GenConfig, GenProgram};
pub use invariants::{check_bet, check_columns, check_projection, Violation};
pub use jsonfmt::to_json;
pub use report::{
    profiles_agree, validate_program, validate_source, validate_workload, ValidateError, ValidationConfig,
    ValidationReport,
};

use std::sync::OnceLock;
use xflow_hw::LibraryRegistry;

/// Process-wide calibrated library registry (same calibration the root
/// pipeline uses: 512 samples per library function, deterministic).
pub fn default_library() -> &'static LibraryRegistry {
    static LIBS: OnceLock<LibraryRegistry> = OnceLock::new();
    LIBS.get_or_init(|| xflow_sim::calibrate_library(512))
}
