//! Invariant fuzzer: push generated programs through the full pipeline
//! hunting for panics and invariant violations.
//!
//! For every seed, [`run_fuzz`] generates a program ([`crate::gen`]) and
//! checks, under `catch_unwind`:
//!
//! 1. parse, and print → re-parse round-trip;
//! 2. interpreter and VM agree bit-for-bit on dynamic behavior;
//! 3. translate → BET build → every structural invariant
//!    ([`crate::invariants::check_bet`]);
//! 4. projection on every configured machine →
//!    [`crate::invariants::check_projection`];
//! 5. for differential-safe programs (no `while`/`break`/`continue`/
//!    early-`return`), the full [`crate::validate_program`] with exact
//!    analytic-vs-executed ENR matching (times unchecked: generated
//!    programs validate counts and invariants, not model accuracy).
//!
//! Graceful rejections (step-limit exhaustion, runtime errors such as
//! division by zero, BET size caps) are *not* failures — the pipeline
//! said no politely. Panics and invariant/differential violations are.
//! Failures are shrunk by greedy statement deletion to a minimal
//! reproducer and optionally dumped to `fuzz-repro-<seed>.ml`.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;

use serde::Serialize;
use xflow_hw::MachineModel;
use xflow_minilang as ml;
use xflow_minilang::InputSpec;
use xflow_sim::SimConfig;

use crate::gen::{generate, render, GenConfig, GenProgram, Rng};
use crate::report::{profiles_agree, validate_program, ValidationConfig};
use crate::{default_library, invariants};

/// Fuzz campaign configuration.
#[derive(Debug, Clone)]
pub struct FuzzConfig {
    /// Number of programs to generate and check.
    pub programs: u64,
    /// Master seed; program `i` gets the `i`-th draw of a splitmix64
    /// stream seeded with this, so campaigns are reproducible and any
    /// failure is reproducible from its own recorded seed alone.
    pub seed: u64,
    /// Base generator configuration (`allow_escapes` is toggled per
    /// program: every third program exercises the escape dialect).
    pub gen: GenConfig,
    /// Machines to project on (default: BG/Q and Xeon).
    pub machines: Vec<MachineModel>,
    /// Where to write shrunken reproducers (`None` = don't write).
    pub repro_dir: Option<PathBuf>,
    /// Cap on candidate evaluations during shrinking.
    pub max_shrink_evals: usize,
}

impl Default for FuzzConfig {
    fn default() -> Self {
        Self {
            programs: 200,
            seed: 0x0F05_5EED,
            gen: GenConfig::default(),
            machines: vec![xflow_hw::bgq(), xflow_hw::xeon()],
            repro_dir: None,
            max_shrink_evals: 400,
        }
    }
}

/// One shrunken failure.
#[derive(Debug, Clone, Serialize)]
pub struct FuzzFailure {
    /// The per-program seed (reproduce with `generate(seed, ..)`).
    pub seed: u64,
    /// Whether the escape dialect was enabled for this program.
    pub escapes: bool,
    /// What went wrong (panic payload, violation, or differential
    /// mismatch) — for the *shrunken* program.
    pub message: String,
    /// Minimal reproducer source.
    pub source: String,
    /// Statement-line count before and after shrinking.
    pub original_lines: usize,
    pub shrunk_lines: usize,
    /// Where the reproducer was written, if a repro dir was configured.
    pub repro_path: Option<String>,
}

/// Campaign totals.
#[derive(Debug, Clone, Serialize)]
pub struct FuzzSummary {
    pub programs: u64,
    pub passed: u64,
    /// Gracefully rejected (runtime error / step limit / size cap).
    pub rejected: u64,
    pub failures: Vec<FuzzFailure>,
}

impl FuzzSummary {
    pub fn ok(&self) -> bool {
        self.failures.is_empty()
    }

    /// Render the human-readable campaign summary.
    pub fn render(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "fuzz: {} programs, {} passed, {} rejected, {} failed",
            self.programs,
            self.passed,
            self.rejected,
            self.failures.len()
        );
        for f in &self.failures {
            let _ = writeln!(
                out,
                "  seed {:#x}{}: {} (shrunk {} -> {} lines{})",
                f.seed,
                if f.escapes { " [escapes]" } else { "" },
                f.message,
                f.original_lines,
                f.shrunk_lines,
                f.repro_path.as_ref().map(|p| format!(", repro at {p}")).unwrap_or_default()
            );
        }
        out
    }
}

/// What one program check concluded.
enum Outcome {
    Pass,
    /// The pipeline declined gracefully (not a bug).
    Rejected,
    /// Panic, invariant violation, or differential mismatch.
    Failed(String),
}

/// Interpreter limits for generated programs: generous enough for every
/// structurally-bounded program the generator emits (loop bounds ≤ ~12,
/// depth ≤ 3, N = 8), tight enough that a runaway loop rejects quickly.
fn fuzz_limits() -> ml::Limits {
    ml::Limits { max_steps: 2_000_000, max_depth: 64 }
}

/// Run one program through the pipeline. Panics become `Failed`.
fn check_program(src: &str, escapes: bool, machines: &[MachineModel]) -> Outcome {
    let result = catch_unwind(AssertUnwindSafe(|| check_program_inner(src, escapes, machines)));
    match result {
        Ok(outcome) => outcome,
        Err(payload) => {
            let msg = payload
                .downcast_ref::<&str>()
                .map(|s| s.to_string())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "non-string panic payload".to_string());
            Outcome::Failed(format!("panic: {msg}"))
        }
    }
}

fn check_program_inner(src: &str, escapes: bool, machines: &[MachineModel]) -> Outcome {
    // 1. parse + print round-trip (the printer must emit equivalent code)
    let prog = match ml::parse(src) {
        Ok(p) => p,
        Err(e) => return Outcome::Failed(format!("generated program failed to parse: {e}")),
    };
    let printed = ml::print(&prog);
    let reparsed = match ml::parse(&printed) {
        Ok(p) => p,
        Err(e) => return Outcome::Failed(format!("printed program failed to re-parse: {e}")),
    };

    // 2. both engines, same seed, must agree (and the round-tripped
    // program must behave identically to the original)
    let inputs = InputSpec::new();
    let limits = fuzz_limits();
    let seed = ml::DEFAULT_SEED;
    let (prof, _, ret) = match ml::run_with_limits_seeded(&prog, &inputs, ml::NullTracer, limits, seed) {
        Ok(r) => r,
        Err(_) => return Outcome::Rejected,
    };
    let vm = match ml::compile(&prog) {
        Ok(v) => v,
        Err(e) => return Outcome::Failed(format!("VM compile failed where interpreter ran: {e}")),
    };
    match ml::run_vm_with_limits_seeded(&vm, &inputs, ml::NullTracer, limits, seed) {
        Ok((vm_prof, _, vm_ret)) => {
            if !profiles_agree(&prof, &vm_prof) || ret.to_bits() != vm_ret.to_bits() {
                return Outcome::Failed("interpreter and VM disagree on dynamic behavior".to_string());
            }
        }
        Err(e) => return Outcome::Failed(format!("VM errored where interpreter ran: {e}")),
    }
    match ml::run_with_limits_seeded(&reparsed, &inputs, ml::NullTracer, limits, seed) {
        Ok((rprof, _, rret)) => {
            if !profiles_agree(&prof, &rprof) || ret.to_bits() != rret.to_bits() {
                return Outcome::Failed("print/re-parse round-trip changed dynamic behavior".to_string());
            }
        }
        Err(e) => return Outcome::Failed(format!("round-tripped program errored: {e}")),
    }

    // 3. translate → BET → structural invariants
    let tr = match ml::translate(&prog, &prof) {
        Ok(t) => t,
        Err(_) => return Outcome::Rejected,
    };
    let env = crate::report::initial_env(&tr, &inputs);
    let bet = match xflow_bet::build(&tr.skeleton, &env) {
        Ok(b) => b,
        Err(_) => return Outcome::Rejected,
    };
    let stmts = tr.skeleton.source_statement_count();
    let violations = invariants::check_bet(&bet, stmts, 2.0);
    if let Some(v) = violations.first() {
        return Outcome::Failed(format!("BET invariant {}: {}", v.invariant, v.detail));
    }

    // 4. projection invariants on every machine
    let libs = default_library();
    let plan = xflow_hotspot::ProjectionPlan::new(&bet, libs);
    for m in machines {
        let projection = plan.evaluate(m, &xflow_hw::Roofline);
        let violations = invariants::check_projection(&projection);
        if let Some(v) = violations.first() {
            return Outcome::Failed(format!("projection invariant on {}: {}: {}", m.name, v.invariant, v.detail));
        }
    }

    // 4b. columnar batch over the same machines (group remainder included:
    // the machine list is rarely a lane multiple) — structural invariants
    // on the arena, and its totals must be bit-identical to the scalar
    // evaluator the projections above came from
    let specs: Vec<xflow_hw::MachineSpec> = machines.iter().map(xflow_hw::MachineSpec::resolve).collect();
    let kernel = plan.kernel();
    let cols = kernel.evaluate_columns(&specs);
    if let Some(v) = invariants::check_columns(&cols).first() {
        return Outcome::Failed(format!("columns invariant: {}: {}", v.invariant, v.detail));
    }
    for (i, m) in machines.iter().enumerate() {
        let scalar = plan.evaluate(m, &xflow_hw::Roofline);
        if cols.total(i).to_bits() != scalar.total_time.to_bits() {
            return Outcome::Failed(format!(
                "columns total diverges from scalar evaluate on {}: {} vs {}",
                m.name,
                cols.total(i),
                scalar.total_time
            ));
        }
    }

    // 5. full differential validation for the exact dialect
    if !escapes {
        let cfg = ValidationConfig { check_times: false, ..ValidationConfig::default() };
        let machine = &machines[0];
        match validate_program(&prog, &inputs, machine, SimConfig::default(), libs, &cfg) {
            Ok(report) => {
                if !report.passed {
                    return Outcome::Failed(format!(
                        "differential validation failed: {}",
                        report.failures.first().map(String::as_str).unwrap_or("?")
                    ));
                }
            }
            Err(e) => return Outcome::Failed(format!("validate errored after pipeline succeeded: {e}")),
        }
    }

    Outcome::Pass
}

/// Greedy statement-deletion shrinking: adopt any one-deletion candidate
/// that still fails (for any reason — the minimal repro may surface a
/// cleaner message than the original), iterate to fixpoint.
fn shrink(p: &GenProgram, escapes: bool, machines: &[MachineModel], budget: usize) -> (GenProgram, String) {
    let mut cur = p.clone();
    let mut msg = match check_program(&render(&cur), escapes, machines) {
        Outcome::Failed(m) => m,
        _ => return (cur, "failure did not reproduce during shrinking".to_string()),
    };
    let mut evals = 0usize;
    'outer: loop {
        for cand in cur.shrink_candidates() {
            if evals >= budget {
                break 'outer;
            }
            evals += 1;
            if let Outcome::Failed(m) = check_program(&render(&cand), escapes, machines) {
                cur = cand;
                msg = m;
                continue 'outer;
            }
        }
        break;
    }
    (cur, msg)
}

/// Run a fuzz campaign.
pub fn run_fuzz(cfg: &FuzzConfig) -> FuzzSummary {
    let mut master = Rng(cfg.seed);
    let mut passed = 0u64;
    let mut rejected = 0u64;
    let mut failures = Vec::new();

    for i in 0..cfg.programs {
        let seed = master.next();
        // every third program exercises the expectation-only dialect
        let escapes = cfg.gen.allow_escapes || i % 3 == 2;
        let gen_cfg = GenConfig { allow_escapes: escapes, ..cfg.gen.clone() };
        let prog = generate(seed, &gen_cfg);
        let src = render(&prog);
        match check_program(&src, escapes, &cfg.machines) {
            Outcome::Pass => passed += 1,
            Outcome::Rejected => rejected += 1,
            Outcome::Failed(_) => {
                let original_lines = src.lines().count();
                let (shrunk, message) = shrink(&prog, escapes, &cfg.machines, cfg.max_shrink_evals);
                let source = render(&shrunk);
                let shrunk_lines = source.lines().count();
                let repro_path = cfg.repro_dir.as_ref().map(|dir| {
                    let path = dir.join(format!("fuzz-repro-{seed:#x}.ml"));
                    let body = format!(
                        "// fuzz reproducer: seed {seed:#x}, escapes = {escapes}\n// failure: {message}\n{source}"
                    );
                    if let Err(e) = std::fs::create_dir_all(dir).and_then(|()| std::fs::write(&path, body)) {
                        eprintln!("warning: could not write reproducer {}: {e}", path.display());
                    }
                    path.display().to_string()
                });
                failures.push(FuzzFailure { seed, escapes, message, source, original_lines, shrunk_lines, repro_path });
            }
        }
    }

    FuzzSummary { programs: cfg.programs, passed, rejected, failures }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_campaign_is_clean_and_deterministic() {
        let cfg = FuzzConfig { programs: 12, machines: vec![xflow_hw::generic()], ..FuzzConfig::default() };
        let a = run_fuzz(&cfg);
        let b = run_fuzz(&cfg);
        assert!(a.ok(), "fuzz failures:\n{}", a.render());
        assert_eq!(a.passed, b.passed);
        assert_eq!(a.rejected, b.rejected);
    }

    #[test]
    fn shrinker_reduces_an_artificial_failure() {
        // A program that "fails" under an always-failing oracle shrinks to
        // nothing; here we just exercise candidate generation on a real
        // program to make sure deletion paths are well-formed.
        let p = generate(99, &GenConfig { allow_escapes: true, ..GenConfig::default() });
        for cand in p.shrink_candidates() {
            // every candidate must still render and parse or reject cleanly
            let src = render(&cand);
            let _ = xflow_minilang::parse(&src);
        }
    }
}
