//! The differential validator: analytic model vs executed oracles.
//!
//! For one program + machine + seed, [`validate_program`]:
//!
//! 1. runs the program on **both** execution engines (tree-walking
//!    interpreter and bytecode VM) with the given seed and checks they
//!    observed bit-identical dynamic behavior;
//! 2. profiles, translates, and builds the BET exactly like the modeling
//!    pipeline, then checks every structural invariant
//!    ([`crate::invariants`]);
//! 3. replays the program through `xflow-sim`'s cache + issue model with
//!    the *same* seed for a ground-truth time whose dynamic profile must
//!    agree with the oracle run;
//! 4. compares the BET's analytic ENR per skeleton statement, per branch
//!    arm, and per library function against the executed visit counts —
//!    these must match *exactly* (to [`ValidationConfig::enr_rel_tol`],
//!    which only absorbs f64 round-off of the `hits/evals × evals`
//!    probability chain);
//! 5. compares projected per-block times against simulated per-block
//!    times, reporting relative error per block and gating hot blocks on
//!    [`ValidationConfig::hot_time_rel_tol`].
//!
//! ENR exactness is gated on statements whose expected visit count the
//! model derives without approximation (comp, loop, while, call, branch
//! arms, library calls). `break`/`continue`/`return` statements inside
//! loops are modeled with the truncated-geometric expectation (paper
//! Section V-B): their ENR is an expectation over the *ensemble* of runs,
//! not a per-run count, so they are reported but exempt from the
//! exactness gate.

use serde::Serialize;
use std::collections::HashMap;
use xflow_bet::{BetKind, BuildError};
use xflow_hw::{LibraryRegistry, MachineModel, Roofline};
use xflow_minilang as ml;
use xflow_minilang::{InputSpec, Profile, RuntimeError, TranslateError, Translation};
use xflow_sim::SimConfig;
use xflow_skeleton as sk;
use xflow_skeleton::ParseError;
use xflow_workloads::{Scale, Workload};

use crate::invariants::{check_bet, check_projection, Violation};

/// Knobs of one validation run. The defaults are the tolerances asserted
/// by `tests/validate_differential.rs` and documented in DESIGN.md §9.
#[derive(Debug, Clone)]
pub struct ValidationConfig {
    /// RNG seed shared by the profiled run, both engines, and the
    /// simulator (`rnd()` streams are identical across all four).
    pub seed: u64,
    /// Relative tolerance for analytic-vs-executed visit counts. The
    /// analytic side multiplies profiled probabilities (`hits/evals`)
    /// back up the chain, so `(a/b)·b` round-off is the only admissible
    /// error — `1e-9` is ~10⁷ ULPs of headroom over that.
    pub enr_rel_tol: f64,
    /// A block is "hot" when its simulated share of total time is at
    /// least this fraction; only hot blocks gate on time error.
    pub hot_share: f64,
    /// Maximum relative error of projected vs simulated time for hot
    /// blocks. The analytic roofline abstracts the simulator's cache
    /// state and issue model, and the translator charges branch
    /// condition costs into the preceding comp run, so per-block errors
    /// are large where those simplifications bite (the paper itself
    /// reports per-block errors up to ~43% against real hardware; our
    /// cycle simulator diverges further on deep-memory machines). The
    /// worst observed error across the five workloads × four machines
    /// at `Scale::Test` is 2.44× (STASSUIJ `comp#30` on Xeon); `3.0`
    /// gives modest headroom while still catching order-of-magnitude
    /// model breaks.
    pub hot_time_rel_tol: f64,
    /// Maximum relative error of projected vs simulated total time.
    /// Worst observed across the sweep is 0.49 (SRAD on BG/Q, where the
    /// roofline's perfect overlap flatters the memory-bound stencil);
    /// `0.60` is the asserted ceiling.
    pub total_time_rel_tol: f64,
    /// BET node count per source statement (paper: below 2×).
    pub max_size_ratio: f64,
    /// Compare times at all (the fuzzer disables this: generated
    /// programs check counts and invariants, not model accuracy).
    pub check_times: bool,
}

impl Default for ValidationConfig {
    fn default() -> Self {
        Self {
            seed: ml::DEFAULT_SEED,
            enr_rel_tol: 1e-9,
            hot_share: 0.02,
            hot_time_rel_tol: 3.0,
            total_time_rel_tol: 0.60,
            max_size_ratio: 2.0,
            check_times: true,
        }
    }
}

/// Why a validation run could not even be performed (distinct from a
/// validation *failure*, which yields a report with `passed = false`).
#[derive(Debug)]
pub enum ValidateError {
    Parse(ParseError),
    Runtime(RuntimeError),
    Translate(TranslateError),
    Build(BuildError),
}

impl std::fmt::Display for ValidateError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ValidateError::Parse(e) => write!(f, "parse error: {e}"),
            ValidateError::Runtime(e) => write!(f, "runtime error: {e}"),
            ValidateError::Translate(e) => write!(f, "translate error: {e}"),
            ValidateError::Build(e) => write!(f, "BET build error: {e}"),
        }
    }
}

impl std::error::Error for ValidateError {}

impl From<ParseError> for ValidateError {
    fn from(e: ParseError) -> Self {
        ValidateError::Parse(e)
    }
}
impl From<RuntimeError> for ValidateError {
    fn from(e: RuntimeError) -> Self {
        ValidateError::Runtime(e)
    }
}
impl From<TranslateError> for ValidateError {
    fn from(e: TranslateError) -> Self {
        ValidateError::Translate(e)
    }
}
impl From<BuildError> for ValidateError {
    fn from(e: BuildError) -> Self {
        ValidateError::Build(e)
    }
}

/// One analytic-vs-executed visit-count comparison.
#[derive(Debug, Clone, Serialize)]
pub struct EnrCheck {
    /// Skeleton statement id.
    pub stmt: u32,
    /// Statement name (label or generated).
    pub name: String,
    /// Skeleton statement kind keyword.
    pub kind: String,
    /// Analytic expected number of repetitions (summed over contexts).
    pub analytic: f64,
    /// Executed visit count.
    pub measured: f64,
    /// `|analytic − measured| / max(measured, 1)`.
    pub rel_err: f64,
    /// Within tolerance *and* rounds to the executed integer count.
    pub exact: bool,
    /// Whether this check participates in the pass/fail gate.
    pub gated: bool,
}

/// One branch-arm comparison (`arm = None` is the else arm).
#[derive(Debug, Clone, Serialize)]
pub struct ArmCheck {
    pub stmt: u32,
    pub name: String,
    pub arm: Option<usize>,
    pub analytic: f64,
    pub measured: f64,
    pub rel_err: f64,
    pub exact: bool,
}

/// One library-function comparison: invocation counts and times.
#[derive(Debug, Clone, Serialize)]
pub struct LibCheck {
    pub func: String,
    pub analytic_calls: f64,
    pub measured_calls: f64,
    pub rel_err: f64,
    pub exact: bool,
    pub analytic_seconds: f64,
    pub simulated_seconds: f64,
}

/// One projected-vs-simulated block time comparison.
#[derive(Debug, Clone, Serialize)]
pub struct TimeCheck {
    pub stmt: u32,
    pub name: String,
    pub analytic_seconds: f64,
    pub simulated_seconds: f64,
    /// `|analytic − simulated| / simulated` (`0` when both are zero).
    pub rel_err: f64,
    /// Simulated share of total simulated time.
    pub sim_share: f64,
    /// Hot blocks gate on [`ValidationConfig::hot_time_rel_tol`].
    pub hot: bool,
}

/// Everything one validation run learned. Serializes to the `--json`
/// report via [`crate::jsonfmt::to_json`].
#[derive(Debug, Clone, Serialize)]
pub struct ValidationReport {
    pub workload: String,
    pub machine: String,
    pub seed: u64,
    /// Interpreter, VM, and superinstruction-fused VM observed
    /// bit-identical dynamic behavior (three-way check).
    pub engines_agree: bool,
    /// The simulator's replay observed the same dynamic behavior as the
    /// profiled run (same seed ⇒ must be identical).
    pub sim_profile_agrees: bool,
    pub bet_nodes: usize,
    pub skeleton_stmts: usize,
    pub size_ratio: f64,
    pub enr: Vec<EnrCheck>,
    pub arms: Vec<ArmCheck>,
    pub libs: Vec<LibCheck>,
    pub times: Vec<TimeCheck>,
    pub analytic_total_seconds: f64,
    pub simulated_total_seconds: f64,
    pub total_time_rel_err: f64,
    /// All gated ENR, arm, and library count checks were exact.
    pub enr_exact: bool,
    pub max_gated_enr_rel_err: f64,
    pub max_hot_time_rel_err: f64,
    pub invariant_violations: Vec<Violation>,
    pub passed: bool,
    /// Human-readable reasons when `passed` is false.
    pub failures: Vec<String>,
}

impl ValidationReport {
    /// Render the human-readable report.
    pub fn render(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        let _ = writeln!(out, "validate {} on {} (seed {:#x})", self.workload, self.machine, self.seed);
        let _ = writeln!(
            out,
            "  engines agree: {}   sim profile agrees: {}",
            yes_no(self.engines_agree),
            yes_no(self.sim_profile_agrees)
        );
        let _ = writeln!(
            out,
            "  BET: {} nodes / {} statements (ratio {:.2})",
            self.bet_nodes, self.skeleton_stmts, self.size_ratio
        );
        let _ = writeln!(
            out,
            "  ENR: {} statement, {} arm, {} library checks; exact: {} (max gated rel err {:.2e})",
            self.enr.len(),
            self.arms.len(),
            self.libs.len(),
            yes_no(self.enr_exact),
            self.max_gated_enr_rel_err
        );
        if !self.times.is_empty() {
            let _ = writeln!(out, "  block times (projected vs simulated):");
            let _ = writeln!(
                out,
                "    {:<28} {:>12} {:>12} {:>8} {:>6}",
                "block", "projected", "simulated", "err %", "hot"
            );
            let mut rows: Vec<&TimeCheck> = self.times.iter().collect();
            rows.sort_by(|a, b| {
                b.simulated_seconds
                    .partial_cmp(&a.simulated_seconds)
                    .unwrap_or(std::cmp::Ordering::Equal)
                    .then(a.stmt.cmp(&b.stmt))
            });
            for t in rows {
                let _ = writeln!(
                    out,
                    "    {:<28} {:>12.4e} {:>12.4e} {:>8.1} {:>6}",
                    t.name,
                    t.analytic_seconds,
                    t.simulated_seconds,
                    t.rel_err * 100.0,
                    if t.hot { "*" } else { "" }
                );
            }
            let _ = writeln!(
                out,
                "  total: projected {:.4e} s vs simulated {:.4e} s (err {:.1}%)",
                self.analytic_total_seconds,
                self.simulated_total_seconds,
                self.total_time_rel_err * 100.0
            );
        }
        if !self.invariant_violations.is_empty() {
            let _ = writeln!(out, "  invariant violations:");
            for v in &self.invariant_violations {
                let _ = writeln!(out, "    [{}] {}", v.invariant, v.detail);
            }
        }
        if self.passed {
            let _ = writeln!(out, "  PASS");
        } else {
            let _ = writeln!(out, "  FAIL");
            for f in &self.failures {
                let _ = writeln!(out, "    - {f}");
            }
        }
        out
    }
}

fn yes_no(b: bool) -> &'static str {
    if b {
        "yes"
    } else {
        "no"
    }
}

/// Validate a built-in workload at a scale on a machine.
pub fn validate_workload(
    w: &Workload,
    scale: Scale,
    machine: &MachineModel,
    libs: &LibraryRegistry,
    cfg: &ValidationConfig,
) -> Result<ValidationReport, ValidateError> {
    let prog = ml::parse(w.source)?;
    let inputs = w.inputs(scale);
    let sim_cfg = w.sim_config(&prog, machine);
    let mut report = validate_program(&prog, &inputs, machine, sim_cfg, libs, cfg)?;
    report.workload = w.name.to_string();
    Ok(report)
}

/// Validate a program given as source text (no vectorization overrides).
pub fn validate_source(
    src: &str,
    inputs: &InputSpec,
    machine: &MachineModel,
    libs: &LibraryRegistry,
    cfg: &ValidationConfig,
) -> Result<ValidationReport, ValidateError> {
    let prog = ml::parse(src)?;
    validate_program(&prog, inputs, machine, SimConfig::default(), libs, cfg)
}

/// Rebuild the modeling pipeline's initial context environment: declared
/// input defaults overridden by the provided inputs.
pub fn initial_env(translation: &Translation, inputs: &InputSpec) -> sk::Env {
    let mut env = sk::Env::new();
    let mut defaults: Vec<(&String, &f64)> = translation.inputs.iter().collect();
    defaults.sort_by_key(|(k, _)| k.as_str());
    for (k, v) in defaults {
        env.insert(k.clone(), sk::Value::Scalar(inputs.get_or(k, *v)));
    }
    for (k, v) in inputs.iter() {
        env.insert(k.to_string(), sk::Value::Scalar(v));
    }
    env
}

/// Run the full differential validation of one program.
pub fn validate_program(
    prog: &ml::Program,
    inputs: &InputSpec,
    machine: &MachineModel,
    sim_cfg: SimConfig,
    libs: &LibraryRegistry,
    cfg: &ValidationConfig,
) -> Result<ValidationReport, ValidateError> {
    let limits = ml::Limits::default();

    // 1. oracle runs on all three engines, same seed: the reference
    // interpreter, the bytecode VM, and the superinstruction-fused VM
    // (whose peephole rewrite must be observationally invisible).
    let (prof, _, ret) = ml::run_with_limits_seeded(prog, inputs, ml::NullTracer, limits, cfg.seed)?;
    let vm = ml::compile(prog)?;
    let (vm_prof, _, vm_ret) = ml::run_vm_with_limits_seeded(&vm, inputs, ml::NullTracer, limits, cfg.seed)?;
    let fused = ml::fuse_program(&vm);
    let (fz_prof, _, fz_ret) = ml::run_vm_with_limits_seeded(&fused, inputs, ml::NullTracer, limits, cfg.seed)?;
    let engines_agree = profiles_agree(&prof, &vm_prof)
        && ret.to_bits() == vm_ret.to_bits()
        && profiles_agree(&vm_prof, &fz_prof)
        && vm_ret.to_bits() == fz_ret.to_bits();

    // 2. model pipeline: translate → BET → plan → projection.
    let tr = ml::translate(prog, &prof)?;
    let env = initial_env(&tr, inputs);
    let bet = xflow_bet::build(&tr.skeleton, &env)?;
    let skeleton_stmts = tr.skeleton.source_statement_count();
    let mut violations = check_bet(&bet, skeleton_stmts, cfg.max_size_ratio);
    let plan = xflow_hotspot::ProjectionPlan::new(&bet, libs);
    let projection = plan.evaluate(machine, &Roofline);
    violations.extend(check_projection(&projection));

    // 3. ground-truth replay through the simulator, same seed.
    let sim = xflow_sim::simulate_with_seed(prog, inputs, machine, sim_cfg, cfg.seed)?;
    let sim_profile_agrees = profiles_agree(&prof, &sim.profile);

    let names = tr.skeleton.stmt_names();
    let name_of = |s: sk::StmtId| names.get(&s).cloned().unwrap_or_else(|| format!("#{}", s.0));
    let mut kinds: HashMap<sk::StmtId, &'static str> = HashMap::new();
    tr.skeleton.visit_stmts(|_, s| {
        kinds.insert(s.id, s.kind.keyword());
    });

    // 4a. per-statement ENR vs executed visit counts.
    let enr = bet.enr();
    let mut analytic: HashMap<sk::StmtId, f64> = HashMap::new();
    for node in bet.iter() {
        if matches!(node.kind, BetKind::Arm { .. }) {
            continue; // branch arms are compared per arm index below
        }
        if let Some(s) = node.stmt {
            *analytic.entry(s).or_insert(0.0) += enr[node.id.0 as usize];
        }
    }
    // minilang loop statements are remapped to their per-iteration
    // bookkeeping comp by `fold_loop_bookkeeping`: the statement executes
    // once per loop *entry* while the comp models per-*iteration* cost,
    // so they are no oracle for comp visit counts (trip counts are still
    // verified through the skeleton loop statements and body comps).
    let ml_loops = collect_loop_ids(prog);
    let mut measured: HashMap<sk::StmtId, u64> = HashMap::new();
    for (mid, sid) in &tr.map {
        if ml_loops.contains(mid) && kinds.get(sid).copied() == Some("comp") {
            continue;
        }
        // every other minilang statement folded into one skeleton
        // statement belongs to the same straight-line run, so counts
        // agree; max is defensive against partial runs.
        let c = prof.stmt_exec.get(mid).copied().unwrap_or(0);
        let e = measured.entry(*sid).or_insert(0);
        *e = (*e).max(c);
    }
    let mut enr_checks = Vec::new();
    let mut ids: Vec<sk::StmtId> = measured.keys().copied().collect();
    ids.sort();
    for sid in ids {
        let kind = kinds.get(&sid).copied().unwrap_or("?");
        if matches!(kind, "branch" | "let" | "lib") {
            continue; // no 1:1 node count: arms/libs have their own checks
        }
        let m = measured[&sid] as f64;
        let a = analytic.get(&sid).copied().unwrap_or(0.0);
        let rel_err = (a - m).abs() / m.max(1.0);
        let exact = rel_err <= cfg.enr_rel_tol && a.round() == m;
        // escape statements are modeled with the truncated-geometric
        // expectation — reported, but not gated (see module docs).
        let gated = !matches!(kind, "return" | "break" | "continue");
        enr_checks.push(EnrCheck {
            stmt: sid.0,
            name: name_of(sid),
            kind: kind.to_string(),
            analytic: a,
            measured: m,
            rel_err,
            exact,
            gated,
        });
    }

    // 4b. per-arm branch probabilities: pair minilang `if` statements with
    // skeleton `branch` statements positionally (both walks are pre-order
    // per function and translation emits exactly one branch per `if`).
    let mut arm_enr: HashMap<(sk::StmtId, Option<usize>), f64> = HashMap::new();
    for node in bet.iter() {
        if let BetKind::Arm { index } = node.kind {
            if let Some(s) = node.stmt {
                *arm_enr.entry((s, index)).or_insert(0.0) += enr[node.id.0 as usize];
            }
        }
    }
    let mut sk_branches: HashMap<String, Vec<(sk::StmtId, usize, bool)>> = HashMap::new();
    tr.skeleton.visit_stmts(|f, s| {
        if let sk::StmtKind::Branch { arms, else_body } = &s.kind {
            sk_branches.entry(f.name.clone()).or_default().push((s.id, arms.len(), else_body.is_some()));
        }
    });
    let mut arm_checks = Vec::new();
    for func in &prog.functions {
        let branches = sk_branches.remove(&func.name).unwrap_or_default();
        let ifs = collect_ifs(&func.body);
        for (mif, (bid, n_arms, has_else)) in ifs.iter().zip(&branches) {
            let stats = prof.branches.get(&mif.id);
            let arm_hits = |i: usize| stats.map(|s| s.arm_hits.get(i).copied().unwrap_or(0)).unwrap_or(0);
            let else_hits = stats.map(|s| s.else_hits).unwrap_or(0);
            let mut targets: Vec<(Option<usize>, u64)> = (0..*n_arms).map(|i| (Some(i), arm_hits(i))).collect();
            if *has_else {
                targets.push((None, else_hits));
            }
            for (idx, hits) in targets {
                let a = arm_enr.get(&(*bid, idx)).copied().unwrap_or(0.0);
                let m = hits as f64;
                let rel_err = (a - m).abs() / m.max(1.0);
                arm_checks.push(ArmCheck {
                    stmt: bid.0,
                    name: name_of(*bid),
                    arm: idx,
                    analytic: a,
                    measured: m,
                    rel_err,
                    exact: rel_err <= cfg.enr_rel_tol && a.round() == m,
                });
            }
        }
    }

    // 4c. library calls: analytic ENR × per-statement call count vs the
    // executed call totals (and projected vs simulated library time).
    let freq_hz = sim.freq_ghz * 1e9;
    let mut lib_analytic_calls: HashMap<String, f64> = HashMap::new();
    let mut lib_analytic_secs: HashMap<String, f64> = HashMap::new();
    for node in bet.iter() {
        if let BetKind::Lib { func, calls, .. } = &node.kind {
            let e = enr[node.id.0 as usize];
            *lib_analytic_calls.entry(func.clone()).or_insert(0.0) += e * calls;
            *lib_analytic_secs.entry(func.clone()).or_insert(0.0) += projection.node_costs[node.id.0 as usize].total;
        }
    }
    let mut lib_names: Vec<String> = lib_analytic_calls.keys().cloned().chain(prof.lib_calls.keys().cloned()).collect();
    lib_names.sort();
    lib_names.dedup();
    let mut lib_checks = Vec::new();
    for func in lib_names {
        let a = lib_analytic_calls.get(&func).copied().unwrap_or(0.0);
        let m = prof.lib_calls.get(&func).copied().unwrap_or(0) as f64;
        let rel_err = (a - m).abs() / m.max(1.0);
        lib_checks.push(LibCheck {
            analytic_calls: a,
            measured_calls: m,
            rel_err,
            exact: rel_err <= cfg.enr_rel_tol && a.round() == m,
            analytic_seconds: lib_analytic_secs.get(&func).copied().unwrap_or(0.0),
            simulated_seconds: sim.lib_cycles.get(&func).copied().unwrap_or(0.0) / freq_hz,
            func,
        });
    }

    // 5. per-block times: simulated cycles folded onto skeleton statements
    // vs the projection's per-statement seconds. Library time lives in
    // `lib_checks` (the simulator attributes it per function, not per
    // statement), so it is excluded on both sides here.
    let mut time_checks = Vec::new();
    let mut sim_total_attr = 0.0f64;
    if cfg.check_times {
        let mut sim_secs: HashMap<sk::StmtId, f64> = HashMap::new();
        // fold in sorted statement order: HashMap iteration order differs
        // between instances, and float sums must not depend on it
        let mut cycle_rows: Vec<(ml::MStmtId, f64)> = sim.stmt_cycles.iter().map(|(m, c)| (*m, *c)).collect();
        cycle_rows.sort_by_key(|(m, _)| *m);
        for (mid, cycles) in cycle_rows {
            if let Some(sid) = tr.map.get(&mid) {
                *sim_secs.entry(*sid).or_insert(0.0) += cycles / freq_hz;
            }
        }
        let sim_total = sim.total_cycles / freq_hz;
        sim_total_attr = sim_total;
        let mut ids: Vec<sk::StmtId> = sim_secs.keys().copied().collect();
        for (sid, _) in projection.per_stmt.iter() {
            if !sim_secs.contains_key(&sid) {
                ids.push(sid);
            }
        }
        ids.sort();
        ids.dedup();
        for sid in ids {
            if kinds.get(&sid).copied() == Some("lib") {
                continue;
            }
            let a = projection.per_stmt.get(&sid).map(|c| c.total).unwrap_or(0.0);
            let s = sim_secs.get(&sid).copied().unwrap_or(0.0);
            let rel_err = if s > 0.0 {
                (a - s).abs() / s
            } else if a > 0.0 {
                f64::INFINITY
            } else {
                0.0
            };
            let share = if sim_total > 0.0 { s / sim_total } else { 0.0 };
            time_checks.push(TimeCheck {
                stmt: sid.0,
                name: name_of(sid),
                analytic_seconds: a,
                simulated_seconds: s,
                rel_err,
                sim_share: share,
                hot: share >= cfg.hot_share,
            });
        }
    }

    // verdict
    let mut failures = Vec::new();
    if !engines_agree {
        failures.push("interpreter, VM, and fused VM disagree on dynamic behavior".to_string());
    }
    if !sim_profile_agrees {
        failures.push("simulator replay observed a different dynamic profile than the oracle run".to_string());
    }
    let mut max_gated = 0.0f64;
    let mut enr_exact = true;
    for c in &enr_checks {
        if c.gated {
            max_gated = max_gated.max(c.rel_err);
            if !c.exact {
                enr_exact = false;
                failures.push(format!(
                    "ENR mismatch at {} ({}): analytic {} vs executed {}",
                    c.name, c.kind, c.analytic, c.measured
                ));
            }
        }
    }
    for c in &arm_checks {
        max_gated = max_gated.max(c.rel_err);
        if !c.exact {
            enr_exact = false;
            failures.push(format!(
                "arm ENR mismatch at {} arm {:?}: analytic {} vs executed {}",
                c.name, c.arm, c.analytic, c.measured
            ));
        }
    }
    for c in &lib_checks {
        max_gated = max_gated.max(c.rel_err);
        if !c.exact {
            enr_exact = false;
            failures.push(format!(
                "library call-count mismatch for {}: analytic {} vs executed {}",
                c.func, c.analytic_calls, c.measured_calls
            ));
        }
    }
    let mut max_hot = 0.0f64;
    for t in &time_checks {
        if t.hot {
            max_hot = max_hot.max(t.rel_err);
            if t.rel_err > cfg.hot_time_rel_tol {
                failures.push(format!(
                    "hot block {} time error {:.1}% exceeds {:.1}%",
                    t.name,
                    t.rel_err * 100.0,
                    cfg.hot_time_rel_tol * 100.0
                ));
            }
        }
    }
    let total_time_rel_err = if cfg.check_times && sim_total_attr > 0.0 {
        (projection.total_time - sim_total_attr).abs() / sim_total_attr
    } else {
        0.0
    };
    if cfg.check_times && total_time_rel_err > cfg.total_time_rel_tol {
        failures.push(format!(
            "total time error {:.1}% exceeds {:.1}%",
            total_time_rel_err * 100.0,
            cfg.total_time_rel_tol * 100.0
        ));
    }
    for v in &violations {
        failures.push(format!("invariant {}: {}", v.invariant, v.detail));
    }

    Ok(ValidationReport {
        workload: "<source>".to_string(),
        machine: machine.name.clone(),
        seed: cfg.seed,
        engines_agree,
        sim_profile_agrees,
        bet_nodes: bet.len(),
        skeleton_stmts,
        size_ratio: bet.size_ratio(skeleton_stmts),
        enr: enr_checks,
        arms: arm_checks,
        libs: lib_checks,
        times: time_checks,
        analytic_total_seconds: projection.total_time,
        simulated_total_seconds: sim_total_attr,
        total_time_rel_err,
        enr_exact,
        max_gated_enr_rel_err: max_gated,
        max_hot_time_rel_err: max_hot,
        invariant_violations: violations,
        passed: failures.is_empty(),
        failures,
    })
}

/// Bit-level agreement of two dynamic profiles (visit counts, branch
/// outcomes, loop trips, library calls, printed values).
pub fn profiles_agree(a: &Profile, b: &Profile) -> bool {
    a.stmt_exec == b.stmt_exec
        && a.branches == b.branches
        && a.loops == b.loops
        && a.lib_calls == b.lib_calls
        && a.printed.len() == b.printed.len()
        && a.printed.iter().zip(&b.printed).all(|(x, y)| x.to_bits() == y.to_bits())
}

/// Ids of every `for`/`while` statement in the program.
fn collect_loop_ids(prog: &ml::Program) -> std::collections::HashSet<ml::MStmtId> {
    fn walk(b: &ml::Block, out: &mut std::collections::HashSet<ml::MStmtId>) {
        for s in &b.stmts {
            match &s.kind {
                ml::StmtKind::For { body, .. } | ml::StmtKind::While { body, .. } => {
                    out.insert(s.id);
                    walk(body, out);
                }
                ml::StmtKind::If { arms, else_body } => {
                    for (_, body) in arms {
                        walk(body, out);
                    }
                    if let Some(e) = else_body {
                        walk(e, out);
                    }
                }
                _ => {}
            }
        }
    }
    let mut out = std::collections::HashSet::new();
    for f in &prog.functions {
        walk(&f.body, &mut out);
    }
    out
}

/// Pre-order `if` statements of a minilang block.
fn collect_ifs(block: &ml::Block) -> Vec<&ml::Stmt> {
    fn walk<'a>(b: &'a ml::Block, out: &mut Vec<&'a ml::Stmt>) {
        for s in &b.stmts {
            match &s.kind {
                ml::StmtKind::If { arms, else_body } => {
                    out.push(s);
                    for (_, body) in arms {
                        walk(body, out);
                    }
                    if let Some(e) = else_body {
                        walk(e, out);
                    }
                }
                ml::StmtKind::For { body, .. } | ml::StmtKind::While { body, .. } => walk(body, out),
                _ => {}
            }
        }
    }
    let mut out = Vec::new();
    walk(block, &mut out);
    out
}
