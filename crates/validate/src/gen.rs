//! Deterministic random minilang program generator.
//!
//! Everything is derived from a caller-provided seed through a private
//! splitmix64 stream — no wall-clock, no global state — so a failing
//! program is reproducible from its seed alone and CI runs are stable.
//!
//! Generated programs are **valid by construction**: every variable is
//! initialized before use, array indices are reduced modulo the array
//! length with non-negative operands, loop bounds are small constants or
//! the `N` input, helpers form a call DAG (no recursion), and every
//! helper is called from exactly one site with constant scalar arguments
//! (one BET mount, one context — the paper's ≤2× size bound assumes call
//! sites are not duplicated). Scalars are seeded from `rnd()` so branch
//! arms never bind *modelable* context values, which keeps the BET's
//! context population at one and the generated corpus inside the
//! structural invariants an honest pipeline must uphold.
//!
//! Two dialects:
//! * the **differential-safe** core (`allow_escapes = false`) uses only
//!   constructs whose analytic ENR is exact (counted loops, branches,
//!   calls, library calls) so the fuzzer can demand exact analytic-vs-
//!   executed visit counts;
//! * the **full** dialect adds `while`, `break`, `continue`, early
//!   `return`, and `parfor`, whose truncated-geometric modeling is
//!   expectation-only — those programs are checked structurally.

use std::fmt::Write;

/// Array length of every generated array (indices are reduced mod this).
pub const ARR_LEN: usize = 16;

/// splitmix64 — the same generator family the interpreter's `rnd()` uses,
/// but a private copy so generation and execution streams never couple.
#[derive(Debug, Clone)]
pub struct Rng(pub u64);

impl Rng {
    #[allow(clippy::should_implement_trait)] // fixed-width step, not an iterator
    pub fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `0..n` (n > 0).
    pub fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }

    /// Uniform in `[0, 1)`.
    pub fn unit(&mut self) -> f64 {
        (self.next() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Bernoulli draw.
    pub fn chance(&mut self, p: f64) -> bool {
        self.unit() < p
    }
}

/// Generation knobs.
#[derive(Debug, Clone)]
pub struct GenConfig {
    /// Helper functions besides `main` (0..=max).
    pub max_helpers: usize,
    /// Statements per generated block.
    pub max_block_stmts: usize,
    /// Maximum loop/branch nesting depth.
    pub max_depth: usize,
    /// Allow `while`/`break`/`continue`/early-`return`/`parfor` (the
    /// expectation-only constructs; see module docs).
    pub allow_escapes: bool,
}

impl Default for GenConfig {
    fn default() -> Self {
        Self { max_helpers: 2, max_block_stmts: 4, max_depth: 3, allow_escapes: false }
    }
}

/// A generated statement. Expressions are pre-rendered strings (safe by
/// construction); shrinking operates on the statement tree only.
#[derive(Debug, Clone)]
pub enum GStmt {
    /// `let sK = expr;`
    LetScalar(u32, String),
    /// `sK = expr;`
    Assign(u32, String),
    /// `aK[idx] = expr;`
    Store(u32, String, String),
    /// `print(expr);`
    Print(String),
    /// `for iD in 0 .. bound [step s] { body }` (bound is a rendered expr).
    For { var: u32, bound: String, step: u32, parallel: bool, body: Vec<GStmt> },
    /// `let wD = n0; while wD > 0 { body  wD = wD - 1; }`
    While { var: u32, trips: u32, body: Vec<GStmt> },
    /// `if c0 { a0 } [else if c1 { a1 }] [else { e }]`
    If { arms: Vec<(String, Vec<GStmt>)>, else_body: Option<Vec<GStmt>> },
    /// `hK(a0, a1, c);` — the single call site of helper K.
    Call(usize),
    /// `if cond { break; }`
    Break(String),
    /// `if cond { continue; }`
    Continue(String),
    /// `if cond { return 0.0; }`
    Return(String),
}

/// A generated program: helpers `h0..` plus `main`. Render with
/// [`render`]; shrink with [`GenProgram::shrink_candidates`].
#[derive(Debug, Clone)]
pub struct GenProgram {
    /// Bodies of helper functions (index = helper number).
    pub helpers: Vec<Vec<GStmt>>,
    /// Body of `main`.
    pub main: Vec<GStmt>,
}

impl GenProgram {
    /// Whether the program uses expectation-only constructs (these make
    /// exact ENR comparison inapplicable; see module docs).
    pub fn has_escapes(&self) -> bool {
        fn block_has(b: &[GStmt]) -> bool {
            b.iter().any(|s| match s {
                GStmt::While { .. } => true,
                GStmt::Break(_) | GStmt::Continue(_) | GStmt::Return(_) => true,
                GStmt::For { body, parallel, .. } => *parallel || block_has(body),
                GStmt::If { arms, else_body } => {
                    arms.iter().any(|(_, b)| block_has(b)) || else_body.as_ref().map(|b| block_has(b)).unwrap_or(false)
                }
                _ => false,
            })
        }
        block_has(&self.main) || self.helpers.iter().any(|h| block_has(h))
    }

    /// All programs obtained by deleting exactly one statement (at any
    /// nesting depth) or one entire unused-after-deletion helper. Used by
    /// the fuzzer's greedy shrinker.
    pub fn shrink_candidates(&self) -> Vec<GenProgram> {
        let mut out = Vec::new();
        let blocks = 1 + self.helpers.len();
        for bi in 0..blocks {
            let len = self.block(bi).len();
            for path_head in 0..len {
                let mut paths = Vec::new();
                collect_paths(self.block(bi), &mut vec![path_head], &mut paths, path_head);
                for p in paths {
                    let mut c = self.clone();
                    remove_at(c.block_mut(bi), &p);
                    out.push(c);
                }
            }
        }
        // dropping a whole helper (and its call site) is a bigger step the
        // one-statement deletions cannot reach once the call is load-bearing
        for h in 0..self.helpers.len() {
            let mut c = self.clone();
            c.helpers[h] = Vec::new();
            out.push(c);
        }
        out
    }

    fn block(&self, i: usize) -> &[GStmt] {
        if i == 0 {
            &self.main
        } else {
            &self.helpers[i - 1]
        }
    }

    fn block_mut(&mut self, i: usize) -> &mut Vec<GStmt> {
        if i == 0 {
            &mut self.main
        } else {
            &mut self.helpers[i - 1]
        }
    }
}

/// Collect every statement path (index chain) rooted at `head`.
fn collect_paths(block: &[GStmt], prefix: &mut Vec<usize>, out: &mut Vec<Vec<usize>>, head: usize) {
    out.push(prefix.clone());
    let s = &block[head];
    let children: Vec<&Vec<GStmt>> = match s {
        GStmt::For { body, .. } | GStmt::While { body, .. } => vec![body],
        GStmt::If { arms, else_body } => {
            let mut v: Vec<&Vec<GStmt>> = arms.iter().map(|(_, b)| b).collect();
            if let Some(e) = else_body {
                v.push(e);
            }
            v
        }
        _ => vec![],
    };
    for (ci, child) in children.into_iter().enumerate() {
        for (si, _) in child.iter().enumerate() {
            prefix.push(ci);
            prefix.push(si);
            collect_paths(child, prefix, out, si);
            prefix.pop();
            prefix.pop();
        }
    }
}

/// Remove the statement at `path` (alternating stmt-index / child-block
/// pairs as produced by [`collect_paths`]).
fn remove_at(block: &mut Vec<GStmt>, path: &[usize]) {
    if path.len() == 1 {
        if path[0] < block.len() {
            block.remove(path[0]);
        }
        return;
    }
    let (head, rest) = (path[0], &path[1..]);
    let Some(s) = block.get_mut(head) else { return };
    let child_idx = rest[0];
    let child: Option<&mut Vec<GStmt>> = match s {
        GStmt::For { body, .. } | GStmt::While { body, .. } => (child_idx == 0).then_some(body),
        GStmt::If { arms, else_body } => {
            if child_idx < arms.len() {
                Some(&mut arms[child_idx].1)
            } else {
                else_body.as_mut()
            }
        }
        _ => None,
    };
    if let Some(c) = child {
        remove_at(c, &rest[1..]);
    }
}

struct Gen<'a> {
    rng: &'a mut Rng,
    cfg: &'a GenConfig,
    /// Scalars in scope per lexical block (function-flat at runtime, but
    /// conditional definitions must not leak to be use-safe).
    scopes: Vec<Vec<u32>>,
    loop_vars: Vec<u32>,
    next_scalar: u32,
    next_loop_var: u32,
    /// Helpers this function may call (strictly lower-numbered → DAG).
    callable: usize,
    calls_emitted: Vec<bool>,
    in_loop: bool,
}

impl<'a> Gen<'a> {
    fn scalar_in_scope(&mut self) -> Option<u32> {
        let all: Vec<u32> = self.scopes.iter().flatten().copied().collect();
        if all.is_empty() {
            None
        } else {
            Some(all[self.rng.below(all.len() as u64) as usize])
        }
    }

    fn expr(&mut self, depth: usize) -> String {
        if depth == 0 || self.rng.chance(0.35) {
            return self.atom();
        }
        let a = self.expr(depth - 1);
        let b = self.expr(depth - 1);
        match self.rng.below(8) {
            0 => format!("({a} + {b})"),
            1 => format!("({a} - {b})"),
            2 => format!("({a} * {b})"),
            3 => format!("min({a}, {b})"),
            4 => format!("max({a}, {b})"),
            5 => format!("sqrt(abs({a}) + 1.0)"),
            6 => format!("exp(min({a}, 4.0))"),
            _ => format!("(sin({a}) + cos({b}))"),
        }
    }

    fn atom(&mut self) -> String {
        match self.rng.below(6) {
            0 => format!("{:.2}", self.rng.unit() * 4.0 - 2.0),
            1 => "rnd()".to_string(),
            2 => match self.scalar_in_scope() {
                Some(s) => format!("s{s}"),
                None => "0.5".to_string(),
            },
            3 if !self.loop_vars.is_empty() => {
                let v = self.loop_vars[self.rng.below(self.loop_vars.len() as u64) as usize];
                format!("i{v}")
            }
            4 => {
                let arr = self.rng.below(2);
                format!("a{arr}[{}]", self.index())
            }
            _ => format!("{:.2}", self.rng.unit() * 3.0 + 0.25),
        }
    }

    /// A guaranteed in-bounds, non-negative array index.
    fn index(&mut self) -> String {
        if !self.loop_vars.is_empty() && self.rng.chance(0.7) {
            let v = self.loop_vars[self.rng.below(self.loop_vars.len() as u64) as usize];
            let off = self.rng.below(ARR_LEN as u64);
            format!("(i{v} + {off}) % {ARR_LEN}")
        } else {
            format!("{}", self.rng.below(ARR_LEN as u64))
        }
    }

    /// A branch condition. `first` marks the first arm of an `if` chain.
    ///
    /// The differential-exact dialect (`allow_escapes = false`) restricts
    /// conditions to forms whose analytic arm probability is exact:
    /// data-dependent conditions (array load / untracked scalar / `rnd()`)
    /// use profiled marginals, which multiply back to the executed counts
    /// bit-for-bit. Two analytic approximations must be kept out:
    /// * modelable loop-variable comparisons become affine-fraction (or,
    ///   for `%`, unknown → 0.5-fallback) probabilities — expectations,
    ///   not per-run counts;
    /// * lib calls (incl. `rnd()`) in a *non-first* arm's condition are
    ///   charged to the preceding comp run unconditionally by `translate`,
    ///   but only execute when every earlier arm declined.
    fn cond(&mut self, first: bool) -> String {
        if !self.cfg.allow_escapes {
            return match self.rng.below(3) {
                0 if first => format!("rnd() < {:.2}", 0.1 + self.rng.unit() * 0.8),
                1 => match self.scalar_in_scope() {
                    // generated scalars are rnd-tainted, hence untracked,
                    // hence data-dependent → profiled probability
                    Some(s) => format!("s{s} < {:.2}", self.rng.unit() * 2.0),
                    None => {
                        let i = self.index();
                        let arr = self.rng.below(2);
                        format!("a{arr}[{i}] < {:.2}", self.rng.unit())
                    }
                },
                _ => {
                    let i = self.index();
                    let arr = self.rng.below(2);
                    format!("a{arr}[{i}] < {:.2}", self.rng.unit())
                }
            };
        }
        match self.rng.below(4) {
            0 => format!("rnd() < {:.2}", 0.1 + self.rng.unit() * 0.8),
            1 if !self.loop_vars.is_empty() => {
                let v = self.loop_vars[self.rng.below(self.loop_vars.len() as u64) as usize];
                format!("i{v} % {} == 0", 2 + self.rng.below(4))
            }
            2 => {
                let a = self.expr(1);
                format!("{a} < {:.2}", self.rng.unit() * 2.0)
            }
            _ => {
                let i = self.index();
                let arr = self.rng.below(2);
                format!("a{arr}[{i}] < {:.2}", self.rng.unit())
            }
        }
    }

    fn block(&mut self, depth: usize) -> Vec<GStmt> {
        let n = 1 + self.rng.below(self.cfg.max_block_stmts as u64) as usize;
        self.scopes.push(Vec::new());
        let mut out = Vec::new();
        for _ in 0..n {
            out.push(self.stmt(depth));
        }
        self.scopes.pop();
        out
    }

    fn stmt(&mut self, depth: usize) -> GStmt {
        let structural = depth < self.cfg.max_depth && self.rng.chance(0.4);
        if structural {
            match self.rng.below(3) {
                0 => {
                    // counted loop; bound is a small constant or the N input
                    let var = self.next_loop_var;
                    self.next_loop_var += 1;
                    let bound =
                        if self.rng.chance(0.3) { "n".to_string() } else { format!("{}", 2 + self.rng.below(10)) };
                    let step = if self.rng.chance(0.2) { 2 } else { 1 };
                    let parallel = self.cfg.allow_escapes && self.rng.chance(0.15);
                    self.loop_vars.push(var);
                    let was_in_loop = std::mem::replace(&mut self.in_loop, true);
                    let body = self.block(depth + 1);
                    self.in_loop = was_in_loop;
                    self.loop_vars.pop();
                    GStmt::For { var, bound, step, parallel, body }
                }
                1 if self.cfg.allow_escapes && self.rng.chance(0.5) => {
                    // bounded countdown while (terminates by construction)
                    let var = self.next_loop_var;
                    self.next_loop_var += 1;
                    let trips = 2 + self.rng.below(8) as u32;
                    let was_in_loop = std::mem::replace(&mut self.in_loop, true);
                    let body = self.block(depth + 1);
                    self.in_loop = was_in_loop;
                    GStmt::While { var, trips, body }
                }
                _ => {
                    let n_arms = 1 + self.rng.below(2) as usize;
                    let mut arms = Vec::new();
                    for _ in 0..n_arms {
                        let c = self.cond(arms.is_empty());
                        let b = self.block(depth + 1);
                        arms.push((c, b));
                    }
                    let else_body = if self.rng.chance(0.5) { Some(self.block(depth + 1)) } else { None };
                    GStmt::If { arms, else_body }
                }
            }
        } else {
            match self.rng.below(10) {
                0 | 1 => {
                    let id = self.next_scalar;
                    self.next_scalar += 1;
                    let e = self.expr(2);
                    // taint with rnd() so the binding is never a modelable
                    // context value (see module docs: keeps contexts at 1)
                    let e = format!("({e} + 0.0 * rnd())");
                    self.scopes.last_mut().expect("scope").push(id);
                    GStmt::LetScalar(id, e)
                }
                2 | 3 => match self.scalar_in_scope() {
                    Some(s) => {
                        let e = self.expr(2);
                        // rnd-taint like `let`: a modelable (constant)
                        // re-assignment inside a branch arm would re-track
                        // the scalar and fork the BET context population
                        let e = format!("({e} + 0.0 * rnd())");
                        GStmt::Assign(s, e)
                    }
                    None => GStmt::Print(self.expr(1)),
                },
                4..=6 => {
                    let arr = self.rng.below(2) as u32;
                    let idx = self.index();
                    let e = self.expr(2);
                    GStmt::Store(arr, idx, e)
                }
                7 if self.callable > 0 && !self.calls_emitted.iter().all(|&c| c) => {
                    // call the lowest not-yet-called helper (single site)
                    let h = self.calls_emitted.iter().position(|&c| !c).expect("free helper");
                    self.calls_emitted[h] = true;
                    GStmt::Call(h)
                }
                7 | 8 => GStmt::Print(self.expr(2)),
                _ if self.cfg.allow_escapes && self.in_loop => {
                    let c = self.cond(true);
                    match self.rng.below(3) {
                        // `continue` only in `for` bodies would need loop-kind
                        // tracking; a countdown-while `continue` would skip the
                        // decrement and never terminate, so it is for-only —
                        // the renderer guards this (see `render_stmt`).
                        0 => GStmt::Break(c),
                        1 => GStmt::Return(c),
                        _ => GStmt::Break(c),
                    }
                }
                _ => GStmt::Print(self.expr(1)),
            }
        }
    }
}

/// Generate a program from a seed.
pub fn generate(seed: u64, cfg: &GenConfig) -> GenProgram {
    let mut rng = Rng(seed);
    let n_helpers = rng.below(cfg.max_helpers as u64 + 1) as usize;
    let mut helpers = Vec::new();
    for h in 0..n_helpers {
        let mut g = Gen {
            rng: &mut rng,
            cfg,
            // params: a0, a1 (arrays), s0 (scalar), n
            scopes: vec![vec![0]],
            loop_vars: Vec::new(),
            next_scalar: 1,
            next_loop_var: 100 + h as u32 * 10,
            callable: h,
            calls_emitted: vec![true; h], // helpers call nothing: keep mounts at one per helper
            in_loop: false,
        };
        helpers.push(g.block(1));
    }
    let mut g = Gen {
        rng: &mut rng,
        cfg,
        scopes: vec![vec![0, 1]],
        loop_vars: Vec::new(),
        next_scalar: 2,
        next_loop_var: 0,
        callable: n_helpers,
        calls_emitted: vec![false; n_helpers],
        in_loop: false,
    };
    let mut main = g.block(0);
    // guarantee every helper is reachable exactly once
    for h in 0..n_helpers {
        if !g.calls_emitted[h] {
            main.push(GStmt::Call(h));
        }
    }
    GenProgram { helpers, main }
}

/// Render a generated program to minilang source text.
pub fn render(p: &GenProgram) -> String {
    let mut out = String::new();
    for (h, body) in p.helpers.iter().enumerate() {
        let _ = writeln!(out, "fn h{h}(a0, a1, s0, n) {{");
        for s in body {
            render_stmt(s, &mut out, 1, LoopKind::None);
        }
        let _ = writeln!(out, "}}");
    }
    let _ = writeln!(out, "fn main() {{");
    let _ = writeln!(out, "    let n = input(\"N\", 8);");
    let _ = writeln!(out, "    let a0 = zeros({ARR_LEN});");
    let _ = writeln!(out, "    let a1 = zeros({ARR_LEN});");
    let _ = writeln!(out, "    let s0 = (0.75 + 0.0 * rnd());");
    let _ = writeln!(out, "    let s1 = (rnd() * 2.0);");
    for s in &p.main {
        render_stmt(s, &mut out, 1, LoopKind::None);
    }
    let _ = writeln!(out, "}}");
    out
}

#[derive(Clone, Copy, PartialEq)]
enum LoopKind {
    None,
    For,
    While,
}

fn render_stmt(s: &GStmt, out: &mut String, indent: usize, in_loop: LoopKind) {
    let pad = "    ".repeat(indent);
    match s {
        GStmt::LetScalar(id, e) => {
            let _ = writeln!(out, "{pad}let s{id} = {e};");
        }
        GStmt::Assign(id, e) => {
            let _ = writeln!(out, "{pad}s{id} = {e};");
        }
        GStmt::Store(arr, idx, e) => {
            let _ = writeln!(out, "{pad}a{arr}[{idx}] = {e};");
        }
        GStmt::Print(e) => {
            let _ = writeln!(out, "{pad}print({e});");
        }
        GStmt::For { var, bound, step, parallel, body } => {
            let kw = if *parallel { "parfor" } else { "for" };
            let step_txt = if *step != 1 { format!(" step {step}") } else { String::new() };
            let _ = writeln!(out, "{pad}{kw} i{var} in 0 .. {bound}{step_txt} {{");
            for b in body {
                render_stmt(b, out, indent + 1, LoopKind::For);
            }
            let _ = writeln!(out, "{pad}}}");
        }
        GStmt::While { var, trips, body } => {
            let _ = writeln!(out, "{pad}let w{var} = {trips};");
            let _ = writeln!(out, "{pad}while w{var} > 0 {{");
            for b in body {
                render_stmt(b, out, indent + 1, LoopKind::While);
            }
            let _ = writeln!(out, "{}w{var} = w{var} - 1;", "    ".repeat(indent + 1));
            let _ = writeln!(out, "{pad}}}");
        }
        GStmt::If { arms, else_body } => {
            for (i, (c, b)) in arms.iter().enumerate() {
                let kw = if i == 0 { format!("{pad}if") } else { "} else if".to_string() };
                if i == 0 {
                    let _ = writeln!(out, "{kw} {c} {{");
                } else {
                    let _ = writeln!(out, "{pad}{kw} {c} {{");
                }
                for s in b {
                    render_stmt(s, out, indent + 1, in_loop);
                }
            }
            if let Some(e) = else_body {
                let _ = writeln!(out, "{pad}}} else {{");
                for s in e {
                    render_stmt(s, out, indent + 1, in_loop);
                }
            }
            let _ = writeln!(out, "{pad}}}");
        }
        GStmt::Call(h) => {
            let _ = writeln!(out, "{pad}h{h}(a0, a1, 1.25, n);");
        }
        GStmt::Break(c) => {
            if in_loop == LoopKind::None {
                let _ = writeln!(out, "{pad}print(0.0);");
            } else {
                let _ = writeln!(out, "{pad}if {c} {{ break; }}");
            }
        }
        GStmt::Continue(c) => {
            // a countdown-while `continue` skips the decrement and never
            // terminates; only render inside `for` bodies
            if in_loop == LoopKind::For {
                let _ = writeln!(out, "{pad}if {c} {{ continue; }}");
            } else {
                let _ = writeln!(out, "{pad}print(1.0);");
            }
        }
        GStmt::Return(c) => {
            let _ = writeln!(out, "{pad}if {c} {{ return 0.0; }}");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_seed_sensitive() {
        let cfg = GenConfig::default();
        let a = render(&generate(42, &cfg));
        let b = render(&generate(42, &cfg));
        let c = render(&generate(43, &cfg));
        assert_eq!(a, b, "same seed must produce the same program");
        assert_ne!(a, c, "different seeds should produce different programs");
    }

    #[test]
    fn generated_programs_parse() {
        let cfg = GenConfig { allow_escapes: true, ..GenConfig::default() };
        for seed in 0..50 {
            let src = render(&generate(seed, &cfg));
            xflow_minilang::parse(&src).unwrap_or_else(|e| panic!("seed {seed}: {e}\n{src}"));
        }
    }

    #[test]
    fn shrink_candidates_only_remove() {
        let cfg = GenConfig { allow_escapes: true, ..GenConfig::default() };
        let p = generate(7, &cfg);
        let n = render(&p).lines().count();
        for c in p.shrink_candidates() {
            assert!(render(&c).lines().count() <= n);
        }
    }
}
