//! Shared JSON serialization for machine-readable reports.
//!
//! Every `--json` report the CLI emits (`explain --json`,
//! `validate --json`) routes through [`to_json`] so numeric formatting
//! cannot drift between report kinds: floats are rendered with Rust's
//! shortest round-trip formatting (`{:?}`), meaning the decimal string
//! parses back to the bit-identical `f64`. Consumers diffing two reports
//! therefore never see spurious differences from formatting precision.

use serde::Serialize;

/// Serialize a report to its canonical JSON string.
///
/// Panics only if the value's `Serialize` impl itself fails, which for
/// the plain data structs used in reports cannot happen.
pub fn to_json<T: Serialize>(value: &T) -> String {
    serde_json::to_string(value).expect("report serializes")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn f64_round_trips_through_report_json() {
        // Values chosen to stress shortest-round-trip formatting: a
        // subnormal, an ugly fraction, a large magnitude, and negatives.
        let vals: Vec<f64> =
            vec![0.1 + 0.2, 1.0 / 3.0, 6.02214076e23, -2.2250738585072014e-308, 1e-9, 123_456_789.123_456_78];
        let json = to_json(&vals);
        let back: Vec<f64> = serde_json::from_str(&json).unwrap();
        for (a, b) in vals.iter().zip(&back) {
            assert_eq!(a.to_bits(), b.to_bits(), "{a} did not round-trip");
        }
    }
}
