//! Property test: the tree-walking interpreter, the bytecode VM, and the
//! superinstruction-fused VM observe identical dynamic behavior —
//! per-statement visit counts, branch outcomes, and printed output — on
//! generated programs run with the same seed (three-way equivalence).

use proptest::prelude::*;
use xflow_minilang as ml;
use xflow_validate::{profiles_agree, GenConfig};

fn check_engines(seed: u64, escapes: bool) {
    let gen = GenConfig { allow_escapes: escapes, ..GenConfig::default() };
    let prog = xflow_validate::render(&xflow_validate::generate(seed, &gen));
    let prog = ml::parse(&prog).expect("generated program parses");
    let inputs = ml::InputSpec::new();
    let limits = ml::Limits { max_steps: 2_000_000, max_depth: 64 };

    let (pi, _, ri) =
        ml::run_with_limits_seeded(&prog, &inputs, ml::NullTracer, limits, ml::DEFAULT_SEED).expect("interpreter runs");
    let vm = ml::compile(&prog).expect("compiles");
    let (pv, _, rv) =
        ml::run_vm_with_limits_seeded(&vm, &inputs, ml::NullTracer, limits, ml::DEFAULT_SEED).expect("VM runs");
    let fused = ml::fuse_program(&vm);
    let (pf, _, rf) =
        ml::run_vm_with_limits_seeded(&fused, &inputs, ml::NullTracer, limits, ml::DEFAULT_SEED).expect("fused runs");

    // profiles_agree covers branches, loops, lib calls, and printed
    // values; assert the visit-count map separately for a sharp message
    assert_eq!(pi.stmt_exec, pv.stmt_exec, "visit counts diverge for seed {seed:#x}");
    assert!(profiles_agree(&pi, &pv), "profiles diverge for seed {seed:#x}");
    assert_eq!(ri.to_bits(), rv.to_bits(), "return value diverges for seed {seed:#x}");

    // the fused VM is the third engine: the peephole rewrite (and its
    // jump-target fusion barriers) must be observationally invisible on
    // arbitrary generated control flow
    assert_eq!(pv.stmt_exec, pf.stmt_exec, "fused visit counts diverge for seed {seed:#x}");
    assert!(profiles_agree(&pv, &pf), "fused profiles diverge for seed {seed:#x}");
    assert_eq!(rv.to_bits(), rf.to_bits(), "fused return value diverges for seed {seed:#x}");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn interp_and_vm_agree_on_safe_programs(seed in 0u64..u64::MAX) {
        check_engines(seed, false);
    }

    #[test]
    fn interp_and_vm_agree_with_escapes(seed in 0u64..u64::MAX) {
        check_engines(seed, true);
    }
}
