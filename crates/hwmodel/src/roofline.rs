//! The extended roofline projection model (paper Section V-A).
//!
//! Given per-invocation operation statistics of a code block, the model
//! computes:
//!
//! * `Tc` — time to process the computation (issue-width/flop-pipe bound),
//! * `Tm` — time to move the required data (bandwidth- or latency-bound,
//!   under a constant cache hit rate),
//! * `To = min(Tc, Tm) · δ` with `δ = 1 − 1/max(1, N_flops)` — the expected
//!   overlap between computation and memory access; blocks with few flops
//!   cannot hide memory time behind computation,
//! * `T  = Tc + Tm − To` — the projected wall time of one invocation.
//!
//! The classic roofline (perfect overlap, `T = max(Tc, Tm)`) is recovered as
//! δ → 1. Two ablation variants quantify the paper's reported error sources:
//! [`DivAwareRoofline`] charges floating point divides their real latency
//! (CFD hot spot 6, Section VII-B), and [`VectorAwareRoofline`] assumes the
//! compiler fully vectorizes (STASSUIJ hot spot 1).

use crate::machine::MachineModel;
use crate::spec::MachineSpec;
use serde::{Deserialize, Serialize};

/// Concrete (numeric) per-invocation operation statistics of a code block.
///
/// This is the evaluated counterpart of `xflow_skeleton::OpStats`: all
/// expressions resolved against the block's BET context.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct BlockMetrics {
    /// Floating point operations.
    pub flops: f64,
    /// Fixed point operations.
    pub iops: f64,
    /// Data elements loaded.
    pub loads: f64,
    /// Data elements stored.
    pub stores: f64,
    /// Floating point divides (subset of `flops`).
    pub divs: f64,
    /// Bytes per data element.
    pub elem_bytes: f64,
}

impl BlockMetrics {
    /// Total memory accesses.
    pub fn accesses(&self) -> f64 {
        self.loads + self.stores
    }

    /// Total bytes touched (before cache filtering).
    pub fn bytes(&self) -> f64 {
        self.accesses() * self.elem_bytes
    }

    /// Operational intensity in flops per byte (∞-safe: returns 0 when no
    /// bytes are moved and no flops executed, f64::INFINITY for pure
    /// compute).
    pub fn operational_intensity(&self) -> f64 {
        let b = self.bytes();
        if b == 0.0 {
            if self.flops == 0.0 {
                0.0
            } else {
                f64::INFINITY
            }
        } else {
            self.flops / b
        }
    }

    /// Element-wise accumulate (used for bottom-up aggregation).
    pub fn add_scaled(&mut self, other: &BlockMetrics, scale: f64) {
        // Element size is a weighted blend so bytes() stays consistent.
        let self_acc = self.accesses();
        let other_acc = other.accesses() * scale;
        let total_acc = self_acc + other_acc;
        if total_acc > 0.0 {
            self.elem_bytes = (self.elem_bytes * self_acc + other.elem_bytes * other_acc) / total_acc;
        }
        self.flops += other.flops * scale;
        self.iops += other.iops * scale;
        self.loads += other.loads * scale;
        self.stores += other.stores * scale;
        self.divs += other.divs * scale;
    }
}

/// Projected timing of one invocation of a code block, in seconds.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct BlockTime {
    /// Computation time.
    pub tc: f64,
    /// Memory movement time.
    pub tm: f64,
    /// Overlapped portion.
    pub overlap: f64,
    /// Total projected time `tc + tm − overlap`.
    pub total: f64,
}

impl BlockTime {
    /// Whether the block is memory-bound (`tm > tc`).
    pub fn memory_bound(&self) -> bool {
        self.tm > self.tc
    }
}

/// Machine-independent summary of one cost-carrying block, precomputed once
/// per application and re-evaluated cheaply per machine.
///
/// A projection plan stores one of these per `comp`/`lib` BET node; phase 2
/// of the two-phase engine hands it to [`PerfModel::project_block`] with a
/// concrete machine and gets the per-invocation [`BlockTime`] back without
/// touching the tree, the library registry, or the ENR recurrences again.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BlockSummary {
    /// Evaluated operation counts of one invocation.
    pub metrics: BlockMetrics,
    /// Expected number of repetitions of the block.
    pub enr: f64,
    /// Parallelism available from enclosing parallel loops (≥ 1).
    pub avail_par: f64,
    /// Whether the block may use that parallelism. Library calls are
    /// projected serially (their internal mix is opaque), so they carry
    /// `false` regardless of context.
    pub parallelizable: bool,
}

impl BlockSummary {
    /// Effective thread count on a machine: available parallelism clamped
    /// by the core count, and at least one thread.
    pub fn threads_on(&self, machine: &MachineModel) -> f64 {
        self.threads_with_cores(machine.cores as f64)
    }

    /// [`BlockSummary::threads_on`] against a pre-resolved core count, so
    /// loops over many blocks of one machine hoist the `cores as f64`
    /// conversion out of the per-block work.
    pub fn threads_with_cores(&self, cores: f64) -> f64 {
        if self.parallelizable {
            self.avail_par.min(cores).max(1.0)
        } else {
            1.0
        }
    }
}

/// A hardware performance model: projects block metrics to time on a
/// machine. The paper uses the (extended) roofline model but notes that
/// "more sophisticated models can be used" — this trait is that seam.
pub trait PerfModel: Send + Sync {
    /// Project the wall time of a single invocation of a block.
    fn project(&self, machine: &MachineModel, m: &BlockMetrics) -> BlockTime;

    /// Project the per-invocation wall time when `threads` copies of the
    /// block execute concurrently (a `parloop` body): per-core resources
    /// scale with the thread count, shared resources do not. The default is
    /// the optimistic linear-speedup estimate; [`Roofline`] refines it by
    /// keeping the DRAM bandwidth term shared.
    fn project_parallel(&self, machine: &MachineModel, m: &BlockMetrics, threads: f64) -> BlockTime {
        let t = self.project(machine, m);
        let p = threads.max(1.0);
        BlockTime { tc: t.tc / p, tm: t.tm / p, overlap: t.overlap / p, total: t.total / p }
    }

    /// Project one invocation of a summarized block: resolves the block's
    /// effective thread count against the machine and dispatches to the
    /// serial or concurrent projection. This is the whole per-machine work
    /// of the two-phase engine's evaluation loop.
    fn project_block(&self, machine: &MachineModel, block: &BlockSummary) -> BlockTime {
        let threads = block.threads_on(machine);
        if threads > 1.0 {
            self.project_parallel(machine, &block.metrics, threads)
        } else {
            self.project(machine, &block.metrics)
        }
    }

    /// Pre-resolve this model's machine-dependent constants into a flat
    /// [`MachineSpec`] for the batched evaluation kernel, or `None` when
    /// the model cannot be expressed as one (the default). Only the
    /// extended [`Roofline`] specializes; ablation variants and custom
    /// models keep the virtual-dispatch path.
    fn specialize(&self, _machine: &MachineModel) -> Option<MachineSpec> {
        None
    }

    /// Short name for reports.
    fn name(&self) -> &str;
}

/// The paper's extended roofline model.
///
/// All floating point operations are treated equally and vectorization is
/// not modeled — both are explicit first-order simplifications the paper
/// discusses in its error analysis (Section VII-C).
#[derive(Debug, Clone, Copy, Default)]
pub struct Roofline;

impl Roofline {
    /// Compute-time component in seconds.
    ///
    /// The fraction of flop work the machine's toolchain is assumed to
    /// vectorize (`vector_efficiency`) executes across the SIMD lanes; the
    /// rest is scalar. The slower of the flop-pipe bound and the issue-width
    /// bound governs.
    fn tc(machine: &MachineModel, m: &BlockMetrics) -> f64 {
        let veff = machine.vector_efficiency;
        let eff_flops = m.flops * (1.0 - veff) + m.flops * veff / machine.vector_lanes;
        let flop_cycles = eff_flops / machine.scalar_flops_per_cycle;
        let issue_cycles = (eff_flops + m.iops) / machine.issue_width;
        flop_cycles.max(issue_cycles) * machine.cycle_seconds()
    }

    /// Memory-time components in seconds under constant hit rates:
    /// `(per_core, shared)` where `per_core` is the slower of the L1 port
    /// throughput and MLP-overlapped miss latency (both private per core)
    /// and `shared` is the DRAM bandwidth term (shared across cores).
    fn tm_parts(machine: &MachineModel, m: &BlockMetrics) -> (f64, f64) {
        let accesses = m.accesses();
        if accesses == 0.0 {
            return (0.0, 0.0);
        }
        let port_cycles = accesses / machine.load_store_per_cycle;
        let miss_lat = machine.llc_hit_rate * machine.llc.latency_cycles
            + (1.0 - machine.llc_hit_rate) * machine.dram_latency_cycles;
        let lat_cycles = accesses * (1.0 - machine.l1_hit_rate) * miss_lat / machine.mlp;
        let post_l1_bytes = m.bytes() * (1.0 - machine.l1_hit_rate);
        let bw_time = post_l1_bytes / (machine.dram_bw_gbs * 1e9);
        (port_cycles.max(lat_cycles) * machine.cycle_seconds(), bw_time)
    }

    /// Memory-time component in seconds under constant hit rates.
    ///
    /// Three bounds, the slowest governs:
    /// * L1 port throughput — every access occupies a load/store port;
    /// * miss latency — accesses missing L1 wait for LLC/DRAM, overlapped
    ///   by the machine's memory-level parallelism;
    /// * bandwidth — traffic past L1 consumes sustainable DRAM bandwidth.
    fn tm(machine: &MachineModel, m: &BlockMetrics) -> f64 {
        let (per_core, shared) = Self::tm_parts(machine, m);
        per_core.max(shared)
    }

    /// Degree of overlap δ = 1 − 1/max(1, N_flops).
    fn delta(flops: f64) -> f64 {
        1.0 - 1.0 / flops.max(1.0)
    }

    /// Assemble a [`BlockTime`] from precomputed components.
    fn assemble(tc: f64, tm: f64, flops: f64) -> BlockTime {
        let overlap = tc.min(tm) * Self::delta(flops);
        BlockTime { tc, tm, overlap, total: tc + tm - overlap }
    }
}

impl PerfModel for Roofline {
    fn project(&self, machine: &MachineModel, m: &BlockMetrics) -> BlockTime {
        Self::assemble(Self::tc(machine, m), Self::tm(machine, m), m.flops)
    }

    fn project_parallel(&self, machine: &MachineModel, m: &BlockMetrics, threads: f64) -> BlockTime {
        let p = threads.max(1.0);
        let tc = Self::tc(machine, m) / p;
        let (per_core, shared) = Self::tm_parts(machine, m);
        // per-core port/latency capacity multiplies with threads; the
        // aggregate bandwidth demand of p concurrent iterations still
        // crosses one memory bus, so the per-iteration bandwidth share is
        // unchanged.
        let tm = (per_core / p).max(shared);
        Self::assemble(tc, tm, m.flops)
    }

    fn specialize(&self, machine: &MachineModel) -> Option<MachineSpec> {
        Some(MachineSpec::resolve(machine))
    }

    fn name(&self) -> &str {
        "roofline"
    }
}

/// Ablation: like [`Roofline`] but charges floating point divides their
/// documented latency instead of treating them as single flops.
#[derive(Debug, Clone, Copy, Default)]
pub struct DivAwareRoofline;

impl PerfModel for DivAwareRoofline {
    fn project(&self, machine: &MachineModel, m: &BlockMetrics) -> BlockTime {
        let tc_base = Roofline::tc(machine, m);
        // Each divide occupies the fp pipe for fdiv_latency instead of 1/Θ.
        let div_extra_cycles = m.divs * (machine.fdiv_latency_cycles - 1.0 / machine.scalar_flops_per_cycle).max(0.0);
        let tc = tc_base + div_extra_cycles * machine.cycle_seconds();
        Roofline::assemble(tc, Roofline::tm(machine, m), m.flops)
    }

    fn name(&self) -> &str {
        "roofline+div"
    }
}

/// Ablation: like [`Roofline`] but assumes the compiler fully vectorizes
/// floating point work across the machine's SIMD lanes.
#[derive(Debug, Clone, Copy, Default)]
pub struct VectorAwareRoofline;

impl PerfModel for VectorAwareRoofline {
    fn project(&self, machine: &MachineModel, m: &BlockMetrics) -> BlockTime {
        let flop_cycles = m.flops / (machine.scalar_flops_per_cycle * machine.vector_lanes);
        let issue_cycles = (m.flops / machine.vector_lanes + m.iops) / machine.issue_width;
        let tc = flop_cycles.max(issue_cycles) * machine.cycle_seconds();
        Roofline::assemble(tc, Roofline::tm(machine, m), m.flops)
    }

    fn name(&self) -> &str {
        "roofline+simd"
    }
}

/// The classic two-parameter roofline bound (perfect overlap), provided for
/// comparison: `T = max(Tc, Tm)`.
#[derive(Debug, Clone, Copy, Default)]
pub struct ClassicRoofline;

impl PerfModel for ClassicRoofline {
    fn project(&self, machine: &MachineModel, m: &BlockMetrics) -> BlockTime {
        let tc = Roofline::tc(machine, m);
        let tm = Roofline::tm(machine, m);
        let total = tc.max(tm);
        BlockTime { tc, tm, overlap: tc.min(tm), total }
    }

    fn name(&self) -> &str {
        "roofline-classic"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::{bgq, generic, xeon};

    fn metrics(flops: f64, loads: f64, stores: f64) -> BlockMetrics {
        BlockMetrics { flops, iops: 0.0, loads, stores, divs: 0.0, elem_bytes: 8.0 }
    }

    #[test]
    fn zero_block_costs_nothing() {
        let t = Roofline.project(&generic(), &BlockMetrics::default());
        assert_eq!(t.total, 0.0);
        assert_eq!(t.tc, 0.0);
        assert_eq!(t.tm, 0.0);
    }

    #[test]
    fn pure_compute_has_no_memory_time() {
        let t = Roofline.project(&generic(), &metrics(1000.0, 0.0, 0.0));
        assert!(t.tc > 0.0);
        assert_eq!(t.tm, 0.0);
        assert!(!t.memory_bound());
        assert!((t.total - t.tc).abs() < 1e-15);
    }

    #[test]
    fn pure_memory_has_no_compute_time() {
        let t = Roofline.project(&generic(), &metrics(0.0, 1000.0, 0.0));
        assert_eq!(t.tc, 0.0);
        assert!(t.tm > 0.0);
        assert!(t.memory_bound());
        // With zero flops δ = 0: no overlap at all.
        assert_eq!(t.overlap, 0.0);
    }

    #[test]
    fn total_bounded_by_components() {
        let m = generic();
        for (f, l) in [(10.0, 10.0), (1.0, 100.0), (10_000.0, 3.0), (5.0, 5.0)] {
            let t = Roofline.project(&m, &metrics(f, l, l / 2.0));
            assert!(t.total <= t.tc + t.tm + 1e-18);
            assert!(t.total >= t.tc.max(t.tm) - 1e-18, "total {} tc {} tm {}", t.total, t.tc, t.tm);
        }
    }

    #[test]
    fn small_flop_blocks_overlap_less() {
        let m = generic();
        let small = Roofline.project(&m, &metrics(2.0, 50.0, 0.0));
        let large = Roofline.project(&m, &metrics(2000.0, 50.0, 0.0));
        let small_frac = small.overlap / small.tc.min(small.tm);
        let large_frac = large.overlap / large.tc.min(large.tm);
        assert!(small_frac < large_frac);
    }

    #[test]
    fn delta_limits() {
        assert_eq!(Roofline::delta(0.0), 0.0);
        assert_eq!(Roofline::delta(1.0), 0.0);
        assert!((Roofline::delta(2.0) - 0.5).abs() < 1e-12);
        assert!(Roofline::delta(1e9) > 0.999);
    }

    #[test]
    fn div_aware_charges_more_only_with_divides() {
        let m = bgq();
        let no_div = metrics(100.0, 10.0, 0.0);
        let mut with_div = no_div;
        with_div.divs = 50.0;
        let base = Roofline.project(&m, &no_div).total;
        let same = DivAwareRoofline.project(&m, &no_div).total;
        let more = DivAwareRoofline.project(&m, &with_div).total;
        assert!((base - same).abs() < 1e-18);
        assert!(more > base, "divides must cost extra: {more} vs {base}");
    }

    #[test]
    fn vector_aware_is_faster_for_compute_bound() {
        let m = bgq();
        let mm = metrics(100_000.0, 10.0, 0.0);
        let scalar = Roofline.project(&m, &mm).total;
        let simd = VectorAwareRoofline.project(&m, &mm).total;
        assert!(simd < scalar);
        assert!(scalar / simd > 2.0, "4-lane SIMD should approach 4x: {}", scalar / simd);
    }

    #[test]
    fn classic_roofline_is_lower_bound() {
        let m = generic();
        let mm = metrics(100.0, 100.0, 10.0);
        let ext = Roofline.project(&m, &mm).total;
        let classic = ClassicRoofline.project(&m, &mm).total;
        assert!(classic <= ext + 1e-18);
    }

    #[test]
    fn xeon_more_memory_bound_than_bgq_for_same_block() {
        // The paper's Figure 7 observation: identical blocks shift toward
        // memory-boundedness on Xeon.
        let mm = metrics(64.0, 32.0, 16.0);
        let q = Roofline.project(&bgq(), &mm);
        let x = Roofline.project(&xeon(), &mm);
        let q_mem_frac = q.tm / (q.tc + q.tm);
        let x_mem_frac = x.tm / (x.tc + x.tm);
        assert!(x_mem_frac > q_mem_frac, "xeon {x_mem_frac} vs bgq {q_mem_frac}");
    }

    #[test]
    fn operational_intensity() {
        let m = metrics(16.0, 1.0, 1.0);
        assert!((m.operational_intensity() - 1.0).abs() < 1e-12);
        assert_eq!(BlockMetrics::default().operational_intensity(), 0.0);
        let pure = metrics(5.0, 0.0, 0.0);
        assert!(pure.operational_intensity().is_infinite());
    }

    #[test]
    fn add_scaled_accumulates_and_blends_bytes() {
        let mut a = BlockMetrics { flops: 1.0, iops: 0.0, loads: 2.0, stores: 0.0, divs: 0.0, elem_bytes: 8.0 };
        let b = BlockMetrics { flops: 3.0, iops: 1.0, loads: 2.0, stores: 2.0, divs: 1.0, elem_bytes: 4.0 };
        a.add_scaled(&b, 2.0);
        assert_eq!(a.flops, 7.0);
        assert_eq!(a.iops, 2.0);
        assert_eq!(a.loads, 6.0);
        assert_eq!(a.stores, 4.0);
        assert_eq!(a.divs, 2.0);
        // blended: (8*2 + 4*8) / 10 = 4.8
        assert!((a.elem_bytes - 4.8).abs() < 1e-12);
        // bytes consistency: 10 accesses * 4.8 = 48 = 2*8 + 8*4
        assert!((a.bytes() - 48.0).abs() < 1e-9);
    }

    #[test]
    fn higher_bandwidth_machine_reduces_memory_time() {
        use crate::machine::MachineBuilder;
        let base = generic();
        let fat = MachineBuilder::from(base.clone()).dram_bw_gbs(base.dram_bw_gbs * 8.0).build();
        // Streaming access pattern (wide elements) is bandwidth-bound.
        let mut mm = metrics(1.0, 100_000.0, 0.0);
        mm.elem_bytes = 64.0;
        let t_base = Roofline.project(&base, &mm).tm;
        let t_fat = Roofline.project(&fat, &mm).tm;
        assert!(t_fat < t_base, "fat {t_fat} base {t_base}");
    }
}
