//! # xflow-hw — parameterized hardware performance models
//!
//! The projection side of the xflow framework: machine descriptions
//! ([`MachineModel`], with [`bgq`]/[`xeon`] presets matching the paper's
//! evaluation platforms), the extended roofline model ([`Roofline`],
//! Section V-A of the paper), ablation model variants, and semi-analytical
//! library-function models ([`LibraryRegistry`], Section IV-C).
//!
//! Projection never executes anything on the target machine — it maps a
//! block's operation statistics to `T = Tc + Tm − To` using only the scalar
//! machine parameters, which is what makes the analysis portable to
//! hardware that does not exist yet.
//!
//! ```
//! use xflow_hw::{bgq, BlockMetrics, PerfModel, Roofline};
//!
//! let block = BlockMetrics { flops: 64.0, loads: 16.0, stores: 8.0, elem_bytes: 8.0, ..Default::default() };
//! let t = Roofline.project(&bgq(), &block);
//! assert!(t.total >= t.tc.max(t.tm));
//! assert!(t.total <= t.tc + t.tm);
//! ```

pub mod lanes;
pub mod library;
pub mod machine;
pub mod network;
pub mod refined;
pub mod registry;
pub mod roofline;
pub mod spec;

pub use lanes::{DivLanes, LaneTimes, SpecLanes};
pub use library::{InstrMix, LibraryRegistry, UnknownLibrary};
pub use machine::{bgq, generic, knl, xeon, CacheLevel, MachineBuilder, MachineModel};
pub use network::{bgq_torus, ideal, infiniband, NetworkModel};
pub use refined::RefinedModel;
pub use registry::MachineRegistry;
pub use roofline::{
    BlockMetrics, BlockSummary, BlockTime, ClassicRoofline, DivAwareRoofline, PerfModel, Roofline, VectorAwareRoofline,
};
pub use spec::MachineSpec;

/// Wire-format version of this crate's serializable artifacts
/// ([`MachineModel`], [`LibraryRegistry`], block metrics/summaries).
///
/// Bump whenever a serialized layout changes shape; content-addressed caches
/// fold this into their keys so stale artifacts are never deserialized.
pub fn schema_version() -> u32 {
    1
}
