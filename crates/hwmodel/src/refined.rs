//! A more sophisticated hardware model — the paper's conclusion notes the
//! execution-flow model is independent of the hardware model and that
//! "more sophisticated models can be used". [`RefinedModel`] demonstrates
//! that seam: it keeps the extended-roofline structure but removes the
//! three first-order simplifications the paper's error analysis names:
//!
//! * floating point divides are charged their documented latency
//!   (Section VII-B, the CFD error);
//! * the toolchain's vectorization is applied to compute *and* to L1 port
//!   throughput (vector loads), as real SIMD code behaves;
//! * the constant L1 hit rate is adjusted upward for the stream-prefetch
//!   hardware both evaluation machines have, with the adjustment weighted
//!   by how streaming-friendly the block looks (load/store-dense blocks
//!   benefit; sparse gathers do not — approximated by operational
//!   intensity).

use crate::machine::MachineModel;
use crate::roofline::{BlockMetrics, BlockTime, PerfModel, Roofline};

/// Refined extended-roofline model (divides, vector loads, prefetch).
#[derive(Debug, Clone, Copy)]
pub struct RefinedModel {
    /// Extra L1 hit fraction granted to perfectly streaming blocks (the
    /// next-line prefetcher's best case). Default 0.10.
    pub prefetch_bonus: f64,
}

impl Default for RefinedModel {
    fn default() -> Self {
        Self { prefetch_bonus: 0.10 }
    }
}

impl RefinedModel {
    fn effective_machine(&self, machine: &MachineModel, m: &BlockMetrics) -> MachineModel {
        let mut eff = machine.clone();
        // Streaming-friendliness: blocks whose accesses dominate their op mix
        // sweep arrays; those are the prefetcher's winners. Use the access
        // share of total ops as the weight.
        let ops = m.flops + m.iops + m.accesses();
        let stream_weight = if ops > 0.0 { m.accesses() / ops } else { 0.0 };
        eff.l1_hit_rate = (machine.l1_hit_rate + self.prefetch_bonus * stream_weight).min(0.995);
        eff
    }
}

impl PerfModel for RefinedModel {
    fn project(&self, machine: &MachineModel, m: &BlockMetrics) -> BlockTime {
        let eff = self.effective_machine(machine, m);
        // start from the standard roofline on the prefetch-adjusted machine
        let base = Roofline.project(&eff, m);
        // divide penalty: each divide occupies the (possibly vectorized)
        // fp pipe for its full latency instead of one slot
        let veff = eff.vector_efficiency;
        let vec_factor = 1.0 + (eff.vector_lanes - 1.0) * veff;
        let slot = 1.0 / (eff.scalar_flops_per_cycle * vec_factor);
        let div_extra = m.divs * (eff.fdiv_latency_cycles - slot).max(0.0) * eff.cycle_seconds();
        // vector loads: vectorized code retires `vec_factor` elements per
        // L1 port slot; discount the port-bound share of Tm accordingly.
        // (Latency- and bandwidth-bound blocks are unaffected.)
        let port_time = m.accesses() / eff.load_store_per_cycle * eff.cycle_seconds();
        let port_discount =
            if base.tm > 0.0 && port_time >= base.tm * 0.999 { port_time * (1.0 - 1.0 / vec_factor) } else { 0.0 };
        let tc = base.tc + div_extra;
        let tm = (base.tm - port_discount).max(0.0);
        let delta = 1.0 - 1.0 / m.flops.max(1.0);
        let overlap = tc.min(tm) * delta;
        BlockTime { tc, tm, overlap, total: tc + tm - overlap }
    }

    fn name(&self) -> &str {
        "roofline-refined"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::{bgq, generic, xeon};

    fn m(flops: f64, divs: f64, loads: f64) -> BlockMetrics {
        BlockMetrics { flops, iops: 0.0, loads, stores: 0.0, divs, elem_bytes: 8.0 }
    }

    #[test]
    fn divides_cost_more_than_base() {
        let mach = bgq();
        let with_div = m(100.0, 30.0, 10.0);
        let base = Roofline.project(&mach, &with_div).total;
        let refined = RefinedModel::default().project(&mach, &with_div).total;
        assert!(refined > base, "{refined} vs {base}");
    }

    #[test]
    fn no_divides_no_penalty_direction() {
        // without divides the refined model can only be ≤ the base model
        // (prefetch + vector loads help, nothing hurts)
        let mach = xeon();
        let blk = m(100.0, 0.0, 200.0);
        let base = Roofline.project(&mach, &blk).total;
        let refined = RefinedModel::default().project(&mach, &blk).total;
        assert!(refined <= base + 1e-18, "{refined} vs {base}");
    }

    #[test]
    fn streaming_blocks_get_prefetch_bonus() {
        let mach = generic();
        let streaming = m(2.0, 0.0, 1000.0);
        let compute = m(1000.0, 0.0, 2.0);
        let model = RefinedModel::default();
        let eff_stream = model.effective_machine(&mach, &streaming);
        let eff_comp = model.effective_machine(&mach, &compute);
        assert!(eff_stream.l1_hit_rate > eff_comp.l1_hit_rate);
        assert!(eff_stream.l1_hit_rate <= 0.995);
    }

    #[test]
    fn bounds_still_hold() {
        let mach = bgq();
        for blk in [m(100.0, 10.0, 50.0), m(0.0, 0.0, 500.0), m(5000.0, 0.0, 0.0)] {
            let t = RefinedModel::default().project(&mach, &blk);
            assert!(t.total + 1e-18 >= t.tc.max(t.tm) - 1e-12);
            assert!(t.total <= t.tc + t.tm + 1e-18);
            assert!(t.total.is_finite() && t.total >= 0.0);
        }
    }

    #[test]
    fn refined_narrows_the_cfd_gap() {
        // a divide-heavy velocity-like block: the refined model's projection
        // should land closer to a divide-charging ground truth
        let mach = bgq();
        let blk = m(8.0, 1.0, 5.0);
        let truth_cycles = 1.0 * mach.fdiv_latency_cycles + 7.0 / 2.0 + 5.0; // sim-like
        let truth = truth_cycles * mach.cycle_seconds();
        let base = Roofline.project(&mach, &blk).total;
        let refined = RefinedModel::default().project(&mach, &blk).total;
        assert!((refined - truth).abs() < (base - truth).abs(), "refined {refined} base {base} truth {truth}");
    }
}
