//! A named machine registry: the built-in presets plus declarative
//! machine files loaded from a directory.
//!
//! The paper evaluates two machines; a co-design service wants arbitrarily
//! many, described declaratively rather than compiled in. A
//! [`MachineRegistry`] resolves a case-insensitive name to a validated
//! [`MachineModel`]: the four presets ([`bgq`]/[`xeon`]/[`knl`]/
//! [`generic`]) are always present, and [`MachineRegistry::load_dir`]
//! folds in every `*.json` machine description found in a directory
//! (`machines/` in this repository), keyed by file stem. The CLI's
//! `--machine` flag and the server's `machine` request field both resolve
//! through one registry, so a new machine is one JSON file away from every
//! query surface.
//!
//! A machine file is the serde JSON shape of [`MachineModel`] — exactly
//! what `serde_json::to_string(&machine)` emits, and what `--machine-file`
//! already accepts:
//!
//! ```json
//! {"name":"epyc","freq_ghz":2.25,"cores":64,...,"l1":{"size_bytes":32768,...}}
//! ```
//!
//! Files that fail to parse or validate are reported as errors, not
//! skipped: a typo in a machine description should fail loudly, not
//! silently fall back to a preset.

use std::collections::BTreeMap;
use std::path::Path;

use crate::machine::{bgq, generic, knl, xeon, MachineModel};

/// A case-insensitive name → [`MachineModel`] map. Names iterate sorted,
/// so listings are deterministic.
#[derive(Debug, Clone, Default)]
pub struct MachineRegistry {
    map: BTreeMap<String, MachineModel>,
}

impl MachineRegistry {
    /// An empty registry (no presets).
    pub fn empty() -> Self {
        Self::default()
    }

    /// The four built-in machines under their CLI names (`bgq`, `xeon`,
    /// `knl`, `generic`), plus the `bg/q` spelling as an alias.
    pub fn builtin() -> Self {
        let mut r = Self::empty();
        r.register("bgq", bgq());
        r.register("bg/q", bgq());
        r.register("xeon", xeon());
        r.register("knl", knl());
        r.register("generic", generic());
        r
    }

    /// Register (or replace) a machine under a name. Lookup is
    /// case-insensitive; the stored key is lowercased.
    pub fn register(&mut self, name: &str, model: MachineModel) {
        self.map.insert(name.to_lowercase(), model);
    }

    /// Resolve a name (case-insensitive).
    pub fn get(&self, name: &str) -> Option<&MachineModel> {
        self.map.get(&name.to_lowercase())
    }

    /// Registered names, sorted, with the `bg/q` alias folded away when
    /// `bgq` is also present.
    pub fn names(&self) -> Vec<&str> {
        self.map
            .keys()
            .filter(|n| !(n.as_str() == "bg/q" && self.map.contains_key("bgq")))
            .map(String::as_str)
            .collect()
    }

    /// Iterate `(name, model)` pairs in sorted name order (aliases folded
    /// like [`MachineRegistry::names`]).
    pub fn iter(&self) -> impl Iterator<Item = (&str, &MachineModel)> {
        let skip_alias = self.map.contains_key("bgq");
        self.map.iter().filter(move |(n, _)| !(n.as_str() == "bg/q" && skip_alias)).map(|(n, m)| (n.as_str(), m))
    }

    /// Number of distinct names (aliases count).
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the registry holds no machines.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Load one machine description file, registering it under its file
    /// stem (lowercased). Returns the registered name.
    pub fn load_file(&mut self, path: &Path) -> Result<String, String> {
        let stem = path
            .file_stem()
            .and_then(|s| s.to_str())
            .ok_or_else(|| format!("machine file {} has no usable name", path.display()))?
            .to_lowercase();
        let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {}: {e}", path.display()))?;
        let model: MachineModel =
            serde_json::from_str(&text).map_err(|e| format!("bad machine JSON in {}: {e}", path.display()))?;
        let errs = model.validate();
        if !errs.is_empty() {
            return Err(format!("invalid machine model in {}: {errs:?}", path.display()));
        }
        self.register(&stem, model);
        Ok(stem)
    }

    /// Load every `*.json` machine description in a directory, sorted by
    /// file name for deterministic replace order. Returns how many were
    /// loaded; a missing directory loads zero. Any unparseable or invalid
    /// file fails the whole load.
    pub fn load_dir(&mut self, dir: &Path) -> Result<usize, String> {
        let entries = match std::fs::read_dir(dir) {
            Ok(e) => e,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(0),
            Err(e) => return Err(format!("cannot read machines dir {}: {e}", dir.display())),
        };
        let mut files: Vec<_> = entries
            .flatten()
            .map(|e| e.path())
            .filter(|p| p.extension().and_then(|e| e.to_str()) == Some("json"))
            .collect();
        files.sort();
        for f in &files {
            self.load_file(f)?;
        }
        Ok(files.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("xflow-machines-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn builtin_names_resolve_case_insensitively() {
        let r = MachineRegistry::builtin();
        assert_eq!(r.get("bgq").unwrap().name, "BG/Q");
        assert_eq!(r.get("BG/Q").unwrap().name, "BG/Q");
        assert_eq!(r.get("Xeon").unwrap().name, "Xeon");
        assert!(r.get("cray").is_none());
        assert_eq!(r.names(), vec!["bgq", "generic", "knl", "xeon"]);
    }

    #[test]
    fn names_fold_the_bgq_alias() {
        let r = MachineRegistry::builtin();
        let names = r.names();
        assert!(names.contains(&"bgq"));
        assert!(!names.contains(&"bg/q"), "{names:?}");
        assert_eq!(names.len(), 4);
        assert_eq!(r.iter().count(), 4);
    }

    #[test]
    fn load_dir_registers_by_file_stem() {
        let dir = temp_dir("load");
        let mut m = generic();
        m.name = "my custom box".into();
        std::fs::write(dir.join("MyBox.json"), serde_json::to_string(&m).unwrap()).unwrap();
        std::fs::write(dir.join("notes.txt"), "not a machine").unwrap();

        let mut r = MachineRegistry::builtin();
        assert_eq!(r.load_dir(&dir).unwrap(), 1);
        let got = r.get("mybox").unwrap();
        assert_eq!(got.name, "my custom box");
        assert!(r.names().contains(&"mybox"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn invalid_machine_file_fails_the_load() {
        let dir = temp_dir("invalid");
        let mut m = generic();
        m.freq_ghz = -2.0;
        std::fs::write(dir.join("broken.json"), serde_json::to_string(&m).unwrap()).unwrap();
        let mut r = MachineRegistry::empty();
        let err = r.load_dir(&dir).unwrap_err();
        assert!(err.contains("invalid machine model"), "{err}");
        std::fs::write(dir.join("broken.json"), "{oops").unwrap();
        let err = r.load_dir(&dir).unwrap_err();
        assert!(err.contains("bad machine JSON"), "{err}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_dir_loads_nothing() {
        let mut r = MachineRegistry::builtin();
        assert_eq!(r.load_dir(Path::new("/definitely/not/a/dir")).unwrap(), 0);
        assert_eq!(r.names().len(), 4);
    }

    #[test]
    fn later_files_replace_earlier_names() {
        let dir = temp_dir("replace");
        let mut m = generic();
        m.name = "box a".into();
        std::fs::write(dir.join("box.json"), serde_json::to_string(&m).unwrap()).unwrap();
        let mut r = MachineRegistry::empty();
        r.load_dir(&dir).unwrap();
        m.name = "box b".into();
        std::fs::write(dir.join("box.json"), serde_json::to_string(&m).unwrap()).unwrap();
        r.load_dir(&dir).unwrap();
        assert_eq!(r.get("box").unwrap().name, "box b");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
