//! Machine-specialized constants for the batched evaluation kernel.
//!
//! [`crate::PerfModel::project_block`] re-derives the same handful of
//! machine-dependent constants for every block of every design-space point:
//! the cycle time, the vector-efficiency split, the hit-ratio-folded miss
//! latency, the DRAM bandwidth in bytes, the core count as a float. A sweep
//! evaluates thousands of (block × machine) pairs, so [`MachineSpec`]
//! hoists all of it into a flat constants struct resolved **once per
//! machine**; the inner loop is then pure f64 arithmetic with no virtual
//! dispatch and no field re-derivation.
//!
//! Bit-identity contract: every constant here is the exact same f64
//! expression the scalar [`crate::Roofline`] paths compute per call (same
//! operands, same operation order), so [`MachineSpec::block_time`] produces
//! bit-identical [`BlockTime`]s to `Roofline::project` /
//! `Roofline::project_parallel` dispatched through `project_block`. The
//! equivalence is enforced by `to_bits` tests here and in the hotspot and
//! sweep layers.
//!
//! Non-roofline models (the ablation variants, custom [`crate::PerfModel`]
//! impls) do not specialize — [`crate::PerfModel::specialize`] returns
//! `None` and callers fall back to the virtual-dispatch path.

use crate::machine::MachineModel;
use crate::roofline::BlockTime;
use serde::{Deserialize, Serialize};

const SIGN_MASK: u64 = 1 << 63;
const MANTISSA_MASK: u64 = (1 << 52) - 1;
const EXP_MASK: u64 = 0x7ff;

/// The exact reciprocal of `d` when one exists: `d = ±2^k` with both `d`
/// and `2^-k` normal. Built by bit manipulation (flip the biased
/// exponent), so resolving a spec performs no division.
///
/// IEEE-754 justification: for such `d`, the exact value of `x · 2^-k`
/// equals the exact value of `x / d` for every `x`, and multiplication and
/// division are both correctly rounded — so `x * recip` and `x / d` return
/// the same bits in every case (normal, subnormal, ±0, ±∞, NaN).
#[inline]
pub(crate) fn exact_recip(d: f64) -> Option<f64> {
    let bits = d.to_bits();
    if bits & MANTISSA_MASK != 0 {
        return None; // not a power of two
    }
    let exp = (bits >> 52) & EXP_MASK;
    if exp == 0 || exp == EXP_MASK {
        return None; // zero/subnormal or inf/NaN
    }
    let rexp = 2046 - exp; // biased exponent of 2^-k
    if rexp == 0 {
        return None; // reciprocal would be subnormal
    }
    Some(f64::from_bits((bits & SIGN_MASK) | (rexp << 52)))
}

/// A machine-constant divisor, strength-reduced at resolve time to an
/// exact reciprocal multiplication when the divisor is a power of two
/// (see `exact_recip` for why that preserves every bit). Throughput
/// parameters (lanes, issue width, ports, MLP) are powers of two on
/// every preset machine, so the hot path usually multiplies; arbitrary
/// divisors (DRAM bandwidth in bytes) keep the division.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ExactDiv {
    factor: f64,
    mul: bool,
}

impl ExactDiv {
    /// Strength-reduce division by `d`.
    pub fn new(d: f64) -> Self {
        match exact_recip(d) {
            Some(r) => Self { factor: r, mul: true },
            None => Self { factor: d, mul: false },
        }
    }

    /// `x / d`, as the bits the plain division would produce.
    #[inline]
    pub fn apply(&self, x: f64) -> f64 {
        if self.mul {
            x * self.factor
        } else {
            x / self.factor
        }
    }

    /// The raw (factor, is-multiply) pair, for packing into
    /// [`crate::lanes::DivLanes`] columns.
    #[inline]
    pub(crate) fn parts(&self) -> (f64, bool) {
        (self.factor, self.mul)
    }

    /// The original divisor.
    pub fn divisor(&self) -> f64 {
        if self.mul {
            // factor is an exact power of two, so inverting it back is exact
            1.0 / self.factor
        } else {
            self.factor
        }
    }
}

/// Flat, machine-resolved constants of the extended roofline model.
///
/// Obtain one via [`crate::PerfModel::specialize`] (models that cannot be
/// specialized return `None`). All fields are plain f64 (divisors carry an
/// [`ExactDiv`] strength reduction) so a batch evaluation loop over many
/// specs touches no pointers and calls no trait objects.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MachineSpec {
    /// Seconds per cycle (`1e-9 / freq_ghz`).
    pub cycle_seconds: f64,
    /// Fraction of flop work assumed vectorized.
    pub veff: f64,
    /// `1 − veff`, hoisted out of the per-block Tc expression.
    pub one_minus_veff: f64,
    /// Division by the SIMD lane count.
    pub vector_lanes: ExactDiv,
    /// Division by the scalar flop throughput per cycle.
    pub scalar_flops_per_cycle: ExactDiv,
    /// Division by the instruction issue width.
    pub issue_width: ExactDiv,
    /// Division by the load/store port throughput per cycle.
    pub load_store_per_cycle: ExactDiv,
    /// Division by the memory-level parallelism (overlapped misses).
    pub mlp: ExactDiv,
    /// `1 − l1_hit_rate`: fraction of accesses that miss L1.
    pub one_minus_l1: f64,
    /// Hit-ratio-folded post-L1 miss latency in cycles
    /// (`llc_hit_rate·llc_latency + (1−llc_hit_rate)·dram_latency`).
    pub miss_lat: f64,
    /// Division by the sustainable DRAM bandwidth in bytes/second
    /// (`dram_bw_gbs · 1e9`).
    pub dram_bw_bytes: ExactDiv,
    /// Core count as f64 (thread-cap clamp operand).
    pub cores: f64,
}

impl MachineSpec {
    /// Resolve the constants from a machine description.
    ///
    /// Every field is computed with the exact expression the scalar
    /// roofline paths use per call, so folding them here changes no bits.
    pub fn resolve(machine: &MachineModel) -> Self {
        Self {
            cycle_seconds: machine.cycle_seconds(),
            veff: machine.vector_efficiency,
            one_minus_veff: 1.0 - machine.vector_efficiency,
            vector_lanes: ExactDiv::new(machine.vector_lanes),
            scalar_flops_per_cycle: ExactDiv::new(machine.scalar_flops_per_cycle),
            issue_width: ExactDiv::new(machine.issue_width),
            load_store_per_cycle: ExactDiv::new(machine.load_store_per_cycle),
            mlp: ExactDiv::new(machine.mlp),
            one_minus_l1: 1.0 - machine.l1_hit_rate,
            miss_lat: machine.llc_hit_rate * machine.llc.latency_cycles
                + (1.0 - machine.llc_hit_rate) * machine.dram_latency_cycles,
            dram_bw_bytes: ExactDiv::new(machine.dram_bw_gbs * 1e9),
            cores: machine.cores as f64,
        }
    }

    /// Extended-roofline projection of one block invocation, given the
    /// block's pre-digested columns.
    ///
    /// `thread_cap` is the block's available parallelism (or 1.0 for
    /// non-parallelizable blocks) and `delta` its precomputed overlap
    /// fraction `1 − 1/max(1, flops)`. The operation order replicates
    /// `Roofline::tc` / `Roofline::tm_parts` / `Roofline::project_parallel`
    /// / `Roofline::assemble` exactly, so the result is bit-identical to
    /// `Roofline.project_block(machine, summary)`.
    #[inline]
    pub fn block_time(
        &self,
        flops: f64,
        iops: f64,
        accesses: f64,
        bytes: f64,
        thread_cap: f64,
        delta: f64,
    ) -> BlockTime {
        // Tc: vector-efficiency split, flop-pipe vs issue-width bound.
        let eff_flops = flops * self.one_minus_veff + self.vector_lanes.apply(flops * self.veff);
        let flop_cycles = self.scalar_flops_per_cycle.apply(eff_flops);
        let issue_cycles = self.issue_width.apply(eff_flops + iops);
        let tc_serial = flop_cycles.max(issue_cycles) * self.cycle_seconds;

        // Tm: per-core port/latency bound and shared bandwidth bound.
        let (per_core, shared) = if accesses == 0.0 {
            (0.0, 0.0)
        } else {
            let port_cycles = self.load_store_per_cycle.apply(accesses);
            let lat_cycles = self.mlp.apply(accesses * self.one_minus_l1 * self.miss_lat);
            let post_l1_bytes = bytes * self.one_minus_l1;
            (port_cycles.max(lat_cycles) * self.cycle_seconds, self.dram_bw_bytes.apply(post_l1_bytes))
        };

        // Concurrency: per-core resources scale with the thread count,
        // the shared bandwidth term does not (same split as
        // `Roofline::project_parallel`). The thread count varies per block,
        // so its strength reduction is a runtime power-of-two check — one
        // cheap integer test replacing two divisions.
        let threads = thread_cap.min(self.cores).max(1.0);
        let (tc, tm) = if threads > 1.0 {
            match exact_recip(threads) {
                Some(r) => (tc_serial * r, (per_core * r).max(shared)),
                None => (tc_serial / threads, (per_core / threads).max(shared)),
            }
        } else {
            (tc_serial, per_core.max(shared))
        };

        let overlap = tc.min(tm) * delta;
        BlockTime { tc, tm, overlap, total: tc + tm - overlap }
    }

    /// The overlap fraction δ = 1 − 1/max(1, N_flops) of a block, suitable
    /// for precomputation into a plan column (machine-independent).
    #[inline]
    pub fn delta_of(flops: f64) -> f64 {
        1.0 - 1.0 / flops.max(1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::{bgq, generic, knl, xeon};
    use crate::roofline::{
        BlockMetrics, BlockSummary, ClassicRoofline, DivAwareRoofline, PerfModel, Roofline, VectorAwareRoofline,
    };

    fn summaries() -> Vec<BlockSummary> {
        let mut v = Vec::new();
        for (flops, iops, loads, stores, elem_bytes) in [
            (0.0, 0.0, 0.0, 0.0, 8.0),
            (64.0, 16.0, 16.0, 8.0, 8.0),
            (1.0, 0.0, 1000.0, 0.0, 64.0),
            (100_000.0, 3.0, 3.0, 0.0, 4.0),
            (2.0, 2.0, 2.0, 2.0, 8.0),
        ] {
            for (avail_par, parallelizable) in [(1.0, true), (64.0, true), (7.5, true), (1000.0, false)] {
                v.push(BlockSummary {
                    metrics: BlockMetrics { flops, iops, loads, stores, divs: 0.0, elem_bytes },
                    enr: 1.0,
                    avail_par,
                    parallelizable,
                });
            }
        }
        v
    }

    #[test]
    fn specialized_block_time_is_bit_identical_to_project_block() {
        for machine in [bgq(), xeon(), knl(), generic()] {
            let spec = Roofline.specialize(&machine).expect("roofline specializes");
            for s in summaries() {
                let reference = Roofline.project_block(&machine, &s);
                let m = &s.metrics;
                let cap = if s.parallelizable { s.avail_par } else { 1.0 };
                let fast =
                    spec.block_time(m.flops, m.iops, m.accesses(), m.bytes(), cap, MachineSpec::delta_of(m.flops));
                assert_eq!(fast.tc.to_bits(), reference.tc.to_bits(), "tc differs on {}", machine.name);
                assert_eq!(fast.tm.to_bits(), reference.tm.to_bits(), "tm differs on {}", machine.name);
                assert_eq!(fast.overlap.to_bits(), reference.overlap.to_bits(), "overlap differs on {}", machine.name);
                assert_eq!(fast.total.to_bits(), reference.total.to_bits(), "total differs on {}", machine.name);
            }
        }
    }

    #[test]
    fn exact_div_matches_plain_division_bit_for_bit() {
        // power-of-two divisors take the multiply path; everything else
        // must keep dividing — and both must match `x / d` exactly
        let divisors =
            [2.0, 4.0, 8.0, 0.5, 0.25, 1024.0, 3.0, 7.5, 6.0, 1e9, 4.27e9, 1.0, 2f64.powi(1000), 2f64.powi(-900)];
        let xs = [
            0.0,
            -0.0,
            1.0,
            std::f64::consts::PI,
            1e-300,
            5e-324, // subnormal
            1e300,
            f64::INFINITY,
            f64::NEG_INFINITY,
            123456.789,
            2f64.powi(-1000),
        ];
        for d in divisors {
            let ed = ExactDiv::new(d);
            for x in xs {
                assert_eq!((x / d).to_bits(), ed.apply(x).to_bits(), "x={x:e} d={d:e}");
            }
            assert_eq!(ed.divisor().to_bits(), d.to_bits(), "divisor round-trip for d={d:e}");
        }
        // extreme exponents where the reciprocal would leave the normal
        // range must refuse the reduction rather than change bits
        for d in [2f64.powi(1023), 2f64.powi(-1022), f64::INFINITY, f64::NAN, 0.0] {
            let ed = ExactDiv::new(d);
            let x = 3.0;
            assert_eq!((x / d).to_bits(), ed.apply(x).to_bits(), "d={d:e}");
        }
    }

    #[test]
    fn non_power_of_two_machine_still_specializes_bit_identically() {
        use crate::machine::MachineBuilder;
        // every strength-reducible parameter set to an awkward non-pow2
        // value: the spec must fall back to real divisions everywhere
        let mut m = generic();
        m.vector_lanes = 3.0;
        m.scalar_flops_per_cycle = 1.5;
        m.issue_width = 3.0;
        m.load_store_per_cycle = 0.75;
        m.mlp = 6.0;
        m.dram_bw_gbs = 3.3;
        let m = MachineBuilder::from(m).cores(12).build();
        let spec = Roofline.specialize(&m).expect("roofline specializes");
        for s in summaries() {
            let reference = Roofline.project_block(&m, &s);
            let metrics = &s.metrics;
            let cap = if s.parallelizable { s.avail_par } else { 1.0 };
            let fast = spec.block_time(
                metrics.flops,
                metrics.iops,
                metrics.accesses(),
                metrics.bytes(),
                cap,
                MachineSpec::delta_of(metrics.flops),
            );
            assert_eq!(fast.tc.to_bits(), reference.tc.to_bits());
            assert_eq!(fast.tm.to_bits(), reference.tm.to_bits());
            assert_eq!(fast.overlap.to_bits(), reference.overlap.to_bits());
            assert_eq!(fast.total.to_bits(), reference.total.to_bits());
        }
    }

    #[test]
    fn only_the_extended_roofline_specializes() {
        let m = generic();
        assert!(Roofline.specialize(&m).is_some());
        assert!(DivAwareRoofline.specialize(&m).is_none());
        assert!(VectorAwareRoofline.specialize(&m).is_none());
        assert!(ClassicRoofline.specialize(&m).is_none());
    }

    #[test]
    fn zero_core_machine_still_runs_serially() {
        use crate::machine::MachineBuilder;
        let m = MachineBuilder::from(generic()).cores(0).build();
        let spec = Roofline.specialize(&m).unwrap();
        let s = BlockSummary {
            metrics: BlockMetrics { flops: 8.0, iops: 0.0, loads: 4.0, stores: 0.0, divs: 0.0, elem_bytes: 8.0 },
            enr: 1.0,
            avail_par: 16.0,
            parallelizable: true,
        };
        let reference = Roofline.project_block(&m, &s);
        let fast = spec.block_time(8.0, 0.0, 4.0, 32.0, 16.0, MachineSpec::delta_of(8.0));
        assert_eq!(fast.total.to_bits(), reference.total.to_bits());
    }
}
