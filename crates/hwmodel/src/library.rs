//! Semi-analytical models of opaque library functions (paper Section IV-C).
//!
//! Library source is unavailable, so the paper measures each function's
//! *dynamic instruction mix* once with hardware counters on a local machine
//! (averaging over randomly generated inputs when the mix is
//! input-dependent), assumes the mix is hardware-invariant, and feeds it to
//! the roofline model of the *target* machine.
//!
//! [`LibraryRegistry`] holds the measured mixes. Defaults are provided for
//! the libm-style functions the benchmarks use; `xflow-sim` re-calibrates
//! them empirically (`xflow_sim::calibrate_library`), which is the
//! reproduction of the paper's counter-based procedure.

use crate::machine::MachineModel;
use crate::roofline::{BlockMetrics, BlockTime, PerfModel};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Per-call dynamic instruction mix of a library function.
///
/// `base` is the fixed per-call cost; `per_work` scales with the call's
/// work parameter (e.g. elements processed by a vectorized `exp` over an
/// array). For scalar math functions `per_work` is zero.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct InstrMix {
    pub base: BlockMetrics,
    pub per_work: BlockMetrics,
}

impl InstrMix {
    /// Expand the mix into block metrics for `calls` invocations with the
    /// given `work` each.
    pub fn expand(&self, calls: f64, work: f64) -> BlockMetrics {
        let mut m =
            BlockMetrics { elem_bytes: self.base.elem_bytes.max(self.per_work.elem_bytes), ..Default::default() };
        m.add_scaled(&self.base, calls);
        m.add_scaled(&self.per_work, calls * work);
        m
    }
}

/// Registry of library-function instruction mixes.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct LibraryRegistry {
    mixes: HashMap<String, InstrMix>,
}

impl LibraryRegistry {
    /// Empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registry pre-populated with nominal mixes for common math functions.
    ///
    /// The numbers approximate soft-float expansions of libm routines
    /// (polynomial evaluation plus range reduction); they are replaced by
    /// empirically calibrated values when `xflow-sim`'s calibration is run.
    pub fn with_defaults() -> Self {
        let mut r = Self::new();
        let scalar = |flops: f64, iops: f64, loads: f64| InstrMix {
            base: BlockMetrics { flops, iops, loads, stores: 0.0, divs: 0.0, elem_bytes: 8.0 },
            per_work: BlockMetrics::default(),
        };
        r.register("exp", scalar(22.0, 8.0, 4.0));
        r.register("log", scalar(26.0, 10.0, 5.0));
        r.register("sqrt", scalar(14.0, 2.0, 0.0));
        r.register("sin", scalar(24.0, 9.0, 4.0));
        r.register("cos", scalar(24.0, 9.0, 4.0));
        r.register("pow", scalar(52.0, 16.0, 8.0));
        // rand: integer-dominated LCG/Mersenne step.
        r.register("rand", scalar(2.0, 18.0, 3.0));
        r
    }

    /// Register (or replace) the mix of a function.
    pub fn register(&mut self, name: &str, mix: InstrMix) {
        self.mixes.insert(name.to_string(), mix);
    }

    /// The conservative nominal mix charged to library functions without a
    /// measured mix. Public so projection plans can bake the expanded
    /// fallback metrics in ahead of time.
    pub fn fallback_mix() -> InstrMix {
        InstrMix {
            base: BlockMetrics { flops: 25.0, iops: 10.0, loads: 5.0, stores: 1.0, divs: 0.0, elem_bytes: 8.0 },
            per_work: BlockMetrics::default(),
        }
    }

    /// Look up a function's mix.
    pub fn get(&self, name: &str) -> Option<&InstrMix> {
        self.mixes.get(name)
    }

    /// Names of all registered functions (sorted for deterministic output).
    pub fn names(&self) -> Vec<&str> {
        let mut v: Vec<&str> = self.mixes.keys().map(String::as_str).collect();
        v.sort_unstable();
        v
    }

    /// Stable content fingerprint of the registry: an FNV-1a hash over the
    /// sorted function names and the exact bits of every mix component.
    ///
    /// Two registries fingerprint equal exactly when every registered mix is
    /// bit-identical, independent of registration order, process, or
    /// platform. Content-addressed caches fold this into projection-plan
    /// keys so re-calibrating the library invalidates cached plans.
    pub fn fingerprint(&self) -> u64 {
        const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const PRIME: u64 = 0x0000_0100_0000_01b3;
        fn mix_in(h: &mut u64, bytes: &[u8]) {
            for &b in bytes {
                *h ^= b as u64;
                *h = h.wrapping_mul(PRIME);
            }
        }
        let mut h = OFFSET;
        let mut names: Vec<&String> = self.mixes.keys().collect();
        names.sort_unstable();
        for name in names {
            mix_in(&mut h, name.as_bytes());
            mix_in(&mut h, &[0]);
            let mix = &self.mixes[name];
            for m in [&mix.base, &mix.per_work] {
                for v in [m.flops, m.iops, m.loads, m.stores, m.divs, m.elem_bytes] {
                    mix_in(&mut h, &v.to_bits().to_le_bytes());
                }
            }
        }
        h
    }

    /// Project the time of `calls` invocations of `name` with `work` each on
    /// a target machine. Unknown functions fall back to a conservative
    /// nominal mix (and are reported via the `Err` variant so callers can
    /// surface a warning).
    pub fn project(
        &self,
        name: &str,
        calls: f64,
        work: f64,
        machine: &MachineModel,
        model: &dyn PerfModel,
    ) -> Result<BlockTime, UnknownLibrary> {
        match self.get(name) {
            Some(mix) => Ok(model.project(machine, &mix.expand(calls, work))),
            None => Err(UnknownLibrary {
                name: name.to_string(),
                fallback_time: model.project(machine, &Self::fallback_mix().expand(calls, work)),
            }),
        }
    }
}

/// Returned when projecting an unregistered library function; carries the
/// nominal-fallback projection so analysis can continue.
#[derive(Debug, Clone)]
pub struct UnknownLibrary {
    pub name: String,
    pub fallback_time: BlockTime,
}

impl std::fmt::Display for UnknownLibrary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "library function `{}` has no measured instruction mix; used nominal fallback", self.name)
    }
}

impl std::error::Error for UnknownLibrary {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::generic;
    use crate::roofline::Roofline;

    #[test]
    fn defaults_cover_benchmark_functions() {
        let r = LibraryRegistry::with_defaults();
        for f in ["exp", "rand", "sqrt", "log", "sin", "cos", "pow"] {
            assert!(r.get(f).is_some(), "missing {f}");
        }
    }

    #[test]
    fn expand_scales_with_calls_and_work() {
        let mix = InstrMix {
            base: BlockMetrics { flops: 10.0, iops: 2.0, loads: 1.0, stores: 0.0, divs: 0.0, elem_bytes: 8.0 },
            per_work: BlockMetrics { flops: 3.0, iops: 0.0, loads: 1.0, stores: 1.0, divs: 0.0, elem_bytes: 8.0 },
        };
        let m = mix.expand(4.0, 10.0);
        assert_eq!(m.flops, 10.0 * 4.0 + 3.0 * 40.0);
        assert_eq!(m.loads, 1.0 * 4.0 + 1.0 * 40.0);
        assert_eq!(m.stores, 40.0);
    }

    #[test]
    fn projection_scales_linearly_in_calls() {
        let r = LibraryRegistry::with_defaults();
        let m = generic();
        let one = r.project("exp", 1.0, 1.0, &m, &Roofline).unwrap().total;
        let thousand = r.project("exp", 1000.0, 1.0, &m, &Roofline).unwrap().total;
        // Slightly sublinear: the overlap degree delta grows with the flop
        // count, so 1000 calls overlap marginally better than one call.
        let ratio = thousand / one;
        assert!((900.0..=1000.5).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn unknown_function_falls_back_with_error() {
        let r = LibraryRegistry::new();
        let err = r.project("mystery", 10.0, 1.0, &generic(), &Roofline).unwrap_err();
        assert_eq!(err.name, "mystery");
        assert!(err.fallback_time.total > 0.0);
    }

    #[test]
    fn register_replaces() {
        let mut r = LibraryRegistry::with_defaults();
        let before = r.get("exp").unwrap().base.flops;
        r.register(
            "exp",
            InstrMix { base: BlockMetrics { flops: 99.0, ..Default::default() }, per_work: Default::default() },
        );
        assert_ne!(r.get("exp").unwrap().base.flops, before);
        assert_eq!(r.get("exp").unwrap().base.flops, 99.0);
    }

    #[test]
    fn names_sorted() {
        let r = LibraryRegistry::with_defaults();
        let names = r.names();
        let mut sorted = names.clone();
        sorted.sort_unstable();
        assert_eq!(names, sorted);
    }
}
