//! Interconnect models for multi-node projection (the paper's future-work
//! extension: "project hot regions and performance bottlenecks for
//! multi-node execution").
//!
//! A [`NetworkModel`] is the postal model — `T(b) = latency + b / bandwidth`
//! — with a topology contention factor for networks where neighbor
//! exchanges share links. It deliberately stays first-order, matching the
//! roofline philosophy of the compute side.

use serde::{Deserialize, Serialize};

/// First-order interconnect description.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NetworkModel {
    /// Display name.
    pub name: String,
    /// One-way message latency in microseconds.
    pub latency_us: f64,
    /// Per-link bandwidth in GB/s.
    pub bandwidth_gbs: f64,
    /// Effective fraction of link bandwidth available to a neighbor
    /// exchange under typical contention (1.0 = dedicated links).
    pub efficiency: f64,
}

impl NetworkModel {
    /// Time to transfer `bytes` point-to-point, in seconds.
    pub fn transfer_seconds(&self, bytes: f64) -> f64 {
        self.latency_us * 1e-6 + bytes.max(0.0) / (self.bandwidth_gbs * 1e9 * self.efficiency)
    }

    /// Validate parameters.
    pub fn validate(&self) -> Vec<String> {
        let mut errs = Vec::new();
        if self.latency_us < 0.0 || self.latency_us.is_nan() {
            errs.push(format!("latency_us must be non-negative, got {}", self.latency_us));
        }
        if self.bandwidth_gbs <= 0.0 || self.bandwidth_gbs.is_nan() {
            errs.push(format!("bandwidth_gbs must be positive, got {}", self.bandwidth_gbs));
        }
        if !(0.0 < self.efficiency && self.efficiency <= 1.0) {
            errs.push(format!("efficiency must be in (0,1], got {}", self.efficiency));
        }
        errs
    }
}

/// Preset: Blue Gene/Q's 5-D torus (2 GB/s per link per direction, ~2.5 µs
/// MPI latency, neighbor exchanges ride dedicated torus links).
pub fn bgq_torus() -> NetworkModel {
    NetworkModel { name: "BG/Q torus".into(), latency_us: 2.5, bandwidth_gbs: 2.0, efficiency: 0.9 }
}

/// Preset: QDR InfiniBand-class fat tree (4 GB/s, ~1.5 µs, moderate
/// contention at scale).
pub fn infiniband() -> NetworkModel {
    NetworkModel { name: "InfiniBand".into(), latency_us: 1.5, bandwidth_gbs: 4.0, efficiency: 0.7 }
}

/// An idealized zero-latency, (practically) infinite-bandwidth network —
/// the upper bound used to separate communication cost from load imbalance.
pub fn ideal() -> NetworkModel {
    NetworkModel { name: "ideal".into(), latency_us: 0.0, bandwidth_gbs: 1e9, efficiency: 1.0 }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_are_valid() {
        for n in [bgq_torus(), infiniband(), ideal()] {
            assert!(n.validate().is_empty(), "{}", n.name);
        }
    }

    #[test]
    fn postal_model_components() {
        let n = NetworkModel { name: "t".into(), latency_us: 10.0, bandwidth_gbs: 1.0, efficiency: 1.0 };
        // latency-dominated small message
        let small = n.transfer_seconds(8.0);
        assert!((small - 10.0e-6 - 8e-9).abs() < 1e-12);
        // bandwidth-dominated large message
        let large = n.transfer_seconds(1e9);
        assert!((large - (10.0e-6 + 1.0)).abs() < 1e-6);
    }

    #[test]
    fn efficiency_scales_bandwidth_term_only() {
        let full = NetworkModel { name: "a".into(), latency_us: 5.0, bandwidth_gbs: 2.0, efficiency: 1.0 };
        let half = NetworkModel { efficiency: 0.5, ..full.clone() };
        let bytes = 1e8;
        let bw_full = full.transfer_seconds(bytes) - 5e-6;
        let bw_half = half.transfer_seconds(bytes) - 5e-6;
        assert!((bw_half / bw_full - 2.0).abs() < 1e-9);
    }

    #[test]
    fn ideal_network_is_effectively_free() {
        assert!(ideal().transfer_seconds(1e9) < 1e-6);
    }

    #[test]
    fn negative_bytes_treated_as_zero() {
        let n = bgq_torus();
        assert_eq!(n.transfer_seconds(-5.0), n.transfer_seconds(0.0));
    }

    #[test]
    fn validate_rejects_nonsense() {
        let bad = NetworkModel { name: "x".into(), latency_us: -1.0, bandwidth_gbs: 0.0, efficiency: 2.0 };
        assert_eq!(bad.validate().len(), 3);
    }
}
