//! Parameterized machine descriptions.
//!
//! A [`MachineModel`] is the complete set of hardware parameters consumed by
//! the projection model (`roofline`) and by the ground-truth simulator
//! (`xflow-sim`). The two preset machines mirror the paper's evaluation
//! platforms: an IBM Blue Gene/Q node and an Intel Xeon E5-2420 node, using
//! the latencies the authors measured with microbenchmarks (BG/Q L2 51
//! cycles, DRAM 180 cycles).

use serde::{Deserialize, Serialize};

/// Cache level parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CacheLevel {
    /// Total capacity in bytes.
    pub size_bytes: u64,
    /// Line size in bytes.
    pub line_bytes: u32,
    /// Associativity (ways).
    pub assoc: u32,
    /// Access latency in core clock cycles.
    pub latency_cycles: f64,
}

impl CacheLevel {
    /// Number of sets; at least 1.
    pub fn sets(&self) -> u64 {
        (self.size_bytes / (self.line_bytes as u64 * self.assoc as u64)).max(1)
    }
}

/// Complete hardware parameter set for one target machine.
///
/// All rates are per *core*; the paper's analysis is single-threaded per
/// rank, so node-level resources (shared LLC, memory bandwidth) are divided
/// by the core count when building the preset machines.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MachineModel {
    /// Display name, e.g. `"BG/Q"`.
    pub name: String,
    /// Core clock frequency in GHz.
    pub freq_ghz: f64,
    /// Cores per node (informational; projections are per core).
    pub cores: u32,
    /// Instructions issued per cycle (in-order width).
    pub issue_width: f64,
    /// SIMD lanes for f64 arithmetic.
    pub vector_lanes: f64,
    /// Peak floating point operations per cycle per core *without* SIMD
    /// (e.g. 2 for a fused multiply-add pipe).
    pub scalar_flops_per_cycle: f64,
    /// L1 data cache.
    pub l1: CacheLevel,
    /// Last-level (shared) cache.
    pub llc: CacheLevel,
    /// DRAM access latency in core cycles.
    pub dram_latency_cycles: f64,
    /// Sustainable memory bandwidth per core in GB/s.
    pub dram_bw_gbs: f64,
    /// Constant L1 hit rate assumed by the first-order projection model
    /// (paper Section V-A footnote; see DESIGN.md on the hit/miss wording).
    pub l1_hit_rate: f64,
    /// Constant LLC hit rate (for accesses that miss L1).
    pub llc_hit_rate: f64,
    /// Memory-level parallelism: outstanding misses the core can overlap.
    pub mlp: f64,
    /// Loads+stores the core can issue per cycle (L1 port throughput).
    pub load_store_per_cycle: f64,
    /// Fraction of floating point work the *toolchain* is assumed to
    /// vectorize on this machine, in `[0, 1]`. The paper observes that the
    /// Xeon binaries are "highly vectorized by default" while the BG/Q XL
    /// compiler's vectorization is not modeled — setting 0.8 vs 0.0 here
    /// reproduces both the Figure 7 memory-bound shift on Xeon and the
    /// Figure 13 STASSUIJ over-projection on BG/Q.
    pub vector_efficiency: f64,
    /// Latency of a floating point add/mul in cycles.
    pub fp_latency_cycles: f64,
    /// Latency of a floating point divide in cycles. The *projection* model
    /// deliberately ignores this (the paper treats all fp ops equally —
    /// Section VII-B discusses the resulting CFD error); the simulator and
    /// the divide-aware ablation model use it.
    pub fdiv_latency_cycles: f64,
    /// Latency of an integer ALU op in cycles.
    pub int_latency_cycles: f64,
}

impl MachineModel {
    /// Peak scalar GFLOP/s per core (no SIMD).
    pub fn peak_scalar_gflops(&self) -> f64 {
        self.freq_ghz * self.scalar_flops_per_cycle
    }

    /// Peak SIMD GFLOP/s per core.
    pub fn peak_vector_gflops(&self) -> f64 {
        self.peak_scalar_gflops() * self.vector_lanes
    }

    /// Seconds per core clock cycle.
    pub fn cycle_seconds(&self) -> f64 {
        1e-9 / self.freq_ghz
    }

    /// Average memory access latency in cycles under the constant-hit-rate
    /// assumption of the projection model.
    pub fn avg_access_latency_cycles(&self) -> f64 {
        let l1 = self.l1_hit_rate;
        let llc = self.llc_hit_rate;
        l1 * self.l1.latency_cycles
            + (1.0 - l1) * (llc * self.llc.latency_cycles + (1.0 - llc) * self.dram_latency_cycles)
    }

    /// Fraction of accesses that reach DRAM under the constant-hit-rate
    /// assumption.
    pub fn dram_access_fraction(&self) -> f64 {
        (1.0 - self.l1_hit_rate) * (1.0 - self.llc_hit_rate)
    }

    /// Validate parameter sanity; returns problems (empty = ok).
    pub fn validate(&self) -> Vec<String> {
        let mut errs = Vec::new();
        let pos = |v: f64, what: &str, errs: &mut Vec<String>| {
            if v <= 0.0 || !v.is_finite() {
                errs.push(format!("{what} must be positive and finite, got {v}"));
            }
        };
        pos(self.freq_ghz, "freq_ghz", &mut errs);
        pos(self.issue_width, "issue_width", &mut errs);
        pos(self.vector_lanes, "vector_lanes", &mut errs);
        pos(self.scalar_flops_per_cycle, "scalar_flops_per_cycle", &mut errs);
        pos(self.dram_bw_gbs, "dram_bw_gbs", &mut errs);
        pos(self.dram_latency_cycles, "dram_latency_cycles", &mut errs);
        pos(self.mlp, "mlp", &mut errs);
        pos(self.load_store_per_cycle, "load_store_per_cycle", &mut errs);
        if !(0.0..=1.0).contains(&self.vector_efficiency) {
            errs.push(format!("vector_efficiency must be in [0,1], got {}", self.vector_efficiency));
        }
        for (r, what) in [(self.l1_hit_rate, "l1_hit_rate"), (self.llc_hit_rate, "llc_hit_rate")] {
            if !(0.0..=1.0).contains(&r) {
                errs.push(format!("{what} must be in [0,1], got {r}"));
            }
        }
        if self.l1.size_bytes == 0 || self.llc.size_bytes == 0 {
            errs.push("cache sizes must be nonzero".into());
        }
        if self.l1.line_bytes == 0 || !self.l1.line_bytes.is_power_of_two() {
            errs.push("l1 line size must be a nonzero power of two".into());
        }
        errs
    }
}

/// Preset: IBM Blue Gene/Q node (PowerPC A2), per the paper's Section VI.
///
/// 16 cores at 1.6 GHz, 16 KB L1D, 32 MB shared L2 at 51 cycles, DRAM at
/// 180 cycles, ~42.7 GB/s node bandwidth. A2 is a 2-issue in-order core
/// with a 4-wide QPX FMA unit.
pub fn bgq() -> MachineModel {
    MachineModel {
        name: "BG/Q".into(),
        freq_ghz: 1.6,
        cores: 16,
        issue_width: 2.0,
        vector_lanes: 4.0,
        scalar_flops_per_cycle: 2.0, // FMA
        l1: CacheLevel { size_bytes: 16 * 1024, line_bytes: 64, assoc: 8, latency_cycles: 6.0 },
        llc: CacheLevel { size_bytes: 32 * 1024 * 1024, line_bytes: 128, assoc: 16, latency_cycles: 51.0 },
        dram_latency_cycles: 180.0,
        dram_bw_gbs: 42.7 / 16.0,
        l1_hit_rate: 0.85,
        llc_hit_rate: 0.85,
        mlp: 8.0, // L1p stream prefetcher sustains several in-flight lines
        load_store_per_cycle: 1.0,
        vector_efficiency: 0.0, // XL auto-QPX-vectorization not modeled (paper VII-B)
        fp_latency_cycles: 6.0,
        fdiv_latency_cycles: 32.0, // expanded to reciprocal estimate + Newton iterations
        int_latency_cycles: 1.0,
    }
}

/// Preset: Intel Xeon E5-2420 node (Sandy Bridge EP), per Section VI.
///
/// 12 cores (2 × 6) at 1.9 GHz, 64 GB memory. Out-of-order, 4-issue,
/// AVX (4 × f64). Faster processing but — relative to its compute rate —
/// smaller effective L1 and higher memory latency than BG/Q, which is what
/// drives the paper's Figure 7 shift toward memory-boundedness.
pub fn xeon() -> MachineModel {
    MachineModel {
        name: "Xeon".into(),
        freq_ghz: 1.9,
        cores: 12,
        issue_width: 4.0,
        vector_lanes: 4.0,
        scalar_flops_per_cycle: 2.0,
        l1: CacheLevel { size_bytes: 32 * 1024, line_bytes: 64, assoc: 8, latency_cycles: 4.0 },
        llc: CacheLevel { size_bytes: 15 * 1024 * 1024, line_bytes: 64, assoc: 20, latency_cycles: 30.0 },
        dram_latency_cycles: 210.0,
        dram_bw_gbs: 32.0 / 12.0,
        l1_hit_rate: 0.85,
        llc_hit_rate: 0.85,
        mlp: 8.0,
        load_store_per_cycle: 2.0,
        vector_efficiency: 0.8, // "highly vectorized by default" (paper VII-A)
        fp_latency_cycles: 4.0,
        fdiv_latency_cycles: 22.0,
        int_latency_cycles: 1.0,
    }
}

/// Preset: a Knights-Landing-style manycore — many slow, wide cores with
/// high aggregate bandwidth. Not one of the paper's machines; included as
/// the kind of *prospective* design the framework exists to evaluate.
pub fn knl() -> MachineModel {
    MachineModel {
        name: "KNL".into(),
        freq_ghz: 1.3,
        cores: 64,
        issue_width: 2.0,
        vector_lanes: 8.0, // AVX-512
        scalar_flops_per_cycle: 2.0,
        l1: CacheLevel { size_bytes: 32 * 1024, line_bytes: 64, assoc: 8, latency_cycles: 4.0 },
        llc: CacheLevel { size_bytes: 1024 * 1024, line_bytes: 64, assoc: 16, latency_cycles: 20.0 },
        dram_latency_cycles: 170.0,
        dram_bw_gbs: 400.0 / 64.0, // MCDRAM
        l1_hit_rate: 0.85,
        llc_hit_rate: 0.85,
        mlp: 8.0,
        load_store_per_cycle: 2.0,
        vector_efficiency: 0.7,
        fp_latency_cycles: 6.0,
        fdiv_latency_cycles: 32.0,
        int_latency_cycles: 1.0,
    }
}

/// A deliberately balanced generic machine, useful in tests and the
/// co-design sweep examples.
pub fn generic() -> MachineModel {
    MachineModel {
        name: "generic".into(),
        freq_ghz: 2.0,
        cores: 8,
        issue_width: 2.0,
        vector_lanes: 2.0,
        scalar_flops_per_cycle: 2.0,
        l1: CacheLevel { size_bytes: 32 * 1024, line_bytes: 64, assoc: 8, latency_cycles: 4.0 },
        llc: CacheLevel { size_bytes: 8 * 1024 * 1024, line_bytes: 64, assoc: 16, latency_cycles: 40.0 },
        dram_latency_cycles: 200.0,
        dram_bw_gbs: 4.0,
        l1_hit_rate: 0.85,
        llc_hit_rate: 0.85,
        mlp: 8.0,
        load_store_per_cycle: 1.0,
        vector_efficiency: 0.5,
        fp_latency_cycles: 4.0,
        fdiv_latency_cycles: 24.0,
        int_latency_cycles: 1.0,
    }
}

/// Fluent modifier API for design-space exploration: start from a preset and
/// vary one or more parameters.
#[derive(Debug, Clone)]
pub struct MachineBuilder(MachineModel);

impl MachineBuilder {
    /// Start from an existing machine.
    pub fn from(m: MachineModel) -> Self {
        Self(m)
    }

    pub fn name(mut self, n: &str) -> Self {
        self.0.name = n.to_string();
        self
    }

    pub fn freq_ghz(mut self, v: f64) -> Self {
        self.0.freq_ghz = v;
        self
    }

    pub fn dram_bw_gbs(mut self, v: f64) -> Self {
        self.0.dram_bw_gbs = v;
        self
    }

    pub fn cores(mut self, v: u32) -> Self {
        self.0.cores = v;
        self
    }

    pub fn scalar_flops_per_cycle(mut self, v: f64) -> Self {
        self.0.scalar_flops_per_cycle = v;
        self
    }

    pub fn vector_lanes(mut self, v: f64) -> Self {
        self.0.vector_lanes = v;
        self
    }

    pub fn issue_width(mut self, v: f64) -> Self {
        self.0.issue_width = v;
        self
    }

    pub fn l1_hit_rate(mut self, v: f64) -> Self {
        self.0.l1_hit_rate = v;
        self
    }

    pub fn llc_hit_rate(mut self, v: f64) -> Self {
        self.0.llc_hit_rate = v;
        self
    }

    pub fn dram_latency_cycles(mut self, v: f64) -> Self {
        self.0.dram_latency_cycles = v;
        self
    }

    pub fn vector_efficiency(mut self, v: f64) -> Self {
        self.0.vector_efficiency = v;
        self
    }

    pub fn mlp(mut self, v: f64) -> Self {
        self.0.mlp = v;
        self
    }

    pub fn l1_size_bytes(mut self, v: u64) -> Self {
        self.0.l1.size_bytes = v;
        self
    }

    pub fn build(self) -> MachineModel {
        self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_are_valid() {
        for m in [bgq(), xeon(), knl(), generic()] {
            let errs = m.validate();
            assert!(errs.is_empty(), "{}: {errs:?}", m.name);
        }
    }

    #[test]
    fn bgq_parameters_match_paper() {
        let m = bgq();
        assert_eq!(m.freq_ghz, 1.6);
        assert_eq!(m.cores, 16);
        assert_eq!(m.llc.latency_cycles, 51.0);
        assert_eq!(m.dram_latency_cycles, 180.0);
        assert_eq!(m.l1.size_bytes, 16 * 1024);
        assert_eq!(m.llc.size_bytes, 32 * 1024 * 1024);
    }

    #[test]
    fn xeon_is_compute_faster_but_memory_poorer_per_flop() {
        let q = bgq();
        let x = xeon();
        // Faster processing speed (per paper Section VII-A).
        assert!(x.freq_ghz * x.issue_width > q.freq_ghz * q.issue_width);
        // Fewer bytes per flop available → relatively more memory-bound.
        let q_bpf = q.dram_bw_gbs / q.peak_scalar_gflops();
        let x_bpf = x.dram_bw_gbs / (x.freq_ghz * x.issue_width * 2.0);
        assert!(x_bpf < q_bpf, "xeon {x_bpf} vs bgq {q_bpf}");
    }

    #[test]
    fn avg_latency_between_l1_and_dram() {
        let m = bgq();
        let avg = m.avg_access_latency_cycles();
        assert!(avg > m.l1.latency_cycles);
        assert!(avg < m.dram_latency_cycles);
    }

    #[test]
    fn dram_fraction_consistent() {
        let m = generic();
        let f = m.dram_access_fraction();
        assert!((f - 0.15 * 0.15).abs() < 1e-12);
    }

    #[test]
    fn cache_sets_computation() {
        let c = CacheLevel { size_bytes: 32 * 1024, line_bytes: 64, assoc: 8, latency_cycles: 4.0 };
        assert_eq!(c.sets(), 64);
    }

    #[test]
    fn knl_is_a_parallel_bandwidth_design() {
        let k = knl();
        let x = xeon();
        // weak single cores…
        assert!(k.freq_ghz < x.freq_ghz);
        // …but far more of them and more aggregate bandwidth
        assert!(k.cores > 4 * x.cores);
        assert!(k.dram_bw_gbs * k.cores as f64 > 4.0 * x.dram_bw_gbs * x.cores as f64);
    }

    #[test]
    fn builder_overrides() {
        let m = MachineBuilder::from(generic()).name("fat-bw").dram_bw_gbs(100.0).build();
        assert_eq!(m.name, "fat-bw");
        assert_eq!(m.dram_bw_gbs, 100.0);
    }

    #[test]
    fn validate_catches_bad_values() {
        let mut m = generic();
        m.freq_ghz = 0.0;
        m.l1_hit_rate = 1.5;
        let errs = m.validate();
        assert!(errs.iter().any(|e| e.contains("freq_ghz")));
        assert!(errs.iter().any(|e| e.contains("l1_hit_rate")));
    }

    #[test]
    fn peak_gflops() {
        let m = bgq();
        assert!((m.peak_scalar_gflops() - 3.2).abs() < 1e-9);
        assert!((m.peak_vector_gflops() - 12.8).abs() < 1e-9);
    }
}
