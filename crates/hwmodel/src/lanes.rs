//! Multi-machine lane packing of [`MachineSpec`] constants.
//!
//! A design-space sweep evaluates the same plan columns on hundreds of
//! machines; the per-block arithmetic is identical across machines and
//! only the resolved constants differ. [`SpecLanes`] transposes `W`
//! machine specs into `[f64; W]` constant arrays so one pass over the plan
//! columns produces `W` block times at once — the loop bodies are straight
//! lane-wise array arithmetic the compiler can keep in vector registers
//! (f64x4 with the default `W = 4`).
//!
//! Bit-identity contract: every lane of [`SpecLanes::block_time`] computes
//! the exact expression [`MachineSpec::block_time`] computes for that
//! lane's spec — same operands, same operation order, including the
//! [`ExactDiv`] strength-reduction decision, which is packed per lane into
//! [`DivLanes`]. When the `W` machines disagree on multiply-vs-divide for
//! a parameter (e.g. a non-power-of-two bandwidth next to power-of-two
//! ones), the lane loop takes the mixed path and branches per lane; the
//! result is still bit-identical per lane, only slower. Degeneracy
//! (underflowed or infinite times) is *not* handled here — callers detect
//! it per lane exactly as the scalar kernel does and replay that lane
//! through the scalar path.

use crate::spec::{exact_recip, ExactDiv, MachineSpec};

/// Lane-transposed block times: structure-of-arrays counterpart of
/// `[BlockTime; W]`, so callers accumulate each component with straight
/// vectorizable `[f64; W]` arithmetic instead of strided struct reads.
#[derive(Debug, Clone, Copy)]
pub struct LaneTimes<const W: usize> {
    /// Computation time per lane.
    pub tc: [f64; W],
    /// Memory movement time per lane.
    pub tm: [f64; W],
    /// Overlapped portion per lane.
    pub overlap: [f64; W],
    /// Total projected time `tc + tm − overlap` per lane.
    pub total: [f64; W],
}

/// Lane-packed [`ExactDiv`]: per-lane factors plus uniformity flags so the
/// common all-multiply (and all-divide) cases stay branch-free inside the
/// lane loop.
#[derive(Debug, Clone, Copy)]
pub struct DivLanes<const W: usize> {
    factor: [f64; W],
    mul: [bool; W],
    all_mul: bool,
    all_div: bool,
}

impl<const W: usize> DivLanes<W> {
    fn pack(divs: impl Fn(usize) -> ExactDiv) -> Self {
        let mut factor = [0.0; W];
        let mut mul = [false; W];
        for w in 0..W {
            (factor[w], mul[w]) = divs(w).parts();
        }
        Self { factor, mul, all_mul: mul.iter().all(|&m| m), all_div: mul.iter().all(|&m| !m) }
    }

    /// `x[w] / divisor[w]` per lane, as the bits the plain division would
    /// produce (each lane follows its own strength-reduction decision).
    #[inline]
    pub fn apply(&self, x: [f64; W]) -> [f64; W] {
        let mut out = [0.0; W];
        if self.all_mul {
            for w in 0..W {
                out[w] = x[w] * self.factor[w];
            }
        } else if self.all_div {
            for w in 0..W {
                out[w] = x[w] / self.factor[w];
            }
        } else {
            for w in 0..W {
                out[w] = if self.mul[w] { x[w] * self.factor[w] } else { x[w] / self.factor[w] };
            }
        }
        out
    }
}

/// `W` machine specs transposed into lane-wise constant columns.
///
/// Built with [`SpecLanes::pack`] from a window of `W` specs; evaluate
/// blocks with [`SpecLanes::block_time`], which returns one
/// [`BlockTime`](crate::roofline::BlockTime)
/// per lane, each bit-identical to the scalar [`MachineSpec::block_time`]
/// of the corresponding spec.
#[derive(Debug, Clone, Copy)]
pub struct SpecLanes<const W: usize> {
    cycle_seconds: [f64; W],
    veff: [f64; W],
    one_minus_veff: [f64; W],
    vector_lanes: DivLanes<W>,
    scalar_flops_per_cycle: DivLanes<W>,
    issue_width: DivLanes<W>,
    load_store_per_cycle: DivLanes<W>,
    mlp: DivLanes<W>,
    one_minus_l1: [f64; W],
    miss_lat: [f64; W],
    dram_bw_bytes: DivLanes<W>,
    cores: [f64; W],
    /// `Some(cores)` when every lane has the same core count — the thread
    /// clamp and reciprocal decision are then computed once per block
    /// instead of once per lane (the common case in a sweep that varies
    /// memory parameters).
    uniform_cores: Option<f64>,
}

impl<const W: usize> SpecLanes<W> {
    /// Transpose a window of exactly `W` specs into lane columns.
    ///
    /// Panics when `specs.len() != W` — the remainder of a batch that does
    /// not fill a full lane group goes through the scalar path instead.
    pub fn pack(specs: &[MachineSpec]) -> Self {
        assert_eq!(specs.len(), W, "lane packing needs exactly W specs");
        let mut lanes = Self {
            cycle_seconds: [0.0; W],
            veff: [0.0; W],
            one_minus_veff: [0.0; W],
            vector_lanes: DivLanes::pack(|w| specs[w].vector_lanes),
            scalar_flops_per_cycle: DivLanes::pack(|w| specs[w].scalar_flops_per_cycle),
            issue_width: DivLanes::pack(|w| specs[w].issue_width),
            load_store_per_cycle: DivLanes::pack(|w| specs[w].load_store_per_cycle),
            mlp: DivLanes::pack(|w| specs[w].mlp),
            one_minus_l1: [0.0; W],
            miss_lat: [0.0; W],
            dram_bw_bytes: DivLanes::pack(|w| specs[w].dram_bw_bytes),
            cores: [0.0; W],
            uniform_cores: None,
        };
        for (w, s) in specs.iter().enumerate() {
            lanes.cycle_seconds[w] = s.cycle_seconds;
            lanes.veff[w] = s.veff;
            lanes.one_minus_veff[w] = s.one_minus_veff;
            lanes.one_minus_l1[w] = s.one_minus_l1;
            lanes.miss_lat[w] = s.miss_lat;
            lanes.cores[w] = s.cores;
        }
        if lanes.cores.iter().all(|&c| c.to_bits() == lanes.cores[0].to_bits()) {
            lanes.uniform_cores = Some(lanes.cores[0]);
        }
        lanes
    }

    /// Extended-roofline projection of one block invocation on all `W`
    /// machines at once. The block inputs are scalars (shared across
    /// lanes); lane `w` of the result is bit-identical to
    /// `specs[w].block_time(...)` with the same arguments.
    #[inline]
    pub fn block_time(
        &self,
        flops: f64,
        iops: f64,
        accesses: f64,
        bytes: f64,
        thread_cap: f64,
        delta: f64,
    ) -> LaneTimes<W> {
        // Tc: vector-efficiency split, flop-pipe vs issue-width bound.
        let mut vec_flops = [0.0; W];
        for (v, veff) in vec_flops.iter_mut().zip(&self.veff) {
            *v = flops * veff;
        }
        let vec_part = self.vector_lanes.apply(vec_flops);
        let mut eff_flops = [0.0; W];
        for w in 0..W {
            eff_flops[w] = flops * self.one_minus_veff[w] + vec_part[w];
        }
        let flop_cycles = self.scalar_flops_per_cycle.apply(eff_flops);
        let mut issue_ops = [0.0; W];
        for w in 0..W {
            issue_ops[w] = eff_flops[w] + iops;
        }
        let issue_cycles = self.issue_width.apply(issue_ops);
        let mut tc_serial = [0.0; W];
        for w in 0..W {
            tc_serial[w] = flop_cycles[w].max(issue_cycles[w]) * self.cycle_seconds[w];
        }

        // Tm: per-core port/latency bound and shared bandwidth bound. The
        // `accesses == 0` branch depends only on the block, so it is
        // uniform across lanes.
        let mut per_core = [0.0; W];
        let mut shared = [0.0; W];
        if accesses != 0.0 {
            let port_cycles = self.load_store_per_cycle.apply([accesses; W]);
            let mut misses = [0.0; W];
            for (w, m) in misses.iter_mut().enumerate() {
                *m = accesses * self.one_minus_l1[w] * self.miss_lat[w];
            }
            let lat_cycles = self.mlp.apply(misses);
            let mut post_l1 = [0.0; W];
            for w in 0..W {
                per_core[w] = port_cycles[w].max(lat_cycles[w]) * self.cycle_seconds[w];
                post_l1[w] = bytes * self.one_minus_l1[w];
            }
            shared = self.dram_bw_bytes.apply(post_l1);
        }

        // Concurrency: the thread count depends on each lane's core count.
        // With uniform cores (the sweep-grid common case) the clamp and
        // power-of-two reciprocal decision are made once and the division
        // applies lane-wise; otherwise each lane re-derives the scalar
        // path's per-machine decision.
        let mut tc = [0.0; W];
        let mut tm = [0.0; W];
        match self.uniform_cores {
            Some(cores) => {
                let threads = thread_cap.min(cores).max(1.0);
                if threads > 1.0 {
                    match exact_recip(threads) {
                        Some(r) => {
                            for w in 0..W {
                                tc[w] = tc_serial[w] * r;
                                tm[w] = (per_core[w] * r).max(shared[w]);
                            }
                        }
                        None => {
                            for w in 0..W {
                                tc[w] = tc_serial[w] / threads;
                                tm[w] = (per_core[w] / threads).max(shared[w]);
                            }
                        }
                    }
                } else {
                    for w in 0..W {
                        tc[w] = tc_serial[w];
                        tm[w] = per_core[w].max(shared[w]);
                    }
                }
            }
            None => {
                for w in 0..W {
                    let threads = thread_cap.min(self.cores[w]).max(1.0);
                    (tc[w], tm[w]) = if threads > 1.0 {
                        match exact_recip(threads) {
                            Some(r) => (tc_serial[w] * r, (per_core[w] * r).max(shared[w])),
                            None => (tc_serial[w] / threads, (per_core[w] / threads).max(shared[w])),
                        }
                    } else {
                        (tc_serial[w], per_core[w].max(shared[w]))
                    };
                }
            }
        }

        // Overlap assembly: straight lane-wise arithmetic, kept SoA so the
        // caller's accumulators stay vectorizable too.
        let mut overlap = [0.0; W];
        let mut total = [0.0; W];
        for w in 0..W {
            overlap[w] = tc[w].min(tm[w]) * delta;
            total[w] = tc[w] + tm[w] - overlap[w];
        }
        LaneTimes { tc, tm, overlap, total }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::{bgq, generic, knl, xeon, MachineBuilder};
    use crate::roofline::{BlockMetrics, BlockSummary, PerfModel, Roofline};

    fn summaries() -> Vec<BlockSummary> {
        let mut v = Vec::new();
        for (flops, iops, loads, stores, elem_bytes) in [
            (0.0, 0.0, 0.0, 0.0, 8.0),
            (64.0, 16.0, 16.0, 8.0, 8.0),
            (1.0, 0.0, 1000.0, 0.0, 64.0),
            (100_000.0, 3.0, 3.0, 0.0, 4.0),
            (2.0, 2.0, 2.0, 2.0, 8.0),
        ] {
            for (avail_par, parallelizable) in [(1.0, true), (64.0, true), (7.5, true), (1000.0, false)] {
                v.push(BlockSummary {
                    metrics: BlockMetrics { flops, iops, loads, stores, divs: 0.0, elem_bytes },
                    enr: 1.0,
                    avail_par,
                    parallelizable,
                });
            }
        }
        v
    }

    fn assert_lanes_match_scalar<const W: usize>(specs: &[MachineSpec]) {
        let lanes = SpecLanes::<W>::pack(specs);
        for s in summaries() {
            let m = &s.metrics;
            let cap = if s.parallelizable { s.avail_par } else { 1.0 };
            let delta = MachineSpec::delta_of(m.flops);
            let fast = lanes.block_time(m.flops, m.iops, m.accesses(), m.bytes(), cap, delta);
            for (w, spec) in specs.iter().enumerate() {
                let reference = spec.block_time(m.flops, m.iops, m.accesses(), m.bytes(), cap, delta);
                assert_eq!(fast.tc[w].to_bits(), reference.tc.to_bits(), "tc lane {w}");
                assert_eq!(fast.tm[w].to_bits(), reference.tm.to_bits(), "tm lane {w}");
                assert_eq!(fast.overlap[w].to_bits(), reference.overlap.to_bits(), "overlap lane {w}");
                assert_eq!(fast.total[w].to_bits(), reference.total.to_bits(), "total lane {w}");
            }
        }
    }

    #[test]
    fn lanes_match_scalar_block_time_on_presets() {
        let specs: Vec<MachineSpec> = [bgq(), xeon(), knl(), generic()].iter().map(MachineSpec::resolve).collect();
        assert_lanes_match_scalar::<4>(&specs);
    }

    #[test]
    fn mixed_mul_div_lanes_stay_bit_identical() {
        // one lane with every strength-reducible parameter non-pow2 forces
        // the mixed per-lane branch in each DivLanes
        let mut odd = generic();
        odd.vector_lanes = 3.0;
        odd.scalar_flops_per_cycle = 1.5;
        odd.issue_width = 3.0;
        odd.load_store_per_cycle = 0.75;
        odd.mlp = 6.0;
        odd.dram_bw_gbs = 3.3;
        let odd = MachineBuilder::from(odd).cores(12).build();
        let machines = [bgq(), odd, xeon(), generic()];
        let specs: Vec<MachineSpec> = machines.iter().map(MachineSpec::resolve).collect();
        assert_lanes_match_scalar::<4>(&specs);
    }

    #[test]
    fn degenerate_machines_produce_the_scalar_bits_too() {
        // infinite frequency / zero cores: the lane arithmetic itself must
        // still match the scalar spec bit-for-bit (callers detect the
        // degenerate participation mismatch separately)
        let mut inf = generic();
        inf.freq_ghz = f64::INFINITY;
        let zero_core = MachineBuilder::from(generic()).cores(0).build();
        let machines = [inf, zero_core, knl(), bgq()];
        let specs: Vec<MachineSpec> = machines.iter().map(MachineSpec::resolve).collect();
        assert_lanes_match_scalar::<4>(&specs);
    }

    #[test]
    fn width_eight_lanes_match_too() {
        let machines = [bgq(), xeon(), knl(), generic(), bgq(), xeon(), knl(), generic()];
        let specs: Vec<MachineSpec> = machines.iter().map(MachineSpec::resolve).collect();
        assert_lanes_match_scalar::<8>(&specs);
    }

    #[test]
    fn lanes_agree_with_project_block_through_the_whole_model() {
        let machines = [bgq(), xeon(), knl(), generic()];
        let specs: Vec<MachineSpec> = machines.iter().map(MachineSpec::resolve).collect();
        let lanes = SpecLanes::<4>::pack(&specs);
        for s in summaries() {
            let m = &s.metrics;
            let cap = if s.parallelizable { s.avail_par } else { 1.0 };
            let fast = lanes.block_time(m.flops, m.iops, m.accesses(), m.bytes(), cap, MachineSpec::delta_of(m.flops));
            for (w, machine) in machines.iter().enumerate() {
                let reference = Roofline.project_block(machine, &s);
                assert_eq!(fast.total[w].to_bits(), reference.total.to_bits(), "{} lane {w}", machine.name);
            }
        }
    }
}
