//! Property tests for the roofline model family: algebraic bounds of the
//! extended-overlap formula and monotonicity in workload and machine
//! parameters, over randomized machines and block metrics.

use proptest::prelude::*;
use xflow_hw::{
    generic, BlockMetrics, CacheLevel, ClassicRoofline, DivAwareRoofline, MachineModel, PerfModel, Roofline,
    VectorAwareRoofline,
};

fn machine() -> impl Strategy<Value = MachineModel> {
    (
        0.5f64..4.0,    // freq
        1u32..=8,       // issue
        1u32..=8,       // lanes
        1u32..=4,       // flops/cycle
        1.0f64..64.0,   // bw
        50.0f64..400.0, // dram lat
        0.5f64..1.0,    // l1 hit
        0.5f64..1.0,    // llc hit
        1.0f64..16.0,   // mlp
        0.0f64..=1.0,   // veff
    )
        .prop_map(|(freq, issue, lanes, fpc, bw, lat, l1h, llch, mlp, veff)| {
            let mut m = generic();
            m.freq_ghz = freq;
            m.issue_width = issue as f64;
            m.vector_lanes = lanes as f64;
            m.scalar_flops_per_cycle = fpc as f64;
            m.dram_bw_gbs = bw;
            m.dram_latency_cycles = lat;
            m.l1_hit_rate = l1h;
            m.llc_hit_rate = llch;
            m.mlp = mlp;
            m.vector_efficiency = veff;
            m.l1 = CacheLevel { size_bytes: 32 * 1024, line_bytes: 64, assoc: 8, latency_cycles: 4.0 };
            m
        })
}

fn metrics() -> impl Strategy<Value = BlockMetrics> {
    (0u32..100_000, 0u32..50_000, 0u32..50_000, 0u32..20_000, prop_oneof![Just(4.0), Just(8.0), Just(16.0)]).prop_map(
        |(flops, iops, loads, stores, bytes)| BlockMetrics {
            flops: flops as f64,
            iops: iops as f64,
            loads: loads as f64,
            stores: stores as f64,
            divs: (flops / 10) as f64,
            elem_bytes: bytes,
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn extended_roofline_bounds(m in machine(), b in metrics()) {
        prop_assert!(m.validate().is_empty(), "{:?}", m.validate());
        let t = Roofline.project(&m, &b);
        prop_assert!(t.tc >= 0.0 && t.tm >= 0.0 && t.overlap >= 0.0);
        // max(Tc, Tm) ≤ T ≤ Tc + Tm
        prop_assert!(t.total + 1e-18 >= t.tc.max(t.tm) - 1e-12 * t.total.abs());
        prop_assert!(t.total <= t.tc + t.tm + 1e-18);
        // overlap can never exceed the smaller component
        prop_assert!(t.overlap <= t.tc.min(t.tm) + 1e-18);
        prop_assert!(t.total.is_finite());
    }

    #[test]
    fn more_work_respects_lower_bounds(m in machine(), b in metrics()) {
        // NOTE: the *extended* roofline is deliberately non-monotone in the
        // flop count near the overlap transition — extra flops raise the
        // overlap degree δ and can hide more memory time (a property of the
        // paper's formula, T = Tc + Tm − min(Tc,Tm)·δ). What must hold:
        // the classic roofline is monotone, and the extended total never
        // falls below the larger component.
        let t0 = ClassicRoofline.project(&m, &b).total;
        let mut bigger = b;
        bigger.flops += 128.0;
        bigger.loads += 64.0;
        let t1c = ClassicRoofline.project(&m, &bigger).total;
        prop_assert!(t1c + 1e-18 >= t0, "classic must be monotone: {t1c} < {t0}");
        let t1 = Roofline.project(&m, &bigger);
        prop_assert!(t1.total + 1e-18 >= t1.tc.max(t1.tm) - 1e-12 * t1.total.abs());
        // and with memory fixed, pure flop growth does grow Tc
        prop_assert!(t1.tc + 1e-18 >= Roofline.project(&m, &b).tc);
    }

    #[test]
    fn faster_clock_never_slower(m in machine(), b in metrics()) {
        let t0 = Roofline.project(&m, &b);
        let mut faster = m.clone();
        faster.freq_ghz *= 2.0;
        let t1 = Roofline.project(&faster, &b);
        // only cycle-denominated terms shrink; bandwidth terms are
        // frequency-independent, so total never grows
        prop_assert!(t1.total <= t0.total + 1e-18);
    }

    #[test]
    fn more_bandwidth_never_slower(m in machine(), b in metrics()) {
        let t0 = Roofline.project(&m, &b).total;
        let mut fat = m.clone();
        fat.dram_bw_gbs *= 4.0;
        let t1 = Roofline.project(&fat, &b).total;
        prop_assert!(t1 <= t0 + 1e-18);
    }

    #[test]
    fn classic_is_a_lower_bound(m in machine(), b in metrics()) {
        let classic = ClassicRoofline.project(&m, &b).total;
        let extended = Roofline.project(&m, &b).total;
        prop_assert!(classic <= extended + 1e-18);
    }

    #[test]
    fn div_aware_never_cheaper(m in machine(), b in metrics()) {
        let base = Roofline.project(&m, &b).total;
        let div = DivAwareRoofline.project(&m, &b).total;
        prop_assert!(div + 1e-18 >= base);
    }

    #[test]
    fn vector_aware_never_slower_than_scalar_model(m in machine(), b in metrics()) {
        // full vectorization can only help relative to a machine with the
        // same parameters but no assumed vectorization
        let mut scalar_m = m.clone();
        scalar_m.vector_efficiency = 0.0;
        let scalar = Roofline.project(&scalar_m, &b).total;
        let vector = VectorAwareRoofline.project(&scalar_m, &b).total;
        prop_assert!(vector <= scalar + 1e-18);
    }

    #[test]
    fn projection_scales_linearly(m in machine(), b in metrics()) {
        // doubling every metric at most doubles the time (sub-additivity of
        // the overlap) and at least keeps it (monotonicity)
        let t1 = Roofline.project(&m, &b).total;
        let mut double = b;
        double.flops *= 2.0;
        double.iops *= 2.0;
        double.loads *= 2.0;
        double.stores *= 2.0;
        double.divs *= 2.0;
        let t2 = Roofline.project(&m, &double).total;
        prop_assert!(t2 <= 2.0 * t1 + 1e-15);
        prop_assert!(t2 + 1e-18 >= t1);
    }
}
