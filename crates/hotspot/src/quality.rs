//! Selection quality — the paper's evaluation metric (Section VI).
//!
//! The developer cares about the *measured run-time coverage* of whatever
//! selection a method proposes. For a selection size `k`, quality compares
//! the measured coverage of the proposed top-`k` against the measured
//! coverage of the measured (oracle) top-`k`:
//!
//! `Q(k) = measured_coverage(proposed[..k]) / measured_coverage(measured[..k])`
//!
//! A perfect projection scores 1.0 at every `k`; mis-ranked spots with
//! similar coverage barely move it, while selecting genuinely cold blocks
//! drags it down. The paper reports Q averaging 95.8% and never below 80%.

use std::collections::HashMap;
use xflow_skeleton::StmtId;

/// Measured time attribution: statement → time, plus the total.
#[derive(Debug, Clone, Default)]
pub struct MeasuredTimes {
    pub times: HashMap<StmtId, f64>,
    pub total: f64,
}

impl MeasuredTimes {
    /// Build from per-statement times (total = sum).
    pub fn new(times: HashMap<StmtId, f64>) -> Self {
        let total = times.values().sum();
        Self { times, total }
    }

    /// Measured coverage of an ordered selection prefix.
    pub fn coverage_of(&self, stmts: &[StmtId]) -> f64 {
        if self.total == 0.0 {
            return 0.0;
        }
        stmts.iter().map(|s| self.times.get(s).copied().unwrap_or(0.0)).sum::<f64>() / self.total
    }

    /// Statements ranked by descending measured time.
    pub fn ranking(&self) -> Vec<StmtId> {
        let mut v: Vec<(StmtId, f64)> = self.times.iter().map(|(k, v)| (*k, *v)).collect();
        v.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal).then(a.0.cmp(&b.0)));
        v.into_iter().map(|(s, _)| s).collect()
    }
}

/// Quality of a proposed ranking at one selection size.
pub fn quality_at(proposed: &[StmtId], measured: &MeasuredTimes, k: usize) -> f64 {
    let oracle = measured.ranking();
    let k = k.min(proposed.len()).min(oracle.len());
    if k == 0 {
        return 1.0;
    }
    let oracle_cov = measured.coverage_of(&oracle[..k]);
    if oracle_cov == 0.0 {
        return 1.0;
    }
    (measured.coverage_of(&proposed[..k.min(proposed.len())]) / oracle_cov).clamp(0.0, 1.0)
}

/// Quality curve for k = 1 ..= max_k.
pub fn quality_curve(proposed: &[StmtId], measured: &MeasuredTimes, max_k: usize) -> Vec<f64> {
    (1..=max_k).map(|k| quality_at(proposed, measured, k)).collect()
}

/// Number of common members in the two top-`k` sets (the paper's "only 4 of
/// the top 10 hot spots are shared across machines" comparison).
pub fn top_k_overlap(a: &[StmtId], b: &[StmtId], k: usize) -> usize {
    let ka = &a[..k.min(a.len())];
    let kb = &b[..k.min(b.len())];
    ka.iter().filter(|s| kb.contains(s)).count()
}

/// Cumulative measured-coverage curve of an ordered selection (the Prof /
/// Modl(m) curves of Figures 4–13).
pub fn coverage_curve(order: &[StmtId], measured: &MeasuredTimes, max_k: usize) -> Vec<f64> {
    let mut acc = 0.0;
    order
        .iter()
        .take(max_k)
        .map(|s| {
            if measured.total > 0.0 {
                acc += measured.times.get(s).copied().unwrap_or(0.0) / measured.total;
            }
            acc
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn measured(pairs: &[(u32, f64)]) -> MeasuredTimes {
        MeasuredTimes::new(pairs.iter().map(|&(i, t)| (StmtId(i), t)).collect())
    }

    fn ids(v: &[u32]) -> Vec<StmtId> {
        v.iter().map(|&i| StmtId(i)).collect()
    }

    #[test]
    fn perfect_ranking_scores_one() {
        let m = measured(&[(0, 50.0), (1, 30.0), (2, 20.0)]);
        let proposed = ids(&[0, 1, 2]);
        for k in 1..=3 {
            assert_eq!(quality_at(&proposed, &m, k), 1.0);
        }
    }

    #[test]
    fn swapped_similar_spots_barely_hurt() {
        // spots 1 and 2 have nearly identical coverage (the paper's SRAD
        // and CHARGEI inversions)
        let m = measured(&[(0, 50.0), (1, 25.1), (2, 24.9)]);
        let proposed = ids(&[0, 2, 1]); // swap 1 and 2
        let q = quality_at(&proposed, &m, 2);
        assert!(q > 0.99, "{q}");
        assert_eq!(quality_at(&proposed, &m, 3), 1.0);
    }

    #[test]
    fn cold_block_selection_hurts() {
        let m = measured(&[(0, 90.0), (1, 5.0), (2, 5.0)]);
        let proposed = ids(&[1, 2, 0]); // proposes cold blocks first
        let q1 = quality_at(&proposed, &m, 1);
        assert!((q1 - 5.0 / 90.0).abs() < 1e-9, "{q1}");
    }

    #[test]
    fn quality_clamped_to_unit() {
        let m = measured(&[(0, 10.0), (1, 10.0)]);
        let q = quality_at(&ids(&[0, 1]), &m, 5);
        assert!(q <= 1.0);
    }

    #[test]
    fn overlap_counts_shared_members() {
        let a = ids(&[0, 1, 2, 3, 4, 5, 6, 7, 8, 9]);
        let b = ids(&[0, 2, 4, 6, 11, 12, 13, 14, 15, 16]);
        assert_eq!(top_k_overlap(&a, &b, 10), 4);
        assert_eq!(top_k_overlap(&a, &b, 1), 1);
        assert_eq!(top_k_overlap(&a, &[], 10), 0);
    }

    #[test]
    fn coverage_curve_accumulates() {
        let m = measured(&[(0, 60.0), (1, 30.0), (2, 10.0)]);
        let curve = coverage_curve(&ids(&[0, 1, 2]), &m, 3);
        assert!((curve[0] - 0.6).abs() < 1e-9);
        assert!((curve[1] - 0.9).abs() < 1e-9);
        assert!((curve[2] - 1.0).abs() < 1e-9);
    }

    #[test]
    fn ranking_descending() {
        let m = measured(&[(0, 5.0), (1, 50.0), (2, 20.0)]);
        assert_eq!(m.ranking(), ids(&[1, 2, 0]));
    }

    #[test]
    fn empty_measured_is_neutral() {
        let m = MeasuredTimes::default();
        assert_eq!(quality_at(&ids(&[0]), &m, 1), 1.0);
        assert_eq!(m.coverage_of(&ids(&[0])), 0.0);
    }

    #[test]
    fn quality_curve_length() {
        let m = measured(&[(0, 1.0), (1, 1.0)]);
        assert_eq!(quality_curve(&ids(&[0, 1]), &m, 5).len(), 5);
    }
}
