//! Batched structure-of-arrays evaluation kernel (phase 2, fast path).
//!
//! [`crate::ProjectionPlan::evaluate`] walks an AoS `Vec<PlanBlock>` and
//! calls the performance model through a trait object per block — fine for
//! one machine, wasteful for a design-space sweep that re-evaluates the
//! same plan on hundreds of candidate machines. [`PlanKernel`] re-lays the
//! plan out once into parallel columns (flops, iops, accesses, bytes, ENR,
//! thread caps, δ) so the per-machine inner loop streams flat `f64` arrays
//! with no pointer chasing and no virtual dispatch, using the constants a
//! [`MachineSpec`] pre-resolves per machine.
//!
//! [`Scratch`] holds the `node_costs`/`StmtCosts` output buffers between
//! evaluations: the warm path performs zero allocations per point, which
//! is where the remaining per-point cost of a sweep lives once the plan is
//! cached.
//!
//! Bit-identity contract: [`PlanKernel::evaluate_spec_into`] accumulates in
//! exactly the order of [`crate::ProjectionPlan::evaluate`], with each
//! block time computed by [`MachineSpec::block_time`] (itself bit-identical
//! to `Roofline.project_block`), so every `f64` of the resulting
//! [`Projection`] matches the scalar path to the bit. Models that cannot
//! specialize evaluate through [`PlanKernel::evaluate_into`], which falls
//! back to the virtual-dispatch loop over the retained [`BlockSummary`]
//! rows — same arithmetic as the scalar path, still allocation-free warm.

use serde::{Deserialize, Serialize};
use xflow_hw::{BlockMetrics, BlockSummary, MachineModel, MachineSpec, PerfModel};
use xflow_obs::{AttrValue, BlockProvenance, NoopRecorder, Recorder, SpanId};
use xflow_skeleton::StmtId;

use crate::analysis::{NodeCost, Projection, StmtCosts};
use crate::columns::{ColumnsChunk, ProjectionColumns};
use crate::plan::ProjectionPlan;

/// Column sentinel for "block aggregates into no statement".
const NO_STMT: u32 = u32::MAX;

/// Number of machines evaluated per pass by the columnar batch loop: 4
/// with the `simd` feature (f64x4 lanes), 1 when the feature is off (the
/// scalar per-point loop). Output bits are identical either way.
pub fn lane_width() -> usize {
    if cfg!(feature = "simd") {
        4
    } else {
        1
    }
}

/// Structure-of-arrays compilation of a [`ProjectionPlan`], built once and
/// evaluated per machine via [`PlanKernel::evaluate_spec_into`] or
/// [`PlanKernel::evaluate_batch`].
#[derive(Debug, Clone)]
pub struct PlanKernel {
    /// BET arena index of each block (`PlanBlock::node`).
    node: Vec<u32>,
    /// Statement each block aggregates into, or [`NO_STMT`].
    stmt: Vec<u32>,
    /// Per-invocation floating point operations.
    flops: Vec<f64>,
    /// Per-invocation fixed point operations.
    iops: Vec<f64>,
    /// Per-invocation memory accesses (`loads + stores`).
    accesses: Vec<f64>,
    /// Per-invocation bytes touched (`accesses × elem_bytes`).
    bytes: Vec<f64>,
    /// Expected number of repetitions of each block.
    enr: Vec<f64>,
    /// Thread cap: available parallelism, or 1.0 for non-parallelizable
    /// blocks (library calls). `cap.min(cores).max(1.0)` reproduces
    /// `BlockSummary::threads_on` bit-exactly for every core count.
    thread_cap: Vec<f64>,
    /// Precomputed overlap fraction δ = 1 − 1/max(1, flops).
    delta: Vec<f64>,
    /// Full block summaries, kept for the non-specialized fallback path
    /// and for telemetry provenance (cold: not touched by the fast loop).
    summaries: Vec<BlockSummary>,
    /// Metrics charged to the statement aggregate (cold).
    stmt_metrics: Vec<BlockMetrics>,
    /// Predicted statement participation per block: `flops > 0 ∨ iops > 0 ∨
    /// accesses > 0`, which is `time.total > 0` on every non-degenerate
    /// machine. Lets the per-statement *metrics* aggregation — machine-
    /// independent, and the only division left in the hot loop (the
    /// `elem_bytes` blend in [`BlockMetrics::add_scaled`]) — be precomputed
    /// into [`PlanKernel::pre_stmt_metrics`] at build time. The runtime
    /// loop just checks the prediction; a mismatch (underflow, infinite
    /// frequency, …) takes a bit-exact sequential fallback pass.
    stmt_participates: Vec<bool>,
    /// Per-statement metrics totals under the predicted participation set,
    /// produced by the exact `add_scaled` call sequence the scalar
    /// evaluator performs — copying an entry is bit-identical to having
    /// accumulated it. Dense, indexed by statement ID.
    pre_stmt_metrics: Vec<BlockMetrics>,
    /// Whether each block is the first (in plan order) predicted-active
    /// block of its statement. First-touch blocks *assign* the statement's
    /// time fields instead of accumulating — bit-identical because every
    /// accumulated term is `≥ +0.0`, so `0.0 + x` is exactly `x` — which
    /// lets a warm adopted scratch skip clearing entirely.
    first_touch: Vec<bool>,
    /// Statement IDs in first-touch order: the presence bookkeeping the
    /// hot loop's writes produce when the prediction holds, installed
    /// wholesale into the scratch after its first adopted evaluation.
    pre_touched: Vec<u32>,
    /// ENR of every BET node, for sizing/seeding `node_costs`.
    node_enr: Vec<f64>,
    /// Upper bound on statement IDs.
    stmt_bound: usize,
    /// Library functions with no registered mix, in first-seen order.
    unknown_libs: Vec<String>,
    /// Content fingerprint of the columns; a [`Scratch`] primed for one
    /// kernel is recognized as warm only for the same fingerprint.
    fingerprint: u64,
    /// Statement-slot maps for columnar arenas, derived from `stmt` on
    /// first use and shared into every [`ProjectionColumns`] by reference
    /// count (not serialized — rebuilt lazily after deserialization).
    slot_layout: std::sync::OnceLock<std::sync::Arc<crate::columns::SlotLayout>>,
}

impl PlanKernel {
    /// Compile the SoA columns from a plan. Pure data movement — every
    /// derived column (`accesses`, `bytes`, `delta`, `thread_cap`) uses
    /// the exact expression the scalar path computes per call.
    pub fn new(plan: &ProjectionPlan) -> Self {
        let blocks = plan.blocks();
        let n = blocks.len();
        let mut kernel = Self {
            node: Vec::with_capacity(n),
            stmt: Vec::with_capacity(n),
            flops: Vec::with_capacity(n),
            iops: Vec::with_capacity(n),
            accesses: Vec::with_capacity(n),
            bytes: Vec::with_capacity(n),
            enr: Vec::with_capacity(n),
            thread_cap: Vec::with_capacity(n),
            delta: Vec::with_capacity(n),
            summaries: Vec::with_capacity(n),
            stmt_metrics: Vec::with_capacity(n),
            stmt_participates: Vec::with_capacity(n),
            pre_stmt_metrics: vec![BlockMetrics::default(); plan.stmt_bound()],
            first_touch: Vec::with_capacity(n),
            pre_touched: Vec::new(),
            node_enr: plan.enr().to_vec(),
            stmt_bound: plan.stmt_bound(),
            unknown_libs: plan.unknown_libs().to_vec(),
            fingerprint: 0,
            slot_layout: std::sync::OnceLock::new(),
        };
        for block in blocks {
            let m = &block.summary.metrics;
            kernel.node.push(block.node);
            kernel.stmt.push(block.stmt.map(|s| s.0).unwrap_or(NO_STMT));
            kernel.flops.push(m.flops);
            kernel.iops.push(m.iops);
            kernel.accesses.push(m.accesses());
            kernel.bytes.push(m.bytes());
            kernel.enr.push(block.summary.enr);
            kernel.thread_cap.push(if block.summary.parallelizable { block.summary.avail_par } else { 1.0 });
            kernel.delta.push(MachineSpec::delta_of(m.flops));
            kernel.summaries.push(block.summary);
            kernel.stmt_metrics.push(block.stmt_metrics);
        }
        // Precompute the per-statement metrics aggregation under predicted
        // participation, with the exact call sequence the runtime performs,
        // plus the first-touch flags and final presence set of that
        // participation (what the hot loop's writes produce when the
        // prediction holds).
        for i in 0..kernel.node.len() {
            let p = kernel.flops[i] > 0.0 || kernel.iops[i] > 0.0 || kernel.accesses[i] > 0.0;
            kernel.stmt_participates.push(p);
            let stmt = kernel.stmt[i];
            let mut first = false;
            if stmt != NO_STMT && p {
                kernel.pre_stmt_metrics[stmt as usize].add_scaled(&kernel.stmt_metrics[i], kernel.enr[i]);
                if !kernel.pre_touched.contains(&stmt) {
                    kernel.pre_touched.push(stmt);
                    first = true;
                }
            }
            kernel.first_touch.push(first);
        }
        kernel.fingerprint = kernel.content_fingerprint();
        kernel
    }

    /// Number of cost-carrying blocks.
    pub fn len(&self) -> usize {
        self.node.len()
    }

    /// True when the plan carries no cost blocks.
    pub fn is_empty(&self) -> bool {
        self.node.is_empty()
    }

    /// Content fingerprint of the columns (ties a [`Scratch`] to a kernel).
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    /// The statement-slot maps for columnar arenas, built once per kernel
    /// and shared by reference count.
    pub(crate) fn slot_layout(&self) -> &std::sync::Arc<crate::columns::SlotLayout> {
        self.slot_layout.get_or_init(|| {
            std::sync::Arc::new(crate::columns::SlotLayout::build(&self.stmt, self.stmt_bound, &self.pre_touched))
        })
    }

    /// FNV-1a over every column, so two kernels compare equal iff every
    /// evaluation-relevant bit matches.
    fn content_fingerprint(&self) -> u64 {
        const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut h = OFFSET;
        let mut eat = |bytes: &[u8]| {
            for &b in bytes {
                h ^= b as u64;
                h = h.wrapping_mul(PRIME);
            }
        };
        eat(&(self.node.len() as u64).to_le_bytes());
        for &v in &self.node {
            eat(&v.to_le_bytes());
        }
        for &v in &self.stmt {
            eat(&v.to_le_bytes());
        }
        for col in [&self.flops, &self.iops, &self.accesses, &self.bytes, &self.enr, &self.thread_cap, &self.delta] {
            for &v in col {
                eat(&v.to_bits().to_le_bytes());
            }
        }
        eat(&(self.node_enr.len() as u64).to_le_bytes());
        for &v in &self.node_enr {
            eat(&v.to_bits().to_le_bytes());
        }
        eat(&(self.stmt_bound as u64).to_le_bytes());
        for name in &self.unknown_libs {
            eat(name.as_bytes());
            eat(&[0xff]);
        }
        h
    }

    /// Fresh (cold) output buffers for this kernel. The first evaluation
    /// allocates them; every later evaluation through the same scratch is
    /// allocation-free.
    pub fn make_scratch(&self) -> Scratch {
        Scratch {
            node_costs: Vec::new(),
            per_stmt: StmtCosts::default(),
            total_time: 0.0,
            fingerprint: 0,
            stmt_adopted: false,
        }
    }

    /// Reset a scratch for one evaluation. Returns `true` on the warm path
    /// (buffers reused in place, no allocation).
    ///
    /// Warm correctness: every cost-block slot of `node_costs` is
    /// overwritten by assignment each evaluation, and structural slots hold
    /// machine-independent values (zero cost, node ENR) that never change.
    /// The per-statement table is *not* cleared here — the caller decides
    /// between the adopted fast path (first-touch assignment, nothing to
    /// clear) and an explicit clear.
    fn prime(&self, scratch: &mut Scratch) -> bool {
        if scratch.fingerprint == self.fingerprint && scratch.node_costs.len() == self.node_enr.len() {
            scratch.total_time = 0.0;
            true
        } else {
            scratch.node_costs.clear();
            scratch.node_costs.extend(self.node_enr.iter().map(|&e| NodeCost {
                per_invocation: Default::default(),
                enr: e,
                total: 0.0,
            }));
            scratch.per_stmt = StmtCosts::with_stmt_capacity(self.stmt_bound);
            scratch.total_time = 0.0;
            scratch.fingerprint = self.fingerprint;
            scratch.stmt_adopted = false;
            false
        }
    }

    /// Evaluate on one pre-resolved machine, reusing `scratch`'s buffers.
    /// Returns `true` when the scratch was warm (reused without
    /// allocation). Results are bit-identical to
    /// [`ProjectionPlan::evaluate`] with the model the spec came from.
    pub fn evaluate_spec_into(&self, spec: &MachineSpec, scratch: &mut Scratch) -> bool {
        self.evaluate_spec_observed_into(spec, scratch, &NoopRecorder)
    }

    /// [`PlanKernel::evaluate_spec_into`] under a telemetry recorder: when
    /// enabled, emits the same per-block [`BlockProvenance`] stream,
    /// `plan.blocks` counter, and span shape as
    /// [`ProjectionPlan::evaluate_observed`] (span name `kernel.evaluate`),
    /// so collected block-cost multisets are independent of which
    /// evaluation path ran.
    pub fn evaluate_spec_observed_into<R: Recorder + ?Sized>(
        &self,
        spec: &MachineSpec,
        scratch: &mut Scratch,
        rec: &R,
    ) -> bool {
        let enabled = rec.enabled();
        let span = if enabled {
            rec.span_start("kernel.evaluate", &[("blocks", AttrValue::U64(self.len() as u64))])
        } else {
            SpanId::NONE
        };
        let warm = self.prime(scratch);
        // adopted: this scratch's per-statement presence set and metrics
        // were installed by a previous predicted evaluation of this same
        // kernel — time fields are fully overwritten below (first-touch
        // assignment), so nothing needs clearing
        let adopted = warm && scratch.stmt_adopted;
        if !adopted {
            scratch.per_stmt.clear();
        }
        let mut total_time = 0.0;

        // hoist length-proven slices so the hot loop indexes without bounds
        // checks — on small plans the checks cost more than the arithmetic
        let n = self.node.len();
        let (node, stmt_col) = (&self.node[..n], &self.stmt[..n]);
        let (flops, iops) = (&self.flops[..n], &self.iops[..n]);
        let (accesses, bytes) = (&self.accesses[..n], &self.bytes[..n]);
        let (enr, thread_cap, delta) = (&self.enr[..n], &self.thread_cap[..n], &self.delta[..n]);
        let participates = &self.stmt_participates[..n];
        let first_touch = &self.first_touch[..n];
        // true while every block's actual `total > 0` matches the predicted
        // participation — the precomputed per-statement presence set and
        // metrics then apply
        let mut predicted = true;

        for i in 0..n {
            let time = spec.block_time(flops[i], iops[i], accesses[i], bytes[i], thread_cap[i], delta[i]);
            let e = enr[i];
            let total = time.total * e;
            total_time += total;
            scratch.node_costs[node[i] as usize] = NodeCost { per_invocation: time, enr: e, total };

            let stmt = stmt_col[i];
            if stmt != NO_STMT {
                let active = time.total > 0.0;
                predicted &= active == participates[i];
                if active {
                    // time fields only; presence bookkeeping and the
                    // machine-independent metrics are resolved after the
                    // loop (or already in place on an adopted scratch)
                    let s = scratch.per_stmt.slot_mut(stmt);
                    if first_touch[i] {
                        s.total = total;
                        s.tc = time.tc * e;
                        s.tm = time.tm * e;
                        s.overlap = time.overlap * e;
                    } else {
                        s.total += total;
                        s.tc += time.tc * e;
                        s.tm += time.tm * e;
                        s.overlap += time.overlap * e;
                    }
                }
            }

            if enabled {
                let floor = time.tc.min(time.tm);
                let delta = if floor > 0.0 { time.overlap / floor } else { 0.0 };
                let m = &self.summaries[i].metrics;
                rec.block_cost(&BlockProvenance {
                    node: node[i],
                    stmt: (stmt != NO_STMT).then_some(stmt),
                    enr: e,
                    tc: time.tc,
                    tm: time.tm,
                    overlap: time.overlap,
                    delta,
                    total,
                    threads: thread_cap[i].min(spec.cores).max(1.0),
                    flops: m.flops,
                    iops: m.iops,
                    loads: m.loads,
                    stores: m.stores,
                    bytes: bytes[i],
                });
            }
        }

        if predicted {
            if !adopted {
                // every participating statement got exactly the blocks the
                // precomputation assumed: install the precomputed presence
                // set and metrics (same add_scaled sequence, run once at
                // build time). Later warm evaluations skip all of this.
                scratch.per_stmt.adopt(&self.pre_touched);
                scratch.per_stmt.set_metrics_from(&self.pre_stmt_metrics);
                scratch.stmt_adopted = true;
            }
        } else {
            // degenerate machine (underflowed or infinite block times):
            // wipe the hot loop's unbookkept writes and replay the scalar
            // evaluator's sequential aggregation, reading each block's
            // actual time back from the node costs
            scratch.per_stmt.wipe();
            for i in 0..n {
                let stmt = stmt_col[i];
                if stmt == NO_STMT {
                    continue;
                }
                let pi = scratch.node_costs[node[i] as usize];
                if pi.per_invocation.total > 0.0 {
                    let e = enr[i];
                    let s = scratch.per_stmt.entry_mut(StmtId(stmt));
                    s.total += pi.total;
                    s.tc += pi.per_invocation.tc * e;
                    s.tm += pi.per_invocation.tm * e;
                    s.overlap += pi.per_invocation.overlap * e;
                    s.metrics.add_scaled(&self.stmt_metrics[i], e);
                }
            }
            scratch.stmt_adopted = false;
        }

        scratch.total_time = total_time;
        if enabled {
            rec.add("plan.blocks", self.len() as u64);
            rec.span_end(span, &[("total_time", AttrValue::F64(total_time))]);
        }
        warm
    }

    /// Evaluate on one machine under any performance model, reusing
    /// `scratch`. Dispatches to the specialized SoA loop when the model
    /// provides a [`MachineSpec`], otherwise runs the virtual-dispatch
    /// fallback over the retained summaries (same arithmetic and order as
    /// [`ProjectionPlan::evaluate`]). Returns `true` when the specialized
    /// path ran.
    pub fn evaluate_into(&self, machine: &MachineModel, model: &dyn PerfModel, scratch: &mut Scratch) -> bool {
        match model.specialize(machine) {
            Some(spec) => {
                self.evaluate_spec_into(&spec, scratch);
                true
            }
            None => {
                self.prime(scratch);
                scratch.per_stmt.clear();
                scratch.stmt_adopted = false;
                let mut total_time = 0.0;
                for i in 0..self.summaries.len() {
                    let time = model.project_block(machine, &self.summaries[i]);
                    let e = self.enr[i];
                    let total = time.total * e;
                    total_time += total;
                    scratch.node_costs[self.node[i] as usize] = NodeCost { per_invocation: time, enr: e, total };
                    let stmt = self.stmt[i];
                    if stmt != NO_STMT && time.total > 0.0 {
                        let s = scratch.per_stmt.entry_mut(StmtId(stmt));
                        s.total += total;
                        s.tc += time.tc * e;
                        s.tm += time.tm * e;
                        s.overlap += time.overlap * e;
                        s.metrics.add_scaled(&self.stmt_metrics[i], e);
                    }
                }
                scratch.total_time = total_time;
                false
            }
        }
    }

    /// Evaluate the kernel on a batch of pre-resolved machines, reusing one
    /// scratch across the whole batch (one allocation set total). Each
    /// returned [`Projection`] is bit-identical to
    /// [`ProjectionPlan::evaluate`] on the corresponding machine.
    pub fn evaluate_batch(&self, specs: &[MachineSpec]) -> Vec<Projection> {
        let mut scratch = self.make_scratch();
        specs
            .iter()
            .map(|spec| {
                self.evaluate_spec_into(spec, &mut scratch);
                scratch.projection(self)
            })
            .collect()
    }

    /// Columnar batch evaluation: evaluate every spec and return the dense
    /// [`ProjectionColumns`] arena — no per-point `Projection`
    /// materialization. With the `simd` feature the machines are processed
    /// in lanes of [`lane_width`] with a scalar remainder loop; every
    /// stored value is bit-identical to the scalar evaluator either way.
    pub fn evaluate_columns(&self, specs: &[MachineSpec]) -> ProjectionColumns {
        let mut cols = ProjectionColumns::new(self, specs.to_vec());
        let mut scratch = self.make_scratch();
        let n = cols.points();
        // fill the arena in place — no intermediate chunk buffer to
        // allocate, zero, and copy back
        let (layout, mut target) = cols.layout_and_target(0..n);
        self.fill_columns(0, &layout, &mut target, &mut scratch);
        cols
    }

    /// Evaluate the contiguous point range `range` of a columns arena into
    /// a mergeable [`ColumnsChunk`] (install it with
    /// [`ProjectionColumns::install`]). This is the sweep scheduler's unit
    /// of work: workers share the read-only arena layout and each fills
    /// disjoint ranges with a private scratch.
    ///
    /// With the `simd` feature, full groups of [`lane_width`] machines run
    /// through the lane-packed [`xflow_hw::SpecLanes`] loop; the group
    /// remainder — and any lane whose machine turns out degenerate
    /// (observed block participation diverging from the prediction, e.g.
    /// underflowed or infinite times) — replays through the scalar
    /// [`PlanKernel::evaluate_spec_into`] path, which is the bit-exact
    /// oracle by construction.
    pub fn evaluate_columns_chunk(
        &self,
        cols: &ProjectionColumns,
        range: std::ops::Range<usize>,
        scratch: &mut Scratch,
    ) -> ColumnsChunk {
        let mut chunk = ColumnsChunk::zeroed(range.start, range.len(), cols.slot_count());
        let layout = cols.layout();
        let mut target = chunk.target();
        self.fill_columns(range.start, &layout, &mut target, scratch);
        chunk
    }

    /// The columnar fill engine behind [`PlanKernel::evaluate_columns`]
    /// (arena-direct) and [`PlanKernel::evaluate_columns_chunk`]
    /// (chunk-buffered): evaluates `layout.specs[start + r]` into target
    /// row `r` for the whole target.
    // lane loops are written `for w in 0..W` even where an iterator would
    // do: the fixed-width indexed form matches `lanes.rs` and is what the
    // autovectorizer reliably lowers to packed ops
    #[allow(clippy::needless_range_loop)]
    fn fill_columns(
        &self,
        start: usize,
        layout: &crate::columns::ColumnsLayout<'_>,
        target: &mut crate::columns::ColumnsTarget<'_>,
        scratch: &mut Scratch,
    ) {
        assert_eq!(layout.fingerprint, self.fingerprint, "columns arena built from a foreign kernel");
        let len = target.len;
        let mut rel = 0usize;

        #[cfg(feature = "simd")]
        {
            const W: usize = 4;
            let k = layout.slots;
            /// Per-slot lane accumulator, fused so one slot touch hits one
            /// contiguous struct instead of four scattered vectors.
            #[derive(Clone, Copy)]
            struct LaneAcc {
                total: [f64; W],
                tc: [f64; W],
                tm: [f64; W],
                ov: [f64; W],
            }
            // Lane accumulators. Never rezeroed between groups: the
            // first-touch column assigns (not adds) each slot's first
            // contribution, exactly like the scalar fast path, so stale
            // lanes from the previous group are overwritten before they are
            // read. Slots outside `pre_touched` are never written nor read.
            let mut st = vec![LaneAcc { total: [0.0; W], tc: [0.0; W], tm: [0.0; W], ov: [0.0; W] }; k];
            // slot index of every predicted-participating statement —
            // writeback touches only these rows (the rest of the arena row
            // is pre-zeroed)
            let touched = &layout.maps.touched;

            let n = self.node.len();
            let stmt_col = &self.stmt[..n];
            let (flops, iops) = (&self.flops[..n], &self.iops[..n]);
            let (accesses, bytes) = (&self.accesses[..n], &self.bytes[..n]);
            let (enr, thread_cap, delta) = (&self.enr[..n], &self.thread_cap[..n], &self.delta[..n]);
            let participates = &self.stmt_participates[..n];
            let first_touch = &self.first_touch[..n];
            let block_slot = &layout.maps.block_slot[..n];

            while rel < len {
                // the tail group pads its trailing lanes with copies of the
                // window's first spec: full lane arithmetic, writeback only
                // of the `valid` real lanes — no scalar remainder loop, so
                // the scratch stays cold unless a lane is degenerate
                let valid = (len - rel).min(W);
                let window = &layout.specs[start + rel..start + rel + valid];
                let lanes = if valid == W {
                    xflow_hw::SpecLanes::<W>::pack(window)
                } else {
                    let mut padded = [window[0]; W];
                    padded[..valid].copy_from_slice(window);
                    xflow_hw::SpecLanes::<W>::pack(&padded)
                };
                let mut acc_total = [0.0f64; W];
                let mut acc_tc = [0.0f64; W];
                let mut acc_tm = [0.0f64; W];
                let mut acc_ov = [0.0f64; W];
                let mut pred = [true; W];

                for i in 0..n {
                    let t = lanes.block_time(flops[i], iops[i], accesses[i], bytes[i], thread_cap[i], delta[i]);
                    let e = enr[i];
                    for w in 0..W {
                        acc_total[w] += t.total[w] * e;
                    }
                    for w in 0..W {
                        acc_tc[w] += t.tc[w] * e;
                    }
                    for w in 0..W {
                        acc_tm[w] += t.tm[w] * e;
                    }
                    for w in 0..W {
                        acc_ov[w] += t.overlap[w] * e;
                    }
                    if stmt_col[i] != NO_STMT {
                        let p = participates[i];
                        let mut uniform = true;
                        let mut active = [false; W];
                        for w in 0..W {
                            active[w] = t.total[w] > 0.0;
                            uniform &= active[w] == p;
                        }
                        if uniform {
                            // every lane matches the prediction: one branch
                            // for the whole group, branch-free lane writes
                            if p {
                                let a = &mut st[block_slot[i] as usize];
                                if first_touch[i] {
                                    for w in 0..W {
                                        a.total[w] = t.total[w] * e;
                                    }
                                    for w in 0..W {
                                        a.tc[w] = t.tc[w] * e;
                                    }
                                    for w in 0..W {
                                        a.tm[w] = t.tm[w] * e;
                                    }
                                    for w in 0..W {
                                        a.ov[w] = t.overlap[w] * e;
                                    }
                                } else {
                                    for w in 0..W {
                                        a.total[w] += t.total[w] * e;
                                    }
                                    for w in 0..W {
                                        a.tc[w] += t.tc[w] * e;
                                    }
                                    for w in 0..W {
                                        a.tm[w] += t.tm[w] * e;
                                    }
                                    for w in 0..W {
                                        a.ov[w] += t.overlap[w] * e;
                                    }
                                }
                            }
                        } else {
                            // some lane diverged from the prediction
                            // (degenerate machine): fold the mismatch into
                            // `pred` and keep the surviving lanes exact
                            let a = &mut st[block_slot[i] as usize];
                            for w in 0..W {
                                pred[w] &= active[w] == p;
                                if active[w] {
                                    if first_touch[i] {
                                        a.total[w] = t.total[w] * e;
                                        a.tc[w] = t.tc[w] * e;
                                        a.tm[w] = t.tm[w] * e;
                                        a.ov[w] = t.overlap[w] * e;
                                    } else {
                                        a.total[w] += t.total[w] * e;
                                        a.tc[w] += t.tc[w] * e;
                                        a.tm[w] += t.tm[w] * e;
                                        a.ov[w] += t.overlap[w] * e;
                                    }
                                }
                            }
                        }
                    }
                }

                for w in 0..valid {
                    let r = rel + w;
                    if pred[w] {
                        target.total[r] = acc_total[w];
                        target.tc[r] = acc_tc[w];
                        target.tm[r] = acc_tm[w];
                        target.overlap[r] = acc_ov[w];
                        target.delta[r] = crate::columns::achieved_delta(acc_tc[w], acc_tm[w], acc_ov[w]);
                        target.memory_bound[r] = acc_tm[w] > acc_tc[w];
                        // predicted participation held: presence is the
                        // precomputed set, same as the scalar fast path
                        let base = r * k;
                        for &slot in touched {
                            let s = slot as usize;
                            let a = &st[s];
                            target.stmt_total[base + s] = a.total[w];
                            target.stmt_tc[base + s] = a.tc[w];
                            target.stmt_tm[base + s] = a.tm[w];
                            target.stmt_overlap[base + s] = a.ov[w];
                            target.stmt_present[base + s] = true;
                        }
                    } else {
                        // degenerate lane: replay through the scalar oracle
                        self.evaluate_spec_into(&layout.specs[start + r], scratch);
                        target.fill_from_scratch(r, &layout.maps.slot_of, scratch);
                    }
                }
                rel += valid;
            }
        }

        // scalar remainder (the whole target when `simd` is off)
        while rel < len {
            self.evaluate_spec_into(&layout.specs[start + rel], scratch);
            target.fill_from_scratch(rel, &layout.maps.slot_of, scratch);
            rel += 1;
        }
    }
}

/// Hand-written serde impls (the vendored derive has no `#[serde(skip)]`):
/// the wire shape is exactly what the derive produced before the lazily
/// built `slot_layout` cache existed — every persisted field, by name —
/// and deserialization leaves the cache empty to be rebuilt on first use.
macro_rules! kernel_persisted_fields {
    ($m:ident) => {
        $m!(
            node,
            stmt,
            flops,
            iops,
            accesses,
            bytes,
            enr,
            thread_cap,
            delta,
            summaries,
            stmt_metrics,
            stmt_participates,
            pre_stmt_metrics,
            first_touch,
            pre_touched,
            node_enr,
            stmt_bound,
            unknown_libs,
            fingerprint
        )
    };
}

impl Serialize for PlanKernel {
    fn serialize(&self) -> serde::Content {
        macro_rules! entries {
            ($($f:ident),*) => {
                vec![$((serde::Content::Str(stringify!($f).to_string()), Serialize::serialize(&self.$f))),*]
            };
        }
        serde::Content::Map(kernel_persisted_fields!(entries))
    }
}

impl Deserialize for PlanKernel {
    fn deserialize(content: &serde::Content) -> Result<Self, serde::Error> {
        match content {
            serde::Content::Map(entries) => {
                macro_rules! build {
                    ($($f:ident),*) => {
                        Ok(Self {
                            $($f: serde::field(entries, stringify!($f))?,)*
                            slot_layout: std::sync::OnceLock::new(),
                        })
                    };
                }
                kernel_persisted_fields!(build)
            }
            _ => Err(serde::Error("expected map for struct PlanKernel".to_string())),
        }
    }
}

/// Reusable output buffers for [`PlanKernel`] evaluations.
///
/// Create with [`PlanKernel::make_scratch`]; pass to the `*_into`
/// evaluation methods. A scratch is tied to the kernel that last primed it
/// (by content fingerprint) — handing it to a different kernel is safe and
/// simply takes the cold (allocating) path once.
#[derive(Debug, Clone)]
pub struct Scratch {
    node_costs: Vec<NodeCost>,
    per_stmt: StmtCosts,
    total_time: f64,
    fingerprint: u64,
    /// Whether `per_stmt`'s presence set and metrics were installed by a
    /// predicted evaluation of the owning kernel (and are thus current
    /// without clearing — time fields are overwritten via first-touch
    /// assignment each evaluation).
    stmt_adopted: bool,
}

impl Scratch {
    /// Total projected time of the last evaluation.
    pub fn total_time(&self) -> f64 {
        self.total_time
    }

    /// Per-node costs of the last evaluation, indexed by `BetNodeId.0`.
    pub fn node_costs(&self) -> &[NodeCost] {
        &self.node_costs
    }

    /// Per-statement aggregation of the last evaluation.
    pub fn per_stmt(&self) -> &StmtCosts {
        &self.per_stmt
    }

    /// Materialize the last evaluation as an owned [`Projection`]
    /// (bit-identical to what the scalar path returns).
    pub fn projection(&self, kernel: &PlanKernel) -> Projection {
        Projection {
            node_costs: self.node_costs.clone(),
            per_stmt: self.per_stmt.clone(),
            total_time: self.total_time,
            unknown_libs: kernel.unknown_libs.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xflow_bet::{build, Bet};
    use xflow_hw::{bgq, generic, knl, xeon, ClassicRoofline, LibraryRegistry, Roofline};
    use xflow_skeleton::expr::env_from;
    use xflow_skeleton::parse;

    const SRC: &str = r#"
func main() {
  @init: comp { flops: 10, loads: 4 }
  parloop i = 0 .. 200 {
    @kern: comp { flops: 64, loads: 16, stores: 8, bytes: 8 }
    lib exp(4)
    lib mystery(2)
  }
  lib mystery(1)
}
"#;

    fn bet_for(src: &str) -> Bet {
        let prog = parse(src).unwrap();
        build(&prog, &env_from(std::iter::empty::<(&str, f64)>())).unwrap()
    }

    fn assert_projection_bits(fast: &Projection, slow: &Projection) {
        assert_eq!(fast.total_time.to_bits(), slow.total_time.to_bits());
        assert_eq!(fast.node_costs.len(), slow.node_costs.len());
        for (f, s) in fast.node_costs.iter().zip(&slow.node_costs) {
            assert_eq!(f.total.to_bits(), s.total.to_bits());
            assert_eq!(f.enr.to_bits(), s.enr.to_bits());
            assert_eq!(f.per_invocation.tc.to_bits(), s.per_invocation.tc.to_bits());
            assert_eq!(f.per_invocation.tm.to_bits(), s.per_invocation.tm.to_bits());
            assert_eq!(f.per_invocation.overlap.to_bits(), s.per_invocation.overlap.to_bits());
            assert_eq!(f.per_invocation.total.to_bits(), s.per_invocation.total.to_bits());
        }
        assert_eq!(fast.per_stmt.len(), slow.per_stmt.len());
        for (stmt, sc) in slow.per_stmt.iter() {
            let fc = fast.per_stmt[&stmt];
            assert_eq!(fc.total.to_bits(), sc.total.to_bits());
            assert_eq!(fc.tc.to_bits(), sc.tc.to_bits());
            assert_eq!(fc.tm.to_bits(), sc.tm.to_bits());
            assert_eq!(fc.overlap.to_bits(), sc.overlap.to_bits());
            assert_eq!(fc.metrics.flops.to_bits(), sc.metrics.flops.to_bits());
            assert_eq!(fc.metrics.elem_bytes.to_bits(), sc.metrics.elem_bytes.to_bits());
        }
        assert_eq!(fast.unknown_libs, slow.unknown_libs);
    }

    #[test]
    fn kernel_evaluation_is_bit_identical_to_scalar_evaluate() {
        let bet = bet_for(SRC);
        let plan = ProjectionPlan::new(&bet, &LibraryRegistry::with_defaults());
        let kernel = plan.kernel();
        let mut scratch = kernel.make_scratch();
        for machine in [bgq(), xeon(), knl(), generic()] {
            let reference = plan.evaluate(&machine, &Roofline);
            let spec = Roofline.specialize(&machine).unwrap();
            kernel.evaluate_spec_into(&spec, &mut scratch);
            assert_projection_bits(&scratch.projection(&kernel), &reference);
        }
    }

    #[test]
    fn warm_scratch_reuse_changes_no_bits() {
        let bet = bet_for(SRC);
        let plan = ProjectionPlan::new(&bet, &LibraryRegistry::with_defaults());
        let kernel = plan.kernel();
        let mut scratch = kernel.make_scratch();
        let spec_a = Roofline.specialize(&bgq()).unwrap();
        let spec_b = Roofline.specialize(&xeon()).unwrap();
        assert!(!kernel.evaluate_spec_into(&spec_a, &mut scratch), "first evaluation is cold");
        assert!(kernel.evaluate_spec_into(&spec_b, &mut scratch), "second evaluation reuses buffers");
        // the warm result must match a fresh scalar evaluation, including
        // statements/nodes whose costs differed on the previous machine
        assert_projection_bits(&scratch.projection(&kernel), &plan.evaluate(&xeon(), &Roofline));
        assert!(kernel.evaluate_spec_into(&spec_a, &mut scratch));
        assert_projection_bits(&scratch.projection(&kernel), &plan.evaluate(&bgq(), &Roofline));
    }

    #[test]
    fn evaluate_batch_matches_per_machine_evaluate() {
        let bet = bet_for(SRC);
        let plan = ProjectionPlan::new(&bet, &LibraryRegistry::with_defaults());
        let machines = [bgq(), xeon(), knl(), generic()];
        let specs: Vec<MachineSpec> = machines.iter().map(|m| Roofline.specialize(m).unwrap()).collect();
        let batch = plan.kernel().evaluate_batch(&specs);
        assert_eq!(batch.len(), machines.len());
        for (projection, machine) in batch.iter().zip(&machines) {
            assert_projection_bits(projection, &plan.evaluate(machine, &Roofline));
        }
    }

    #[test]
    fn fallback_path_matches_scalar_for_non_specializing_models() {
        let bet = bet_for(SRC);
        let plan = ProjectionPlan::new(&bet, &LibraryRegistry::with_defaults());
        let kernel = plan.kernel();
        let mut scratch = kernel.make_scratch();
        for machine in [bgq(), generic()] {
            assert!(!kernel.evaluate_into(&machine, &ClassicRoofline, &mut scratch));
            assert_projection_bits(&scratch.projection(&kernel), &plan.evaluate(&machine, &ClassicRoofline));
            assert!(kernel.evaluate_into(&machine, &Roofline, &mut scratch), "roofline takes the specialized path");
            assert_projection_bits(&scratch.projection(&kernel), &plan.evaluate(&machine, &Roofline));
        }
    }

    #[test]
    fn observed_kernel_provenance_matches_scalar_observed() {
        use xflow_obs::CollectingRecorder;
        let bet = bet_for(SRC);
        let plan = ProjectionPlan::new(&bet, &LibraryRegistry::with_defaults());
        let kernel = plan.kernel();
        let machine = bgq();
        let rec_scalar = CollectingRecorder::new();
        plan.evaluate_observed(&machine, &Roofline, &rec_scalar);
        let rec_kernel = CollectingRecorder::new();
        let mut scratch = kernel.make_scratch();
        let spec = Roofline.specialize(&machine).unwrap();
        kernel.evaluate_spec_observed_into(&spec, &mut scratch, &rec_kernel);

        let a = rec_scalar.block_provenance();
        let b = rec_kernel.block_provenance();
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b.iter()) {
            assert_eq!(x.node, y.node);
            assert_eq!(x.stmt, y.stmt);
            assert_eq!(x.total.to_bits(), y.total.to_bits());
            assert_eq!(x.tc.to_bits(), y.tc.to_bits());
            assert_eq!(x.tm.to_bits(), y.tm.to_bits());
            assert_eq!(x.threads.to_bits(), y.threads.to_bits());
            assert_eq!(x.loads.to_bits(), y.loads.to_bits());
            assert_eq!(x.bytes.to_bits(), y.bytes.to_bits());
        }
        assert_eq!(rec_kernel.counter_value("plan.blocks"), kernel.len() as u64);
    }

    #[test]
    fn scratch_from_a_different_kernel_takes_the_cold_path() {
        let plan_a = ProjectionPlan::new(&bet_for(SRC), &LibraryRegistry::with_defaults());
        let plan_b = ProjectionPlan::new(
            &bet_for("func main() { loop i = 0 .. 10 { comp { flops: 7, loads: 2 } } }"),
            &LibraryRegistry::with_defaults(),
        );
        let (ka, kb) = (plan_a.kernel(), plan_b.kernel());
        assert_ne!(ka.fingerprint(), kb.fingerprint());
        let mut scratch = ka.make_scratch();
        let spec = Roofline.specialize(&generic()).unwrap();
        ka.evaluate_spec_into(&spec, &mut scratch);
        assert!(!kb.evaluate_spec_into(&spec, &mut scratch), "foreign scratch must re-prime");
        assert_projection_bits(&scratch.projection(&kb), &plan_b.evaluate(&generic(), &Roofline));
    }

    #[test]
    fn columns_match_scalar_evaluate_row_for_row() {
        let bet = bet_for(SRC);
        let plan = ProjectionPlan::new(&bet, &LibraryRegistry::with_defaults());
        let kernel = plan.kernel();
        let machines = [bgq(), xeon(), knl(), generic(), bgq(), xeon(), knl()]; // 7: lane remainder of 3
        let specs: Vec<MachineSpec> = machines.iter().map(MachineSpec::resolve).collect();
        let cols = kernel.evaluate_columns(&specs);
        assert_eq!(cols.points(), machines.len());
        for (i, machine) in machines.iter().enumerate() {
            let scalar = plan.evaluate(machine, &Roofline);
            assert_eq!(cols.total(i).to_bits(), scalar.total_time.to_bits(), "total point {i}");
            // block-level aggregates match the node-cost sums
            let (tc, tm, ov) = cols.block_totals(i);
            let (mut stc, mut stm, mut sov) = (0.0, 0.0, 0.0);
            for nc in &scalar.node_costs {
                stc += nc.per_invocation.tc * nc.enr;
                stm += nc.per_invocation.tm * nc.enr;
                sov += nc.per_invocation.overlap * nc.enr;
            }
            assert_eq!(tc.to_bits(), stc.to_bits(), "tc point {i}");
            assert_eq!(tm.to_bits(), stm.to_bits(), "tm point {i}");
            assert_eq!(ov.to_bits(), sov.to_bits(), "overlap point {i}");
            // per-statement rows mirror the scalar per-statement table
            let row: Vec<_> = cols.stmt_row(i).collect();
            assert_eq!(row.len(), scalar.per_stmt.len(), "row arity point {i}");
            for sc in row {
                let reference = scalar.per_stmt[&sc.stmt];
                assert_eq!(sc.total.to_bits(), reference.total.to_bits(), "{:?} total point {i}", sc.stmt);
                assert_eq!(sc.tc.to_bits(), reference.tc.to_bits(), "{:?} tc point {i}", sc.stmt);
                assert_eq!(sc.tm.to_bits(), reference.tm.to_bits(), "{:?} tm point {i}", sc.stmt);
                assert_eq!(sc.overlap.to_bits(), reference.overlap.to_bits(), "{:?} overlap point {i}", sc.stmt);
            }
            // hydration reproduces the full projection bit-for-bit
            assert_projection_bits(&cols.hydrate(&kernel, i), &scalar);
        }
    }

    #[test]
    fn columns_chunked_fill_matches_one_shot_fill() {
        let bet = bet_for(SRC);
        let plan = ProjectionPlan::new(&bet, &LibraryRegistry::with_defaults());
        let kernel = plan.kernel();
        let machines = [bgq(), xeon(), knl(), generic(), bgq(), xeon(), knl(), generic(), bgq()];
        let specs: Vec<MachineSpec> = machines.iter().map(MachineSpec::resolve).collect();
        let whole = kernel.evaluate_columns(&specs);
        for split in [1, 2, 3, 4, 5, 8] {
            let mut cols = ProjectionColumns::new(&kernel, specs.clone());
            let mut scratch = kernel.make_scratch();
            let mut start = 0;
            while start < specs.len() {
                let end = (start + split).min(specs.len());
                let chunk = kernel.evaluate_columns_chunk(&cols, start..end, &mut scratch);
                cols.install(chunk);
                start = end;
            }
            for i in 0..specs.len() {
                assert_eq!(cols.total(i).to_bits(), whole.total(i).to_bits(), "split {split} point {i}");
                assert_eq!(cols.memory_bound(i), whole.memory_bound(i), "split {split} point {i}");
                assert_eq!(cols.delta(i).to_bits(), whole.delta(i).to_bits(), "split {split} point {i}");
                let a: Vec<_> = cols.stmt_row(i).map(|s| (s.slot, s.total.to_bits())).collect();
                let b: Vec<_> = whole.stmt_row(i).map(|s| (s.slot, s.total.to_bits())).collect();
                assert_eq!(a, b, "split {split} point {i}");
            }
        }
    }

    #[test]
    fn degenerate_machine_takes_the_replay_path_and_stays_exact() {
        let bet = bet_for(SRC);
        let plan = ProjectionPlan::new(&bet, &LibraryRegistry::with_defaults());
        let kernel = plan.kernel();
        // an infinite-frequency machine underflows every cycle time: the
        // participation prediction fails and the lane falls back to the
        // scalar replay — inside a full lane group on purpose
        let mut inf = generic();
        inf.freq_ghz = f64::INFINITY;
        let machines = [bgq(), inf.clone(), xeon(), knl(), inf];
        let specs: Vec<MachineSpec> = machines.iter().map(MachineSpec::resolve).collect();
        let cols = kernel.evaluate_columns(&specs);
        for (i, machine) in machines.iter().enumerate() {
            let scalar = plan.evaluate(machine, &Roofline);
            assert_eq!(cols.total(i).to_bits(), scalar.total_time.to_bits(), "total point {i}");
            let row: Vec<_> = cols.stmt_row(i).collect();
            assert_eq!(row.len(), scalar.per_stmt.len(), "row arity point {i}");
            for sc in row {
                assert_eq!(sc.total.to_bits(), scalar.per_stmt[&sc.stmt].total.to_bits(), "point {i}");
            }
            assert_projection_bits(&cols.hydrate(&kernel, i), &scalar);
        }
    }

    #[test]
    fn columns_top_k_ranks_by_total_with_stable_ties() {
        let bet = bet_for(SRC);
        let plan = ProjectionPlan::new(&bet, &LibraryRegistry::with_defaults());
        let kernel = plan.kernel();
        // duplicates guarantee ties; ties must keep point order
        let machines = [xeon(), bgq(), xeon(), generic()];
        let specs: Vec<MachineSpec> = machines.iter().map(MachineSpec::resolve).collect();
        let cols = kernel.evaluate_columns(&specs);
        let ranked = cols.top_k(machines.len());
        for w in ranked.windows(2) {
            let (a, b) = (w[0], w[1]);
            assert!(
                cols.total(a) < cols.total(b) || (cols.total(a) == cols.total(b) && a < b),
                "ranking violated: {a} before {b}"
            );
        }
        assert_eq!(cols.top_k(2).len(), 2);
        assert_eq!(lane_width(), if cfg!(feature = "simd") { 4 } else { 1 });
    }

    #[test]
    fn kernel_round_trips_through_serde() {
        let plan = ProjectionPlan::new(&bet_for(SRC), &LibraryRegistry::with_defaults());
        let kernel = plan.kernel();
        let json = serde_json::to_string(&kernel).unwrap();
        let back: PlanKernel = serde_json::from_str(&json).unwrap();
        assert_eq!(back.fingerprint(), kernel.fingerprint());
        assert_eq!(back.len(), kernel.len());
        let spec = Roofline.specialize(&xeon()).unwrap();
        let mut scratch = back.make_scratch();
        back.evaluate_spec_into(&spec, &mut scratch);
        assert_projection_bits(&scratch.projection(&back), &plan.evaluate(&xeon(), &Roofline));
    }
}
