//! Mini-application construction from hot paths (paper Sections I and V-C:
//! "Hot paths can also be used for constructing mini-applications").
//!
//! A mini-app is a *closed* skeleton program containing only the hot spots
//! and the control flow that reaches them, with every loop bound, branch
//! probability, and operation count frozen to the concrete values of the
//! originating BET contexts. Projecting the mini-app therefore reproduces
//! the hot-region portion of the full application's projected time on any
//! machine — it is the benchmark a system designer would hand to a
//! simulator team.

use crate::hotpath::{extract, HotPath};
use xflow_bet::{Bet, BetKind, BetNodeId};
use xflow_skeleton::ast as sk;
use xflow_skeleton::expr::Expr;
use xflow_skeleton::StmtId;

/// Build a mini-application skeleton from the hot path of a selection.
///
/// `ranked_stmts` is the selection in rank order (as for
/// [`extract`]). Each mounted function on the path
/// becomes its own function in the mini-app (`<name>_ctx<k>` for distinct
/// invocation contexts), so the call structure stays readable.
pub fn build_miniapp(bet: &Bet, ranked_stmts: &[StmtId]) -> sk::Program {
    let path = extract(bet, ranked_stmts);
    let mut out = sk::Program::new();
    let mut emitter = Emitter { bet, path: &path, out: &mut out, next_fn: 0 };
    let body = emitter.emit_block(emitter.path_root());
    let main = sk::Function { id: sk::FuncId(0), name: "main".into(), params: vec![], body };
    // main must be added after callee functions were generated; add_function
    // rejects duplicates only, order is free.
    emitter.out.add_function(main).expect("fresh program");
    out
}

struct Emitter<'a> {
    bet: &'a Bet,
    path: &'a HotPath,
    out: &'a mut sk::Program,
    next_fn: u32,
}

impl<'a> Emitter<'a> {
    fn path_root(&self) -> BetNodeId {
        self.bet.root()
    }

    fn fresh(&mut self) -> sk::StmtId {
        self.out.fresh_stmt_id()
    }

    /// Emit the path children of a BET node as a statement block.
    fn emit_block(&mut self, id: BetNodeId) -> sk::Block {
        let kids: Vec<BetNodeId> = self.path.children(id).to_vec();
        let mut stmts = Vec::new();
        for kid in kids {
            if let Some(stmt) = self.emit_node(kid) {
                stmts.push(stmt);
            }
        }
        sk::Block { stmts }
    }

    /// Emit one path node (None for nodes that add no statement).
    fn emit_node(&mut self, id: BetNodeId) -> Option<sk::Stmt> {
        let node = self.bet.node(id).clone();
        let label = if self.path.is_hotspot(id) { Some(format!("hot_{}", id.0)) } else { None };
        match &node.kind {
            BetKind::Comp { ops } => {
                let sid = self.fresh();
                Some(sk::Stmt {
                    id: sid,
                    label,
                    kind: sk::StmtKind::Comp(sk::OpStats {
                        flops: Expr::Num(ops.flops),
                        iops: Expr::Num(ops.iops),
                        loads: Expr::Num(ops.loads),
                        stores: Expr::Num(ops.stores),
                        divs: Expr::Num(ops.divs),
                        dtype_bytes: Expr::Num(ops.elem_bytes),
                    }),
                })
            }
            BetKind::Lib { func, calls, work } => {
                let sid = self.fresh();
                Some(sk::Stmt {
                    id: sid,
                    label,
                    kind: sk::StmtKind::LibCall {
                        func: func.clone(),
                        calls: Expr::Num(*calls),
                        work: Expr::Num(*work),
                    },
                })
            }
            BetKind::Loop => {
                let body = self.emit_block(id);
                let sid = self.fresh();
                let mut stmt = sk::Stmt {
                    id: sid,
                    label,
                    kind: sk::StmtKind::Loop {
                        var: format!("i{}", id.0),
                        lo: Expr::Num(0.0),
                        hi: Expr::Num(node.iters.round().max(0.0)),
                        step: Expr::Num(1.0),
                        parallel: node.parallel,
                        body,
                    },
                };
                // a loop reached with probability < 1 keeps that gate
                if node.prob < 0.999 {
                    stmt = self.wrap_prob(stmt, node.prob);
                }
                Some(stmt)
            }
            BetKind::Arm { .. } => {
                let body = self.emit_block(id);
                if body.stmts.is_empty() {
                    return None;
                }
                let sid = self.fresh();
                Some(sk::Stmt {
                    id: sid,
                    label,
                    kind: sk::StmtKind::Branch {
                        arms: vec![sk::BranchArm { cond: sk::Cond::Prob(Expr::Num(node.prob.min(1.0))), body }],
                        else_body: None,
                    },
                })
            }
            BetKind::Call { func } => {
                let body = self.emit_block(id);
                if body.stmts.is_empty() {
                    return None;
                }
                // distinct invocation contexts become distinct functions
                let name = format!("{}_ctx{}", func, self.next_fn);
                self.next_fn += 1;
                self.out
                    .add_function(sk::Function { id: sk::FuncId(0), name: name.clone(), params: vec![], body })
                    .expect("unique generated name");
                let sid = self.fresh();
                let mut stmt = sk::Stmt { id: sid, label, kind: sk::StmtKind::Call { func: name, args: vec![] } };
                if node.prob < 0.999 {
                    stmt = self.wrap_prob(stmt, node.prob);
                }
                Some(stmt)
            }
            BetKind::Root | BetKind::Return | BetKind::Break | BetKind::Continue => None,
        }
    }

    /// Gate a statement behind `if prob(p) { … }`.
    fn wrap_prob(&mut self, stmt: sk::Stmt, p: f64) -> sk::Stmt {
        let sid = self.fresh();
        sk::Stmt {
            id: sid,
            label: None,
            kind: sk::StmtKind::Branch {
                arms: vec![sk::BranchArm {
                    cond: sk::Cond::Prob(Expr::Num(p.min(1.0))),
                    body: sk::Block { stmts: vec![stmt] },
                }],
                else_body: None,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xflow_bet::build;
    use xflow_hw::{bgq, LibraryRegistry, Roofline};
    use xflow_skeleton::expr::env_from;
    use xflow_skeleton::parse;

    const SRC: &str = r#"
func main() {
  @setup: comp { flops: 5, loads: 50 }
  loop t = 0 .. 100 {
    call update(t)
    if prob(0.25) {
      @fix: comp { flops: 50, loads: 10 }
    }
    @cold: comp { flops: 1 }
  }
}
func update(t) {
  loop i = 0 .. 1000 { @kernel: comp { flops: 8, loads: 4, stores: 2 } lib exp(1) }
}
"#;

    fn setup() -> (xflow_skeleton::Program, Bet) {
        let prog = parse(SRC).unwrap();
        let bet = build(&prog, &env_from([("x", 0.0)])).unwrap();
        (prog, bet)
    }

    #[test]
    fn miniapp_is_a_valid_skeleton() {
        let (prog, bet) = setup();
        let kernel = prog.stmt_by_label("kernel").unwrap();
        let fix = prog.stmt_by_label("fix").unwrap();
        let mini = build_miniapp(&bet, &[kernel, fix]);
        assert!(mini.main().is_some());
        let errs = xflow_skeleton::validate(&mini);
        assert!(errs.is_empty(), "{errs:?}\n{}", xflow_skeleton::print(&mini));
        // round-trips through text
        let text = xflow_skeleton::print(&mini);
        assert!(xflow_skeleton::parse(&text).is_ok(), "{text}");
    }

    #[test]
    fn miniapp_reproduces_hot_spot_time() {
        let (prog, bet) = setup();
        let kernel = prog.stmt_by_label("kernel").unwrap();
        let machine = bgq();
        let libs = LibraryRegistry::with_defaults();

        // time of the kernel in the full application
        let full = crate::analysis::project(&bet, &machine, &Roofline, &libs);
        let kernel_time = full.per_stmt[&kernel].total;

        // projected total of the mini-app containing only that spot
        let mini = build_miniapp(&bet, &[kernel]);
        let mini_bet = build(&mini, &env_from([("x", 0.0)])).unwrap();
        let mini_proj = crate::analysis::project(&mini_bet, &machine, &Roofline, &libs);

        let rel = (mini_proj.total_time - kernel_time).abs() / kernel_time;
        assert!(rel < 0.01, "mini {:.3e} vs kernel {:.3e}", mini_proj.total_time, kernel_time);
    }

    #[test]
    fn miniapp_excludes_cold_code() {
        let (prog, bet) = setup();
        let kernel = prog.stmt_by_label("kernel").unwrap();
        let mini = build_miniapp(&bet, &[kernel]);
        let text = xflow_skeleton::print(&mini);
        // the cold comp (1 flop) and the un-selected fix block are gone
        assert!(!text.contains("flops: 1 }"), "{text}");
        assert!(!text.contains("flops: 50"), "{text}");
        // the kernel and its loop nest survive with concrete bounds
        assert!(text.contains("flops: 8"), "{text}");
        assert!(text.contains(".. 100"), "{text}");
        assert!(text.contains(".. 1000"), "{text}");
    }

    #[test]
    fn probabilistic_gate_preserved() {
        let (prog, bet) = setup();
        let fix = prog.stmt_by_label("fix").unwrap();
        let mini = build_miniapp(&bet, &[fix]);
        let text = xflow_skeleton::print(&mini);
        assert!(text.contains("if prob(0.25)"), "{text}");
    }

    #[test]
    fn mounted_functions_become_named_contexts() {
        let (prog, bet) = setup();
        let kernel = prog.stmt_by_label("kernel").unwrap();
        let mini = build_miniapp(&bet, &[kernel]);
        assert!(mini.function("update_ctx0").is_some());
        let text = xflow_skeleton::print(&mini);
        assert!(text.contains("call update_ctx0()"), "{text}");
    }

    #[test]
    fn empty_selection_gives_empty_main() {
        let (_, bet) = setup();
        let mini = build_miniapp(&bet, &[]);
        assert!(mini.main().unwrap().body.stmts.is_empty());
    }

    #[test]
    fn hot_spots_are_labeled() {
        let (prog, bet) = setup();
        let kernel = prog.stmt_by_label("kernel").unwrap();
        let mini = build_miniapp(&bet, &[kernel]);
        let text = xflow_skeleton::print(&mini);
        assert!(text.contains("@hot_"), "{text}");
    }
}
