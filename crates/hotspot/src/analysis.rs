//! Per-block performance projection over a BET (paper Section V-A).
//!
//! Projects the per-invocation time of every cost-carrying node (`comp`
//! and `lib`) with the hardware model, weights it by the node's expected
//! number of repetitions (ENR), and aggregates per skeleton statement —
//! the granularity at which hot spots are selected and compared against
//! measured profiles.
//!
//! Since this PR the projection runs in two phases (see [`crate::plan`]):
//! [`project`] builds a machine-independent [`crate::ProjectionPlan`] and
//! evaluates it, so repeated projections of the same application — the
//! co-design sweep case — pay the tree walk only once.
//! [`project_single_pass`] keeps the original fused walk as the reference
//! implementation; an equivalence test asserts both produce bit-identical
//! results.

use std::collections::HashSet;
use std::ops::Index;
use xflow_bet::{Bet, BetKind};
use xflow_hw::{BlockMetrics, BlockTime, LibraryRegistry, MachineModel, PerfModel};
use xflow_skeleton::StmtId;

use crate::plan::ProjectionPlan;

/// Projected cost of one BET node.
#[derive(Debug, Clone, Copy)]
pub struct NodeCost {
    /// Per-invocation projected time breakdown.
    pub per_invocation: BlockTime,
    /// Expected number of repetitions.
    pub enr: f64,
    /// Total projected time (`per_invocation.total × enr`).
    pub total: f64,
}

/// Aggregated projected cost of one skeleton statement across every BET
/// context it appears in.
#[derive(Debug, Clone, Copy, Default)]
pub struct StmtCost {
    /// Total projected seconds.
    pub total: f64,
    /// ENR-weighted computation seconds.
    pub tc: f64,
    /// ENR-weighted memory seconds.
    pub tm: f64,
    /// ENR-weighted overlapped seconds.
    pub overlap: f64,
    /// ENR-weighted operation totals (for issue-rate style reporting).
    pub metrics: BlockMetrics,
}

/// Dense per-statement cost table, indexed by [`StmtId`].
///
/// Skeleton statement IDs are a compact arena (`StmtId(0..n)`), so the
/// per-statement aggregation of a projection is stored as a flat `Vec`
/// instead of a `HashMap` — O(1) indexed access with no hashing in the
/// per-machine evaluation loop, and iteration is deterministic (ascending
/// statement ID) without a sort.
#[derive(Debug, Clone, Default)]
pub struct StmtCosts {
    costs: Vec<StmtCost>,
    present: Vec<bool>,
    /// IDs of present slots in first-touch order: makes [`StmtCosts::clear`]
    /// and the batched kernel's metrics resolution O(recorded) with no
    /// O(capacity) scan (the scan dominated warm-scratch evaluations).
    touched: Vec<u32>,
}

impl StmtCosts {
    /// Empty table with capacity for statement IDs `0..n`.
    pub fn with_stmt_capacity(n: usize) -> Self {
        Self { costs: vec![StmtCost::default(); n], present: vec![false; n], touched: Vec::with_capacity(n) }
    }

    /// Cost of a statement, if it carried any projected time.
    pub fn get(&self, stmt: &StmtId) -> Option<&StmtCost> {
        let i = stmt.0 as usize;
        if *self.present.get(i)? {
            Some(&self.costs[i])
        } else {
            None
        }
    }

    /// Whether the statement carried any projected time.
    pub fn contains_key(&self, stmt: &StmtId) -> bool {
        self.get(stmt).is_some()
    }

    /// Number of statements with recorded cost.
    pub fn len(&self) -> usize {
        self.touched.len()
    }

    /// True when no statement carried projected time.
    pub fn is_empty(&self) -> bool {
        self.touched.is_empty()
    }

    /// Mutable cost slot for a statement, created zeroed on first access.
    #[inline]
    pub fn entry_mut(&mut self, stmt: StmtId) -> &mut StmtCost {
        let i = stmt.0 as usize;
        if i >= self.costs.len() {
            self.costs.resize(i + 1, StmtCost::default());
            self.present.resize(i + 1, false);
        }
        if !self.present[i] {
            self.present[i] = true;
            self.touched.push(i as u32);
        }
        &mut self.costs[i]
    }

    /// Clear all recorded costs, keeping the allocated capacity (the
    /// scratch-reuse path of the batched kernel). Only slots that were
    /// present are rezeroed, so clearing is O(recorded), not O(capacity).
    pub fn clear(&mut self) {
        for &i in &self.touched {
            self.costs[i as usize] = StmtCost::default();
            self.present[i as usize] = false;
        }
        self.touched.clear();
    }

    /// Iterate recorded costs in ascending statement-ID order.
    pub fn iter(&self) -> impl Iterator<Item = (StmtId, &StmtCost)> + '_ {
        self.costs.iter().enumerate().filter(|(i, _)| self.present[*i]).map(|(i, c)| (StmtId(i as u32), c))
    }

    /// Overwrite the metrics of every recorded statement from a dense
    /// table indexed by statement ID (the batched kernel's post-loop
    /// resolution of precomputed metrics). O(recorded).
    pub fn set_metrics_from(&mut self, table: &[BlockMetrics]) {
        for &i in &self.touched {
            self.costs[i as usize].metrics = table[i as usize];
        }
    }

    /// Raw slot access with **no** presence bookkeeping: the batched
    /// kernel's hot loop writes time fields through this and installs the
    /// precomputed presence set afterwards via [`StmtCosts::adopt`].
    /// Callers must guarantee `i` is within the primed capacity and ends
    /// up either adopted or wiped.
    #[inline]
    pub(crate) fn slot_mut(&mut self, i: u32) -> &mut StmtCost {
        &mut self.costs[i as usize]
    }

    /// Install a precomputed presence set (statement IDs in first-touch
    /// order), replacing any previous bookkeeping. Slots must already hold
    /// their final values.
    pub(crate) fn adopt(&mut self, ids: &[u32]) {
        for &i in ids {
            self.present[i as usize] = true;
        }
        self.touched.clear();
        self.touched.extend_from_slice(ids);
    }

    /// Full O(capacity) reset of every slot and all bookkeeping, for
    /// recovery paths where the touched list may not cover all writes.
    pub(crate) fn wipe(&mut self) {
        for c in &mut self.costs {
            *c = StmtCost::default();
        }
        for p in &mut self.present {
            *p = false;
        }
        self.touched.clear();
    }
}

impl Index<&StmtId> for StmtCosts {
    type Output = StmtCost;
    fn index(&self, stmt: &StmtId) -> &StmtCost {
        self.get(stmt).unwrap_or_else(|| panic!("no cost recorded for {stmt:?}"))
    }
}

impl Index<StmtId> for StmtCosts {
    type Output = StmtCost;
    fn index(&self, stmt: StmtId) -> &StmtCost {
        &self[&stmt]
    }
}

impl<'a> IntoIterator for &'a StmtCosts {
    type Item = (StmtId, &'a StmtCost);
    type IntoIter = Box<dyn Iterator<Item = (StmtId, &'a StmtCost)> + 'a>;
    fn into_iter(self) -> Self::IntoIter {
        Box::new(self.iter())
    }
}

/// Result of projecting a BET on a machine.
#[derive(Debug, Clone)]
pub struct Projection {
    /// Per-node costs, indexed by `BetNodeId.0`.
    pub node_costs: Vec<NodeCost>,
    /// Aggregated per skeleton statement.
    pub per_stmt: StmtCosts,
    /// Total projected application time in seconds.
    pub total_time: f64,
    /// Library functions that had no registered mix (fallback used).
    pub unknown_libs: Vec<String>,
}

/// Project every node of a BET on a target machine.
///
/// Two-phase: builds a machine-independent [`ProjectionPlan`] and evaluates
/// it on `machine`. Callers projecting the same BET on many machines should
/// build the plan once and call [`ProjectionPlan::evaluate`] per machine.
pub fn project(bet: &Bet, machine: &MachineModel, model: &dyn PerfModel, libs: &LibraryRegistry) -> Projection {
    ProjectionPlan::new(bet, libs).evaluate(machine, model)
}

/// Original fused single-pass projection, kept as the reference
/// implementation the two-phase engine is equivalence-tested against.
pub fn project_single_pass(
    bet: &Bet,
    machine: &MachineModel,
    model: &dyn PerfModel,
    libs: &LibraryRegistry,
) -> Projection {
    let enr = bet.enr();
    let avail_par = bet.available_parallelism();
    let mut node_costs = Vec::with_capacity(bet.len());
    let mut per_stmt = StmtCosts::default();
    let mut total_time = 0.0;
    let mut unknown_libs = Vec::new();
    let mut unknown_seen: HashSet<String> = HashSet::new();

    for node in bet.iter() {
        let e = enr[node.id.0 as usize];
        // effective concurrency of this block: the machine cannot use more
        // threads than it has cores, nor more than the enclosing parallel
        // loops provide iterations
        let threads = avail_par[node.id.0 as usize].min(machine.cores as f64).max(1.0);
        let (time, metrics) = match &node.kind {
            BetKind::Comp { ops } => {
                let m = BlockMetrics {
                    flops: ops.flops,
                    iops: ops.iops,
                    loads: ops.loads,
                    stores: ops.stores,
                    divs: ops.divs,
                    elem_bytes: ops.elem_bytes,
                };
                let t = if threads > 1.0 {
                    model.project_parallel(machine, &m, threads)
                } else {
                    model.project(machine, &m)
                };
                (t, m)
            }
            BetKind::Lib { func, calls, work } => match libs.project(func, *calls, *work, machine, model) {
                Ok(t) => {
                    let m = libs.get(func).map(|mix| mix.expand(*calls, *work)).unwrap_or_default();
                    (t, m)
                }
                Err(err) => {
                    if unknown_seen.insert(err.name.clone()) {
                        unknown_libs.push(err.name.clone());
                    }
                    (err.fallback_time, BlockMetrics::default())
                }
            },
            _ => (BlockTime::default(), BlockMetrics::default()),
        };
        let total = time.total * e;
        total_time += total;
        node_costs.push(NodeCost { per_invocation: time, enr: e, total });

        if let Some(stmt) = node.stmt {
            if time.total > 0.0 {
                let s = per_stmt.entry_mut(stmt);
                s.total += total;
                s.tc += time.tc * e;
                s.tm += time.tm * e;
                s.overlap += time.overlap * e;
                s.metrics.add_scaled(&metrics, e);
            }
        }
    }

    Projection { node_costs, per_stmt, total_time, unknown_libs }
}

impl Projection {
    /// Statements ranked by descending projected time.
    pub fn ranked_stmts(&self) -> Vec<(StmtId, StmtCost)> {
        let mut v: Vec<(StmtId, StmtCost)> = self.per_stmt.iter().map(|(k, v)| (k, *v)).collect();
        v.sort_by(|a, b| b.1.total.partial_cmp(&a.1.total).unwrap_or(std::cmp::Ordering::Equal).then(a.0.cmp(&b.0)));
        v
    }

    /// Fraction of total projected time spent in a statement.
    pub fn coverage(&self, stmt: StmtId) -> f64 {
        if self.total_time == 0.0 {
            return 0.0;
        }
        self.per_stmt.get(&stmt).map(|s| s.total / self.total_time).unwrap_or(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xflow_bet::build;
    use xflow_hw::{generic, Roofline};
    use xflow_skeleton::expr::env_from;
    use xflow_skeleton::parse;

    fn project_src(src: &str, inputs: &[(&str, f64)]) -> (Projection, xflow_skeleton::Program) {
        let prog = parse(src).unwrap();
        let bet = build(&prog, &env_from(inputs.iter().copied())).unwrap();
        let p = project(&bet, &generic(), &Roofline, &LibraryRegistry::with_defaults());
        (p, prog)
    }

    #[test]
    fn loop_weight_scales_stmt_cost() {
        let src = r#"
func main() {
  @cheap: comp { flops: 100 }
  loop i = 0 .. 1000 {
    @hot: comp { flops: 100 }
  }
}
"#;
        let (p, prog) = project_src(src, &[]);
        let hot = prog.stmt_by_label("hot").unwrap();
        let cheap = prog.stmt_by_label("cheap").unwrap();
        let ratio = p.per_stmt[&hot].total / p.per_stmt[&cheap].total;
        assert!((ratio - 1000.0).abs() < 1.0, "{ratio}");
    }

    #[test]
    fn total_time_is_sum_of_node_totals() {
        let src = "func main() { loop i = 0 .. 50 { comp { flops: 10, loads: 5 } lib exp(1) } }";
        let (p, _) = project_src(src, &[]);
        let sum: f64 = p.node_costs.iter().map(|c| c.total).sum();
        assert!((p.total_time - sum).abs() < 1e-15);
        assert!(p.total_time > 0.0);
    }

    #[test]
    fn ranked_stmts_descending() {
        let src = r#"
func main() {
  @a: comp { flops: 1 }
  @b: comp { flops: 1000 }
  @c: comp { flops: 10 }
}
"#;
        let (p, prog) = project_src(src, &[]);
        let ranked = p.ranked_stmts();
        assert_eq!(ranked[0].0, prog.stmt_by_label("b").unwrap());
        assert_eq!(ranked[1].0, prog.stmt_by_label("c").unwrap());
        assert_eq!(ranked[2].0, prog.stmt_by_label("a").unwrap());
        assert!(ranked[0].1.total >= ranked[1].1.total);
    }

    #[test]
    fn unknown_library_reported_but_costed() {
        let (p, _) = project_src("func main() { lib mystery(100) }", &[]);
        assert_eq!(p.unknown_libs, vec!["mystery".to_string()]);
        assert!(p.total_time > 0.0);
    }

    #[test]
    fn branch_probability_scales_cost() {
        let src = r#"
func main() {
  loop i = 0 .. 1000 {
    if prob(0.1) { @rare: comp { flops: 100 } }
    else { @common: comp { flops: 100 } }
  }
}
"#;
        let (p, prog) = project_src(src, &[]);
        let rare = p.per_stmt[&prog.stmt_by_label("rare").unwrap()].total;
        let common = p.per_stmt[&prog.stmt_by_label("common").unwrap()].total;
        assert!((common / rare - 9.0).abs() < 0.01, "{}", common / rare);
    }

    #[test]
    fn coverage_sums_to_one_over_all_stmts() {
        let src = "func main() { @x: comp { flops: 5 } loop i = 0 .. 10 { @y: comp { flops: 2, loads: 1 } } }";
        let (p, prog) = project_src(src, &[]);
        let cx = p.coverage(prog.stmt_by_label("x").unwrap());
        let cy = p.coverage(prog.stmt_by_label("y").unwrap());
        assert!((cx + cy - 1.0).abs() < 1e-9);
    }

    #[test]
    fn multiple_contexts_accumulate_into_one_stmt() {
        let src = r#"
func main() {
  call f(10)
  call f(90)
}
func f(n) {
  loop i = 0 .. n { @kern: comp { flops: 1 } }
}
"#;
        let (p, prog) = project_src(src, &[]);
        let kern = prog.stmt_by_label("kern").unwrap();
        // both mounts contribute: cost proportional to 100 iterations total
        let single = {
            let (p1, prog1) = project_src(
                "func main() { call f(100) } func f(n) { loop i = 0 .. n { @kern: comp { flops: 1 } } }",
                &[],
            );
            p1.per_stmt[&prog1.stmt_by_label("kern").unwrap()].total
        };
        let combined = p.per_stmt[&kern].total;
        assert!((combined / single - 1.0).abs() < 1e-9, "{combined} vs {single}");
    }
}
