//! Machine-independent projection plan (phase 1 of the two-phase engine).
//!
//! Projecting a BET on a machine splits cleanly into work that depends only
//! on the application — walking the tree, computing ENR and available
//! parallelism, expanding library instruction mixes into block metrics —
//! and work that depends on the machine: the roofline evaluation itself.
//! A design-space sweep projects one application on hundreds of candidate
//! machines, so the old fused walk redid all of the machine-independent
//! work per point.
//!
//! [`ProjectionPlan::new`] runs the walk once and compiles the BET into a
//! dense `Vec` of [`PlanBlock`]s (one per cost-carrying node, in node
//! order) plus the full per-node ENR vector. [`ProjectionPlan::evaluate`]
//! is then a tight loop over the blocks that only calls the performance
//! model — no tree traversal, no hashing, no string work.
//!
//! `evaluate` is bit-identical to the legacy single pass
//! ([`crate::analysis::project_single_pass`]): structural nodes contribute
//! exactly `+0.0` to the total (f64 identity for the non-negative totals
//! produced here), so skipping them changes no bits, and blocks are
//! evaluated in the same node order so every floating-point accumulation
//! happens in the same sequence.

use serde::{Deserialize, Serialize};
use xflow_bet::{Bet, BetKind};
use xflow_hw::{BlockMetrics, BlockSummary, LibraryRegistry, MachineModel, PerfModel};
use xflow_obs::{AttrValue, BlockProvenance, NoopRecorder, Recorder, SpanId};
use xflow_skeleton::StmtId;

use crate::analysis::{NodeCost, Projection, StmtCosts};

/// One cost-carrying BET node, pre-digested for per-machine evaluation.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct PlanBlock {
    /// Index of the originating node in the BET arena (`BetNodeId.0`).
    pub node: u32,
    /// Skeleton statement the cost aggregates into, if any.
    pub stmt: Option<StmtId>,
    /// Machine-independent inputs to the roofline evaluation.
    pub summary: BlockSummary,
    /// Metrics charged to the statement aggregate. Equal to
    /// `summary.metrics` except for unknown library calls, where timing
    /// uses the nominal fallback mix but no metrics are attributed.
    pub stmt_metrics: BlockMetrics,
}

/// Machine-independent compilation of a BET (phase 1).
///
/// Build once per application with [`ProjectionPlan::new`], then call
/// [`ProjectionPlan::evaluate`] for every candidate machine.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ProjectionPlan {
    /// ENR of every BET node, indexed by `BetNodeId.0`.
    enr: Vec<f64>,
    /// Cost-carrying nodes in BET node order.
    blocks: Vec<PlanBlock>,
    /// Library functions with no registered mix, in first-seen order.
    unknown_libs: Vec<String>,
    /// Upper bound on statement IDs, for sizing the dense per-stmt table.
    stmt_bound: usize,
}

impl ProjectionPlan {
    /// Compile a BET against a library registry.
    ///
    /// All tree traversal, ENR/parallelism propagation, library-mix
    /// expansion, and unknown-library deduplication happens here, once.
    pub fn new(bet: &Bet, libs: &LibraryRegistry) -> Self {
        let enr = bet.enr().to_vec();
        let avail_par = bet.available_parallelism();
        let mut blocks = Vec::new();
        let mut unknown_libs = Vec::new();
        let mut unknown_seen: std::collections::HashSet<String> = std::collections::HashSet::new();
        let mut stmt_bound = 0usize;

        for node in bet.iter() {
            let avail = avail_par[node.id.0 as usize];
            if let Some(stmt) = node.stmt {
                stmt_bound = stmt_bound.max(stmt.0 as usize + 1);
            }
            let block = match &node.kind {
                BetKind::Comp { ops } => {
                    let m = BlockMetrics {
                        flops: ops.flops,
                        iops: ops.iops,
                        loads: ops.loads,
                        stores: ops.stores,
                        divs: ops.divs,
                        elem_bytes: ops.elem_bytes,
                    };
                    Some(PlanBlock {
                        node: node.id.0,
                        stmt: node.stmt,
                        summary: BlockSummary {
                            metrics: m,
                            enr: enr[node.id.0 as usize],
                            avail_par: avail,
                            parallelizable: true,
                        },
                        stmt_metrics: m,
                    })
                }
                BetKind::Lib { func, calls, work } => {
                    let (metrics, stmt_metrics) = match libs.get(func) {
                        Some(mix) => {
                            let m = mix.expand(*calls, *work);
                            (m, m)
                        }
                        None => {
                            if unknown_seen.insert(func.clone()) {
                                unknown_libs.push(func.clone());
                            }
                            // Timing charges the nominal fallback mix, but no
                            // metrics are attributed to the statement — same
                            // as the legacy walk.
                            (LibraryRegistry::fallback_mix().expand(*calls, *work), BlockMetrics::default())
                        }
                    };
                    Some(PlanBlock {
                        node: node.id.0,
                        stmt: node.stmt,
                        summary: BlockSummary {
                            metrics,
                            enr: enr[node.id.0 as usize],
                            avail_par: avail,
                            // Library internals are opaque: projected serially,
                            // as in the legacy walk (lib nodes are leaves, so
                            // their available parallelism is 1 anyway unless
                            // nested under a parallel loop — which the legacy
                            // path also ignored for Lib via LibraryRegistry::project).
                            parallelizable: false,
                        },
                        stmt_metrics,
                    })
                }
                _ => None,
            };
            if let Some(b) = block {
                blocks.push(b);
            }
        }

        Self { enr, blocks, unknown_libs, stmt_bound }
    }

    /// Cost-carrying blocks in BET node order.
    pub fn blocks(&self) -> &[PlanBlock] {
        &self.blocks
    }

    /// ENR of every BET node, indexed by `BetNodeId.0`.
    pub fn enr(&self) -> &[f64] {
        &self.enr
    }

    /// Library functions with no registered mix, in first-seen order.
    pub fn unknown_libs(&self) -> &[String] {
        &self.unknown_libs
    }

    /// Upper bound on statement ids (sizes dense per-statement tables).
    pub fn stmt_bound(&self) -> usize {
        self.stmt_bound
    }

    /// Evaluate the plan on one machine (phase 2).
    ///
    /// A tight loop over the pre-compiled blocks: one roofline projection
    /// per block, then scalar accumulation. Produces a [`Projection`]
    /// bit-identical to the legacy single pass.
    pub fn evaluate(&self, machine: &MachineModel, model: &dyn PerfModel) -> Projection {
        self.evaluate_observed(machine, model, &NoopRecorder)
    }

    /// [`ProjectionPlan::evaluate`] under a telemetry recorder.
    ///
    /// Identical arithmetic — `evaluate` itself delegates here with the
    /// [`NoopRecorder`], so there is exactly one evaluation loop in the
    /// workspace. When the recorder is enabled, the loop runs inside a
    /// `plan.evaluate` span (machine name, block count; projected total as
    /// an exit attribute) and emits one [`BlockProvenance`] per block via
    /// [`Recorder::block_cost`], in plan (BET node) order, carrying the
    /// exact addends of the accumulation: summing `total` over the stream
    /// reproduces `Projection::total_time` to the bit.
    pub fn evaluate_observed<R: Recorder + ?Sized>(
        &self,
        machine: &MachineModel,
        model: &dyn PerfModel,
        rec: &R,
    ) -> Projection {
        let enabled = rec.enabled();
        let span = if enabled {
            rec.span_start(
                "plan.evaluate",
                &[("machine", AttrValue::Str(&machine.name)), ("blocks", AttrValue::U64(self.blocks.len() as u64))],
            )
        } else {
            SpanId::NONE
        };

        let mut node_costs =
            vec![NodeCost { per_invocation: Default::default(), enr: 0.0, total: 0.0 }; self.enr.len()];
        for (i, nc) in node_costs.iter_mut().enumerate() {
            nc.enr = self.enr[i];
        }
        let mut per_stmt = StmtCosts::with_stmt_capacity(self.stmt_bound);
        let mut total_time = 0.0;
        // Machine pre-resolution: the telemetry branch reports each block's
        // effective thread count, which only needs the core count — hoist
        // the integer→float conversion out of the per-block work.
        let cores = machine.cores as f64;

        for block in &self.blocks {
            let e = block.summary.enr;
            let time = model.project_block(machine, &block.summary);
            let total = time.total * e;
            total_time += total;
            node_costs[block.node as usize] = NodeCost { per_invocation: time, enr: e, total };

            if let Some(stmt) = block.stmt {
                if time.total > 0.0 {
                    let s = per_stmt.entry_mut(stmt);
                    s.total += total;
                    s.tc += time.tc * e;
                    s.tm += time.tm * e;
                    s.overlap += time.overlap * e;
                    s.metrics.add_scaled(&block.stmt_metrics, e);
                }
            }

            if enabled {
                let floor = time.tc.min(time.tm);
                let delta = if floor > 0.0 { time.overlap / floor } else { 0.0 };
                rec.block_cost(&BlockProvenance {
                    node: block.node,
                    stmt: block.stmt.map(|s| s.0),
                    enr: e,
                    tc: time.tc,
                    tm: time.tm,
                    overlap: time.overlap,
                    delta,
                    total,
                    threads: block.summary.threads_with_cores(cores),
                    flops: block.summary.metrics.flops,
                    iops: block.summary.metrics.iops,
                    loads: block.summary.metrics.loads,
                    stores: block.summary.metrics.stores,
                    bytes: block.summary.metrics.bytes(),
                });
            }
        }

        if enabled {
            rec.add("plan.blocks", self.blocks.len() as u64);
            rec.span_end(span, &[("total_time", AttrValue::F64(total_time))]);
        }

        Projection { node_costs, per_stmt, total_time, unknown_libs: self.unknown_libs.clone() }
    }

    /// Compile the structure-of-arrays evaluation kernel for this plan
    /// (see [`crate::PlanKernel`]). Build once per application; the kernel
    /// plus a reusable [`crate::Scratch`] is the fast path for evaluating
    /// many machines.
    pub fn kernel(&self) -> crate::PlanKernel {
        crate::PlanKernel::new(self)
    }

    /// Evaluate the plan on a batch of machines, sharing one kernel and
    /// one scratch across the batch. Machines the model can
    /// [`PerfModel::specialize`] for go through the SoA kernel; the rest
    /// fall back to the scalar [`ProjectionPlan::evaluate`]. Every
    /// projection is bit-identical to evaluating that machine alone.
    pub fn evaluate_batch(&self, machines: &[MachineModel], model: &dyn PerfModel) -> Vec<Projection> {
        let kernel = self.kernel();
        let mut scratch = kernel.make_scratch();
        machines
            .iter()
            .map(|machine| match model.specialize(machine) {
                Some(spec) => {
                    kernel.evaluate_spec_into(&spec, &mut scratch);
                    scratch.projection(&kernel)
                }
                None => self.evaluate(machine, model),
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::project_single_pass;
    use xflow_bet::build;
    use xflow_hw::{bgq, generic, xeon, Roofline};
    use xflow_skeleton::expr::env_from;
    use xflow_skeleton::parse;

    fn bet_for(src: &str) -> Bet {
        let prog = parse(src).unwrap();
        build(&prog, &env_from(std::iter::empty::<(&str, f64)>())).unwrap()
    }

    #[test]
    fn plan_skips_structural_nodes() {
        let bet = bet_for("func main() { loop i = 0 .. 10 { comp { flops: 1 } } }");
        let plan = ProjectionPlan::new(&bet, &LibraryRegistry::with_defaults());
        // root, loop are structural; only the comp carries cost
        assert_eq!(plan.blocks().len(), 1);
        assert_eq!(plan.enr().len(), bet.len());
    }

    #[test]
    fn evaluate_matches_single_pass_bitwise() {
        let src = r#"
func main() {
  @init: comp { flops: 10, loads: 4 }
  parloop i = 0 .. 200 {
    @kern: comp { flops: 64, loads: 16, stores: 8, bytes: 8 }
    lib exp(4)
    lib mystery(2)
  }
  lib mystery(1)
}
"#;
        let bet = bet_for(src);
        let libs = LibraryRegistry::with_defaults();
        let plan = ProjectionPlan::new(&bet, &libs);
        for machine in [generic(), bgq(), xeon()] {
            let fast = plan.evaluate(&machine, &Roofline);
            let slow = project_single_pass(&bet, &machine, &Roofline, &libs);
            assert_eq!(fast.total_time.to_bits(), slow.total_time.to_bits());
            assert_eq!(fast.node_costs.len(), slow.node_costs.len());
            for (f, s) in fast.node_costs.iter().zip(&slow.node_costs) {
                assert_eq!(f.total.to_bits(), s.total.to_bits());
                assert_eq!(f.enr.to_bits(), s.enr.to_bits());
                assert_eq!(f.per_invocation.total.to_bits(), s.per_invocation.total.to_bits());
            }
            assert_eq!(fast.per_stmt.len(), slow.per_stmt.len());
            for (stmt, sc) in slow.per_stmt.iter() {
                let fc = fast.per_stmt[&stmt];
                assert_eq!(fc.total.to_bits(), sc.total.to_bits());
                assert_eq!(fc.metrics.flops.to_bits(), sc.metrics.flops.to_bits());
            }
            assert_eq!(fast.unknown_libs, slow.unknown_libs);
        }
    }

    #[test]
    fn unknown_libs_deduped_in_first_seen_order() {
        let bet = bet_for("func main() { lib zeta(1) lib alpha(1) lib zeta(1) }");
        let plan = ProjectionPlan::new(&bet, &LibraryRegistry::new());
        assert_eq!(plan.unknown_libs(), ["zeta".to_string(), "alpha".to_string()]);
    }

    #[test]
    fn observed_evaluate_is_bit_identical_and_provenance_reconciles() {
        use xflow_obs::CollectingRecorder;
        let src = r#"
func main() {
  comp { flops: 10, loads: 4 }
  parloop i = 0 .. 200 {
    comp { flops: 64, loads: 16, stores: 8, bytes: 8 }
    lib exp(4)
  }
  lib mystery(1)
}
"#;
        let bet = bet_for(src);
        let plan = ProjectionPlan::new(&bet, &LibraryRegistry::with_defaults());
        for machine in [generic(), bgq(), xeon()] {
            let plain = plan.evaluate(&machine, &Roofline);
            let rec = CollectingRecorder::new();
            let observed = plan.evaluate_observed(&machine, &Roofline, &rec);
            assert_eq!(observed.total_time.to_bits(), plain.total_time.to_bits());

            let blocks = rec.block_provenance();
            assert_eq!(blocks.len(), plan.blocks().len());
            // the provenance stream carries the exact addends, in order
            let sum = blocks.iter().fold(0.0f64, |acc, b| acc + b.total);
            assert_eq!(sum.to_bits(), plain.total_time.to_bits());
            assert_eq!(rec.counter_value("plan.blocks"), plan.blocks().len() as u64);
            let snap = rec.snapshot();
            let span = snap.spans.iter().find(|s| s.name == "plan.evaluate").unwrap();
            assert!(span.attrs.iter().any(|(k, _)| k == "machine"));
            assert!(span.attrs.iter().any(|(k, _)| k == "total_time"));
        }
    }

    #[test]
    fn provenance_delta_matches_overlap_definition() {
        use xflow_obs::CollectingRecorder;
        let bet = bet_for("func main() { loop i = 0 .. 100 { comp { flops: 32, loads: 8, bytes: 8 } } }");
        let plan = ProjectionPlan::new(&bet, &LibraryRegistry::with_defaults());
        let rec = CollectingRecorder::new();
        plan.evaluate_observed(&bgq(), &Roofline, &rec);
        for b in rec.block_provenance() {
            let floor = b.tc.min(b.tm);
            if floor > 0.0 {
                assert!((b.delta * floor - b.overlap).abs() <= 1e-15 * b.overlap.abs().max(1.0));
                assert!((0.0..=1.0).contains(&b.delta), "δ must be a fraction, got {}", b.delta);
            }
        }
    }

    #[test]
    fn plan_reuse_across_machines_is_consistent() {
        let bet = bet_for("func main() { loop i = 0 .. 1000 { comp { flops: 100, loads: 50 } } }");
        let plan = ProjectionPlan::new(&bet, &LibraryRegistry::with_defaults());
        let a = plan.evaluate(&generic(), &Roofline);
        let b = plan.evaluate(&generic(), &Roofline);
        assert_eq!(a.total_time.to_bits(), b.total_time.to_bits());
    }
}
