//! Hot spot identification (paper Section V-B).
//!
//! Users configure two criteria: **time coverage** (the selection should
//! account for at least this fraction of total run time) and **code
//! leanness** (the selection may contain at most this fraction of the
//! application's static instructions). Leanness takes precedence: when both
//! cannot be met, coverage is maximized under the leanness constraint. The
//! underlying problem is a knapsack; a greedy algorithm is used, as in the
//! paper.

use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use xflow_skeleton::StmtId;

/// Selection criteria (paper defaults: coverage ≥ 0.9, leanness ≤ 0.1).
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct Criteria {
    /// Minimum fraction of total time the hot spots should cover.
    pub time_coverage: f64,
    /// Maximum fraction of static instructions the hot spots may contain.
    pub code_leanness: f64,
}

impl Default for Criteria {
    fn default() -> Self {
        Self { time_coverage: 0.9, code_leanness: 0.1 }
    }
}

/// Greedy strategy variant (ablation knob).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Greedy {
    /// Take blocks in descending time order, skipping any that would bust
    /// the leanness budget (the paper's ranking view).
    ByTime,
    /// Take blocks in descending time-per-instruction density (classic
    /// knapsack greedy).
    ByDensity,
}

/// A candidate code block for selection.
#[derive(Debug, Clone, Copy)]
pub struct Candidate {
    pub stmt: StmtId,
    /// Time attributed to the block (projected or measured, seconds/cycles).
    pub time: f64,
    /// Static instruction weight of the block.
    pub instr: f64,
}

/// One selected hot spot.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct HotSpot {
    pub stmt: StmtId,
    /// Rank in the selection (0 = hottest).
    pub rank: usize,
    /// Time attributed to the block.
    pub time: f64,
    /// Fraction of the application total.
    pub coverage: f64,
    /// Static instruction weight.
    pub instr: f64,
}

/// The outcome of hot spot selection.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Selection {
    /// Selected spots, hottest first.
    pub spots: Vec<HotSpot>,
    /// Total time of the application the candidates came from.
    pub total_time: f64,
    /// Total static instructions of the application.
    pub total_instr: f64,
}

impl Selection {
    /// Combined time coverage of the selection.
    pub fn coverage(&self) -> f64 {
        self.spots.iter().map(|s| s.coverage).sum()
    }

    /// Combined leanness (fraction of static instructions selected).
    pub fn leanness(&self) -> f64 {
        if self.total_instr == 0.0 {
            0.0
        } else {
            self.spots.iter().map(|s| s.instr).sum::<f64>() / self.total_instr
        }
    }

    /// Cumulative coverage after each of the first `k` spots.
    pub fn coverage_curve(&self) -> Vec<f64> {
        let mut acc = 0.0;
        self.spots
            .iter()
            .map(|s| {
                acc += s.coverage;
                acc
            })
            .collect()
    }

    /// The selected statement ids in rank order.
    pub fn stmt_ids(&self) -> Vec<StmtId> {
        self.spots.iter().map(|s| s.stmt).collect()
    }

    /// Measured coverage of this selection under a different time
    /// attribution (e.g. the measured profile for a model-projected
    /// selection — the paper's `Modl(m)` curves).
    pub fn coverage_under(&self, times: &HashMap<StmtId, f64>, total: f64) -> f64 {
        if total == 0.0 {
            return 0.0;
        }
        self.spots.iter().map(|s| times.get(&s.stmt).copied().unwrap_or(0.0)).sum::<f64>() / total
    }
}

/// Select hot spots greedily under the criteria.
pub fn select(candidates: &[Candidate], total_instr: f64, criteria: Criteria, strategy: Greedy) -> Selection {
    let total_time: f64 = candidates.iter().map(|c| c.time).sum();
    let mut order: Vec<&Candidate> = candidates.iter().filter(|c| c.time > 0.0).collect();
    match strategy {
        Greedy::ByTime => {
            order.sort_by(|a, b| {
                b.time.partial_cmp(&a.time).unwrap_or(std::cmp::Ordering::Equal).then(a.stmt.cmp(&b.stmt))
            });
        }
        Greedy::ByDensity => {
            order.sort_by(|a, b| {
                let da = a.time / a.instr.max(1.0);
                let db = b.time / b.instr.max(1.0);
                db.partial_cmp(&da).unwrap_or(std::cmp::Ordering::Equal).then(a.stmt.cmp(&b.stmt))
            });
        }
    }

    let instr_budget = criteria.code_leanness * total_instr;
    let mut spots = Vec::new();
    let mut used_instr = 0.0;
    let mut covered = 0.0;
    for c in order {
        if total_time > 0.0 && covered / total_time >= criteria.time_coverage {
            break;
        }
        if used_instr + c.instr > instr_budget && !spots.is_empty() {
            // leanness takes precedence: skip blocks that bust the budget,
            // later (smaller) blocks may still fit
            continue;
        }
        if used_instr + c.instr > instr_budget && spots.is_empty() {
            // even the single hottest block exceeds the budget; take it
            // anyway so the selection is never empty (degenerate input)
        }
        used_instr += c.instr;
        covered += c.time;
        spots.push(HotSpot {
            stmt: c.stmt,
            rank: spots.len(),
            time: c.time,
            coverage: if total_time > 0.0 { c.time / total_time } else { 0.0 },
            instr: c.instr,
        });
    }
    Selection { spots, total_time, total_instr }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cand(id: u32, time: f64, instr: f64) -> Candidate {
        Candidate { stmt: StmtId(id), time, instr }
    }

    #[test]
    fn picks_hottest_until_coverage() {
        let cands = vec![cand(0, 50.0, 1.0), cand(1, 30.0, 1.0), cand(2, 15.0, 1.0), cand(3, 5.0, 1.0)];
        let sel = select(&cands, 100.0, Criteria { time_coverage: 0.9, code_leanness: 0.5 }, Greedy::ByTime);
        // 50 + 30 = 80% < 90%, +15 = 95% ≥ 90% → three spots
        assert_eq!(sel.stmt_ids(), vec![StmtId(0), StmtId(1), StmtId(2)]);
        assert!((sel.coverage() - 0.95).abs() < 1e-9);
    }

    #[test]
    fn leanness_budget_skips_fat_blocks() {
        // block 1 is hot but huge; budget forces the selection to skip it
        let cands = vec![cand(0, 40.0, 2.0), cand(1, 35.0, 90.0), cand(2, 25.0, 2.0)];
        let sel = select(&cands, 100.0, Criteria { time_coverage: 0.9, code_leanness: 0.1 }, Greedy::ByTime);
        assert_eq!(sel.stmt_ids(), vec![StmtId(0), StmtId(2)]);
        assert!(sel.leanness() <= 0.1 + 1e-9);
        // coverage maximized under the constraint, not reaching 90%
        assert!((sel.coverage() - 0.65).abs() < 1e-9);
    }

    #[test]
    fn density_strategy_prefers_lean_blocks() {
        let cands = vec![cand(0, 50.0, 100.0), cand(1, 40.0, 2.0)];
        let by_time = select(&cands, 200.0, Criteria { time_coverage: 0.99, code_leanness: 1.0 }, Greedy::ByTime);
        let by_density = select(&cands, 200.0, Criteria { time_coverage: 0.99, code_leanness: 1.0 }, Greedy::ByDensity);
        assert_eq!(by_time.stmt_ids()[0], StmtId(0));
        assert_eq!(by_density.stmt_ids()[0], StmtId(1));
    }

    #[test]
    fn zero_time_candidates_ignored() {
        let cands = vec![cand(0, 0.0, 1.0), cand(1, 10.0, 1.0)];
        let sel = select(&cands, 2.0, Criteria::default(), Greedy::ByTime);
        assert_eq!(sel.stmt_ids(), vec![StmtId(1)]);
    }

    #[test]
    fn single_oversized_block_still_selected() {
        let cands = vec![cand(0, 10.0, 100.0)];
        let sel = select(&cands, 100.0, Criteria { time_coverage: 0.9, code_leanness: 0.01 }, Greedy::ByTime);
        assert_eq!(sel.spots.len(), 1, "selection must not be empty");
    }

    #[test]
    fn coverage_curve_monotone() {
        let cands = vec![cand(0, 50.0, 1.0), cand(1, 30.0, 1.0), cand(2, 20.0, 1.0)];
        let sel = select(&cands, 10.0, Criteria { time_coverage: 1.0, code_leanness: 1.0 }, Greedy::ByTime);
        let curve = sel.coverage_curve();
        assert_eq!(curve.len(), 3);
        assert!(curve.windows(2).all(|w| w[1] >= w[0]));
        assert!((curve[2] - 1.0).abs() < 1e-9);
    }

    #[test]
    fn coverage_under_other_attribution() {
        let cands = vec![cand(0, 50.0, 1.0), cand(1, 50.0, 1.0)];
        let sel = select(&cands, 10.0, Criteria { time_coverage: 0.4, code_leanness: 1.0 }, Greedy::ByTime);
        // selection = top block only
        assert_eq!(sel.spots.len(), 1);
        let measured: HashMap<StmtId, f64> = [(StmtId(0), 10.0), (StmtId(1), 90.0)].into_iter().collect();
        // measured coverage of the projected selection: 10/100
        assert!((sel.coverage_under(&measured, 100.0) - 0.1).abs() < 1e-9);
    }

    #[test]
    fn empty_candidates_yield_empty_selection() {
        let sel = select(&[], 0.0, Criteria::default(), Greedy::ByTime);
        assert!(sel.spots.is_empty());
        assert_eq!(sel.coverage(), 0.0);
        assert_eq!(sel.leanness(), 0.0);
    }

    #[test]
    fn ranks_are_sequential() {
        let cands = vec![cand(0, 3.0, 1.0), cand(1, 2.0, 1.0), cand(2, 1.0, 1.0)];
        let sel = select(&cands, 3.0, Criteria { time_coverage: 1.0, code_leanness: 1.0 }, Greedy::ByTime);
        let ranks: Vec<usize> = sel.spots.iter().map(|s| s.rank).collect();
        assert_eq!(ranks, vec![0, 1, 2]);
    }
}
