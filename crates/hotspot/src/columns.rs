//! Columnar (structure-of-arrays) sweep output.
//!
//! A design-space sweep used to materialize a full [`Projection`] per
//! point — a `node_costs` clone plus a per-statement table clone per
//! machine — which dominated the per-point cost once the evaluation
//! itself went through the batched kernel. [`ProjectionColumns`] is the
//! columnar replacement: one arena per sweep holding, for every point,
//! the total time, the block-level Tc/Tm/To aggregates, the achieved
//! overlap fraction δ, the compute-vs-memory verdict, and a dense
//! per-(point × statement) cost matrix. Nothing is heap-allocated per
//! point, and a full [`Projection`] is *hydrated* lazily — only when a
//! caller drills into one specific point.
//!
//! The arena is two allocations: one `f64` buffer holding the five
//! per-point columns followed by the four row-major `[point][slot]`
//! statement matrices, and one `bool` buffer holding the verdict column
//! and the presence matrix. The statement-slot maps (`SlotLayout`)
//! depend only on the kernel, so they are computed once per kernel and
//! shared into every arena by reference count.
//!
//! Hydration is re-evaluation: [`ProjectionColumns::hydrate`] re-runs the
//! kernel's scalar spec path for the stored [`MachineSpec`] of that point.
//! By the kernel's bit-identity contract this reproduces exactly the
//! projection the eager path would have stored, at roughly the cost of
//! one kernel evaluation — far cheaper than having cloned every point's
//! projection up front on the off chance someone asks.
//!
//! Filling is chunked so the work-stealing sweep scheduler can evaluate
//! disjoint point ranges concurrently: workers produce [`ColumnsChunk`]
//! buffers via [`crate::PlanKernel::evaluate_columns_chunk`] and the
//! merged arena installs them in index order, keeping the output
//! independent of scheduling.

use std::sync::Arc;

use xflow_hw::MachineSpec;
use xflow_skeleton::StmtId;

use crate::analysis::Projection;
use crate::kernel::{PlanKernel, Scratch};

/// Sentinel slot index for "block aggregates into no statement".
pub(crate) const NO_SLOT: u32 = u32::MAX;

/// Statement-slot maps of one kernel: which statements carry cost blocks,
/// their dense column order, and per-block slot targets. Depends only on
/// the kernel's statement column, so it is built once per kernel
/// ([`PlanKernel::slot_layout`]) and shared by every arena.
#[derive(Debug, Default)]
pub(crate) struct SlotLayout {
    /// Statement IDs with at least one cost block, ascending — the column
    /// slots of the dense per-point statement matrix.
    pub(crate) slots: Vec<u32>,
    /// Statement ID → slot index ([`NO_SLOT`] when the statement carries
    /// no cost blocks), dense over the kernel's statement bound.
    pub(crate) slot_of: Vec<u32>,
    /// Kernel block index → slot index ([`NO_SLOT`] for blocks that
    /// aggregate into no statement).
    #[cfg_attr(not(feature = "simd"), allow(dead_code))]
    pub(crate) block_slot: Vec<u32>,
    /// Slot index of every predicted-participating statement, in
    /// first-touch order — the rows a predicted lane writes back.
    #[cfg_attr(not(feature = "simd"), allow(dead_code))]
    pub(crate) touched: Vec<u32>,
}

impl SlotLayout {
    /// Build the maps from a kernel's statement column.
    pub(crate) fn build(stmt_col: &[u32], stmt_bound: usize, pre_touched: &[u32]) -> Self {
        let mut slot_of = vec![NO_SLOT; stmt_bound];
        let mut slots: Vec<u32> = stmt_col.iter().copied().filter(|&s| s != u32::MAX).collect();
        slots.sort_unstable();
        slots.dedup();
        for (idx, &stmt) in slots.iter().enumerate() {
            slot_of[stmt as usize] = idx as u32;
        }
        let block_slot = stmt_col.iter().map(|&s| if s == u32::MAX { NO_SLOT } else { slot_of[s as usize] }).collect();
        let touched = pre_touched.iter().map(|&s| slot_of[s as usize]).collect();
        Self { slots, slot_of, block_slot, touched }
    }
}

/// One statement-slot entry of a point's dense cost row.
#[derive(Debug, Clone, Copy)]
pub struct SlotCost {
    /// Column slot index (position in [`ProjectionColumns::stmt_ids`]).
    pub slot: usize,
    /// The statement this slot aggregates.
    pub stmt: StmtId,
    /// Total projected seconds.
    pub total: f64,
    /// ENR-weighted computation seconds.
    pub tc: f64,
    /// ENR-weighted memory seconds.
    pub tm: f64,
    /// ENR-weighted overlapped seconds.
    pub overlap: f64,
}

/// Dense per-point sweep results in structure-of-arrays layout.
///
/// Built zeroed by [`ProjectionColumns::new`] from the kernel whose plan
/// the sweep evaluates, then filled by
/// [`crate::PlanKernel::evaluate_columns`] (serial) or by installing
/// per-range [`ColumnsChunk`]s (parallel). Every stored value is
/// bit-identical to what the scalar evaluator produces for that point —
/// the per-statement rows match the hydrated projection's `per_stmt`
/// table and the totals match its `total_time`, `to_bits` for `to_bits`.
#[derive(Debug, Clone)]
pub struct ProjectionColumns {
    /// Shared slot maps of the kernel the arena was built from.
    layout: Arc<SlotLayout>,
    /// Number of points (== `specs.len()`).
    n: usize,
    /// `[total n][tc n][tm n][overlap n][delta n]` followed by the four
    /// row-major `[point][slot]` statement matrices
    /// `[stmt_total nk][stmt_tc nk][stmt_tm nk][stmt_overlap nk]`.
    data: Vec<f64>,
    /// `[memory_bound n][stmt_present nk]`.
    flags: Vec<bool>,
    /// The machine spec of every point, retained for lazy hydration.
    specs: Vec<MachineSpec>,
    /// Fingerprint of the kernel the layout was built from; hydration and
    /// chunk evaluation check it so a columns arena is never mixed with a
    /// foreign kernel.
    fingerprint: u64,
}

impl ProjectionColumns {
    /// Zeroed arena for evaluating `specs` against `kernel`'s plan.
    pub fn new(kernel: &PlanKernel, specs: Vec<MachineSpec>) -> Self {
        let layout = Arc::clone(kernel.slot_layout());
        let n = specs.len();
        let k = layout.slots.len();
        Self {
            layout,
            n,
            data: vec![0.0; n * 5 + n * k * 4],
            flags: vec![false; n + n * k],
            specs,
            fingerprint: kernel.fingerprint(),
        }
    }

    /// Number of sweep points.
    pub fn points(&self) -> usize {
        self.n
    }

    /// True when the arena holds no points.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Number of statement slots per point row.
    pub fn slot_count(&self) -> usize {
        self.layout.slots.len()
    }

    /// Statement ID of a column slot.
    pub fn stmt_of_slot(&self, slot: usize) -> StmtId {
        StmtId(self.layout.slots[slot])
    }

    /// Statement IDs of the column slots, ascending.
    pub fn stmt_ids(&self) -> impl Iterator<Item = StmtId> + '_ {
        self.layout.slots.iter().map(|&s| StmtId(s))
    }

    /// The machine specs, in point order.
    pub fn specs(&self) -> &[MachineSpec] {
        &self.specs
    }

    /// Total projected seconds per point, as a dense column.
    pub fn totals(&self) -> &[f64] {
        &self.data[..self.n]
    }

    /// Total projected seconds of one point (bit-identical to the
    /// hydrated projection's `total_time`).
    pub fn total(&self, i: usize) -> f64 {
        self.data[i]
    }

    /// Block-level `(Tc, Tm, To)` aggregates of one point.
    pub fn block_totals(&self, i: usize) -> (f64, f64, f64) {
        let n = self.n;
        (self.data[n + i], self.data[2 * n + i], self.data[3 * n + i])
    }

    /// Achieved overlap fraction `To / min(Tc, Tm)` of one point.
    pub fn delta(&self, i: usize) -> f64 {
        self.data[4 * self.n + i]
    }

    /// Whether a point is memory-bound at the block-aggregate level.
    pub fn memory_bound(&self, i: usize) -> bool {
        self.flags[i]
    }

    /// One statement matrix (`m` = 0 total, 1 tc, 2 tm, 3 overlap).
    fn stmt_matrix(&self, m: usize) -> &[f64] {
        let nk = self.n * self.slot_count();
        let base = self.n * 5 + m * nk;
        &self.data[base..base + nk]
    }

    /// Iterate the present statement slots of one point row.
    pub fn stmt_row(&self, i: usize) -> impl Iterator<Item = SlotCost> + '_ {
        let k = self.slot_count();
        let base = i * k;
        let present = &self.flags[self.n + base..self.n + base + k];
        (0..k).filter(move |&s| present[s]).map(move |s| SlotCost {
            slot: s,
            stmt: StmtId(self.layout.slots[s]),
            total: self.stmt_matrix(0)[base + s],
            tc: self.stmt_matrix(1)[base + s],
            tm: self.stmt_matrix(2)[base + s],
            overlap: self.stmt_matrix(3)[base + s],
        })
    }

    /// Point indices ranked by ascending total time (ties keep point
    /// order), truncated to `k` — the sweep's top-k without hydrating
    /// anything.
    pub fn top_k(&self, k: usize) -> Vec<usize> {
        let totals = self.totals();
        let mut idx: Vec<usize> = (0..self.points()).collect();
        idx.sort_by(|&a, &b| totals[a].partial_cmp(&totals[b]).unwrap_or(std::cmp::Ordering::Equal).then(a.cmp(&b)));
        idx.truncate(k);
        idx
    }

    /// Kernel fingerprint the layout was built from.
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    /// Install an evaluated chunk at its point range.
    pub fn install(&mut self, chunk: ColumnsChunk) {
        let k = self.slot_count();
        assert_eq!(chunk.slots, k, "chunk layout mismatch");
        assert!(chunk.start + chunk.len <= self.points(), "chunk range out of bounds");
        let (n, len) = (self.n, chunk.len);
        let (a, b) = (chunk.start, chunk.start + chunk.len);
        for m in 0..5 {
            self.data[m * n + a..m * n + b].copy_from_slice(&chunk.data[m * len..(m + 1) * len]);
        }
        let nk = n * k;
        let lk = len * k;
        for m in 0..4 {
            self.data[5 * n + m * nk + a * k..5 * n + m * nk + b * k]
                .copy_from_slice(&chunk.data[5 * len + m * lk..5 * len + (m + 1) * lk]);
        }
        self.flags[a..b].copy_from_slice(&chunk.flags[..len]);
        self.flags[n + a * k..n + b * k].copy_from_slice(&chunk.flags[len..]);
    }

    /// Split the arena into its read-only layout and a mutable fill
    /// target over `range` — the direct (serial) fill path, which writes
    /// results in place with no intermediate chunk buffer.
    pub(crate) fn layout_and_target(
        &mut self,
        range: std::ops::Range<usize>,
    ) -> (ColumnsLayout<'_>, ColumnsTarget<'_>) {
        let k = self.layout.slots.len();
        let layout = ColumnsLayout { maps: &self.layout, specs: &self.specs, fingerprint: self.fingerprint, slots: k };
        let target = split_target(&mut self.data, &mut self.flags, self.n, k, range.start, range.end);
        (layout, target)
    }

    /// The read-only layout view shared by parallel chunk fills.
    pub(crate) fn layout(&self) -> ColumnsLayout<'_> {
        ColumnsLayout {
            maps: &self.layout,
            specs: &self.specs,
            fingerprint: self.fingerprint,
            slots: self.layout.slots.len(),
        }
    }

    /// Materialize the full [`Projection`] of one point by re-evaluating
    /// its stored spec through the kernel (fresh scratch).
    pub fn hydrate(&self, kernel: &PlanKernel, i: usize) -> Projection {
        let mut scratch = kernel.make_scratch();
        self.hydrate_into(kernel, i, &mut scratch)
    }

    /// [`ProjectionColumns::hydrate`] reusing a caller scratch (warm:
    /// allocation-free). Bit-identical to the projection the eager batch
    /// path would have stored for this point.
    pub fn hydrate_into(&self, kernel: &PlanKernel, i: usize, scratch: &mut Scratch) -> Projection {
        assert_eq!(kernel.fingerprint(), self.fingerprint, "columns hydrated through a foreign kernel");
        kernel.evaluate_spec_into(&self.specs[i], scratch);
        scratch.projection(kernel)
    }
}

/// Carve a [`ColumnsTarget`] over rows `a..b` out of consolidated arena
/// (or chunk) buffers laid out as documented on
/// [`ProjectionColumns::data`], where `n` is the buffer's total row count.
fn split_target<'a>(
    data: &'a mut [f64],
    flags: &'a mut [bool],
    n: usize,
    k: usize,
    a: usize,
    b: usize,
) -> ColumnsTarget<'a> {
    let (total, rest) = data.split_at_mut(n);
    let (tc, rest) = rest.split_at_mut(n);
    let (tm, rest) = rest.split_at_mut(n);
    let (overlap, rest) = rest.split_at_mut(n);
    let (delta, rest) = rest.split_at_mut(n);
    let nk = n * k;
    let (stmt_total, rest) = rest.split_at_mut(nk);
    let (stmt_tc, rest) = rest.split_at_mut(nk);
    let (stmt_tm, stmt_overlap) = rest.split_at_mut(nk);
    let (memory_bound, stmt_present) = flags.split_at_mut(n);
    ColumnsTarget {
        len: b - a,
        slots: k,
        total: &mut total[a..b],
        tc: &mut tc[a..b],
        tm: &mut tm[a..b],
        overlap: &mut overlap[a..b],
        delta: &mut delta[a..b],
        memory_bound: &mut memory_bound[a..b],
        stmt_total: &mut stmt_total[a * k..b * k],
        stmt_tc: &mut stmt_tc[a * k..b * k],
        stmt_tm: &mut stmt_tm[a * k..b * k],
        stmt_overlap: &mut stmt_overlap[a * k..b * k],
        stmt_present: &mut stmt_present[a * k..b * k],
    }
}

/// An evaluated contiguous range of sweep points, produced by
/// [`crate::PlanKernel::evaluate_columns_chunk`] and merged into the
/// arena with [`ProjectionColumns::install`]. Carries the same columns as
/// the arena (consolidated buffers), relative to its own range.
#[derive(Debug, Clone)]
pub struct ColumnsChunk {
    pub(crate) start: usize,
    pub(crate) len: usize,
    pub(crate) slots: usize,
    /// Same section order as [`ProjectionColumns::data`], sized by `len`.
    pub(crate) data: Vec<f64>,
    /// Same section order as [`ProjectionColumns::flags`], sized by `len`.
    pub(crate) flags: Vec<bool>,
}

impl ColumnsChunk {
    pub(crate) fn zeroed(start: usize, len: usize, slots: usize) -> Self {
        Self { start, len, slots, data: vec![0.0; len * 5 + len * slots * 4], flags: vec![false; len + len * slots] }
    }

    /// First point index of the range this chunk covers.
    pub fn start(&self) -> usize {
        self.start
    }

    /// Number of points in the chunk.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the chunk covers no points.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Total projected seconds of chunk-relative row `r`.
    pub fn total(&self, r: usize) -> f64 {
        self.data[r]
    }

    /// Block-level `(Tc, Tm, To)` aggregates of chunk-relative row `r`.
    pub fn block_totals(&self, r: usize) -> (f64, f64, f64) {
        let len = self.len;
        (self.data[len + r], self.data[2 * len + r], self.data[3 * len + r])
    }

    /// Iterate the present statement slots of chunk-relative row `r`.
    pub fn stmt_row<'a>(&'a self, r: usize, cols: &'a ProjectionColumns) -> impl Iterator<Item = SlotCost> + 'a {
        let k = self.slots;
        let lk = self.len * k;
        let base = r * k;
        let mat = move |m: usize| &self.data[5 * self.len + m * lk..5 * self.len + (m + 1) * lk];
        let present = &self.flags[self.len + base..self.len + base + k];
        (0..k).filter(move |&s| present[s]).map(move |s| SlotCost {
            slot: s,
            stmt: StmtId(cols.layout.slots[s]),
            total: mat(0)[base + s],
            tc: mat(1)[base + s],
            tm: mat(2)[base + s],
            overlap: mat(3)[base + s],
        })
    }

    /// Mutable fill target over the chunk's whole (relative) range — the
    /// parallel workers' fill path.
    pub(crate) fn target(&mut self) -> ColumnsTarget<'_> {
        split_target(&mut self.data, &mut self.flags, self.len, self.slots, 0, self.len)
    }
}

/// Read-only arena layout shared by every fill: slot maps, specs, and the
/// kernel fingerprint the layout was derived from.
pub(crate) struct ColumnsLayout<'a> {
    pub(crate) maps: &'a SlotLayout,
    pub(crate) specs: &'a [MachineSpec],
    pub(crate) fingerprint: u64,
    #[cfg_attr(not(feature = "simd"), allow(dead_code))]
    pub(crate) slots: usize,
}

/// Mutable column slices a fill writes into — either a range of the arena
/// directly (serial path) or a [`ColumnsChunk`]'s buffers (parallel
/// path). Rows are relative to the target's own range.
pub(crate) struct ColumnsTarget<'a> {
    #[cfg_attr(not(feature = "simd"), allow(dead_code))]
    pub(crate) len: usize,
    pub(crate) slots: usize,
    pub(crate) total: &'a mut [f64],
    pub(crate) tc: &'a mut [f64],
    pub(crate) tm: &'a mut [f64],
    pub(crate) overlap: &'a mut [f64],
    pub(crate) delta: &'a mut [f64],
    pub(crate) memory_bound: &'a mut [bool],
    pub(crate) stmt_total: &'a mut [f64],
    pub(crate) stmt_tc: &'a mut [f64],
    pub(crate) stmt_tm: &'a mut [f64],
    pub(crate) stmt_overlap: &'a mut [f64],
    pub(crate) stmt_present: &'a mut [bool],
}

impl ColumnsTarget<'_> {
    /// Fill target-relative row `r` from a scratch holding a completed
    /// scalar evaluation — the fill path for lane remainders, degenerate
    /// machines, and `simd`-less builds. The block-level aggregates sum
    /// the node costs in node order, which is bit-identical to the lane
    /// path's block-order accumulation because structural nodes carry
    /// exact zeros.
    pub(crate) fn fill_from_scratch(&mut self, r: usize, slot_of: &[u32], scratch: &Scratch) {
        self.total[r] = scratch.total_time();
        let (mut tc, mut tm, mut ov) = (0.0, 0.0, 0.0);
        for nc in scratch.node_costs() {
            tc += nc.per_invocation.tc * nc.enr;
            tm += nc.per_invocation.tm * nc.enr;
            ov += nc.per_invocation.overlap * nc.enr;
        }
        self.tc[r] = tc;
        self.tm[r] = tm;
        self.overlap[r] = ov;
        self.delta[r] = achieved_delta(tc, tm, ov);
        self.memory_bound[r] = tm > tc;
        let base = r * self.slots;
        for (stmt, cost) in scratch.per_stmt().iter() {
            let slot = slot_of[stmt.0 as usize] as usize;
            self.stmt_total[base + slot] = cost.total;
            self.stmt_tc[base + slot] = cost.tc;
            self.stmt_tm[base + slot] = cost.tm;
            self.stmt_overlap[base + slot] = cost.overlap;
            self.stmt_present[base + slot] = true;
        }
    }
}

/// Achieved overlap fraction of a point: `To / min(Tc, Tm)`, 0 when the
/// floor carries no time.
pub(crate) fn achieved_delta(tc: f64, tm: f64, overlap: f64) -> f64 {
    let floor = tc.min(tm);
    if floor > 0.0 {
        overlap / floor
    } else {
        0.0
    }
}
