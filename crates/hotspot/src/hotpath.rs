//! Hot path extraction (paper Section V-C).
//!
//! Each hot spot corresponds to one or more BET nodes (one per invocation
//! context). Back-tracing every such node to the root yields per-spot paths;
//! merging shared prefixes produces the *hot path* — a stripped-down version
//! of the workload containing only the hot spots and the control flow that
//! reaches them, annotated with trip counts, probabilities, and context
//! values. This is the bird's-eye view of Figure 9 and the skeleton from
//! which mini-applications can be constructed.

use std::collections::{BTreeMap, HashMap};
use std::fmt::Write as _;
use xflow_bet::{Bet, BetKind, BetNodeId};
use xflow_skeleton::StmtId;

/// A merged hot path over a BET.
#[derive(Debug, Clone)]
pub struct HotPath {
    /// Nodes on the path, keyed by BET node; values are ordered children.
    children: BTreeMap<BetNodeId, Vec<BetNodeId>>,
    /// Hot spot annotations: BET node → (rank, coverage fraction).
    spots: HashMap<BetNodeId, (usize, f64)>,
    root: BetNodeId,
}

impl HotPath {
    /// Number of nodes on the merged path (including interior nodes).
    pub fn len(&self) -> usize {
        self.children.len()
    }

    /// True when no hot spots were found.
    pub fn is_empty(&self) -> bool {
        self.children.is_empty()
    }

    /// BET node ids on the path.
    pub fn node_ids(&self) -> impl Iterator<Item = BetNodeId> + '_ {
        self.children.keys().copied()
    }

    /// Whether a BET node is one of the hot spots (vs. interior control flow).
    pub fn is_hotspot(&self, id: BetNodeId) -> bool {
        self.spots.contains_key(&id)
    }

    /// Ordered path children of a node (empty when the node is a leaf or
    /// not on the path).
    pub fn children(&self, id: BetNodeId) -> &[BetNodeId] {
        self.children.get(&id).map(Vec::as_slice).unwrap_or(&[])
    }

    /// The root BET node the path starts from.
    pub fn path_root(&self) -> BetNodeId {
        self.root
    }
}

/// Extract the merged hot path for a set of selected hot spot statements.
///
/// `ranked_stmts` is the selection in rank order; every BET node that
/// instantiates one of those statements with positive probability becomes a
/// leaf of the path.
pub fn extract(bet: &Bet, ranked_stmts: &[StmtId]) -> HotPath {
    let rank_of: HashMap<StmtId, usize> = ranked_stmts.iter().enumerate().map(|(i, s)| (*s, i)).collect();
    let enr = bet.enr();

    // total time proxy per hot spot node for annotation: ENR-weighted ops
    let mut spots: HashMap<BetNodeId, (usize, f64)> = HashMap::new();
    let mut on_path: BTreeMap<BetNodeId, Vec<BetNodeId>> = BTreeMap::new();

    for node in bet.iter() {
        let Some(stmt) = node.stmt else { continue };
        let Some(&rank) = rank_of.get(&stmt) else { continue };
        if !matches!(node.kind, BetKind::Comp { .. } | BetKind::Lib { .. }) {
            continue;
        }
        if enr[node.id.0 as usize] <= 0.0 {
            continue;
        }
        spots.insert(node.id, (rank, enr[node.id.0 as usize]));
        // back-trace to the root, recording parent→child edges
        let path = bet.ancestry(node.id);
        for pair in path.windows(2) {
            let (child, parent) = (pair[0], pair[1]);
            let kids = on_path.entry(parent).or_default();
            if !kids.contains(&child) {
                kids.push(child);
            }
        }
        on_path.entry(node.id).or_default();
    }

    // order children by BET creation order (pre-order ≈ program order)
    for kids in on_path.values_mut() {
        kids.sort();
    }

    HotPath { children: on_path, spots, root: bet.root() }
}

/// Render the hot path as an ASCII tree with ENR, probabilities, trip
/// counts, and context values (the Figure 9 view).
pub fn render(path: &HotPath, bet: &Bet, names: &HashMap<StmtId, String>) -> String {
    let mut out = String::new();
    if path.is_empty() {
        out.push_str("(empty hot path: no hot spots selected)\n");
        return out;
    }
    let enr = bet.enr();
    render_node(path, bet, names, enr, path.root, "", true, &mut out);
    out
}

#[allow(clippy::too_many_arguments)]
fn render_node(
    path: &HotPath,
    bet: &Bet,
    names: &HashMap<StmtId, String>,
    enr: &[f64],
    id: BetNodeId,
    prefix: &str,
    is_last: bool,
    out: &mut String,
) {
    let node = bet.node(id);
    let connector = if prefix.is_empty() {
        ""
    } else if is_last {
        "└─ "
    } else {
        "├─ "
    };

    let name = node.stmt.and_then(|s| names.get(&s)).cloned().unwrap_or_else(|| match &node.kind {
        BetKind::Root => "main".to_string(),
        other => other.tag().to_string(),
    });

    let mut line = format!("{prefix}{connector}{name}");
    match &node.kind {
        BetKind::Loop => {
            let _ = write!(line, " ×{:.0}", node.iters);
        }
        BetKind::Call { func } => {
            let _ = write!(line, " → {func}()");
        }
        BetKind::Lib { func, calls, .. } => {
            let _ = write!(line, " [lib {func} ×{calls:.0}]");
        }
        _ => {}
    }
    if node.prob < 0.999 {
        let _ = write!(line, " p={:.3}", node.prob);
    }
    if let Some((rank, _)) = path.spots.get(&id) {
        let _ = write!(line, "  ◄ HOT #{} (ENR {:.3e})", rank + 1, enr[id.0 as usize]);
        // a couple of context values help track algorithmic causes
        let ctx: Vec<String> = node.context.iter().take(3).map(|(k, v)| format!("{k}={v}")).collect();
        if !ctx.is_empty() {
            let _ = write!(line, " [{}]", ctx.join(", "));
        }
    }
    out.push_str(&line);
    out.push('\n');

    let kids = match path.children.get(&id) {
        Some(k) => k,
        None => return,
    };
    let child_prefix =
        if prefix.is_empty() { String::new() } else { format!("{prefix}{}", if is_last { "   " } else { "│  " }) };
    let child_prefix = if prefix.is_empty() && !kids.is_empty() { "".to_string() } else { child_prefix };
    for (i, &kid) in kids.iter().enumerate() {
        let last = i + 1 == kids.len();
        let p = if prefix.is_empty() { " ".to_string() } else { child_prefix.clone() };
        render_node(path, bet, names, enr, kid, &p, last, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xflow_bet::build;
    use xflow_skeleton::expr::env_from;
    use xflow_skeleton::parse;

    const SRC: &str = r#"
func main() {
  @setup: comp { flops: 5 }
  loop t = 0 .. 100 {
    call update(t)
    if prob(0.25) {
      @fix: comp { flops: 50, loads: 10 }
    }
  }
}
func update(t) {
  @stress: loop i = 0 .. 1000 { @kernel: comp { flops: 8, loads: 4, stores: 2 } }
}
"#;

    fn setup() -> (xflow_skeleton::Program, Bet) {
        let prog = parse(SRC).unwrap();
        let bet = build(&prog, &env_from([("x", 0.0)])).unwrap();
        (prog, bet)
    }

    #[test]
    fn path_contains_hotspot_and_ancestry() {
        let (prog, bet) = setup();
        let kernel = prog.stmt_by_label("kernel").unwrap();
        let path = extract(&bet, &[kernel]);
        assert!(!path.is_empty());
        // ancestry: root, loop t, call update, loop i, comp kernel = 5 nodes
        assert_eq!(path.len(), 5);
        // exactly one hot spot leaf
        let hot: Vec<_> = path.node_ids().filter(|&id| path.is_hotspot(id)).collect();
        assert_eq!(hot.len(), 1);
    }

    #[test]
    fn merged_paths_share_prefixes() {
        let (prog, bet) = setup();
        let kernel = prog.stmt_by_label("kernel").unwrap();
        let fix = prog.stmt_by_label("fix").unwrap();
        let merged = extract(&bet, &[kernel, fix]);
        let single = extract(&bet, &[kernel]);
        // fix adds its arm + comp (2 nodes) to the shared spine
        assert_eq!(merged.len(), single.len() + 2);
    }

    #[test]
    fn cold_stmts_excluded() {
        let (prog, bet) = setup();
        let setup_stmt = prog.stmt_by_label("setup").unwrap();
        let path = extract(&bet, &[setup_stmt]);
        // setup is top-level: root + comp
        assert_eq!(path.len(), 2);
    }

    #[test]
    fn render_mentions_ranks_trips_and_probs() {
        let (prog, bet) = setup();
        let kernel = prog.stmt_by_label("kernel").unwrap();
        let fix = prog.stmt_by_label("fix").unwrap();
        let path = extract(&bet, &[kernel, fix]);
        let names = prog.stmt_names();
        let text = render(&path, &bet, &names);
        assert!(text.contains("HOT #1"), "{text}");
        assert!(text.contains("HOT #2"), "{text}");
        assert!(text.contains("×100"), "{text}");
        assert!(text.contains("×1000"), "{text}");
        assert!(text.contains("p=0.250"), "{text}");
        assert!(text.contains("update"), "{text}");
    }

    #[test]
    fn empty_selection_renders_placeholder() {
        let (_, bet) = setup();
        let path = extract(&bet, &[]);
        assert!(path.is_empty());
        let text = render(&path, &bet, &HashMap::new());
        assert!(text.contains("empty hot path"));
    }

    #[test]
    fn enr_annotation_reflects_repetitions() {
        let (prog, bet) = setup();
        let kernel = prog.stmt_by_label("kernel").unwrap();
        let path = extract(&bet, &[kernel]);
        let names = prog.stmt_names();
        let text = render(&path, &bet, &names);
        // kernel repeats 100 × 1000 = 1e5 times
        assert!(text.contains("1.000e5") || text.contains("1e5") || text.contains("100000"), "{text}");
    }
}
