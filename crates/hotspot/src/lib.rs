//! # xflow-hotspot — hot region analysis
//!
//! Implements Section V of the paper: given a Bayesian Execution Tree and a
//! hardware model, (1) project per-block performance bottom-up with
//! ENR-weighted roofline times, (2) select **hot spots** greedily under
//! time-coverage and code-leanness criteria, and (3) extract the merged
//! **hot path** that shows how the hot spots are reached and connected,
//! with trip counts, probabilities, and context values.
//!
//! The [`quality`] module implements the paper's evaluation metric
//! (selection quality vs. a measured oracle) and the coverage curves of
//! Figures 4–13.

pub mod analysis;
pub mod columns;
pub mod hotpath;
pub mod kernel;
pub mod miniapp;
pub mod plan;
pub mod quality;
pub mod select;

pub use analysis::{project, project_single_pass, NodeCost, Projection, StmtCost, StmtCosts};
pub use columns::{ColumnsChunk, ProjectionColumns, SlotCost};
pub use hotpath::{extract, render, HotPath};
pub use kernel::{lane_width, PlanKernel, Scratch};
pub use miniapp::build_miniapp;
pub use plan::{PlanBlock, ProjectionPlan};
pub use quality::{coverage_curve, quality_at, quality_curve, top_k_overlap, MeasuredTimes};
pub use select::{select, Candidate, Criteria, Greedy, HotSpot, Selection};

use xflow_skeleton::{Program, StaticCounts, StmtId};

/// Wire-format version of this crate's serializable artifacts
/// ([`ProjectionPlan`] and its blocks).
///
/// Bump whenever a serialized layout changes shape; content-addressed caches
/// fold this into their keys so stale artifacts are never deserialized.
pub fn schema_version() -> u32 {
    1
}

/// Build selection candidates from a projection: every skeleton statement
/// with projected cost becomes a candidate weighted by its static
/// instruction count.
pub fn candidates(projection: &Projection, counts: &StaticCounts) -> Vec<Candidate> {
    projection
        .per_stmt
        .iter()
        .map(|(stmt, cost)| Candidate { stmt, time: cost.total, instr: counts.get(stmt) })
        .collect()
}

/// One-call hot spot selection from a projection with the paper's default
/// criteria (coverage ≥ 90 %, leanness ≤ 10 %).
pub fn select_hotspots(projection: &Projection, prog: &Program, criteria: Criteria) -> Selection {
    let counts = xflow_skeleton::static_counts(prog);
    let cands = candidates(projection, &counts);
    select(&cands, counts.total(), criteria, Greedy::ByTime)
}

/// Human-readable table of a selection (ranks, names, times, coverage).
pub fn format_selection(sel: &Selection, names: &std::collections::HashMap<StmtId, String>) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    let _ = writeln!(out, "{:<4} {:<32} {:>12} {:>9} {:>9}", "#", "block", "time (s)", "cov %", "cum %");
    let mut cum = 0.0;
    for s in &sel.spots {
        cum += s.coverage;
        let name = names.get(&s.stmt).cloned().unwrap_or_else(|| format!("stmt#{}", s.stmt.0));
        let _ = writeln!(
            out,
            "{:<4} {:<32} {:>12.4e} {:>8.2}% {:>8.2}%",
            s.rank + 1,
            name,
            s.time,
            s.coverage * 100.0,
            cum * 100.0
        );
    }
    let _ = writeln!(out, "coverage {:.1}%  leanness {:.1}%", sel.coverage() * 100.0, sel.leanness() * 100.0);
    out
}
