//! Property tests for hot spot selection and the quality metric.

use proptest::prelude::*;
use std::collections::HashMap;
use xflow_hotspot::{coverage_curve, quality_at, select, top_k_overlap, Candidate, Criteria, Greedy, MeasuredTimes};
use xflow_skeleton::StmtId;

fn candidates() -> impl Strategy<Value = Vec<Candidate>> {
    prop::collection::vec((0.0f64..1000.0, 1.0f64..50.0), 1..40).prop_map(|v| {
        v.into_iter().enumerate().map(|(i, (time, instr))| Candidate { stmt: StmtId(i as u32), time, instr }).collect()
    })
}

fn criteria() -> impl Strategy<Value = Criteria> {
    (0.1f64..=1.0, 0.05f64..=1.0).prop_map(|(cov, lean)| Criteria { time_coverage: cov, code_leanness: lean })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn leanness_respected_beyond_first_spot(cands in candidates(), crit in criteria()) {
        let total_instr: f64 = cands.iter().map(|c| c.instr).sum();
        let sel = select(&cands, total_instr, crit, Greedy::ByTime);
        if sel.spots.len() > 1 {
            prop_assert!(
                sel.leanness() <= crit.code_leanness + 1e-9,
                "leanness {} > {}",
                sel.leanness(),
                crit.code_leanness
            );
        }
    }

    #[test]
    fn selection_is_ranked_and_unique(cands in candidates(), crit in criteria()) {
        let total_instr: f64 = cands.iter().map(|c| c.instr).sum();
        for strategy in [Greedy::ByTime, Greedy::ByDensity] {
            let sel = select(&cands, total_instr, crit, strategy);
            // ranks sequential
            for (i, s) in sel.spots.iter().enumerate() {
                prop_assert_eq!(s.rank, i);
            }
            // no duplicates
            let mut ids = sel.stmt_ids();
            ids.sort();
            let before = ids.len();
            ids.dedup();
            prop_assert_eq!(before, ids.len());
            // ByTime order is by descending time
            if strategy == Greedy::ByTime {
                for w in sel.spots.windows(2) {
                    prop_assert!(w[0].time + 1e-12 >= w[1].time);
                }
            }
        }
    }

    #[test]
    fn coverage_consistency(cands in candidates(), crit in criteria()) {
        let total_instr: f64 = cands.iter().map(|c| c.instr).sum();
        let sel = select(&cands, total_instr, crit, Greedy::ByTime);
        let curve = sel.coverage_curve();
        // monotone, ends at coverage(), all within [0, 1]
        prop_assert!(curve.windows(2).all(|w| w[1] + 1e-12 >= w[0]));
        if let Some(last) = curve.last() {
            prop_assert!((last - sel.coverage()).abs() < 1e-9);
        }
        prop_assert!(sel.coverage() <= 1.0 + 1e-9);
    }

    #[test]
    fn stopping_conditions_hold(cands in candidates(), crit in criteria()) {
        // either the coverage target is met, or every unselected candidate
        // with nonzero time would bust the leanness budget
        let total_instr: f64 = cands.iter().map(|c| c.instr).sum();
        let sel = select(&cands, total_instr, crit, Greedy::ByTime);
        if sel.coverage() + 1e-9 < crit.time_coverage && !sel.spots.is_empty() {
            let used: f64 = sel.spots.iter().map(|s| s.instr).sum();
            let budget = crit.code_leanness * total_instr;
            let selected: Vec<StmtId> = sel.stmt_ids();
            for c in &cands {
                if c.time > 0.0 && !selected.contains(&c.stmt) {
                    prop_assert!(used + c.instr > budget + 1e-9, "candidate {:?} should have been taken", c.stmt);
                }
            }
        }
    }

    #[test]
    fn quality_bounds_and_identity(times in prop::collection::vec(0.0f64..100.0, 1..30)) {
        let map: HashMap<StmtId, f64> =
            times.iter().enumerate().map(|(i, &t)| (StmtId(i as u32), t)).collect();
        let m = MeasuredTimes::new(map);
        let oracle = m.ranking();
        for k in 1..=oracle.len() {
            let q = quality_at(&oracle, &m, k);
            prop_assert!((q - 1.0).abs() < 1e-9, "identity ranking must score 1, got {q}");
        }
        // any permutation stays within [0, 1]
        let mut reversed = oracle.clone();
        reversed.reverse();
        for k in 1..=reversed.len() {
            let q = quality_at(&reversed, &m, k);
            prop_assert!((0.0..=1.0 + 1e-9).contains(&q));
        }
        // full-length selections always score 1 (same set)
        let q_full = quality_at(&reversed, &m, reversed.len());
        prop_assert!((q_full - 1.0).abs() < 1e-9);
    }

    #[test]
    fn coverage_curve_matches_manual_sum(times in prop::collection::vec(0.01f64..100.0, 1..20)) {
        let map: HashMap<StmtId, f64> =
            times.iter().enumerate().map(|(i, &t)| (StmtId(i as u32), t)).collect();
        let m = MeasuredTimes::new(map.clone());
        let order = m.ranking();
        let curve = coverage_curve(&order, &m, order.len());
        let total: f64 = times.iter().sum();
        let mut acc = 0.0;
        for (k, &u) in order.iter().enumerate() {
            acc += map[&u] / total;
            prop_assert!((curve[k] - acc).abs() < 1e-9);
        }
        prop_assert!((curve.last().unwrap() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn overlap_symmetric_and_bounded(a in prop::collection::vec(0u32..40, 1..15), b in prop::collection::vec(0u32..40, 1..15)) {
        let av: Vec<StmtId> = a.iter().map(|&i| StmtId(i)).collect();
        let bv: Vec<StmtId> = b.iter().map(|&i| StmtId(i)).collect();
        let k = 10;
        let ab = top_k_overlap(&av, &bv, k);
        prop_assert!(ab <= k.min(av.len()).min(bv.len().max(k)));
        // overlap of a ranking with itself is its (deduplicated) prefix size
        let mut prefix: Vec<StmtId> = av.iter().take(k).cloned().collect();
        let aa = top_k_overlap(&av, &av, k);
        prefix.dedup();
        prop_assert!(aa <= k);
        prop_assert!(aa >= 1);
    }
}
