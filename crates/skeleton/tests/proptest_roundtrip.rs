//! Property tests: printing any well-formed program and re-parsing it must
//! reproduce the identical AST (print∘parse is the identity on canonical
//! programs), and static counts must be stable under the round trip.

use proptest::prelude::*;
use xflow_skeleton::ast::*;
use xflow_skeleton::expr::{BinOp, CmpOp, Expr};
use xflow_skeleton::{parse, print, static_counts};

const KEYWORDS: &[&str] = &[
    "func", "comp", "let", "loop", "parloop", "step", "while", "trips", "if", "else", "prob", "switch", "case",
    "default", "call", "lib", "return", "break", "continue", "flops", "iops", "loads", "stores", "divs", "bytes",
    "min", "max", "ceil", "floor", "pow", "abs", "sqrt", "log2",
];

fn ident() -> impl Strategy<Value = String> {
    "[a-z][a-z0-9_]{0,5}".prop_filter("not a keyword", |s| !KEYWORDS.contains(&s.as_str()))
}

fn literal() -> impl Strategy<Value = f64> {
    // Values whose Display output re-parses exactly: small integers and
    // dyadic fractions.
    prop_oneof![(0i64..10_000).prop_map(|v| v as f64), (0i64..1000).prop_map(|v| v as f64 / 8.0),]
}

fn expr() -> impl Strategy<Value = Expr> {
    let leaf = prop_oneof![literal().prop_map(Expr::Num), ident().prop_map(Expr::Var)];
    leaf.prop_recursive(3, 16, 3, |inner| {
        prop_oneof![
            (
                inner.clone(),
                inner.clone(),
                prop_oneof![Just(BinOp::Add), Just(BinOp::Sub), Just(BinOp::Mul), Just(BinOp::Div), Just(BinOp::Mod)]
            )
                .prop_map(|(l, r, op)| Expr::Binary(Box::new(l), op, Box::new(r))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::Call("min".into(), vec![a, b])),
            inner.clone().prop_map(|e| Expr::Call("ceil".into(), vec![e])),
            inner.prop_map(|e| Expr::Neg(Box::new(match e {
                // printer+parser fold `-literal`; avoid Neg(Num) in the AST
                Expr::Num(n) => Expr::Var(format!("v{}", (n as i64).rem_euclid(7))),
                other => other,
            }))),
        ]
    })
}

fn prob_expr() -> impl Strategy<Value = Expr> {
    (0u32..=8).prop_map(|n| Expr::Num(n as f64 / 8.0))
}

fn cond() -> impl Strategy<Value = Cond> {
    prop_oneof![
        prob_expr().prop_map(Cond::Prob),
        (
            expr(),
            expr(),
            prop_oneof![
                Just(CmpOp::Lt),
                Just(CmpOp::Le),
                Just(CmpOp::Gt),
                Just(CmpOp::Ge),
                Just(CmpOp::Eq),
                Just(CmpOp::Ne)
            ]
        )
            .prop_map(|(lhs, rhs, op)| Cond::Cmp { lhs, op, rhs }),
    ]
}

fn op_stats() -> impl Strategy<Value = OpStats> {
    (expr(), expr(), expr(), expr()).prop_map(|(flops, iops, loads, stores)| OpStats {
        flops,
        iops,
        loads,
        stores,
        divs: Expr::Num(0.0),
        dtype_bytes: Expr::Num(8.0),
    })
}

/// Statement kind without ids (ids are assigned when assembling the program).
#[derive(Debug, Clone)]
enum GenStmt {
    Comp(OpStats),
    Let(String, Expr),
    Loop(String, Expr, Expr, Vec<GenStmt>),
    While(Expr, Vec<GenStmt>),
    Branch(Vec<(Cond, Vec<GenStmt>)>, Option<Vec<GenStmt>>),
    Call(String, Vec<Expr>),
    Lib(String, Expr),
    Return(Expr),
    Break(Expr),
    Continue(Expr),
}

fn gen_stmt() -> impl Strategy<Value = GenStmt> {
    let leaf = prop_oneof![
        op_stats().prop_map(GenStmt::Comp),
        (ident(), expr()).prop_map(|(v, e)| GenStmt::Let(v, e)),
        (ident(), prop::collection::vec(expr(), 0..3)).prop_map(|(f, a)| GenStmt::Call(format!("ext_{f}"), a)),
        (prop_oneof![Just("exp"), Just("rand"), Just("sqrt")], expr())
            .prop_map(|(f, c)| GenStmt::Lib(f.to_string(), c)),
        prob_expr().prop_map(GenStmt::Return),
        prob_expr().prop_map(GenStmt::Break),
        prob_expr().prop_map(GenStmt::Continue),
    ];
    leaf.prop_recursive(3, 24, 4, |inner| {
        let block = prop::collection::vec(inner.clone(), 0..4);
        prop_oneof![
            (ident(), expr(), expr(), block.clone()).prop_map(|(v, lo, hi, b)| GenStmt::Loop(v, lo, hi, b)),
            (expr(), block.clone()).prop_map(|(t, b)| GenStmt::While(t, b)),
            (prop::collection::vec((cond(), block.clone()), 1..3), prop::option::of(block))
                .prop_map(|(arms, e)| GenStmt::Branch(arms, e)),
        ]
    })
}

fn assemble_block(stmts: &[GenStmt], prog: &mut Program) -> Block {
    let mut out = Vec::new();
    for g in stmts {
        let id = prog.fresh_stmt_id();
        let kind = match g {
            GenStmt::Comp(o) => StmtKind::Comp(o.clone()),
            GenStmt::Let(v, e) => StmtKind::Let { var: v.clone(), value: e.clone() },
            GenStmt::Loop(v, lo, hi, b) => StmtKind::Loop {
                var: v.clone(),
                lo: lo.clone(),
                hi: hi.clone(),
                step: Expr::Num(1.0),
                parallel: false,
                body: assemble_block(b, prog),
            },
            GenStmt::While(t, b) => StmtKind::While { trips: t.clone(), body: assemble_block(b, prog) },
            GenStmt::Branch(arms, e) => StmtKind::Branch {
                arms: arms.iter().map(|(c, b)| BranchArm { cond: c.clone(), body: assemble_block(b, prog) }).collect(),
                else_body: e.as_ref().map(|b| assemble_block(b, prog)),
            },
            GenStmt::Call(f, a) => StmtKind::Call { func: f.clone(), args: a.clone() },
            GenStmt::Lib(f, c) => StmtKind::LibCall { func: f.clone(), calls: c.clone(), work: Expr::Num(1.0) },
            GenStmt::Return(p) => StmtKind::Return { prob: p.clone() },
            GenStmt::Break(p) => StmtKind::Break { prob: p.clone() },
            GenStmt::Continue(p) => StmtKind::Continue { prob: p.clone() },
        };
        out.push(Stmt { id, label: None, kind });
    }
    Block { stmts: out }
}

fn gen_program() -> impl Strategy<Value = Program> {
    prop::collection::vec(prop::collection::vec(gen_stmt(), 0..6), 1..4).prop_map(|funcs| {
        let mut prog = Program::new();
        for (i, body) in funcs.iter().enumerate() {
            let name = if i == 0 { "main".to_string() } else { format!("fn_{i}") };
            let body = assemble_block(body, &mut prog);
            prog.add_function(Function { id: FuncId(0), name, params: vec![], body }).unwrap();
        }
        prog
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn print_parse_round_trip(prog in gen_program()) {
        let text = print(&prog);
        let reparsed = parse(&text).unwrap_or_else(|e| panic!("re-parse failed: {e}\n{text}"));
        prop_assert_eq!(&prog, &reparsed, "text was:\n{}", text);
    }

    #[test]
    fn print_is_fixed_point(prog in gen_program()) {
        let t1 = print(&prog);
        let t2 = print(&parse(&t1).unwrap());
        prop_assert_eq!(t1, t2);
    }

    #[test]
    fn static_counts_stable_under_round_trip(prog in gen_program()) {
        let c1 = static_counts(&prog);
        let c2 = static_counts(&parse(&print(&prog)).unwrap());
        prop_assert!((c1.total() - c2.total()).abs() < 1e-9);
    }

    #[test]
    fn statement_count_matches_id_allocation(prog in gen_program()) {
        // ids are allocated densely: visiting must see exactly stmt_count ids.
        prop_assert_eq!(prog.source_statement_count() as u32, prog.stmt_count());
    }
}
