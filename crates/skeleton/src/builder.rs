//! Programmatic construction API for skeletons.
//!
//! The workloads crate and tests build skeletons in code rather than text;
//! this module provides a fluent builder that assigns statement ids in the
//! same pre-order discipline as the parser.
//!
//! ```
//! use xflow_skeleton::builder::{ProgramBuilder, Ops};
//!
//! let mut pb = ProgramBuilder::new();
//! pb.func("main", &[], |b| {
//!     b.let_("n", "N");
//!     b.labeled("kernel").loop_("i", 0, "n", |b| {
//!         b.comp(Ops::new().flops(4).loads(2).stores(1));
//!     });
//! });
//! let prog = pb.finish();
//! assert_eq!(prog.source_statement_count(), 3);
//! ```

use crate::ast::*;
use crate::expr::{CmpOp, Expr};

impl From<f64> for Expr {
    fn from(v: f64) -> Self {
        Expr::Num(v)
    }
}

impl From<i64> for Expr {
    fn from(v: i64) -> Self {
        Expr::Num(v as f64)
    }
}

impl From<i32> for Expr {
    fn from(v: i32) -> Self {
        Expr::Num(v as f64)
    }
}

impl From<u32> for Expr {
    fn from(v: u32) -> Self {
        Expr::Num(v as f64)
    }
}

impl From<usize> for Expr {
    fn from(v: usize) -> Self {
        Expr::Num(v as f64)
    }
}

impl From<&str> for Expr {
    fn from(v: &str) -> Self {
        Expr::Var(v.to_string())
    }
}

/// Fluent constructor for [`OpStats`].
#[derive(Debug, Clone, Default)]
pub struct Ops(OpStats);

impl Ops {
    /// All-zero op statistics (8-byte elements).
    pub fn new() -> Self {
        Self::default()
    }

    pub fn flops(mut self, e: impl Into<Expr>) -> Self {
        self.0.flops = e.into();
        self
    }

    pub fn iops(mut self, e: impl Into<Expr>) -> Self {
        self.0.iops = e.into();
        self
    }

    pub fn loads(mut self, e: impl Into<Expr>) -> Self {
        self.0.loads = e.into();
        self
    }

    pub fn stores(mut self, e: impl Into<Expr>) -> Self {
        self.0.stores = e.into();
        self
    }

    pub fn divs(mut self, e: impl Into<Expr>) -> Self {
        self.0.divs = e.into();
        self
    }

    pub fn bytes(mut self, e: impl Into<Expr>) -> Self {
        self.0.dtype_bytes = e.into();
        self
    }

    /// Finish building.
    pub fn build(self) -> OpStats {
        self.0
    }
}

impl From<Ops> for OpStats {
    fn from(o: Ops) -> OpStats {
        o.0
    }
}

/// Top-level builder producing a [`Program`].
#[derive(Debug, Default)]
pub struct ProgramBuilder {
    prog: Program,
}

impl ProgramBuilder {
    /// Start an empty program.
    pub fn new() -> Self {
        Self::default()
    }

    /// Define a function. Panics on duplicate names (builder misuse is a
    /// programming error, not an input error).
    pub fn func(&mut self, name: &str, params: &[&str], build: impl FnOnce(&mut BlockBuilder)) -> &mut Self {
        let mut bb = BlockBuilder { prog: &mut self.prog, stmts: Vec::new(), pending_label: None };
        build(&mut bb);
        let body = Block { stmts: bb.stmts };
        self.prog
            .add_function(Function {
                id: FuncId(0),
                name: name.to_string(),
                params: params.iter().map(|s| s.to_string()).collect(),
                body,
            })
            .unwrap_or_else(|e| panic!("{e}"));
        self
    }

    /// Consume the builder, returning the program.
    pub fn finish(self) -> Program {
        self.prog
    }
}

/// Builder for a statement sequence.
pub struct BlockBuilder<'a> {
    prog: &'a mut Program,
    stmts: Vec<Stmt>,
    pending_label: Option<String>,
}

impl<'a> BlockBuilder<'a> {
    fn push(&mut self, kind: StmtKind) {
        let id = self.prog.fresh_stmt_id();
        let label = self.pending_label.take();
        self.stmts.push(Stmt { id, label, kind });
    }

    /// Attach a label to the *next* statement added.
    pub fn labeled(&mut self, label: &str) -> &mut Self {
        self.pending_label = Some(label.to_string());
        self
    }

    /// `comp { … }` block.
    pub fn comp(&mut self, ops: impl Into<OpStats>) {
        self.push(StmtKind::Comp(ops.into()));
    }

    /// `let var = value`.
    pub fn let_(&mut self, var: &str, value: impl Into<Expr>) {
        self.push(StmtKind::Let { var: var.to_string(), value: value.into() });
    }

    /// `loop var = lo .. hi { … }` (step 1).
    pub fn loop_(&mut self, var: &str, lo: impl Into<Expr>, hi: impl Into<Expr>, body: impl FnOnce(&mut BlockBuilder)) {
        self.loop_step(var, lo, hi, 1.0, body)
    }

    /// `loop var = lo .. hi step s { … }`.
    pub fn loop_step(
        &mut self,
        var: &str,
        lo: impl Into<Expr>,
        hi: impl Into<Expr>,
        step: impl Into<Expr>,
        body: impl FnOnce(&mut BlockBuilder),
    ) {
        // Pre-order: allocate the loop's id before its children's.
        let id = self.prog.fresh_stmt_id();
        let label = self.pending_label.take();
        let mut bb = BlockBuilder { prog: self.prog, stmts: Vec::new(), pending_label: None };
        body(&mut bb);
        let body = Block { stmts: bb.stmts };
        self.stmts.push(Stmt {
            id,
            label,
            kind: StmtKind::Loop {
                var: var.to_string(),
                lo: lo.into(),
                hi: hi.into(),
                step: step.into(),
                parallel: false,
                body,
            },
        });
    }

    /// `parloop var = lo .. hi { … }` — a parallel counted loop whose
    /// iterations may run concurrently across cores.
    pub fn parloop(
        &mut self,
        var: &str,
        lo: impl Into<Expr>,
        hi: impl Into<Expr>,
        body: impl FnOnce(&mut BlockBuilder),
    ) {
        let id = self.prog.fresh_stmt_id();
        let label = self.pending_label.take();
        let mut bb = BlockBuilder { prog: self.prog, stmts: Vec::new(), pending_label: None };
        body(&mut bb);
        self.stmts.push(Stmt {
            id,
            label,
            kind: StmtKind::Loop {
                var: var.to_string(),
                lo: lo.into(),
                hi: hi.into(),
                step: Expr::Num(1.0),
                parallel: true,
                body: Block { stmts: bb.stmts },
            },
        });
    }

    /// `while trips(e) { … }`.
    pub fn while_(&mut self, trips: impl Into<Expr>, body: impl FnOnce(&mut BlockBuilder)) {
        let id = self.prog.fresh_stmt_id();
        let label = self.pending_label.take();
        let mut bb = BlockBuilder { prog: self.prog, stmts: Vec::new(), pending_label: None };
        body(&mut bb);
        self.stmts.push(Stmt {
            id,
            label,
            kind: StmtKind::While { trips: trips.into(), body: Block { stmts: bb.stmts } },
        });
    }

    /// Multi-arm branch; see [`BranchBuilder`].
    pub fn branch(&mut self, build: impl FnOnce(&mut BranchBuilder)) {
        let id = self.prog.fresh_stmt_id();
        let label = self.pending_label.take();
        let mut br = BranchBuilder { prog: self.prog, arms: Vec::new(), else_body: None };
        build(&mut br);
        assert!(!br.arms.is_empty() || br.else_body.is_some(), "branch must have at least one arm");
        self.stmts.push(Stmt { id, label, kind: StmtKind::Branch { arms: br.arms, else_body: br.else_body } });
    }

    /// Two-way probabilistic branch convenience: `if prob(p) { then } else { els }`.
    pub fn if_prob(
        &mut self,
        p: impl Into<Expr>,
        then_body: impl FnOnce(&mut BlockBuilder),
        else_body: impl FnOnce(&mut BlockBuilder),
    ) {
        let p = p.into();
        self.branch(|br| {
            br.arm_prob(p.clone(), then_body);
            br.else_(else_body);
        });
    }

    /// One-way probabilistic branch: `if prob(p) { then }`.
    pub fn when_prob(&mut self, p: impl Into<Expr>, then_body: impl FnOnce(&mut BlockBuilder)) {
        let p = p.into();
        self.branch(|br| {
            br.arm_prob(p, then_body);
        });
    }

    /// `call func(args…)`.
    pub fn call(&mut self, func: &str, args: &[Expr]) {
        self.push(StmtKind::Call { func: func.to_string(), args: args.to_vec() });
    }

    /// `lib func(calls, work)`.
    pub fn lib(&mut self, func: &str, calls: impl Into<Expr>, work: impl Into<Expr>) {
        self.push(StmtKind::LibCall { func: func.to_string(), calls: calls.into(), work: work.into() });
    }

    /// `return prob(p)`.
    pub fn ret(&mut self, prob: impl Into<Expr>) {
        self.push(StmtKind::Return { prob: prob.into() });
    }

    /// `break prob(p)`.
    pub fn brk(&mut self, prob: impl Into<Expr>) {
        self.push(StmtKind::Break { prob: prob.into() });
    }

    /// `continue prob(p)`.
    pub fn cont(&mut self, prob: impl Into<Expr>) {
        self.push(StmtKind::Continue { prob: prob.into() });
    }
}

/// Builder for branch arms.
pub struct BranchBuilder<'a> {
    prog: &'a mut Program,
    arms: Vec<BranchArm>,
    else_body: Option<Block>,
}

impl<'a> BranchBuilder<'a> {
    /// Probabilistic arm: `case prob(p) { … }`.
    pub fn arm_prob(&mut self, p: impl Into<Expr>, body: impl FnOnce(&mut BlockBuilder)) -> &mut Self {
        let mut bb = BlockBuilder { prog: self.prog, stmts: Vec::new(), pending_label: None };
        body(&mut bb);
        self.arms.push(BranchArm { cond: Cond::Prob(p.into()), body: Block { stmts: bb.stmts } });
        self
    }

    /// Deterministic arm: `case (lhs op rhs) { … }`.
    pub fn arm_cmp(
        &mut self,
        lhs: impl Into<Expr>,
        op: CmpOp,
        rhs: impl Into<Expr>,
        body: impl FnOnce(&mut BlockBuilder),
    ) -> &mut Self {
        let mut bb = BlockBuilder { prog: self.prog, stmts: Vec::new(), pending_label: None };
        body(&mut bb);
        self.arms.push(BranchArm {
            cond: Cond::Cmp { lhs: lhs.into(), op, rhs: rhs.into() },
            body: Block { stmts: bb.stmts },
        });
        self
    }

    /// Fall-through arm: `default { … }`.
    pub fn else_(&mut self, body: impl FnOnce(&mut BlockBuilder)) -> &mut Self {
        let mut bb = BlockBuilder { prog: self.prog, stmts: Vec::new(), pending_label: None };
        body(&mut bb);
        self.else_body = Some(Block { stmts: bb.stmts });
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;
    use crate::printer::print;

    #[test]
    fn builder_matches_parser_output() {
        let mut pb = ProgramBuilder::new();
        pb.func("main", &[], |b| {
            b.let_("n", "N");
            b.labeled("outer").loop_("i", 0, "n", |b| {
                b.comp(Ops::new().flops(4).iops(2).loads(3).stores(1));
                b.if_prob(0.3, |b| b.call("foo", &[Expr::var("n")]), |b| b.comp(Ops::new().flops(1)));
            });
        });
        pb.func("foo", &["m"], |b| {
            b.loop_step("j", 0, "m", 2, |b| {
                b.comp(Ops::new().flops(8).loads(2).stores(1));
            });
        });
        let built = pb.finish();

        let parsed = parse(&print(&built)).unwrap();
        assert_eq!(built, parsed);
    }

    #[test]
    fn preorder_ids_from_builder() {
        let mut pb = ProgramBuilder::new();
        pb.func("main", &[], |b| {
            b.loop_("i", 0, 4, |b| {
                b.comp(Ops::new().flops(1));
            });
            b.comp(Ops::new().iops(1));
        });
        let p = pb.finish();
        let main = p.main().unwrap();
        assert_eq!(main.body.stmts[0].id, StmtId(0));
        match &main.body.stmts[0].kind {
            StmtKind::Loop { body, .. } => assert_eq!(body.stmts[0].id, StmtId(1)),
            _ => unreachable!(),
        }
        assert_eq!(main.body.stmts[1].id, StmtId(2));
    }

    #[test]
    #[should_panic(expected = "duplicate function")]
    fn duplicate_function_panics() {
        let mut pb = ProgramBuilder::new();
        pb.func("main", &[], |_| {});
        pb.func("main", &[], |_| {});
    }

    #[test]
    #[should_panic(expected = "at least one arm")]
    fn empty_branch_panics() {
        let mut pb = ProgramBuilder::new();
        pb.func("main", &[], |b| {
            b.branch(|_| {});
        });
    }

    #[test]
    fn switch_style_branch() {
        let mut pb = ProgramBuilder::new();
        pb.func("main", &[], |b| {
            b.branch(|br| {
                br.arm_prob(0.2, |b| b.brk(1.0));
                br.arm_cmp("i", CmpOp::Lt, 10, |b| b.cont(1.0));
                br.else_(|b| b.ret(0.5));
            });
        });
        let p = pb.finish();
        match &p.main().unwrap().body.stmts[0].kind {
            StmtKind::Branch { arms, else_body } => {
                assert_eq!(arms.len(), 2);
                assert!(else_body.is_some());
            }
            _ => unreachable!(),
        }
    }
}
