//! Static instruction counting — the *code leanness* denominator.
//!
//! The paper's hot-spot selection constrains the fraction of *static*
//! instructions covered by the selection (code leanness, Section V-B). This
//! module computes a static instruction weight per statement without any
//! runtime information: operation-count expressions are evaluated with
//! unknown variables defaulting to 1, so a `comp { flops: 4 }` weighs 4
//! regardless of how many loop iterations surround it.

use crate::ast::{Program, Stmt, StmtId, StmtKind};
use crate::expr::Env;
use std::collections::HashMap;

/// Per-statement static instruction weights plus the program total.
#[derive(Debug, Clone)]
pub struct StaticCounts {
    per_stmt: HashMap<StmtId, f64>,
    total: f64,
}

impl StaticCounts {
    /// Weight of one statement (0 if unknown).
    pub fn get(&self, id: StmtId) -> f64 {
        self.per_stmt.get(&id).copied().unwrap_or(0.0)
    }

    /// Sum of all statement weights.
    pub fn total(&self) -> f64 {
        self.total
    }

    /// Static weight of a *block-rooted subtree*: the statement and all of
    /// its lexical descendants.
    pub fn subtree(&self, prog: &Program, root: StmtId) -> f64 {
        let mut sum = 0.0;
        let mut stack: Vec<&Stmt> = Vec::new();
        prog.visit_stmts(|_, s| {
            if s.id == root {
                stack.push(s);
            }
        });
        let Some(root_stmt) = stack.pop() else { return 0.0 };
        collect_subtree(root_stmt, &mut |s| sum += self.get(s.id));
        sum
    }
}

fn collect_subtree<'a>(s: &'a Stmt, f: &mut impl FnMut(&'a Stmt)) {
    f(s);
    match &s.kind {
        StmtKind::Loop { body, .. } | StmtKind::While { body, .. } => {
            for c in &body.stmts {
                collect_subtree(c, f);
            }
        }
        StmtKind::Branch { arms, else_body } => {
            for arm in arms {
                for c in &arm.body.stmts {
                    collect_subtree(c, f);
                }
            }
            if let Some(e) = else_body {
                for c in &e.stmts {
                    collect_subtree(c, f);
                }
            }
        }
        _ => {}
    }
}

/// Compute static instruction weights for every statement.
///
/// * `comp` blocks weigh `flops + iops + loads + stores` with unbound
///   variables defaulting to 1 (a per-element body weighs its per-element
///   op count).
/// * `lib` calls weigh a nominal 8 instructions — opaque code whose size is
///   unknown but nonzero.
/// * control statements (`loop`, `if`, `call`, …) weigh 1 each, matching a
///   branch/jump instruction.
pub fn static_counts(prog: &Program) -> StaticCounts {
    let env = Env::new();
    let mut per_stmt = HashMap::new();
    let mut total = 0.0;
    prog.visit_stmts(|_, s| {
        let w = match &s.kind {
            StmtKind::Comp(ops) => {
                let f = ops.flops.eval_or_default(&env, 1.0).max(0.0);
                let i = ops.iops.eval_or_default(&env, 1.0).max(0.0);
                let l = ops.loads.eval_or_default(&env, 1.0).max(0.0);
                let st = ops.stores.eval_or_default(&env, 1.0).max(0.0);
                (f + i + l + st).max(1.0)
            }
            StmtKind::LibCall { .. } => 8.0,
            _ => 1.0,
        };
        per_stmt.insert(s.id, w);
        total += w;
    });
    StaticCounts { per_stmt, total }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    #[test]
    fn comp_weights_sum_ops() {
        let p = parse("func main() { comp { flops: 4, iops: 2, loads: 3, stores: 1 } }").unwrap();
        let c = static_counts(&p);
        assert_eq!(c.total(), 10.0);
    }

    #[test]
    fn unbound_vars_default_to_one() {
        let p = parse("func main() { comp { flops: n * 4 } }").unwrap();
        let c = static_counts(&p);
        // n defaults to 1 → 4 flops, others 0 → weight 4.
        assert_eq!(c.total(), 4.0);
    }

    #[test]
    fn control_statements_weigh_one() {
        let p = parse("func main() { loop i = 0 .. 100 { comp { flops: 2 } } }").unwrap();
        let c = static_counts(&p);
        // loop = 1, comp = 2 → 3; iteration count must NOT inflate this.
        assert_eq!(c.total(), 3.0);
    }

    #[test]
    fn lib_calls_weigh_nominal_eight() {
        let p = parse("func main() { lib exp(1000) }").unwrap();
        assert_eq!(static_counts(&p).total(), 8.0);
    }

    #[test]
    fn subtree_sums_descendants() {
        let p = parse(
            "func main() { loop i = 0 .. 10 { comp { flops: 2 } if prob(0.5) { comp { flops: 3 } } } comp { flops: 7 } }",
        )
        .unwrap();
        let c = static_counts(&p);
        let loop_id = p.main().unwrap().body.stmts[0].id;
        // loop(1) + comp(2) + if(1) + comp(3) = 7
        assert_eq!(c.subtree(&p, loop_id), 7.0);
        assert_eq!(c.total(), 14.0);
    }

    #[test]
    fn empty_comp_weighs_at_least_one() {
        let p = parse("func main() { comp { flops: 0 } }").unwrap();
        assert_eq!(static_counts(&p).total(), 1.0);
    }
}
