//! Arithmetic expression language used throughout code skeletons.
//!
//! Skeleton expressions appear in loop bounds, branch probabilities,
//! operation counts, and data sizes. They are deliberately tiny: numbers,
//! variables, the four arithmetic operators plus `%`, unary negation, and a
//! small set of pure intrinsics (`min`, `max`, `ceil`, `floor`, `log2`,
//! `pow`, `abs`, `sqrt`).
//!
//! Expressions are evaluated against an [`Env`] mapping variable names to
//! [`Value`]s. A value is either a concrete scalar or a *range* — the
//! symbolic value of an un-iterated loop induction variable. Ranges evaluate
//! to their expected (mid-point) value in arithmetic context; comparison
//! probabilities over ranges are handled by the BET builder.

use crate::error::EvalError;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;

/// Binary arithmetic operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum BinOp {
    Add,
    Sub,
    Mul,
    Div,
    Mod,
}

impl BinOp {
    /// Operator token as written in skeleton source.
    pub fn symbol(self) -> &'static str {
        match self {
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
            BinOp::Mod => "%",
        }
    }

    /// Binding strength for the pretty-printer / parser (higher binds tighter).
    pub fn precedence(self) -> u8 {
        match self {
            BinOp::Add | BinOp::Sub => 1,
            BinOp::Mul | BinOp::Div | BinOp::Mod => 2,
        }
    }
}

/// Comparison operators usable in deterministic branch conditions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CmpOp {
    Lt,
    Le,
    Gt,
    Ge,
    Eq,
    Ne,
}

impl CmpOp {
    /// Operator token as written in skeleton source.
    pub fn symbol(self) -> &'static str {
        match self {
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
            CmpOp::Eq => "==",
            CmpOp::Ne => "!=",
        }
    }

    /// Apply the comparison to two concrete scalars.
    pub fn apply(self, lhs: f64, rhs: f64) -> bool {
        match self {
            CmpOp::Lt => lhs < rhs,
            CmpOp::Le => lhs <= rhs,
            CmpOp::Gt => lhs > rhs,
            CmpOp::Ge => lhs >= rhs,
            CmpOp::Eq => lhs == rhs,
            CmpOp::Ne => lhs != rhs,
        }
    }
}

/// A skeleton arithmetic expression.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Expr {
    /// Numeric literal.
    Num(f64),
    /// Variable reference, resolved against the evaluation environment.
    Var(String),
    /// Binary operation.
    Binary(Box<Expr>, BinOp, Box<Expr>),
    /// Unary negation.
    Neg(Box<Expr>),
    /// Intrinsic call: `min`, `max`, `ceil`, `floor`, `log2`, `pow`, `abs`, `sqrt`.
    Call(String, Vec<Expr>),
}

impl Expr {
    /// Shorthand for a numeric literal.
    pub fn num(v: f64) -> Expr {
        Expr::Num(v)
    }

    /// Shorthand for a variable reference.
    pub fn var(name: impl Into<String>) -> Expr {
        Expr::Var(name.into())
    }

    /// `self + rhs`
    #[allow(clippy::should_implement_trait)] // DSL builders, deliberately by-value without operator sugar
    pub fn add(self, rhs: Expr) -> Expr {
        Expr::Binary(Box::new(self), BinOp::Add, Box::new(rhs))
    }

    /// `self - rhs`
    #[allow(clippy::should_implement_trait)]
    pub fn sub(self, rhs: Expr) -> Expr {
        Expr::Binary(Box::new(self), BinOp::Sub, Box::new(rhs))
    }

    /// `self * rhs`
    #[allow(clippy::should_implement_trait)]
    pub fn mul(self, rhs: Expr) -> Expr {
        Expr::Binary(Box::new(self), BinOp::Mul, Box::new(rhs))
    }

    /// `self / rhs`
    #[allow(clippy::should_implement_trait)]
    pub fn div(self, rhs: Expr) -> Expr {
        Expr::Binary(Box::new(self), BinOp::Div, Box::new(rhs))
    }

    /// True if the expression is the literal `0`.
    pub fn is_zero(&self) -> bool {
        matches!(self, Expr::Num(n) if *n == 0.0)
    }

    /// Collect the set of free variable names referenced by the expression.
    pub fn free_vars(&self, out: &mut Vec<String>) {
        match self {
            Expr::Num(_) => {}
            Expr::Var(v) => {
                if !out.iter().any(|x| x == v) {
                    out.push(v.clone());
                }
            }
            Expr::Binary(l, _, r) => {
                l.free_vars(out);
                r.free_vars(out);
            }
            Expr::Neg(e) => e.free_vars(out),
            Expr::Call(_, args) => {
                for a in args {
                    a.free_vars(out);
                }
            }
        }
    }

    /// Evaluate against an environment, using expected values for ranges.
    pub fn eval(&self, env: &Env) -> Result<f64, EvalError> {
        let v = match self {
            Expr::Num(n) => *n,
            Expr::Var(name) => match env.get(name) {
                Some(v) => v.expected(),
                None => return Err(EvalError::UnboundVariable(name.clone())),
            },
            Expr::Binary(l, op, r) => {
                let l = l.eval(env)?;
                let r = r.eval(env)?;
                match op {
                    BinOp::Add => l + r,
                    BinOp::Sub => l - r,
                    BinOp::Mul => l * r,
                    BinOp::Div => {
                        if r == 0.0 {
                            return Err(EvalError::DivisionByZero);
                        }
                        l / r
                    }
                    BinOp::Mod => {
                        if r == 0.0 {
                            return Err(EvalError::DivisionByZero);
                        }
                        l % r
                    }
                }
            }
            Expr::Neg(e) => -e.eval(env)?,
            Expr::Call(name, args) => eval_intrinsic(name, args, env)?,
        };
        if v.is_finite() {
            Ok(v)
        } else {
            Err(EvalError::NotFinite)
        }
    }

    /// Recursively fold constant subexpressions: `2 * 3 + n` becomes
    /// `6 + n`, `min(4, 9)` becomes `4`, and additive/multiplicative
    /// identities are dropped (`x + 0` → `x`, `x * 1` → `x`). Division and
    /// modulo by a constant zero are left unfolded so evaluation still
    /// reports the error.
    pub fn simplify(&self) -> Expr {
        match self {
            Expr::Num(_) | Expr::Var(_) => self.clone(),
            Expr::Neg(inner) => match inner.simplify() {
                Expr::Num(n) => Expr::Num(-n),
                e => Expr::Neg(Box::new(e)),
            },
            Expr::Binary(l, op, r) => {
                let l = l.simplify();
                let r = r.simplify();
                if let (Expr::Num(a), Expr::Num(b)) = (&l, &r) {
                    let folded = match op {
                        BinOp::Add => Some(a + b),
                        BinOp::Sub => Some(a - b),
                        BinOp::Mul => Some(a * b),
                        BinOp::Div if *b != 0.0 => Some(a / b),
                        BinOp::Mod if *b != 0.0 => Some(a % b),
                        _ => None,
                    };
                    if let Some(v) = folded {
                        if v.is_finite() {
                            return Expr::Num(v);
                        }
                    }
                }
                // identities
                match (op, &l, &r) {
                    (BinOp::Add, Expr::Num(z), e) | (BinOp::Add, e, Expr::Num(z)) if *z == 0.0 => return e.clone(),
                    (BinOp::Sub, e, Expr::Num(z)) if *z == 0.0 => return e.clone(),
                    (BinOp::Mul, Expr::Num(one), e) | (BinOp::Mul, e, Expr::Num(one)) if *one == 1.0 => {
                        return e.clone()
                    }
                    (BinOp::Div, e, Expr::Num(one)) if *one == 1.0 => return e.clone(),
                    (BinOp::Mul, Expr::Num(z), _) | (BinOp::Mul, _, Expr::Num(z)) if *z == 0.0 => {
                        return Expr::Num(0.0)
                    }
                    _ => {}
                }
                Expr::Binary(Box::new(l), *op, Box::new(r))
            }
            Expr::Call(name, args) => {
                let args: Vec<Expr> = args.iter().map(Expr::simplify).collect();
                if args.iter().all(|a| matches!(a, Expr::Num(_))) {
                    let folded = Expr::Call(name.clone(), args.clone());
                    if let Ok(v) = folded.eval(&Env::new()) {
                        return Expr::Num(v);
                    }
                }
                Expr::Call(name.clone(), args)
            }
        }
    }

    /// Evaluate with every unbound variable defaulting to `default`.
    ///
    /// Used for *static* op counting where runtime values are unknown; the
    /// paper's leanness criterion only needs source-level magnitudes.
    pub fn eval_or_default(&self, env: &Env, default: f64) -> f64 {
        match self.eval(env) {
            Ok(v) => v,
            Err(_) => {
                let mut vars = Vec::new();
                self.free_vars(&mut vars);
                let mut patched = env.clone();
                for v in vars {
                    patched.entry(v).or_insert(Value::Scalar(default));
                }
                self.eval(&patched).unwrap_or(default)
            }
        }
    }
}

fn eval_intrinsic(name: &str, args: &[Expr], env: &Env) -> Result<f64, EvalError> {
    let arity = |n: usize| -> Result<Vec<f64>, EvalError> {
        if args.len() != n {
            return Err(EvalError::BadArity { name: name.to_string(), expected: n, got: args.len() });
        }
        args.iter().map(|a| a.eval(env)).collect()
    };
    Ok(match name {
        "min" => {
            let a = arity(2)?;
            a[0].min(a[1])
        }
        "max" => {
            let a = arity(2)?;
            a[0].max(a[1])
        }
        "pow" => {
            let a = arity(2)?;
            a[0].powf(a[1])
        }
        "ceil" => arity(1)?[0].ceil(),
        "floor" => arity(1)?[0].floor(),
        "abs" => arity(1)?[0].abs(),
        "sqrt" => arity(1)?[0].sqrt(),
        "log2" => arity(1)?[0].log2(),
        _ => return Err(EvalError::UnknownIntrinsic(name.to_string())),
    })
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fn go(e: &Expr, parent_prec: u8, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match e {
                Expr::Num(n) => {
                    if n.fract() == 0.0 && n.abs() < 1e15 {
                        write!(f, "{}", *n as i64)
                    } else {
                        write!(f, "{n}")
                    }
                }
                Expr::Var(v) => write!(f, "{v}"),
                Expr::Binary(l, op, r) => {
                    let prec = op.precedence();
                    let need_paren = prec < parent_prec;
                    if need_paren {
                        write!(f, "(")?;
                    }
                    go(l, prec, f)?;
                    write!(f, " {} ", op.symbol())?;
                    // Right side needs parens at equal precedence since all ops
                    // are left-associative.
                    go(r, prec + 1, f)?;
                    if need_paren {
                        write!(f, ")")?;
                    }
                    Ok(())
                }
                Expr::Neg(inner) => {
                    write!(f, "-")?;
                    go(inner, 3, f)
                }
                Expr::Call(name, args) => {
                    write!(f, "{name}(")?;
                    for (i, a) in args.iter().enumerate() {
                        if i > 0 {
                            write!(f, ", ")?;
                        }
                        go(a, 0, f)?;
                    }
                    write!(f, ")")
                }
            }
        }
        go(self, 0, f)
    }
}

/// Runtime value of a context variable.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Value {
    /// A concrete scalar.
    Scalar(f64),
    /// The symbolic value of a loop induction variable spanning
    /// `lo, lo+step, …, < hi` (exclusive upper bound, `step > 0`).
    Range { lo: f64, hi: f64, step: f64 },
}

impl Value {
    /// Expected value: the scalar itself, or the mid-point of a range.
    pub fn expected(self) -> f64 {
        match self {
            Value::Scalar(v) => v,
            Value::Range { lo, hi, .. } => {
                if hi <= lo {
                    lo
                } else {
                    (lo + hi) / 2.0
                }
            }
        }
    }

    /// Number of iterations a range value represents (1 for scalars).
    pub fn trip_count(self) -> f64 {
        match self {
            Value::Scalar(_) => 1.0,
            Value::Range { lo, hi, step } => {
                if hi <= lo || step <= 0.0 {
                    0.0
                } else {
                    ((hi - lo) / step).ceil()
                }
            }
        }
    }
}

/// Evaluation environment: variable name → value.
pub type Env = HashMap<String, Value>;

/// Build an [`Env`] from `(name, scalar)` pairs.
pub fn env_from<I, S>(pairs: I) -> Env
where
    I: IntoIterator<Item = (S, f64)>,
    S: Into<String>,
{
    pairs.into_iter().map(|(k, v)| (k.into(), Value::Scalar(v))).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn env(pairs: &[(&str, f64)]) -> Env {
        env_from(pairs.iter().map(|&(k, v)| (k, v)))
    }

    #[test]
    fn literal_eval() {
        assert_eq!(Expr::num(3.5).eval(&Env::new()).unwrap(), 3.5);
    }

    #[test]
    fn variable_lookup_and_missing() {
        let e = Expr::var("n");
        assert_eq!(e.eval(&env(&[("n", 7.0)])).unwrap(), 7.0);
        assert_eq!(e.eval(&Env::new()), Err(EvalError::UnboundVariable("n".into())));
    }

    #[test]
    fn arithmetic_precedence_semantics() {
        // 2 + 3 * 4 = 14
        let e = Expr::num(2.0).add(Expr::num(3.0).mul(Expr::num(4.0)));
        assert_eq!(e.eval(&Env::new()).unwrap(), 14.0);
    }

    #[test]
    fn division_by_zero_is_error() {
        let e = Expr::num(1.0).div(Expr::num(0.0));
        assert_eq!(e.eval(&Env::new()), Err(EvalError::DivisionByZero));
    }

    #[test]
    fn modulo() {
        let e = Expr::Binary(Box::new(Expr::num(7.0)), BinOp::Mod, Box::new(Expr::num(4.0)));
        assert_eq!(e.eval(&Env::new()).unwrap(), 3.0);
    }

    #[test]
    fn intrinsics() {
        let ctx = Env::new();
        assert_eq!(Expr::Call("min".into(), vec![Expr::num(3.0), Expr::num(5.0)]).eval(&ctx).unwrap(), 3.0);
        assert_eq!(Expr::Call("max".into(), vec![Expr::num(3.0), Expr::num(5.0)]).eval(&ctx).unwrap(), 5.0);
        assert_eq!(Expr::Call("ceil".into(), vec![Expr::num(2.1)]).eval(&ctx).unwrap(), 3.0);
        assert_eq!(Expr::Call("floor".into(), vec![Expr::num(2.9)]).eval(&ctx).unwrap(), 2.0);
        assert_eq!(Expr::Call("pow".into(), vec![Expr::num(2.0), Expr::num(10.0)]).eval(&ctx).unwrap(), 1024.0);
        assert_eq!(Expr::Call("log2".into(), vec![Expr::num(8.0)]).eval(&ctx).unwrap(), 3.0);
        assert_eq!(Expr::Call("abs".into(), vec![Expr::Neg(Box::new(Expr::num(4.0)))]).eval(&ctx).unwrap(), 4.0);
        assert_eq!(Expr::Call("sqrt".into(), vec![Expr::num(9.0)]).eval(&ctx).unwrap(), 3.0);
    }

    #[test]
    fn intrinsic_arity_error() {
        let e = Expr::Call("min".into(), vec![Expr::num(1.0)]);
        assert!(matches!(e.eval(&Env::new()), Err(EvalError::BadArity { .. })));
    }

    #[test]
    fn unknown_intrinsic_error() {
        let e = Expr::Call("frobnicate".into(), vec![]);
        assert!(matches!(e.eval(&Env::new()), Err(EvalError::UnknownIntrinsic(_))));
    }

    #[test]
    fn range_value_expected_and_trips() {
        let r = Value::Range { lo: 0.0, hi: 10.0, step: 1.0 };
        assert_eq!(r.expected(), 5.0);
        assert_eq!(r.trip_count(), 10.0);
        let empty = Value::Range { lo: 5.0, hi: 5.0, step: 1.0 };
        assert_eq!(empty.trip_count(), 0.0);
        let strided = Value::Range { lo: 0.0, hi: 10.0, step: 3.0 };
        assert_eq!(strided.trip_count(), 4.0); // 0,3,6,9
    }

    #[test]
    fn eval_uses_range_expected_value() {
        let mut env = Env::new();
        env.insert("i".into(), Value::Range { lo: 0.0, hi: 100.0, step: 1.0 });
        assert_eq!(Expr::var("i").eval(&env).unwrap(), 50.0);
    }

    #[test]
    fn eval_or_default_fills_unbound() {
        let e = Expr::var("n").mul(Expr::num(3.0));
        assert_eq!(e.eval_or_default(&Env::new(), 1.0), 3.0);
        assert_eq!(e.eval_or_default(&env(&[("n", 5.0)]), 1.0), 15.0);
    }

    #[test]
    fn free_vars_dedup() {
        let e = Expr::var("a").add(Expr::var("b").mul(Expr::var("a")));
        let mut vars = Vec::new();
        e.free_vars(&mut vars);
        assert_eq!(vars, vec!["a".to_string(), "b".to_string()]);
    }

    #[test]
    fn display_round_trips_precedence() {
        // (2 + 3) * 4 must print parentheses.
        let e = Expr::num(2.0).add(Expr::num(3.0)).mul(Expr::num(4.0));
        assert_eq!(e.to_string(), "(2 + 3) * 4");
        // 2 + 3 * 4 must not.
        let e2 = Expr::num(2.0).add(Expr::num(3.0).mul(Expr::num(4.0)));
        assert_eq!(e2.to_string(), "2 + 3 * 4");
        // Left-assoc subtraction: (a - b) - c prints flat, a - (b - c) keeps parens.
        let l = Expr::var("a").sub(Expr::var("b")).sub(Expr::var("c"));
        assert_eq!(l.to_string(), "a - b - c");
        let r = Expr::var("a").sub(Expr::var("b").sub(Expr::var("c")));
        assert_eq!(r.to_string(), "a - (b - c)");
    }

    #[test]
    fn simplify_folds_constants() {
        let e = Expr::num(2.0).mul(Expr::num(3.0)).add(Expr::var("n"));
        assert_eq!(e.simplify(), Expr::num(6.0).add(Expr::var("n")));
        let full = Expr::num(10.0).sub(Expr::num(4.0)).div(Expr::num(3.0));
        assert_eq!(full.simplify(), Expr::num(2.0));
        let call = Expr::Call("min".into(), vec![Expr::num(4.0), Expr::num(9.0)]);
        assert_eq!(call.simplify(), Expr::num(4.0));
    }

    #[test]
    fn simplify_identities() {
        assert_eq!(Expr::var("x").add(Expr::num(0.0)).simplify(), Expr::var("x"));
        assert_eq!(Expr::var("x").mul(Expr::num(1.0)).simplify(), Expr::var("x"));
        assert_eq!(Expr::var("x").mul(Expr::num(0.0)).simplify(), Expr::num(0.0));
        assert_eq!(Expr::var("x").sub(Expr::num(0.0)).simplify(), Expr::var("x"));
        assert_eq!(Expr::var("x").div(Expr::num(1.0)).simplify(), Expr::var("x"));
    }

    #[test]
    fn simplify_preserves_division_by_zero() {
        let e = Expr::num(1.0).div(Expr::num(0.0));
        assert_eq!(e.simplify(), e); // still errors at eval time
        assert!(e.simplify().eval(&Env::new()).is_err());
    }

    #[test]
    fn simplify_preserves_value_on_mixed_exprs() {
        let e = Expr::num(2.0).mul(Expr::var("n")).add(Expr::num(3.0).mul(Expr::num(4.0))).sub(Expr::num(0.0));
        let env = env_from([("n", 5.0)]);
        assert_eq!(e.eval(&env).unwrap(), e.simplify().eval(&env).unwrap());
    }

    #[test]
    fn cmp_ops() {
        assert!(CmpOp::Lt.apply(1.0, 2.0));
        assert!(CmpOp::Le.apply(2.0, 2.0));
        assert!(CmpOp::Gt.apply(3.0, 2.0));
        assert!(CmpOp::Ge.apply(2.0, 2.0));
        assert!(CmpOp::Eq.apply(2.0, 2.0));
        assert!(CmpOp::Ne.apply(1.0, 2.0));
    }
}
