//! # xflow-skeleton — the code-skeleton workload modeling language
//!
//! This crate implements the SKOPE-style *code skeleton* front-end of the
//! xflow framework (IPDPS'14, "Analytically Modeling Application Execution
//! for Software-Hardware Co-Design").
//!
//! A code skeleton preserves the control flow of an application — functions,
//! loops, branches — but replaces straight-line instruction sequences with
//! performance characteristics: floating/fixed point operation counts,
//! loads/stores, and element sizes. Data-dependent control flow (uncertain
//! loop bounds, branch outcomes) is annotated with statistics obtained from
//! one profiled run on a *local* machine; the resulting skeleton is
//! hardware-independent and can be analyzed against any hardware model.
//!
//! A parsed skeleton [`Program`] is the paper's **Block Skeleton Tree
//! (BST)**: every statement carries a stable [`StmtId`] and encapsulating
//! statements own their children. The input-dependent execution model (the
//! Bayesian Execution Tree) is built from the BST by the `xflow-bet` crate.
//!
//! ## Quick example
//!
//! ```
//! let src = r#"
//! func main() {
//!     let n = N
//!     @kernel: loop i = 0 .. n {
//!         comp { flops: 4, loads: 2, stores: 1 }
//!         if prob(0.125) { call fixup(i) }
//!     }
//! }
//! func fixup(i) {
//!     comp { flops: 16, loads: 4 }
//! }
//! "#;
//! let prog = xflow_skeleton::parse(src).unwrap();
//! assert!(xflow_skeleton::validate(&prog).is_empty());
//! assert_eq!(prog.source_statement_count(), 6);
//! ```

pub mod ast;
pub mod builder;
pub mod count;
pub mod error;
pub mod expr;
pub mod lexer;
pub mod parser;
pub mod printer;
pub mod validate;

pub use ast::{Block, BranchArm, Cond, FuncId, Function, OpStats, Program, Stmt, StmtId, StmtKind};
pub use builder::{Ops, ProgramBuilder};
pub use count::{static_counts, StaticCounts};
pub use error::{EvalError, ParseError, Span, ValidationError};
pub use expr::{env_from, BinOp, CmpOp, Env, Expr, Value};
pub use parser::parse;
pub use printer::print;
pub use validate::validate;

/// Wire-format version of this crate's serializable artifacts
/// ([`Program`], [`Expr`], and friends).
///
/// Bump whenever a serialized layout changes shape; content-addressed caches
/// fold this into their keys so stale artifacts are never deserialized.
pub fn schema_version() -> u32 {
    1
}
