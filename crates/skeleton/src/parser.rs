//! Recursive-descent parser for skeleton source text.
//!
//! Grammar (keywords are contextual identifiers):
//!
//! ```text
//! program  := funcdef*
//! funcdef  := "func" IDENT "(" [IDENT ("," IDENT)*] ")" block
//! block    := "{" stmt* "}"
//! stmt     := ["@" IDENT ":"] core [";"]
//! core     := "comp" "{" [field ":" expr ("," field ":" expr)*] "}"
//!           | "let" IDENT "=" expr
//!           | "loop" IDENT "=" expr ".." expr ["step" expr] block
//!           | "while" "trips" "(" expr ")" block
//!           | "if" cond block ["else" (ifstmt | block)]
//!           | "switch" "{" ("case" cond block)* ["default" block] "}"
//!           | "call" IDENT "(" [expr ("," expr)*] ")"
//!           | "lib" IDENT "(" expr ["," expr] ")"
//!           | ("return" | "break" | "continue") ["prob" "(" expr ")"]
//! cond     := "prob" "(" expr ")" | "(" expr cmpop expr ")"
//! field    := "flops" | "iops" | "loads" | "stores" | "divs" | "bytes"
//! ```

use crate::ast::*;
use crate::error::{ParseError, Span};
use crate::expr::{BinOp, CmpOp, Expr};
use crate::lexer::{lex, SpannedTok, Tok};

/// Parse skeleton source text into a [`Program`] (the BST).
pub fn parse(src: &str) -> Result<Program, ParseError> {
    let toks = lex(src)?;
    let mut p = Parser { toks, pos: 0, prog: Program::new() };
    while !p.at_eof() {
        let f = p.funcdef()?;
        let span = p.peek_span();
        p.prog.add_function(f).map_err(|m| ParseError::new(span, m))?;
    }
    if p.prog.functions.is_empty() {
        return Err(ParseError::new(Span::default(), "program contains no functions"));
    }
    Ok(p.prog)
}

struct Parser {
    toks: Vec<SpannedTok>,
    pos: usize,
    prog: Program,
}

impl Parser {
    fn peek(&self) -> &Tok {
        &self.toks[self.pos].tok
    }

    fn peek_span(&self) -> Span {
        self.toks[self.pos].span
    }

    fn at_eof(&self) -> bool {
        matches!(self.peek(), Tok::Eof)
    }

    fn bump(&mut self) -> Tok {
        let t = self.toks[self.pos].tok.clone();
        if self.pos + 1 < self.toks.len() {
            self.pos += 1;
        }
        t
    }

    fn expect(&mut self, want: &Tok) -> Result<(), ParseError> {
        if self.peek() == want {
            self.bump();
            Ok(())
        } else {
            Err(self.err(format!("expected {}, found {}", want.describe(), self.peek().describe())))
        }
    }

    fn err(&self, msg: impl Into<String>) -> ParseError {
        ParseError::new(self.peek_span(), msg)
    }

    fn ident(&mut self) -> Result<String, ParseError> {
        match self.peek().clone() {
            Tok::Ident(s) => {
                self.bump();
                Ok(s)
            }
            other => Err(self.err(format!("expected identifier, found {}", other.describe()))),
        }
    }

    /// True if the next token is the given contextual keyword.
    fn at_kw(&self, kw: &str) -> bool {
        matches!(self.peek(), Tok::Ident(s) if s == kw)
    }

    fn eat_kw(&mut self, kw: &str) -> bool {
        if self.at_kw(kw) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect_kw(&mut self, kw: &str) -> Result<(), ParseError> {
        if self.eat_kw(kw) {
            Ok(())
        } else {
            Err(self.err(format!("expected `{kw}`, found {}", self.peek().describe())))
        }
    }

    fn funcdef(&mut self) -> Result<Function, ParseError> {
        self.expect_kw("func")?;
        let name = self.ident()?;
        self.expect(&Tok::LParen)?;
        let mut params = Vec::new();
        if !matches!(self.peek(), Tok::RParen) {
            loop {
                params.push(self.ident()?);
                if !matches!(self.peek(), Tok::Comma) {
                    break;
                }
                self.bump();
            }
        }
        self.expect(&Tok::RParen)?;
        let body = self.block()?;
        Ok(Function { id: FuncId(0), name, params, body })
    }

    fn block(&mut self) -> Result<Block, ParseError> {
        self.expect(&Tok::LBrace)?;
        let mut stmts = Vec::new();
        while !matches!(self.peek(), Tok::RBrace) {
            if self.at_eof() {
                return Err(self.err("unterminated block: expected `}`"));
            }
            stmts.push(self.stmt()?);
        }
        self.bump(); // }
        Ok(Block { stmts })
    }

    fn stmt(&mut self) -> Result<Stmt, ParseError> {
        let label = if matches!(self.peek(), Tok::At) {
            self.bump();
            let l = self.ident()?;
            self.expect(&Tok::Colon)?;
            Some(l)
        } else {
            None
        };
        // Pre-order id allocation: parent ids precede children ids.
        let id = self.prog.fresh_stmt_id();
        let kind = self.stmt_kind()?;
        // optional trailing semicolon
        if matches!(self.peek(), Tok::Semi) {
            self.bump();
        }
        Ok(Stmt { id, label, kind })
    }

    fn stmt_kind(&mut self) -> Result<StmtKind, ParseError> {
        let kw = match self.peek().clone() {
            Tok::Ident(s) => s,
            other => return Err(self.err(format!("expected a statement, found {}", other.describe()))),
        };
        match kw.as_str() {
            "comp" => self.comp_stmt(),
            "let" => {
                self.bump();
                let var = self.ident()?;
                self.expect(&Tok::Assign)?;
                let value = self.expr()?;
                Ok(StmtKind::Let { var, value })
            }
            "loop" | "parloop" => {
                let parallel = kw == "parloop";
                self.bump();
                let var = self.ident()?;
                self.expect(&Tok::Assign)?;
                let lo = self.expr()?;
                self.expect(&Tok::DotDot)?;
                let hi = self.expr()?;
                let step = if self.eat_kw("step") { self.expr()? } else { Expr::Num(1.0) };
                let body = self.block()?;
                Ok(StmtKind::Loop { var, lo, hi, step, parallel, body })
            }
            "while" => {
                self.bump();
                self.expect_kw("trips")?;
                self.expect(&Tok::LParen)?;
                let trips = self.expr()?;
                self.expect(&Tok::RParen)?;
                let body = self.block()?;
                Ok(StmtKind::While { trips, body })
            }
            "if" => self.if_stmt(),
            "switch" => self.switch_stmt(),
            "call" => {
                self.bump();
                let func = self.ident()?;
                self.expect(&Tok::LParen)?;
                let mut args = Vec::new();
                if !matches!(self.peek(), Tok::RParen) {
                    loop {
                        args.push(self.expr()?);
                        if !matches!(self.peek(), Tok::Comma) {
                            break;
                        }
                        self.bump();
                    }
                }
                self.expect(&Tok::RParen)?;
                Ok(StmtKind::Call { func, args })
            }
            "lib" => {
                self.bump();
                let func = self.ident()?;
                self.expect(&Tok::LParen)?;
                let calls = self.expr()?;
                let work = if matches!(self.peek(), Tok::Comma) {
                    self.bump();
                    self.expr()?
                } else {
                    Expr::Num(1.0)
                };
                self.expect(&Tok::RParen)?;
                Ok(StmtKind::LibCall { func, calls, work })
            }
            "return" | "break" | "continue" => {
                self.bump();
                let prob = if self.at_kw("prob") {
                    self.bump();
                    self.expect(&Tok::LParen)?;
                    let e = self.expr()?;
                    self.expect(&Tok::RParen)?;
                    e
                } else {
                    Expr::Num(1.0)
                };
                Ok(match kw.as_str() {
                    "return" => StmtKind::Return { prob },
                    "break" => StmtKind::Break { prob },
                    _ => StmtKind::Continue { prob },
                })
            }
            other => Err(self.err(format!("unknown statement keyword `{other}`"))),
        }
    }

    fn comp_stmt(&mut self) -> Result<StmtKind, ParseError> {
        self.bump(); // comp
        self.expect(&Tok::LBrace)?;
        let mut ops = OpStats::default();
        while !matches!(self.peek(), Tok::RBrace) {
            let field = self.ident()?;
            self.expect(&Tok::Colon)?;
            let value = self.expr()?;
            match field.as_str() {
                "flops" => ops.flops = value,
                "iops" => ops.iops = value,
                "loads" => ops.loads = value,
                "stores" => ops.stores = value,
                "divs" => ops.divs = value,
                "bytes" => ops.dtype_bytes = value,
                other => {
                    return Err(
                        self.err(format!("unknown comp field `{other}` (expected flops/iops/loads/stores/divs/bytes)"))
                    )
                }
            }
            if matches!(self.peek(), Tok::Comma) {
                self.bump();
            } else {
                break;
            }
        }
        self.expect(&Tok::RBrace)?;
        Ok(StmtKind::Comp(ops))
    }

    fn cond(&mut self) -> Result<Cond, ParseError> {
        if self.eat_kw("prob") {
            self.expect(&Tok::LParen)?;
            let p = self.expr()?;
            self.expect(&Tok::RParen)?;
            Ok(Cond::Prob(p))
        } else {
            self.expect(&Tok::LParen)?;
            let lhs = self.expr()?;
            let op = match self.bump() {
                Tok::Lt => CmpOp::Lt,
                Tok::Le => CmpOp::Le,
                Tok::Gt => CmpOp::Gt,
                Tok::Ge => CmpOp::Ge,
                Tok::EqEq => CmpOp::Eq,
                Tok::Ne => CmpOp::Ne,
                other => return Err(self.err(format!("expected comparison operator, found {}", other.describe()))),
            };
            let rhs = self.expr()?;
            self.expect(&Tok::RParen)?;
            Ok(Cond::Cmp { lhs, op, rhs })
        }
    }

    fn if_stmt(&mut self) -> Result<StmtKind, ParseError> {
        self.bump(); // if
        let mut arms = Vec::new();
        let cond = self.cond()?;
        let body = self.block()?;
        arms.push(BranchArm { cond, body });
        let mut else_body = None;
        while self.eat_kw("else") {
            if self.at_kw("if") {
                self.bump();
                let cond = self.cond()?;
                let body = self.block()?;
                arms.push(BranchArm { cond, body });
            } else {
                else_body = Some(self.block()?);
                break;
            }
        }
        Ok(StmtKind::Branch { arms, else_body })
    }

    fn switch_stmt(&mut self) -> Result<StmtKind, ParseError> {
        self.bump(); // switch
        self.expect(&Tok::LBrace)?;
        let mut arms = Vec::new();
        let mut else_body = None;
        loop {
            if self.eat_kw("case") {
                let cond = self.cond()?;
                let body = self.block()?;
                arms.push(BranchArm { cond, body });
            } else if self.eat_kw("default") {
                else_body = Some(self.block()?);
            } else {
                break;
            }
        }
        self.expect(&Tok::RBrace)?;
        if arms.is_empty() && else_body.is_none() {
            return Err(self.err("switch statement has no arms"));
        }
        Ok(StmtKind::Branch { arms, else_body })
    }

    // --- expressions -----------------------------------------------------

    fn expr(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.term()?;
        loop {
            let op = match self.peek() {
                Tok::Plus => BinOp::Add,
                Tok::Minus => BinOp::Sub,
                _ => break,
            };
            self.bump();
            let rhs = self.term()?;
            lhs = Expr::Binary(Box::new(lhs), op, Box::new(rhs));
        }
        Ok(lhs)
    }

    fn term(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.factor()?;
        loop {
            let op = match self.peek() {
                Tok::Star => BinOp::Mul,
                Tok::Slash => BinOp::Div,
                Tok::Percent => BinOp::Mod,
                _ => break,
            };
            self.bump();
            let rhs = self.factor()?;
            lhs = Expr::Binary(Box::new(lhs), op, Box::new(rhs));
        }
        Ok(lhs)
    }

    fn factor(&mut self) -> Result<Expr, ParseError> {
        match self.peek().clone() {
            Tok::Num(n) => {
                self.bump();
                Ok(Expr::Num(n))
            }
            Tok::Minus => {
                self.bump();
                // Fold negated literals so `-1` is the constant -1, which
                // keeps constant checks (validation) and printing exact.
                match self.factor()? {
                    Expr::Num(n) => Ok(Expr::Num(-n)),
                    other => Ok(Expr::Neg(Box::new(other))),
                }
            }
            Tok::LParen => {
                self.bump();
                let e = self.expr()?;
                self.expect(&Tok::RParen)?;
                Ok(e)
            }
            Tok::Ident(name) => {
                self.bump();
                if matches!(self.peek(), Tok::LParen) {
                    self.bump();
                    let mut args = Vec::new();
                    if !matches!(self.peek(), Tok::RParen) {
                        loop {
                            args.push(self.expr()?);
                            if !matches!(self.peek(), Tok::Comma) {
                                break;
                            }
                            self.bump();
                        }
                    }
                    self.expect(&Tok::RParen)?;
                    Ok(Expr::Call(name, args))
                } else {
                    Ok(Expr::Var(name))
                }
            }
            other => Err(self.err(format!("expected expression, found {}", other.describe()))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_minimal_program() {
        let p = parse("func main() { comp { flops: 1 } }").unwrap();
        assert_eq!(p.functions.len(), 1);
        assert_eq!(p.source_statement_count(), 1);
    }

    #[test]
    fn parse_full_feature_program() {
        let src = r#"
# pedagogical example, Figure 2(a) analogue
func main() {
  let n = N
  @outer: loop i = 0 .. n {
    comp { flops: 4, iops: 2, loads: 3, stores: 1, bytes: 8 }
    if prob(0.3) {
      call foo(n)
    } else if (i < 10) {
      comp { flops: 1 }
    } else {
      lib exp(1, n)
    }
    switch {
      case prob(0.2) { break prob(0.01) }
      case prob(0.5) { continue }
      default { return prob(0.001) }
    }
  }
  while trips(n * 2) {
    comp { iops: 1, divs: 1 }
  }
}
func foo(m) {
  loop j = 0 .. m step 2 {
    comp { flops: 8, loads: 2, stores: 1 }
  }
}
"#;
        let p = parse(src).unwrap();
        assert_eq!(p.functions.len(), 2);
        assert!(p.main().is_some());
        assert!(p.stmt_by_label("outer").is_some());
        // main: let, loop, comp, if, call, comp, lib, switch, break, continue,
        // return, while, comp = 13; foo: loop, comp = 2.
        assert_eq!(p.source_statement_count(), 15);
    }

    #[test]
    fn preorder_id_allocation() {
        let p = parse("func main() { loop i = 0 .. 4 { comp { flops: 1 } } comp { iops: 1 } }").unwrap();
        let main = p.main().unwrap();
        // loop gets id 0, its child comp id 1, trailing comp id 2.
        assert_eq!(main.body.stmts[0].id, StmtId(0));
        match &main.body.stmts[0].kind {
            StmtKind::Loop { body, .. } => assert_eq!(body.stmts[0].id, StmtId(1)),
            _ => panic!("expected loop"),
        }
        assert_eq!(main.body.stmts[1].id, StmtId(2));
    }

    #[test]
    fn else_if_chain_accumulates_arms() {
        let p = parse(
            "func main() { if prob(0.1) { comp{flops:1} } else if prob(0.2) { comp{flops:2} } else { comp{flops:3} } }",
        )
        .unwrap();
        match &p.main().unwrap().body.stmts[0].kind {
            StmtKind::Branch { arms, else_body } => {
                assert_eq!(arms.len(), 2);
                assert!(else_body.is_some());
            }
            _ => panic!("expected branch"),
        }
    }

    #[test]
    fn deterministic_condition() {
        let p = parse("func main() { if (n < 10) { comp{flops:1} } }").unwrap();
        match &p.main().unwrap().body.stmts[0].kind {
            StmtKind::Branch { arms, .. } => match &arms[0].cond {
                Cond::Cmp { op, .. } => assert_eq!(*op, CmpOp::Lt),
                _ => panic!("expected cmp cond"),
            },
            _ => panic!("expected branch"),
        }
    }

    #[test]
    fn errors_have_positions_and_messages() {
        let err = parse("func main() { bogus }").unwrap_err();
        assert!(err.message.contains("unknown statement keyword"), "{err}");
        assert_eq!(err.span.line, 1);

        let err = parse("func main() { comp { watts: 3 } }").unwrap_err();
        assert!(err.message.contains("unknown comp field"), "{err}");

        let err = parse("func main() { if (a ? b) { } }").unwrap_err();
        assert!(err.message.contains("unexpected character"), "{err}");

        let err = parse("func main() { comp { flops: 1 }").unwrap_err();
        assert!(err.message.contains("unterminated block") || err.message.contains("expected"), "{err}");
    }

    #[test]
    fn duplicate_function_rejected() {
        let err = parse("func main() { } func main() { }").unwrap_err();
        assert!(err.message.contains("duplicate function"), "{err}");
    }

    #[test]
    fn empty_program_rejected() {
        assert!(parse("   # only a comment\n").is_err());
    }

    #[test]
    fn empty_switch_rejected() {
        assert!(parse("func main() { switch { } }").is_err());
    }

    #[test]
    fn expression_precedence() {
        let p = parse("func main() { let x = 1 + 2 * 3 - 4 / 2 }").unwrap();
        match &p.main().unwrap().body.stmts[0].kind {
            StmtKind::Let { value, .. } => {
                assert_eq!(value.eval(&Default::default()).unwrap(), 5.0);
            }
            _ => panic!("expected let"),
        }
    }

    #[test]
    fn default_step_and_probs() {
        let p = parse("func main() { loop i = 0 .. 10 { break } }").unwrap();
        match &p.main().unwrap().body.stmts[0].kind {
            StmtKind::Loop { step, body, .. } => {
                assert_eq!(*step, Expr::Num(1.0));
                match &body.stmts[0].kind {
                    StmtKind::Break { prob } => assert_eq!(*prob, Expr::Num(1.0)),
                    _ => panic!("expected break"),
                }
            }
            _ => panic!("expected loop"),
        }
    }
}
