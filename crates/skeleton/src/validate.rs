//! Semantic validation of parsed skeletons.
//!
//! Validation catches modeling mistakes that would otherwise surface as
//! confusing BET-construction failures: calls to undefined functions, arity
//! mismatches, constant probabilities outside `[0, 1]`, negative constant
//! operation counts, `break`/`continue` outside loops, and statically
//! unbounded recursion (call cycles with no probabilistic or deterministic
//! guard are reported as warnings since the BET builder depth-limits them).

use crate::ast::*;
use crate::error::ValidationError;
use crate::expr::Expr;
use std::collections::{HashMap, HashSet};

/// Validate a program; returns all problems found (empty = valid).
pub fn validate(prog: &Program) -> Vec<ValidationError> {
    let mut errs = Vec::new();
    if prog.main().is_none() {
        errs.push(ValidationError { stmt: None, message: "program has no `main` function".into() });
    }

    let arities: HashMap<&str, usize> = prog.functions.iter().map(|f| (f.name.as_str(), f.params.len())).collect();

    for f in &prog.functions {
        walk_block(&f.body, &arities, false, &mut errs);
    }

    // Call-graph cycle detection (self- or mutual recursion).
    let graph = call_graph(prog);
    for f in &prog.functions {
        if reaches_itself(&f.name, &graph) {
            errs.push(ValidationError {
                stmt: None,
                message: format!("function `{}` is (mutually) recursive; the BET builder will depth-limit it", f.name),
            });
        }
    }
    errs
}

fn call_graph(prog: &Program) -> HashMap<String, Vec<String>> {
    let mut g: HashMap<String, Vec<String>> = HashMap::new();
    for f in &prog.functions {
        let mut callees = Vec::new();
        collect_calls(&f.body, &mut callees);
        g.insert(f.name.clone(), callees);
    }
    g
}

fn collect_calls(b: &Block, out: &mut Vec<String>) {
    for s in &b.stmts {
        match &s.kind {
            StmtKind::Call { func, .. } => out.push(func.clone()),
            StmtKind::Loop { body, .. } | StmtKind::While { body, .. } => collect_calls(body, out),
            StmtKind::Branch { arms, else_body } => {
                for a in arms {
                    collect_calls(&a.body, out);
                }
                if let Some(e) = else_body {
                    collect_calls(e, out);
                }
            }
            _ => {}
        }
    }
}

fn reaches_itself(start: &str, g: &HashMap<String, Vec<String>>) -> bool {
    let mut seen = HashSet::new();
    let mut stack: Vec<&str> = g.get(start).map(|v| v.iter().map(String::as_str).collect()).unwrap_or_default();
    while let Some(n) = stack.pop() {
        if n == start {
            return true;
        }
        if seen.insert(n.to_string()) {
            if let Some(next) = g.get(n) {
                stack.extend(next.iter().map(String::as_str));
            }
        }
    }
    false
}

fn check_prob(e: &Expr, id: StmtId, what: &str, errs: &mut Vec<ValidationError>) {
    if let Expr::Num(p) = e {
        if !(0.0..=1.0).contains(p) {
            errs.push(ValidationError { stmt: Some(id), message: format!("{what} probability {p} is outside [0, 1]") });
        }
    }
}

fn check_nonneg(e: &Expr, id: StmtId, what: &str, errs: &mut Vec<ValidationError>) {
    if let Expr::Num(n) = e {
        if *n < 0.0 {
            errs.push(ValidationError { stmt: Some(id), message: format!("{what} count {n} is negative") });
        }
    }
}

fn walk_block(b: &Block, arities: &HashMap<&str, usize>, in_loop: bool, errs: &mut Vec<ValidationError>) {
    for s in &b.stmts {
        match &s.kind {
            StmtKind::Comp(ops) => {
                check_nonneg(&ops.flops, s.id, "flops", errs);
                check_nonneg(&ops.iops, s.id, "iops", errs);
                check_nonneg(&ops.loads, s.id, "loads", errs);
                check_nonneg(&ops.stores, s.id, "stores", errs);
                check_nonneg(&ops.divs, s.id, "divs", errs);
                if let Expr::Num(b) = &ops.dtype_bytes {
                    if *b <= 0.0 {
                        errs.push(ValidationError {
                            stmt: Some(s.id),
                            message: format!("dtype bytes {b} must be positive"),
                        });
                    }
                }
            }
            StmtKind::Call { func, args } => match arities.get(func.as_str()) {
                None => errs.push(ValidationError {
                    stmt: Some(s.id),
                    message: format!("call to undefined function `{func}` (use `lib {func}(…)` for library code)"),
                }),
                Some(&n) if n != args.len() => errs.push(ValidationError {
                    stmt: Some(s.id),
                    message: format!("`{func}` takes {n} argument(s), call passes {}", args.len()),
                }),
                _ => {}
            },
            StmtKind::LibCall { calls, work, .. } => {
                check_nonneg(calls, s.id, "lib call", errs);
                check_nonneg(work, s.id, "lib work", errs);
            }
            StmtKind::Return { prob } => check_prob(prob, s.id, "return", errs),
            StmtKind::Break { prob } => {
                check_prob(prob, s.id, "break", errs);
                if !in_loop {
                    errs.push(ValidationError { stmt: Some(s.id), message: "`break` outside of a loop".into() });
                }
            }
            StmtKind::Continue { prob } => {
                check_prob(prob, s.id, "continue", errs);
                if !in_loop {
                    errs.push(ValidationError { stmt: Some(s.id), message: "`continue` outside of a loop".into() });
                }
            }
            StmtKind::Loop { body, step, .. } => {
                if let Expr::Num(st) = step {
                    if *st <= 0.0 {
                        errs.push(ValidationError {
                            stmt: Some(s.id),
                            message: format!("loop step {st} must be positive"),
                        });
                    }
                }
                walk_block(body, arities, true, errs);
            }
            StmtKind::While { trips, body } => {
                check_nonneg(trips, s.id, "while trips", errs);
                walk_block(body, arities, true, errs);
            }
            StmtKind::Branch { arms, else_body } => {
                let mut const_prob_sum = 0.0;
                let mut all_const = true;
                for arm in arms {
                    match &arm.cond {
                        Cond::Prob(p) => {
                            check_prob(p, s.id, "branch", errs);
                            if let Expr::Num(v) = p {
                                const_prob_sum += v;
                            } else {
                                all_const = false;
                            }
                        }
                        Cond::Cmp { .. } => all_const = false,
                    }
                    walk_block(&arm.body, arities, in_loop, errs);
                }
                if all_const && const_prob_sum > 1.0 + 1e-9 {
                    errs.push(ValidationError {
                        stmt: Some(s.id),
                        message: format!("branch arm probabilities sum to {const_prob_sum} > 1"),
                    });
                }
                if let Some(e) = else_body {
                    walk_block(e, arities, in_loop, errs);
                }
            }
            StmtKind::Let { .. } => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn errors(src: &str) -> Vec<String> {
        validate(&parse(src).unwrap()).into_iter().map(|e| e.message).collect()
    }

    #[test]
    fn valid_program_is_clean() {
        let errs = errors(
            "func main() { loop i = 0 .. 10 { comp { flops: 1 } break prob(0.1) } call foo(3) } func foo(x) { }",
        );
        assert!(errs.is_empty(), "{errs:?}");
    }

    #[test]
    fn missing_main_detected() {
        let errs = errors("func notmain() { }");
        assert!(errs.iter().any(|m| m.contains("no `main`")));
    }

    #[test]
    fn undefined_call_detected() {
        let errs = errors("func main() { call ghost() }");
        assert!(errs.iter().any(|m| m.contains("undefined function `ghost`")));
    }

    #[test]
    fn arity_mismatch_detected() {
        let errs = errors("func main() { call foo(1, 2) } func foo(x) { }");
        assert!(errs.iter().any(|m| m.contains("takes 1 argument")));
    }

    #[test]
    fn bad_probability_detected() {
        let errs = errors("func main() { if prob(1.5) { comp { flops: 1 } } }");
        assert!(errs.iter().any(|m| m.contains("outside [0, 1]")));
    }

    #[test]
    fn probability_mass_overflow_detected() {
        let errs =
            errors("func main() { switch { case prob(0.7) { comp{flops:1} } case prob(0.6) { comp{flops:1} } } }");
        assert!(errs.iter().any(|m| m.contains("sum to")));
    }

    #[test]
    fn break_outside_loop_detected() {
        let errs = errors("func main() { break }");
        assert!(errs.iter().any(|m| m.contains("`break` outside")));
    }

    #[test]
    fn continue_outside_loop_detected() {
        let errs = errors("func main() { continue }");
        assert!(errs.iter().any(|m| m.contains("`continue` outside")));
    }

    #[test]
    fn break_inside_branch_inside_loop_is_fine() {
        let errs = errors("func main() { loop i = 0 .. 5 { if prob(0.5) { break } } }");
        assert!(errs.is_empty(), "{errs:?}");
    }

    #[test]
    fn negative_counts_detected() {
        let errs = errors("func main() { comp { flops: -1 } }");
        assert!(errs.iter().any(|m| m.contains("negative")));
    }

    #[test]
    fn zero_step_detected() {
        let errs = errors("func main() { loop i = 0 .. 5 step 0 { comp { flops: 1 } } }");
        assert!(errs.iter().any(|m| m.contains("step 0")));
    }

    #[test]
    fn recursion_flagged() {
        let errs = errors("func main() { call f() } func f() { call g() } func g() { call f() }");
        assert!(errs.iter().any(|m| m.contains("recursive")));
    }
}
