//! Abstract syntax of code skeletons — the Block Skeleton Tree (BST).
//!
//! A parsed skeleton [`Program`] *is* the paper's BST: every statement node
//! carries a stable [`StmtId`], statements that encapsulate others (function
//! bodies, loops, branch arms) own their children, and no input-dependent
//! information is present. Input-dependent execution flow is derived later by
//! the BET builder (`xflow-bet`).

use crate::expr::{CmpOp, Expr};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Stable identifier of a statement within one [`Program`].
///
/// Ids are assigned densely in pre-order by the parser/builder, so they can
/// index into side tables (`Vec`s of per-statement data).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct StmtId(pub u32);

/// Stable identifier of a function within one [`Program`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct FuncId(pub u32);

/// Static operation statistics of a `comp` block.
///
/// Counts are expressions so they may depend on context variables (e.g. a
/// compute block touching `3 * n` elements). `dtype_bytes` is the element
/// size used to convert loads/stores into bytes moved.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OpStats {
    /// Floating point operations.
    pub flops: Expr,
    /// Fixed point (integer) operations.
    pub iops: Expr,
    /// Data elements loaded.
    pub loads: Expr,
    /// Data elements stored.
    pub stores: Expr,
    /// Floating point divides (subset of `flops`). The paper's hardware model
    /// treats all fp ops equally — this field exists so the ablation model
    /// that *does* distinguish divides can be compared (Section VII-B, the
    /// CFD under-projection).
    pub divs: Expr,
    /// Bytes per data element.
    pub dtype_bytes: Expr,
}

impl Default for OpStats {
    fn default() -> Self {
        OpStats {
            flops: Expr::Num(0.0),
            iops: Expr::Num(0.0),
            loads: Expr::Num(0.0),
            stores: Expr::Num(0.0),
            divs: Expr::Num(0.0),
            dtype_bytes: Expr::Num(8.0),
        }
    }
}

/// Branch condition: probabilistic (from profiling) or deterministic
/// (computable from context values).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Cond {
    /// `prob(p)` — taken with probability `p` (an expression in `[0,1]`).
    Prob(Expr),
    /// `(lhs op rhs)` — evaluated against the context when possible.
    Cmp { lhs: Expr, op: CmpOp, rhs: Expr },
}

/// One `if`/`case` arm of a branch.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BranchArm {
    pub cond: Cond,
    pub body: Block,
}

/// A sequence of statements.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Block {
    pub stmts: Vec<Stmt>,
}

impl Block {
    /// Empty block.
    pub fn new() -> Self {
        Self::default()
    }
}

/// A skeleton statement. `label` names the statement for reporting (hot spot
/// tables print labels when present, `fn:id` otherwise).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Stmt {
    pub id: StmtId,
    pub label: Option<String>,
    pub kind: StmtKind,
}

/// Statement kinds of the skeleton language.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum StmtKind {
    /// Performance-characteristics block replacing straight-line code.
    Comp(OpStats),
    /// Context variable binding: `let x = expr`.
    Let { var: String, value: Expr },
    /// Counted loop: `loop v = lo .. hi step s { body }`. `parallel`
    /// marks a `parloop` whose iterations may execute concurrently across
    /// the machine's cores (extension; see `xflow-hw`'s parallel roofline).
    Loop { var: String, lo: Expr, hi: Expr, step: Expr, parallel: bool, body: Block },
    /// Profiled loop with data-dependent bound: `while trips(expr) { body }`.
    /// The expression is the expected trip count obtained from profiling.
    While { trips: Expr, body: Block },
    /// Multi-arm branch; arms are tested in order, `else_body` is the
    /// fall-through. `switch` statements desugar to this form.
    Branch { arms: Vec<BranchArm>, else_body: Option<Block> },
    /// Call to another skeleton function.
    Call { func: String, args: Vec<Expr> },
    /// Call to an opaque library function (modeled semi-analytically).
    /// `calls` is the number of invocations this statement performs and
    /// `work` scales the per-call instruction mix (e.g. vector length).
    LibCall { func: String, calls: Expr, work: Expr },
    /// Early function return taken with probability `prob`.
    Return { prob: Expr },
    /// Loop break taken with probability `prob` (per iteration).
    Break { prob: Expr },
    /// Loop continue taken with probability `prob` (per iteration).
    Continue { prob: Expr },
}

impl StmtKind {
    /// Keyword naming the statement kind (used in reports and errors).
    pub fn keyword(&self) -> &'static str {
        match self {
            StmtKind::Comp(_) => "comp",
            StmtKind::Let { .. } => "let",
            StmtKind::Loop { .. } => "loop",
            StmtKind::While { .. } => "while",
            StmtKind::Branch { .. } => "branch",
            StmtKind::Call { .. } => "call",
            StmtKind::LibCall { .. } => "lib",
            StmtKind::Return { .. } => "return",
            StmtKind::Break { .. } => "break",
            StmtKind::Continue { .. } => "continue",
        }
    }
}

/// A skeleton function definition.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Function {
    pub id: FuncId,
    pub name: String,
    pub params: Vec<String>,
    pub body: Block,
}

/// A complete skeleton program — the Block Skeleton Tree.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Program {
    pub functions: Vec<Function>,
    by_name: HashMap<String, usize>,
    next_stmt_id: u32,
}

impl Program {
    /// Empty program.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a function; its `id` is overwritten to the next free slot.
    ///
    /// Returns an error message if a function with the same name exists.
    pub fn add_function(&mut self, mut f: Function) -> Result<FuncId, String> {
        if self.by_name.contains_key(&f.name) {
            return Err(format!("duplicate function `{}`", f.name));
        }
        let id = FuncId(self.functions.len() as u32);
        f.id = id;
        self.by_name.insert(f.name.clone(), self.functions.len());
        self.functions.push(f);
        Ok(id)
    }

    /// Look up a function by name.
    pub fn function(&self, name: &str) -> Option<&Function> {
        self.by_name.get(name).map(|&i| &self.functions[i])
    }

    /// The entry function, conventionally named `main`.
    pub fn main(&self) -> Option<&Function> {
        self.function("main")
    }

    /// Allocate the next statement id (used by parser and builder).
    pub fn fresh_stmt_id(&mut self) -> StmtId {
        let id = StmtId(self.next_stmt_id);
        self.next_stmt_id += 1;
        id
    }

    /// Number of statement ids allocated so far.
    pub fn stmt_count(&self) -> u32 {
        self.next_stmt_id
    }

    /// Visit every statement in every function in pre-order.
    pub fn visit_stmts<'a>(&'a self, mut f: impl FnMut(&'a Function, &'a Stmt)) {
        fn walk<'a>(func: &'a Function, block: &'a Block, f: &mut impl FnMut(&'a Function, &'a Stmt)) {
            for s in &block.stmts {
                f(func, s);
                match &s.kind {
                    StmtKind::Loop { body, .. } | StmtKind::While { body, .. } => walk(func, body, f),
                    StmtKind::Branch { arms, else_body } => {
                        for arm in arms {
                            walk(func, &arm.body, f);
                        }
                        if let Some(e) = else_body {
                            walk(func, e, f);
                        }
                    }
                    _ => {}
                }
            }
        }
        for func in &self.functions {
            walk(func, &func.body, &mut f);
        }
    }

    /// Total number of statements across all functions (the paper's
    /// "source code statements" denominator for the BET size ratio).
    pub fn source_statement_count(&self) -> usize {
        let mut n = 0;
        self.visit_stmts(|_, _| n += 1);
        n
    }

    /// Map from statement id to the name of the enclosing function.
    pub fn stmt_owner(&self) -> HashMap<StmtId, String> {
        let mut map = HashMap::new();
        self.visit_stmts(|f, s| {
            map.insert(s.id, f.name.clone());
        });
        map
    }

    /// Map from statement id to its label (when present) or a generated
    /// `function:kind#id` name.
    pub fn stmt_names(&self) -> HashMap<StmtId, String> {
        let mut map = HashMap::new();
        self.visit_stmts(|f, s| {
            let name = match &s.label {
                Some(l) => l.clone(),
                None => format!("{}:{}#{}", f.name, s.kind.keyword(), s.id.0),
            };
            map.insert(s.id, name);
        });
        map
    }

    /// Find a statement by its label.
    pub fn stmt_by_label(&self, label: &str) -> Option<StmtId> {
        let mut found = None;
        self.visit_stmts(|_, s| {
            if s.label.as_deref() == Some(label) {
                found = Some(s.id);
            }
        });
        found
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stmt(id: u32, kind: StmtKind) -> Stmt {
        Stmt { id: StmtId(id), label: None, kind }
    }

    #[test]
    fn add_and_lookup_functions() {
        let mut p = Program::new();
        p.add_function(Function { id: FuncId(0), name: "main".into(), params: vec![], body: Block::new() }).unwrap();
        assert!(p.main().is_some());
        assert!(p.function("nope").is_none());
        let dup = p.add_function(Function { id: FuncId(0), name: "main".into(), params: vec![], body: Block::new() });
        assert!(dup.is_err());
    }

    #[test]
    fn fresh_ids_are_dense() {
        let mut p = Program::new();
        assert_eq!(p.fresh_stmt_id(), StmtId(0));
        assert_eq!(p.fresh_stmt_id(), StmtId(1));
        assert_eq!(p.stmt_count(), 2);
    }

    #[test]
    fn visit_walks_nested_structures() {
        let mut p = Program::new();
        let body = Block {
            stmts: vec![stmt(
                0,
                StmtKind::Loop {
                    var: "i".into(),
                    lo: Expr::num(0.0),
                    hi: Expr::var("n"),
                    step: Expr::num(1.0),
                    parallel: false,
                    body: Block {
                        stmts: vec![
                            stmt(1, StmtKind::Comp(OpStats::default())),
                            stmt(
                                2,
                                StmtKind::Branch {
                                    arms: vec![BranchArm {
                                        cond: Cond::Prob(Expr::num(0.5)),
                                        body: Block { stmts: vec![stmt(3, StmtKind::Break { prob: Expr::num(1.0) })] },
                                    }],
                                    else_body: Some(Block {
                                        stmts: vec![stmt(4, StmtKind::Continue { prob: Expr::num(1.0) })],
                                    }),
                                },
                            ),
                        ],
                    },
                },
            )],
        };
        p.add_function(Function { id: FuncId(0), name: "main".into(), params: vec![], body }).unwrap();
        assert_eq!(p.source_statement_count(), 5);
        let owners = p.stmt_owner();
        assert_eq!(owners[&StmtId(3)], "main");
    }

    #[test]
    fn stmt_names_prefer_labels() {
        let mut p = Program::new();
        let body = Block {
            stmts: vec![
                Stmt { id: StmtId(0), label: Some("hot".into()), kind: StmtKind::Comp(OpStats::default()) },
                stmt(1, StmtKind::Return { prob: Expr::num(1.0) }),
            ],
        };
        p.add_function(Function { id: FuncId(0), name: "main".into(), params: vec![], body }).unwrap();
        let names = p.stmt_names();
        assert_eq!(names[&StmtId(0)], "hot");
        assert_eq!(names[&StmtId(1)], "main:return#1");
        assert_eq!(p.stmt_by_label("hot"), Some(StmtId(0)));
        assert_eq!(p.stmt_by_label("cold"), None);
    }
}
