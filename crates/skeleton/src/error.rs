//! Error types for the skeleton language front-end.

use std::fmt;

/// Position of a token or error in skeleton source text.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Span {
    /// 1-based line number.
    pub line: u32,
    /// 1-based column number.
    pub col: u32,
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.line, self.col)
    }
}

/// Error produced while lexing or parsing skeleton text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Location the error was detected at.
    pub span: Span,
    /// Human-readable description.
    pub message: String,
}

impl ParseError {
    /// Construct a parse error at a position.
    pub fn new(span: Span, message: impl Into<String>) -> Self {
        Self { span, message: message.into() }
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at {}: {}", self.span, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Error produced while evaluating a skeleton [`Expr`](crate::Expr).
#[derive(Debug, Clone, PartialEq)]
pub enum EvalError {
    /// A variable referenced by the expression is absent from the environment.
    UnboundVariable(String),
    /// Division (or modulo) by zero.
    DivisionByZero,
    /// An intrinsic was called with the wrong number of arguments.
    BadArity { name: String, expected: usize, got: usize },
    /// An unknown intrinsic function was referenced.
    UnknownIntrinsic(String),
    /// The result is not a finite number.
    NotFinite,
}

impl fmt::Display for EvalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EvalError::UnboundVariable(v) => write!(f, "unbound variable `{v}`"),
            EvalError::DivisionByZero => write!(f, "division by zero"),
            EvalError::BadArity { name, expected, got } => {
                write!(f, "intrinsic `{name}` expects {expected} argument(s), got {got}")
            }
            EvalError::UnknownIntrinsic(name) => write!(f, "unknown intrinsic `{name}`"),
            EvalError::NotFinite => write!(f, "expression result is not finite"),
        }
    }
}

impl std::error::Error for EvalError {}

/// Semantic validation problem found in a parsed [`Program`](crate::Program).
#[derive(Debug, Clone, PartialEq)]
pub struct ValidationError {
    /// Statement the problem is anchored to, if any.
    pub stmt: Option<crate::ast::StmtId>,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for ValidationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.stmt {
            Some(id) => write!(f, "validation error at stmt #{}: {}", id.0, self.message),
            None => write!(f, "validation error: {}", self.message),
        }
    }
}

impl std::error::Error for ValidationError {}
