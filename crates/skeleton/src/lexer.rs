//! Hand-rolled tokenizer for skeleton source text.

use crate::error::{ParseError, Span};

/// Token kinds of the skeleton language.
#[derive(Debug, Clone, PartialEq)]
pub enum Tok {
    Ident(String),
    Num(f64),
    // punctuation
    LParen,
    RParen,
    LBrace,
    RBrace,
    Comma,
    Colon,
    Semi,
    At,
    DotDot,
    // operators
    Plus,
    Minus,
    Star,
    Slash,
    Percent,
    Assign,
    Lt,
    Le,
    Gt,
    Ge,
    EqEq,
    Ne,
    Eof,
}

impl Tok {
    /// Short printable description for error messages.
    pub fn describe(&self) -> String {
        match self {
            Tok::Ident(s) => format!("identifier `{s}`"),
            Tok::Num(n) => format!("number `{n}`"),
            Tok::LParen => "`(`".into(),
            Tok::RParen => "`)`".into(),
            Tok::LBrace => "`{`".into(),
            Tok::RBrace => "`}`".into(),
            Tok::Comma => "`,`".into(),
            Tok::Colon => "`:`".into(),
            Tok::Semi => "`;`".into(),
            Tok::At => "`@`".into(),
            Tok::DotDot => "`..`".into(),
            Tok::Plus => "`+`".into(),
            Tok::Minus => "`-`".into(),
            Tok::Star => "`*`".into(),
            Tok::Slash => "`/`".into(),
            Tok::Percent => "`%`".into(),
            Tok::Assign => "`=`".into(),
            Tok::Lt => "`<`".into(),
            Tok::Le => "`<=`".into(),
            Tok::Gt => "`>`".into(),
            Tok::Ge => "`>=`".into(),
            Tok::EqEq => "`==`".into(),
            Tok::Ne => "`!=`".into(),
            Tok::Eof => "end of input".into(),
        }
    }
}

/// A token paired with its source position.
#[derive(Debug, Clone, PartialEq)]
pub struct SpannedTok {
    pub tok: Tok,
    pub span: Span,
}

/// Tokenize skeleton source. `#` starts a line comment.
pub fn lex(src: &str) -> Result<Vec<SpannedTok>, ParseError> {
    let mut out = Vec::new();
    let bytes = src.as_bytes();
    let mut i = 0usize;
    let mut line = 1u32;
    let mut col = 1u32;

    macro_rules! span {
        () => {
            Span { line, col }
        };
    }

    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            '\n' => {
                i += 1;
                line += 1;
                col = 1;
            }
            ' ' | '\t' | '\r' => {
                i += 1;
                col += 1;
            }
            '#' => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            '0'..='9' => {
                let sp = span!();
                let start = i;
                while i < bytes.len() && (bytes[i].is_ascii_digit() || bytes[i] == b'_') {
                    i += 1;
                }
                // fractional part — careful not to eat `..`
                if i + 1 < bytes.len() && bytes[i] == b'.' && bytes[i + 1].is_ascii_digit() {
                    i += 1;
                    while i < bytes.len() && bytes[i].is_ascii_digit() {
                        i += 1;
                    }
                }
                // exponent
                if i < bytes.len() && (bytes[i] == b'e' || bytes[i] == b'E') {
                    let mut j = i + 1;
                    if j < bytes.len() && (bytes[j] == b'+' || bytes[j] == b'-') {
                        j += 1;
                    }
                    if j < bytes.len() && bytes[j].is_ascii_digit() {
                        i = j;
                        while i < bytes.len() && bytes[i].is_ascii_digit() {
                            i += 1;
                        }
                    }
                }
                let text: String = src[start..i].chars().filter(|&c| c != '_').collect();
                let n: f64 = text.parse().map_err(|_| ParseError::new(sp, format!("invalid number `{text}`")))?;
                col += (i - start) as u32;
                out.push(SpannedTok { tok: Tok::Num(n), span: sp });
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let sp = span!();
                let start = i;
                while i < bytes.len() && ((bytes[i] as char).is_ascii_alphanumeric() || bytes[i] == b'_') {
                    i += 1;
                }
                col += (i - start) as u32;
                out.push(SpannedTok { tok: Tok::Ident(src[start..i].to_string()), span: sp });
            }
            _ => {
                let sp = span!();
                // two-byte lookahead on raw bytes: indexing the &str here
                // would panic mid-way through a multi-byte UTF-8 character
                let two: &[u8] = if i + 1 < bytes.len() { &bytes[i..i + 2] } else { b"" };
                let (tok, len) = match two {
                    b".." => (Tok::DotDot, 2),
                    b"<=" => (Tok::Le, 2),
                    b">=" => (Tok::Ge, 2),
                    b"==" => (Tok::EqEq, 2),
                    b"!=" => (Tok::Ne, 2),
                    _ => {
                        let t = match c {
                            '(' => Tok::LParen,
                            ')' => Tok::RParen,
                            '{' => Tok::LBrace,
                            '}' => Tok::RBrace,
                            ',' => Tok::Comma,
                            ':' => Tok::Colon,
                            ';' => Tok::Semi,
                            '@' => Tok::At,
                            '+' => Tok::Plus,
                            '-' => Tok::Minus,
                            '*' => Tok::Star,
                            '/' => Tok::Slash,
                            '%' => Tok::Percent,
                            '=' => Tok::Assign,
                            '<' => Tok::Lt,
                            '>' => Tok::Gt,
                            other => return Err(ParseError::new(sp, format!("unexpected character `{other}`"))),
                        };
                        (t, 1)
                    }
                };
                i += len;
                col += len as u32;
                out.push(SpannedTok { tok, span: sp });
            }
        }
    }
    out.push(SpannedTok { tok: Tok::Eof, span: span!() });
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(src: &str) -> Vec<Tok> {
        lex(src).unwrap().into_iter().map(|s| s.tok).collect()
    }

    #[test]
    fn punctuation_and_operators() {
        assert_eq!(
            toks("( ) { } , : ; @ .. + - * / % = < <= > >= == !="),
            vec![
                Tok::LParen,
                Tok::RParen,
                Tok::LBrace,
                Tok::RBrace,
                Tok::Comma,
                Tok::Colon,
                Tok::Semi,
                Tok::At,
                Tok::DotDot,
                Tok::Plus,
                Tok::Minus,
                Tok::Star,
                Tok::Slash,
                Tok::Percent,
                Tok::Assign,
                Tok::Lt,
                Tok::Le,
                Tok::Gt,
                Tok::Ge,
                Tok::EqEq,
                Tok::Ne,
                Tok::Eof,
            ]
        );
    }

    #[test]
    fn numbers() {
        assert_eq!(toks("42"), vec![Tok::Num(42.0), Tok::Eof]);
        assert_eq!(toks("3.25"), vec![Tok::Num(3.25), Tok::Eof]);
        assert_eq!(toks("1e3"), vec![Tok::Num(1000.0), Tok::Eof]);
        assert_eq!(toks("2.5e-1"), vec![Tok::Num(0.25), Tok::Eof]);
        assert_eq!(toks("1_000"), vec![Tok::Num(1000.0), Tok::Eof]);
    }

    #[test]
    fn range_after_number_is_not_a_float() {
        assert_eq!(toks("0 .. n"), vec![Tok::Num(0.0), Tok::DotDot, Tok::Ident("n".into()), Tok::Eof]);
        assert_eq!(toks("0..n"), vec![Tok::Num(0.0), Tok::DotDot, Tok::Ident("n".into()), Tok::Eof]);
    }

    #[test]
    fn identifiers_and_keywords_are_plain_idents() {
        assert_eq!(
            toks("func main_2 loop"),
            vec![Tok::Ident("func".into()), Tok::Ident("main_2".into()), Tok::Ident("loop".into()), Tok::Eof]
        );
    }

    #[test]
    fn comments_are_skipped() {
        assert_eq!(toks("a # comment ( { \n b"), vec![Tok::Ident("a".into()), Tok::Ident("b".into()), Tok::Eof]);
    }

    #[test]
    fn spans_track_lines_and_columns() {
        let ts = lex("a\n  b").unwrap();
        assert_eq!(ts[0].span, Span { line: 1, col: 1 });
        assert_eq!(ts[1].span, Span { line: 2, col: 3 });
    }

    #[test]
    fn unexpected_character_errors() {
        let err = lex("a $ b").unwrap_err();
        assert!(err.message.contains("unexpected character"));
        assert_eq!(err.span.line, 1);
    }
}
