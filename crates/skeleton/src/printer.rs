//! Pretty-printer emitting canonical skeleton source text.
//!
//! `parse(print(p))` reproduces `p` up to statement ids (ids are reassigned
//! in pre-order, which `print` also emits in, so ids round-trip for programs
//! that were themselves produced by the parser or builder).

use crate::ast::*;
use std::fmt::Write;

/// Render a program as canonical skeleton source text.
pub fn print(prog: &Program) -> String {
    let mut out = String::new();
    for (i, f) in prog.functions.iter().enumerate() {
        if i > 0 {
            out.push('\n');
        }
        print_function(f, &mut out);
    }
    out
}

fn print_function(f: &Function, out: &mut String) {
    let _ = write!(out, "func {}(", f.name);
    for (i, p) in f.params.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        out.push_str(p);
    }
    out.push_str(") {\n");
    print_block(&f.body, 1, out);
    out.push_str("}\n");
}

fn indent(depth: usize, out: &mut String) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

fn print_block(b: &Block, depth: usize, out: &mut String) {
    for s in &b.stmts {
        print_stmt(s, depth, out);
    }
}

fn print_stmt(s: &Stmt, depth: usize, out: &mut String) {
    indent(depth, out);
    if let Some(l) = &s.label {
        let _ = write!(out, "@{l}: ");
    }
    match &s.kind {
        StmtKind::Comp(ops) => {
            out.push_str("comp { ");
            let mut first = true;
            let mut field = |name: &str, e: &crate::expr::Expr, default_is: f64| {
                if let crate::expr::Expr::Num(n) = e {
                    if *n == default_is {
                        return;
                    }
                }
                if !first {
                    out.push_str(", ");
                }
                first = false;
                let _ = write!(out, "{name}: {e}");
            };
            field("flops", &ops.flops, 0.0);
            field("iops", &ops.iops, 0.0);
            field("loads", &ops.loads, 0.0);
            field("stores", &ops.stores, 0.0);
            field("divs", &ops.divs, 0.0);
            field("bytes", &ops.dtype_bytes, 8.0);
            if first {
                // all-default comp block: keep it syntactically valid
                out.push_str("flops: 0");
            }
            out.push_str(" }\n");
        }
        StmtKind::Let { var, value } => {
            let _ = writeln!(out, "let {var} = {value}");
        }
        StmtKind::Loop { var, lo, hi, step, parallel, body } => {
            let kw = if *parallel { "parloop" } else { "loop" };
            let _ = write!(out, "{kw} {var} = {lo} .. {hi}");
            if !matches!(step, crate::expr::Expr::Num(n) if *n == 1.0) {
                let _ = write!(out, " step {step}");
            }
            out.push_str(" {\n");
            print_block(body, depth + 1, out);
            indent(depth, out);
            out.push_str("}\n");
        }
        StmtKind::While { trips, body } => {
            let _ = write!(out, "while trips({trips})");
            out.push_str(" {\n");
            print_block(body, depth + 1, out);
            indent(depth, out);
            out.push_str("}\n");
        }
        StmtKind::Branch { arms, else_body } => {
            for (i, arm) in arms.iter().enumerate() {
                if i > 0 {
                    indent(depth, out);
                    out.push_str("else ");
                }
                out.push_str("if ");
                print_cond(&arm.cond, out);
                out.push_str(" {\n");
                print_block(&arm.body, depth + 1, out);
                indent(depth, out);
                out.push_str("}\n");
            }
            if let Some(e) = else_body {
                indent(depth, out);
                out.push_str("else {\n");
                print_block(e, depth + 1, out);
                indent(depth, out);
                out.push_str("}\n");
            }
        }
        StmtKind::Call { func, args } => {
            let _ = write!(out, "call {func}(");
            for (i, a) in args.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                let _ = write!(out, "{a}");
            }
            out.push_str(")\n");
        }
        StmtKind::LibCall { func, calls, work } => {
            if matches!(work, crate::expr::Expr::Num(n) if *n == 1.0) {
                let _ = writeln!(out, "lib {func}({calls})");
            } else {
                let _ = writeln!(out, "lib {func}({calls}, {work})");
            }
        }
        StmtKind::Return { prob } => print_exit(out, "return", prob),
        StmtKind::Break { prob } => print_exit(out, "break", prob),
        StmtKind::Continue { prob } => print_exit(out, "continue", prob),
    }
}

fn print_exit(out: &mut String, kw: &str, prob: &crate::expr::Expr) {
    if matches!(prob, crate::expr::Expr::Num(n) if *n == 1.0) {
        let _ = writeln!(out, "{kw}");
    } else {
        let _ = writeln!(out, "{kw} prob({prob})");
    }
}

fn print_cond(c: &Cond, out: &mut String) {
    match c {
        Cond::Prob(p) => {
            let _ = write!(out, "prob({p})");
        }
        Cond::Cmp { lhs, op, rhs } => {
            let _ = write!(out, "({lhs} {} {rhs})", op.symbol());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    const SRC: &str = r#"
func main() {
  let n = N
  @outer: loop i = 0 .. n {
    comp { flops: 4, iops: 2, loads: 3, stores: 1 }
    if prob(0.3) {
      call foo(n, i)
    } else if (i < 10) {
      comp { flops: 1 }
    } else {
      lib exp(1, n)
    }
  }
  while trips(n * 2) {
    comp { iops: 1, divs: 1, bytes: 4 }
    break prob(0.25)
  }
  return
}

func foo(m, k) {
  loop j = 0 .. m step 2 {
    comp { flops: 8, loads: 2, stores: 1 }
    continue prob(0.5)
  }
}
"#;

    #[test]
    fn round_trip_is_identical() {
        let p1 = parse(SRC).unwrap();
        let text = print(&p1);
        let p2 = parse(&text).unwrap();
        assert_eq!(p1, p2, "printed text:\n{text}");
    }

    #[test]
    fn round_trip_is_fixed_point() {
        let p1 = parse(SRC).unwrap();
        let t1 = print(&p1);
        let t2 = print(&parse(&t1).unwrap());
        assert_eq!(t1, t2);
    }

    #[test]
    fn default_fields_are_omitted() {
        let p = parse("func main() { comp { flops: 2 } }").unwrap();
        let text = print(&p);
        assert!(text.contains("comp { flops: 2 }"), "{text}");
        assert!(!text.contains("iops"), "{text}");
    }

    #[test]
    fn empty_comp_prints_valid_syntax() {
        let p = parse("func main() { comp { flops: 0 } }").unwrap();
        let text = print(&p);
        assert!(parse(&text).is_ok(), "{text}");
    }
}
