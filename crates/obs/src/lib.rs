//! # xflow-obs — pipeline telemetry core
//!
//! A lightweight, dependency-free observability layer for the modeling
//! pipeline: structured **spans** (enter/exit with wall time and thread
//! id), **counters** and **histograms** behind a [`MetricsRegistry`], a
//! typed per-block **provenance stream** ([`BlockProvenance`]), and a
//! Chrome trace-event exporter ([`chrome`]) whose output loads directly in
//! `chrome://tracing` and Perfetto.
//!
//! The design constraint is that *disabled telemetry is free*: every
//! instrumented API in the workspace is generic over [`Recorder`] and
//! defaults to [`NoopRecorder`], whose methods are empty `#[inline]`
//! bodies — monomorphization folds the `rec.enabled()` guards away, so the
//! uninstrumented hot path compiles to the same code as before the layer
//! existed (`exp_obs` records the measured overhead). Instrumentation
//! sites must guard any attribute construction (string formatting, `Vec`
//! building) behind [`Recorder::enabled`] so the noop path allocates
//! nothing.
//!
//! Four concrete recorders cover the workspace's needs:
//!
//! * [`NoopRecorder`] — the zero-overhead default;
//! * [`CollectingRecorder`] — thread-safe accumulation of spans, events,
//!   counters, histograms, and block provenance; snapshot it with
//!   [`CollectingRecorder::snapshot`] and export with
//!   [`TraceSnapshot::to_chrome_json`];
//! * [`FlightRecorder`] — an always-on, lock-free fixed-capacity ring
//!   retaining the last N events for after-the-fact dumps (optionally
//!   wrapping another recorder);
//! * [`ProgressTicker`] — a decorator that forwards everything to an inner
//!   recorder while driving a live stderr ticker off one counter (the
//!   design-space sweep uses it for per-point progress).
//!
//! ```
//! use xflow_obs::{AttrValue, CollectingRecorder, Recorder};
//!
//! let rec = CollectingRecorder::new();
//! let span = rec.span_start("demo.work", &[("points", AttrValue::U64(3))]);
//! rec.add("demo.points", 3);
//! rec.span_end(span, &[("outcome", AttrValue::Str("ok"))]);
//! let snap = rec.snapshot();
//! assert_eq!(snap.spans.len(), 1);
//! assert!(snap.to_chrome_json().contains("\"traceEvents\""));
//! ```

pub mod chrome;
pub mod collect;
pub mod flight;
pub mod progress;
pub mod provenance;
pub mod recorder;
pub mod registry;

pub use collect::{CollectingRecorder, EventRecord, SpanRecord, TraceSnapshot};
pub use flight::{FlightEvent, FlightEventKind, FlightRecorder, FlightSnapshot, DEFAULT_FLIGHT_CAPACITY};
pub use progress::ProgressTicker;
pub use provenance::BlockProvenance;
pub use recorder::{span, Attr, AttrValue, NoopRecorder, OwnedAttr, Recorder, SpanGuard, SpanId};
pub use registry::{Counter, HistogramSummary, MetricsRegistry, BUCKET_BOUNDS};
