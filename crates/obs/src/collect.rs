//! The thread-safe collecting recorder and its immutable snapshot.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

use crate::provenance::BlockProvenance;
use crate::recorder::{Attr, OwnedAttr, Recorder, SpanId};
use crate::registry::{HistogramSummary, MetricsRegistry};

/// Stable small integer id of the calling thread (allocated on first use;
/// `std::thread::ThreadId` exposes no stable integer on stable Rust).
pub(crate) fn current_tid() -> u64 {
    static NEXT: AtomicU64 = AtomicU64::new(1);
    thread_local! {
        static TID: u64 = NEXT.fetch_add(1, Ordering::Relaxed);
    }
    TID.with(|t| *t)
}

/// One completed span.
#[derive(Debug, Clone)]
pub struct SpanRecord {
    /// Recorder-unique span id.
    pub id: u64,
    /// Enclosing span on the same thread, if any.
    pub parent: Option<u64>,
    pub name: String,
    /// Nanoseconds since the recorder was created.
    pub start_ns: u64,
    /// Wall-clock duration in nanoseconds.
    pub dur_ns: u64,
    /// Small stable id of the recording thread.
    pub tid: u64,
    /// Enter attributes followed by exit attributes.
    pub attrs: Vec<(String, OwnedAttr)>,
}

impl SpanRecord {
    /// End timestamp in nanoseconds since recorder creation.
    pub fn end_ns(&self) -> u64 {
        self.start_ns + self.dur_ns
    }
}

/// One instant event.
#[derive(Debug, Clone)]
pub struct EventRecord {
    pub name: String,
    pub ts_ns: u64,
    pub tid: u64,
    pub attrs: Vec<(String, OwnedAttr)>,
}

struct OpenSpan {
    name: String,
    parent: Option<u64>,
    start_ns: u64,
    tid: u64,
    attrs: Vec<(String, OwnedAttr)>,
}

#[derive(Default)]
struct Inner {
    open: HashMap<u64, OpenSpan>,
    /// Per-thread stack of open span ids (for parent attribution).
    stacks: HashMap<u64, Vec<u64>>,
    spans: Vec<SpanRecord>,
    events: Vec<EventRecord>,
    blocks: Vec<BlockProvenance>,
}

/// A thread-safe retaining recorder: spans and events under one mutex,
/// counters in a [`MetricsRegistry`] (atomics), block provenance appended
/// in arrival order.
pub struct CollectingRecorder {
    origin: Instant,
    next_id: AtomicU64,
    inner: Mutex<Inner>,
    metrics: MetricsRegistry,
}

impl Default for CollectingRecorder {
    fn default() -> Self {
        Self::new()
    }
}

impl CollectingRecorder {
    /// Empty recorder; timestamps are relative to this call.
    pub fn new() -> Self {
        CollectingRecorder {
            origin: Instant::now(),
            next_id: AtomicU64::new(0),
            inner: Mutex::new(Inner::default()),
            metrics: MetricsRegistry::new(),
        }
    }

    fn now_ns(&self) -> u64 {
        self.origin.elapsed().as_nanos() as u64
    }

    fn own_attrs(attrs: &[Attr<'_>]) -> Vec<(String, OwnedAttr)> {
        attrs.iter().map(|(k, v)| (k.to_string(), OwnedAttr::from_value(v))).collect()
    }

    /// The recorder's metrics registry (counters and histograms).
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.metrics
    }

    /// Value of one counter (0 if never touched).
    pub fn counter_value(&self, name: &str) -> u64 {
        self.metrics.get(name)
    }

    /// Counters under one dotted namespace (e.g. `vm.fused.`), sorted by
    /// name — see [`MetricsRegistry::counters_with_prefix`].
    pub fn counters_with_prefix(&self, prefix: &str) -> Vec<(String, u64)> {
        self.metrics.counters_with_prefix(prefix)
    }

    /// The block provenance stream collected so far, in arrival order.
    /// Within one `evaluate_observed` call this is plan (BET node) order.
    pub fn block_provenance(&self) -> Vec<BlockProvenance> {
        self.inner.lock().unwrap().blocks.clone()
    }

    /// Immutable snapshot of everything recorded so far. Open spans are
    /// not included; completed spans are sorted by start time.
    pub fn snapshot(&self) -> TraceSnapshot {
        let inner = self.inner.lock().unwrap();
        let mut spans = inner.spans.clone();
        spans.sort_by_key(|s| (s.start_ns, s.id));
        TraceSnapshot {
            spans,
            events: inner.events.clone(),
            counters: self.metrics.counters(),
            histograms: self.metrics.histograms(),
        }
    }
}

impl Recorder for CollectingRecorder {
    fn enabled(&self) -> bool {
        true
    }

    fn span_start(&self, name: &str, attrs: &[Attr<'_>]) -> SpanId {
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let tid = current_tid();
        let start_ns = self.now_ns();
        let attrs = Self::own_attrs(attrs);
        let mut inner = self.inner.lock().unwrap();
        let stack = inner.stacks.entry(tid).or_default();
        let parent = stack.last().copied();
        stack.push(id);
        inner.open.insert(id, OpenSpan { name: name.to_string(), parent, start_ns, tid, attrs });
        SpanId(id)
    }

    fn span_end(&self, span: SpanId, attrs: &[Attr<'_>]) {
        if span == SpanId::NONE {
            return;
        }
        let end_ns = self.now_ns();
        let extra = Self::own_attrs(attrs);
        let mut inner = self.inner.lock().unwrap();
        let Some(open) = inner.open.remove(&span.0) else { return };
        if let Some(stack) = inner.stacks.get_mut(&open.tid) {
            if let Some(pos) = stack.iter().rposition(|&id| id == span.0) {
                stack.remove(pos);
            }
        }
        let mut attrs = open.attrs;
        attrs.extend(extra);
        inner.spans.push(SpanRecord {
            id: span.0,
            parent: open.parent,
            name: open.name,
            start_ns: open.start_ns,
            dur_ns: end_ns.saturating_sub(open.start_ns),
            tid: open.tid,
            attrs,
        });
    }

    fn add(&self, counter: &str, delta: u64) {
        self.metrics.add(counter, delta);
    }

    fn observe(&self, histogram: &str, value: f64) {
        self.metrics.observe(histogram, value);
    }

    fn event(&self, name: &str, attrs: &[Attr<'_>]) {
        let ts_ns = self.now_ns();
        let tid = current_tid();
        let attrs = Self::own_attrs(attrs);
        self.inner.lock().unwrap().events.push(EventRecord { name: name.to_string(), ts_ns, tid, attrs });
    }

    fn block_cost(&self, block: &BlockProvenance) {
        self.inner.lock().unwrap().blocks.push(*block);
    }
}

/// Immutable view of a recorder's contents, ready for export.
#[derive(Debug, Clone)]
pub struct TraceSnapshot {
    /// Completed spans, sorted by start time.
    pub spans: Vec<SpanRecord>,
    /// Instant events, in arrival order.
    pub events: Vec<EventRecord>,
    /// Counter values, sorted by name.
    pub counters: Vec<(String, u64)>,
    /// Histogram summaries, sorted by name.
    pub histograms: Vec<(String, HistogramSummary)>,
}

impl TraceSnapshot {
    /// Fold an external registry's counters and histograms into the
    /// snapshot (e.g. a `Session`'s cache counters) so one exported trace
    /// carries the whole pipeline's metrics.
    pub fn merge_registry(&mut self, registry: &MetricsRegistry) {
        self.counters.extend(registry.counters());
        self.counters.sort();
        self.counters.dedup_by(|a, b| {
            if a.0 == b.0 {
                b.1 += a.1;
                true
            } else {
                false
            }
        });
        self.histograms.extend(registry.histograms());
        self.histograms.sort_by(|a, b| a.0.cmp(&b.0));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::AttrValue;

    #[test]
    fn spans_record_nesting_and_attrs() {
        let rec = CollectingRecorder::new();
        let outer = rec.span_start("outer", &[("k", AttrValue::U64(1))]);
        let inner = rec.span_start("inner", &[]);
        rec.span_end(inner, &[]);
        rec.span_end(outer, &[("out", AttrValue::Str("done"))]);
        let snap = rec.snapshot();
        assert_eq!(snap.spans.len(), 2);
        let o = snap.spans.iter().find(|s| s.name == "outer").unwrap();
        let i = snap.spans.iter().find(|s| s.name == "inner").unwrap();
        assert_eq!(i.parent, Some(o.id));
        assert_eq!(o.parent, None);
        assert!(i.start_ns >= o.start_ns && i.end_ns() <= o.end_ns());
        assert_eq!(o.attrs.len(), 2, "enter + exit attrs: {:?}", o.attrs);
    }

    #[test]
    fn counters_and_blocks_accumulate() {
        let rec = CollectingRecorder::new();
        rec.add("c", 2);
        rec.add("c", 3);
        rec.observe("h", 4.0);
        rec.block_cost(&BlockProvenance {
            node: 0,
            stmt: None,
            enr: 1.0,
            tc: 0.0,
            tm: 0.0,
            overlap: 0.0,
            delta: 0.0,
            total: 0.0,
            threads: 1.0,
            flops: 0.0,
            iops: 0.0,
            loads: 0.0,
            stores: 0.0,
            bytes: 0.0,
        });
        assert_eq!(rec.counter_value("c"), 5);
        assert_eq!(rec.block_provenance().len(), 1);
        assert_eq!(rec.snapshot().histograms[0].1.count, 1);
    }

    #[test]
    fn unmatched_end_is_ignored() {
        let rec = CollectingRecorder::new();
        rec.span_end(SpanId(42), &[]);
        rec.span_end(SpanId::NONE, &[]);
        assert!(rec.snapshot().spans.is_empty());
    }

    #[test]
    fn parallel_spans_keep_per_thread_parents() {
        let rec = CollectingRecorder::new();
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    let a = rec.span_start("work", &[]);
                    let b = rec.span_start("sub", &[]);
                    rec.span_end(b, &[]);
                    rec.span_end(a, &[]);
                });
            }
        });
        let snap = rec.snapshot();
        assert_eq!(snap.spans.len(), 8);
        for sub in snap.spans.iter().filter(|s| s.name == "sub") {
            let parent = snap.spans.iter().find(|s| Some(s.id) == sub.parent).unwrap();
            assert_eq!(parent.name, "work");
            assert_eq!(parent.tid, sub.tid, "parent must be on the same thread");
        }
    }

    #[test]
    fn merge_registry_sums_duplicates() {
        let rec = CollectingRecorder::new();
        rec.add("shared", 1);
        let reg = MetricsRegistry::new();
        reg.add("shared", 2);
        reg.add("extra", 7);
        let mut snap = rec.snapshot();
        snap.merge_registry(&reg);
        assert!(snap.counters.contains(&("shared".to_string(), 3)));
        assert!(snap.counters.contains(&("extra".to_string(), 7)));
    }
}
