//! The flight recorder: an always-on, fixed-capacity, lock-free ring
//! buffer retaining the last N telemetry events.
//!
//! A [`FlightRecorder`] implements [`Recorder`] and can wrap any inner
//! recorder (forwarding everything), so it composes with the
//! [`CollectingRecorder`](crate::CollectingRecorder) when full tracing is
//! on and stands alone when it is not. Unlike the collecting recorder it
//! never allocates and never blocks on the record path: each event is
//! encoded into a fixed number of `AtomicU64` words guarded by a per-slot
//! sequence counter (a seqlock). Writers claim a slot with one
//! `fetch_add` on the ring head and one CAS on the slot's sequence; a
//! writer that loses the CAS (another thread lapped it onto the same
//! slot) drops its event and bumps a `dropped` counter instead of
//! waiting. Readers ([`FlightRecorder::snapshot`]) copy slots word-wise
//! and discard any slot whose sequence changed mid-copy, so a snapshot
//! is always composed of whole events.
//!
//! The intended deployment is *always on*: the server keeps a flight
//! ring for every request and dumps it — as Chrome trace JSON via
//! [`FlightSnapshot::to_chrome_json`] — on demand (`GET /debug/flight`)
//! or automatically when a request fails, turning "that request 500'd a
//! minute ago" into an inspectable trace after the fact.

use std::sync::atomic::{fence, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use crate::chrome::{json_f64, json_string};
use crate::collect::current_tid;
use crate::provenance::BlockProvenance;
use crate::recorder::{Attr, Recorder, SpanId};

/// Default ring capacity (events). At 11 words (88 bytes) per slot this
/// is under 100 KiB of fixed memory.
pub const DEFAULT_FLIGHT_CAPACITY: usize = 1024;

/// Bytes of event name retained per slot; longer names are truncated at
/// a char boundary.
pub const FLIGHT_NAME_BYTES: usize = 48;

const NAME_WORDS: usize = FLIGHT_NAME_BYTES / 8;
/// header + ts + value + ticket + name
const WORDS: usize = 4 + NAME_WORDS;

/// What one retained event was.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlightEventKind {
    /// A span opened (`value` unused).
    SpanBegin,
    /// A span closed (name empty; matched to the begin by thread stack).
    SpanEnd,
    /// An instant event.
    Instant,
    /// A counter increment (`value` is the delta).
    Counter,
    /// A histogram observation (`value` is the observation).
    Histogram,
}

impl FlightEventKind {
    fn code(self) -> u64 {
        match self {
            FlightEventKind::SpanBegin => 0,
            FlightEventKind::SpanEnd => 1,
            FlightEventKind::Instant => 2,
            FlightEventKind::Counter => 3,
            FlightEventKind::Histogram => 4,
        }
    }

    fn from_code(c: u64) -> Option<Self> {
        Some(match c {
            0 => FlightEventKind::SpanBegin,
            1 => FlightEventKind::SpanEnd,
            2 => FlightEventKind::Instant,
            3 => FlightEventKind::Counter,
            4 => FlightEventKind::Histogram,
            _ => return None,
        })
    }
}

/// One decoded event out of the ring.
#[derive(Debug, Clone, PartialEq)]
pub struct FlightEvent {
    pub kind: FlightEventKind,
    /// Event name, truncated to [`FLIGHT_NAME_BYTES`] at record time.
    pub name: String,
    /// Nanoseconds since the recorder was created.
    pub ts_ns: u64,
    /// Small stable id of the recording thread (see `current_tid`).
    pub tid: u64,
    /// Counter delta or histogram observation; 0 otherwise.
    pub value: f64,
    /// Global sequence number of the event (total order across threads).
    pub ticket: u64,
}

/// One ring slot: a sequence word (even = stable, odd = being written)
/// plus the event payload as relaxed atomic words, so concurrent reads
/// and writes are races only at the seqlock level, never data races.
struct Slot {
    seq: AtomicU64,
    words: [AtomicU64; WORDS],
}

impl Slot {
    fn new() -> Self {
        Slot { seq: AtomicU64::new(0), words: [const { AtomicU64::new(0) }; WORDS] }
    }
}

/// The always-on ring recorder. See the module docs for the protocol.
pub struct FlightRecorder {
    origin: Instant,
    slots: Box<[Slot]>,
    head: AtomicU64,
    dropped: AtomicU64,
    inner: Option<Arc<dyn Recorder>>,
}

impl FlightRecorder {
    /// Ring with [`DEFAULT_FLIGHT_CAPACITY`] slots and no inner recorder.
    pub fn new() -> Self {
        Self::with_capacity(DEFAULT_FLIGHT_CAPACITY)
    }

    /// Ring with `capacity` slots (min 2) and no inner recorder.
    pub fn with_capacity(capacity: usize) -> Self {
        let capacity = capacity.max(2);
        FlightRecorder {
            origin: Instant::now(),
            slots: (0..capacity).map(|_| Slot::new()).collect(),
            head: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
            inner: None,
        }
    }

    /// Wrap an inner recorder: every call is both retained in the ring
    /// and forwarded, and span ids are the inner recorder's ids so
    /// nesting attribution still works there.
    pub fn wrapping(inner: Arc<dyn Recorder>) -> Self {
        let mut r = Self::new();
        r.inner = Some(inner);
        r
    }

    /// Events the ring refused because another thread was mid-write on
    /// the same (lapped) slot. Nonzero only under heavy contention.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Number of slots.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    fn now_ns(&self) -> u64 {
        self.origin.elapsed().as_nanos() as u64
    }

    fn record(&self, kind: FlightEventKind, name: &str, value: f64) {
        let ticket = self.head.fetch_add(1, Ordering::Relaxed);
        let slot = &self.slots[(ticket % self.slots.len() as u64) as usize];
        let seq = slot.seq.load(Ordering::Acquire);
        if seq % 2 == 1 || slot.seq.compare_exchange(seq, seq + 1, Ordering::Acquire, Ordering::Relaxed).is_err() {
            // Another writer owns this slot (we lapped it mid-write):
            // dropping one event beats blocking the caller.
            self.dropped.fetch_add(1, Ordering::Relaxed);
            return;
        }
        let mut n = name.len().min(FLIGHT_NAME_BYTES);
        while !name.is_char_boundary(n) {
            n -= 1;
        }
        let header = kind.code() | ((n as u64) << 8) | ((current_tid() & 0xffff_ffff) << 32);
        slot.words[0].store(header, Ordering::Relaxed);
        slot.words[1].store(self.now_ns(), Ordering::Relaxed);
        slot.words[2].store(value.to_bits(), Ordering::Relaxed);
        slot.words[3].store(ticket, Ordering::Relaxed);
        let bytes = name.as_bytes();
        for w in 0..NAME_WORDS {
            let mut word = [0u8; 8];
            let lo = w * 8;
            if lo < n {
                let hi = (lo + 8).min(n);
                word[..hi - lo].copy_from_slice(&bytes[lo..hi]);
            }
            slot.words[4 + w].store(u64::from_le_bytes(word), Ordering::Relaxed);
        }
        slot.seq.store(seq + 2, Ordering::Release);
    }

    /// Copy out every stable slot, decode, and order by ticket. Slots
    /// being written during the copy are skipped (they will appear in the
    /// next snapshot).
    pub fn snapshot(&self) -> FlightSnapshot {
        let mut events = Vec::with_capacity(self.slots.len());
        for slot in self.slots.iter() {
            let s1 = slot.seq.load(Ordering::Acquire);
            if s1 == 0 || s1 % 2 == 1 {
                continue; // never written, or write in flight
            }
            let mut words = [0u64; WORDS];
            for (i, w) in slot.words.iter().enumerate() {
                words[i] = w.load(Ordering::Relaxed);
            }
            fence(Ordering::Acquire);
            if slot.seq.load(Ordering::Relaxed) != s1 {
                continue; // torn read: a writer overwrote the slot mid-copy
            }
            let Some(kind) = FlightEventKind::from_code(words[0] & 0xff) else { continue };
            let n = ((words[0] >> 8) & 0xff) as usize;
            let mut name_bytes = [0u8; FLIGHT_NAME_BYTES];
            for w in 0..NAME_WORDS {
                name_bytes[w * 8..w * 8 + 8].copy_from_slice(&words[4 + w].to_le_bytes());
            }
            events.push(FlightEvent {
                kind,
                name: String::from_utf8_lossy(&name_bytes[..n.min(FLIGHT_NAME_BYTES)]).into_owned(),
                ts_ns: words[1],
                tid: words[0] >> 32,
                value: f64::from_bits(words[2]),
                ticket: words[3],
            });
        }
        events.sort_by_key(|e| e.ticket);
        FlightSnapshot { events, dropped: self.dropped(), capacity: self.slots.len() }
    }
}

impl Default for FlightRecorder {
    fn default() -> Self {
        Self::new()
    }
}

impl Recorder for FlightRecorder {
    /// Always true: the ring retains events, so instrumentation sites
    /// build attributes (the ring itself discards them, but a wrapped
    /// inner recorder keeps them).
    fn enabled(&self) -> bool {
        true
    }

    fn span_start(&self, name: &str, attrs: &[Attr<'_>]) -> SpanId {
        self.record(FlightEventKind::SpanBegin, name, 0.0);
        match &self.inner {
            Some(inner) => inner.span_start(name, attrs),
            None => SpanId::NONE,
        }
    }

    fn span_end(&self, span: SpanId, attrs: &[Attr<'_>]) {
        self.record(FlightEventKind::SpanEnd, "", 0.0);
        if let Some(inner) = &self.inner {
            inner.span_end(span, attrs);
        }
    }

    fn add(&self, counter: &str, delta: u64) {
        self.record(FlightEventKind::Counter, counter, delta as f64);
        if let Some(inner) = &self.inner {
            inner.add(counter, delta);
        }
    }

    fn observe(&self, histogram: &str, value: f64) {
        self.record(FlightEventKind::Histogram, histogram, value);
        if let Some(inner) = &self.inner {
            inner.observe(histogram, value);
        }
    }

    fn event(&self, name: &str, attrs: &[Attr<'_>]) {
        self.record(FlightEventKind::Instant, name, 0.0);
        if let Some(inner) = &self.inner {
            inner.event(name, attrs);
        }
    }

    fn block_cost(&self, block: &BlockProvenance) {
        // Too wide for a ring slot; forwarded only.
        if let Some(inner) = &self.inner {
            inner.block_cost(block);
        }
    }
}

/// A decoded, ticket-ordered copy of the ring at one moment.
#[derive(Debug, Clone)]
pub struct FlightSnapshot {
    /// Retained events, oldest first (by global ticket).
    pub events: Vec<FlightEvent>,
    /// Events lost to slot contention over the recorder's lifetime.
    pub dropped: u64,
    /// Ring capacity the snapshot was taken from.
    pub capacity: usize,
}

impl FlightSnapshot {
    /// Render as a Chrome trace-event JSON document. Spans use `B`/`E`
    /// duration events (matched per thread by the viewer, so a begin
    /// whose end was evicted still renders), counters emit running
    /// totals per name, histogram observations are instant samples.
    pub fn to_chrome_json(&self) -> String {
        let mut out = String::with_capacity(128 + self.events.len() * 96);
        let _ = std::fmt::Write::write_fmt(
            &mut out,
            format_args!("{{\"displayTimeUnit\":\"ms\",\"flightDropped\":{},\"traceEvents\":[", self.dropped),
        );
        let mut totals: Vec<(String, f64)> = Vec::new();
        for (i, e) in self.events.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let ts = e.ts_ns as f64 / 1000.0;
            match e.kind {
                FlightEventKind::SpanBegin | FlightEventKind::SpanEnd | FlightEventKind::Instant => {
                    let ph = match e.kind {
                        FlightEventKind::SpanBegin => "B",
                        FlightEventKind::SpanEnd => "E",
                        _ => "i",
                    };
                    out.push_str("{\"name\":");
                    json_string(&e.name, &mut out);
                    let _ = std::fmt::Write::write_fmt(
                        &mut out,
                        format_args!(",\"cat\":\"flight\",\"ph\":\"{ph}\",\"ts\":"),
                    );
                    json_f64(ts, &mut out);
                    let _ = std::fmt::Write::write_fmt(&mut out, format_args!(",\"pid\":1,\"tid\":{}", e.tid));
                    if e.kind == FlightEventKind::Instant {
                        out.push_str(",\"s\":\"t\"");
                    }
                    out.push('}');
                }
                FlightEventKind::Counter | FlightEventKind::Histogram => {
                    let value = if e.kind == FlightEventKind::Counter {
                        // running total per counter name, in ticket order
                        match totals.iter_mut().find(|(n, _)| *n == e.name) {
                            Some((_, t)) => {
                                *t += e.value;
                                *t
                            }
                            None => {
                                totals.push((e.name.clone(), e.value));
                                e.value
                            }
                        }
                    } else {
                        e.value
                    };
                    out.push_str("{\"name\":");
                    json_string(&e.name, &mut out);
                    out.push_str(",\"cat\":\"flight\",\"ph\":\"C\",\"ts\":");
                    json_f64(ts, &mut out);
                    out.push_str(",\"pid\":1,\"args\":{\"value\":");
                    json_f64(value, &mut out);
                    out.push_str("}}");
                }
            }
        }
        out.push_str("]}");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collect::CollectingRecorder;
    use crate::recorder::AttrValue;

    #[test]
    fn retains_recent_events_in_order() {
        let fr = FlightRecorder::with_capacity(8);
        let s = fr.span_start("work", &[]);
        fr.add("points", 3);
        fr.observe("lat", 0.25);
        fr.event("note", &[]);
        fr.span_end(s, &[]);
        let snap = fr.snapshot();
        assert_eq!(snap.events.len(), 5);
        let kinds: Vec<FlightEventKind> = snap.events.iter().map(|e| e.kind).collect();
        assert_eq!(
            kinds,
            [
                FlightEventKind::SpanBegin,
                FlightEventKind::Counter,
                FlightEventKind::Histogram,
                FlightEventKind::Instant,
                FlightEventKind::SpanEnd,
            ]
        );
        assert_eq!(snap.events[0].name, "work");
        assert_eq!(snap.events[1].value, 3.0);
        assert_eq!(snap.events[2].value, 0.25);
        assert_eq!(snap.dropped, 0);
        // timestamps are monotone in ticket order
        assert!(snap.events.windows(2).all(|w| w[0].ts_ns <= w[1].ts_ns));
    }

    #[test]
    fn ring_keeps_only_the_last_capacity_events() {
        let fr = FlightRecorder::with_capacity(4);
        for i in 0..10 {
            fr.add(&format!("c{i}"), 1);
        }
        let snap = fr.snapshot();
        assert_eq!(snap.events.len(), 4);
        let names: Vec<&str> = snap.events.iter().map(|e| e.name.as_str()).collect();
        assert_eq!(names, ["c6", "c7", "c8", "c9"]);
    }

    #[test]
    fn long_names_truncate_at_char_boundaries() {
        let fr = FlightRecorder::with_capacity(4);
        let long = "x".repeat(100);
        fr.add(&long, 1);
        fr.add("héllo-with-a-multibyte-char-right-at-the-48-bøundary", 1);
        let snap = fr.snapshot();
        assert_eq!(snap.events[0].name.len(), FLIGHT_NAME_BYTES);
        assert!(snap.events[1].name.is_char_boundary(snap.events[1].name.len()));
        assert!(!snap.events[1].name.contains('\u{fffd}'));
    }

    #[test]
    fn wrapping_forwards_to_the_inner_recorder() {
        let inner = std::sync::Arc::new(CollectingRecorder::new());
        let fr = FlightRecorder::wrapping(inner.clone());
        assert!(fr.enabled());
        let s = fr.span_start("stage", &[("k", AttrValue::U64(1))]);
        fr.add("c", 2);
        fr.span_end(s, &[]);
        let collected = inner.snapshot();
        assert_eq!(collected.spans.len(), 1);
        assert_eq!(collected.spans[0].name, "stage");
        assert_eq!(inner.counter_value("c"), 2);
        assert_eq!(fr.snapshot().events.len(), 3);
    }

    #[test]
    fn concurrent_writers_never_corrupt_decoded_events() {
        let fr = std::sync::Arc::new(FlightRecorder::with_capacity(64));
        std::thread::scope(|s| {
            for t in 0..4 {
                let fr = fr.clone();
                s.spawn(move || {
                    for i in 0..2000u64 {
                        fr.add(&format!("thread{t}"), i);
                    }
                });
            }
        });
        let snap = fr.snapshot();
        assert!(!snap.events.is_empty());
        for e in &snap.events {
            assert!(e.name.starts_with("thread"), "{:?}", e);
            assert_eq!(e.kind, FlightEventKind::Counter);
            assert!(e.value < 2000.0);
        }
        // total accounting: everything recorded is retained, evicted, or dropped
        assert_eq!(fr.head.load(Ordering::Relaxed), 8000);
        assert!(snap.dropped <= 8000);
    }

    #[test]
    fn chrome_export_has_begin_end_and_counter_phases() {
        let fr = FlightRecorder::with_capacity(16);
        let s = fr.span_start("req", &[]);
        fr.add("hits", 1);
        fr.add("hits", 2);
        fr.observe("secs", 0.5);
        fr.span_end(s, &[]);
        let json = fr.snapshot().to_chrome_json();
        assert!(json.contains("\"ph\":\"B\""), "{json}");
        assert!(json.contains("\"ph\":\"E\""), "{json}");
        assert!(json.contains("\"ph\":\"C\""), "{json}");
        assert!(json.contains("\"flightDropped\":0"), "{json}");
        // counter samples are running totals: 1 then 3
        assert!(json.contains("\"args\":{\"value\":1.0}"), "{json}");
        assert!(json.contains("\"args\":{\"value\":3.0}"), "{json}");
    }

    #[test]
    fn empty_ring_exports_cleanly() {
        let json = FlightRecorder::new().snapshot().to_chrome_json();
        assert_eq!(json, "{\"displayTimeUnit\":\"ms\",\"flightDropped\":0,\"traceEvents\":[]}");
    }
}
