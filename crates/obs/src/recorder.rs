//! The [`Recorder`] trait, attribute values, and the zero-overhead
//! [`NoopRecorder`] default.

use crate::provenance::BlockProvenance;

/// Identifier of one span issued by a recorder. [`SpanId::NONE`] is the
/// sentinel returned by recorders that track nothing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SpanId(pub u64);

impl SpanId {
    /// The "no span" sentinel; [`Recorder::span_end`] ignores it.
    pub const NONE: SpanId = SpanId(u64::MAX);
}

/// A borrowed attribute value. Instrumentation sites build these on the
/// stack; recorders that retain attributes copy them into [`OwnedAttr`]s.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum AttrValue<'a> {
    U64(u64),
    I64(i64),
    F64(f64),
    Str(&'a str),
}

impl<'a> From<&'a str> for AttrValue<'a> {
    fn from(s: &'a str) -> Self {
        AttrValue::Str(s)
    }
}

impl From<u64> for AttrValue<'_> {
    fn from(v: u64) -> Self {
        AttrValue::U64(v)
    }
}

impl From<f64> for AttrValue<'_> {
    fn from(v: f64) -> Self {
        AttrValue::F64(v)
    }
}

/// One `(key, value)` attribute pair as passed to recorder methods.
pub type Attr<'a> = (&'a str, AttrValue<'a>);

/// An attribute value owned by a retaining recorder.
#[derive(Debug, Clone, PartialEq)]
pub enum OwnedAttr {
    U64(u64),
    I64(i64),
    F64(f64),
    Str(String),
}

impl OwnedAttr {
    /// Copy a borrowed value into an owned one.
    pub fn from_value(v: &AttrValue<'_>) -> OwnedAttr {
        match v {
            AttrValue::U64(x) => OwnedAttr::U64(*x),
            AttrValue::I64(x) => OwnedAttr::I64(*x),
            AttrValue::F64(x) => OwnedAttr::F64(*x),
            AttrValue::Str(s) => OwnedAttr::Str((*s).to_string()),
        }
    }
}

/// A telemetry sink for the modeling pipeline.
///
/// All methods take `&self`; implementations must be thread-safe (sweeps
/// call them from worker threads). Instrumented code paths are generic
/// over `R: Recorder + ?Sized`, so the [`NoopRecorder`] default statically
/// dispatches to empty inlined bodies, and `&dyn Recorder` works where a
/// trait object is more convenient (long-lived structs like `Session`).
pub trait Recorder: Send + Sync {
    /// Whether this recorder retains anything. Instrumentation sites must
    /// gate attribute construction (formatting, allocation) behind this so
    /// the disabled path stays allocation-free.
    fn enabled(&self) -> bool;

    /// Open a span. The returned id is passed to [`Recorder::span_end`];
    /// recorders stamp the wall-clock enter time and calling thread.
    fn span_start(&self, name: &str, attrs: &[Attr<'_>]) -> SpanId;

    /// Close a span, optionally attaching attributes learned during the
    /// span's body (cache outcome, node counts). [`SpanId::NONE`] is a
    /// no-op.
    fn span_end(&self, span: SpanId, attrs: &[Attr<'_>]);

    /// Increment a named monotonic counter.
    fn add(&self, counter: &str, delta: u64);

    /// Record one observation of a named histogram.
    fn observe(&self, histogram: &str, value: f64);

    /// Record an instant event (no duration).
    fn event(&self, name: &str, attrs: &[Attr<'_>]);

    /// Record one block of the per-block cost provenance stream emitted by
    /// `ProjectionPlan::evaluate_observed` — the raw material of the
    /// `explain` report.
    fn block_cost(&self, block: &BlockProvenance);
}

/// The zero-overhead default recorder: every method is an empty inlined
/// body, so monomorphized instrumentation disappears entirely.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoopRecorder;

impl Recorder for NoopRecorder {
    #[inline(always)]
    fn enabled(&self) -> bool {
        false
    }

    #[inline(always)]
    fn span_start(&self, _name: &str, _attrs: &[Attr<'_>]) -> SpanId {
        SpanId::NONE
    }

    #[inline(always)]
    fn span_end(&self, _span: SpanId, _attrs: &[Attr<'_>]) {}

    #[inline(always)]
    fn add(&self, _counter: &str, _delta: u64) {}

    #[inline(always)]
    fn observe(&self, _histogram: &str, _value: f64) {}

    #[inline(always)]
    fn event(&self, _name: &str, _attrs: &[Attr<'_>]) {}

    #[inline(always)]
    fn block_cost(&self, _block: &BlockProvenance) {}
}

/// RAII guard closing a span on drop (with no exit attributes). Panics
/// unwinding through the guard still close the span, so a failed sweep
/// point leaves a well-formed trace.
pub struct SpanGuard<'r, R: Recorder + ?Sized> {
    rec: &'r R,
    id: SpanId,
}

impl<R: Recorder + ?Sized> Drop for SpanGuard<'_, R> {
    fn drop(&mut self) {
        self.rec.span_end(self.id, &[]);
    }
}

/// Open a span closed automatically at end of scope.
pub fn span<'r, R: Recorder + ?Sized>(rec: &'r R, name: &str, attrs: &[Attr<'_>]) -> SpanGuard<'r, R> {
    let id = rec.span_start(name, attrs);
    SpanGuard { rec, id }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noop_is_disabled_and_returns_none() {
        let r = NoopRecorder;
        assert!(!r.enabled());
        assert_eq!(r.span_start("x", &[]), SpanId::NONE);
        r.span_end(SpanId::NONE, &[]);
        r.add("c", 1);
        r.observe("h", 1.0);
        r.event("e", &[("k", AttrValue::U64(1))]);
    }

    #[test]
    fn attr_conversions() {
        assert_eq!(AttrValue::from("s"), AttrValue::Str("s"));
        assert_eq!(AttrValue::from(3u64), AttrValue::U64(3));
        assert_eq!(AttrValue::from(0.5f64), AttrValue::F64(0.5));
        assert_eq!(OwnedAttr::from_value(&AttrValue::Str("s")), OwnedAttr::Str("s".into()));
    }
}
